# Developer entry points. `make check` is the tier-1 gate (build, vet,
# staticcheck when installed, test); `make race` reruns the tests under
# the race detector — the parallel harness and the chaos suite must
# stay race-clean — and runs as its own CI job. `make cover` prints
# per-package statement coverage. `make bench` regenerates the kernel,
# paper, and observability benchmark records as `go test -json` event
# streams (BENCH_devent.json, BENCH_paper.json, BENCH_obs.json,
# BENCH_fleet.json, BENCH_autoscale.json), which benchstat and x/perf
# tooling both consume, and validates them with cmd/benchjson.
# `make bench-diff` compares the committed records against freshly
# regenerated ones via benchstat (skipped when benchstat is absent).
# `make scale` runs a modest snapshot-vs-streaming throughput compare
# of the sharded million-task scenario. `make fleet` runs the
# fleet-scale placement artifact at a modest size and checks it stays
# byte-identical across -parallel and -stream. `make autoscale` does
# the same for the SLO-driven autoscaling artifact. `make attrib`
# smoke-tests the latency attribution pipeline end to end on the
# Table 1 bursts. `make serve-smoke` boots the live observability
# server on a scale run and curls its endpoints — the CI smoke for the
# -serve plane.

GO ?= go

.PHONY: check build vet staticcheck test race cover fuzz bench bench-devent bench-paper bench-obs bench-fleet bench-autoscale bench-check bench-diff scale fleet autoscale attrib serve-smoke clean

check: build vet staticcheck test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (no network installs in the dev
# container) but mandatory in CI, which installs it on the runner.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz passes over the chaos-spec parser, the executor config
# validator, the repartitioning-spec parser, and the fleet packer
# (demand-spec strings through Place with Validate as the oracle; the
# checked-in corpora run as regular tests in `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzConfigValidate -fuzztime 10s ./internal/faas/htex
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/repart
	$(GO) test -run '^$$' -fuzz FuzzPlace -fuzztime 10s ./internal/fleet

bench: bench-devent bench-paper bench-obs bench-fleet bench-autoscale bench-check

bench-devent:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x ./internal/devent ./internal/obs > BENCH_devent.json

bench-paper:
	$(GO) test -json -run '^$$' -bench=. -benchtime=1x . > BENCH_paper.json

# The telemetry-plane record: tsdb scrape/query benchmarks (the scrape
# path must stay 0 allocs/op — BenchmarkScrape enforces it) plus the
# live-server package.
bench-obs:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x ./internal/obs/tsdb ./internal/obs/live > BENCH_obs.json

# The fleet-layer record: the from-scratch 100-GPU greedy solve, the
# steady-state churn step, and the fragmentation metric.
bench-fleet:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x ./internal/fleet > BENCH_fleet.json

# The autoscaling record: the controller's per-tick overhead, the
# million-user traffic sampler, and the end-to-end autoscaled cell.
bench-autoscale:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x ./internal/autoscale ./internal/core > BENCH_autoscale.json

# Fail on malformed or benchmark-free records so a truncated `go test
# -json` stream can't land as the current trajectory point.
bench-check:
	$(GO) run ./cmd/benchjson check BENCH_devent.json BENCH_paper.json BENCH_obs.json BENCH_fleet.json BENCH_autoscale.json

# Compare the committed records (HEAD) against freshly regenerated
# ones. benchstat is optional locally (no network installs in the dev
# container); without it the target reports how to read the records.
bench-diff: bench
	@if command -v benchstat >/dev/null 2>&1; then \
		tmp=$$(mktemp -d); \
		for f in BENCH_devent BENCH_paper BENCH_obs BENCH_fleet BENCH_autoscale; do \
			git show HEAD:$$f.json > $$tmp/$$f.old.json 2>/dev/null || continue; \
			$(GO) run ./cmd/benchjson text $$tmp/$$f.old.json > $$tmp/$$f.old.txt; \
			$(GO) run ./cmd/benchjson text $$f.json > $$tmp/$$f.new.txt; \
			echo "== $$f (HEAD vs regenerated) =="; \
			benchstat $$tmp/$$f.old.txt $$tmp/$$f.new.txt; \
		done; \
		rm -rf $$tmp; \
	else \
		echo "benchstat not installed; skipping bench-diff (compare with: go run ./cmd/benchjson text BENCH_devent.json)"; \
	fi

# Modest-size snapshot-vs-streaming throughput compare of the sharded
# open-loop scenario (the full 10^6-task run is `paperbench scale`
# with defaults).
scale:
	$(GO) run ./cmd/paperbench scale -tasks 50000 -shards 4 -compare

# Modest-size fleet-placement smoke: render the artifact twice — once
# with defaults, once sequential + streaming — and require the outputs
# byte-identical (the artifact is purely virtual).
fleet:
	@set -e; \
	$(GO) build -o /tmp/paperbench-fleet ./cmd/paperbench; \
	/tmp/paperbench-fleet fleet -gpus80 16 -gpus40 16 -apps 24 -horizon 3m > /tmp/fleet.a.txt; \
	/tmp/paperbench-fleet fleet -gpus80 16 -gpus40 16 -apps 24 -horizon 3m -parallel 1 -stream > /tmp/fleet.b.txt; \
	cmp /tmp/fleet.a.txt /tmp/fleet.b.txt; \
	grep -q 'virtual: rebalances=' /tmp/fleet.a.txt; \
	echo "fleet: ok (byte-identical across -parallel and -stream)"

# Modest-size autoscaling smoke: render the SLO-driven autoscaling
# artifact twice — default vs sequential + streaming — and require the
# outputs byte-identical, with all three verdict lines present.
autoscale:
	@set -e; \
	$(GO) build -o /tmp/paperbench-autoscale ./cmd/paperbench; \
	/tmp/paperbench-autoscale autoscale -gpus 4 -horizon 40m > /tmp/autoscale.a.txt; \
	/tmp/paperbench-autoscale autoscale -gpus 4 -horizon 40m -parallel 1 -stream > /tmp/autoscale.b.txt; \
	cmp /tmp/autoscale.a.txt /tmp/autoscale.b.txt; \
	grep -q 'virtual: verdict cost' /tmp/autoscale.a.txt; \
	grep -q 'virtual: verdict attainment' /tmp/autoscale.a.txt; \
	grep -q 'virtual: verdict cold-starts' /tmp/autoscale.a.txt; \
	echo "autoscale: ok (byte-identical across -parallel and -stream)"

# End-to-end smoke of the live observability plane: boot small scale,
# fleet, and autoscale runs each with -serve, poll /healthz until every
# run reports done, then curl the endpoints — /metrics (the merged
# multi-scope exposition must pass promlint), /api/scopes, /api/alerts,
# /dashboard, /progress, and /spans. The servers linger after their
# runs by design; the trap kills them.
serve-smoke:
	@set -e; \
	$(GO) build -o /tmp/paperbench-smoke ./cmd/paperbench; \
	$(GO) build -o /tmp/promlint-smoke ./cmd/promlint; \
	/tmp/paperbench-smoke scale -tasks 20000 -shards 2 -stream -serve 127.0.0.1:9190 >/dev/null 2>&1 & \
	scale_pid=$$!; \
	/tmp/paperbench-smoke fleet -gpus80 8 -gpus40 8 -apps 16 -horizon 2m -serve 127.0.0.1:9191 >/dev/null 2>&1 & \
	fleet_pid=$$!; \
	/tmp/paperbench-smoke autoscale -gpus 4 -horizon 30m -serve 127.0.0.1:9192 >/dev/null 2>&1 & \
	auto_pid=$$!; \
	trap "kill $$scale_pid $$fleet_pid $$auto_pid 2>/dev/null || true" EXIT; \
	for port in 9190 9191 9192; do \
		ok=0; \
		for i in $$(seq 1 90); do \
			if curl -fsS http://127.0.0.1:$$port/healthz 2>/dev/null | grep -q '"phase":"done"'; then ok=1; break; fi; \
			sleep 1; \
		done; \
		test $$ok = 1 || { echo "serve-smoke: :$$port /healthz never reported done"; exit 1; }; \
	done; \
	curl -fsS http://127.0.0.1:9190/progress; echo; \
	curl -fsS http://127.0.0.1:9190/metrics > /tmp/serve-smoke.metrics; \
	grep -q '^# TYPE faas_tasks_completed_total counter' /tmp/serve-smoke.metrics; \
	curl -fsS 'http://127.0.0.1:9190/spans?scope=scale/shard0' > /tmp/serve-smoke.spans; \
	test -s /tmp/serve-smoke.spans; \
	for port in 9190 9191 9192; do \
		curl -fsS http://127.0.0.1:$$port/metrics | /tmp/promlint-smoke || { echo "serve-smoke: :$$port /metrics failed promlint"; exit 1; }; \
		curl -fsS http://127.0.0.1:$$port/dashboard | grep -q '/api/alerts' || { echo "serve-smoke: :$$port /dashboard missing"; exit 1; }; \
	done; \
	curl -fsS http://127.0.0.1:9191/api/scopes | grep -q '"scope":"fleet/load1.5x"'; \
	curl -fsS http://127.0.0.1:9191/api/alerts | grep -q '"name":"frag-ceiling"'; \
	curl -fsS http://127.0.0.1:9192/api/scopes | grep -q '"scope":"autoscale/static-1"'; \
	curl -fsS http://127.0.0.1:9192/api/alerts | grep -q '"name":"slo-burn-page"'; \
	curl -fsS 'http://127.0.0.1:9192/api/series?name=autoscale_blocks&fn=latest&scope=*' | grep -q '"results"'; \
	echo "serve-smoke: ok (metrics $$(wc -l < /tmp/serve-smoke.metrics) lines, spans $$(wc -l < /tmp/serve-smoke.spans) events; fleet+autoscale scopes, alerts, dashboard, promlint ok)"

# End-to-end smoke test of the attribution pipeline: run the Table 1
# bursts instrumented, render the folded-stack artifact, and print the
# hottest stacks.
attrib:
	$(GO) run ./cmd/paperbench table1 -completions 8 -attrib ATTRIB_table1.json -flame FLAME_table1.folded > /dev/null
	@echo "wrote ATTRIB_table1.json and FLAME_table1.folded; hottest stacks:"
	@sort -t' ' -k2 -rn FLAME_table1.folded | head -5

clean:
	rm -f BENCH_devent.json BENCH_paper.json BENCH_obs.json BENCH_fleet.json BENCH_autoscale.json ATTRIB_table1.json FLAME_table1.folded
