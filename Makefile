# Developer entry points. `make check` is the tier-1 gate (build, vet,
# tests with the race detector — the parallel harness must stay
# race-clean); `make bench` regenerates the kernel and paper benchmark
# records as `go test -json` event streams (BENCH_devent.json,
# BENCH_paper.json), which benchstat and x/perf tooling both consume.

GO ?= go

.PHONY: check build vet test race bench bench-devent bench-paper clean

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: bench-devent bench-paper

bench-devent:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x ./internal/devent > BENCH_devent.json

bench-paper:
	$(GO) test -json -run '^$$' -bench=. -benchtime=1x . > BENCH_paper.json

clean:
	rm -f BENCH_devent.json BENCH_paper.json
