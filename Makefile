# Developer entry points. `make check` is the tier-1 gate (build, vet,
# test); `make race` reruns the tests under the race detector — the
# parallel harness and the chaos suite must stay race-clean — and runs
# as its own CI job. `make cover` prints per-package statement
# coverage. `make bench` regenerates the kernel and paper benchmark
# records as `go test -json` event streams (BENCH_devent.json,
# BENCH_paper.json), which benchstat and x/perf tooling both consume.

GO ?= go

.PHONY: check build vet test race cover fuzz bench bench-devent bench-paper clean

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz passes over the chaos-spec parser, the executor config
# validator, and the repartitioning-spec parser (the checked-in corpora
# run as regular tests in `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzConfigValidate -fuzztime 10s ./internal/faas/htex
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/repart

bench: bench-devent bench-paper

bench-devent:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x ./internal/devent > BENCH_devent.json

bench-paper:
	$(GO) test -json -run '^$$' -bench=. -benchtime=1x . > BENCH_paper.json

clean:
	rm -f BENCH_devent.json BENCH_paper.json
