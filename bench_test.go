package repro_test

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the artifact from a fresh simulation; custom
// metrics expose the quantities the paper plots, so `go test -bench=.`
// doubles as the reproduction harness:
//
//	go test -bench=Fig4 -benchtime=1x
//
// prints the completion-time series of Fig. 4 as makespan_s metrics.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/models"
	"repro/internal/moldesign"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// BenchmarkFig1_LayerFLOPs rebuilds the CNN zoo and its per-layer
// profiles (Fig. 1), reporting the layer-to-layer dynamic range.
func BenchmarkFig1_LayerFLOPs(b *testing.B) {
	for _, build := range []func() *models.Model{models.ResNet50, models.ResNet101, models.VGG16, models.AlexNet} {
		m := build()
		b.Run(m.Name, func(b *testing.B) {
			var rangeX float64
			for i := 0; i < b.N; i++ {
				prof := build().ConvProfile()
				min, max := prof[0].GFLOPs, prof[0].GFLOPs
				for _, p := range prof {
					if p.GFLOPs < min {
						min = p.GFLOPs
					}
					if p.GFLOPs > max {
						max = p.GFLOPs
					}
				}
				rangeX = max / min
			}
			b.ReportMetric(rangeX, "layer_range_x")
		})
	}
}

// BenchmarkFig2_SMSweep measures the LLaMa-2 latency-vs-SMs curve
// (Fig. 2), reporting the knee ratio (latency at ~7 SMs over full).
func BenchmarkFig2_SMSweep(b *testing.B) {
	var starved, full float64
	for i := 0; i < b.N; i++ {
		res, err := core.Fig2Sweep([]int{6, 19, 100})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Model != "llama2-7b" {
				continue
			}
			switch p.Percent {
			case 6:
				starved = p.Latency.Seconds()
			case 100:
				full = p.Latency.Seconds()
			}
		}
	}
	b.ReportMetric(full, "full_gpu_latency_s")
	b.ReportMetric(starved/full, "starved_vs_full_x")
}

// BenchmarkFig3_MolDesign runs the molecular-design campaign (Fig. 3),
// reporting the GPU idle fraction the paper highlights.
func BenchmarkFig3_MolDesign(b *testing.B) {
	cfg := moldesign.DefaultConfig()
	cfg.InitialPool = 16
	cfg.CandidatePool = 1000
	cfg.BatchSize = 8
	cfg.Rounds = 2
	var idle float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunMolDesign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		idle = 1 - res.GPUBusyFraction
	}
	b.ReportMetric(idle*100, "gpu_idle_pct")
}

// BenchmarkFig4_Completion regenerates the completion-time bars of
// Fig. 4 (makespan_s) for every technique and process count.
func BenchmarkFig4_Completion(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG} {
		for n := 1; n <= 4; n++ {
			b.Run(fmt.Sprintf("%s/procs=%d", mode, n), func(b *testing.B) {
				var r *core.MultiplexResult
				for i := 0; i < b.N; i++ {
					var err error
					r, err = core.RunMultiplex(core.MultiplexConfig{Mode: mode, Processes: n, Completions: 20})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
				b.ReportMetric(r.Throughput, "completions_per_s")
			})
		}
	}
}

// BenchmarkFig5_Latency regenerates the average-inference-latency bars
// of Fig. 5 (latency_s).
func BenchmarkFig5_Latency(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG} {
		for n := 1; n <= 4; n++ {
			b.Run(fmt.Sprintf("%s/procs=%d", mode, n), func(b *testing.B) {
				var r *core.MultiplexResult
				for i := 0; i < b.N; i++ {
					var err error
					r, err = core.RunMultiplex(core.MultiplexConfig{Mode: mode, Processes: n, Completions: 20})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.MeanLatency().Seconds(), "latency_s")
				b.ReportMetric(r.Latencies.Percentile(95).Seconds(), "p95_latency_s")
			})
		}
	}
}

// BenchmarkTable1_Techniques regenerates the quantified Table 1 rows,
// reporting each technique's utilization under the 4-tenant burst.
func BenchmarkTable1_Techniques(b *testing.B) {
	for _, mode := range core.Table1Modes {
		b.Run(string(mode), func(b *testing.B) {
			var r *core.MultiplexResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.RunMultiplex(core.MultiplexConfig{Mode: mode, Processes: 4, Completions: 16})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Utilization*100, "utilization_pct")
			b.ReportMetric(r.Throughput, "completions_per_s")
		})
	}
}

// BenchmarkColdStart_Breakdown measures the §6 cold-start components,
// reporting the 13B model-load time the paper quotes at ~10 s.
func BenchmarkColdStart_Breakdown(b *testing.B) {
	var load13 time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := core.RunColdStart(2 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		load13 = rows[2].ModelLoad
	}
	b.ReportMetric(load13.Seconds(), "llama13b_load_s")
}

// BenchmarkReconfig_WeightCache measures the §6/§7 re-partitioning
// downtimes and the weight-cache speedup.
func BenchmarkReconfig_WeightCache(b *testing.B) {
	var restart, cached time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := core.RunReconfig(2 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		restart, cached = rows[0].Downtime, rows[1].Downtime
	}
	b.ReportMetric(restart.Seconds(), "restart_s")
	b.ReportMetric(cached.Seconds(), "cached_s")
	b.ReportMetric(restart.Seconds()/cached.Seconds(), "speedup_x")
}

// BenchmarkRightsize_Knee runs the §7 right-sizing sweep, reporting
// the recovered saturation point (~20 SMs).
func BenchmarkRightsize_Knee(b *testing.B) {
	spec := simgpu.A100SXM480GB()
	var knee int
	for i := 0; i < b.N; i++ {
		curve, err := rightsize.Sweep(spec.SMs, []int{5, 10, 19, 50, 100},
			func(pct int) (time.Duration, error) {
				return core.Fig2SinglePoint(coreLLaMa(), pct)
			})
		if err != nil {
			b.Fatal(err)
		}
		k, err := rightsize.Knee(curve, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		knee = k.SMs
	}
	b.ReportMetric(float64(knee), "knee_sms")
}

// coreLLaMa returns the default 7B service config for benchmarks.
func coreLLaMa() llm.Config { return llm.LLaMa27B() }

// BenchmarkAblation_BatchVsMultiplex contrasts in-process batching
// against MPS multiplexing for identical total work.
func BenchmarkAblation_BatchVsMultiplex(b *testing.B) {
	var batch4, mps4 float64
	for i := 0; i < b.N; i++ {
		rows, err := core.AblationBatchVsMultiplex(24)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Strategy {
			case "batch x4 (one process)":
				batch4 = r.Throughput
			case "multiplex MPS x4":
				mps4 = r.Throughput
			}
		}
	}
	b.ReportMetric(batch4, "batch4_reqps")
	b.ReportMetric(mps4, "mps4_reqps")
}

// BenchmarkMixedTenancy_RealTime measures the latency-sensitive
// co-tenant study: ResNet p99 next to a LLaMa service.
func BenchmarkMixedTenancy_RealTime(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG} {
		b.Run(string(mode), func(b *testing.B) {
			var p99 time.Duration
			for i := 0; i < b.N; i++ {
				r, err := core.RunMixedTenancy(mode)
				if err != nil {
					b.Fatal(err)
				}
				p99 = r.ResNetP99
			}
			b.ReportMetric(p99.Seconds()*1e3, "resnet_p99_ms")
		})
	}
}

// BenchmarkOpenLoop_Stability runs the Poisson-arrival serving
// scenario, reporting per-technique p99 latency at 0.4 req/s.
func BenchmarkOpenLoop_Stability(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeTimeshare, core.ModeMPS} {
		b.Run(string(mode), func(b *testing.B) {
			var p99 time.Duration
			for i := 0; i < b.N; i++ {
				r, err := core.RunOpenLoop(core.OpenLoopConfig{Mode: mode, Processes: 4, ArrivalRate: 0.4, Requests: 40})
				if err != nil {
					b.Fatal(err)
				}
				p99 = r.Latencies.Percentile(99)
			}
			b.ReportMetric(p99.Seconds(), "p99_s")
		})
	}
}
