// Command benchjson validates and converts the repository's tracked
// benchmark records (BENCH_*.json) — `go test -json` event streams
// produced by `make bench`.
//
// Usage:
//
//	benchjson check FILE...
//	benchjson text FILE...
//
// check verifies each file is a well-formed test2json event stream
// that actually ran benchmarks: every line must parse as an event, at
// least one benchmark result line must be present, and no package may
// have failed. Any violation prints a diagnostic and exits nonzero —
// this is the CI gate that keeps a half-written or truncated record
// from being committed as the current trajectory point.
//
// text re-extracts the raw benchmark output (goos/goarch/pkg headers
// and Benchmark result lines) to stdout in the format benchstat and
// the x/perf tools consume; `make bench-diff` feeds it the committed
// and regenerated records.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// event is the subset of the test2json record shape this tool reads.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson <check|text> FILE...")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	mode := os.Args[1]
	files := os.Args[2:]
	var failed bool
	for _, path := range files {
		var err error
		switch mode {
		case "check":
			err = check(path)
		case "text":
			err = text(path, os.Stdout)
		default:
			usage()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchResult reports whether an output line is a benchmark result
// ("BenchmarkName-N <iters> <value> ns/op ...").
func benchResult(line string) bool {
	return strings.HasPrefix(line, "Benchmark") && strings.Contains(line, "ns/op")
}

// header reports whether an output line is one of the environment
// headers benchstat keys results on.
func header(line string) bool {
	for _, p := range []string{"goos:", "goarch:", "pkg:", "cpu:"} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// scan parses the event stream, calling onLine per reassembled output
// line, and returns the count of benchmark result lines and whether
// any package failed. Output events carry fragments, not lines — the
// testing package flushes a result like "BenchmarkChurn \t" and
// "     1\t 32739 ns/op\n" as separate events when timing runs long —
// so fragments are stitched per (package, test) until a newline
// completes the line. Matching on raw events would miss every split
// result.
func scan(path string, onLine func(line string)) (benches int, failedPkgs []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	pending := make(map[string]string)
	emit := func(line string) {
		if benchResult(strings.TrimSpace(line)) {
			benches++
		}
		if onLine != nil {
			onLine(line)
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return 0, nil, fmt.Errorf("line %d: not a test2json event: %v", lineNo, err)
		}
		if ev.Action == "" {
			return 0, nil, fmt.Errorf("line %d: event without an Action", lineNo)
		}
		if ev.Action == "fail" && ev.Test == "" {
			failedPkgs = append(failedPkgs, ev.Package)
		}
		if ev.Action == "output" {
			key := ev.Package + "\x00" + ev.Test
			buf := pending[key] + ev.Output
			for {
				i := strings.IndexByte(buf, '\n')
				if i < 0 {
					break
				}
				emit(buf[:i])
				buf = buf[i+1:]
			}
			pending[key] = buf
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	for _, buf := range pending {
		if buf != "" {
			emit(buf)
		}
	}
	if lineNo == 0 {
		return 0, nil, fmt.Errorf("empty file")
	}
	return benches, failedPkgs, nil
}

func check(path string) error {
	benches, failedPkgs, err := scan(path, nil)
	if err != nil {
		return err
	}
	if len(failedPkgs) > 0 {
		return fmt.Errorf("recorded failing packages: %s", strings.Join(failedPkgs, ", "))
	}
	if benches == 0 {
		return fmt.Errorf("no benchmark results recorded (was -bench set?)")
	}
	fmt.Printf("%s: ok (%d benchmark results)\n", path, benches)
	return nil
}

func text(path string, w *os.File) error {
	_, _, err := scan(path, func(line string) {
		trimmed := strings.TrimSpace(line)
		if benchResult(trimmed) || header(trimmed) {
			fmt.Fprintln(w, line)
		}
	})
	return err
}
