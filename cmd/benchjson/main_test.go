package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeRecord(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	data := ""
	for _, l := range lines {
		data += l + "\n"
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// A result the testing package flushed as two output events — the
// name in one fragment, the timings (and newline) in the next — must
// still count as one benchmark. This is how `go test -json` actually
// records any benchmark slow enough to flush mid-line.
func TestScanStitchesSplitResultLines(t *testing.T) {
	path := writeRecord(t,
		`{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"BenchmarkX         \t"}`,
		`{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"       1\t     32739 ns/op\n"}`,
		`{"Action":"pass","Package":"p"}`,
	)
	benches, failed, err := scan(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if benches != 1 || len(failed) != 0 {
		t.Errorf("benches=%d failed=%v, want 1 stitched result", benches, failed)
	}
}

// Fragments from different packages interleave in the stream; each
// package's partial line must accumulate independently.
func TestScanKeepsPackagesSeparate(t *testing.T) {
	path := writeRecord(t,
		`{"Action":"output","Package":"a","Test":"BenchmarkA","Output":"BenchmarkA \t"}`,
		`{"Action":"output","Package":"b","Test":"BenchmarkB","Output":"BenchmarkB \t"}`,
		`{"Action":"output","Package":"a","Test":"BenchmarkA","Output":"1\t10 ns/op\n"}`,
		`{"Action":"output","Package":"b","Test":"BenchmarkB","Output":"1\t20 ns/op\n"}`,
	)
	benches, _, err := scan(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if benches != 2 {
		t.Errorf("benches=%d, want 2 across interleaved packages", benches)
	}
}

// A fragment left unterminated at EOF (a truncated record) still
// surfaces as a line, so a result without a trailing newline counts.
func TestScanFlushesTrailingFragment(t *testing.T) {
	path := writeRecord(t,
		`{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"BenchmarkX \t1\t5 ns/op"}`,
	)
	benches, _, err := scan(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if benches != 1 {
		t.Errorf("benches=%d, want trailing fragment flushed", benches)
	}
}

func TestScanRejectsMalformed(t *testing.T) {
	if _, _, err := scan(writeRecord(t, `not json`), nil); err == nil {
		t.Error("malformed line accepted")
	}
	if _, _, err := scan(writeRecord(t, `{"Package":"p"}`), nil); err == nil {
		t.Error("event without Action accepted")
	}
}

func TestCheckFlagsFailedPackage(t *testing.T) {
	path := writeRecord(t,
		`{"Action":"output","Package":"p","Output":"BenchmarkX 1 10 ns/op\n"}`,
		`{"Action":"fail","Package":"p"}`,
	)
	if err := check(path); err == nil {
		t.Error("failed package passed check")
	}
}
