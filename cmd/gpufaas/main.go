// Command gpufaas runs ad-hoc scenarios on the partitioning-enabled
// FaaS platform: LLaMa multiplexing with a chosen technique, the
// molecular-design campaign, or an SM sweep.
//
// Usage:
//
//	gpufaas multiplex -mode mps -procs 4 -completions 100
//	gpufaas moldesign -rounds 4 -batch 16
//	gpufaas sweep -percents 5,10,20,50,100
//	gpufaas repart -spec policy=knee,interval=10s
//	gpufaas fleet -gpus80 2 -gpus40 1 -demands "llama:30:20;resnet:10:1"
//	gpufaas fleet -gpus80 64 -gpus40 64 -apps 56 -horizon 10m
//	gpufaas autoscale -gpus 6 -horizon 2h -serve :9190
//	gpufaas tracediff -a a.json -b b.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/moldesign"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/live"
	"repro/internal/obs/tsdb"
	"repro/internal/repart"
	"repro/internal/report"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "multiplex":
		err = runMultiplex(os.Args[2:])
	case "moldesign":
		err = runMolDesign(os.Args[2:])
	case "sweep":
		err = runSweep(os.Args[2:])
	case "pack":
		err = runPack(os.Args[2:])
	case "fleet":
		err = runFleet(os.Args[2:])
	case "autoscale":
		err = runAutoscaleCell(os.Args[2:])
	case "repart":
		err = runRepart(os.Args[2:])
	case "tracediff":
		err = runTraceDiff(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpufaas:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gpufaas <multiplex|moldesign|sweep|pack|fleet|autoscale|repart|tracediff> [flags]`)
	os.Exit(2)
}

// writeArtifact creates path and hands the file to fn.
func writeArtifact(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startServe binds the live observability server when addr is
// non-empty (nil server otherwise — every call site is nil-tolerant).
func startServe(addr string) (*live.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv := live.NewServer()
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, fmt.Errorf("-serve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gpufaas: live observability on http://%s\n", bound)
	srv.Progress().SetPhase("running")
	return srv, nil
}

// serveLinger keeps the completed run's telemetry served until the
// process is interrupted, so the endpoints stay curl-able.
func serveLinger(srv *live.Server) {
	if srv == nil {
		return
	}
	srv.Progress().SetPhase("done")
	fmt.Fprintln(os.Stderr, "gpufaas: run complete; still serving — interrupt (Ctrl-C) to exit")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}

// attribFlags holds the per-run attribution/SLO flags shared by the
// multiplex and repart subcommands.
type attribFlags struct {
	attrib, flame, slo, alerts *string
}

func addAttribFlags(fs *flag.FlagSet) attribFlags {
	return attribFlags{
		attrib: fs.String("attrib", "", "write the latency-attribution JSON for this run"),
		flame:  fs.String("flame", "", "write folded flamegraph stacks for this run"),
		slo:    fs.String("slo", "", "SLO burn-rate rules app:latency:target[:window], comma-separated"),
		alerts: fs.String("alerts", "", "write the SLO alert stream for this run (requires -slo)"),
	}
}

// validate checks flag consistency and reports whether the run needs
// deep instrumentation for attribution.
func (a attribFlags) validate() (observe bool, err error) {
	if *a.alerts != "" && *a.slo == "" {
		return false, fmt.Errorf("-alerts requires -slo")
	}
	if *a.slo != "" {
		if _, err := analyze.ParseSLOSpec(*a.slo); err != nil {
			return false, fmt.Errorf("-slo: %w", err)
		}
	}
	return *a.attrib != "" || *a.flame != "" || *a.alerts != "", nil
}

// write exports the requested attribution artifacts from one run's
// collector.
func (a attribFlags) write(c *obs.Collector) error {
	if *a.attrib == "" && *a.flame == "" && *a.alerts == "" {
		return nil
	}
	rep := analyze.Analyze(c)
	if *a.attrib != "" {
		if err := writeArtifact(*a.attrib, func(w *os.File) error {
			return rep.WriteJSON(w)
		}); err != nil {
			return err
		}
	}
	if *a.flame != "" {
		if err := writeArtifact(*a.flame, func(w *os.File) error {
			return analyze.WriteFolded(w, rep)
		}); err != nil {
			return err
		}
	}
	if *a.alerts != "" {
		if err := writeArtifact(*a.alerts, func(w *os.File) error {
			return analyze.WriteAlerts(w, c)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runTraceDiff compares two attribution JSON artifacts written with
// -attrib and prints the per-phase delta table.
func runTraceDiff(args []string) error {
	fs := flag.NewFlagSet("tracediff", flag.ExitOnError)
	aPath := fs.String("a", "", "baseline attribution JSON")
	bPath := fs.String("b", "", "comparison attribution JSON")
	outPath := fs.String("o", "", "also write the machine-readable diff JSON here")
	labelA := fs.String("label-a", "", "label for run A (default: the -a path)")
	labelB := fs.String("label-b", "", "label for run B (default: the -b path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("tracediff needs -a and -b attribution JSON files")
	}
	if *labelA == "" {
		*labelA = *aPath
	}
	if *labelB == "" {
		*labelB = *bPath
	}
	read := func(path string) (*analyze.Report, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return analyze.ReadReport(f)
	}
	a, err := read(*aPath)
	if err != nil {
		return err
	}
	b, err := read(*bPath)
	if err != nil {
		return err
	}
	d := analyze.Diff(a, b, *labelA, *labelB)
	if *outPath != "" {
		if err := writeArtifact(*outPath, func(w *os.File) error {
			return d.WriteJSON(w)
		}); err != nil {
			return err
		}
	}
	return d.WriteText(os.Stdout)
}

func runMultiplex(args []string) error {
	fs := flag.NewFlagSet("multiplex", flag.ExitOnError)
	mode := fs.String("mode", "mps", "timeshare | mps-default | mps | mig | vgpu")
	procs := fs.Int("procs", 4, "concurrent model processes (1-4)")
	completions := fs.Int("completions", 100, "total completions")
	tokens := fs.Int("tokens", 20, "output tokens per completion")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON file for this run")
	metricsOut := fs.String("metrics", "", "write Prometheus text metrics for this run")
	stream := fs.Bool("stream", false, "stream the -trace spans to disk as they end (bounded memory; byte-identical output)")
	sample := fs.Int("sample", 0, "with -stream, keep ~1/N of task trees in the trace")
	chaos := fs.String("chaos", "", "seeded fault-injection spec, e.g. seed=7,rate=0.5")
	serveAddr := fs.String("serve", "", "serve live observability over HTTP on this address, e.g. 127.0.0.1:9190")
	attrib := addAttribFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	attribObserve, err := attrib.validate()
	if err != nil {
		return err
	}
	if *stream && attribObserve {
		return fmt.Errorf("-stream is incompatible with -attrib/-flame/-alerts here; use paperbench -stream for streamed attribution")
	}
	srv, err := startServe(*serveAddr)
	if err != nil {
		return err
	}
	cfg := core.MultiplexConfig{
		Mode:         core.Mode(*mode),
		Processes:    *procs,
		Completions:  *completions,
		OutputTokens: *tokens,
		Observe:      *traceOut != "" || *metricsOut != "" || attribObserve,
		SLO:          *attrib.slo,
	}
	// -serve: attach the run's series store and, when no snapshot
	// export needs the retained spans (or the trace already streams),
	// a live span tail.
	var tail *live.SpanTail
	if srv != nil {
		scope := fmt.Sprintf("multiplex/%s/p%d", cfg.Mode, cfg.Processes)
		streamedTrace := *stream && *traceOut != ""
		if streamedTrace || (*traceOut == "" && !attribObserve) {
			tail = srv.Tail(scope, 0)
		}
		cfg.TSDB = &tsdb.Config{}
		cfg.OnPlatform = func(pl *core.Platform) {
			srv.AttachDB(scope, pl.TSDB)
		}
	}
	// Streaming trace: the section renders to the file as spans end;
	// only the envelope is added afterwards via the stream splice.
	var streamFile *os.File
	var streamBuf *bufio.Writer
	var streamSec *obs.TraceSection
	if *stream && *traceOut != "" {
		f, err := os.CreateTemp("", "gpufaas-*.trace")
		if err != nil {
			return err
		}
		defer func() { f.Close(); os.Remove(f.Name()) }()
		streamFile = f
		streamBuf = bufio.NewWriterSize(f, 1<<20)
		cfg.OnCollector = func(c *obs.Collector) {
			streamSec = obs.NewTraceSection(streamBuf, 1, fmt.Sprintf("multiplex/%s/p%d", cfg.Mode, cfg.Processes))
			if tail != nil {
				c.SetSink(live.Tee(streamSec, tail))
			} else {
				c.SetSink(streamSec)
			}
			if *sample > 1 {
				c.SetSampleMod(*sample)
			}
		}
	} else if tail != nil {
		cfg.OnCollector = func(c *obs.Collector) { c.SetSink(tail) }
	}
	if *chaos != "" {
		spec, err := fault.ParseSpec(*chaos)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		cfg.Chaos = &spec
	}
	r, err := core.RunMultiplex(cfg)
	if err != nil {
		return err
	}
	if tail != nil && streamSec == nil {
		r.Obs.Close() // flush parked daemon spans into the live tail
	}
	if *traceOut != "" {
		if streamSec != nil {
			r.Obs.Close() // flush parked daemon spans into the section
			if err := streamSec.Err(); err != nil {
				return err
			}
			if err := streamBuf.Flush(); err != nil {
				return err
			}
			if err := writeArtifact(*traceOut, func(w *os.File) error {
				if _, err := streamFile.Seek(0, io.SeekStart); err != nil {
					return err
				}
				ts := obs.NewTraceStream(w)
				if err := ts.Append(bufio.NewReaderSize(streamFile, 1<<20)); err != nil {
					return err
				}
				return ts.Close()
			}); err != nil {
				return err
			}
		} else if err := writeArtifact(*traceOut, func(w *os.File) error {
			return obs.WriteChromeTrace(w, r.Obs)
		}); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeArtifact(*metricsOut, func(w *os.File) error {
			return obs.WritePrometheus(w, r.Obs)
		}); err != nil {
			return err
		}
	}
	if attribObserve {
		r.Obs.SetScope(fmt.Sprintf("multiplex/%s/p%d", r.Mode, r.Processes))
		if err := attrib.write(r.Obs); err != nil {
			return err
		}
	}
	fmt.Printf("mode=%s procs=%d completions=%d\n", r.Mode, r.Processes, r.Completions)
	fmt.Printf("  preload (cold start, excluded): %.2fs\n", r.PreloadTime.Seconds())
	fmt.Printf("  makespan:      %.2fs\n", r.Makespan.Seconds())
	fmt.Printf("  throughput:    %.3f completions/s\n", r.Throughput)
	fmt.Printf("  latency mean:  %.2fs  p50 %.2fs  p95 %.2fs  max %.2fs\n",
		r.Latencies.Mean().Seconds(), r.Latencies.Percentile(50).Seconds(),
		r.Latencies.Percentile(95).Seconds(), r.Latencies.Max().Seconds())
	fmt.Printf("  utilization:   %.0f%%\n", r.Utilization*100)
	if r.Checker != nil {
		fmt.Printf("  chaos:         %d faults injected, %d completions failed terminally (outcomes %v)\n",
			r.Faults, r.Failed, r.Checker.Outcomes())
		if err := r.Checker.Err(); err != nil {
			return fmt.Errorf("task-state invariant violated: %w", err)
		}
	}
	serveLinger(srv)
	return nil
}

func runMolDesign(args []string) error {
	fs := flag.NewFlagSet("moldesign", flag.ExitOnError)
	rounds := fs.Int("rounds", 4, "active-learning rounds")
	batch := fs.Int("batch", 16, "simulations per round")
	initial := fs.Int("initial", 32, "initial random simulations")
	pool := fs.Int("pool", 4000, "candidates scored per round")
	seed := fs.Int64("seed", 1, "campaign seed")
	gantt := fs.Bool("gantt", true, "print the phase timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := moldesign.DefaultConfig()
	cfg.Rounds = *rounds
	cfg.BatchSize = *batch
	cfg.InitialPool = *initial
	cfg.CandidatePool = *pool
	cfg.Seed = *seed
	res, err := core.RunMolDesign(cfg)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Printf("campaign finished in %.1fs (virtual): dataset=%d best IP=%.3f (initial %.3f, pool mean %.3f)\n",
		res.Makespan.Seconds(), rep.Dataset, rep.BestIP, rep.InitialBestIP, rep.PoolMeanIP)
	for i, m := range rep.RoundBatchMeanIP {
		fmt.Printf("  round %d selected-batch mean IP: %.3f\n", i+1, m)
	}
	fmt.Printf("GPU busy %.0f%% with %d idle gaps\n", res.GPUBusyFraction*100, res.GPUIdleGaps)
	if *gantt {
		fmt.Print(res.Trace.Gantt(trace.GanttOpts{Width: 100, GroupBy: "kind", Glyphs: map[string]rune{
			"simulation": 'S', "training": 'T', "inference": 'I',
		}}))
	}
	return nil
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	percentsArg := fs.String("percents", "5,10,15,19,25,37,50,75,100", "MPS percentages")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var percents []int
	for _, p := range strings.Split(*percentsArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("bad percentage %q", p)
		}
		percents = append(percents, v)
	}
	return report.Fig2(os.Stdout, percents)
}

// runRepart runs the phase-shifted two-tenant scenario once, under a
// static plan (-static) or under the online repartitioning controller
// (-repart SPEC, or the controller defaults when both flags are unset).
func runRepart(args []string) error {
	fs := flag.NewFlagSet("repart", flag.ExitOnError)
	specArg := fs.String("spec", "", "controller spec, e.g. policy=knee,interval=10s,delta=5")
	static := fs.String("static", "", "run a static baseline instead: timeshare | mps-default | mps | mig | vgpu")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON file for this run")
	metricsOut := fs.String("metrics", "", "write Prometheus text metrics for this run")
	serveAddr := fs.String("serve", "", "serve live observability over HTTP on this address, e.g. 127.0.0.1:9190")
	attrib := addAttribFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specArg != "" && *static != "" {
		return fmt.Errorf("-spec and -static are mutually exclusive")
	}
	attribObserve, err := attrib.validate()
	if err != nil {
		return err
	}
	srv, err := startServe(*serveAddr)
	if err != nil {
		return err
	}
	cfg := core.PhaseShiftConfig{
		Observe: *traceOut != "" || *metricsOut != "" || attribObserve,
		SLO:     *attrib.slo,
	}
	if *static != "" {
		cfg.Mode = core.Mode(*static)
	} else {
		spec, err := repart.ParseSpec(*specArg)
		if err != nil {
			return fmt.Errorf("-spec: %w", err)
		}
		cfg.Repart = &spec
	}
	// -serve: the platform hook attaches the run's series store under
	// the scope RunPhaseShift sets; the live span tail attaches only
	// when no snapshot export needs the retained spans.
	var tail *live.SpanTail
	if srv != nil {
		cfg.TSDB = &tsdb.Config{}
		wantTail := *traceOut == "" && !attribObserve
		cfg.OnPlatform = func(pl *core.Platform) {
			srv.AttachDB(pl.Obs.Scope(), pl.TSDB)
			if wantTail {
				tail = srv.Tail(pl.Obs.Scope(), 0)
				pl.Obs.SetSink(tail)
			}
		}
	}
	r, err := core.RunPhaseShift(cfg)
	if err != nil {
		return err
	}
	if tail != nil {
		r.Obs.Close() // flush parked daemon spans into the live tail
	}
	if *traceOut != "" {
		if err := writeArtifact(*traceOut, func(w *os.File) error {
			return obs.WriteChromeTrace(w, r.Obs)
		}); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeArtifact(*metricsOut, func(w *os.File) error {
			return obs.WritePrometheus(w, r.Obs)
		}); err != nil {
			return err
		}
	}
	if attribObserve {
		scope := "repart/static-" + string(r.Mode)
		if r.Repart {
			scope = "repart/controller"
		}
		r.Obs.SetScope(scope)
		if err := attrib.write(r.Obs); err != nil {
			return err
		}
	}
	plan := "static " + string(r.Mode)
	if r.Repart {
		plan = "online controller"
	}
	fmt.Printf("plan=%s\n", plan)
	fmt.Printf("  preload (cold start, excluded): %.2fs\n", r.PreloadTime.Seconds())
	fmt.Printf("  makespan:      %.2fs\n", r.Makespan.Seconds())
	fmt.Printf("  latency mean:  %.2fs  p50 %.2fs  p95 %.2fs  max %.2fs\n",
		r.Latencies.Mean().Seconds(), r.Latencies.Percentile(50).Seconds(),
		r.Latencies.Percentile(95).Seconds(), r.Latencies.Max().Seconds())
	fmt.Printf("  transitions:   %d\n", r.Transitions)
	fmt.Printf("  weight cache:  %d hits, %d misses\n", r.CacheHits, r.CacheMisses)
	serveLinger(srv)
	return nil
}

// runPack plans a partitioning for a set of tenant demands:
//
//	gpufaas pack -spec a100-80gb -tenant llama:21:18 -tenant resnet:10:1
//
// Each -tenant is name:SMs:memGB. Both an MPS percentage plan and a
// placement-validated MIG layout are printed.
func runPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	specName := fs.String("spec", "a100-80gb", "device spec (a100-40gb | a100-80gb)")
	var tenants tenantFlags
	fs.Var(&tenants, "tenant", "tenant demand as name:SMs:memGB (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(tenants) == 0 {
		return fmt.Errorf("pack needs at least one -tenant name:SMs:memGB")
	}
	var spec simgpu.DeviceSpec
	switch *specName {
	case "a100-40gb":
		spec = simgpu.A100SXM440GB()
	case "a100-80gb":
		spec = simgpu.A100SXM480GB()
	default:
		return fmt.Errorf("unknown spec %q", *specName)
	}
	if mps, err := rightsize.PackMPS(spec, tenants); err != nil {
		fmt.Printf("MPS plan: infeasible: %v\n", err)
	} else {
		fmt.Printf("MPS plan (total %d%%, oversubscribed=%v):\n", mps.TotalPercent, mps.Oversubscribed)
		for _, a := range mps.Assignments {
			fmt.Printf("  %-12s CUDA_MPS_ACTIVE_THREAD_PERCENTAGE=%d\n", a.Tenant, a.Percent)
		}
	}
	if mig, err := rightsize.PackMIG(spec, tenants); err != nil {
		fmt.Printf("MIG plan: infeasible: %v\n", err)
	} else {
		fmt.Printf("MIG plan (layout %v):\n", mig.Layout)
		for _, a := range mig.Assignments {
			fmt.Printf("  %-12s %s\n", a.Tenant, a.Profile)
		}
	}
	return nil
}

// runFleet drives the fleet-layer packer directly. With -demands it
// packs a fixed tenant set onto the inventory and prints each granted
// segment plus the per-GPU fragmentation; without it, it runs the
// seeded churn scenario and prints the admission/fragmentation
// summary.
//
//	gpufaas fleet -gpus80 2 -gpus40 1 -demands "llama:30:20;resnet:10:1"
//	gpufaas fleet -gpus80 64 -gpus40 64 -apps 56 -horizon 10m -serve :9190
func runFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	gpus80 := fs.Int("gpus80", 0, "A100-80GB parts (default: 2 with -demands, 64 for the scenario)")
	gpus40 := fs.Int("gpus40", 0, "A100-40GB parts (default: 1 with -demands, 64 for the scenario)")
	demands := fs.String("demands", "", `pack a fixed tenant set: "name:SMs[:memGB];..." (e.g. "llama:30:20;resnet:10:1")`)
	apps := fs.Int("apps", 0, "scenario: distinct applications (default 56)")
	horizon := fs.Duration("horizon", 0, "scenario: arrival horizon on the virtual clock (default 10m)")
	rate := fs.Float64("rate", 0, "scenario: tenant arrivals per second (default 2.0)")
	seed := fs.Int64("seed", 0, "scenario: churn RNG seed (default 1)")
	serveAddr := fs.String("serve", "", "scenario: serve live observability over HTTP on this address")
	alertsOut := fs.String("alerts", "", "scenario: write the alert-rule history (fleet pack) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *demands != "" {
		return runFleetPack(*gpus80, *gpus40, *demands)
	}
	srv, err := startServe(*serveAddr)
	if err != nil {
		return err
	}
	cfg := core.FleetConfig{
		GPUs80: *gpus80, GPUs40: *gpus40, Apps: *apps,
		Duration: *horizon, ArrivalRate: *rate, Seed: *seed,
	}
	if srv != nil {
		cfg.TSDB = &tsdb.Config{}
		cfg.OnDB = func(db *tsdb.DB) { srv.AttachDB("fleet", db) }
		cfg.OnCollector = func(c *obs.Collector) { c.SetSink(srv.Tail("fleet", 0)) }
	}
	if *alertsOut != "" && cfg.TSDB == nil {
		// The alert engine lives on the series store; -alerts forces one
		// on even without -serve.
		cfg.TSDB = &tsdb.Config{}
	}
	r, err := core.RunFleet(cfg)
	if err != nil {
		return err
	}
	if *alertsOut != "" {
		if err := writeArtifact(*alertsOut, func(w *os.File) error {
			return tsdb.WriteAlertHistory(w, "", r.TSDB)
		}); err != nil {
			return err
		}
	}
	if srv != nil {
		r.Obs.Close() // flush parked daemon spans into the live tail
	}
	fmt.Printf("fleet: %d GPUs, %d apps, horizon %s, seed %d\n",
		r.GPUs, r.Apps, cfg.WithDefaults().Duration, cfg.WithDefaults().Seed)
	fmt.Printf("  arrivals:      %d placed, %d rejected of %d (attainment %.1f%%)\n",
		r.Placed, r.Rejected, r.Arrivals, r.Attainment*100)
	for _, cs := range r.Classes {
		att := 100.0
		if cs.Arrivals > 0 {
			att = 100 * float64(cs.Placed) / float64(cs.Arrivals)
		}
		fmt.Printf("    %-9s %d/%d (%.1f%%)\n", cs.Class+":", cs.Placed, cs.Arrivals, att)
	}
	fmt.Printf("  peak tenants:  %d\n", r.PeakTenants)
	if len(r.FragSeries) > 0 {
		var peak float64
		for _, p := range r.FragSeries {
			if p.Frag > peak {
				peak = p.Frag
			}
		}
		last := r.FragSeries[len(r.FragSeries)-1]
		fmt.Printf("  fragmentation: peak %.4f, at horizon %.4f (%d MIG / %d MPS / %d empty GPUs)\n",
			peak, last.Frag, last.MIG, last.MPS, last.Empty)
	}
	fmt.Printf("  rebalances:    %d (%d applied, %d tenants moved, max gap %.4f, %d scratch-infeasible)\n",
		r.Rebalances, r.RebalancesApplied, r.Moved, r.MaxGap, r.ScratchInfeasible)
	fmt.Printf("  drain:         %d evicted, final frag %.4f, makespan %s\n",
		r.Evicted, r.FinalFrag, r.Makespan.Round(time.Millisecond))
	serveLinger(srv)
	return nil
}

// runAutoscaleCell runs one serving cell of the SLO-driven autoscaling
// scenario: diurnal, bursty traffic against either the hybrid
// autoscaler (default) or a static block count (-static N), printing
// demand, latency, economics, and scaling activity.
//
//	gpufaas autoscale -gpus 6 -horizon 2h -serve :9190
//	gpufaas autoscale -gpus 6 -static 6 -horizon 2h
func runAutoscaleCell(args []string) error {
	fs := flag.NewFlagSet("autoscale", flag.ExitOnError)
	gpus := fs.Int("gpus", 0, "provider pool size (default 6)")
	static := fs.Int("static", 0, "provision this many blocks statically instead of autoscaling")
	horizon := fs.Duration("horizon", 0, "traffic horizon on the virtual clock (default 2h)")
	hold := fs.Duration("hold", 0, "keep the cell open this long after drain (observes scale-to-zero)")
	seed := fs.Int64("seed", 0, "traffic and shed RNG seed (default 1)")
	serveAddr := fs.String("serve", "", "serve live observability over HTTP on this address")
	alertsOut := fs.String("alerts", "", "write the alert-rule history (autoscale pack + SLO burn) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := startServe(*serveAddr)
	if err != nil {
		return err
	}
	cfg := core.AutoscaleConfig{
		GPUs: *gpus, StaticBlocks: *static, Seed: *seed, DrainHold: *hold,
	}.WithDefaults()
	if *horizon > 0 {
		cfg.Traffic.Horizon = *horizon
	}
	if srv != nil {
		cfg.TSDB = &tsdb.Config{}
		cfg.OnDB = func(db *tsdb.DB) { srv.AttachDB("autoscale", db) }
		cfg.OnCollector = func(c *obs.Collector) { c.SetSink(srv.Tail("autoscale", 0)) }
	}
	r, err := core.RunAutoscale(cfg)
	if err != nil {
		return err
	}
	if *alertsOut != "" {
		// The autoscale cell always carries a series store, so the alert
		// history is available with or without -serve.
		if err := writeArtifact(*alertsOut, func(w *os.File) error {
			return tsdb.WriteAlertHistory(w, "", r.TSDB)
		}); err != nil {
			return err
		}
	}
	if srv != nil {
		r.Obs.Close() // flush parked daemon spans into the live tail
	}
	mode := fmt.Sprintf("static %d blocks", cfg.StaticBlocks)
	if r.Autoscaled {
		mode = fmt.Sprintf("autoscaled %d..%d blocks", cfg.Policy.MinBlocks, r.Blocks)
	}
	fmt.Printf("autoscale: %d GPUs, %s, horizon %s, seed %d\n",
		cfg.GPUs, mode, cfg.Traffic.Horizon, cfg.Seed)
	fmt.Printf("  traffic:     %d users, peak %.2f req/s, period %s, %d bursts\n",
		cfg.Traffic.Users, float64(cfg.Traffic.Users)*cfg.Traffic.PerUserRate,
		cfg.Traffic.Period, len(cfg.Traffic.Bursts))
	fmt.Printf("  demand:      %d arrivals, %d completed, %d good, %d shed, %d failed\n",
		r.Arrivals, r.Completed, r.Good, r.Shed, r.Failed)
	fmt.Printf("  slo:         %s@%.2f -> attainment %.1f%%, shed rate %.1f%%\n",
		cfg.SLOLatency, cfg.SLOTarget, r.Attainment*100, r.ShedRate*100)
	fmt.Printf("  latency:     p50 %s, p95 %s, p99 %s (served only)\n",
		r.Latencies.Percentile(50).Round(time.Millisecond),
		r.Latencies.Percentile(95).Round(time.Millisecond),
		r.Latencies.Percentile(99).Round(time.Millisecond))
	fmt.Printf("  economics:   %.0f GPU-seconds, %.2f per good task, %d cold starts (%.1f tasks each)\n",
		r.GPUSeconds, r.GPUSecondsPerGood, r.ColdStarts, r.TasksPerColdStart)
	fmt.Printf("  scaling:     %d out, %d in, peak %d blocks, final %d\n",
		r.ScaleOuts, r.ScaleIns, r.PeakBlocks, r.FinalBlocks)
	fmt.Printf("  makespan:    %s (%d events)\n", r.Makespan.Round(time.Millisecond), r.Events)
	serveLinger(srv)
	return nil
}

// runFleetPack is the -demands mode: a one-shot greedy pack with the
// granted segments and the fragmentation they leave behind.
func runFleetPack(n80, n40 int, spec string) error {
	if n80 <= 0 && n40 <= 0 {
		n80, n40 = 2, 1
	}
	ds, err := fleet.ParseDemands(spec)
	if err != nil {
		return fmt.Errorf("-demands: %w", err)
	}
	var specs []simgpu.DeviceSpec
	for i := 0; i < n80; i++ {
		specs = append(specs, simgpu.A100SXM480GB())
	}
	for i := 0; i < n40; i++ {
		specs = append(specs, simgpu.A100SXM440GB())
	}
	cl, err := fleet.New(fleet.Config{Inventory: fleet.NewInventory(specs...)})
	if err != nil {
		return err
	}
	fmt.Printf("inventory: %d GPUs (%dx80GB + %dx40GB)\n", n80+n40, n80, n40)
	for _, d := range ds {
		p, err := cl.Place(d)
		if err != nil {
			fmt.Printf("  %-12s unplaceable: %v\n", d.Tenant, err)
			continue
		}
		seg := p.Segment
		switch seg.Kind {
		case fleet.SegMIG:
			fmt.Printf("  %-12s %s  %s@slice%d  %d%% (%d SMs, %.1f GB)\n",
				d.Tenant, seg.GPU, seg.Profile, seg.Start, seg.Percent, seg.SMs, float64(seg.MemBytes)/1e9)
		default:
			fmt.Printf("  %-12s %s  whole-GPU MPS  %d%% (%d SMs, %.1f GB)\n",
				d.Tenant, seg.GPU, seg.Percent, seg.SMs, float64(seg.MemBytes)/1e9)
		}
	}
	rep := cl.Fragmentation()
	for _, g := range rep.PerGPU {
		if g.Mode == "empty" {
			continue
		}
		fmt.Printf("fragmentation: %-6s %-5s %.4f\n", g.ID, g.Mode, g.Frag)
	}
	fmt.Printf("fragmentation: fleet mean %.4f over %d GPUs\n", rep.Fleet, len(rep.PerGPU))
	return nil
}

// tenantFlags parses repeated -tenant name:SMs:memGB flags.
type tenantFlags []rightsize.TenantDemand

func (t *tenantFlags) String() string { return fmt.Sprint([]rightsize.TenantDemand(*t)) }

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want name:SMs:memGB, got %q", v)
	}
	sms, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad SMs in %q", v)
	}
	gb, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad memGB in %q", v)
	}
	*t = append(*t, rightsize.TenantDemand{
		Name:     parts[0],
		SMs:      sms,
		MemBytes: int64(gb * 1e9),
	})
	return nil
}
