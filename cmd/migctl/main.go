// Command migctl administers simulated MIG partitions with an
// nvidia-smi-like workflow, persisting state to a JSON file so that
// the layout survives across invocations.
//
//	migctl -f node.json enable  -i 0
//	migctl -f node.json create  -i 0 -profile 3g.40gb
//	migctl -f node.json list    -i 0
//	migctl -f node.json destroy -i 0 -uuid MIG-gpu0-1-3g.40gb
//	migctl -f node.json disable -i 0
//	migctl -f node.json profiles -i 0
//	migctl -f node.json env     -i 0 -uuid MIG-gpu0-1-3g.40gb
//
// The printed MIG UUIDs go straight into the Parsl-style executor's
// available_accelerators (paper Listing 3) or CUDA_VISIBLE_DEVICES.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/devstate"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

func main() {
	fs := flag.NewFlagSet("migctl", flag.ExitOnError)
	file := fs.String("f", "node.json", "node state file")
	idx := fs.Int("i", 0, "device index")
	profile := fs.String("profile", "", "MIG profile (create)")
	uuid := fs.String("uuid", "", "instance UUID (destroy, env)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: migctl [flags] <enable|disable|create|destroy|list|profiles|env>")
		fs.PrintDefaults()
	}
	// Accept "migctl <verb> [flags]" and "migctl [flags] <verb>".
	args := os.Args[1:]
	verb := ""
	if len(args) > 0 && args[0][0] != '-' {
		verb, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if verb == "" && fs.NArg() > 0 {
		verb = fs.Arg(0)
	}
	if verb == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := run(verb, *file, *idx, *profile, *uuid); err != nil {
		fmt.Fprintln(os.Stderr, "migctl:", err)
		os.Exit(1)
	}
}

func run(verb, file string, idx int, profile, uuid string) error {
	state, err := devstate.Load(file)
	if err != nil {
		return err
	}
	dev, err := state.Device(idx)
	if err != nil {
		return err
	}
	save := true
	switch verb {
	case "enable":
		if err := dev.EnableMIG(); err != nil {
			return err
		}
		fmt.Printf("MIG mode enabled on %s (requires GPU reset on real hardware)\n", dev.Name)
	case "disable":
		if err := dev.DisableMIG(); err != nil {
			return err
		}
		fmt.Printf("MIG mode disabled on %s\n", dev.Name)
	case "create":
		if profile == "" {
			return fmt.Errorf("create needs -profile")
		}
		u, err := dev.CreateInstance(profile)
		if err != nil {
			return err
		}
		fmt.Printf("created %s\n", u)
	case "destroy":
		if uuid == "" {
			return fmt.Errorf("destroy needs -uuid")
		}
		if err := dev.DestroyInstance(uuid); err != nil {
			return err
		}
		fmt.Printf("destroyed %s\n", uuid)
	case "list":
		save = false
		_, ins, err := dev.Materialize()
		if err != nil {
			return err
		}
		fmt.Printf("%s (%s): MIG %v, %d instance(s)\n", dev.Name, dev.Spec, dev.MIGEnabled, len(ins))
		for _, in := range ins {
			fmt.Printf("  %-30s profile %-8s slices %d-%d  %d SMs  %.0f GB\n",
				in.UUID(), in.Profile().Name, in.StartSlice(),
				in.StartSlice()+in.Profile().Slices-1, in.SMs(),
				float64(in.Profile().MemBytes)/1e9)
		}
	case "profiles":
		save = false
		spec, err := devstate.SpecByName(dev.Spec)
		if err != nil {
			return err
		}
		profs := simgpu.MIGProfilesFor(spec)
		if len(profs) == 0 {
			fmt.Printf("%s has no MIG support\n", spec.Name)
			return nil
		}
		for _, p := range profs {
			fmt.Printf("  %-8s %d compute slice(s), %d SMs, %.0f GB\n",
				p.Name, p.Slices, p.Slices*spec.SMsPerSlice, float64(p.MemBytes)/1e9)
		}
	case "env":
		save = false
		if uuid == "" {
			return fmt.Errorf("env needs -uuid")
		}
		b := gpuctl.Binding{Accelerator: uuid}
		for k, v := range b.Environ() {
			fmt.Printf("export %s=%s\n", k, v)
		}
	default:
		return fmt.Errorf("unknown verb %q", verb)
	}
	if save {
		return state.Save(file)
	}
	return nil
}
