// Command mpsctl mimics nvidia-cuda-mps-control for the simulated
// node: start/stop the per-device daemon, set the default active
// thread percentage, and print the environment a client process must
// export for a given GPU percentage (the mechanism the paper's Parsl
// extension automates, §4.1).
//
//	mpsctl -f node.json start  -i 0
//	mpsctl -f node.json set-default -i 0 -pct 30
//	mpsctl -f node.json status
//	mpsctl -f node.json env    -i 0 -pct 25
//	mpsctl -f node.json quit   -i 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/devstate"
	"repro/internal/gpuctl"
)

func main() {
	fs := flag.NewFlagSet("mpsctl", flag.ExitOnError)
	file := fs.String("f", "node.json", "node state file")
	idx := fs.Int("i", 0, "device index")
	pct := fs.Int("pct", 0, "GPU percentage (set-default, env)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mpsctl [flags] <start|quit|set-default|status|env>")
		fs.PrintDefaults()
	}
	args := os.Args[1:]
	verb := ""
	if len(args) > 0 && args[0][0] != '-' {
		verb, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if verb == "" && fs.NArg() > 0 {
		verb = fs.Arg(0)
	}
	if verb == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := run(verb, *file, *idx, *pct); err != nil {
		fmt.Fprintln(os.Stderr, "mpsctl:", err)
		os.Exit(1)
	}
}

func run(verb, file string, idx, pct int) error {
	state, err := devstate.Load(file)
	if err != nil {
		return err
	}
	save := true
	switch verb {
	case "status":
		save = false
		for i, d := range state.Devices {
			status := "stopped"
			if d.MPSRunning {
				status = "running"
				if d.MPSDefaultPct > 0 {
					status += " (default " + strconv.Itoa(d.MPSDefaultPct) + "%)"
				}
			}
			if d.MIGEnabled {
				status = "unavailable (MIG mode)"
			}
			fmt.Printf("device %d %s (%s): MPS %s\n", i, d.Name, d.Spec, status)
		}
	case "start":
		dev, err := state.Device(idx)
		if err != nil {
			return err
		}
		if err := dev.StartMPS(); err != nil {
			return err
		}
		fmt.Printf("nvidia-cuda-mps-control started on %s: clients now share the GPU spatially\n", dev.Name)
	case "quit":
		dev, err := state.Device(idx)
		if err != nil {
			return err
		}
		dev.QuitMPS()
		fmt.Printf("MPS daemon on %s stopped: device back to time-sharing\n", dev.Name)
	case "set-default":
		dev, err := state.Device(idx)
		if err != nil {
			return err
		}
		if err := dev.SetMPSDefault(pct); err != nil {
			return err
		}
		fmt.Printf("set_default_active_thread_percentage %d on %s\n", pct, dev.Name)
	case "env":
		save = false
		dev, err := state.Device(idx)
		if err != nil {
			return err
		}
		if !dev.MPSRunning {
			fmt.Fprintln(os.Stderr, "note: MPS daemon not running — the percentage will be inert")
		}
		b := gpuctl.Binding{Accelerator: strconv.Itoa(idx), GPUPercent: pct}
		for _, k := range []string{gpuctl.EnvVisibleDevices, gpuctl.EnvMPSThreadPct} {
			if v, ok := b.Environ()[k]; ok {
				fmt.Printf("export %s=%s\n", k, v)
			}
		}
	default:
		return fmt.Errorf("unknown verb %q", verb)
	}
	if save {
		return state.Save(file)
	}
	return nil
}
