// Command paperbench regenerates every table and figure of the
// paper's evaluation from the simulator.
//
// Usage:
//
//	paperbench <artifact> [flags]
//
// Artifacts: fig1, fig2, fig3, fig4, fig5 (fig4 and fig5 run the same
// experiment and print both), table1, coldstart, reconfig, rightsize,
// all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/moldesign"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/live"
	"repro/internal/obs/tsdb"
	"repro/internal/repart"
	"repro/internal/report"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: paperbench <artifact> [flags]

artifacts:
  fig1       per-layer FLOP variation of CNNs
  fig2       LLaMa-2 latency vs #SMs under MPS
  fig3       molecular-design timeline and GPU idle time
  fig4       completion time, 1-4 processes x {timeshare, MPS, MIG}
  fig5       same experiment, average inference latency
  table1     quantified multiplexing-technique comparison
  coldstart  cold-start breakdown (function init / context / load)
  reconfig   re-partitioning downtime incl. weight-cache ablation
  rightsize  partition right-sizing study
  ablations  design-choice ablations (host gap, mem fraction,
             batching vs multiplexing, vGPU quantum)
  mixed      real-time ResNet next to a LLaMa service
  openloop   Poisson-arrival serving: stability per technique
  repart     phase-shifted tenants: online repartitioning controller
             vs every static Table 1 plan
  attrib     latency attribution: per-phase blame profiles for the
             Table 1 bursts plus the timeshare-vs-MPS trace diff
  scale      million-task throughput: sharded open-loop microtask run
             reporting events/sec, span counts, and retained-window
             memory (see -tasks/-shards/-stream/-compare)
  fleet      fleet-scale placement: fragmentation-aware MIG+MPS
             packing of 50+ apps over a 128-GPU mixed inventory under
             seeded churn, across a 0.5x/1.0x/1.5x offered-load grid
             (see -gpus80/-gpus40/-apps/-horizon/-arrival/-seed;
             purely virtual, byte-identical at any -parallel level)
  autoscale  SLO-driven autoscaling: hybrid block scaling + admission
             control against static provisioning baselines on the same
             diurnal, bursty traffic (see -gpus/-horizon/-seed; purely
             virtual, byte-identical at any -parallel level)
  all        everything, in paper order (repart, attrib, scale, fleet,
             and autoscale excluded: run them explicitly)

modes:
  tracediff  compare two attribution JSON artifacts (written with
             -attrib): paperbench tracediff -a A.json -b B.json
             [-o out.json] [-label-a NAME] [-label-b NAME]

flags:
  -completions N   completions for fig4/fig5/all (default 100)
  -csv DIR         also write fig2/fig4/fig5 series as CSV into DIR
  -parallel N      run up to N independent scenarios concurrently
                   (default: number of CPUs; output is byte-identical
                   at any setting)
  -trace FILE      rerun the fig4/fig5 grid and Table 1 bursts with
                   deep instrumentation and write a Perfetto-loadable
                   Chrome trace-event JSON file
  -metrics FILE    same instrumented rerun, exported as Prometheus
                   text exposition
  -chaos SPEC      run every experiment under seeded fault injection,
                   e.g. -chaos seed=7,rate=0.5 (keys: seed, rate,
                   pfail, kinds=worker+gpu+reconfig+endpoint+submit,
                   after, until, max, reconnect); same seed gives a
                   byte-identical run at any -parallel level
  -repart SPEC     controller spec for the repart artifact, e.g.
                   -repart policy=knee,interval=10s,delta=5 (keys:
                   policy, mode, interval, tolerance, cooldown, delta,
                   min, workers); unset keys take defaults, other
                   artifacts are unaffected
  -attrib FILE     rerun the instrumented grid and write the latency
                   attribution report (per-task phase breakdowns +
                   blame profiles) as JSON — the tracediff input
  -flame FILE      same rerun, exported as folded flamegraph stacks
                   (flamegraph.pl / speedscope)
  -slo SPEC        attach the SLO burn-rate monitor to instrumented
                   reruns: comma-separated app:latency:target[:window]
                   rules, e.g. -slo llama-complete:12s:0.9
  -alerts FILE     write the SLO alert stream (requires -slo). For the
                   scale, fleet, and autoscale artifacts it stands
                   alone: each cell's alert-rule history (resolved
                   incidents + still-active rules from the scenario's
                   default rule pack) renders to FILE, byte-identical
                   at any -parallel level and under -stream
  -stream          export -trace/-metrics/-attrib/-flame/-alerts (and
                   the scale run) in streaming mode: spans flush to
                   exporters as they end instead of being retained;
                   artifacts are byte-identical to snapshot mode
  -sample N        with -stream, deterministically keep ~1/N of task
                   trees in the trace (metrics and attribution see
                   everything regardless)
  -serve ADDR      serve live observability over HTTP on ADDR while
                   the run executes (e.g. -serve 127.0.0.1:9190):
                   /metrics, /api/series, /spans, /progress, /healthz,
                   /debug/pprof. The scale artifact additionally gets
                   per-shard virtual-time series stores and live span
                   tails (tails need -stream). The process keeps
                   serving after the run completes — interrupt it to
                   exit. Without -serve nothing changes.

scale flags:
  -tasks N         total tasks (default 1000000)
  -shards N        independent platform shards (default 8)
  -workers N       CPU workers per shard (default 16)
  -window N        in-flight submissions per shard (default 64)
  -arrival R       per-shard offered load, tasks/sec (default 8000)
  -seed N          arrival/service RNG seed (default 1)
  -compare         run snapshot then streaming and report the
                   events/sec and memory deltas

fleet flags (-arrival and -seed apply here too):
  -gpus80 N        A100-80GB parts in the inventory (default 64)
  -gpus40 N        A100-40GB parts in the inventory (default 64)
  -apps N          distinct applications churning (default 56)
  -horizon D       tenant-arrival horizon on the virtual clock
                   (default 10m)

autoscale flags (-horizon and -seed apply here too):
  -gpus N          provider pool size, one GPU per node (default 6)`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	artifact := os.Args[1]
	if artifact == "tracediff" {
		if err := runTraceDiff("paperbench", os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: tracediff:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(artifact, flag.ExitOnError)
	completions := fs.Int("completions", 100, "completions for the fig4/fig5 experiment")
	csvDir := fs.String("csv", "", "also write figure CSV series into this directory")
	parallel := fs.Int("parallel", runtime.NumCPU(), "max independent scenarios run concurrently")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON file from an instrumented rerun")
	metricsOut := fs.String("metrics", "", "write Prometheus text metrics from an instrumented rerun")
	chaos := fs.String("chaos", "", "seeded fault-injection spec, e.g. seed=7,rate=0.5")
	repartFlag := fs.String("repart", "", "repartitioning-controller spec, e.g. policy=knee,interval=10s")
	attribOut := fs.String("attrib", "", "write the latency-attribution JSON from an instrumented rerun")
	flameOut := fs.String("flame", "", "write folded flamegraph stacks from an instrumented rerun")
	sloSpec := fs.String("slo", "", "SLO burn-rate rules for instrumented reruns, e.g. app:12s:0.9")
	alertsOut := fs.String("alerts", "", "write the SLO alert stream (requires -slo)")
	stream := fs.Bool("stream", false, "export instrumented artifacts in streaming mode")
	sample := fs.Int("sample", 0, "with -stream, keep ~1/N of task trees in the trace")
	tasks := fs.Int("tasks", 0, "scale: total tasks (default 1000000)")
	shards := fs.Int("shards", 0, "scale: independent platform shards (default 8)")
	workers := fs.Int("workers", 0, "scale: CPU workers per shard (default 16)")
	window := fs.Int("window", 0, "scale: in-flight submissions per shard (default 64)")
	arrival := fs.Float64("arrival", 0, "scale: per-shard offered load in tasks/sec (default 8000)")
	seed := fs.Int64("seed", 0, "scale/fleet: RNG seed (default 1)")
	compare := fs.Bool("compare", false, "scale: run snapshot then streaming and report deltas")
	gpus80 := fs.Int("gpus80", 0, "fleet: A100-80GB parts (default 64)")
	gpus40 := fs.Int("gpus40", 0, "fleet: A100-40GB parts (default 64)")
	apps := fs.Int("apps", 0, "fleet: distinct applications (default 56)")
	horizon := fs.Duration("horizon", 0, "fleet/autoscale: arrival horizon on the virtual clock")
	gpus := fs.Int("gpus", 0, "autoscale: provider pool size (default 6)")
	serveAddr := fs.String("serve", "", "serve live observability over HTTP on this address, e.g. 127.0.0.1:9190")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	// scale/fleet/autoscale carry their own alert-rule packs, so -alerts
	// stands alone there; everywhere else it renders the SLO monitor's
	// stream and needs -slo rules to monitor.
	scenarioArtifact := artifact == "scale" || artifact == "fleet" || artifact == "autoscale"
	if *alertsOut != "" && *sloSpec == "" && !scenarioArtifact {
		fmt.Fprintln(os.Stderr, "paperbench: -alerts requires -slo")
		os.Exit(2)
	}
	if *sloSpec != "" {
		if _, err := analyze.ParseSLOSpec(*sloSpec); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: -slo:", err)
			os.Exit(2)
		}
	}
	var repartSpec repart.Spec
	if *repartFlag != "" {
		spec, err := repart.ParseSpec(*repartFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: -repart:", err)
			os.Exit(2)
		}
		repartSpec = spec
		core.SetRepart(&spec)
	}
	if *chaos != "" {
		spec, err := fault.ParseSpec(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: -chaos:", err)
			os.Exit(2)
		}
		core.SetChaos(&spec)
		fmt.Fprintf(os.Stderr, "paperbench: chaos enabled (%s)\n", spec.String())
	}
	harness.SetParallelism(*parallel)
	// -serve: bind the live observability server before the run so its
	// endpoints answer while the scenarios execute.
	var srv *live.Server
	if *serveAddr != "" {
		srv = live.NewServer()
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: -serve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "paperbench: live observability on http://%s\n", bound)
		srv.Progress().SetPhase("running")
	}
	w := os.Stdout
	var err error
	var scenarioAlerts io.Writer
	if *alertsOut != "" && scenarioArtifact {
		f, ferr := os.Create(*alertsOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "paperbench: -alerts:", ferr)
			os.Exit(1)
		}
		defer f.Close()
		scenarioAlerts = f
	}
	switch artifact {
	case "fig1":
		err = report.Fig1(w, []int{1, 8, 32})
	case "fig2":
		err = report.Fig2(w, nil)
	case "fig3":
		err = report.Fig3(w, moldesign.DefaultConfig())
	case "fig4", "fig5":
		err = report.Fig45(w, *completions)
	case "table1":
		err = report.Table1(w)
	case "coldstart":
		err = report.ColdStart(w)
	case "reconfig":
		err = report.Reconfig(w)
	case "rightsize":
		err = report.Rightsize(w)
	case "ablations":
		err = report.Ablations(w)
	case "mixed":
		err = report.MixedTenancy(w)
	case "openloop":
		err = report.OpenLoop(w)
	case "repart":
		err = report.Repart(w, repartSpec)
	case "attrib":
		err = report.Attribution(w, *completions)
	case "scale":
		opts := report.ScaleOptions{
			Tasks: *tasks, Shards: *shards, Workers: *workers, Window: *window,
			ArrivalRate: *arrival, Seed: *seed, SampleMod: *sample,
			Stream: *stream, Compare: *compare, TracePath: *traceOut,
			Alerts: scenarioAlerts,
		}
		if srv != nil {
			// Per-shard series stores, batched progress, and (with
			// -stream) a live span tail teed into each shard's sink.
			srv.Progress().SetShards(core.ScaleConfig{Tasks: *tasks, Shards: *shards}.WithDefaults().Shards)
			opts.Telemetry = &core.ScaleTelemetry{
				TSDB: &tsdb.Config{},
				OnShardDB: func(shard int, db *tsdb.DB) {
					srv.AttachDB(fmt.Sprintf("scale/shard%d", shard), db)
				},
				Progress: srv.Progress(),
			}
			opts.WrapSink = func(shard int, base obs.SpanSink) obs.SpanSink {
				return live.Tee(base, srv.Tail(fmt.Sprintf("scale/shard%d", shard), 0))
			}
		}
		err = report.Scale(w, opts)
	case "fleet":
		opts := report.FleetOptions{
			GPUs80: *gpus80, GPUs40: *gpus40, Apps: *apps,
			Duration: *horizon, ArrivalRate: *arrival, Seed: *seed,
			Stream: *stream, Alerts: scenarioAlerts,
		}
		if srv != nil {
			// One series store per load cell; with -stream a live span
			// tail tees into each cell's sink.
			opts.Telemetry = &report.FleetTelemetry{
				TSDB: &tsdb.Config{},
				OnCellDB: func(load string, db *tsdb.DB) {
					srv.AttachDB("fleet/"+load, db)
				},
			}
			if *stream {
				opts.WrapSink = func(load string, base obs.SpanSink) obs.SpanSink {
					return live.Tee(base, srv.Tail("fleet/"+load, 0))
				}
			}
		}
		err = report.Fleet(w, opts)
	case "autoscale":
		opts := report.AutoscaleOptions{
			GPUs: *gpus, Horizon: *horizon, Seed: *seed,
			Stream: *stream, Alerts: scenarioAlerts,
		}
		if srv != nil {
			// One series store per cell (autoscaled and the static
			// baselines); with -stream a live span tail tees into each
			// cell's sink.
			opts.Telemetry = &report.FleetTelemetry{
				TSDB: &tsdb.Config{},
				OnCellDB: func(cell string, db *tsdb.DB) {
					srv.AttachDB("autoscale/"+cell, db)
				},
			}
			if *stream {
				opts.WrapSink = func(cell string, base obs.SpanSink) obs.SpanSink {
					return live.Tee(base, srv.Tail("autoscale/"+cell, 0))
				}
			}
		}
		err = report.Autoscale(w, opts)
	case "all":
		err = report.All(w, *completions)
	default:
		usage()
	}
	if err == nil && *csvDir != "" {
		err = report.WriteFigureCSVs(*csvDir, *completions)
	}
	// The scale and fleet artifacts run their own span streams; the
	// generic instrumented rerun applies to everything else.
	if err == nil && artifact != "scale" && artifact != "fleet" && artifact != "autoscale" && (*traceOut != "" || *metricsOut != "") {
		err = writeObservability(*traceOut, *metricsOut, *completions, *stream, *sample)
	}
	if err == nil && artifact != "scale" && artifact != "fleet" && artifact != "autoscale" && (*attribOut != "" || *flameOut != "" || *alertsOut != "") {
		err = writeAttribution(*attribOut, *flameOut, *alertsOut, *sloSpec, *completions, *stream)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	if srv != nil {
		// Keep serving the completed run's telemetry (CI and humans
		// curl the endpoints after the fact) until interrupted.
		srv.Progress().SetPhase("done")
		fmt.Fprintln(os.Stderr, "paperbench: run complete; still serving — interrupt (Ctrl-C) to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.Close()
	}
}

// runTraceDiff implements the tracediff mode: compare two attribution
// JSON artifacts (written with -attrib) phase by phase.
func runTraceDiff(prog string, args []string) error {
	fs := flag.NewFlagSet("tracediff", flag.ExitOnError)
	aPath := fs.String("a", "", "baseline attribution JSON (written with -attrib)")
	bPath := fs.String("b", "", "comparison attribution JSON (written with -attrib)")
	outPath := fs.String("o", "", "also write the machine-readable diff as JSON to this file")
	labelA := fs.String("label-a", "", "label for run A (default: the -a path)")
	labelB := fs.String("label-b", "", "label for run B (default: the -b path)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s tracediff -a A.json -b B.json [-o out.json] [-label-a NAME] [-label-b NAME]\n", prog)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *aPath == "" || *bPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *labelA == "" {
		*labelA = *aPath
	}
	if *labelB == "" {
		*labelB = *bPath
	}
	readReport := func(path string) (*analyze.Report, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return analyze.ReadReport(f)
	}
	a, err := readReport(*aPath)
	if err != nil {
		return err
	}
	b, err := readReport(*bPath)
	if err != nil {
		return err
	}
	d := analyze.Diff(a, b, *labelA, *labelB)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := d.WriteJSON(f); err != nil {
			return err
		}
	}
	return d.WriteText(os.Stdout)
}

// writeAttribution reruns the instrumented grid once and writes the
// requested attribution artifacts. Any path may be empty.
func writeAttribution(attribPath, flamePath, alertsPath, slo string, completions int, stream bool) error {
	open := func(path string) (io.Writer, func(), error) {
		if path == "" {
			return nil, func() {}, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
	attribW, closeA, err := open(attribPath)
	if err != nil {
		return err
	}
	defer closeA()
	flameW, closeF, err := open(flamePath)
	if err != nil {
		return err
	}
	defer closeF()
	alertsW, closeAl, err := open(alertsPath)
	if err != nil {
		return err
	}
	defer closeAl()
	if stream {
		return report.AttributionArtifactsStreamed(attribW, flameW, alertsW, completions, slo)
	}
	return report.AttributionArtifacts(attribW, flameW, alertsW, completions, slo)
}

// writeObservability reruns the instrumented grid once and writes the
// requested artifacts. Either path may be empty.
func writeObservability(tracePath, metricsPath string, completions int, stream bool, sample int) error {
	var traceW, promW io.Writer
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceW = f
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		promW = f
	}
	if stream {
		return report.ObservabilityStreamed(traceW, promW, completions, sample)
	}
	return report.Observability(traceW, promW, completions)
}
