// Command promlint validates Prometheus text exposition: well-formed
// HELP/TYPE headers, sorted labels, monotone cumulative histogram
// buckets with a +Inf terminator, and consistent sample counts. It
// reads stdin (or each file argument) and exits non-zero on the first
// violation — CI pipes the live server's /metrics merge through it.
//
// Usage:
//
//	curl -s localhost:9190/metrics | promlint
//	promlint metrics.prom other.prom
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		if err := obs.LintPrometheus(os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "promlint: stdin:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		lintErr := obs.LintPrometheus(f)
		f.Close()
		if lintErr != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", path, lintErr)
			os.Exit(1)
		}
	}
}
