// Package repro reproduces "Fine-grained accelerator partitioning for
// Machine Learning and Scientific Computing in Function as a Service
// Platform" (Dhakal et al., SC-W 2023) as a self-contained Go system:
// a Parsl-like FaaS runtime whose HighThroughputExecutor partitions
// GPUs via CUDA-MPS percentages and MIG instances, running on a
// discrete-event GPU simulator calibrated to the paper's testbed.
//
// Entry points:
//
//   - internal/core: the Platform facade and experiment drivers
//   - cmd/paperbench: regenerate every figure and table
//   - cmd/gpufaas: ad-hoc scenarios
//   - cmd/migctl, cmd/mpsctl: device-administration CLIs
//   - examples/: runnable walkthroughs
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
