// federated: the Globus Compute picture from the paper's §2.2 — a
// cloud service routes registered functions over the WAN to
// user-deployed endpoints, one of which is a GPU cluster with
// fine-grained partitioning configured.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/devent"
	"repro/internal/endpoint"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

func main() {
	env := devent.NewEnv()
	svc := endpoint.NewService(env)

	// Endpoint 1: a laptop — CPU only, close by.
	laptopNode := gpuctl.NewNode(env)
	laptopCPU, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 4,
		Provider: provider.NewLocal(env, laptopNode)})
	if err != nil {
		log.Fatal(err)
	}
	laptop := faas.NewDFK(env, faas.Config{}, laptopCPU)

	// Endpoint 2: a cluster behind Slurm with a partitioned A100.
	gpu0, err := simgpu.NewDevice(env, "cluster-gpu0", simgpu.A100SXM480GB())
	if err != nil {
		log.Fatal(err)
	}
	clusterNode := gpuctl.NewNode(env, gpu0)
	slurm := provider.NewSlurm(env, 15*time.Second, clusterNode)
	clusterCPU, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 16, Provider: slurm})
	if err != nil {
		log.Fatal(err)
	}
	clusterGPU, err := htex.New(env, htex.Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0", "0"},
		GPUPercentages:        []int{50, 50},
		Provider:              provider.NewLocal(env, clusterNode),
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster := faas.NewDFK(env, faas.Config{}, clusterCPU, clusterGPU)

	for _, reg := range []struct {
		ep  *endpoint.Endpoint
		err error
	}{
		{&endpoint.Endpoint{Name: "laptop", DFK: laptop, WANLatency: 20 * time.Millisecond,
			Tags: map[string]string{"kind": "laptop"}}, nil},
		{&endpoint.Endpoint{Name: "cluster", DFK: cluster, WANLatency: 60 * time.Millisecond,
			Tags: map[string]string{"kind": "cluster", "gpu": "a100"}}, nil},
	} {
		if err := svc.RegisterEndpoint(reg.ep); err != nil {
			log.Fatal(err)
		}
	}

	svc.RegisterFunction(endpoint.Function{
		Name: "preprocess", Executor: "cpu",
		Fn: func(inv *faas.Invocation) (any, error) {
			inv.Compute(2 * time.Second)
			return "features", nil
		},
	})
	svc.RegisterFunction(endpoint.Function{
		Name: "gpu-train", Executor: "gpu",
		Requirements: map[string]string{"gpu": "a100"},
		Fn: func(inv *faas.Invocation) (any, error) {
			ctx, err := inv.GPU()
			if err != nil {
				return nil, err
			}
			spec := ctx.SpecView()
			_, err = ctx.Run(inv.Proc(), simgpu.Kernel{
				Name:  "train",
				FLOPs: 5 * float64(spec.DomainSMs) * spec.PerSMFLOPS, // 5 s at 100%
			})
			return "model-v1", err
		},
	})

	if err := laptop.Start(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}

	env.Spawn("scientist", func(p *devent.Proc) {
		fmt.Println("submitting preprocess (CPU, no requirements) — routed to the least-loaded endpoint:")
		if v, err := p.Wait(svc.Submit("", "preprocess")); err == nil {
			fmt.Printf("  got %q at t=%.2fs\n", v, p.Now().Seconds())
		} else {
			fmt.Println("  error:", err)
		}
		fmt.Println("submitting gpu-train (requires gpu=a100) — must route to the cluster:")
		ep, _ := svc.Route("gpu-train")
		if v, err := p.Wait(svc.Submit("", "gpu-train")); err == nil {
			fmt.Printf("  ran on %q (50%% MPS partition): %q at t=%.2fs\n", ep.Name, v, p.Now().Seconds())
			fmt.Println("  (the 5s-at-full-GPU kernel took ~10s on half an A100, plus Slurm queue + WAN)")
		} else {
			fmt.Println("  error:", err)
		}
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
}
