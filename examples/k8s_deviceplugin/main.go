// k8s_deviceplugin: the Kubernetes side of the paper's story (§1
// notes k8s "only has limited GPU sharing support") — the same node
// and binding machinery exposed through a device-plugin resource
// model: MIG instances as nvidia.com/mig-<profile> extended resources,
// and MPS-replicated whole GPUs.
//
//	go run ./examples/k8s_deviceplugin
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/devent"
	"repro/internal/deviceplugin"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

func main() {
	env := devent.NewEnv()
	gpu0, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		log.Fatal(err)
	}
	gpu1, err := simgpu.NewDevice(env, "gpu1", simgpu.A100SXM480GB())
	if err != nil {
		log.Fatal(err)
	}
	node := gpuctl.NewNode(env, gpu0, gpu1)

	// Partition gpu1 into MIG instances, k8s "mixed" strategy.
	env.Spawn("admin", func(p *devent.Proc) {
		if err := gpu1.EnableMIG(p); err != nil {
			log.Fatal(err)
		}
		for _, prof := range []string{"3g.40gb", "2g.20gb", "1g.10gb"} {
			if _, err := gpu1.CreateInstance(prof); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}

	plugin, err := deviceplugin.New(node, deviceplugin.Config{
		MIGStrategy: deviceplugin.MIGStrategyMixed,
		Sharing:     &deviceplugin.SharingConfig{Strategy: deviceplugin.SharingMPS, Replicas: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node capacity (what the kubelet would advertise):")
	caps := plugin.Capacity()
	names := make([]string, 0, len(caps))
	for n := range caps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-28s %d\n", n, caps[n])
	}

	// A pod requests one MPS replica of a whole GPU.
	ids, resp, err := plugin.AllocateAny(deviceplugin.ResourceGPU, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npod A granted %v — container env:\n", ids)
	for k, v := range resp.Envs {
		fmt.Printf("  %s=%s\n", k, v)
	}

	// Another pod requests the 3g MIG slice.
	ids, resp, err = plugin.AllocateAny("nvidia.com/mig-3g.40gb", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npod B granted %v — container env:\n", ids)
	for k, v := range resp.Envs {
		fmt.Printf("  %s=%s\n", k, v)
	}

	// The env is exactly what the CUDA runtime consumes at process
	// start — prove it by opening a context with it.
	env.Spawn("podB", func(p *devent.Proc) {
		ctx, err := node.OpenContext(p, "podB", resp.Envs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npod B's container opened a context on its MIG slice (%d SMs domain)\n",
			ctx.SpecView().DomainSMs)
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
}
