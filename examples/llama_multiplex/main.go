// llama_multiplex: serve four LLaMa-2-7B chatbots from one A100 and
// compare the sharing techniques — the scenario of the paper's §5.2.
//
//	go run ./examples/llama_multiplex
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	const completions = 40
	fmt.Printf("four LLaMa-2-7B chatbots, %d completions total, one A100-80GB:\n\n", completions)
	fmt.Printf("%-12s %12s %14s %12s %12s\n", "technique", "makespan", "throughput", "mean lat", "p95 lat")

	var baseline *core.MultiplexResult
	for _, mode := range []core.Mode{core.ModeTimeshare, core.ModeMPSDefault, core.ModeMPS, core.ModeMIG, core.ModeVGPU} {
		n := 4
		r, err := core.RunMultiplex(core.MultiplexConfig{Mode: mode, Processes: n, Completions: completions})
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		fmt.Printf("%-12s %11.1fs %11.3f/s %11.2fs %11.2fs\n",
			mode, r.Makespan.Seconds(), r.Throughput,
			r.MeanLatency().Seconds(), r.Latencies.Percentile(95).Seconds())
		if baseline == nil {
			baseline = r
		}
	}

	single, err := core.RunMultiplex(core.MultiplexConfig{Mode: core.ModeTimeshare, Processes: 1, Completions: completions})
	if err != nil {
		log.Fatal(err)
	}
	mps, err := core.RunMultiplex(core.MultiplexConfig{Mode: core.ModeMPS, Processes: 4, Completions: completions})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversus a single non-multiplexed process (%.1fs):\n", single.Makespan.Seconds())
	fmt.Printf("  4-way MPS cuts completion time by %.0f%% and raises throughput %.2fx\n",
		(1-mps.Makespan.Seconds()/single.Makespan.Seconds())*100,
		mps.Throughput/single.Throughput)
	fmt.Println("  (the paper reports up to 60% and 2.5x)")
}
