// molecular_design: the paper's scientific-computing workload — an
// active-learning campaign steered by a Colmena-style thinker over
// the FaaS platform, with CPU quantum-chemistry simulations and GPU
// emulator training/inference.
//
//	go run ./examples/molecular_design
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/moldesign"
	"repro/internal/trace"
)

func main() {
	cfg := moldesign.DefaultConfig()
	cfg.Rounds = 4
	res, err := core.RunMolDesign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("molecular-design campaign: %d rounds, %d simulations total, %.0fs of virtual time\n",
		cfg.Rounds, rep.Dataset, res.Makespan.Seconds())
	fmt.Printf("best ionization potential found: %.3f eV (random initial pool best: %.3f, pool mean: %.3f)\n",
		rep.BestIP, rep.InitialBestIP, rep.PoolMeanIP)
	fmt.Println("selected-batch quality per round (the active learner at work):")
	for i, m := range rep.RoundBatchMeanIP {
		fmt.Printf("  round %d: mean IP of selected batch %.3f\n", i+1, m)
	}
	fmt.Printf("emulator RMSE on its training set: %.3f\n\n", rep.FinalRMSE)

	fmt.Printf("the Fig. 3 observation — the GPU is busy only %.0f%% of the campaign (%d idle gaps):\n\n",
		res.GPUBusyFraction*100, res.GPUIdleGaps)
	fmt.Print(res.Trace.Gantt(trace.GanttOpts{Width: 110, GroupBy: "kind", Glyphs: map[string]rune{
		"simulation": 'S', "training": 'T', "inference": 'I',
	}}))
	fmt.Println("\npipelining another tenant onto the idle GPU is exactly what the paper's partitioning enables.")
}
