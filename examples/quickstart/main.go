// Quickstart: partition one A100 between two serverless functions
// with CUDA-MPS GPU percentages, Parsl-style.
//
//	go run ./examples/quickstart
//
// It builds the simulated testbed, starts the MPS daemon, configures
// the extended HighThroughputExecutor with the same GPU listed twice
// (70% and 30%), and submits two GPU functions that run concurrently
// on their partitions.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/simgpu"
)

func main() {
	pl, err := core.NewPlatform(core.Options{
		DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()},
		WorkerInit:  500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A GPU function: 2 seconds of kernels at full-device demand, so
	// its runtime reveals how many SMs its partition grants.
	pl.Register(faas.App{Name: "burn", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		spec := ctx.SpecView()
		k := simgpu.Kernel{
			Name:  "burn",
			FLOPs: 2 * float64(spec.DomainSMs) * spec.PerSMFLOPS, // 2 s at 100%
		}
		rec, err := ctx.Run(inv.Proc(), k)
		if err != nil {
			return nil, err
		}
		return rec.End - rec.Start, nil
	}})

	err = pl.Run(func(p *devent.Proc) error {
		// Start nvidia-cuda-mps-control before any client (paper §4.1).
		if _, err := pl.StartMPS(p, 0); err != nil {
			return err
		}
		// Listing-2 style configuration: one worker per accelerator
		// entry; the same GPU appears twice with different shares.
		if err := pl.ConfigureGPUExecutor(p, []string{"0", "0"}, []int{70, 30}); err != nil {
			return err
		}
		a := pl.DFK.Submit("burn")
		b := pl.DFK.Submit("burn")
		va, erra := a.Result(p)
		vb, errb := b.Result(p)
		if erra != nil || errb != nil {
			return fmt.Errorf("tasks failed: %v %v", erra, errb)
		}
		times := []time.Duration{va.(time.Duration), vb.(time.Duration)}
		if times[0] > times[1] {
			times[0], times[1] = times[1], times[0]
		}
		fmt.Println("two functions shared one A100 spatially:")
		fmt.Printf("  70%% partition finished its 2s-at-full-GPU kernel in %.2fs\n", times[0].Seconds())
		fmt.Printf("  30%% partition finished the same kernel in %.2fs\n", times[1].Seconds())
		fmt.Printf("  wall clock for both: %.2fs (serialized it would be ~%.2fs)\n",
			p.Now().Seconds(), (times[0] + times[1]).Seconds())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
