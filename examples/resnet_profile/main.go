// resnet_profile: the paper's Fig. 1 analysis made executable —
// per-layer compute profiles of ImageNet CNNs, then the same networks
// run on the simulated GPU under different partition sizes to show
// why variable per-layer parallelism leaves big partitions idle.
//
//	go run ./examples/resnet_profile
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/devent"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func main() {
	fmt.Println("per-layer GFLOPs (batch 1) — min/max/mean across conv layers:")
	for _, m := range models.Zoo() {
		prof := m.ConvProfile()
		min, max, sum := prof[0].GFLOPs, prof[0].GFLOPs, 0.0
		for _, p := range prof {
			if p.GFLOPs < min {
				min = p.GFLOPs
			}
			if p.GFLOPs > max {
				max = p.GFLOPs
			}
			sum += p.GFLOPs
		}
		fmt.Printf("  %-14s %3d convs: min %.4f  max %.4f  mean %.4f  (range %.0fx)\n",
			m.Name, len(prof), min, max, sum/float64(len(prof)), max/min)
	}

	fmt.Println("\nResNet-50 batch-1 inference on a partitioned A100 (latency per image):")
	fmt.Printf("%-12s %-12s %s\n", "partition", "latency", "vs full GPU")
	full := measure(100)
	for _, pct := range []int{10, 25, 50, 100} {
		lat := measure(pct)
		fmt.Printf("%9d%%   %9.2fms   %.2fx\n", pct, lat.Seconds()*1e3, float64(lat)/float64(full))
	}
	fmt.Println("\nsmall partitions barely hurt batch-1 CNN inference — per-layer")
	fmt.Println("parallelism varies so rapidly (Fig. 1) that most layers cannot fill")
	fmt.Println("a whole A100, which is why multiplexing pays.")
}

// measure runs one lowered ResNet-50 inference under an MPS cap.
func measure(pct int) time.Duration {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
		log.Fatal(err)
	}
	kernels := models.Lower(models.ResNet50(), models.LowerOpts{
		Batch:           1,
		Tag:             "infer",
		FuseElementwise: true,
	})
	var lat time.Duration
	env.Spawn("infer", func(p *devent.Proc) {
		ctx, err := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: pct})
		if err != nil {
			env.Fail(err)
			return
		}
		start := p.Now()
		if err := ctx.RunAll(p, kernels); err != nil {
			env.Fail(err)
			return
		}
		lat = p.Now() - start
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
	return lat
}
