// rightsizing: the paper's future-work pipeline (§7) end to end —
// profile a model's latency-vs-SMs curve, pick the partition knee,
// and re-partition a running service quickly using the GPU-resident
// weight cache.
//
//	go run ./examples/rightsizing
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/devent"
	"repro/internal/llm"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
	"repro/internal/weightcache"
)

func main() {
	spec := simgpu.A100SXM480GB()
	cfg := llm.LLaMa27B()

	// 1. Profile: latency vs SM budget (the Fig. 2 sweep).
	curve, err := rightsize.Sweep(spec.SMs, []int{5, 10, 15, 19, 25, 50, 100},
		func(pct int) (time.Duration, error) { return core.Fig2SinglePoint(cfg, pct) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("latency vs SM budget (LLaMa-2-7B, 20-token completion):")
	for _, p := range curve {
		fmt.Printf("  %3d SMs (%3d%%): %.2fs\n", p.SMs, p.Percent, p.Latency.Seconds())
	}

	// 2. Recommend a partition.
	rec, err := rightsize.Recommend(spec, curve, 0.05, cfg.FootprintBytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nknee at %d SMs → recommend MPS %d%% or MIG %s; up to %d tenants per GPU\n",
		rec.KneeSMs, rec.MPSPercent, rec.MIGProfile, rec.TenantsPerGPU)

	// 3. Apply it to a live service: re-partition from 100% to the
	// recommendation, with and without the weight cache.
	for _, cached := range []bool{false, true} {
		downtime := repartition(spec, cfg, rec.MPSPercent, cached)
		how := "full restart (reload weights)"
		if cached {
			how = "restart + GPU weight cache"
		}
		fmt.Printf("re-partition 100%% → %d%% via %s: %.2fs downtime\n", rec.MPSPercent, how, downtime.Seconds())
	}
}

func repartition(spec simgpu.DeviceSpec, cfg llm.Config, pct int, cached bool) time.Duration {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
		log.Fatal(err)
	}
	cache := weightcache.New()
	var downtime time.Duration
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{})
		var eng *llm.Engine
		var err error
		if cached {
			eng, _, err = cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, spec.HostLoadBW)
		} else {
			eng = llm.New(cfg)
			err = eng.Load(p, []*simgpu.Context{ctx}, spec.HostLoadBW)
		}
		if err != nil {
			env.Fail(err)
			return
		}
		eng.Complete(p, 20, 20)

		start := p.Now()
		eng.Unload()
		ctx.Destroy()
		ctx2, _ := dev.NewContext(p, simgpu.ContextOpts{SMPercent: pct})
		if cached {
			eng, _, err = cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx2}, spec.HostLoadBW)
		} else {
			eng = llm.New(cfg)
			err = eng.Load(p, []*simgpu.Context{ctx2}, spec.HostLoadBW)
		}
		if err != nil {
			env.Fail(err)
			return
		}
		downtime = p.Now() - start
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
	return downtime
}
