// Package autoscale closes the horizontal half of the HAS-GPU loop:
// where internal/repart resizes partitions vertically (MPS percentage
// and MIG profile transitions on a fixed device set), this controller
// grows and shrinks the device set itself — provisioning whole-GPU
// blocks from a provider on SLO burn or backlog pressure, releasing
// them (down to zero) when demand ebbs — and sheds load at admission
// when even scaling cannot protect the latency objective.
//
// The control signal is the per-app "slo:burn" event series that
// analyze.NewMonitorTSDB records in the tsdb, combined with the
// backlog implied by the registry's submitted/completed counters. The
// loop is a virtual-clock daemon exactly like repart.Controller's:
// deterministic ticks, decide spans, cooldown and hysteresis, so runs
// are byte-identical at any host parallelism.
package autoscale

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// Spec is the autoscaling policy.
type Spec struct {
	// Interval is the control-loop tick period (default 30s).
	Interval time.Duration
	// Window is the observation window for burn and arrival queries
	// (default 2×Interval).
	Window time.Duration
	// BurnHigh triggers scale-out: mean burn over the window at or
	// above it means the error budget is being consumed too fast for
	// the current capacity (default 1.0 — burning the whole budget).
	BurnHigh float64
	// BurnLow allows scale-in: mean burn below it over a full window
	// means capacity is comfortably ahead of demand (default 0.25).
	BurnLow float64
	// BacklogPerWorker also triggers scale-out: queued-but-unfinished
	// tasks per live worker beyond it mean the queue is outrunning
	// service even if no completion has blown the SLO yet (default 4).
	BacklogPerWorker float64
	// MinBlocks and MaxBlocks bound the block count. MinBlocks 0
	// enables scale-to-zero. MaxBlocks must be >= 1 (default 8).
	MinBlocks int
	MaxBlocks int
	// Step is how many blocks one scale-out adds (default 1).
	Step int
	// CooldownOut/CooldownIn are the minimum gaps after a transition
	// before the next scale-out/scale-in (defaults 1×/4× Interval:
	// growing is cheap to undo, shrinking re-pays cold starts).
	CooldownOut time.Duration
	CooldownIn  time.Duration
	// IdleAfter scales to MinBlocks after this long with no arrivals
	// and no backlog (default 4×Interval; only reaches zero when
	// MinBlocks is 0).
	IdleAfter time.Duration
	// ShedStart and ShedFull ramp the admission-control shed
	// probability linearly from 0 at burn=ShedStart to MaxShed at
	// burn=ShedFull (defaults 2.0 and 4.0): shedding starts only after
	// scaling has had its chance, and saturates when the budget is
	// burning at four times the sustainable rate.
	ShedStart float64
	ShedFull  float64
	// MaxShed caps the shed probability (default 0.9: never a full
	// brown-out, some traffic always probes whether pressure eased).
	MaxShed float64
	// RetryAfter is the hint carried by shed errors (default Window).
	RetryAfter time.Duration
	// Seed drives the shed coin flips (default 1). The controller owns
	// its RNG so admission draws never perturb the DFK's retry jitter
	// sequence.
	Seed int64
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Interval <= 0 {
		s.Interval = 30 * time.Second
	}
	if s.Window <= 0 {
		s.Window = 2 * s.Interval
	}
	if s.BurnHigh == 0 {
		s.BurnHigh = 1.0
	}
	if s.BurnLow == 0 {
		s.BurnLow = 0.25
	}
	if s.BacklogPerWorker == 0 {
		s.BacklogPerWorker = 4
	}
	if s.MaxBlocks == 0 {
		s.MaxBlocks = 8
	}
	if s.Step <= 0 {
		s.Step = 1
	}
	if s.CooldownOut == 0 {
		s.CooldownOut = s.Interval
	}
	if s.CooldownIn == 0 {
		s.CooldownIn = 4 * s.Interval
	}
	if s.IdleAfter == 0 {
		s.IdleAfter = 4 * s.Interval
	}
	if s.ShedStart == 0 {
		s.ShedStart = 2.0
	}
	if s.ShedFull == 0 {
		s.ShedFull = 4.0
	}
	if s.MaxShed == 0 {
		s.MaxShed = 0.9
	}
	if s.RetryAfter == 0 {
		s.RetryAfter = s.Window
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate rejects inconsistent policies.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.MinBlocks < 0 {
		return fmt.Errorf("autoscale: negative MinBlocks %d", s.MinBlocks)
	}
	if s.MaxBlocks < 1 || s.MaxBlocks < s.MinBlocks {
		return fmt.Errorf("autoscale: MaxBlocks %d outside [max(1,MinBlocks)=%d, ...]", s.MaxBlocks, s.MinBlocks)
	}
	if s.BurnLow >= s.BurnHigh {
		return fmt.Errorf("autoscale: BurnLow %.2f must be below BurnHigh %.2f", s.BurnLow, s.BurnHigh)
	}
	if s.ShedFull <= s.ShedStart {
		return fmt.Errorf("autoscale: ShedFull %.2f must be above ShedStart %.2f", s.ShedFull, s.ShedStart)
	}
	if s.MaxShed < 0 || s.MaxShed > 1 {
		return fmt.Errorf("autoscale: MaxShed %.2f outside [0,1]", s.MaxShed)
	}
	return nil
}

// Config assembles a Controller.
type Config struct {
	Env *devent.Env
	Obs *obs.Collector
	// DB holds the per-app "slo:burn" event series (from
	// analyze.NewMonitorTSDB). Required: burn is the primary signal.
	DB   *tsdb.DB
	Spec Spec
	// Exec is the executor whose blocks the controller scales.
	Exec *htex.HTEX
	// DFK, when set, gets the admission-control hook installed on
	// Start and removed on Stop.
	DFK *faas.DFK
	// Apps are the applications whose burn and backlog drive the
	// policy (the max across apps acts).
	Apps []string
}

// Controller is the autoscaling loop. Create with New, Start once the
// executor is running, Stop when the workload's main proc finishes.
type Controller struct {
	env  *devent.Env
	obsC *obs.Collector
	db   *tsdb.DB
	spec Spec
	exec *htex.HTEX
	dfk  *faas.DFK
	apps []string
	stop *devent.Event
	rng  *rand.Rand

	// shedProb is the current admission shed probability, updated each
	// tick and read by the DFK hook on every Submit.
	shedProb float64

	lastOut  time.Duration
	lastIn   time.Duration
	idleFor  time.Duration
	lastSubmitted float64

	// Block-seconds integration for the economics report: blocks held
	// × virtual time, advanced at every block-count change.
	blockSeconds float64
	lastBlocks   int
	lastChange   time.Duration

	scaleOuts int
	scaleIns  int

	cDecisions *obs.Counter
	cOut       *obs.Counter
	cIn        *obs.Counter
	gBlocks    *obs.Gauge
	gShed      *obs.Gauge
	gBurn      *obs.Gauge
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Env == nil || cfg.Obs == nil || cfg.Exec == nil {
		return nil, errors.New("autoscale: Env, Obs, and Exec are required")
	}
	if cfg.DB == nil {
		return nil, errors.New("autoscale: DB is required (slo:burn is the control signal)")
	}
	if len(cfg.Apps) == 0 {
		return nil, errors.New("autoscale: no apps to watch")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		env:  cfg.Env,
		obsC: cfg.Obs,
		db:   cfg.DB,
		spec: cfg.Spec.withDefaults(),
		exec: cfg.Exec,
		dfk:  cfg.DFK,
		apps: append([]string(nil), cfg.Apps...),
		rng:  rand.New(rand.NewSource(cfg.Spec.withDefaults().Seed)),
	}
	m := cfg.Obs.Metrics()
	c.cDecisions = m.Counter("autoscale_decisions_total")
	c.cOut = m.Counter("autoscale_scale_out_total")
	c.cIn = m.Counter("autoscale_scale_in_total")
	c.gBlocks = m.Gauge("autoscale_blocks")
	c.gShed = m.Gauge("autoscale_shed_probability")
	c.gBurn = m.Gauge("autoscale_burn")
	return c, nil
}

// ScaleOuts and ScaleIns report applied transitions.
func (c *Controller) ScaleOuts() int { return c.scaleOuts }

// ScaleIns reports applied scale-in transitions.
func (c *Controller) ScaleIns() int { return c.scaleIns }

// BlockSeconds integrates blocks held over virtual time up to the last
// block-count change (call Stop first for the full-run total) — the
// GPU-seconds cost axis of the economics report.
func (c *Controller) BlockSeconds() float64 { return c.blockSeconds }

// ShedProbability is the current admission shed probability.
func (c *Controller) ShedProbability() float64 { return c.shedProb }

// Start launches the control loop and installs the admission hook.
func (c *Controller) Start() {
	if c.stop != nil {
		return
	}
	c.stop = c.env.NewNamedEvent("autoscale-stop")
	c.lastBlocks = c.exec.Blocks()
	c.lastChange = c.env.Now()
	c.gBlocks.Set(float64(c.lastBlocks))
	if c.dfk != nil {
		c.dfk.SetAdmission(func(t *faas.Task) (bool, time.Duration) {
			if c.shedProb <= 0 {
				return false, 0
			}
			if c.rng.Float64() >= c.shedProb {
				return false, 0
			}
			return true, c.spec.RetryAfter
		})
	}
	c.env.Spawn("autoscale-ctl", func(p *devent.Proc) {
		for {
			if _, err := p.WaitTimeout(c.stop, c.spec.Interval); !errors.Is(err, devent.ErrTimeout) {
				return
			}
			c.tick(p)
		}
	})
}

// Stop ends the loop, removes the admission hook, and closes the
// block-seconds integral.
func (c *Controller) Stop() {
	if c.stop == nil || c.stop.Fired() {
		return
	}
	c.stop.Fire(nil)
	if c.dfk != nil {
		c.dfk.SetAdmission(nil)
	}
	c.noteBlocks()
}

// noteBlocks advances the block-seconds integral to now.
func (c *Controller) noteBlocks() {
	now := c.env.Now()
	c.blockSeconds += float64(c.lastBlocks) * (now - c.lastChange).Seconds()
	c.lastBlocks = c.exec.Blocks()
	c.lastChange = now
	c.gBlocks.Set(float64(c.lastBlocks))
}

// observation is one tick's input.
type observation struct {
	burn     float64 // max over apps of mean burn in the window
	backlog  int     // submitted - terminal, summed over apps
	arrivals float64 // submissions this tick (for idle detection)
}

// observe reads the control inputs: windowed mean burn from the tsdb
// event series, backlog from the registry counters.
func (c *Controller) observe() observation {
	var o observation
	cutoff := c.env.Now() - c.spec.Window
	if cutoff < 0 {
		cutoff = 0
	}
	m := c.obsC.Metrics()
	var submitted float64
	for _, app := range c.apps {
		l := obs.L("app", app)
		s := c.db.EventSeries("slo:burn", 0, l)
		if n, _ := s.CountSince(cutoff); n > 0 {
			if burn := s.SumSince(cutoff) / float64(n); burn > o.burn {
				o.burn = burn
			}
		}
		sub := m.Counter("faas_tasks_submitted_total", l).Value()
		submitted += sub
		var done float64
		for _, st := range faas.TerminalStatuses {
			done += m.Counter("faas_tasks_completed_total", l, obs.L("status", st.String())).Value()
		}
		o.backlog += int(sub - done)
	}
	o.arrivals = submitted - c.lastSubmitted
	c.lastSubmitted = submitted
	return o
}

// tick is one control decision across both axes.
func (c *Controller) tick(p *devent.Proc) {
	c.cDecisions.Inc()
	span := c.obsC.StartSpan("autoscale", "decide", "autoscale", 0)
	o := c.observe()
	c.gBurn.Set(o.burn)

	// Admission axis: ramp the shed probability with burn. This acts
	// immediately — scaling takes a provider grant plus cold start to
	// help, shedding protects the SLO in the meantime.
	c.shedProb = c.shedFor(o.burn)
	c.gShed.Set(c.shedProb)

	decision := c.horizontal(p, o)

	c.obsC.EndSpan(span,
		obs.String("decision", decision),
		obs.Int("blocks", c.exec.Blocks()),
		obs.Int("backlog", o.backlog),
		obs.String("burn", fmt.Sprintf("%.3f", o.burn)),
		obs.String("shed", fmt.Sprintf("%.3f", c.shedProb)),
	)
}

// shedFor maps burn to a shed probability: 0 below ShedStart, linear
// up to MaxShed at ShedFull.
func (c *Controller) shedFor(burn float64) float64 {
	if burn <= c.spec.ShedStart {
		return 0
	}
	frac := (burn - c.spec.ShedStart) / (c.spec.ShedFull - c.spec.ShedStart)
	if frac > 1 {
		frac = 1
	}
	return frac * c.spec.MaxShed
}

// horizontal is the block axis: scale out on burn or backlog pressure,
// scale in (to MinBlocks) when the budget is comfortably unburnt, all
// the way to zero after sustained idleness.
func (c *Controller) horizontal(p *devent.Proc, o observation) string {
	blocks := c.exec.Blocks()
	workers := c.exec.Workers()
	now := p.Now()

	// Idle tracking: a tick with no arrivals and no backlog.
	if o.arrivals == 0 && o.backlog == 0 {
		c.idleFor += c.spec.Interval
	} else {
		c.idleFor = 0
	}

	// Wake from zero on any backlog, ignoring cooldowns: nothing can
	// serve the queue until a block exists, every queued task is paying
	// full cold start already.
	if blocks == 0 {
		if o.backlog > 0 {
			return c.scaleOut(p, c.spec.Step, "wake")
		}
		return "hold"
	}

	backlogPressure := workers > 0 && float64(o.backlog)/float64(workers) > c.spec.BacklogPerWorker
	if o.burn >= c.spec.BurnHigh || backlogPressure {
		if blocks >= c.spec.MaxBlocks {
			return "at-max"
		}
		if now-c.lastOut < c.spec.CooldownOut {
			return "cooldown-out"
		}
		n := c.spec.Step
		if blocks+n > c.spec.MaxBlocks {
			n = c.spec.MaxBlocks - blocks
		}
		reason := "burn"
		if o.burn < c.spec.BurnHigh {
			reason = "backlog"
		}
		return c.scaleOut(p, n, reason)
	}

	// Scale-to-zero after sustained idleness.
	if c.idleFor >= c.spec.IdleAfter && blocks > c.spec.MinBlocks {
		return c.scaleIn(p, blocks-c.spec.MinBlocks, "idle")
	}

	// Gentle scale-in when the budget is comfortably unburnt and the
	// backlog is trivial.
	if o.burn < c.spec.BurnLow && o.backlog == 0 && blocks > c.spec.MinBlocks {
		if blocks-1 < 1 {
			// Regular scale-in keeps at least one block; only the idle
			// path goes to zero.
			return "hold"
		}
		if now-c.lastIn < c.spec.CooldownIn || now-c.lastOut < c.spec.CooldownIn {
			return "cooldown-in"
		}
		return c.scaleIn(p, 1, "low-burn")
	}
	return "hold"
}

func (c *Controller) scaleOut(p *devent.Proc, n int, reason string) string {
	tspan := c.obsC.StartSpan("autoscale", "scale-out", "autoscale", 0,
		obs.Int("blocks", n), obs.String("reason", reason))
	err := c.exec.ScaleOut(p, n)
	if err != nil {
		c.obsC.EndSpan(tspan, obs.String("status", "failed"), obs.String("error", err.Error()))
		return "out-failed"
	}
	c.noteBlocks()
	c.lastOut = p.Now()
	c.scaleOuts++
	c.cOut.Add(float64(n))
	c.obsC.EndSpan(tspan)
	return "scale-out:" + reason
}

func (c *Controller) scaleIn(p *devent.Proc, n int, reason string) string {
	tspan := c.obsC.StartSpan("autoscale", "scale-in", "autoscale", 0,
		obs.Int("blocks", n), obs.String("reason", reason))
	got, err := c.exec.ScaleIn(p, n)
	if err != nil {
		c.obsC.EndSpan(tspan, obs.String("status", "failed"), obs.String("error", err.Error()))
		return "in-failed"
	}
	c.noteBlocks()
	c.lastIn = p.Now()
	c.scaleIns++
	c.cIn.Add(float64(got))
	c.obsC.EndSpan(tspan)
	return "scale-in:" + reason
}
