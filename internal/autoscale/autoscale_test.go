package autoscale

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// rig is a minimal autoscaling cell: a CPU htex over a SlurmProvider
// pool, a DFK sharing the controller's collector, and a tsdb for the
// burn signal.
type rig struct {
	env   *devent.Env
	col   *obs.Collector
	db    *tsdb.DB
	slurm *provider.SlurmProvider
	ex    *htex.HTEX
	dfk   *faas.DFK
}

func newRig(t testing.TB, pool, blocks int) *rig {
	t.Helper()
	env := devent.NewEnv()
	col := obs.New(env)
	col.SetScope("test")
	db := tsdb.New(col.Metrics(), env, tsdb.Config{})
	nodes := make([]*gpuctl.Node, pool)
	for i := range nodes {
		nodes[i] = gpuctl.NewNode(env)
	}
	slurm := provider.NewSlurm(env, 0, nodes...)
	ex, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 1, Provider: slurm, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	dfk := faas.NewDFK(env, faas.Config{Collector: col}, ex)
	dfk.Register(faas.App{Name: "work", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(100 * time.Millisecond)
		return nil, nil
	}})
	if err := dfk.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, col: col, db: db, slurm: slurm, ex: ex, dfk: dfk}
}

// testSpec is a fast policy for unit timelines.
func testSpec() Spec {
	return Spec{
		Interval:    time.Second,
		Window:      2 * time.Second,
		MinBlocks:   0,
		MaxBlocks:   3,
		CooldownOut: time.Second,
		CooldownIn:  2 * time.Second,
		IdleAfter:   3 * time.Second,
	}
}

func (r *rig) controller(t testing.TB, spec Spec) *Controller {
	t.Helper()
	c, err := New(Config{
		Env: r.env, Obs: r.col, DB: r.db, Spec: spec,
		Exec: r.ex, DFK: r.dfk, Apps: []string{"work"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// burn appends a burn sample for "work" at the current virtual time.
func (r *rig) burn(v float64) {
	r.db.EventSeries("slo:burn", 0, obs.L("app", "work")).Append(r.env.Now(), v)
}

// Sustained burn above BurnHigh grows the block pool up to MaxBlocks,
// respecting the scale-out cooldown.
func TestScaleOutOnBurn(t *testing.T) {
	r := newRig(t, 3, 1)
	c := r.controller(t, testSpec())
	c.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		for i := 0; i < 8; i++ {
			r.burn(2.0) // well over BurnHigh=1
			p.Sleep(time.Second)
		}
		if got := r.ex.Blocks(); got != 3 {
			t.Errorf("blocks = %d, want MaxBlocks=3 under sustained burn", got)
		}
		if c.ScaleOuts() == 0 {
			t.Error("no scale-outs recorded")
		}
		c.Stop()
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	m := r.col.Metrics()
	if got := m.Counter("autoscale_scale_out_total").Value(); got != 2 {
		t.Errorf("autoscale_scale_out_total = %v, want 2 (1 -> 3 blocks)", got)
	}
}

// With no arrivals and no burn the controller scales to zero after
// IdleAfter, then a queued submission wakes it back up.
func TestScaleToZeroAndWake(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.controller(t, testSpec())
	c.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(6 * time.Second) // idle: IdleAfter=3s of empty ticks
		if got := r.ex.Blocks(); got != 0 {
			t.Fatalf("blocks = %d, want 0 after idle window", got)
		}
		if got := r.slurm.Granted(); got != 0 {
			t.Fatalf("provider still holds %d nodes at zero", got)
		}
		// A submission at zero queues, and the next tick wakes a block.
		fut := r.dfk.Submit("work")
		if _, err := fut.Result(p); err != nil {
			t.Fatalf("task across scale-from-zero: %v", err)
		}
		if got := r.ex.Blocks(); got == 0 {
			t.Error("controller did not wake from zero")
		}
		c.Stop()
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if c.ScaleIns() == 0 || c.ScaleOuts() == 0 {
		t.Errorf("transitions = out:%d in:%d, want both", c.ScaleOuts(), c.ScaleIns())
	}
	if bs := c.BlockSeconds(); bs <= 0 {
		t.Errorf("BlockSeconds = %v, want positive", bs)
	}
}

// Burn beyond ShedFull sheds at MaxShed; with MaxShed=1 every submit
// fails fast with ErrShed and the retry-after hint.
func TestAdmissionShedsUnderExtremeBurn(t *testing.T) {
	spec := testSpec()
	spec.MaxShed = 1.0
	spec.RetryAfter = 45 * time.Second
	r := newRig(t, 2, 1)
	c := r.controller(t, spec)
	c.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		r.burn(10) // far beyond ShedFull=4
		p.Sleep(time.Second + time.Millisecond)
		if got := c.ShedProbability(); got != 1.0 {
			t.Fatalf("shed probability = %v, want 1.0", got)
		}
		_, err := r.dfk.Submit("work").Result(p)
		if !errors.Is(err, faas.ErrShed) {
			t.Fatalf("err = %v, want ErrShed", err)
		}
		var shed *faas.ShedError
		if !errors.As(err, &shed) || shed.RetryAfter != 45*time.Second {
			t.Errorf("shed error = %+v, want RetryAfter=45s", shed)
		}
		c.Stop()
		// Stop removes the hook: submissions flow again.
		if _, err := r.dfk.Submit("work").Result(p); err != nil {
			t.Errorf("submit after Stop: %v", err)
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

// shedFor ramps linearly between ShedStart and ShedFull and caps at
// MaxShed.
func TestShedRamp(t *testing.T) {
	c := &Controller{spec: Spec{ShedStart: 2, ShedFull: 4, MaxShed: 0.8}}
	cases := []struct {
		burn, want float64
	}{
		{0, 0}, {2, 0}, {3, 0.4}, {4, 0.8}, {100, 0.8},
	}
	for _, tc := range cases {
		if got := c.shedFor(tc.burn); got != tc.want {
			t.Errorf("shedFor(%v) = %v, want %v", tc.burn, got, tc.want)
		}
	}
}

// Backlog pressure alone (no SLO violations yet) also scales out.
func TestScaleOutOnBacklog(t *testing.T) {
	spec := testSpec()
	spec.BacklogPerWorker = 2
	r := newRig(t, 2, 1)
	c := r.controller(t, spec)
	c.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		// 1 worker x 100ms tasks: 40 arrivals in one tick leave > 2
		// backlog per worker.
		futs := make([]*faas.Future, 40)
		for i := range futs {
			futs[i] = r.dfk.Submit("work")
		}
		p.Sleep(1500 * time.Millisecond)
		if got := r.ex.Blocks(); got < 2 {
			t.Errorf("blocks = %d, want scale-out on backlog", got)
		}
		for _, f := range futs {
			if _, err := f.Result(p); err != nil {
				t.Errorf("task: %v", err)
			}
		}
		c.Stop()
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{MinBlocks: -1},
		{MinBlocks: 4, MaxBlocks: 2},
		{BurnLow: 2, BurnHigh: 1},
		{ShedStart: 5, ShedFull: 4},
		{MaxShed: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}

func TestNewRejectsMissingInputs(t *testing.T) {
	r := newRig(t, 1, 1)
	if _, err := New(Config{Env: r.env, Obs: r.col, Exec: r.ex, Apps: []string{"a"}}); err == nil {
		t.Error("New without DB succeeded")
	}
	if _, err := New(Config{Env: r.env, Obs: r.col, DB: r.db, Exec: r.ex}); err == nil {
		t.Error("New without apps succeeded")
	}
}
