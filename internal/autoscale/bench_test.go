package autoscale

import (
	"testing"
	"time"

	"repro/internal/devent"
)

// BenchmarkControllerLoop measures the control-plane overhead of the
// autoscaler itself: a two-minute virtual timeline of 1s ticks with
// the burn signal oscillating across both thresholds, driving the
// full observe -> shed -> scale machinery (including provider grants
// and releases) with no task traffic to dilute the measurement.
func BenchmarkControllerLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRig(b, 3, 1)
		c := r.controller(b, testSpec())
		c.Start()
		r.env.Spawn("driver", func(p *devent.Proc) {
			for tick := 0; tick < 120; tick++ {
				if tick/10%2 == 0 {
					r.burn(2.0) // above BurnHigh: pressure out
				} else {
					r.burn(0.1) // below BurnLow: pressure in
				}
				p.Sleep(time.Second)
			}
			c.Stop()
		})
		if err := r.env.Run(); err != nil {
			b.Fatal(err)
		}
		if c.ScaleOuts() == 0 || c.ScaleIns() == 0 {
			b.Fatalf("controller idle: out=%d in=%d", c.ScaleOuts(), c.ScaleIns())
		}
	}
}
