// Package colmena is a compact analogue of the Colmena framework the
// paper's molecular-design application runs on (§3.1, ref. [31]):
// "thinker" agents steer an ensemble of method invocations through a
// task server backed by the FaaS runtime, with results routed to
// topic queues.
package colmena

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
)

// Result is a completed method invocation delivered to a topic queue.
type Result struct {
	// Method is the method name.
	Method string
	// Topic is the queue it was routed to.
	Topic string
	// Value is the method's return value (nil on error).
	Value any
	// Err is the method's error (nil on success).
	Err error
	// Task is the underlying FaaS task record (timings, worker).
	Task *faas.Task
}

// Queues routes results by topic.
type Queues struct {
	env    *devent.Env
	topics map[string]*devent.Chan[Result]
}

// NewQueues creates an empty topic router.
func NewQueues(env *devent.Env) *Queues {
	return &Queues{env: env, topics: make(map[string]*devent.Chan[Result])}
}

func (q *Queues) topic(name string) *devent.Chan[Result] {
	c, ok := q.topics[name]
	if !ok {
		c = devent.NewChan[Result](q.env, 1<<16)
		q.topics[name] = c
	}
	return c
}

// Send delivers a result to its topic (non-blocking; queues are
// effectively unbounded).
func (q *Queues) Send(r Result) {
	if !q.topic(r.Topic).TrySend(r) {
		panic(fmt.Sprintf("colmena: topic %q overflow", r.Topic))
	}
}

// Recv blocks until a result arrives on the topic.
func (q *Queues) Recv(p *devent.Proc, topic string) Result {
	r, ok := q.topic(topic).Recv(p)
	if !ok {
		return Result{Topic: topic, Err: fmt.Errorf("colmena: topic %q closed", topic)}
	}
	return r
}

// Pending reports queued results on a topic.
func (q *Queues) Pending(topic string) int { return q.topic(topic).Len() }

// TaskServer registers methods on the DFK and dispatches invocations,
// pushing each completion to the requested topic.
type TaskServer struct {
	env    *devent.Env
	dfk    *faas.DFK
	queues *Queues
	n      int
}

// NewTaskServer wires a task server over a DFK.
func NewTaskServer(dfk *faas.DFK, queues *Queues) *TaskServer {
	return &TaskServer{env: dfk.Env(), dfk: dfk, queues: queues}
}

// Queues returns the server's topic router.
func (ts *TaskServer) Queues() *Queues { return ts.queues }

// RegisterMethod adds a callable method executing on the named
// executor.
func (ts *TaskServer) RegisterMethod(name, executor string, fn faas.AppFunc) {
	ts.dfk.Register(faas.App{Name: name, Executor: executor, Fn: fn})
}

// Submit dispatches method(args...) and routes the result to topic.
// It returns immediately; the result arrives on the queue.
func (ts *TaskServer) Submit(topic, method string, args ...any) *faas.Future {
	fut := ts.dfk.Submit(method, args...)
	ts.n++
	fut.Event().OnFire(func(ev *devent.Event) {
		ts.queues.Send(Result{
			Method: method,
			Topic:  topic,
			Value:  ev.Value(),
			Err:    ev.Err(),
			Task:   fut.Task(),
		})
	})
	return fut
}

// Submitted reports how many invocations have been dispatched.
func (ts *TaskServer) Submitted() int { return ts.n }

// Thinker hosts steering agents (procs) that consume result queues
// and submit new work.
type Thinker struct {
	env    *devent.Env
	server *TaskServer
	agents []*devent.Proc
}

// NewThinker creates a thinker bound to a task server.
func NewThinker(server *TaskServer) *Thinker {
	return &Thinker{env: server.env, server: server}
}

// Server returns the task server.
func (t *Thinker) Server() *TaskServer { return t.server }

// Agent spawns a steering agent.
func (t *Thinker) Agent(name string, fn func(p *devent.Proc, ts *TaskServer, q *Queues)) *devent.Proc {
	pr := t.env.Spawn("agent:"+name, func(p *devent.Proc) {
		fn(p, t.server, t.server.queues)
	})
	t.agents = append(t.agents, pr)
	return pr
}

// Join blocks until every agent has finished.
func (t *Thinker) Join(p *devent.Proc) {
	for _, a := range t.agents {
		p.Wait(a.Done())
	}
}

// CollectN receives exactly n results from a topic, in arrival order.
func CollectN(p *devent.Proc, q *Queues, topic string, n int) []Result {
	out := make([]Result, 0, n)
	for len(out) < n {
		out = append(out, q.Recv(p, topic))
	}
	return out
}

// Elapsed is a convenience for task wall-clock spans.
func Elapsed(r Result) time.Duration {
	if r.Task == nil {
		return 0
	}
	return r.Task.EndTime - r.Task.StartTime
}
