package colmena

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
)

func newServer(t *testing.T) (*devent.Env, *TaskServer) {
	t.Helper()
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	ex, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 4, Provider: provider.NewLocal(env, node)})
	if err != nil {
		t.Fatal(err)
	}
	dfk := faas.NewDFK(env, faas.Config{}, ex)
	if err := dfk.Start(); err != nil {
		t.Fatal(err)
	}
	return env, NewTaskServer(dfk, NewQueues(env))
}

func TestSubmitRoutesToTopic(t *testing.T) {
	env, ts := newServer(t)
	ts.RegisterMethod("square", "cpu", func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return inv.Arg(0).(int) * inv.Arg(0).(int), nil
	})
	var got Result
	env.Spawn("thinker", func(p *devent.Proc) {
		ts.Submit("results", "square", 6)
		got = ts.Queues().Recv(p, "results")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Err != nil || got.Value != 36 || got.Method != "square" || got.Topic != "results" {
		t.Fatalf("got = %+v", got)
	}
	if got.Task == nil || got.Task.EndTime-got.Task.StartTime != time.Second {
		t.Fatalf("task timing = %+v", got.Task)
	}
	if ts.Submitted() != 1 {
		t.Fatalf("submitted = %d", ts.Submitted())
	}
}

func TestErrorsFlowToQueue(t *testing.T) {
	env, ts := newServer(t)
	boom := errors.New("bad chemistry")
	ts.RegisterMethod("explode", "cpu", func(*faas.Invocation) (any, error) { return nil, boom })
	var got Result
	env.Spawn("thinker", func(p *devent.Proc) {
		ts.Submit("results", "explode")
		got = ts.Queues().Recv(p, "results")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, boom) {
		t.Fatalf("err = %v", got.Err)
	}
}

func TestTopicsAreIndependent(t *testing.T) {
	env, ts := newServer(t)
	ts.RegisterMethod("id", "cpu", func(inv *faas.Invocation) (any, error) { return inv.Arg(0), nil })
	var a, b Result
	env.Spawn("thinker", func(p *devent.Proc) {
		ts.Submit("alpha", "id", "A")
		ts.Submit("beta", "id", "B")
		b = ts.Queues().Recv(p, "beta")
		a = ts.Queues().Recv(p, "alpha")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Value != "A" || b.Value != "B" {
		t.Fatalf("a=%v b=%v", a.Value, b.Value)
	}
}

func TestCollectN(t *testing.T) {
	env, ts := newServer(t)
	ts.RegisterMethod("id", "cpu", func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Duration(inv.Arg(0).(int)) * time.Second)
		return inv.Arg(0), nil
	})
	var got []Result
	env.Spawn("thinker", func(p *devent.Proc) {
		for i := 3; i >= 1; i-- {
			ts.Submit("r", "id", i)
		}
		got = CollectN(p, ts.Queues(), "r", 3)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	// Arrival order: shortest first.
	if got[0].Value != 1 || got[2].Value != 3 {
		t.Fatalf("order: %v %v %v", got[0].Value, got[1].Value, got[2].Value)
	}
	if Elapsed(got[2]) != 3*time.Second {
		t.Fatalf("elapsed = %v", Elapsed(got[2]))
	}
}

func TestThinkerAgentsJoin(t *testing.T) {
	env, ts := newServer(t)
	ts.RegisterMethod("id", "cpu", func(inv *faas.Invocation) (any, error) { return inv.Arg(0), nil })
	th := NewThinker(ts)
	total := 0
	th.Agent("submitter", func(p *devent.Proc, ts *TaskServer, q *Queues) {
		for i := 0; i < 5; i++ {
			ts.Submit("r", "id", i)
		}
	})
	th.Agent("consumer", func(p *devent.Proc, ts *TaskServer, q *Queues) {
		for i := 0; i < 5; i++ {
			r := q.Recv(p, "r")
			total += r.Value.(int)
		}
	})
	env.Spawn("main", func(p *devent.Proc) { th.Join(p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
}

func TestPending(t *testing.T) {
	env, ts := newServer(t)
	ts.RegisterMethod("id", "cpu", func(inv *faas.Invocation) (any, error) { return 1, nil })
	env.Spawn("thinker", func(p *devent.Proc) {
		ts.Submit("r", "id")
		p.Sleep(time.Second)
		if n := ts.Queues().Pending("r"); n != 1 {
			t.Errorf("pending = %d", n)
		}
		ts.Queues().Recv(p, "r")
		if n := ts.Queues().Pending("r"); n != 0 {
			t.Errorf("pending after recv = %d", n)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
