package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/harness"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/simgpu"
)

// This file holds the ablation studies DESIGN.md calls out: each
// isolates one modelling choice or design axis behind the headline
// results.

// GapAblationRow relates the host-side per-token gap to the benefit
// of plain time-sharing — the mechanism behind "any form of
// multiplexing, even time sharing, decreases total task completion
// time" (§5.2).
type GapAblationRow struct {
	HostGap time.Duration
	// SingleMakespan and Timeshare4Makespan are Fig.-4-style runs.
	SingleMakespan     time.Duration
	Timeshare4Makespan time.Duration
	// Improvement is 1 - timeshare4/single.
	Improvement float64
}

// AblationHostGap sweeps the host gap: with no gap the GPU is already
// saturated by one process and time-sharing cannot help; the larger
// the gap, the more time-sharing recovers.
func AblationHostGap(gaps []time.Duration, completions int) ([]GapAblationRow, error) {
	if completions <= 0 {
		completions = 24
	}
	return harness.Map(len(gaps), func(i int) (GapAblationRow, error) {
		gap := gaps[i]
		model := llm.LLaMa27B()
		model.HostGapPerToken = gap
		single, err := RunMultiplex(MultiplexConfig{Mode: ModeTimeshare, Processes: 1, Completions: completions, Model: model})
		if err != nil {
			return GapAblationRow{}, err
		}
		shared, err := RunMultiplex(MultiplexConfig{Mode: ModeTimeshare, Processes: 4, Completions: completions, Model: model})
		if err != nil {
			return GapAblationRow{}, err
		}
		return GapAblationRow{
			HostGap:            gap,
			SingleMakespan:     single.Makespan,
			Timeshare4Makespan: shared.Makespan,
			Improvement:        1 - shared.Makespan.Seconds()/single.Makespan.Seconds(),
		}, nil
	})
}

// MemFractionRow relates the decode's memory-traffic fraction to the
// MPS-vs-MIG gap at three processes — the bandwidth-quantization
// mechanism (§5.2's "MPS can divide GPU in a much more fine-grained
// way").
type MemFractionRow struct {
	MemFraction float64
	MPS3        time.Duration
	MIG3        time.Duration
	// MIGPenalty is MIG3/MPS3.
	MIGPenalty float64
}

// AblationMemFraction sweeps TokenMemFraction: at 0 the workloads are
// pure compute and MIG-2g (28 SMs ≥ the 20-SM knee) matches MPS; as
// traffic grows, MIG's hard 2/8 bandwidth slice falls behind MPS's
// soft 1/3 share.
func AblationMemFraction(fracs []float64, completions int) ([]MemFractionRow, error) {
	if completions <= 0 {
		completions = 24
	}
	return harness.Map(len(fracs), func(i int) (MemFractionRow, error) {
		f := fracs[i]
		model := llm.LLaMa27B()
		model.TokenMemFraction = f
		mps, err := RunMultiplex(MultiplexConfig{Mode: ModeMPS, Processes: 3, Completions: completions, Model: model})
		if err != nil {
			return MemFractionRow{}, err
		}
		mig, err := RunMultiplex(MultiplexConfig{Mode: ModeMIG, Processes: 3, Completions: completions, Model: model})
		if err != nil {
			return MemFractionRow{}, err
		}
		return MemFractionRow{
			MemFraction: f,
			MPS3:        mps.Makespan,
			MIG3:        mig.Makespan,
			MIGPenalty:  mig.Makespan.Seconds() / mps.Makespan.Seconds(),
		}, nil
	})
}

// BatchVsMultiplexRow compares in-process batching against cross-
// process multiplexing for the same total work.
type BatchVsMultiplexRow struct {
	Strategy   string
	Throughput float64
	MeanLat    time.Duration
}

// AblationBatchVsMultiplex contrasts the two ways to fill an A100 with
// LLaMa-2-7B work: one process decoding batches of B, versus B
// MPS-partitioned single-stream processes. Batching wins on raw
// throughput (one weight stream serves the whole batch) — but it
// requires one tenant owning all requests, which is exactly what a
// multi-tenant FaaS platform does not have; that asymmetry is the
// paper's motivation.
func AblationBatchVsMultiplex(completions int) ([]BatchVsMultiplexRow, error) {
	if completions <= 0 {
		completions = 40
	}
	batches := []int{1, 2, 4}
	multiplexes := []int{2, 4}
	return harness.Map(len(batches)+len(multiplexes), func(i int) (BatchVsMultiplexRow, error) {
		if i < len(batches) {
			return runBatched(batches[i], completions)
		}
		n := multiplexes[i-len(batches)]
		r, err := RunMultiplex(MultiplexConfig{Mode: ModeMPS, Processes: n, Completions: completions})
		if err != nil {
			return BatchVsMultiplexRow{}, err
		}
		return BatchVsMultiplexRow{
			Strategy:   fmt.Sprintf("multiplex MPS x%d", n),
			Throughput: r.Throughput,
			MeanLat:    r.MeanLatency(),
		}, nil
	})
}

// runBatched serves `completions` requests from a single engine with
// the given batch size.
func runBatched(batch, completions int) (BatchVsMultiplexRow, error) {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		return BatchVsMultiplexRow{}, err
	}
	cfg := llm.LLaMa27B()
	cfg.BatchSize = batch
	var lat metrics.Durations
	var makespan time.Duration
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		eng := llm.New(cfg)
		if err := eng.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			env.Fail(err)
			return
		}
		start := p.Now()
		done := 0
		for done < completions {
			cs, err := eng.CompleteBatch(p, 20, 20)
			if err != nil {
				env.Fail(err)
				return
			}
			for _, c := range cs {
				if done < completions {
					lat.Add(c.Latency)
					done++
				}
			}
		}
		makespan = p.Now() - start
	})
	if err := env.Run(); err != nil {
		return BatchVsMultiplexRow{}, err
	}
	return BatchVsMultiplexRow{
		Strategy:   fmt.Sprintf("batch x%d (one process)", batch),
		Throughput: metrics.Throughput(completions, makespan),
		MeanLat:    lat.Mean(),
	}, nil
}

// QuantumRow relates the vGPU time-slice length to tenant latency.
type QuantumRow struct {
	Quantum time.Duration
	MeanLat time.Duration
}

// AblationVGPUQuantum sweeps the vGPU scheduler quantum for four
// tenants. The finding matches Table 1's qualitative row: whatever
// the quantum, vGPU delivers time-sharing-level latency (≈N× the
// single-stream latency) because VM-level slicing extracts no spatial
// parallelism — long quanta merely trade a little efficiency (host
// gaps overlap within a turn) against coarser-grained waiting.
func AblationVGPUQuantum(quanta []time.Duration, completions int) ([]QuantumRow, error) {
	if completions <= 0 {
		completions = 16
	}
	return harness.Map(len(quanta), func(i int) (QuantumRow, error) {
		r, err := runVGPUWithQuantum(quanta[i], completions)
		if err != nil {
			return QuantumRow{}, err
		}
		return QuantumRow{Quantum: quanta[i], MeanLat: r}, nil
	})
}

func runVGPUWithQuantum(q time.Duration, completions int) (time.Duration, error) {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		return 0, err
	}
	if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
		return 0, err
	}
	dev.SetVGPUQuantum(q)
	var lat metrics.Durations
	for i := 0; i < 4; i++ {
		i := i
		env.Spawn("vm", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Group: fmt.Sprintf("vm%d", i)})
			eng := llm.New(llm.LLaMa27B())
			if err := eng.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
				env.Fail(err)
				return
			}
			for c := 0; c < completions/4; c++ {
				comp, err := eng.Complete(p, 20, 20)
				if err != nil {
					env.Fail(err)
					return
				}
				lat.Add(comp.Latency)
			}
		})
	}
	if err := env.Run(); err != nil {
		return 0, err
	}
	return lat.Mean(), nil
}
