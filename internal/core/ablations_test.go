package core

import (
	"testing"
	"time"
)

// Without a host-side gap, one process already saturates the GPU and
// time-sharing cannot help; with the calibrated 45 ms gap it recovers
// ~20%. The ablation isolates the mechanism behind §5.2's "even time
// sharing decreases total task completion time".
func TestAblationHostGap(t *testing.T) {
	rows, err := AblationHostGap([]time.Duration{0, 45 * time.Millisecond, 90 * time.Millisecond}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Improvement > 0.03 {
		t.Errorf("zero-gap improvement = %.2f, want ~0", rows[0].Improvement)
	}
	if rows[1].Improvement < 0.10 {
		t.Errorf("45ms-gap improvement = %.2f, want >=0.10", rows[1].Improvement)
	}
	if rows[2].Improvement <= rows[1].Improvement {
		t.Errorf("improvement not increasing in gap: %.2f then %.2f", rows[1].Improvement, rows[2].Improvement)
	}
}

// The MPS-vs-MIG gap at three processes is driven by bandwidth
// quantization: with no memory traffic MIG-2g matches MPS; at the
// calibrated 0.4 fraction MIG pays a clear penalty.
func TestAblationMemFraction(t *testing.T) {
	rows, err := AblationMemFraction([]float64{0.01, 0.4}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MIGPenalty > 1.05 {
		t.Errorf("compute-only MIG penalty = %.2f, want ~1", rows[0].MIGPenalty)
	}
	if rows[1].MIGPenalty < 1.15 {
		t.Errorf("calibrated MIG penalty = %.2f, want >1.15", rows[1].MIGPenalty)
	}
	if rows[1].MIGPenalty <= rows[0].MIGPenalty {
		t.Error("penalty should grow with memory traffic")
	}
}

// Batching inside one process beats multiplexing across processes on
// throughput (one weight stream feeds the whole batch) — the reason
// multiplexing targets *multi-tenant* GPUs, not single applications.
func TestAblationBatchVsMultiplex(t *testing.T) {
	rows, err := AblationBatchVsMultiplex(24)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BatchVsMultiplexRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	b1 := byName["batch x1 (one process)"]
	b4 := byName["batch x4 (one process)"]
	m4 := byName["multiplex MPS x4"]
	if b4.Throughput < 3*b1.Throughput {
		t.Errorf("batch-4 throughput %.3f not ≥3× batch-1 %.3f", b4.Throughput, b1.Throughput)
	}
	if b4.Throughput <= m4.Throughput {
		t.Errorf("batch-4 %.3f should beat MPS-4 %.3f on throughput", b4.Throughput, m4.Throughput)
	}
	// And batching holds latency at the single-stream level while
	// MPS-4 pays bandwidth contention.
	if b4.MeanLat > b1.MeanLat+time.Second {
		t.Errorf("batch-4 latency %v far above batch-1 %v", b4.MeanLat, b1.MeanLat)
	}
}

// Whatever the quantum, vGPU's VM-level slicing delivers
// time-sharing-level latency (≈4× single-stream for four tenants):
// it extracts no spatial parallelism — Table 1's point.
func TestAblationVGPUQuantum(t *testing.T) {
	rows, err := AblationVGPUQuantum([]time.Duration{time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const single = 4.53 // seconds, single-stream completion latency
	for _, r := range rows {
		ratio := r.MeanLat.Seconds() / single
		if ratio < 2.8 || ratio > 4.6 {
			t.Errorf("quantum %v: latency %.2fx single-stream, want ~4x", r.Quantum, ratio)
		}
	}
}
