package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// Default alert rule packs for the three scenario families. Each pack
// is plain data over series the scenario already records, evaluated by
// the tsdb alert engine after every scrape — attaching one changes
// nothing about the simulation, it only adds queryable alert state
// (alert:state series, alert_* counters, /api/alerts, the -alerts
// artifact). Thresholds are tuned to the scenario defaults: quiet in
// healthy runs, firing under the stresses each scenario manufactures.

// AutoscaleAlertRules is the serving-cell pack.
//
// slo-burn-page is the multi-window multi-burn-rate page condition
// (Google SRE style): the burn signal must breach over BOTH a short
// window (reactive — SLOWindow/5) and the full SLO window (sustained —
// a single bad batch can't page) before the alert fires. During the
// scenario's 3× burst the short and long averages both cross 1 until
// the autoscaler's scale-out lands, then the short window clears first
// and the alert resolves — the acceptance test pins that sequence.
func AutoscaleAlertRules(cfg AutoscaleConfig) []tsdb.AlertRule {
	cfg = cfg.WithDefaults()
	short := cfg.SLOWindow / 5
	if short <= 0 {
		short = time.Minute
	}
	return []tsdb.AlertRule{
		{
			Name:      "slo-burn-page",
			Labels:    []obs.Label{obs.L("app", "infer")},
			Series:    "slo:burn",
			Fn:        "avg",
			Windows:   []time.Duration{short, cfg.SLOWindow},
			Threshold: 1,
		},
		{
			// Sustained admission-control shedding: the cell is refusing
			// a meaningful share of traffic, not just clipping a spike.
			Name:      "shed-rate",
			Series:    "autoscale_shed_probability",
			Fn:        "max",
			Windows:   []time.Duration{time.Minute},
			Threshold: 0.5,
			For:       30 * time.Second,
		},
		{
			// Oscillating block count: more than four direction changes
			// inside ten minutes means the controller is thrashing
			// against its own cold starts rather than tracking load.
			Name:       "scale-flap",
			Series:     "autoscale_blocks",
			Fn:         "flips",
			Windows:    []time.Duration{10 * time.Minute},
			Threshold:  5,
			KeepFiring: time.Minute,
		},
	}
}

// FleetAlertRules is the placement-plane pack: a sustained
// fragmentation ceiling (capacity exists but is unusable — the paper's
// motivating waste mode) and a nonzero rejected-placement rate
// (demand arriving that the packer cannot place anywhere).
func FleetAlertRules() []tsdb.AlertRule {
	return []tsdb.AlertRule{
		{
			Name:      "frag-ceiling",
			Series:    "fleet_fragmentation",
			Fn:        "avg",
			Windows:   []time.Duration{30 * time.Second},
			Threshold: 0.55,
			For:       30 * time.Second,
		},
		{
			Name:         "unplaced-demand",
			Series:       "fleet_place_total",
			SeriesLabels: []obs.Label{obs.L("status", "rejected")},
			Fn:           "rate",
			Windows:      []time.Duration{time.Minute},
			Threshold:    0.05,
			KeepFiring:   30 * time.Second,
		},
	}
}

// ScaleAlertRules is the throughput pack for one shard of the sharded
// open-loop scenario: completions stalling below one task per second
// for ten straight seconds mid-run means the shard's pipeline wedged
// (rate needs two window samples, so the run's warm-up cannot trip it).
func ScaleAlertRules() []tsdb.AlertRule {
	return []tsdb.AlertRule{
		{
			Name:         "completion-stall",
			Series:       "faas_tasks_completed_total",
			SeriesLabels: []obs.Label{obs.L("app", "micro"), obs.L("status", "done")},
			Fn:           "rate",
			Windows:      []time.Duration{10 * time.Second},
			Threshold:    1,
			Below:        true,
			For:          10 * time.Second,
		},
	}
}

// attachAlerts registers a pack on a DB (nil-safe on both sides).
func attachAlerts(db *tsdb.DB, rules []tsdb.AlertRule) {
	if db == nil {
		return
	}
	for _, r := range rules {
		db.AddAlert(r)
	}
}
