package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/tsdb"
	"repro/internal/simgpu"
)

// AutoscaleConfig drives the SLO-driven autoscaling scenario: one
// serving cell — a pool of single-GPU nodes behind a Slurm-like
// provider, one GPU executor, one inference app — under diurnal,
// bursty open-loop traffic. The cell either holds a static block
// count for the whole run (StaticBlocks > 0: classic provisioned
// capacity) or runs the hybrid autoscaler (StaticBlocks == 0:
// burn-driven block scaling plus admission control). Comparing the
// two modes on the same traffic is the experiment: SLO attainment
// versus GPU-seconds paid.
type AutoscaleConfig struct {
	// GPUs is the provider pool size (default 6).
	GPUs int
	// GrantDelay is the provider's provisioning latency per block
	// (default 30s — the cluster-scheduler component of cold start).
	GrantDelay time.Duration
	// WorkerInit is the worker cold-start component (default 10s).
	WorkerInit time.Duration
	// ServiceTime is each request's GPU kernel time on a whole device
	// (default 1s).
	ServiceTime time.Duration
	// Traffic is the arrival process; a zero Horizon selects the
	// default diurnal scenario (two 1h cycles, peak 4 req/s, night
	// cutoff, one 3× burst at the first peak).
	Traffic TrafficConfig
	// SLOLatency/SLOTarget/SLOWindow define the latency objective
	// (defaults: 15s end-to-end for 90% over 5min windows).
	SLOLatency time.Duration
	SLOTarget  float64
	SLOWindow  time.Duration
	// StaticBlocks, when positive, provisions that many blocks for the
	// whole run and disables the autoscaler — the baseline cells.
	StaticBlocks int
	// DrainHold keeps the cell open this long after the last request
	// resolves, long enough for the autoscaler's idle window to elapse
	// — the scale-to-zero demonstration. Static cells pay their blocks
	// through the hold. Default 0.
	DrainHold time.Duration
	// Policy is the autoscaler policy (zero fields take the package
	// defaults; MaxBlocks defaults to GPUs).
	Policy autoscale.Spec
	// Seed drives traffic and shed draws (default 1).
	Seed int64
	// TSDB overrides the store config (default: attached with package
	// defaults — the burn series must exist for the controller).
	TSDB *tsdb.Config
	// OnCollector/OnDB attach streaming sinks, as in FleetConfig.
	OnCollector func(*obs.Collector)
	OnDB        func(*tsdb.DB)
}

// WithDefaults fills unset fields with the scenario defaults.
func (c AutoscaleConfig) WithDefaults() AutoscaleConfig {
	if c.GPUs <= 0 {
		c.GPUs = 6
	}
	if c.GrantDelay <= 0 {
		c.GrantDelay = 30 * time.Second
	}
	if c.WorkerInit <= 0 {
		c.WorkerInit = 10 * time.Second
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Traffic.Horizon <= 0 {
		c.Traffic = TrafficConfig{
			Users:       100_000,
			PerUserRate: 4e-5, // 4 req/s aggregate at peak
			Period:      time.Hour,
			TroughFrac:  0.02,
			Cutoff:      0.3, // night: ~4.6 min of true zero around each trough
			Horizon:     2 * time.Hour,
			Bursts:      []Burst{{At: 28 * time.Minute, Duration: 5 * time.Minute, Multiplier: 3}},
		}
	}
	if c.Traffic.Seed == 0 {
		c.Traffic.Seed = c.Seed
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 15 * time.Second
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 0.9
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 5 * time.Minute
	}
	if c.Policy.MaxBlocks == 0 {
		c.Policy.MaxBlocks = c.GPUs
	}
	if c.Policy.Seed == 0 {
		c.Policy.Seed = c.Seed
	}
	return c
}

// AutoscaleResult aggregates one cell's run. Every field except the
// Obs/TSDB handles is virtual and deterministic in (config, seed).
type AutoscaleResult struct {
	// Autoscaled distinguishes the hybrid cell from static baselines;
	// Blocks is the static size (or the policy ceiling when autoscaled).
	Autoscaled bool
	Blocks     int

	// Demand and outcomes.
	Arrivals  int
	Completed int // terminal done
	Good      int // done within SLOLatency end-to-end
	Shed      int
	Failed    int
	// Attainment is Good/Arrivals: sheds and failures count against
	// the objective — rejected demand is not served demand.
	Attainment float64
	ShedRate   float64

	// Served-latency distribution (completed tasks only).
	Latencies *metrics.Durations

	// Economics. GPUSeconds integrates blocks held over virtual time;
	// GPUSecondsPerGood is the cost per SLO-meeting request. ColdStarts
	// counts worker spawns (block provisions × workers per block);
	// TasksPerColdStart is how many completions each cold start
	// amortized over.
	GPUSeconds        float64
	GPUSecondsPerGood float64
	ColdStarts        int
	TasksPerColdStart float64

	// Autoscaler activity (zero for static cells).
	ScaleOuts   int
	ScaleIns    int
	PeakBlocks  int
	FinalBlocks int

	Makespan time.Duration
	Events   int64

	Obs  *obs.Collector
	TSDB *tsdb.DB
}

// RunAutoscale runs one serving cell against the configured traffic.
func RunAutoscale(cfg AutoscaleConfig) (*AutoscaleResult, error) {
	cfg = cfg.WithDefaults()
	if cfg.StaticBlocks > cfg.GPUs {
		return nil, fmt.Errorf("core: %d static blocks exceed the %d-GPU pool", cfg.StaticBlocks, cfg.GPUs)
	}
	env := devent.NewEnv()
	col := obs.New(env)
	col.SetScope("autoscale")
	if cfg.OnCollector != nil {
		cfg.OnCollector(col)
	}
	tdbCfg := tsdb.Config{}
	if cfg.TSDB != nil {
		tdbCfg = *cfg.TSDB
	}
	db := tsdb.New(col.Metrics(), env, tdbCfg)
	if cfg.OnDB != nil {
		cfg.OnDB(db)
	}

	spec := simgpu.A100SXM480GB()
	nodes := make([]*gpuctl.Node, cfg.GPUs)
	for i := range nodes {
		dev, err := simgpu.NewDevice(env, fmt.Sprintf("n%d-gpu", i), spec)
		if err != nil {
			return nil, err
		}
		nodes[i] = gpuctl.NewNode(env, dev)
	}
	slurm := provider.NewSlurm(env, cfg.GrantDelay, nodes...)

	initial := cfg.StaticBlocks
	if initial <= 0 {
		initial = 1 // the autoscaled cell boots with one block
	}
	ex, err := htex.New(env, htex.Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"},
		WorkerInit:            cfg.WorkerInit,
		Provider:              slurm,
		Blocks:                initial,
	})
	if err != nil {
		return nil, err
	}
	dfk := faas.NewDFK(env, faas.Config{Collector: col, DropCompleted: true}, ex)
	kernel := simgpu.Kernel{Name: "infer", FLOPs: cfg.ServiceTime.Seconds() * spec.FP32FLOPS}
	dfk.Register(faas.App{Name: "infer", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		_, err = ctx.Run(inv.Proc(), kernel)
		return nil, err
	}})
	analyze.NewMonitorTSDB(col, env, []analyze.Rule{
		{App: "infer", Latency: cfg.SLOLatency, Target: cfg.SLOTarget, Window: cfg.SLOWindow},
	}, db)
	attachAlerts(db, AutoscaleAlertRules(cfg))

	var ctl *autoscale.Controller
	if cfg.StaticBlocks <= 0 {
		ctl, err = autoscale.New(autoscale.Config{
			Env: env, Obs: col, DB: db, Spec: cfg.Policy,
			Exec: ex, DFK: dfk, Apps: []string{"infer"},
		})
		if err != nil {
			return nil, err
		}
	}
	if err := dfk.Start(); err != nil {
		return nil, err
	}
	if ctl != nil {
		ctl.Start()
	}

	res := &AutoscaleResult{
		Autoscaled: ctl != nil,
		Blocks:     cfg.StaticBlocks,
		Latencies:  &metrics.Durations{},
		Obs:        col,
		TSDB:       db,
	}
	if ctl != nil {
		res.Blocks = cfg.Policy.MaxBlocks
	}
	tr, err := NewTraffic(cfg.Traffic)
	if err != nil {
		return nil, err
	}

	var endAt time.Duration
	env.Spawn("traffic", func(p *devent.Proc) {
		var futs []*faas.Future
		for {
			at, ok := tr.Next()
			if !ok {
				break
			}
			p.Sleep(at - p.Now())
			futs = append(futs, dfk.Submit("infer"))
			res.Arrivals++
			if b := ex.Blocks(); b > res.PeakBlocks {
				res.PeakBlocks = b
			}
		}
		for _, f := range futs {
			_, err := f.Result(p)
			switch {
			case err == nil:
				res.Completed++
				lat := f.Task().EndTime - f.Task().SubmitTime
				res.Latencies.Add(lat)
				if lat <= cfg.SLOLatency {
					res.Good++
				}
			case errors.Is(err, faas.ErrShed):
				res.Shed++
			default:
				res.Failed++
			}
		}
		if b := ex.Blocks(); b > res.PeakBlocks {
			res.PeakBlocks = b
		}
		res.Makespan = p.Now()
		if cfg.DrainHold > 0 {
			p.Sleep(cfg.DrainHold)
		}
		res.FinalBlocks = ex.Blocks()
		endAt = p.Now()
		if ctl != nil {
			ctl.Stop() // closes the block-seconds integral
		}
		db.Stop()
	})

	db.Start(env)
	if err := env.Run(); err != nil {
		return nil, err
	}
	db.Scrape()

	if ctl != nil {
		res.ScaleOuts = ctl.ScaleOuts()
		res.ScaleIns = ctl.ScaleIns()
		res.GPUSeconds = ctl.BlockSeconds()
		// One block = one worker here: the boot block plus every
		// scale-out grant is a cold start.
		res.ColdStarts = initial + int(col.Metrics().Counter("autoscale_scale_out_total").Value())
	} else {
		res.GPUSeconds = float64(cfg.StaticBlocks) * endAt.Seconds()
		res.ColdStarts = cfg.StaticBlocks
	}
	if res.Arrivals > 0 {
		res.Attainment = float64(res.Good) / float64(res.Arrivals)
		res.ShedRate = float64(res.Shed) / float64(res.Arrivals)
	}
	if res.Good > 0 {
		res.GPUSecondsPerGood = res.GPUSeconds / float64(res.Good)
	}
	if res.ColdStarts > 0 {
		res.TasksPerColdStart = float64(res.Completed) / float64(res.ColdStarts)
	}
	res.Events = env.EventsDispatched()
	return res, nil
}
