package core

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// The alerting-plane acceptance criterion: the multi-window burn-rate
// page fires while a traffic burst is overwhelming the provisioned
// blocks and resolves after the autoscaler's scale-out absorbs it.
//
// The scenario is built so the burst is the only overload: flat
// baseline traffic the steady-state block count handles comfortably,
// admission control pushed out of the way (shedding would mask the
// latency breach — shed tasks are excluded from the SLO signal), and
// an 8× one-minute burst that outruns the installed capacity until
// scale-out lands.
func TestAutoscaleBurnAlertFiresDuringBurstAndResolves(t *testing.T) {
	burstAt, burstDur := 4*time.Minute, time.Minute
	// Provisioning is quick (3s to a live worker) so the cell's boot
	// does not itself breach the 10s objective; the burst still
	// overloads for minutes because the control loop reacts on its 15s
	// interval and the burn windows must fill before and drain after.
	cfg := AutoscaleConfig{
		GPUs:        4,
		GrantDelay:  2 * time.Second,
		WorkerInit:  time.Second,
		ServiceTime: 500 * time.Millisecond,
		Traffic: TrafficConfig{
			Users:       1000,
			PerUserRate: 1e-3, // flat 1 req/s baseline
			Period:      10 * time.Minute,
			TroughFrac:  1, // no diurnal swing: the burst is the event
			Horizon:     12 * time.Minute,
			Bursts:      []Burst{{At: burstAt, Duration: burstDur, Multiplier: 8}},
		},
		SLOLatency: 10 * time.Second,
		SLOTarget:  0.9,
		SLOWindow:  2 * time.Minute,
	}
	cfg.Policy.Interval = 15 * time.Second
	cfg.Policy.ShedStart = 1000 // never shed: the burst must show as latency
	cfg.Policy.ShedFull = 2000
	res, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleOuts == 0 {
		t.Fatal("scenario did not scale out; nothing absorbs the burst")
	}

	var page *tsdb.AlertStatus
	for _, st := range res.TSDB.AlertStatuses() {
		if st.Name == "slo-burn-page" {
			st := st
			page = &st
		}
	}
	if page == nil {
		t.Fatal("slo-burn-page rule not registered on the cell's DB")
	}
	if page.State != "inactive" {
		t.Fatalf("page state at run end = %s, want inactive (resolved)", page.State)
	}

	// Exactly the burst incident: fired inside [burst start, burst end
	// + one SLO window] — the long window needs breaching samples to
	// accumulate, so firing lags the burst onset but never precedes it.
	burstEnd := burstAt + burstDur
	var inc *tsdb.AlertIncident
	for i := range page.Incidents {
		if page.Incidents[i].FiredAt >= burstAt && page.Incidents[i].FiredAt <= burstEnd+cfg.SLOWindow {
			inc = &page.Incidents[i]
			break
		}
	}
	if inc == nil {
		t.Fatalf("no page incident overlaps the burst; incidents = %+v", page.Incidents)
	}
	for i := range page.Incidents {
		if page.Incidents[i].FiredAt < burstAt {
			t.Fatalf("spurious pre-burst page incident %+v (baseline traffic should be healthy)", page.Incidents[i])
		}
	}
	if inc.Peak < 1 {
		t.Fatalf("incident peak burn = %v, want >= 1", inc.Peak)
	}

	// Resolution came after a scale-out landed inside the incident:
	// the autoscale_scale_out_total counter moved between fire and
	// resolve, and the alert cleared within a few SLO windows of the
	// burst rather than staying latched to the horizon.
	if inc.End <= inc.FiredAt {
		t.Fatalf("incident did not resolve: fired=%v end=%v", inc.FiredAt, inc.End)
	}
	if inc.End > burstEnd+3*cfg.SLOWindow {
		t.Fatalf("page resolved at %v, too long after the burst for scale-out credit", inc.End)
	}
	outs := res.TSDB.Samples("autoscale_scale_out_total", 0, 0)
	outAt := func(t time.Duration) float64 {
		v := 0.0
		for _, s := range outs {
			if s.T > t {
				break
			}
			v = s.V
		}
		return v
	}
	if outAt(inc.End) <= outAt(inc.FiredAt-cfg.Policy.Interval) {
		t.Fatalf("no scale-out between page fire (%v) and resolve (%v)", inc.FiredAt, inc.End)
	}

	// The engine's counters and state series recorded the cycle.
	if v, ok := res.TSDB.Latest("alert_firing_total", obs.L("alert", "slo-burn-page"), obs.L("app", "infer")); !ok || v.V < 1 {
		t.Fatalf("alert_firing_total = %+v ok=%v, want >= 1", v, ok)
	}
	states := res.TSDB.Samples("alert:state", 0, 0, obs.L("alert", "slo-burn-page"), obs.L("app", "infer"))
	if len(states) < 2 {
		t.Fatalf("alert:state transitions = %v, want fire + resolve", states)
	}

	// The whole pack is registered and queryable.
	names := map[string]bool{}
	for _, st := range res.TSDB.AlertStatuses() {
		names[st.Name] = true
	}
	for _, want := range []string{"slo-burn-page", "shed-rate", "scale-flap", "slo-burn"} {
		if !names[want] {
			t.Fatalf("rule %q missing from AlertStatuses (have %v)", want, names)
		}
	}
}
