package core

import (
	"testing"
	"time"
)

// BenchmarkTrafficHalfMillionArrivals measures the thinning sampler on
// a million-user cell: half a diurnal cycle from trough to peak at
// 200 req/s aggregate, roughly 180k accepted arrivals per iteration.
func BenchmarkTrafficHalfMillionArrivals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := NewTraffic(TrafficConfig{
			Users:       1_000_000,
			PerUserRate: 2e-4,
			Period:      time.Hour,
			TroughFrac:  0.1,
			Horizon:     30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := tr.Next(); !ok {
				break
			}
			n++
		}
		if n == 0 {
			b.Fatal("sampler produced no arrivals")
		}
	}
}

// BenchmarkAutoscaleCell runs the full autoscaled serving cell — two
// 10-minute diurnal cycles with a burst, the SLO monitor, and the
// hybrid controller — end to end on the virtual clock.
func BenchmarkAutoscaleCell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := cellCfg(0)
		cfg.Policy.Interval = 15 * time.Second
		r, err := RunAutoscale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Arrivals == 0 || r.ScaleOuts == 0 {
			b.Fatalf("cell idle: %+v", r)
		}
	}
}
