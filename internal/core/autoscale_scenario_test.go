package core

import (
	"testing"
	"time"
)

// cellCfg is the shared small-scale serving cell: two 10-minute
// diurnal cycles with a night cutoff and a 3× burst at the first
// peak, over a 4-GPU pool.
func cellCfg(static int) AutoscaleConfig {
	return AutoscaleConfig{
		GPUs:        4,
		GrantDelay:  10 * time.Second,
		WorkerInit:  2 * time.Second,
		ServiceTime: 500 * time.Millisecond,
		Traffic: TrafficConfig{
			Users:       1000,
			PerUserRate: 2e-3, // peak 2 req/s
			Period:      10 * time.Minute,
			TroughFrac:  0.02,
			Cutoff:      0.2,
			Horizon:     20 * time.Minute,
			Bursts:      []Burst{{At: 4 * time.Minute, Duration: time.Minute, Multiplier: 3}},
		},
		SLOLatency:   10 * time.Second,
		SLOTarget:    0.9,
		SLOWindow:    2 * time.Minute,
		StaticBlocks: static,
	}
}

func runCell(t *testing.T, static int) *AutoscaleResult {
	t.Helper()
	cfg := cellCfg(static)
	cfg.Policy.Interval = 15 * time.Second
	r, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatalf("static=%d: %v", static, err)
	}
	return r
}

// The acceptance criterion of the autoscaling experiment: on the same
// diurnal traffic, the hybrid autoscaler beats peak-static
// provisioning on cost and trough-static provisioning on SLO
// attainment — it is not dominated on either axis.
func TestAutoscaleBeatsStaticProvisioning(t *testing.T) {
	auto := runCell(t, 0)
	static1 := runCell(t, 1)
	static4 := runCell(t, 4)

	if auto.Arrivals != static1.Arrivals || auto.Arrivals != static4.Arrivals {
		t.Fatalf("cells saw different demand: %d/%d/%d arrivals",
			auto.Arrivals, static1.Arrivals, static4.Arrivals)
	}
	// Cost axis: well under peak-static spend.
	if auto.GPUSeconds >= 0.7*static4.GPUSeconds {
		t.Errorf("GPU-seconds = %.0f, not under 70%% of peak-static %.0f",
			auto.GPUSeconds, static4.GPUSeconds)
	}
	// Attainment axis: far above trough-static, and meeting the SLO
	// target outright (everything is deterministic in the seed).
	if auto.Attainment <= static1.Attainment+0.2 {
		t.Errorf("attainment = %.3f, not clearly above trough-static %.3f",
			auto.Attainment, static1.Attainment)
	}
	if auto.Attainment < 0.9 {
		t.Errorf("attainment = %.3f, below the 0.9 objective", auto.Attainment)
	}
	// The machinery actually engaged: both scaling directions and
	// burst-time shedding, with no task failing for any other reason.
	if auto.ScaleOuts == 0 || auto.ScaleIns == 0 {
		t.Errorf("transitions out=%d in=%d, want both", auto.ScaleOuts, auto.ScaleIns)
	}
	if auto.PeakBlocks != 4 {
		t.Errorf("peak blocks = %d, want the full pool under the burst", auto.PeakBlocks)
	}
	if auto.Shed == 0 {
		t.Error("burst produced no shedding")
	}
	if auto.Failed != 0 || static1.Failed != 0 || static4.Failed != 0 {
		t.Errorf("failures: auto=%d s1=%d s4=%d", auto.Failed, static1.Failed, static4.Failed)
	}
}

// With a post-drain hold longer than the idle window, the autoscaler
// releases every block back to the provider: true scale-to-zero.
func TestAutoscaleScalesToZeroAfterDrain(t *testing.T) {
	cfg := cellCfg(0)
	cfg.Traffic.Horizon = 10 * time.Minute
	cfg.Traffic.Bursts = nil
	cfg.Policy.Interval = 15 * time.Second
	cfg.Policy.IdleAfter = time.Minute
	cfg.DrainHold = 3 * time.Minute
	r, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalBlocks != 0 {
		t.Errorf("final blocks = %d, want 0 after the idle window", r.FinalBlocks)
	}
	if r.ScaleIns == 0 {
		t.Error("no scale-ins recorded")
	}
	// The hold at zero costs nothing: the integral is strictly below
	// one-block-for-the-whole-run.
	if max := (r.Makespan + cfg.DrainHold).Seconds(); r.GPUSeconds >= max {
		t.Errorf("GPU-seconds = %.0f, want under %.0f (idle time at zero must be free)", r.GPUSeconds, max)
	}
}

// The scenario is deterministic in (config, seed): two runs agree on
// every reported scalar.
func TestAutoscaleScenarioDeterministic(t *testing.T) {
	a := runCell(t, 0)
	b := runCell(t, 0)
	if a.Arrivals != b.Arrivals || a.Good != b.Good || a.Shed != b.Shed ||
		a.GPUSeconds != b.GPUSeconds || a.ScaleOuts != b.ScaleOuts ||
		a.ScaleIns != b.ScaleIns || a.Makespan != b.Makespan || a.Events != b.Events {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Latencies.Percentile(95) != b.Latencies.Percentile(95) {
		t.Errorf("p95 diverged: %v vs %v", a.Latencies.Percentile(95), b.Latencies.Percentile(95))
	}
}
