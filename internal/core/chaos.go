package core

import (
	"repro/internal/fault"
)

// globalChaos is the process-wide chaos spec installed by SetChaos;
// Options.Chaos overrides it per platform.
var globalChaos *fault.Spec

// SetChaos installs (or, with nil, removes) a process-wide chaos spec
// applied to every subsequently built Platform whose Options.Chaos is
// nil. The CLIs' -chaos flag routes here so existing experiment
// drivers gain fault injection without signature changes.
func SetChaos(s *fault.Spec) { globalChaos = s }

// ChaosSpec returns the process-wide chaos spec (nil when chaos is
// off).
func ChaosSpec() *fault.Spec { return globalChaos }

// RunChaosBurst runs the Table 1 burst workload (4 concurrent LLaMa
// processes under MPS, 32 completions) with the given fault schedule.
// It is the chaos soak's unit of work: the returned result carries
// the invariant checker, the injected-fault count, and how many
// completions failed terminally.
func RunChaosBurst(spec fault.Spec) (*MultiplexResult, error) {
	return RunMultiplex(MultiplexConfig{
		Mode:        ModeMPS,
		Processes:   4,
		Completions: 32,
		Chaos:       &spec,
	})
}
