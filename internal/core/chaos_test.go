package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/obs"
)

// chaosSpecFor derives a distinct but deterministic fault schedule
// from the soak seed: every seed gets a different arrival rate and
// submit-failure probability so the suite explores sparse and dense
// schedules, single-kind and all-kind mixes.
func chaosSpecFor(seed int) fault.Spec {
	spec := fault.Spec{
		Seed:           int64(seed),
		Rate:           0.2 + 0.1*float64(seed%5),
		SubmitFailProb: 0.01 * float64(seed%4),
	}
	// A third of the seeds restrict the kinds to stress one recovery
	// path in isolation.
	switch seed % 6 {
	case 4:
		spec.Kinds = []fault.Kind{fault.KindWorker}
	case 5:
		spec.Kinds = []fault.Kind{fault.KindGPU, fault.KindEndpoint}
	}
	return spec
}

// TestChaosSoak is the invariant suite's property test: the Table 1
// burst workload under ≥20 random (seeded) fault schedules. Whatever
// the injector does — worker kills, GPU context losses, transient
// submit failures — every submitted task must reach exactly one
// terminal state: no lost futures, no double completions.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	const seeds = 24
	results, err := harness.Map(seeds, func(i int) (*MultiplexResult, error) {
		return RunChaosBurst(chaosSpecFor(i + 1))
	})
	if err != nil {
		t.Fatalf("chaos burst: %v", err)
	}
	totalFaults, totalFailed := 0, 0
	for i, res := range results {
		seed := i + 1
		ck := res.Checker
		if ck == nil {
			t.Fatalf("seed %d: no checker attached", seed)
		}
		if err := ck.Err(); err != nil {
			t.Errorf("seed %d: invariant violated: %v", seed, err)
		}
		// 4 preloads + 32 completions, each submitted exactly once;
		// retries reuse the task, so the checker must see 36 tasks and
		// 36 terminal transitions.
		if ck.Seen() != 36 || ck.Terminal() != 36 {
			t.Errorf("seed %d: seen %d terminal %d tasks, want 36/36 (outcomes %v)",
				seed, ck.Seen(), ck.Terminal(), ck.Outcomes())
		}
		if got := res.Latencies.N() + res.Failed; got != res.Completions {
			t.Errorf("seed %d: %d latencies + %d failed = %d, want %d completions",
				seed, res.Latencies.N(), res.Failed, got, res.Completions)
		}
		totalFaults += res.Faults
		totalFailed += res.Failed
	}
	if totalFaults == 0 {
		t.Fatal("no seed injected a single fault; the soak exercised nothing")
	}
	t.Logf("soak: %d seeds, %d faults injected, %d completions failed terminally",
		seeds, totalFaults, totalFailed)
}

// TestChaosDeterminism is the chaos half of the determinism contract:
// the same chaos seed must yield a byte-identical observability export
// (Chrome trace + Prometheus text) at any -parallel level. Fault
// arrival times, victim choices, retry jitter, and restart backoff all
// ride on the Env's virtual clock and seeded PRNGs, so nothing about
// host scheduling may leak into the run.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism replay in -short mode")
	}
	const runs = 4
	render := func(workers int) []byte {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		results, err := harness.Map(runs, func(i int) (*MultiplexResult, error) {
			spec := chaosSpecFor(i + 1)
			return RunMultiplex(MultiplexConfig{
				Mode:        ModeMPS,
				Processes:   4,
				Completions: 16,
				Observe:     true,
				Chaos:       &spec,
			})
		})
		if err != nil {
			t.Fatalf("chaos run with %d workers: %v", workers, err)
		}
		var b bytes.Buffer
		for i, res := range results {
			fmt.Fprintf(&b, "# run %d: faults=%d failed=%d makespan=%s\n",
				i, res.Faults, res.Failed, res.Makespan)
			if err := obs.WriteChromeTrace(&b, res.Obs); err != nil {
				t.Fatalf("trace export: %v", err)
			}
			if err := obs.WritePrometheus(&b, res.Obs); err != nil {
				t.Fatalf("metrics export: %v", err)
			}
		}
		return b.Bytes()
	}
	seq := render(1)
	if len(seq) == 0 {
		t.Fatal("sequential export is empty")
	}
	par := render(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("chaos export differs across -parallel levels (%d vs %d bytes)", len(seq), len(par))
	}
	if again := render(4); !bytes.Equal(par, again) {
		t.Fatal("repeated parallel chaos runs differ")
	}
}
