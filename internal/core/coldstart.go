package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/llm"
	"repro/internal/simgpu"
	"repro/internal/weightcache"
)

// ColdStartBreakdown decomposes a serverless GPU cold start into the
// paper's three components (§6): function initialization, GPU context
// initialization, and application (model) loading.
type ColdStartBreakdown struct {
	Scenario    string
	WorkerInit  time.Duration
	ContextInit time.Duration
	ModelLoad   time.Duration
	Total       time.Duration
}

// RunColdStart measures the breakdown for the paper's models. The
// 13B fp32 load lands at ≈10 s, the paper's headline number.
func RunColdStart(workerInit time.Duration) ([]ColdStartBreakdown, error) {
	if workerInit <= 0 {
		workerInit = 2 * time.Second
	}
	scenarios := []struct {
		name   string
		cfg    llm.Config
		shards int
	}{
		{"llama2-7b fp16", llm.LLaMa27B(), 1},
		{"llama2-7b fp32", fp32(llm.LLaMa27B()), 1},
		{"llama2-13b fp32 (2 GPUs)", fp32(llm.LLaMa213B()), 2},
	}
	var out []ColdStartBreakdown
	for _, sc := range scenarios {
		b, err := measureColdStart(sc.name, sc.cfg, sc.shards, workerInit)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func measureColdStart(name string, cfg llm.Config, shards int, workerInit time.Duration) (ColdStartBreakdown, error) {
	env := devent.NewEnv()
	devs := make([]*simgpu.Device, shards)
	for i := range devs {
		d, err := simgpu.NewDevice(env, fmt.Sprintf("gpu%d", i), simgpu.A100SXM480GB())
		if err != nil {
			return ColdStartBreakdown{}, err
		}
		devs[i] = d
	}
	var b ColdStartBreakdown
	b.Scenario = name
	env.Spawn("coldstart", func(p *devent.Proc) {
		start := p.Now()
		p.Sleep(workerInit) // function initialization
		b.WorkerInit = p.Now() - start

		t := p.Now()
		ctxs := make([]*simgpu.Context, shards)
		for i, d := range devs {
			ctx, err := d.NewContext(p, simgpu.ContextOpts{}) // pays context init
			if err != nil {
				env.Fail(err)
				return
			}
			ctxs[i] = ctx
		}
		b.ContextInit = p.Now() - t

		e := llm.New(cfg)
		if err := e.Load(p, ctxs, devs[0].Spec().HostLoadBW); err != nil {
			env.Fail(err)
			return
		}
		b.ModelLoad = e.LoadTime()
		b.Total = p.Now() - start
	})
	if err := env.Run(); err != nil {
		return ColdStartBreakdown{}, err
	}
	return b, nil
}

// ReconfigResult is the downtime of one re-partitioning approach.
type ReconfigResult struct {
	Approach string
	// Downtime is from killing the old process to inference-ready.
	Downtime time.Duration
	// Note records a qualitative finding.
	Note string
}

// RunReconfig measures the paper's §6/§7 reconfiguration costs:
// changing a running LLaMa service's GPU share requires a process
// restart under MPS (10–20 s with model reload for fp32 models) and a
// device reset plus restart under MIG; the future-work weight cache
// removes the reload for MPS but cannot survive a MIG re-layout
// (instance memory dies with the instance).
func RunReconfig(workerInit time.Duration) ([]ReconfigResult, error) {
	if workerInit <= 0 {
		workerInit = 2 * time.Second
	}
	cfg := fp32(llm.LLaMa27B())
	var out []ReconfigResult

	// --- MPS repartition, with and without the weight cache.
	for _, cached := range []bool{false, true} {
		env := devent.NewEnv()
		dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
		if err != nil {
			return nil, err
		}
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			return nil, err
		}
		cache := weightcache.New()
		var downtime time.Duration
		env.Spawn("svc", func(p *devent.Proc) {
			hostBW := dev.Spec().HostLoadBW
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SMPercent: 50})
			var eng *llm.Engine
			var err error
			if cached {
				eng, _, err = cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, hostBW)
			} else {
				eng = llm.New(cfg)
				err = eng.Load(p, []*simgpu.Context{ctx}, hostBW)
			}
			if err != nil {
				env.Fail(err)
				return
			}
			if _, err := eng.Complete(p, 20, 20); err != nil {
				env.Fail(err)
				return
			}
			// Re-partition 50% → 25%: kill, restart, reload.
			start := p.Now()
			eng.Unload()
			ctx.Destroy()
			p.Sleep(workerInit)
			ctx2, _ := dev.NewContext(p, simgpu.ContextOpts{SMPercent: 25})
			if cached {
				eng, _, err = cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx2}, hostBW)
			} else {
				eng = llm.New(cfg)
				err = eng.Load(p, []*simgpu.Context{ctx2}, hostBW)
			}
			if err != nil {
				env.Fail(err)
				return
			}
			downtime = p.Now() - start
		})
		if err := env.Run(); err != nil {
			return nil, err
		}
		name := "MPS repartition (process restart)"
		note := "reload pays full model load"
		if cached {
			name = "MPS repartition + GPU weight cache"
			note = "reattaches GPU-resident weights; no reload"
		}
		out = append(out, ReconfigResult{Approach: name, Downtime: downtime, Note: note})
	}

	// --- MIG re-layout: drain, reset, restart, reload.
	{
		env := devent.NewEnv()
		dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
		if err != nil {
			return nil, err
		}
		var downtime time.Duration
		env.Spawn("svc", func(p *devent.Proc) {
			hostBW := dev.Spec().HostLoadBW
			if err := dev.EnableMIG(p); err != nil {
				env.Fail(err)
				return
			}
			ins, err := dev.ConfigureMIG(p, []string{"3g.40gb", "3g.40gb"})
			if err != nil {
				env.Fail(err)
				return
			}
			ctx, _ := ins[0].NewContext(p, simgpu.ContextOpts{})
			eng := llm.New(cfg)
			if err := eng.Load(p, []*simgpu.Context{ctx}, hostBW); err != nil {
				env.Fail(err)
				return
			}
			// Grow the service to 7g: every app on the GPU must stop.
			start := p.Now()
			eng.Unload()
			ctx.Destroy()
			ins2, err := dev.ConfigureMIG(p, []string{"7g.80gb"}) // device reset
			if err != nil {
				env.Fail(err)
				return
			}
			p.Sleep(workerInit)
			ctx2, _ := ins2[0].NewContext(p, simgpu.ContextOpts{})
			eng = llm.New(cfg)
			if err := eng.Load(p, []*simgpu.Context{ctx2}, hostBW); err != nil {
				env.Fail(err)
				return
			}
			downtime = p.Now() - start
		})
		if err := env.Run(); err != nil {
			return nil, err
		}
		out = append(out, ReconfigResult{
			Approach: "MIG re-layout (reset + restart)",
			Downtime: downtime,
			Note:     "adds the device reset; instance memory (and any cache in it) is lost",
		})
	}
	return out, nil
}
