package core

import (
	"testing"
	"time"

	"repro/internal/moldesign"
)

// runMatrix runs the Fig. 4/5 experiment for one mode across process
// counts (with a reduced completion count to keep tests quick; ratios
// are insensitive to it).
func runMatrix(t *testing.T, mode Mode, ns []int, completions int) map[int]*MultiplexResult {
	t.Helper()
	out := make(map[int]*MultiplexResult, len(ns))
	for _, n := range ns {
		r, err := RunMultiplex(MultiplexConfig{Mode: mode, Processes: n, Completions: completions})
		if err != nil {
			t.Fatalf("%s n=%d: %v", mode, n, err)
		}
		out[n] = r
	}
	return out
}

// TestFig4CompletionTimeShapes checks the headline claims of §5.2:
// spatial multiplexing cuts total completion time by ~60% at four
// processes (2.5× throughput); even time-sharing helps; MPS ≥ MIG at
// 3 and 4 processes, MPS ≈ MIG at 2.
func TestFig4CompletionTimeShapes(t *testing.T) {
	const completions = 40
	ts := runMatrix(t, ModeTimeshare, []int{1, 4}, completions)
	mps := runMatrix(t, ModeMPS, []int{2, 3, 4}, completions)
	mig := runMatrix(t, ModeMIG, []int{2, 3, 4}, completions)

	single := ts[1].Makespan
	// Headline: ≥55% lower completion time with 4-way MPS (paper: up
	// to 60%).
	reduction := 1 - mps[4].Makespan.Seconds()/single.Seconds()
	if reduction < 0.55 || reduction > 0.70 {
		t.Errorf("MPS-4 completion reduction = %.0f%% (paper: ~60%%)", reduction*100)
	}
	// Headline: ≈2.5× throughput (paper: 250%).
	gain := mps[4].Throughput / ts[1].Throughput
	if gain < 2.2 || gain > 3.0 {
		t.Errorf("MPS-4 throughput gain = %.2fx (paper: ~2.5x)", gain)
	}
	// Even time-sharing beats one process (the host gap gets filled).
	if ts[4].Makespan >= single {
		t.Errorf("timeshare-4 %v not better than single %v", ts[4].Makespan, single)
	}
	// But spatial sharing clearly beats time-sharing.
	if float64(mps[4].Makespan) > 0.8*float64(ts[4].Makespan) {
		t.Errorf("MPS-4 %v vs timeshare-4 %v: spatial advantage missing", mps[4].Makespan, ts[4].Makespan)
	}
	// MPS ≈ MIG at two processes (3g.40gb holds half the bandwidth).
	ratio2 := mig[2].Makespan.Seconds() / mps[2].Makespan.Seconds()
	if ratio2 < 0.95 || ratio2 > 1.10 {
		t.Errorf("MIG-2/MPS-2 = %.2f, want ≈1", ratio2)
	}
	// MPS beats MIG at three (1/3 of bandwidth vs hard 2/8 slice).
	if float64(mig[3].Makespan) < 1.15*float64(mps[3].Makespan) {
		t.Errorf("MIG-3 %v vs MPS-3 %v: quantization penalty missing", mig[3].Makespan, mps[3].Makespan)
	}
	// MPS beats MIG at four as well.
	if mig[4].Makespan <= mps[4].Makespan {
		t.Errorf("MIG-4 %v should trail MPS-4 %v", mig[4].Makespan, mps[4].Makespan)
	}
	// All multiplexed runs still beat the single process.
	for n, r := range mig {
		if r.Makespan >= single {
			t.Errorf("MIG-%d %v not better than single %v", n, r.Makespan, single)
		}
	}
}

// TestFig5LatencyShapes checks the per-inference latency claims:
// time-sharing latency grows ≈linearly with process count; MPS/MIG
// grow slowly and sit ≈44–60% below time-sharing at four processes.
func TestFig5LatencyShapes(t *testing.T) {
	const completions = 40
	ts := runMatrix(t, ModeTimeshare, []int{1, 2, 4}, completions)
	mps := runMatrix(t, ModeMPS, []int{4}, completions)
	mig := runMatrix(t, ModeMIG, []int{4}, completions)

	l1 := ts[1].MeanLatency().Seconds()
	// Linear-ish growth under time-sharing.
	if g := ts[2].MeanLatency().Seconds() / l1; g < 1.5 || g > 2.5 {
		t.Errorf("timeshare latency growth at 2 procs = %.2fx", g)
	}
	if g := ts[4].MeanLatency().Seconds() / l1; g < 3.0 || g > 4.5 {
		t.Errorf("timeshare latency growth at 4 procs = %.2fx", g)
	}
	// Spatial multiplexing keeps latency far below time-sharing.
	drop := 1 - mps[4].MeanLatency().Seconds()/ts[4].MeanLatency().Seconds()
	if drop < 0.40 || drop > 0.70 {
		t.Errorf("MPS-4 latency %.0f%% below timeshare (paper: 44%%)", drop*100)
	}
	if mig[4].MeanLatency() >= ts[4].MeanLatency() {
		t.Errorf("MIG-4 latency %v not below timeshare %v", mig[4].MeanLatency(), ts[4].MeanLatency())
	}
}

// TestFig2SweepShape checks the SM sweep: steep improvement up to
// ~20 SMs, flat beyond; 13B ≈ 2× 7B; CPU ≈ 40× slower than GPU.
func TestFig2SweepShape(t *testing.T) {
	res, err := Fig2Sweep([]int{5, 10, 19, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]map[int]time.Duration{}
	for _, p := range res.Points {
		if byModel[p.Model] == nil {
			byModel[p.Model] = map[int]time.Duration{}
		}
		byModel[p.Model][p.Percent] = p.Latency
	}
	for _, m := range []string{"llama2-7b", "llama2-13b"} {
		c := byModel[m]
		if c[5] < 2*c[100] {
			t.Errorf("%s: 5%% latency %v not ≥2× full %v", m, c[5], c[100])
		}
		if c[10] <= c[19] {
			t.Errorf("%s: no improvement 10%%→19%%", m)
		}
		flat := c[19].Seconds() / c[100].Seconds()
		if flat > 1.06 {
			t.Errorf("%s: not flat past knee: 19%%=%v 100%%=%v", m, c[19], c[100])
		}
	}
	// 13B ≈ 2× the 7B latency at full GPU.
	r := byModel["llama2-13b"][100].Seconds() / byModel["llama2-7b"][100].Seconds()
	if r < 1.8 || r > 2.2 {
		t.Errorf("13B/7B = %.2f", r)
	}
	// CPU baselines as quoted (§3.4): 180 s and 360 s, ≈40× the GPU.
	if res.CPUBaselines["llama2-7b"] != 180*time.Second {
		t.Errorf("7B CPU = %v", res.CPUBaselines["llama2-7b"])
	}
	if res.CPUBaselines["llama2-13b"] != 360*time.Second {
		t.Errorf("13B CPU = %v", res.CPUBaselines["llama2-13b"])
	}
	speedup := res.CPUBaselines["llama2-7b"].Seconds() / byModel["llama2-7b"][100].Seconds()
	if speedup < 35 || speedup > 45 {
		t.Errorf("CPU/GPU speedup = %.1f (paper: ~40x)", speedup)
	}
}

func TestColdStartBreakdown(t *testing.T) {
	rows, err := RunColdStart(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != r.WorkerInit+r.ContextInit+r.ModelLoad {
			t.Errorf("%s: components %v+%v+%v != total %v", r.Scenario, r.WorkerInit, r.ContextInit, r.ModelLoad, r.Total)
		}
	}
	// The paper's headline: loading LLaMa-2-13B takes up to 10 s.
	thirteen := rows[2]
	if thirteen.ModelLoad < 10*time.Second || thirteen.ModelLoad > 11*time.Second {
		t.Errorf("13B fp32 load = %v (paper: ~10 s)", thirteen.ModelLoad)
	}
	// fp16 loads are cheaper than fp32.
	if rows[0].ModelLoad >= rows[1].ModelLoad {
		t.Errorf("fp16 %v not cheaper than fp32 %v", rows[0].ModelLoad, rows[1].ModelLoad)
	}
}

func TestReconfigCosts(t *testing.T) {
	rows, err := RunReconfig(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mps, cached, mig := rows[0], rows[1], rows[2]
	// §6: MPS repartition with an fp32 LLM lands in the 5–20 s band.
	if mps.Downtime < 5*time.Second || mps.Downtime > 20*time.Second {
		t.Errorf("MPS repartition = %v", mps.Downtime)
	}
	// §7: the weight cache removes the reload.
	if cached.Downtime >= mps.Downtime/2 {
		t.Errorf("cache %v barely below restart %v", cached.Downtime, mps.Downtime)
	}
	// §6: MIG adds the reset (1–2 s) on top of the restart path.
	extra := mig.Downtime - mps.Downtime
	if extra < time.Second || extra > 3*time.Second {
		t.Errorf("MIG extra cost = %v (paper: 1–2 s)", extra)
	}
}

func TestTable1Quantified(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	// Memory isolation: only MIG.
	for name, r := range byName {
		want := name == string(ModeMIG)
		if r.MemoryIsolated != want {
			t.Errorf("%s memory isolated = %v", name, r.MemoryIsolated)
		}
	}
	// Spatial techniques utilize the GPU better than time-sharing.
	tsU := byName["timeshare"].Utilization
	if byName["mps"].Utilization <= tsU {
		t.Errorf("MPS utilization %.2f not above timeshare %.2f", byName["mps"].Utilization, tsU)
	}
	// Isolation: MIG's victim CoV is the lowest; time-sharing's the
	// highest among hardware-shared modes.
	if byName["mig"].VictimCoV > 0.05 {
		t.Errorf("MIG victim CoV = %.3f, want ~0", byName["mig"].VictimCoV)
	}
	if byName["timeshare"].VictimCoV < 2*byName["mig"].VictimCoV+0.05 {
		t.Errorf("timeshare CoV %.3f vs MIG %.3f: interference missing", byName["timeshare"].VictimCoV, byName["mig"].VictimCoV)
	}
	// Reconfiguration: timeshare/default have nothing to reconfigure;
	// MIG costs more than MPS; vGPU (VM reboot) costs the most.
	if byName["timeshare"].ReconfigDowntime != 0 || byName["mps-default"].ReconfigDowntime != 0 {
		t.Error("non-zero reconfig for unpartitioned modes")
	}
	if byName["mig"].ReconfigDowntime <= byName["mps"].ReconfigDowntime {
		t.Error("MIG reconfig should exceed MPS")
	}
	if byName["vgpu"].ReconfigDowntime <= byName["mig"].ReconfigDowntime {
		t.Error("vGPU reconfig should exceed MIG")
	}
	// Software column matches Table 1.
	if byName["mps"].Software != "nvidia-cuda-mps-control" || byName["mig"].Software != "nvidia-smi" {
		t.Error("software column mismatch")
	}
}

func TestRunMolDesignFig3(t *testing.T) {
	cfg := moldesign.DefaultConfig()
	cfg.InitialPool = 16
	cfg.CandidatePool = 1000
	cfg.BatchSize = 8
	cfg.Rounds = 2
	res, err := RunMolDesign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.Dataset != 16+2*8 {
		t.Fatalf("report = %+v", res.Report)
	}
	if res.GPUBusyFraction <= 0 || res.GPUBusyFraction > 0.5 {
		t.Errorf("GPU busy fraction = %.2f (Fig. 3 shows large idle time)", res.GPUBusyFraction)
	}
	if res.GPUIdleGaps < 2 {
		t.Errorf("idle gaps = %d", res.GPUIdleGaps)
	}
	if res.Trace.Len() == 0 {
		t.Error("empty trace")
	}
}

func TestMultiplexValidation(t *testing.T) {
	if _, err := RunMultiplex(MultiplexConfig{Mode: "bogus", Processes: 2, Completions: 4}); err == nil {
		t.Error("bogus mode accepted")
	}
	if _, err := MIGLayoutFor(5); err == nil {
		t.Error("MIG layout for 5 accepted")
	}
}

func TestVGPUMultiplexRuns(t *testing.T) {
	r, err := RunMultiplex(MultiplexConfig{Mode: ModeVGPU, Processes: 2, Completions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan <= 0 || r.Latencies.N() != 8 {
		t.Fatalf("result = %+v", r)
	}
}

// RunMultiplex is fully deterministic: identical configs yield
// identical results.
func TestMultiplexDeterminism(t *testing.T) {
	run := func() (time.Duration, time.Duration) {
		r, err := RunMultiplex(MultiplexConfig{Mode: ModeMPS, Processes: 3, Completions: 12})
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan, r.MeanLatency()
	}
	m1, l1 := run()
	m2, l2 := run()
	if m1 != m2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", m1, l1, m2, l2)
	}
}

// Five 7B services cannot fit one 80 GB A100: the experiment surfaces
// the OOM instead of silently shrinking.
func TestMultiplexFiveProcessesOOM(t *testing.T) {
	_, err := RunMultiplex(MultiplexConfig{Mode: ModeMPS, Processes: 5, Completions: 5})
	if err == nil {
		t.Fatal("five instances fit; memory model broken")
	}
}

// Preload (model loading) is excluded from the measured makespan.
func TestMultiplexPreloadExcluded(t *testing.T) {
	r, err := RunMultiplex(MultiplexConfig{Mode: ModeMPS, Processes: 2, Completions: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Preload includes worker init (2 s), context init (0.8 s) and the
	// fp16 load (~2.7 s).
	if r.PreloadTime < 5*time.Second {
		t.Fatalf("preload = %v", r.PreloadTime)
	}
	// The measured makespan covers only the 4 completions: 2 per
	// worker at ~4.5 s each ≈ 9 s.
	if r.Makespan > 12*time.Second {
		t.Fatalf("makespan contains cold start: %v", r.Makespan)
	}
}

// Utilization ordering across techniques at 4 processes (Fig. 4's
// companion claim).
func TestUtilizationOrdering(t *testing.T) {
	util := func(mode Mode) float64 {
		r, err := RunMultiplex(MultiplexConfig{Mode: mode, Processes: 4, Completions: 12})
		if err != nil {
			t.Fatal(err)
		}
		return r.Utilization
	}
	ts, mps, mig := util(ModeTimeshare), util(ModeMPS), util(ModeMIG)
	if !(mps > mig && mig > ts) {
		t.Fatalf("utilization ordering: ts=%.2f mig=%.2f mps=%.2f", ts, mig, mps)
	}
}

// The Fig.-3 pipelining remark: same budget, shorter makespan, higher
// GPU utilization.
func TestRunMolDesignPipelined(t *testing.T) {
	cfg := moldesign.DefaultConfig()
	cfg.InitialPool = 16
	cfg.CandidatePool = 1000
	cfg.BatchSize = 8
	cfg.Rounds = 2
	sync, err := RunMolDesign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := RunMolDesignPipelined(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if piped.Report.Dataset != sync.Report.Dataset {
		t.Fatalf("budgets differ: %d vs %d", piped.Report.Dataset, sync.Report.Dataset)
	}
	if piped.Makespan >= sync.Makespan {
		t.Errorf("pipelined %v not faster than sync %v", piped.Makespan, sync.Makespan)
	}
	if piped.GPUBusyFraction <= sync.GPUBusyFraction {
		t.Errorf("pipelined GPU busy %.3f not above sync %.3f", piped.GPUBusyFraction, sync.GPUBusyFraction)
	}
}

// Open-loop arrivals (the §5.2 multi-client chatbot scenario): at an
// offered load between time-sharing's capacity (~0.27 req/s) and
// MPS's (~0.59 req/s), spatial multiplexing is the difference between
// a stable service and an unbounded backlog.
func TestOpenLoopStabilityCrossover(t *testing.T) {
	ts, err := RunOpenLoop(OpenLoopConfig{Mode: ModeTimeshare, Processes: 4, ArrivalRate: 0.4, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	mps, err := RunOpenLoop(OpenLoopConfig{Mode: ModeMPS, Processes: 4, ArrivalRate: 0.4, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Stable {
		t.Errorf("timeshare stable at 0.4 req/s with capacity %.3f", ts.ServiceCapacity)
	}
	if !mps.Stable {
		t.Errorf("MPS unstable at 0.4 req/s with capacity %.3f", mps.ServiceCapacity)
	}
	// MPS's p99 stays near service latency; timeshare's blows up.
	if mps.Latencies.Percentile(99) > 20*time.Second {
		t.Errorf("MPS p99 = %v", mps.Latencies.Percentile(99))
	}
	if ts.Latencies.Percentile(99) < 60*time.Second {
		t.Errorf("timeshare p99 = %v (backlog missing)", ts.Latencies.Percentile(99))
	}
	// Determinism.
	again, err := RunOpenLoop(OpenLoopConfig{Mode: ModeMPS, Processes: 4, ArrivalRate: 0.4, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != mps.Makespan {
		t.Errorf("open loop nondeterministic: %v vs %v", again.Makespan, mps.Makespan)
	}
}

// Below every technique's capacity, all are stable.
func TestOpenLoopAllStableAtLowLoad(t *testing.T) {
	for _, mode := range []Mode{ModeTimeshare, ModeMPS, ModeMIG} {
		r, err := RunOpenLoop(OpenLoopConfig{Mode: mode, Processes: 4, ArrivalRate: 0.15, Requests: 30})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Stable {
			t.Errorf("%s unstable at 0.15 req/s", mode)
		}
	}
}
