package core

import (
	"time"

	"repro/internal/colmena"
	"repro/internal/devent"
	"repro/internal/metrics"
	"repro/internal/moldesign"
	"repro/internal/trace"
)

// Fig3Result carries the molecular-design campaign outcome plus the
// phase trace behind the paper's Fig. 3.
type Fig3Result struct {
	Report *moldesign.Report
	Trace  *trace.Log
	// GPUBusyFraction is the fraction of the campaign the GPU spent
	// on training or inference; the complement is the idle time the
	// paper's Fig. 3 highlights.
	GPUBusyFraction float64
	// GPUIdleGaps counts distinct idle intervals on the GPU ("white
	// lines" in Fig. 3).
	GPUIdleGaps int
	// DeviceBusy is the GPU's busy-SM step series for sparkline
	// rendering.
	DeviceBusy *metrics.StepSeries
	// DeviceSMs is the GPU's SM count (the sparkline's full scale).
	DeviceSMs int
	Makespan  time.Duration
}

// RunMolDesign executes the molecular-design campaign (§3.1) on the
// platform's FaaS stack: simulations on the 16-worker CPU executor,
// training and inference on one GPU worker.
func RunMolDesign(cfg moldesign.Config) (*Fig3Result, error) {
	return runMolDesign(cfg, false)
}

// RunMolDesignPipelined runs the asynchronous variant the paper
// suggests under Fig. 3 ("pipe-lining this application will yield
// higher accelerator utilization"): same simulation budget, streaming
// retrain/rescore overlapping the CPU simulations.
func RunMolDesignPipelined(cfg moldesign.Config) (*Fig3Result, error) {
	return runMolDesign(cfg, true)
}

func runMolDesign(cfg moldesign.Config, pipelined bool) (*Fig3Result, error) {
	pl, err := NewPlatform(Options{})
	if err != nil {
		return nil, err
	}
	log := &trace.Log{}
	res := &Fig3Result{Trace: log}
	runErr := pl.Run(func(p *devent.Proc) error {
		if err := pl.ConfigureGPUExecutor(p, []string{"0"}, nil); err != nil {
			return err
		}
		ts := colmena.NewTaskServer(pl.DFK, colmena.NewQueues(pl.Env))
		campaign := moldesign.New(cfg, ts, "cpu", "gpu", log)
		var rep *moldesign.Report
		if pipelined {
			rep, err = campaign.RunPipelined(p)
		} else {
			rep, err = campaign.Run(p)
		}
		if err != nil {
			return err
		}
		res.Report = rep
		res.Makespan = p.Now()
		gpuSpans := append(log.OfKind("training"), log.OfKind("inference")...)
		res.GPUBusyFraction = trace.BusyFraction(gpuSpans, 0, res.Makespan)
		res.GPUIdleGaps = len(trace.Gaps(gpuSpans, 0, res.Makespan))
		res.DeviceBusy = pl.Devices[0].BusySeries()
		res.DeviceSMs = pl.Devices[0].Spec().SMs
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
