package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/devent"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/simgpu"
)

// FleetConfig drives the fleet-scale placement scenario: a
// heterogeneous GPU inventory served by the fragmentation-aware packer
// under seeded open-loop churn — tenants of 50+ apps arrive as a
// Poisson process, live an exponential lifetime, and depart, while a
// sampler tracks fragmentation and a periodic rebalance compares the
// incremental state against a from-scratch solve. Everything runs on
// one virtual clock, so every reported quantity is deterministic in
// (config, seed).
type FleetConfig struct {
	// GPUs80 and GPUs40 size the inventory (A100-80GB and A100-40GB
	// parts, interleaved; defaults 64+64 = 128 GPUs).
	GPUs80, GPUs40 int
	// Apps is the number of distinct applications; each gets a fixed
	// right-sized demand drawn from the scenario's demand classes
	// (default 56).
	Apps int
	// Duration is the arrival horizon on the virtual clock (default
	// 10 min); tenants alive at the horizon drain naturally.
	Duration time.Duration
	// ArrivalRate is the tenant arrival rate in arrivals/second
	// (default 2.0 — with the default 3 min lifetime, ~360 concurrent
	// tenants at steady state).
	ArrivalRate float64
	// MeanLifetime is the mean of the exponential tenant lifetime
	// (default 3 min).
	MeanLifetime time.Duration
	// RebalanceEvery is the period of the drift check + rebalance
	// (default 2 min; 0 disables).
	RebalanceEvery time.Duration
	// SampleEvery is the fragmentation sampling period (default 5 s).
	SampleEvery time.Duration
	// Seed drives every random draw (default 1).
	Seed int64
	// TSDB, when set, attaches a virtual-time series store over the
	// scenario's registry (fleet gauges, counters) exactly as
	// Options.TSDB does for a platform.
	TSDB *tsdb.Config
	// OnCollector, when set, is called with the scenario's collector
	// before any span exists — streaming sinks attach here.
	OnCollector func(*obs.Collector)
	// OnDB, when set, is called with the attached store right after
	// assembly (nil TSDB → not called).
	OnDB func(*tsdb.DB)
}

// WithDefaults fills in unset fields with the scenario defaults.
func (c FleetConfig) WithDefaults() FleetConfig {
	if c.GPUs80 <= 0 && c.GPUs40 <= 0 {
		c.GPUs80, c.GPUs40 = 64, 64
	}
	if c.Apps <= 0 {
		c.Apps = 56
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Minute
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 2.0
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 3 * time.Minute
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 2 * time.Minute
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fleetClasses orders the demand classes for per-class reporting.
var fleetClasses = []string{"small", "medium", "large", "oversize"}

// fleetApp is one application: a fixed demand all its tenants share.
type fleetApp struct {
	name  string
	class string
	sms   int
	mem   int64
}

// drawApps fixes each app's right-sized demand from the seeded
// generator: mostly MIG-coverable tenants, with a tail of oversize
// demands only whole-GPU MPS can serve.
func drawApps(rng *rand.Rand, n int) []fleetApp {
	apps := make([]fleetApp, n)
	for i := range apps {
		a := fleetApp{name: fmt.Sprintf("app%02d", i)}
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			a.class = "small"
			a.sms = 1 + rng.Intn(28)
			a.mem = int64(1+rng.Intn(10)) * simgpu.GB
		case 4, 5, 6:
			a.class = "medium"
			a.sms = 20 + rng.Intn(36)
			a.mem = int64(5+rng.Intn(30)) * simgpu.GB
		case 7, 8:
			a.class = "large"
			a.sms = 50 + rng.Intn(48)
			a.mem = int64(10+rng.Intn(60)) * simgpu.GB
		default:
			a.class = "oversize"
			a.sms = 99 + rng.Intn(10)
			a.mem = int64(1+rng.Intn(40)) * simgpu.GB
		}
		apps[i] = a
	}
	return apps
}

// FleetClassStat is one demand class's admission outcome.
type FleetClassStat struct {
	Class    string
	Arrivals int
	Placed   int
}

// FleetFragPoint is one fragmentation sample on the virtual clock.
type FleetFragPoint struct {
	T       time.Duration
	Frag    float64
	Tenants int
	MIG     int
	MPS     int
	Empty   int
}

// FleetResult aggregates a RunFleet run. Every field except Obs/TSDB
// handles is virtual and deterministic in (config, seed).
type FleetResult struct {
	GPUs, Apps int
	// Admission outcomes over the arrival horizon.
	Arrivals, Placed, Rejected int
	// Attainment is the SLO-attainment proxy: the fraction of arrivals
	// granted a demand-meeting segment, Placed/Arrivals.
	Attainment float64
	Classes    []FleetClassStat
	// Churn and rebalance activity.
	Evicted           int
	Rebalances        int
	RebalancesApplied int
	Moved             int
	// MaxGap is the largest incremental-vs-scratch fragmentation gap
	// any drift check observed (0 when rebalancing is disabled).
	MaxGap float64
	// ScratchInfeasible counts drift checks whose greedy scratch replay
	// could not place every survivor (the incremental state stood).
	ScratchInfeasible int
	PeakTenants       int
	FinalTenants      int
	// FragSeries samples fleet fragmentation over the arrival horizon.
	FragSeries []FleetFragPoint
	// FinalFrag is the fleet fragmentation after the last tenant
	// drained (0 for a clean drain — any residue is stranded state).
	FinalFrag float64
	// Makespan is the virtual time at drain: the horizon plus the tail
	// of lifetimes still running at it.
	Makespan time.Duration
	// Events is the Env's dispatched-event count.
	Events int64

	Obs  *obs.Collector
	TSDB *tsdb.DB
}

// RunFleet runs the fleet-scale placement scenario.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	cfg = cfg.WithDefaults()
	env := devent.NewEnv()
	col := obs.New(env)
	col.SetScope("fleet")
	if cfg.OnCollector != nil {
		cfg.OnCollector(col)
	}
	specs := interleaveSpecs(cfg.GPUs80, cfg.GPUs40)
	cl, err := fleet.New(fleet.Config{Inventory: fleet.NewInventory(specs...), Obs: col})
	if err != nil {
		return nil, err
	}
	var db *tsdb.DB
	if cfg.TSDB != nil {
		db = tsdb.New(col.Metrics(), env, *cfg.TSDB)
		attachAlerts(db, FleetAlertRules())
		if cfg.OnDB != nil {
			cfg.OnDB(db)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	apps := drawApps(rng, cfg.Apps)
	res := &FleetResult{GPUs: len(specs), Apps: cfg.Apps, Obs: col, TSDB: db}
	classIdx := make(map[string]int, len(fleetClasses))
	for i, c := range fleetClasses {
		classIdx[c] = i
		res.Classes = append(res.Classes, FleetClassStat{Class: c})
	}

	// Sampler: fragmentation-over-time at SampleEvery, horizon-bounded.
	env.Spawn("fleet-sampler", func(p *devent.Proc) {
		for {
			p.Sleep(cfg.SampleEvery)
			if env.Now() > cfg.Duration {
				return
			}
			var nMIG, nMPS, nEmpty int
			for _, g := range cl.Fragmentation().PerGPU {
				switch g.Mode {
				case "mig":
					nMIG++
				case "mps":
					nMPS++
				default:
					nEmpty++
				}
			}
			res.FragSeries = append(res.FragSeries, FleetFragPoint{
				T: env.Now(), Frag: cl.Fragmentation().Fleet, Tenants: cl.Tenants(),
				MIG: nMIG, MPS: nMPS, Empty: nEmpty,
			})
		}
	})

	// Rebalancer: periodic drift check, adopting the scratch solve when
	// it is strictly better.
	if cfg.RebalanceEvery > 0 {
		env.Spawn("fleet-rebalancer", func(p *devent.Proc) {
			for {
				p.Sleep(cfg.RebalanceEvery)
				if env.Now() > cfg.Duration {
					return
				}
				rep := cl.Rebalance()
				res.Rebalances++
				if rep.ScratchInfeasible {
					res.ScratchInfeasible++
					continue
				}
				if rep.Gap > res.MaxGap {
					res.MaxGap = rep.Gap
				}
				if rep.Applied {
					res.RebalancesApplied++
					res.Moved += rep.Moved
				}
			}
		})
	}

	// Churn driver: Poisson arrivals over the horizon; each placed
	// tenant departs after an exponential lifetime (its own proc, so
	// departures outlive the arrival loop and drain naturally).
	env.Spawn("fleet-churn", func(p *devent.Proc) {
		seq := 0
		for {
			p.Sleep(time.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second)))
			if env.Now() > cfg.Duration {
				break
			}
			app := apps[rng.Intn(len(apps))]
			life := time.Duration(rng.ExpFloat64() * float64(cfg.MeanLifetime))
			name := fmt.Sprintf("%s/t%d", app.name, seq)
			seq++
			res.Arrivals++
			res.Classes[classIdx[app.class]].Arrivals++
			_, perr := cl.Place(fleet.Demand{Tenant: name, SMs: app.sms, MemBytes: app.mem})
			if perr != nil {
				res.Rejected++
				continue
			}
			res.Placed++
			res.Classes[classIdx[app.class]].Placed++
			if n := cl.Tenants(); n > res.PeakTenants {
				res.PeakTenants = n
			}
			env.Spawn(name, func(p *devent.Proc) {
				p.Sleep(life)
				if err := cl.Evict(name); err != nil {
					env.Fail(fmt.Errorf("fleet scenario: departing %q: %w", name, err))
					return
				}
				res.Evicted++
			})
		}
		// The scrape daemon holds a pending timer; stop it with the
		// arrival horizon (tail departures continue to drain).
		db.Stop()
	})

	db.Start(env)
	if err := env.Run(); err != nil {
		return nil, err
	}
	db.Scrape()
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("fleet scenario: post-drain invariants: %w", err)
	}
	res.FinalTenants = cl.Tenants()
	res.FinalFrag = cl.Fragmentation().Fleet
	if res.Arrivals > 0 {
		res.Attainment = float64(res.Placed) / float64(res.Arrivals)
	}
	res.Makespan = env.Now()
	res.Events = env.EventsDispatched()
	return res, nil
}

// interleaveSpecs alternates 80 GB and 40 GB parts so placement
// tie-breaks see a mixed prefix rather than all-80s-then-all-40s.
func interleaveSpecs(n80, n40 int) []simgpu.DeviceSpec {
	specs := make([]simgpu.DeviceSpec, 0, n80+n40)
	for i := 0; len(specs) < n80+n40; i++ {
		if i < n80 {
			specs = append(specs, simgpu.A100SXM480GB())
		}
		if i < n40 {
			specs = append(specs, simgpu.A100SXM440GB())
		}
	}
	return specs
}
