package core

import (
	"reflect"
	"testing"
	"time"
)

func smallFleetConfig() FleetConfig {
	return FleetConfig{
		GPUs80: 8, GPUs40: 8, Apps: 12,
		Duration:       2 * time.Minute,
		ArrivalRate:    1.5,
		MeanLifetime:   45 * time.Second,
		RebalanceEvery: 30 * time.Second,
		SampleEvery:    5 * time.Second,
		Seed:           7,
	}
}

// TestRunFleetSanity checks the scenario actually exercises the packer
// and drains clean: tenants arrive, most place, every tenant departs,
// and a drained fleet has zero fragmentation.
func TestRunFleetSanity(t *testing.T) {
	res, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUs != 16 {
		t.Fatalf("GPUs = %d", res.GPUs)
	}
	if res.Arrivals == 0 || res.Placed == 0 {
		t.Fatalf("no churn: %+v", res)
	}
	if res.Placed != res.Evicted {
		t.Fatalf("placed %d but evicted %d — tenants leaked", res.Placed, res.Evicted)
	}
	if res.FinalTenants != 0 || res.FinalFrag != 0 {
		t.Fatalf("drained fleet not empty: tenants=%d frag=%v", res.FinalTenants, res.FinalFrag)
	}
	if res.Attainment <= 0 || res.Attainment > 1 {
		t.Fatalf("attainment %v", res.Attainment)
	}
	if len(res.FragSeries) == 0 {
		t.Fatal("no fragmentation samples")
	}
	if res.PeakTenants == 0 {
		t.Fatal("peak tenants never moved")
	}
	var classArrivals int
	for _, c := range res.Classes {
		classArrivals += c.Arrivals
	}
	if classArrivals != res.Arrivals {
		t.Fatalf("class arrivals %d ≠ total %d", classArrivals, res.Arrivals)
	}
	if res.Makespan < 2*time.Minute {
		t.Fatalf("makespan %s shorter than the horizon", res.Makespan)
	}
}

// TestRunFleetDeterministic pins the scenario's virtual results:
// identical configs yield identical results, and a different seed
// yields a different churn trace.
func TestRunFleetDeterministic(t *testing.T) {
	strip := func(r *FleetResult) *FleetResult {
		r.Obs, r.TSDB = nil, nil
		return r
	}
	a, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(smallFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(a), strip(b)) {
		t.Fatal("identical configs produced different results")
	}
	cfg := smallFleetConfig()
	cfg.Seed = 8
	c, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(strip(a), strip(c)) {
		t.Fatal("different seeds produced identical churn")
	}
}
