package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/simgpu"
	"repro/internal/vision"
)

// MixedTenancyResult quantifies what co-locating a latency-sensitive
// CNN service with an LLM does under each sharing technique. The
// paper motivates this exact scenario: §3.3–3.4 show CNN inference
// cannot fill an A100, and §6 cites real-time object detection's
// <100 ms budget — which default time-sharing destroys, because every
// ResNet request queues behind ~180 ms LLaMa decode kernels.
type MixedTenancyResult struct {
	Mode Mode
	// ResNetSolo is the CNN's request latency with the GPU to itself.
	ResNetSolo time.Duration
	// ResNetMean/P99 are its latencies next to the LLM tenant.
	ResNetMean time.Duration
	ResNetP99  time.Duration
	// LLMMean is the LLM tenant's completion latency in the same run.
	LLMMean time.Duration
	// MeetsRealTime reports whether the CNN's p99 stays under the
	// 100 ms budget (§6).
	MeetsRealTime bool
}

// RunMixedTenancy co-locates one ResNet-50 service (batch 1, 300
// requests with small think time) with one LLaMa-2-7B service decoding
// continuously, under the given technique.
func RunMixedTenancy(mode Mode) (*MixedTenancyResult, error) {
	solo, err := resnetSolo()
	if err != nil {
		return nil, err
	}
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		return nil, err
	}
	hostBW := dev.Spec().HostLoadBW

	var resnetCtx, llamaCtx func(p *devent.Proc) (*simgpu.Context, error)
	switch mode {
	case ModeTimeshare:
		resnetCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "resnet"})
		}
		llamaCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "llama"})
		}
	case ModeMPSDefault, ModeMPS:
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			return nil, err
		}
		rPct, lPct := 0, 0
		if mode == ModeMPS {
			rPct, lPct = 20, 80 // right-sized split
		}
		resnetCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "resnet", SMPercent: rPct})
		}
		llamaCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "llama", SMPercent: lPct})
		}
	case ModeMIG:
		ready := env.NewEvent()
		var rIn, lIn *simgpu.Instance
		var setupErr error
		env.Spawn("mig-setup", func(p *devent.Proc) {
			defer ready.Fire(nil)
			if err := dev.EnableMIG(p); err != nil {
				setupErr = err
				return
			}
			ins, err := dev.ConfigureMIG(p, []string{"1g.10gb", "3g.40gb"})
			if err != nil {
				setupErr = err
				return
			}
			rIn, lIn = ins[0], ins[1]
		})
		resnetCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			p.Wait(ready)
			if setupErr != nil {
				return nil, setupErr
			}
			return rIn.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "resnet"})
		}
		llamaCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			p.Wait(ready)
			if setupErr != nil {
				return nil, setupErr
			}
			return lIn.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "llama"})
		}
	case ModeVGPU:
		if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
			return nil, err
		}
		resnetCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "resnet", Group: "vm-resnet"})
		}
		llamaCtx = func(p *devent.Proc) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Name: "llama", Group: "vm-llama"})
		}
	default:
		return nil, fmt.Errorf("core: unknown mode %q", mode)
	}

	res := &MixedTenancyResult{Mode: mode, ResNetSolo: solo}
	var rLat metrics.Durations
	var lLat metrics.Durations
	resnetDone := env.NewEvent()
	env.Spawn("resnet", func(p *devent.Proc) {
		defer resnetDone.Fire(nil)
		ctx, err := resnetCtx(p)
		if err != nil {
			env.Fail(err)
			return
		}
		e := vision.New(vision.Config{Model: models.ResNet50()})
		if err := e.Load(p, ctx, hostBW); err != nil {
			env.Fail(err)
			return
		}
		p.Sleep(5 * time.Second) // let the LLM settle
		for i := 0; i < 300; i++ {
			l, err := e.Infer(p)
			if err != nil {
				env.Fail(err)
				return
			}
			rLat.Add(l)
			p.Sleep(20 * time.Millisecond) // camera frame pacing
		}
	})
	llamaProc := env.Spawn("llama", func(p *devent.Proc) {
		ctx, err := llamaCtx(p)
		if err != nil {
			env.Fail(err)
			return
		}
		e := llm.New(llm.LLaMa27B())
		if err := e.Load(p, []*simgpu.Context{ctx}, hostBW); err != nil {
			env.Fail(err)
			return
		}
		for !resnetDone.Fired() {
			c, err := e.Complete(p, 20, 20)
			if err != nil {
				env.Fail(err)
				return
			}
			lLat.Add(c.Latency)
		}
	})
	llamaProc.SetDaemon(true)
	if err := env.Run(); err != nil {
		return nil, err
	}
	res.ResNetMean = rLat.Mean()
	res.ResNetP99 = rLat.Percentile(99)
	res.LLMMean = lLat.Mean()
	res.MeetsRealTime = res.ResNetP99 < 100*time.Millisecond
	return res, nil
}

// resnetSolo measures the CNN's request latency on an idle device.
func resnetSolo() (time.Duration, error) {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		return 0, err
	}
	var lat metrics.Durations
	env.Spawn("resnet", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := vision.New(vision.Config{Model: models.ResNet50()})
		if err := e.Load(p, ctx, dev.Spec().HostLoadBW); err != nil {
			env.Fail(err)
			return
		}
		for i := 0; i < 50; i++ {
			l, err := e.Infer(p)
			if err != nil {
				env.Fail(err)
				return
			}
			lat.Add(l)
		}
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	return lat.Mean(), nil
}
