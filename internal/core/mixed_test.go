package core

import (
	"testing"
	"time"
)

// Co-locating real-time CNN inference with an LLM: time-sharing
// queues every ResNet request behind ~180 ms decode kernels and blows
// the §6 real-time budget; spatial sharing (MPS percentages, MIG)
// keeps the CNN near its solo latency.
func TestMixedTenancyHeadOfLineBlocking(t *testing.T) {
	ts, err := RunMixedTenancy(ModeTimeshare)
	if err != nil {
		t.Fatal(err)
	}
	mps, err := RunMixedTenancy(ModeMPS)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := RunMixedTenancy(ModeMIG)
	if err != nil {
		t.Fatal(err)
	}

	// Solo: single-digit milliseconds.
	if ts.ResNetSolo > 15*time.Millisecond {
		t.Fatalf("solo = %v", ts.ResNetSolo)
	}
	// Time-sharing: p99 dominated by LLM kernel service times.
	if ts.ResNetP99 < 100*time.Millisecond {
		t.Errorf("timeshare p99 = %v, expected >100ms head-of-line blocking", ts.ResNetP99)
	}
	if ts.MeetsRealTime {
		t.Error("timeshare should miss the real-time budget")
	}
	// MPS with a right-sized 20% partition: within 3x of solo and
	// comfortably real-time.
	if !mps.MeetsRealTime {
		t.Errorf("MPS p99 = %v, should meet 100ms", mps.ResNetP99)
	}
	if mps.ResNetP99 > 3*ts.ResNetSolo+10*time.Millisecond {
		t.Errorf("MPS p99 %v too far above solo %v", mps.ResNetP99, ts.ResNetSolo)
	}
	// MIG: hardware isolation, also real-time.
	if !mig.MeetsRealTime {
		t.Errorf("MIG p99 = %v, should meet 100ms", mig.ResNetP99)
	}
	// The LLM keeps making progress in all spatial modes.
	if mps.LLMMean <= 0 || mig.LLMMean <= 0 {
		t.Error("LLM tenant starved")
	}
	// MPS keeps LLM latency within ~25% of its solo 4.53 s (80% cap
	// still exceeds the 20-SM knee; only bandwidth is shared).
	if mps.LLMMean > 5700*time.Millisecond {
		t.Errorf("LLM under MPS = %v", mps.LLMMean)
	}
}

func TestMixedTenancyUnknownMode(t *testing.T) {
	if _, err := RunMixedTenancy("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
