package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// Mode selects the GPU sharing technique (Table 1).
type Mode string

// The multiplexing techniques compared in the evaluation.
const (
	// ModeTimeshare is the GPU default: no multiplexing software.
	ModeTimeshare Mode = "timeshare"
	// ModeMPSDefault is CUDA MPS without percentages.
	ModeMPSDefault Mode = "mps-default"
	// ModeMPS is CUDA MPS with equal GPU-percentage splits (the
	// paper's Figs. 4–5 configuration).
	ModeMPS Mode = "mps"
	// ModeMIG uses MIG instances (3g/2g/1g per the paper).
	ModeMIG Mode = "mig"
	// ModeVGPU is vGPU-style VM time slicing.
	ModeVGPU Mode = "vgpu"
)

// MIGLayoutFor returns the paper's instance layout for n concurrent
// LLaMa processes on an 80 GB A100: 3/7 each at two, 2/7 at three,
// 1/7 at four (§5.2).
func MIGLayoutFor(n int) ([]string, error) {
	switch n {
	case 1:
		return []string{"7g.80gb"}, nil
	case 2:
		return []string{"3g.40gb", "3g.40gb"}, nil
	case 3:
		return []string{"2g.20gb", "2g.20gb", "2g.20gb"}, nil
	case 4:
		return []string{"1g.10gb", "1g.10gb", "1g.10gb", "1g.10gb"}, nil
	}
	return nil, fmt.Errorf("core: no MIG layout for %d processes", n)
}

// MultiplexConfig parameterizes the Fig. 4/5 experiment.
type MultiplexConfig struct {
	// Mode is the sharing technique.
	Mode Mode
	// Processes is the number of concurrent model instances (1–4).
	Processes int
	// Completions is the total work, divided dynamically across
	// processes (paper: 100).
	Completions int
	// PromptTokens and OutputTokens shape each completion (paper: a
	// 20-word sentence).
	PromptTokens, OutputTokens int
	// Model overrides the service config (zero value: LLaMa-2-7B
	// fp16, the footprint at which exactly four instances fit 80 GB).
	Model llm.Config
	// Observe enables deep instrumentation (kernel spans, scheduler
	// counters); the result then carries the collector for export.
	Observe bool
	// SLO, when non-empty, attaches the burn-rate monitor (see
	// Options.SLO for the spec format).
	SLO string
	// OnCollector is forwarded to Options.OnCollector: streaming
	// exporters hook the run's collector before any span exists.
	OnCollector func(*obs.Collector)
	// TSDB forwards to Options.TSDB: attach a virtual-time series
	// store scraping the run's registry (nil = off).
	TSDB *tsdb.Config
	// OnPlatform, when set, is called with the assembled platform
	// before the workload starts — the live observability plane uses
	// it to pick up the run's tsdb handle and collector.
	OnPlatform func(*Platform)
	// Chaos enables seeded fault injection for the run (nil falls
	// back to the process-wide SetChaos spec). Under chaos the run
	// tolerates terminally failed completions — counted in
	// MultiplexResult.Failed — instead of aborting.
	Chaos *fault.Spec
}

func (c MultiplexConfig) withDefaults() MultiplexConfig {
	if c.Processes <= 0 {
		c.Processes = 1
	}
	if c.Completions <= 0 {
		c.Completions = 100
	}
	if c.PromptTokens <= 0 {
		c.PromptTokens = 20
	}
	if c.OutputTokens <= 0 {
		c.OutputTokens = 20
	}
	if c.Model.Spec.Layers == 0 {
		c.Model = llm.LLaMa27B()
	}
	if c.Mode == ModeMIG && c.Processes == 4 {
		// 1g.10gb cannot hold fp16 7B weights; the paper nevertheless
		// runs 4 instances — only feasible with a quantized (≈int8)
		// deployment, which we model as a footprint change only (the
		// latency calibration is unchanged). See EXPERIMENTS.md.
		c.Model.WeightBytesOverride = 6 * simgpu.GB
		c.Model.WorkspaceBytes = 3 * simgpu.GB
	}
	return c
}

// MultiplexResult is one bar of Figs. 4 and 5.
type MultiplexResult struct {
	Mode        Mode
	Processes   int
	Completions int
	// PreloadTime covers model loading before measurement starts
	// (excluded from Makespan, as the paper pre-warms the models).
	PreloadTime time.Duration
	// Makespan is the total task completion time (Fig. 4).
	Makespan time.Duration
	// Latencies are per-completion latencies (Fig. 5 uses the mean).
	Latencies *metrics.Durations
	// Throughput is completions per second.
	Throughput float64
	// Utilization is the device's mean busy-SM fraction during the
	// measured window.
	Utilization float64
	// ContextSwitches counts scheduling switches on the device
	// (time-share penalties plus vGPU rotations) over the whole run.
	ContextSwitches int
	// Obs is the run's collector (spans and metrics for export).
	Obs *obs.Collector
	// Failed counts completions whose futures failed terminally
	// (always 0 without chaos: any failure aborts the run instead).
	Failed int
	// Faults is how many faults the injector fired (0 without chaos).
	Faults int
	// Checker carries the exactly-one-terminal-state invariant
	// observations (nil without chaos).
	Checker *fault.Checker
}

// MeanLatency returns the average per-inference latency (Fig. 5).
func (r *MultiplexResult) MeanLatency() time.Duration { return r.Latencies.Mean() }

// RunMultiplex executes the paper's multiplexed-vs-non-multiplexed
// experiment (§5.2): N concurrent LLaMa-2 service processes on one
// A100-80GB share 100 text completions under the chosen technique.
func RunMultiplex(cfg MultiplexConfig) (*MultiplexResult, error) {
	c := cfg.withDefaults()
	pl, err := NewPlatform(Options{
		DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()},
		Observe:     c.Observe,
		SLO:         c.SLO,
		OnCollector: c.OnCollector,
		TSDB:        c.TSDB,
		Chaos:       c.Chaos,
	})
	if err != nil {
		return nil, err
	}
	pl.Obs.SetScope(fmt.Sprintf("multiplex/%s/p%d", c.Mode, c.Processes))
	if c.OnPlatform != nil {
		c.OnPlatform(pl)
	}
	dev := pl.Devices[0]
	hostBW := dev.Spec().HostLoadBW
	model := c.Model

	res := &MultiplexResult{
		Mode:        c.Mode,
		Processes:   c.Processes,
		Completions: c.Completions,
		Latencies:   &metrics.Durations{},
	}

	getEngine := func(inv *faas.Invocation) (*llm.Engine, error) {
		// Resident (not just Loaded): a GPU context loss destroys the
		// warm engine's shards, and the replacement worker context
		// needs a fresh load.
		if e, ok := inv.State()["engine"].(*llm.Engine); ok && e.Resident() {
			return e, nil
		}
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		e := llm.New(model)
		if err := e.Load(inv.Proc(), []*simgpu.Context{ctx}, hostBW); err != nil {
			return nil, err
		}
		inv.State()["engine"] = e
		return e, nil
	}
	pl.Register(faas.App{Name: "llama-load", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		_, err := getEngine(inv)
		return nil, err
	}})
	pl.Register(faas.App{Name: "llama-complete", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		e, err := getEngine(inv)
		if err != nil {
			return nil, err
		}
		comp, err := e.Complete(inv.Proc(), c.PromptTokens, c.OutputTokens)
		if err != nil {
			return nil, err
		}
		return comp.Latency, nil
	}})

	runErr := pl.Run(func(p *devent.Proc) error {
		accels := make([]string, c.Processes)
		var pcts []int
		switch c.Mode {
		case ModeTimeshare:
			for i := range accels {
				accels[i] = "0"
			}
		case ModeMPSDefault, ModeMPS:
			if _, err := pl.StartMPS(p, 0); err != nil {
				return err
			}
			for i := range accels {
				accels[i] = "0"
			}
			if c.Mode == ModeMPS {
				shares, err := rightsize.EqualShares(dev.Spec(), c.Processes)
				if err != nil {
					return err
				}
				pcts = shares
			}
		case ModeMIG:
			layout, err := MIGLayoutFor(c.Processes)
			if err != nil {
				return err
			}
			uuids, err := pl.ConfigureMIG(p, 0, layout)
			if err != nil {
				return err
			}
			accels = uuids
		case ModeVGPU:
			if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
				return err
			}
			for i := range accels {
				accels[i] = "0"
			}
		default:
			return fmt.Errorf("core: unknown mode %q", c.Mode)
		}
		if err := pl.ConfigureGPUExecutor(p, accels, pcts); err != nil {
			return err
		}

		// Pre-warm: one load per worker. Under chaos a failed preload
		// is tolerated — that worker simply cold-loads on first use.
		t0 := p.Now()
		loads := make([]*devent.Event, c.Processes)
		for i := range loads {
			loads[i] = pl.DFK.Submit("llama-load").Event()
		}
		for _, ld := range loads {
			if _, err := p.Wait(ld); err != nil && pl.Injector == nil {
				return err
			}
		}
		res.PreloadTime = p.Now() - t0

		// Measured phase: the 100 completions. Under chaos a future
		// that fails terminally (retries and deadline exhausted) is
		// counted, not fatal.
		start := p.Now()
		futs := make([]*faas.Future, c.Completions)
		for i := range futs {
			futs[i] = pl.DFK.Submit("llama-complete")
		}
		for _, f := range futs {
			v, err := f.Result(p)
			if err != nil {
				if pl.Injector == nil {
					return err
				}
				res.Failed++
				continue
			}
			res.Latencies.Add(v.(time.Duration))
		}
		end := p.Now()
		res.Makespan = end - start
		res.Throughput = metrics.Throughput(c.Completions-res.Failed, res.Makespan)
		res.Utilization = dev.Utilization(start, end)
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	res.ContextSwitches = dev.ContextSwitches()
	res.Obs = pl.Obs
	if pl.Injector != nil {
		res.Faults = pl.Injector.Injected()
		res.Checker = pl.Checker
	}
	return res, nil
}
