package core

import (
	"math/rand"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// OpenLoopConfig drives the §5.2 serving scenario as an open system:
// chatbot requests from independent clients arrive as a Poisson
// process and queue for the N model instances, instead of the
// closed-loop "100 completions divided across processes" of Fig. 4.
// Open-loop arrivals expose *stability*: a technique whose service
// capacity is below the offered load builds an unbounded backlog.
type OpenLoopConfig struct {
	Mode      Mode
	Processes int
	// ArrivalRate is offered load in requests/second.
	ArrivalRate float64
	// Requests is the total number of arrivals.
	Requests int
	// Seed drives the exponential inter-arrival draws.
	Seed int64
}

// OpenLoopResult summarizes an open-loop run.
type OpenLoopResult struct {
	Mode      Mode
	Processes int
	// Latencies are end-to-end (queue + service) per request.
	Latencies *metrics.Durations
	// ServiceCapacity is requests/second actually sustained.
	ServiceCapacity float64
	// Stable reports whether the backlog stayed bounded: an unstable
	// queue (offered load above capacity) shows monotonically growing
	// waits, so the last quartile of arrivals waits far longer than
	// the first.
	Stable   bool
	Makespan time.Duration
}

// RunOpenLoop submits Poisson arrivals to the partitioned platform.
func RunOpenLoop(cfg OpenLoopConfig) (*OpenLoopResult, error) {
	if cfg.Processes <= 0 {
		cfg.Processes = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 60
	}
	if cfg.ArrivalRate <= 0 {
		cfg.ArrivalRate = 0.4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	pl, err := NewPlatform(Options{DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()}})
	if err != nil {
		return nil, err
	}
	dev := pl.Devices[0]
	hostBW := dev.Spec().HostLoadBW
	model := llm.LLaMa27B()
	if cfg.Mode == ModeMIG && cfg.Processes == 4 {
		model.WeightBytesOverride = 6 * simgpu.GB
		model.WorkspaceBytes = 3 * simgpu.GB
	}

	getEngine := func(inv *faas.Invocation) (*llm.Engine, error) {
		if e, ok := inv.State()["engine"].(*llm.Engine); ok && e.Loaded() {
			return e, nil
		}
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		e := llm.New(model)
		if err := e.Load(inv.Proc(), []*simgpu.Context{ctx}, hostBW); err != nil {
			return nil, err
		}
		inv.State()["engine"] = e
		return e, nil
	}
	pl.Register(faas.App{Name: "load", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		_, err := getEngine(inv)
		return nil, err
	}})
	pl.Register(faas.App{Name: "chat", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		e, err := getEngine(inv)
		if err != nil {
			return nil, err
		}
		_, err = e.Complete(inv.Proc(), 20, 20)
		return nil, err
	}})

	res := &OpenLoopResult{Mode: cfg.Mode, Processes: cfg.Processes, Latencies: &metrics.Durations{}}
	var ordered []time.Duration
	runErr := pl.Run(func(p *devent.Proc) error {
		accels := make([]string, cfg.Processes)
		var pcts []int
		switch cfg.Mode {
		case ModeTimeshare, ModeVGPU:
			if cfg.Mode == ModeVGPU {
				if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
					return err
				}
			}
			for i := range accels {
				accels[i] = "0"
			}
		case ModeMPSDefault, ModeMPS:
			if _, err := pl.StartMPS(p, 0); err != nil {
				return err
			}
			for i := range accels {
				accels[i] = "0"
			}
			if cfg.Mode == ModeMPS {
				pcts, err = rightsize.EqualShares(dev.Spec(), cfg.Processes)
				if err != nil {
					return err
				}
			}
		case ModeMIG:
			layout, err := MIGLayoutFor(cfg.Processes)
			if err != nil {
				return err
			}
			uuids, err := pl.ConfigureMIG(p, 0, layout)
			if err != nil {
				return err
			}
			accels = uuids
		}
		if err := pl.ConfigureGPUExecutor(p, accels, pcts); err != nil {
			return err
		}
		// Pre-warm all instances.
		loads := make([]*devent.Event, cfg.Processes)
		for i := range loads {
			loads[i] = pl.DFK.Submit("load").Event()
		}
		if _, err := p.Wait(devent.AllOf(pl.Env, loads...)); err != nil {
			return err
		}

		rng := rand.New(rand.NewSource(cfg.Seed))
		start := p.Now()
		futs := make([]*faas.Future, 0, cfg.Requests)
		for i := 0; i < cfg.Requests; i++ {
			gap := time.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second))
			p.Sleep(gap)
			futs = append(futs, pl.DFK.Submit("chat"))
		}
		for _, f := range futs {
			if _, err := f.Result(p); err != nil {
				return err
			}
			// End-to-end latency includes queueing.
			lat := f.Task().EndTime - f.Task().SubmitTime
			res.Latencies.Add(lat)
			ordered = append(ordered, lat)
		}
		res.Makespan = p.Now() - start
		res.ServiceCapacity = metrics.Throughput(cfg.Requests, res.Makespan)
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	res.Stable = stableLatencies(ordered)
	return res, nil
}

// Stability test parameters. A queue above capacity shows waits that
// grow with every arrival, so the mean latency of the last quartile of
// arrivals ends up a multiple of the first quartile's. The test is
// purely relative — both means are in seconds and only their ratio
// matters — with an absolute floor (also in seconds) below which
// growth is considered jitter, not divergence: doubling from 0.8s to
// 1.6s on a warm-up transient is not an unbounded backlog.
const (
	// stableGrowthLimit is the maximum last/first quartile mean ratio
	// still considered bounded (dimensionless).
	stableGrowthLimit = 2.0
	// stableFloorSeconds exempts runs whose last-quartile mean stays
	// under this many seconds regardless of ratio.
	stableFloorSeconds = 5.0
)

// stableLatencies compares the mean end-to-end latency of the first
// and last arrival quartiles: bounded backlogs keep the two within
// stableGrowthLimit of each other, diverging queues do not. Earlier
// revisions used `last <= 2*max(first,1)+10`, which mixed a unitless
// slack constant with seconds and declared clearly-diverging short
// runs stable whenever the absolute waits were still under ~12s.
func stableLatencies(ordered []time.Duration) bool {
	q := len(ordered) / 4
	if q == 0 {
		return true
	}
	mean := func(xs []time.Duration) float64 {
		var sum float64
		for _, x := range xs {
			sum += x.Seconds()
		}
		return sum / float64(len(xs))
	}
	first := mean(ordered[:q])
	last := mean(ordered[len(ordered)-q:])
	return last <= stableFloorSeconds || last <= stableGrowthLimit*first
}
