package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/repart"
	"repro/internal/simgpu"
	"repro/internal/weightcache"
)

// globalRepart is the process-wide repartitioning spec installed by
// SetRepart; PhaseShiftConfig.Repart overrides it per run.
var globalRepart *repart.Spec

// SetRepart installs (or, with nil, removes) a process-wide
// repartitioning spec. The CLIs' -repart flag routes here so the
// phase-shift scenario gains the online controller without signature
// changes; with the flag unset every run stays byte-identical to the
// static experiments.
func SetRepart(s *repart.Spec) { globalRepart = s }

// RepartSpec returns the process-wide repartitioning spec (nil when
// the controller is off).
func RepartSpec() *repart.Spec { return globalRepart }

// PhaseShiftConfig parameterizes the repartitioning scenario: two
// LLaMa tenants on one A100 whose load phases are shifted against each
// other — tenant A bursts first while B trickles, then the roles swap
// at PhaseAt. A static Table 1 partitioning must provision each tenant
// for its peak the whole run; the controller re-partitions at the
// shift instead.
type PhaseShiftConfig struct {
	// Mode is the static partitioning baseline (Table 1). Ignored when
	// Repart is set.
	Mode Mode
	// Repart, when non-nil, runs the online controller instead of a
	// static plan. Deliberately no fallback to the SetRepart global:
	// the comparison report runs static and controlled cells in one
	// process, and the static baselines must stay static.
	Repart *repart.Spec
	// HeavyCompletions is each tenant's burst size (default 24).
	HeavyCompletions int
	// LightCompletions is each tenant's trickle size after its burst
	// (default 6).
	LightCompletions int
	// LightEvery spaces trickle submissions (default 8s).
	LightEvery time.Duration
	// PhaseAt is when tenant B's burst begins (default 60s).
	PhaseAt time.Duration
	// Concurrency is the closed-loop window during a burst (default 4).
	Concurrency int
	// PromptTokens and OutputTokens shape each completion (default
	// 20/20, as in the multiplex experiment).
	PromptTokens, OutputTokens int
	// Observe enables deep instrumentation.
	Observe bool
	// SLO, when non-empty, attaches the burn-rate monitor (see
	// Options.SLO for the spec format).
	SLO string
	// TSDB forwards to Options.TSDB: attach a virtual-time series
	// store scraping the run's registry (nil = off).
	TSDB *tsdb.Config
	// OnPlatform, when set, is called with the assembled platform
	// before the workload starts — the live observability plane uses
	// it to pick up the run's tsdb handle and collector.
	OnPlatform func(*Platform)
}

func (c PhaseShiftConfig) withDefaults() PhaseShiftConfig {
	if c.Mode == "" {
		c.Mode = ModeMPS
	}
	if c.HeavyCompletions <= 0 {
		c.HeavyCompletions = 24
	}
	if c.LightCompletions <= 0 {
		c.LightCompletions = 6
	}
	if c.LightEvery <= 0 {
		c.LightEvery = 8 * time.Second
	}
	if c.PhaseAt <= 0 {
		c.PhaseAt = 60 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.PromptTokens <= 0 {
		c.PromptTokens = 20
	}
	if c.OutputTokens <= 0 {
		c.OutputTokens = 20
	}
	return c
}

// PhaseShiftResult is one row of the repartitioning comparison.
type PhaseShiftResult struct {
	Mode Mode
	// Repart reports whether the online controller drove the run.
	Repart bool
	// PreloadTime covers the pre-warm loads (excluded from Makespan).
	PreloadTime time.Duration
	// Makespan is the total task completion time for both tenants'
	// phase-shifted workloads — the scenario's figure of merit.
	Makespan time.Duration
	// Latencies are per-completion latencies across both tenants.
	Latencies *metrics.Durations
	// Transitions counts applied repartitionings (0 for static runs).
	Transitions int
	// CacheHits and CacheMisses are the weight cache's counters: every
	// post-transition worker restart should hit.
	CacheHits, CacheMisses int
	// Obs is the run's collector (spans and metrics for export).
	Obs *obs.Collector
}

// RunPhaseShift executes the phase-shifted two-tenant workload under a
// static Table 1 plan or, with cfg.Repart set, under the online
// repartitioning controller. Each tenant runs as its own executor (the
// paper's one-process-per-tenant deployment), sharing one weight cache
// so repartitioning restarts re-attach instead of reloading.
func RunPhaseShift(cfg PhaseShiftConfig) (*PhaseShiftResult, error) {
	c := cfg.withDefaults()
	pl, err := NewPlatform(Options{
		DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()},
		// Repartitioning restarts fail queued tasks with ErrShutdown;
		// retries with backoff ride tasks through the restart window.
		// The budget (~44 s of cumulative backoff) covers the slowest
		// transition — a MIG relayout draining both tenants before the
		// device reset.
		Retries:         12,
		RetryBackoff:    250 * time.Millisecond,
		RetryBackoffMax: 4 * time.Second,
		Observe:         c.Observe,
		SLO:             c.SLO,
		TSDB:            c.TSDB,
	})
	if err != nil {
		return nil, err
	}
	label := string(c.Mode)
	if c.Repart != nil {
		label = "repart"
	}
	pl.Obs.SetScope("phaseshift/" + label)
	if c.OnPlatform != nil {
		c.OnPlatform(pl)
	}
	dev := pl.Devices[0]
	hostBW := dev.Spec().HostLoadBW
	model := llm.LLaMa27B()
	cache := weightcache.New()

	res := &PhaseShiftResult{
		Mode:      c.Mode,
		Repart:    c.Repart != nil,
		Latencies: &metrics.Durations{},
	}

	// Per-tenant apps: each tenant's service attaches its model through
	// the shared cache, so a repartitioned worker skips the reload.
	registerTenant := func(name, exec, key string) {
		getEngine := func(inv *faas.Invocation) (*llm.Engine, error) {
			if e, ok := inv.State()["engine"].(*llm.Engine); ok && e.Resident() {
				return e, nil
			}
			ctx, err := inv.GPU()
			if err != nil {
				return nil, err
			}
			e, _, err := cache.AttachOrLoad(inv.Proc(), key, model, []*simgpu.Context{ctx}, hostBW)
			if err != nil {
				return nil, err
			}
			inv.State()["engine"] = e
			return e, nil
		}
		pl.Register(faas.App{Name: "load-" + name, Executor: exec, Fn: func(inv *faas.Invocation) (any, error) {
			_, err := getEngine(inv)
			return nil, err
		}})
		pl.Register(faas.App{Name: "svc-" + name, Executor: exec, Fn: func(inv *faas.Invocation) (any, error) {
			e, err := getEngine(inv)
			if err != nil {
				return nil, err
			}
			comp, err := e.Complete(inv.Proc(), c.PromptTokens, c.OutputTokens)
			if err != nil {
				return nil, err
			}
			return comp.Latency, nil
		}})
	}
	registerTenant("a", "ten-a", "model-a")
	registerTenant("b", "ten-b", "model-b")

	var ctl *repart.Controller
	runErr := pl.Run(func(p *devent.Proc) error {
		// Initial partitioning: the chosen static plan, or — under the
		// controller — an even MPS split (mode=mig starts on the bare
		// device; the first transition installs the MIG layout).
		accels := [2][]string{{"0"}, {"0"}}
		var pcts [2][]int
		mode := c.Mode
		if c.Repart != nil {
			mode = ModeMPS
			if c.Repart.Mode == repart.ModeMIG {
				mode = ModeTimeshare
			}
		}
		switch mode {
		case ModeTimeshare:
		case ModeMPSDefault, ModeMPS:
			if _, err := pl.StartMPS(p, 0); err != nil {
				return err
			}
			if mode == ModeMPS {
				pcts[0], pcts[1] = []int{50}, []int{50}
			}
		case ModeMIG:
			uuids, err := pl.ConfigureMIG(p, 0, []string{"3g.40gb", "3g.40gb"})
			if err != nil {
				return err
			}
			accels[0], accels[1] = []string{uuids[0]}, []string{uuids[1]}
		case ModeVGPU:
			if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: unknown mode %q", c.Mode)
		}
		execs := make([]*htex.HTEX, 2)
		for i, label := range []string{"ten-a", "ten-b"} {
			ex, err := htex.New(pl.Env, htex.Config{
				Label:                 label,
				AvailableAccelerators: accels[i],
				GPUPercentages:        pcts[i],
				WorkerInit:            pl.opts.WorkerInit,
				Provider:              provider.NewLocal(pl.Env, pl.Node),
			})
			if err != nil {
				return err
			}
			if err := pl.DFK.AddExecutor(ex); err != nil {
				return err
			}
			execs[i] = ex
		}
		if c.Repart != nil {
			var err error
			ctl, err = repart.New(repart.Config{
				Env:    pl.Env,
				Spec:   *c.Repart,
				Obs:    pl.Obs,
				Device: dev,
				Cache:  cache,
				Tenants: []repart.Tenant{
					{Name: "a", App: "svc-a", Exec: execs[0], Accelerator: "0",
						WeightBytes: model.WeightBytes(), WorkspaceBytes: model.WorkspaceBytes},
					{Name: "b", App: "svc-b", Exec: execs[1], Accelerator: "0",
						WeightBytes: model.WeightBytes(), WorkspaceBytes: model.WorkspaceBytes},
				},
			})
			if err != nil {
				return err
			}
			ctl.Start()
			defer ctl.Stop()
		}

		// Pre-warm one load per tenant (excluded from the makespan, as
		// in the multiplex experiment).
		t0 := p.Now()
		loadA := pl.DFK.Submit("load-a")
		loadB := pl.DFK.Submit("load-b")
		for _, f := range []*faas.Future{loadA, loadB} {
			if _, err := f.Result(p); err != nil {
				return err
			}
		}
		res.PreloadTime = p.Now() - t0

		// Workload drivers. Any terminal task failure is fatal: the
		// retry/backoff budget must absorb every repartitioning restart.
		burst := func(dp *devent.Proc, app string) error {
			var futs []*faas.Future
			next := 0
			for next < c.HeavyCompletions || len(futs) > 0 {
				for len(futs) < c.Concurrency && next < c.HeavyCompletions {
					futs = append(futs, pl.DFK.Submit(app))
					next++
				}
				f := futs[0]
				futs = futs[1:]
				v, err := f.Result(dp)
				if err != nil {
					return err
				}
				res.Latencies.Add(v.(time.Duration))
			}
			return nil
		}
		trickle := func(dp *devent.Proc, app string, n int) error {
			for i := 0; i < n; i++ {
				v, err := pl.DFK.Submit(app).Result(dp)
				if err != nil {
					return err
				}
				res.Latencies.Add(v.(time.Duration))
				if i < n-1 {
					dp.Sleep(c.LightEvery)
				}
			}
			return nil
		}
		trickleUntil := func(dp *devent.Proc, app string, until time.Duration) error {
			for dp.Now() < until {
				v, err := pl.DFK.Submit(app).Result(dp)
				if err != nil {
					return err
				}
				res.Latencies.Add(v.(time.Duration))
				if wait := until - dp.Now(); wait > 0 {
					if wait > c.LightEvery {
						wait = c.LightEvery
					}
					dp.Sleep(wait)
				}
			}
			return nil
		}

		start := p.Now()
		phaseAt := start + c.PhaseAt
		var errA, errB error
		doneA := pl.Env.NewNamedEvent("phase-a-done")
		doneB := pl.Env.NewNamedEvent("phase-b-done")
		pl.Env.Spawn("tenant-a", func(dp *devent.Proc) {
			// A bursts first, then trickles.
			if errA = burst(dp, "svc-a"); errA == nil {
				errA = trickle(dp, "svc-a", c.LightCompletions)
			}
			doneA.Fire(nil)
		})
		pl.Env.Spawn("tenant-b", func(dp *devent.Proc) {
			// B trickles until the phase shift, then bursts.
			if errB = trickleUntil(dp, "svc-b", phaseAt); errB == nil {
				errB = burst(dp, "svc-b")
			}
			doneB.Fire(nil)
		})
		if _, err := p.Wait(doneA); err != nil {
			return err
		}
		if _, err := p.Wait(doneB); err != nil {
			return err
		}
		if errA != nil {
			return fmt.Errorf("core: tenant a: %w", errA)
		}
		if errB != nil {
			return fmt.Errorf("core: tenant b: %w", errB)
		}
		res.Makespan = p.Now() - start
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	if ctl != nil {
		res.Transitions = ctl.Transitions()
	}
	res.CacheHits, res.CacheMisses = cache.Hits(), cache.Misses()
	res.Obs = pl.Obs
	return res, nil
}
