package core

import (
	"testing"

	"repro/internal/repart"
)

// TestPhaseShiftStatic smoke-checks the scenario under a static plan.
func TestPhaseShiftStatic(t *testing.T) {
	res, err := RunPhaseShift(PhaseShiftConfig{Mode: ModeMPS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Latencies.N() == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Transitions != 0 {
		t.Fatalf("static run transitioned %d times", res.Transitions)
	}
	t.Logf("static mps: makespan=%v mean=%v n=%d", res.Makespan, res.Latencies.Mean(), res.Latencies.N())
}

// TestPhaseShiftRepartMIG drives the controller down the MIG
// transition path: whole-device drains, ConfigureMIG relayouts, and
// weight re-load (MIG reconfiguration resets the device, so cached
// engines are evicted rather than re-attached).
func TestPhaseShiftRepartMIG(t *testing.T) {
	res, err := RunPhaseShift(PhaseShiftConfig{Repart: &repart.Spec{Mode: repart.ModeMIG}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Fatal("MIG controller never transitioned")
	}
	if res.Latencies.N() == 0 {
		t.Fatal("no completions recorded")
	}
	// Every relayout resets the device: each transition costs weight
	// reloads, so misses must reflect at least the initial loads.
	if res.CacheMisses < 2 {
		t.Fatalf("expected >=2 cache misses across MIG relayouts, got %d", res.CacheMisses)
	}
	t.Logf("repart mig: makespan=%v transitions=%d hits=%d misses=%d",
		res.Makespan, res.Transitions, res.CacheHits, res.CacheMisses)
}

// TestPhaseShiftRepartBeatsStatic is the tentpole acceptance check:
// under the phase-shifted workload the online controller must finish
// sooner than every static Table 1 plan.
func TestPhaseShiftRepartBeatsStatic(t *testing.T) {
	ctl, err := RunPhaseShift(PhaseShiftConfig{Repart: &repart.Spec{}})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Transitions == 0 {
		t.Fatal("controller never transitioned")
	}
	t.Logf("repart: makespan=%v transitions=%d hits=%d misses=%d",
		ctl.Makespan, ctl.Transitions, ctl.CacheHits, ctl.CacheMisses)
	for _, mode := range Table1Modes {
		res, err := RunPhaseShift(PhaseShiftConfig{Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		t.Logf("static %s: makespan=%v", mode, res.Makespan)
		if ctl.Makespan >= res.Makespan {
			t.Errorf("controller (%v) did not beat static %s (%v)", ctl.Makespan, mode, res.Makespan)
		}
	}
}
