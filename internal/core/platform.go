// Package core is the library's facade: it assembles the simulated
// testbed (devices, node, MPS/MIG control plane), the Parsl-like FaaS
// runtime with the paper's partitioning extensions, and the experiment
// drivers that regenerate every figure and table of the evaluation.
//
// A Platform corresponds to the paper's testbed (§5.1): a node with
// CPU workers and A100 GPUs, a DataFlowKernel, a CPU executor, and a
// reconfigurable GPU executor whose accelerator list and GPU
// percentages express the partitioning (Listings 1–3).
package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/gpuctl"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/tsdb"
	"repro/internal/simgpu"
	"repro/internal/trace"
)

// Options configures a Platform.
type Options struct {
	// DeviceSpecs lists the GPUs; default is the paper's two A100s
	// (80 GB variant, used by the multi-instance experiments).
	DeviceSpecs []simgpu.DeviceSpec
	// CPUWorkers sizes the "cpu" executor (default 16, as in
	// Listing 1; the testbed has 24 cores).
	CPUWorkers int
	// Retries is the DFK retry count (default 1, as in Listing 1).
	Retries int
	// RetryBackoff and RetryBackoffMax, when positive, space retry
	// attempts exponentially — required when tasks must ride through a
	// repartitioning restart window instead of burning every retry at
	// the same instant. Zero keeps the seed behavior (immediate
	// retries; chaos platforms still get their own defaults).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// WorkerInit is the function-initialization cold-start component
	// (default 2 s).
	WorkerInit time.Duration
	// Observe turns on deep instrumentation: devent scheduler counters
	// and per-kernel spans from the devices. Task and worker spans are
	// always collected (the monitor is built on them).
	Observe bool
	// TaskTimeout is the per-task deadline passed to the DFK (0 = no
	// deadlines, the seed behavior).
	TaskTimeout time.Duration
	// SLO, when non-empty, attaches a burn-rate monitor over the task
	// span stream: comma-separated "<app>:<latency>:<target>[:<window>]"
	// rules evaluated on the virtual clock (see analyze.ParseSLOSpec).
	// The monitor is read-only — it emits alert spans and counters but
	// never steers scheduling or repartitioning.
	SLO string
	// TSDB, when set, attaches a virtual-time time-series store over
	// the collector's registry: a scrape daemon samples every
	// instrument at the configured interval while the run executes,
	// Run takes a final scrape after the queue drains, and the handle
	// lands in Platform.TSDB for windowed queries and the live HTTP
	// plane. With SLO also set, the burn-rate monitor computes its
	// windows from tsdb event series (identical alert stream, plus a
	// queryable slo:burn signal). Nil keeps the seed behavior exactly.
	TSDB *tsdb.Config
	// NoHistory disables whole-run retrospection so memory stays
	// bounded by in-flight work instead of run length: the DFK drops
	// completed task records, no Gantt trace bridge is installed, and
	// the monitoring DB is not attached. The span stream is unaffected —
	// pair with a streaming sink (Obs.SetSink) for bounded-memory
	// million-task runs.
	NoHistory bool
	// OnCollector, when set, is called with the platform's collector
	// during assembly, before any span exists. Streaming exporters use
	// it to attach sinks, samplers, and incremental analyzers that must
	// see the stream from the first span.
	OnCollector func(*obs.Collector)
	// Chaos enables seeded fault injection for this platform; nil
	// falls back to the process-wide spec set via SetChaos (usually
	// also nil). A chaos platform gets recovery defaults: at least 4
	// retries, jittered retry backoff, worker auto-restart with
	// blacklisting, and the injector wired to every executor and
	// device.
	Chaos *fault.Spec
}

func (o Options) withDefaults() Options {
	if len(o.DeviceSpecs) == 0 {
		o.DeviceSpecs = []simgpu.DeviceSpec{simgpu.A100SXM480GB(), simgpu.A100SXM480GB()}
	}
	if o.CPUWorkers <= 0 {
		o.CPUWorkers = 16
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.WorkerInit == 0 {
		o.WorkerInit = 2 * time.Second
	}
	if o.Chaos == nil {
		o.Chaos = globalChaos
	}
	if o.Chaos != nil && o.Retries < 4 {
		o.Retries = 4 // transient faults need headroom to retry through
	}
	return o
}

// chaosHTEX applies the recovery defaults every chaos-run executor
// gets: crashed workers restart with exponential backoff and are
// blacklisted after repeated crashes.
func (o Options) chaosHTEX(cfg htex.Config) htex.Config {
	if o.Chaos == nil {
		return cfg
	}
	cfg.RestartBackoff = 500 * time.Millisecond
	cfg.RestartBackoffMax = 5 * time.Second
	cfg.BlacklistAfter = 5
	return cfg
}

// Platform is an assembled testbed.
type Platform struct {
	Env     *devent.Env
	Devices []*simgpu.Device
	// Inventory is the fleet-layer view of Devices: one entry per GPU,
	// IDs matching the device names, in the same order. Placement-aware
	// callers (the fleet packer, multi-GPU scenarios) target it instead
	// of assuming the paper's fixed 2-GPU pair.
	Inventory fleet.Inventory
	Node      *gpuctl.Node
	DFK       *faas.DFK
	CPU       *htex.HTEX
	Trace     *trace.Log
	// Monitor is the attached Parsl-style monitoring DB (Listing 1's
	// log_dir): per-app statistics, worker busy time, task history.
	Monitor *monitor.DB
	// Obs is the platform's collector: every span and metric from the
	// DFK, executors, and (with Options.Observe) devices and scheduler.
	Obs *obs.Collector
	// SLOMon is the attached SLO burn-rate monitor (nil unless
	// Options.SLO is set); Run closes it when the simulation drains.
	SLOMon *analyze.Monitor
	// TSDB is the attached time-series store (nil unless Options.TSDB
	// is set); Run starts its scrape daemon and stops it when the
	// workflow completes.
	TSDB *tsdb.DB
	// Injector drives fault injection (nil when chaos is off).
	Injector *fault.Injector
	// Checker watches every task for the exactly-one-terminal-state
	// invariant (nil when chaos is off).
	Checker *fault.Checker
	opts    Options
	gpu     *htex.HTEX
}

// NewPlatform builds the testbed with a started CPU executor; the GPU
// executor is added via ConfigureGPUExecutor once the partitioning is
// chosen.
func NewPlatform(opts Options) (*Platform, error) {
	o := opts.withDefaults()
	env := devent.NewEnv()
	devices := make([]*simgpu.Device, len(o.DeviceSpecs))
	for i, spec := range o.DeviceSpecs {
		d, err := simgpu.NewDevice(env, fmt.Sprintf("gpu%d", i), spec)
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}
	node := gpuctl.NewNode(env, devices...)
	collector := obs.New(env)
	if o.Observe {
		env.SetObserver(collector)
		for _, d := range devices {
			d.SetCollector(collector)
		}
	}
	if o.OnCollector != nil {
		o.OnCollector(collector)
	}
	cpu, err := htex.New(env, o.chaosHTEX(htex.Config{
		Label:      "cpu",
		MaxWorkers: o.CPUWorkers,
		Provider:   provider.NewLocal(env, node),
	}))
	if err != nil {
		return nil, err
	}
	fcfg := faas.Config{
		RunDir:        "sim",
		Retries:       o.Retries,
		Timeout:       o.TaskTimeout,
		Collector:     collector,
		DropCompleted: o.NoHistory,
	}
	if o.RetryBackoff > 0 {
		fcfg.RetryBackoff = o.RetryBackoff
		fcfg.RetryBackoffMax = o.RetryBackoffMax
	}
	if o.Chaos != nil {
		fcfg.RetryBackoff = 200 * time.Millisecond
		fcfg.RetryBackoffMax = 5 * time.Second
		fcfg.RetryJitter = 0.2
		fcfg.Seed = o.Chaos.Seed
	}
	dfk := faas.NewDFK(env, fcfg, cpu)
	pl := &Platform{
		Env:       env,
		Devices:   devices,
		Inventory: fleet.NewInventory(o.DeviceSpecs...),
		Node:      node,
		DFK:       dfk,
		CPU:       cpu,
		Trace:     &trace.Log{},
		Monitor:   monitor.New(),
		Obs:       collector,
		opts:      o,
	}
	if !o.NoHistory {
		// Worker-side run spans become the platform's Gantt trace (Fig. 3
		// view): one span per execution attempt on the worker's track.
		collector.OnSpanEnd(func(s obs.Span) {
			if s.Cat == "htex" && s.Name == "run" {
				pl.Trace.Add(trace.SpanFromObs(s))
			}
		})
		pl.Monitor.Attach(dfk)
	}
	if o.TSDB != nil {
		pl.TSDB = tsdb.New(collector.Metrics(), env, *o.TSDB)
	}
	if o.SLO != "" {
		rules, err := analyze.ParseSLOSpec(o.SLO)
		if err != nil {
			return nil, err
		}
		pl.SLOMon = analyze.NewMonitorTSDB(collector, env, rules, pl.TSDB)
	}
	if o.Chaos != nil {
		inj := fault.New(env, *o.Chaos, collector)
		inj.AttachPool(cpu)
		for _, d := range devices {
			inj.AttachDevice(d)
		}
		dfk.SetDispatchFault(func(*faas.Task) error { return inj.SubmitFault() })
		ck := fault.NewChecker()
		ck.Attach(dfk)
		pl.Injector = inj
		pl.Checker = ck
	}
	return pl, nil
}

// GPU returns the current GPU executor (nil before configuration).
func (pl *Platform) GPU() *htex.HTEX { return pl.gpu }

// ConfigureGPUExecutor creates (or replaces) the "gpu" executor with
// the given accelerator list and optional per-entry GPU percentages —
// the paper's extended configuration (§4.1). If an old GPU executor
// exists it is shut down first, waiting for its workers to release
// their contexts.
func (pl *Platform) ConfigureGPUExecutor(p *devent.Proc, accelerators []string, percentages []int) error {
	if pl.gpu != nil {
		pl.gpu.ShutdownAndWait(p)
	}
	gpu, err := htex.New(pl.Env, pl.opts.chaosHTEX(htex.Config{
		Label:                 "gpu",
		AvailableAccelerators: accelerators,
		GPUPercentages:        percentages,
		WorkerInit:            pl.opts.WorkerInit,
		Provider:              provider.NewLocal(pl.Env, pl.Node),
	}))
	if err != nil {
		return err
	}
	pl.gpu = gpu
	if pl.Injector != nil {
		pl.Injector.AttachPool(gpu)
	}
	return pl.DFK.AddExecutor(gpu)
}

// StartMPS launches the MPS daemon on device idx (spatial sharing).
func (pl *Platform) StartMPS(p *devent.Proc, idx int) (*gpuctl.MPSDaemon, error) {
	return pl.Node.StartMPS(p, idx)
}

// ConfigureMIG enables MIG mode on device idx (if needed) and installs
// the given profile layout, returning the instance UUIDs in placement
// order for use as accelerator references. An index outside the
// inventory is an error, not a panic: fleet-sized scenarios pick
// devices programmatically, so a bad index must surface as a value the
// caller can handle.
func (pl *Platform) ConfigureMIG(p *devent.Proc, idx int, profiles []string) ([]string, error) {
	if idx < 0 || idx >= len(pl.Devices) {
		return nil, fmt.Errorf("core: ConfigureMIG device %d out of range (inventory has %d GPUs)", idx, len(pl.Devices))
	}
	dev := pl.Devices[idx]
	if err := dev.EnableMIG(p); err != nil {
		return nil, err
	}
	ins, err := dev.ConfigureMIG(p, profiles)
	if err != nil {
		return nil, err
	}
	uuids := make([]string, len(ins))
	for i, in := range ins {
		uuids[i] = in.UUID()
	}
	return uuids, nil
}

// Register registers an app on the DFK.
func (pl *Platform) Register(app faas.App) { pl.DFK.Register(app) }

// Run starts the DFK (and, under chaos, the fault injector), spawns
// main as the workflow proc, and drives the simulation to completion.
// The injector stops when main returns, so the event queue drains and
// the run terminates even with an unbounded fault schedule.
func (pl *Platform) Run(main func(p *devent.Proc) error) error {
	if err := pl.DFK.Start(); err != nil {
		return err
	}
	if pl.Injector != nil {
		pl.Injector.Start()
	}
	// The scrape daemon holds a pending timer, so it must stop when the
	// workflow completes or the queue would never drain.
	pl.TSDB.Start(pl.Env)
	var mainErr error
	pl.Env.Spawn("main", func(p *devent.Proc) {
		mainErr = main(p)
		if pl.Injector != nil {
			pl.Injector.Stop()
		}
		pl.TSDB.Stop()
	})
	if err := pl.Env.Run(); err != nil {
		return err
	}
	// Flush SLO alert windows still burning when the simulation drains.
	pl.SLOMon.Close()
	// One final scrape at drain time captures the run's end state
	// (including any alert counters the flush just bumped).
	pl.TSDB.Scrape()
	return mainErr
}
