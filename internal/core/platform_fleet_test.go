package core

import (
	"strings"
	"testing"

	"repro/internal/simgpu"
)

// TestPlatformInventory pins the fleet view of the default testbed:
// the paper's 2-GPU pair becomes a 2-entry inventory whose IDs match
// the device names, so placement-aware callers and the legacy
// index-based paths name the same hardware.
func TestPlatformInventory(t *testing.T) {
	pl, err := NewPlatform(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Inventory) != len(pl.Devices) {
		t.Fatalf("inventory has %d entries for %d devices", len(pl.Inventory), len(pl.Devices))
	}
	if err := pl.Inventory.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, g := range pl.Inventory {
		if g.ID != pl.Devices[i].Name() {
			t.Fatalf("inventory[%d] = %q, device is %q", i, g.ID, pl.Devices[i].Name())
		}
		if g.Spec != pl.Devices[i].Spec() {
			t.Fatalf("inventory[%d] spec diverges from device", i)
		}
	}
}

// TestConfigureMIGOutOfRange pins the fixed single-device assumption:
// a device index outside the inventory must surface as an error, not a
// panic (fleet-sized scenarios pick indices programmatically).
func TestConfigureMIGOutOfRange(t *testing.T) {
	pl, err := NewPlatform(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{-1, 2, 99} {
		_, err := pl.ConfigureMIG(nil, idx, []string{"1g.10gb"})
		if err == nil {
			t.Fatalf("index %d: want error, got none", idx)
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("index %d: want out-of-range error, got %v", idx, err)
		}
	}
	// The pair case still works exactly as before.
	uuids, err := pl.ConfigureMIG(nil, 1, []string{"3g.40gb", "3g.40gb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(uuids) != 2 {
		t.Fatalf("got %d instances, want 2", len(uuids))
	}
}

// TestPlatformInventoryHeterogeneous checks a mixed fleet flows
// through Options into the inventory unchanged.
func TestPlatformInventoryHeterogeneous(t *testing.T) {
	specs := []simgpu.DeviceSpec{simgpu.A100SXM480GB(), simgpu.A100SXM440GB(), simgpu.A100SXM440GB()}
	pl, err := NewPlatform(Options{DeviceSpecs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Inventory) != 3 {
		t.Fatalf("inventory has %d entries", len(pl.Inventory))
	}
	for i, g := range pl.Inventory {
		if g.Spec != specs[i] {
			t.Fatalf("inventory[%d] spec diverges", i)
		}
	}
}
