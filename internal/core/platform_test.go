package core

import (
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/simgpu"
)

func TestPlatformDefaults(t *testing.T) {
	pl, err := NewPlatform(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Devices) != 2 {
		t.Fatalf("devices = %d", len(pl.Devices))
	}
	if pl.Devices[0].Spec().Name != "A100-SXM4-80GB" {
		t.Fatalf("spec = %s", pl.Devices[0].Spec().Name)
	}
	if pl.Monitor == nil || pl.Trace == nil {
		t.Fatal("monitor/trace not wired")
	}
}

func TestPlatformMonitorRecordsTasks(t *testing.T) {
	pl, err := NewPlatform(Options{DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()}})
	if err != nil {
		t.Fatal(err)
	}
	pl.Register(faas.App{Name: "hello", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return "hi", nil
	}})
	err = pl.Run(func(p *devent.Proc) error {
		_, err := pl.DFK.Submit("hello").Result(p)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Monitor.Len() != 1 {
		t.Fatalf("monitor records = %d", pl.Monitor.Len())
	}
	apps := pl.Monitor.Apps()
	if len(apps) != 1 || apps[0].App != "hello" || apps[0].RunTime.Mean() != time.Second {
		t.Fatalf("apps = %+v", apps)
	}
	// Trace captured the same completion.
	if pl.Trace.Len() != 1 {
		t.Fatalf("trace spans = %d", pl.Trace.Len())
	}
}

func TestConfigureGPUExecutorReplaces(t *testing.T) {
	pl, err := NewPlatform(Options{
		DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()},
		WorkerInit:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pcts []int
	pl.Register(faas.App{Name: "probe", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		pcts = append(pcts, ctx.SMPercent())
		return nil, nil
	}})
	err = pl.Run(func(p *devent.Proc) error {
		if _, err := pl.StartMPS(p, 0); err != nil {
			return err
		}
		if err := pl.ConfigureGPUExecutor(p, []string{"0"}, []int{60}); err != nil {
			return err
		}
		if _, err := pl.DFK.Submit("probe").Result(p); err != nil {
			return err
		}
		// Reconfigure: the old executor drains, the new binding wins.
		if err := pl.ConfigureGPUExecutor(p, []string{"0"}, []int{30}); err != nil {
			return err
		}
		if _, err := pl.DFK.Submit("probe").Result(p); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pcts) != 2 || pcts[0] != 60 || pcts[1] != 30 {
		t.Fatalf("pcts = %v", pcts)
	}
	if pl.GPU() == nil {
		t.Fatal("GPU() accessor nil after configure")
	}
}

func TestPlatformConfigureMIG(t *testing.T) {
	pl, err := NewPlatform(Options{DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()}})
	if err != nil {
		t.Fatal(err)
	}
	err = pl.Run(func(p *devent.Proc) error {
		uuids, err := pl.ConfigureMIG(p, 0, []string{"3g.40gb", "3g.40gb"})
		if err != nil {
			return err
		}
		if len(uuids) != 2 {
			t.Errorf("uuids = %v", uuids)
		}
		if !pl.Devices[0].MIGEnabled() {
			t.Error("MIG not enabled")
		}
		// Re-layout works through the same call.
		uuids, err = pl.ConfigureMIG(p, 0, []string{"7g.80gb"})
		if err != nil {
			return err
		}
		if len(uuids) != 1 {
			t.Errorf("relayout uuids = %v", uuids)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlatformRunPropagatesMainError(t *testing.T) {
	pl, err := NewPlatform(Options{DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()}})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := simgpu.ErrBusy
	if got := pl.Run(func(p *devent.Proc) error { return sentinel }); got != sentinel {
		t.Fatalf("got = %v", got)
	}
}
