package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/simgpu"
)

// ScaleConfig drives the million-task throughput scenario: an
// open-loop stream of CPU microtasks sharded across independent
// platform instances. Each shard is one deterministic simulation
// (its own Env, DFK, and CPU executor); shards share nothing, so the
// harness runs them concurrently while every virtual quantity —
// makespans, latencies, span and event counts — is independent of the
// worker count. The scenario exists to stress the span-collection
// path at 10^6 tasks / 10^7 events: in snapshot mode the collector
// retains every span, in streaming mode (per-shard Sinks) the
// retained window stays bounded.
type ScaleConfig struct {
	// Tasks is the total task count across all shards (default 1e6).
	Tasks int
	// Shards is the number of independent platform instances the tasks
	// are partitioned over (default 8). The partition is contiguous and
	// depends only on (Tasks, Shards), never on scheduling.
	Shards int
	// Workers sizes each shard's CPU executor (default 16).
	Workers int
	// Window bounds in-flight submissions per shard: the submitter
	// awaits the oldest outstanding future once Window tasks are in
	// flight (default 64). This keeps open-loop overload from growing
	// the task backlog without bound.
	Window int
	// ArrivalRate is the per-shard offered load in tasks/second
	// (default 8000 — half the capacity of 16 workers at 2 ms mean
	// service).
	ArrivalRate float64
	// MeanService is the mean of the exponential service-time draw
	// (default 2 ms).
	MeanService time.Duration
	// Seed drives each shard's arrival/service draws (shard i uses
	// Seed+i; default 1).
	Seed int64
	// SampleMod, when > 1, enables deterministic span sampling on each
	// shard's collector: roughly 1/SampleMod of task trees reach the
	// sink. Only meaningful with Sinks.
	SampleMod int
	// Sinks, when non-nil, must hold one SpanSink per shard; each
	// shard's collector streams its spans to its sink, so collection
	// memory is bounded by the retained window instead of the span
	// count. Nil keeps snapshot collection.
	Sinks []obs.SpanSink
	// Telemetry, when non-nil, attaches the live observability plane:
	// per-shard tsdb stores and wall-side progress callbacks. Nil
	// keeps the run byte-identical to the seed.
	Telemetry *ScaleTelemetry
}

// ScaleProgress receives completion callbacks from a running scale
// scenario, on the harness workers driving the shards —
// implementations must be safe for concurrent use and must not touch
// any shard's virtual state.
type ScaleProgress interface {
	ShardStarted(shard int)
	TasksDone(n int)
	ShardFinished(shard int)
}

// ScaleTelemetry wires a scale run into the live observability plane.
type ScaleTelemetry struct {
	// TSDB, when non-nil, gives every shard platform its own
	// virtual-time series store (see Options.TSDB).
	TSDB *tsdb.Config
	// OnShardDB is called with each shard's store right after its
	// platform assembles, before any task runs — attach it to the
	// HTTP server here. Called from the shard's harness worker.
	OnShardDB func(shard int, db *tsdb.DB)
	// Progress, when non-nil, receives shard lifecycle and batched
	// task-completion callbacks.
	Progress ScaleProgress
}

// WithDefaults returns the config with every unset field filled in —
// the exact parameters RunMillionTask will use.
func (c ScaleConfig) WithDefaults() ScaleConfig {
	if c.Tasks <= 0 {
		c.Tasks = 1_000_000
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 8000
	}
	if c.MeanService <= 0 {
		c.MeanService = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ShardScaleResult is one shard's contribution, in shard order.
type ShardScaleResult struct {
	Shard int
	Tasks int
	// Events is the shard Env's dispatched-event count.
	Events int64
	// Spans is the total span count the collector assigned IDs to.
	Spans int
	// MaxRetained is the collector's retained-window high-water mark —
	// the bounded-memory claim is MaxRetained << Spans in streaming
	// mode.
	MaxRetained int
	// Makespan is the shard's virtual time at drain.
	Makespan time.Duration
}

// ScaleResult aggregates a RunMillionTask run. All fields are virtual
// (deterministic at any parallelism); wall-clock throughput is the
// caller's business (the report layer times the call).
type ScaleResult struct {
	Tasks  int
	Shards []ShardScaleResult
	// Events is the total dispatched-event count across shards.
	Events int64
	// Spans is the total span count across shards.
	Spans int64
	// MaxRetained is the largest per-shard retained-window high-water.
	MaxRetained int
	// Makespan is the longest shard makespan (shards run concurrently
	// in the fiction of the scenario, so the slowest shard bounds it).
	Makespan time.Duration
	// Latencies holds every task's end-to-end latency across shards.
	Latencies *metrics.Durations
}

// RunMillionTask runs the sharded open-loop microtask scenario:
// Poisson arrivals, exponential service times, a bounded in-flight
// window, one NoHistory platform per shard. Shards execute through
// harness.ShardMap, so wall-clock time scales with cores while every
// returned field is byte-for-byte reproducible.
func RunMillionTask(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.WithDefaults()
	if cfg.Sinks != nil && len(cfg.Sinks) != cfg.Shards {
		return nil, fmt.Errorf("core: %d sinks for %d shards", len(cfg.Sinks), cfg.Shards)
	}
	shardRes, err := harness.ShardMap(cfg.Tasks, cfg.Shards,
		func(shard int, r harness.Range) (shardScaleOut, error) {
			var sink obs.SpanSink
			if cfg.Sinks != nil {
				sink = cfg.Sinks[shard]
			}
			return runScaleShard(cfg, shard, r.Len(), sink)
		})
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{Tasks: cfg.Tasks, Latencies: &metrics.Durations{}}
	for i := range shardRes {
		sr := shardRes[i].ShardScaleResult
		res.Shards = append(res.Shards, sr)
		res.Events += sr.Events
		res.Spans += int64(sr.Spans)
		if sr.MaxRetained > res.MaxRetained {
			res.MaxRetained = sr.MaxRetained
		}
		if sr.Makespan > res.Makespan {
			res.Makespan = sr.Makespan
		}
		for _, lat := range shardRes[i].lats {
			res.Latencies.Add(lat)
		}
	}
	return res, nil
}

// shardScaleOut bundles a shard's summary with its latency samples,
// which only the merge step needs.
type shardScaleOut struct {
	ShardScaleResult
	lats []time.Duration
}

// runScaleShard drives one shard: a fresh NoHistory platform with a
// CPU-only executor, optionally streaming its spans to sink.
func runScaleShard(cfg ScaleConfig, shard, tasks int, sink obs.SpanSink) (shardScaleOut, error) {
	sr := shardScaleOut{ShardScaleResult: ShardScaleResult{Shard: shard, Tasks: tasks}}
	var tel ScaleTelemetry
	if cfg.Telemetry != nil {
		tel = *cfg.Telemetry
	}
	pl, err := NewPlatform(Options{
		// One small device keeps per-shard setup cheap; the scenario
		// never touches it (pure CPU microtasks).
		DeviceSpecs: []simgpu.DeviceSpec{simgpu.A100SXM480GB()},
		CPUWorkers:  cfg.Workers,
		NoHistory:   true,
		TSDB:        tel.TSDB,
	})
	if err != nil {
		return sr, err
	}
	attachAlerts(pl.TSDB, ScaleAlertRules())
	if tel.OnShardDB != nil && pl.TSDB != nil {
		tel.OnShardDB(shard, pl.TSDB)
	}
	if tel.Progress != nil {
		tel.Progress.ShardStarted(shard)
		defer tel.Progress.ShardFinished(shard)
	}
	if sink != nil {
		pl.Obs.SetSink(sink)
		if cfg.SampleMod > 1 {
			pl.Obs.SetSampleMod(cfg.SampleMod)
		}
	}
	pl.Obs.SetScope(fmt.Sprintf("scale/shard%d", shard))
	pl.Register(faas.App{Name: "micro", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		d, _ := inv.Arg(0).(time.Duration)
		inv.Compute(d)
		return nil, nil
	}})
	runErr := pl.Run(func(p *devent.Proc) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(shard)))
		window := make([]*faas.Future, 0, cfg.Window)
		sr.lats = make([]time.Duration, 0, tasks)
		// Progress batches completions so the wall-side mutex is taken
		// once per batch, not once per task.
		const progressBatch = 1024
		unreported := 0
		note := func() {
			unreported++
			if unreported >= progressBatch && tel.Progress != nil {
				tel.Progress.TasksDone(unreported)
				unreported = 0
			}
		}
		await := func(f *faas.Future) error {
			if _, err := f.Result(p); err != nil {
				return err
			}
			t := f.Task()
			sr.lats = append(sr.lats, t.EndTime-t.SubmitTime)
			note()
			return nil
		}
		for i := 0; i < tasks; i++ {
			gap := time.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second))
			p.Sleep(gap)
			svc := time.Duration(rng.ExpFloat64() * float64(cfg.MeanService))
			if len(window) == cfg.Window {
				if err := await(window[0]); err != nil {
					return err
				}
				window = append(window[:0], window[1:]...)
			}
			window = append(window, pl.DFK.Submit("micro", svc))
		}
		for _, f := range window {
			if err := await(f); err != nil {
				return err
			}
		}
		if unreported > 0 && tel.Progress != nil {
			tel.Progress.TasksDone(unreported)
		}
		return nil
	})
	if runErr != nil {
		return sr, runErr
	}
	if sink != nil {
		// Flush the tail of the stream — parked worker daemons and any
		// still-open spans, clamped — so a spilled trace is complete.
		pl.Obs.Close()
	}
	sr.Events = pl.Env.EventsDispatched()
	sr.Spans = pl.Obs.Len()
	sr.MaxRetained = pl.Obs.MaxRetained()
	sr.Makespan = pl.Env.Now()
	return sr, nil
}
