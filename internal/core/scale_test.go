package core

import (
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/obs"
)

// countSink counts streamed spans and discards them.
type countSink struct{ n int }

func (cs *countSink) EmitSpan(*obs.Span) { cs.n++ }

func scaleTestConfig() ScaleConfig {
	return ScaleConfig{Tasks: 4000, Shards: 4, Workers: 8, Window: 32, Seed: 7}
}

// TestRunMillionTaskDeterministic locks the sharding contract: every
// virtual field of the result is identical at any parallelism level.
func TestRunMillionTaskDeterministic(t *testing.T) {
	run := func() *ScaleResult {
		res, err := RunMillionTask(scaleTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	defer harness.SetParallelism(harness.SetParallelism(1))
	seq := run()
	harness.SetParallelism(4)
	par := run()
	if !reflect.DeepEqual(seq.Shards, par.Shards) {
		t.Fatalf("shard results differ across parallelism:\nseq: %+v\npar: %+v", seq.Shards, par.Shards)
	}
	if seq.Events != par.Events || seq.Spans != par.Spans || seq.Makespan != par.Makespan {
		t.Fatalf("aggregates differ: seq=%+v par=%+v", seq, par)
	}
	if got := seq.Latencies.N(); got != seq.Tasks {
		t.Fatalf("want %d latency samples, got %d", seq.Tasks, got)
	}
	if p50s, p50p := seq.Latencies.Percentile(50), par.Latencies.Percentile(50); p50s != p50p {
		t.Fatalf("p50 differs across parallelism: %v vs %v", p50s, p50p)
	}
	if seq.Events == 0 || seq.Spans == 0 || seq.Makespan == 0 {
		t.Fatalf("implausible result: %+v", seq)
	}
}

// TestRunMillionTaskStreamingBounded checks the tentpole memory claim:
// with per-shard sinks the collector's retained-window high-water mark
// is a small fraction of the span count, and the virtual simulation is
// unchanged by streaming.
func TestRunMillionTaskStreamingBounded(t *testing.T) {
	snap, err := RunMillionTask(scaleTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaleTestConfig()
	sinks := make([]*countSink, cfg.Shards)
	cfg.Sinks = make([]obs.SpanSink, cfg.Shards)
	for i := range sinks {
		sinks[i] = &countSink{}
		cfg.Sinks[i] = sinks[i]
	}
	str, err := RunMillionTask(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming must not perturb the simulation itself.
	if snap.Events != str.Events || snap.Spans != str.Spans || snap.Makespan != str.Makespan {
		t.Fatalf("streaming changed the run: snap=%+v str=%+v", snap, str)
	}
	// Snapshot retention is linear in span count; streaming retention
	// is bounded by the in-flight window.
	for i, sr := range str.Shards {
		if sr.MaxRetained*4 > sr.Spans {
			t.Fatalf("shard %d: streaming retained %d of %d spans — not bounded", i, sr.MaxRetained, sr.Spans)
		}
	}
	if snap.MaxRetained <= str.MaxRetained {
		t.Fatalf("snapshot high-water %d not above streaming %d", snap.MaxRetained, str.MaxRetained)
	}
	// Every span except the pinned worker daemons reaches the sinks.
	var streamed int
	for _, cs := range sinks {
		streamed += cs.n
	}
	if int64(streamed) > str.Spans || int64(streamed) < str.Spans/2 {
		t.Fatalf("sinks saw %d spans of %d", streamed, str.Spans)
	}
}

// TestRunMillionTaskSampling checks deterministic sampling: with
// SampleMod set, the sink sees a strict subset, and two identical runs
// stream identical counts.
func TestRunMillionTaskSampling(t *testing.T) {
	run := func() (int, *ScaleResult) {
		cfg := scaleTestConfig()
		cfg.SampleMod = 4
		sinks := make([]*countSink, cfg.Shards)
		cfg.Sinks = make([]obs.SpanSink, cfg.Shards)
		for i := range sinks {
			sinks[i] = &countSink{}
			cfg.Sinks[i] = sinks[i]
		}
		res, err := RunMillionTask(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for _, cs := range sinks {
			n += cs.n
		}
		return n, res
	}
	n1, res1 := run()
	n2, _ := run()
	if n1 != n2 {
		t.Fatalf("sampled stream not deterministic: %d vs %d spans", n1, n2)
	}
	if int64(n1)*2 >= res1.Spans {
		t.Fatalf("SampleMod=4 kept %d of %d spans — sampling ineffective", n1, res1.Spans)
	}
}
