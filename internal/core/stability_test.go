package core

import (
	"testing"
	"time"
)

// ramp builds n latencies linearly interpolated from first to last
// seconds — the signature of a queue whose waits grow with every
// arrival when last >> first.
func ramp(n int, first, last float64) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		frac := float64(i) / float64(n-1)
		out[i] = time.Duration((first + (last-first)*frac) * float64(time.Second))
	}
	return out
}

func flat(n int, secs float64) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(secs * float64(time.Second))
	}
	return out
}

func TestStableLatenciesBoundaries(t *testing.T) {
	cases := []struct {
		name string
		lats []time.Duration
		want bool
	}{
		// Too few samples to form quartiles: trivially stable.
		{"empty", nil, true},
		{"three samples", ramp(3, 1, 100), true},
		// Flat latencies at any magnitude are stable.
		{"flat small", flat(40, 0.5), true},
		{"flat large", flat(40, 30), true},
		// Growth below the floor is jitter, not divergence, no matter
		// the ratio: 0.2s → 4s quadruples but stays under
		// stableFloorSeconds.
		{"growth under floor", ramp(40, 0.2, 4.5), true},
		// Growth above the floor but within the ratio limit is stable:
		// first-quartile mean ~11s, last ~19s, ratio < 2.
		{"bounded growth", ramp(40, 10, 20), true},
		// The regression the fix locks in: the old test's `2*max(first,
		// 1)+10` slack called a 0.2s → 12s divergence stable (last mean
		// ~10.6s was under its ~13s absolute threshold) even though
		// waits grew ~7× quartile over quartile. Relative growth of >2×
		// above the floor is unstable.
		{"diverging short run", ramp(40, 0.2, 12), false},
		// Clearly diverging queue: 1s → 100s.
		{"diverging", ramp(40, 1, 100), false},
	}
	for _, tc := range cases {
		if got := stableLatencies(tc.lats); got != tc.want {
			t.Errorf("%s: stableLatencies = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// The exact boundary: last-quartile mean at the growth limit is
// stable, one step past it is not.
func TestStableLatenciesGrowthBoundary(t *testing.T) {
	// 8 samples → quartile size 2. First quartile mean 10s.
	mk := func(lastMean float64) []time.Duration {
		return []time.Duration{
			10 * time.Second, 10 * time.Second,
			11 * time.Second, 12 * time.Second, 13 * time.Second, 14 * time.Second,
			time.Duration(lastMean * float64(time.Second)), time.Duration(lastMean * float64(time.Second)),
		}
	}
	if !stableLatencies(mk(stableGrowthLimit * 10)) {
		t.Error("last/first exactly at the growth limit should be stable")
	}
	if stableLatencies(mk(stableGrowthLimit*10 + 1)) {
		t.Error("last/first past the growth limit should be unstable")
	}
}
