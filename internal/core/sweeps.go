package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/devent"
	"repro/internal/harness"
	"repro/internal/llm"
	"repro/internal/simgpu"
)

// SweepPoint is one measurement of Fig. 2: completion latency under
// an MPS SM budget.
type SweepPoint struct {
	Model   string
	Percent int
	SMs     int
	Latency time.Duration
}

// Fig2Result carries both model curves plus the CPU baselines the
// paper quotes (180 s and 360 s).
type Fig2Result struct {
	Points       []SweepPoint
	CPUBaselines map[string]time.Duration
}

// Fig2Sweep reproduces Fig. 2: 20-token completions of LLaMa-2-7B
// (fp32, one A100) and LLaMa-2-13B (fp32, sharded over two A100s)
// under CUDA MPS active-thread percentages. The paper's testbed GPUs
// (40 GB A100s, §5.1) are used.
func Fig2Sweep(percents []int) (*Fig2Result, error) {
	res := &Fig2Result{CPUBaselines: map[string]time.Duration{}}
	scenarios := []struct {
		name   string
		cfg    llm.Config
		shards int
	}{
		{"llama2-7b", fp32(llm.LLaMa27B()), 1},
		{"llama2-13b", fp32(llm.LLaMa213B()), 2},
	}
	for _, sc := range scenarios {
		res.CPUBaselines[sc.name] = sc.cfg.CPUCompletionTime(20)
	}
	// Every grid cell is an independent simulation: fan them out
	// across cores, collecting points in scenario-major, percent-minor
	// order — the same order the sequential loop produced.
	points, err := harness.Map(len(scenarios)*len(percents), func(i int) (SweepPoint, error) {
		sc := scenarios[i/len(percents)]
		pct := percents[i%len(percents)]
		lat, err := measureAtPercent(sc.cfg, sc.shards, pct)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("core: fig2 %s@%d%%: %w", sc.name, pct, err)
		}
		spec := simgpu.A100SXM440GB()
		return SweepPoint{
			Model:   sc.name,
			Percent: pct,
			SMs:     smsFor(spec.SMs, pct),
			Latency: lat,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

func fp32(c llm.Config) llm.Config {
	c.BytesPerParam = 4
	return c
}

func smsFor(deviceSMs, pct int) int {
	if pct >= 100 {
		return deviceSMs
	}
	return int(math.Ceil(float64(pct) / 100 * float64(deviceSMs)))
}

// measureAtPercent builds a fresh simulated testbed and measures one
// 20-token completion with every shard capped at pct percent of its
// device's SMs.
func measureAtPercent(cfg llm.Config, shards, pct int) (time.Duration, error) {
	return MeasureCompletionAtPercent(simgpu.A100SXM440GB(), cfg, shards, pct)
}

// Fig2SinglePoint measures one completion latency at an MPS
// percentage on a single 80 GB A100 — the probe the right-sizing
// study sweeps.
func Fig2SinglePoint(cfg llm.Config, pct int) (time.Duration, error) {
	return MeasureCompletionAtPercent(simgpu.A100SXM480GB(), cfg, 1, pct)
}

// MeasureCompletionAtPercent is the generic single-run probe: a fresh
// environment, `shards` devices of the given spec with MPS enabled,
// one context per device capped at pct, one 20-token completion.
func MeasureCompletionAtPercent(spec simgpu.DeviceSpec, cfg llm.Config, shards, pct int) (time.Duration, error) {
	env := devent.NewEnv()
	devs := make([]*simgpu.Device, shards)
	for i := range devs {
		d, err := simgpu.NewDevice(env, fmt.Sprintf("gpu%d", i), spec)
		if err != nil {
			return 0, err
		}
		if err := d.SetPolicy(simgpu.PolicySpatial); err != nil {
			return 0, err
		}
		devs[i] = d
	}
	var lat time.Duration
	var runErr error
	env.Spawn("probe", func(p *devent.Proc) {
		ctxs := make([]*simgpu.Context, shards)
		for i, d := range devs {
			ctx, err := d.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: pct})
			if err != nil {
				runErr = err
				return
			}
			ctxs[i] = ctx
		}
		e := llm.New(cfg)
		if err := e.Load(p, ctxs, devs[0].Spec().HostLoadBW); err != nil {
			runErr = err
			return
		}
		c, err := e.Complete(p, 20, 20)
		if err != nil {
			runErr = err
			return
		}
		lat = c.Latency
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	return lat, runErr
}
