package core

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/harness"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simgpu"
)

// Table1Row quantifies one multiplexing technique: the measured
// counterpart of the paper's qualitative Table 1.
type Table1Row struct {
	Technique string
	// Utilization and Throughput/MeanLatency come from the 4-process
	// LLaMa burst (same workload as Fig. 4).
	Utilization float64
	Throughput  float64
	MeanLatency time.Duration
	// VictimCoV is the coefficient of variation of a steady tenant's
	// latency while three bursty neighbours come and go — the
	// isolation metric (lower is better).
	VictimCoV float64
	// ReconfigDowntime is the measured cost of changing the
	// partitioning (0 = nothing to reconfigure).
	ReconfigDowntime time.Duration
	// MemoryIsolated reports whether tenants draw from separate
	// memory pools.
	MemoryIsolated bool
	// Software names the required control software (Table 1 column).
	Software string
	// ContextSwitches is the measured scheduling-switch count on the
	// device during the burst (time-share penalties + vGPU rotations).
	ContextSwitches int
}

// Table1Modes lists the techniques in the paper's row order.
var Table1Modes = []Mode{ModeTimeshare, ModeMPSDefault, ModeMPS, ModeMIG, ModeVGPU}

var table1Software = map[Mode]string{
	ModeTimeshare:  "none",
	ModeMPSDefault: "nvidia-cuda-mps-control",
	ModeMPS:        "nvidia-cuda-mps-control",
	ModeMIG:        "nvidia-smi",
	ModeVGPU:       "NVIDIA vGPU driver",
}

// RunTable1 measures every technique under a common 4-tenant LLaMa
// burst plus isolation and reconfiguration micro-benchmarks.
func RunTable1() ([]Table1Row, error) {
	rows, _, err := RunTable1Observed(false, "")
	return rows, err
}

// RunTable1Observed is RunTable1 with optional deep instrumentation;
// it additionally returns each burst's collector, one per row in the
// paper's row order. A non-empty slo spec (see Options.SLO) attaches
// the burn-rate monitor to every burst.
func RunTable1Observed(observe bool, slo string) ([]Table1Row, []*obs.Collector, error) {
	return RunTable1ObservedHook(observe, slo, nil)
}

// RunTable1ObservedHook is RunTable1Observed with a per-burst collector
// hook: onCollector (when non-nil) is called with the row index and the
// burst's collector before the burst runs, so streaming exporters can
// attach sinks from the first span. Isolation-probe collectors are not
// exported and never hooked.
func RunTable1ObservedHook(observe bool, slo string, onCollector func(i int, c *obs.Collector)) ([]Table1Row, []*obs.Collector, error) {
	reconfigs, err := RunReconfig(2 * time.Second)
	if err != nil {
		return nil, nil, err
	}
	reconfigByMode := map[Mode]time.Duration{
		ModeTimeshare:  0,
		ModeMPSDefault: 0,
		ModeMPS:        reconfigs[0].Downtime, // process restart
		ModeMIG:        reconfigs[2].Downtime, // reset + restart
	}
	vgpuReconfig, err := measureVGPUReconfig()
	if err != nil {
		return nil, nil, err
	}
	reconfigByMode[ModeVGPU] = vgpuReconfig

	// Each technique's burst + isolation probe is an independent pair
	// of simulations; measure the techniques concurrently, rows in the
	// paper's order.
	type cell struct {
		row Table1Row
		obs *obs.Collector
	}
	cells, err := harness.Map(len(Table1Modes), func(i int) (cell, error) {
		mode := Table1Modes[i]
		var hook func(*obs.Collector)
		if onCollector != nil {
			hook = func(c *obs.Collector) { onCollector(i, c) }
		}
		mr, err := RunMultiplex(MultiplexConfig{Mode: mode, Processes: 4, Completions: 32, Observe: observe, SLO: slo, OnCollector: hook})
		if err != nil {
			return cell{}, fmt.Errorf("core: table1 %s burst: %w", mode, err)
		}
		mr.Obs.SetScope(fmt.Sprintf("table1/%s", mode))
		cov, isolated, err := isolationProbe(mode)
		if err != nil {
			return cell{}, fmt.Errorf("core: table1 %s isolation: %w", mode, err)
		}
		return cell{
			row: Table1Row{
				Technique:        string(mode),
				Utilization:      mr.Utilization,
				Throughput:       mr.Throughput,
				MeanLatency:      mr.MeanLatency(),
				VictimCoV:        cov,
				ReconfigDowntime: reconfigByMode[mode],
				MemoryIsolated:   isolated,
				Software:         table1Software[mode],
				ContextSwitches:  mr.ContextSwitches,
			},
			obs: mr.Obs,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Table1Row, len(cells))
	collectors := make([]*obs.Collector, len(cells))
	for i, c := range cells {
		rows[i] = c.row
		collectors[i] = c.obs
	}
	return rows, collectors, nil
}

// measureVGPUReconfig models Table 1's "requires restarting a VM":
// VM reboot plus context init plus model reload.
func measureVGPUReconfig() (time.Duration, error) {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		return 0, err
	}
	if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
		return 0, err
	}
	var downtime time.Duration
	env.Spawn("vm", func(p *devent.Proc) {
		start := p.Now()
		p.Sleep(30 * time.Second) // VM reboot
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{Group: "vm1"})
		eng := llm.New(fp32(llm.LLaMa27B()))
		if err := eng.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			env.Fail(err)
			return
		}
		downtime = p.Now() - start
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	return downtime, nil
}

// isolationProbe runs one steady victim against three synchronized
// bursty aggressors under the given technique and returns the CoV of
// the victim's completion latency plus whether tenant memory pools are
// disjoint.
func isolationProbe(mode Mode) (float64, bool, error) {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		return 0, false, err
	}
	hostBW := dev.Spec().HostLoadBW
	model := llm.LLaMa27B()
	aggModel := model

	// Partition setup + per-tenant context factory.
	type tenantCtx func(p *devent.Proc, i int) (*simgpu.Context, error)
	var mkCtx tenantCtx
	switch mode {
	case ModeTimeshare:
		mkCtx = func(p *devent.Proc, i int) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		}
	case ModeMPSDefault:
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			return 0, false, err
		}
		mkCtx = func(p *devent.Proc, i int) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		}
	case ModeMPS:
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			return 0, false, err
		}
		mkCtx = func(p *devent.Proc, i int) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: 25})
		}
	case ModeVGPU:
		if err := dev.SetPolicy(simgpu.PolicyVGPU); err != nil {
			return 0, false, err
		}
		mkCtx = func(p *devent.Proc, i int) (*simgpu.Context, error) {
			return dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, Group: fmt.Sprintf("vm%d", i)})
		}
	case ModeMIG:
		var setupErr error
		ready := env.NewEvent()
		var instances []*simgpu.Instance
		env.Spawn("mig-setup", func(p *devent.Proc) {
			if err := dev.EnableMIG(p); err != nil {
				setupErr = err
				ready.Fire(nil)
				return
			}
			ins, err := dev.ConfigureMIG(p, []string{"3g.40gb", "1g.10gb", "1g.10gb", "1g.10gb"})
			if err != nil {
				setupErr = err
				ready.Fire(nil)
				return
			}
			instances = ins
			ready.Fire(nil)
		})
		aggModel.WeightBytesOverride = 6 * simgpu.GB
		aggModel.WorkspaceBytes = 3 * simgpu.GB
		mkCtx = func(p *devent.Proc, i int) (*simgpu.Context, error) {
			p.Wait(ready)
			if setupErr != nil {
				return nil, setupErr
			}
			return instances[i].NewContext(p, simgpu.ContextOpts{SkipInit: true})
		}
	default:
		return 0, false, fmt.Errorf("core: unknown mode %q", mode)
	}

	var lat metrics.Durations
	var victimPool, aggPool *simgpu.MemPool
	victimDone := env.NewEvent()
	env.Spawn("victim", func(p *devent.Proc) {
		defer victimDone.Fire(nil)
		ctx, err := mkCtx(p, 0)
		if err != nil {
			env.Fail(err)
			return
		}
		victimPool = ctx.Pool()
		eng := llm.New(model)
		if err := eng.Load(p, []*simgpu.Context{ctx}, hostBW); err != nil {
			env.Fail(err)
			return
		}
		for i := 0; i < 12; i++ {
			c, err := eng.Complete(p, 20, 20)
			if err != nil {
				env.Fail(err)
				return
			}
			lat.Add(c.Latency)
			p.Sleep(3 * time.Second)
		}
	})
	for i := 1; i <= 3; i++ {
		i := i
		agg := env.Spawn("aggressor", func(p *devent.Proc) {
			ctx, err := mkCtx(p, i)
			if err != nil {
				env.Fail(err)
				return
			}
			if aggPool == nil {
				aggPool = ctx.Pool()
			}
			eng := llm.New(aggModel)
			if err := eng.Load(p, []*simgpu.Context{ctx}, hostBW); err != nil {
				env.Fail(err)
				return
			}
			p.Sleep(8 * time.Second) // let the victim settle
			for !victimDone.Fired() {
				for b := 0; b < 2 && !victimDone.Fired(); b++ {
					if _, err := eng.Complete(p, 20, 20); err != nil {
						env.Fail(err)
						return
					}
				}
				p.Sleep(12 * time.Second)
			}
		})
		agg.SetDaemon(true)
	}
	if err := env.Run(); err != nil {
		return 0, false, err
	}
	isolated := victimPool != nil && aggPool != nil && victimPool != aggPool
	return lat.Summary().CoV(), isolated, nil
}
