package core

import (
	"math"
	"testing"
	"time"
)

// The diurnal rate swings between trough and peak and bursts multiply
// the local intensity.
func TestTrafficRateShape(t *testing.T) {
	tr, err := NewTraffic(TrafficConfig{
		Users:       1000,
		PerUserRate: 0.001, // peak 1 req/s
		Period:      24 * time.Hour,
		TroughFrac:  0.1,
		Horizon:     24 * time.Hour,
		Bursts:      []Burst{{At: 6 * time.Hour, Duration: time.Hour, Multiplier: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Rate(0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("trough rate = %v, want 0.1", got)
	}
	if got := tr.Rate(12 * time.Hour); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("peak rate = %v, want 1.0", got)
	}
	// Inside the burst the diurnal value is tripled.
	base := tr.Rate(5*time.Hour + 59*time.Minute)
	in := tr.Rate(6*time.Hour + 30*time.Minute)
	if in < 2*base {
		t.Errorf("burst rate %v not elevated over pre-burst %v", in, base)
	}
	if got := tr.Rate(7*time.Hour + time.Minute); got > in/2 {
		t.Errorf("post-burst rate %v still elevated", got)
	}
}

// The cutoff clips trough demand to exactly zero — the scale-to-zero
// window — without touching the peak.
func TestTrafficCutoff(t *testing.T) {
	tr, err := NewTraffic(TrafficConfig{
		Users:       1,
		PerUserRate: 1, // peak 1 req/s
		Period:      time.Hour,
		TroughFrac:  0.05,
		Cutoff:      0.2,
		Horizon:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Rate(0); got != 0 {
		t.Errorf("trough rate = %v, want 0 under cutoff", got)
	}
	if got := tr.Rate(30 * time.Minute); got != 1.0 {
		t.Errorf("peak rate = %v, want 1.0", got)
	}
	// No arrival may land inside a clipped window.
	for {
		at, ok := tr.Next()
		if !ok {
			break
		}
		if tr.Rate(at) == 0 {
			t.Fatalf("arrival at %v inside the clipped window", at)
		}
	}
}

// Thinning produces arrivals whose count tracks the rate integral and
// which are strictly within the horizon, in increasing order.
func TestTrafficArrivalsTrackIntegral(t *testing.T) {
	tr, err := NewTraffic(TrafficConfig{
		Users:       100,
		PerUserRate: 0.01, // peak 1 req/s
		Period:      time.Hour,
		TroughFrac:  0.2,
		Horizon:     2 * time.Hour,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := tr.ExpectedArrivals()
	var n int
	last := time.Duration(-1)
	for {
		at, ok := tr.Next()
		if !ok {
			break
		}
		if at <= last {
			t.Fatalf("arrival %v not after %v", at, last)
		}
		if at >= 2*time.Hour {
			t.Fatalf("arrival %v beyond horizon", at)
		}
		last = at
		n++
	}
	// ~4300 expected; Poisson σ ≈ 66, allow 5σ.
	if math.Abs(float64(n)-want) > 5*math.Sqrt(want) {
		t.Errorf("arrivals = %d, expected ≈ %.0f", n, want)
	}
}

// The process is deterministic under a seed and differs across seeds.
func TestTrafficDeterminism(t *testing.T) {
	gen := func(seed int64) []time.Duration {
		tr, err := NewTraffic(TrafficConfig{
			Users: 10, PerUserRate: 0.1, Period: time.Hour,
			Horizon: 30 * time.Minute, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		for {
			at, ok := tr.Next()
			if !ok {
				return out
			}
			out = append(out, at)
		}
	}
	a, b, c := gen(3), gen(3), gen(4)
	if len(a) != len(b) {
		t.Fatalf("same seed lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical arrivals")
		}
	}
}

// A million-user population is just a rate multiplier: generation cost
// scales with arrivals, not users.
func TestTrafficMillionUsers(t *testing.T) {
	tr, err := NewTraffic(TrafficConfig{
		Users:       2_000_000,
		PerUserRate: 1e-6, // peak 2 req/s aggregate
		Period:      time.Hour,
		Horizon:     10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("no arrivals from a 2M-user population")
	}
}

func TestTrafficValidate(t *testing.T) {
	bad := []TrafficConfig{
		{},                             // no horizon
		{Horizon: time.Hour, TroughFrac: 2},
		{Horizon: time.Hour, Bursts: []Burst{{Multiplier: 0.5, Duration: time.Second}}},
		{Horizon: time.Hour, Bursts: []Burst{{Multiplier: 2}}},
	}
	for i, cfg := range bad {
		if _, err := NewTraffic(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
