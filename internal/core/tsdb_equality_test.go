package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/tsdb"
)

// alerts renders a run collector's SLO alert stream.
func alerts(t *testing.T, c *obs.Collector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := analyze.WriteAlerts(&buf, c); err != nil {
		t.Fatalf("WriteAlerts: %v", err)
	}
	return buf.Bytes()
}

// TestMultiplexTSDBAlertEquality runs one Table-1 cell with the SLO
// monitor in classic mode and again with the tsdb-backed burn windows
// (plus the scrape daemon running), and requires the identical alert
// stream — the acceptance gate that moving burn computation onto tsdb
// changes no observable behavior.
func TestMultiplexTSDBAlertEquality(t *testing.T) {
	const slo = "llama-complete:2s:0.9"
	run := func(db *tsdb.Config) (*MultiplexResult, []byte) {
		res, err := RunMultiplex(MultiplexConfig{
			Mode: ModeTimeshare, Processes: 4, Completions: 8, SLO: slo, TSDB: db,
		})
		if err != nil {
			t.Fatalf("RunMultiplex(tsdb=%v): %v", db != nil, err)
		}
		return res, alerts(t, res.Obs)
	}
	base, baseAlerts := run(nil)
	if len(baseAlerts) == 0 {
		t.Fatal("baseline produced no alerts — the SLO spec must fire for this test to mean anything")
	}
	var gotDB *tsdb.DB
	cfg := MultiplexConfig{
		Mode: ModeTimeshare, Processes: 4, Completions: 8, SLO: slo,
		TSDB:       &tsdb.Config{Interval: time.Second},
		OnPlatform: func(pl *Platform) { gotDB = pl.TSDB },
	}
	res, err := RunMultiplex(cfg)
	if err != nil {
		t.Fatalf("RunMultiplex tsdb: %v", err)
	}
	dbAlerts := alerts(t, res.Obs)
	if !bytes.Equal(baseAlerts, dbAlerts) {
		t.Fatalf("alert streams differ:\nclassic:\n%s\ntsdb:\n%s", baseAlerts, dbAlerts)
	}
	// The scrape daemon must not perturb the simulation itself.
	if res.Makespan != base.Makespan {
		t.Fatalf("makespan changed with tsdb attached: %v vs %v", res.Makespan, base.Makespan)
	}
	if gotDB == nil {
		t.Fatal("OnPlatform did not receive the tsdb handle")
	}
	// The daemon scraped throughout the run and the burn signal is
	// queryable after it.
	if gotDB.Scrapes() < 2 {
		t.Fatalf("only %d scrapes over a %v run", gotDB.Scrapes(), res.Makespan)
	}
	if _, ok := gotDB.Latest("slo:burn", obs.L("app", "llama-complete")); !ok {
		t.Fatal("slo:burn not recorded in the run's tsdb")
	}
	if _, ok := gotDB.Latest("slo_events_total", obs.L("app", "llama-complete"), obs.L("verdict", "bad")); !ok {
		t.Fatal("scraped registry counters missing from the tsdb")
	}
}

// TestPhaseShiftTSDBAlertEquality is the same gate on the phase-shift
// scenario: bursty two-tenant load, retries riding through backoff —
// the alert stream with tsdb-backed windows must match the classic
// monitor byte for byte.
func TestPhaseShiftTSDBAlertEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("two full phase-shift runs in -short mode")
	}
	const slo = "svc-a:3s:0.9:30s,svc-b:3s:0.9:30s"
	run := func(db *tsdb.Config) []byte {
		res, err := RunPhaseShift(PhaseShiftConfig{
			Mode: ModeMPS, HeavyCompletions: 12, LightCompletions: 3,
			PhaseAt: 30 * time.Second, SLO: slo, TSDB: db,
		})
		if err != nil {
			t.Fatalf("RunPhaseShift(tsdb=%v): %v", db != nil, err)
		}
		return alerts(t, res.Obs)
	}
	base := run(nil)
	if len(base) == 0 {
		t.Fatal("baseline produced no alerts — tighten the SLO spec")
	}
	got := run(&tsdb.Config{Interval: 500 * time.Millisecond})
	if !bytes.Equal(base, got) {
		t.Fatalf("alert streams differ:\nclassic:\n%s\ntsdb:\n%s", base, got)
	}
}
