package devent

import (
	"testing"
	"time"
)

// BenchmarkScheduleDrain measures raw event throughput.
func BenchmarkScheduleDrain(b *testing.B) {
	env := NewEnv()
	for i := 0; i < b.N; i++ {
		env.Schedule(time.Duration(i), func() {})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSleepLoop measures proc context-switch cost.
func BenchmarkProcSleepLoop(b *testing.B) {
	env := NewEnv()
	env.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanPingPong measures rendezvous cost between two procs.
func BenchmarkChanPingPong(b *testing.B) {
	env := NewEnv()
	ping := NewChan[int](env, 0)
	pong := NewChan[int](env, 0)
	env.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	env.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerCancelRetention measures the schedule+cancel churn of
// a long-lived env (the open-loop pattern: per-kernel finish timers
// rescheduled on every share change) and asserts the heap stays
// bounded instead of retaining every cancelled item until its
// far-future deadline.
func BenchmarkTimerCancelRetention(b *testing.B) {
	env := NewEnv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := env.Schedule(time.Duration(i+1)*time.Hour, func() {})
		tm.Cancel()
		if len(env.queue) > 2*compactThreshold {
			b.Fatalf("heap grew to %d cancelled items at i=%d", len(env.queue), i)
		}
	}
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventFanout measures waking many waiters at once.
func BenchmarkEventFanout(b *testing.B) {
	const waiters = 64
	for i := 0; i < b.N; i++ {
		env := NewEnv()
		ev := env.NewEvent()
		for w := 0; w < waiters; w++ {
			env.Spawn("w", func(p *Proc) { p.Wait(ev) })
		}
		env.Schedule(time.Second, func() { ev.Fire(nil) })
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventWaitSteady measures the steady-state future pattern —
// one proc repeatedly awaiting a freshly fired event on a long-lived
// env — where the waiter pool and fanout-batch pool are warm. Target:
// 3 allocs/op (the Event, the Schedule closure, and the Timer handle);
// the eventWaiter must come from the pool.
func BenchmarkEventWaitSteady(b *testing.B) {
	env := NewEnv()
	b.ReportAllocs()
	env.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ev := env.NewEvent()
			env.Schedule(time.Microsecond, func() { ev.Fire(nil) })
			p.Wait(ev)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventFanoutSteady is EventFanout on a long-lived env: the
// same 64 procs repeatedly block on a fresh event, so per-iteration
// cost is the fanout itself (pooled waiters, one pooled proc batch,
// one scheduled callback) without proc-spawn churn.
func BenchmarkEventFanoutSteady(b *testing.B) {
	const waiters = 64
	env := NewEnv()
	b.ReportAllocs()
	ev := env.NewEvent()
	gate := NewChan[int](env, waiters)
	for w := 0; w < waiters; w++ {
		env.Spawn("w", func(p *Proc) {
			for {
				cur := ev
				if _, err := p.Wait(cur); err != nil {
					return
				}
				gate.Send(p, 1)
			}
		})
	}
	env.Spawn("driver", func(p *Proc) {
		p.Sleep(time.Millisecond) // let every waiter park on round 0
		for i := 0; i < b.N; i++ {
			cur := ev
			ev = env.NewEvent()
			cur.Fire(nil)
			for n := 0; n < waiters; n++ {
				gate.Recv(p)
			}
			p.Sleep(time.Millisecond) // waiters re-park on the new event
		}
		ev.Fail(ErrClosed)
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
