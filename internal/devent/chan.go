package devent

// Chan is a virtual-time channel with Go-channel semantics: unbuffered
// channels rendezvous, buffered channels queue up to cap values, Recv
// on a closed drained channel returns the zero value and ok=false, and
// Send on a closed channel panics.
type Chan[T any] struct {
	env    *Env
	cap    int
	buf    []T
	sendq  []*chanWaiter[T]
	recvq  []*chanWaiter[T]
	closed bool
	// free recycles waiters for cancel-free ops. A waiter from a
	// cancellable op is never pooled: the cancel event's OnFire
	// callback keeps a reference to it indefinitely.
	free []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p         *Proc
	val       T
	ok        bool
	woken     bool
	cancelled bool
}

// NewChan returns a channel with the given buffer capacity (0 for an
// unbuffered, rendezvous channel).
func NewChan[T any](env *Env, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{env: env, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap reports the buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send delivers v, blocking the proc until a receiver or buffer slot is
// available. Sending on a closed channel panics, mirroring Go.
func (c *Chan[T]) Send(p *Proc, v T) {
	if !c.SendOr(p, v, nil) {
		panic("devent: send on closed channel")
	}
}

// SendOr is Send with an optional cancel event. It reports true if the
// value was delivered, false if cancel fired first or the channel was
// (or became) closed while waiting.
func (c *Chan[T]) SendOr(p *Proc, v T, cancel *Event) bool {
	if c.closed {
		return false
	}
	if c.trySend(v) {
		return true
	}
	w := c.getWaiter(p, cancel)
	w.val = v
	c.sendq = append(c.sendq, w)
	c.parkCancellable(p, w, cancel, func() { c.removeSender(w) })
	ok := w.ok
	c.putWaiter(w, cancel)
	return ok
}

// TrySend delivers v without blocking. It reports whether the value was
// accepted (a waiting receiver or free buffer slot existed).
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		return false
	}
	return c.trySend(v)
}

func (c *Chan[T]) trySend(v T) bool {
	if w := c.popRecv(); w != nil {
		w.val, w.ok = v, true
		w.woken = true
		c.env.wake(w.p)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv blocks until a value is available. ok is false when the channel
// is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	v, ok, _ = c.RecvOr(p, nil)
	return v, ok
}

// RecvOr is Recv with an optional cancel event. cancelled is true when
// cancel fired before a value arrived; in that case ok is false.
func (c *Chan[T]) RecvOr(p *Proc, cancel *Event) (v T, ok bool, cancelled bool) {
	if v, ok := c.TryRecv(); ok {
		return v, true, false
	}
	if c.closed {
		var zero T
		return zero, false, false
	}
	w := c.getWaiter(p, cancel)
	c.recvq = append(c.recvq, w)
	c.parkCancellable(p, w, cancel, func() { c.removeReceiver(w) })
	v, ok, cancelled = w.val, w.ok, w.cancelled
	c.putWaiter(w, cancel)
	return v, ok, cancelled
}

// TryRecv receives without blocking; ok is false when nothing was
// available.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A blocked sender can now occupy the freed slot (or, for an
		// unbuffered channel, this branch never runs).
		if w := c.popSend(); w != nil {
			c.buf = append(c.buf, w.val)
			w.ok = true
			w.woken = true
			c.env.wake(w.p)
		}
		return v, true
	}
	if w := c.popSend(); w != nil { // unbuffered rendezvous
		w.ok = true
		w.woken = true
		c.env.wake(w.p)
		return w.val, true
	}
	var zero T
	return zero, false
}

// Close marks the channel closed. Blocked receivers wake with ok=false;
// blocked senders wake with delivery failure. Closing twice panics.
func (c *Chan[T]) Close() {
	if c.closed {
		panic("devent: close of closed channel")
	}
	c.closed = true
	for _, w := range c.recvq {
		if !w.woken {
			w.woken = true
			w.ok = false
			c.env.wake(w.p)
		}
	}
	c.recvq = nil
	for _, w := range c.sendq {
		if !w.woken {
			w.woken = true
			w.ok = false
			c.env.wake(w.p)
		}
	}
	c.sendq = nil
}

func (c *Chan[T]) parkCancellable(p *Proc, w *chanWaiter[T], cancel *Event, deregister func()) {
	if cancel != nil {
		// If cancel has already fired, OnFire runs the callback
		// immediately, which schedules the wake that the park below
		// consumes — the same path as a later cancellation.
		cancel.OnFire(func(*Event) {
			if w.woken {
				return
			}
			w.woken = true
			w.cancelled = true
			deregister()
			c.env.wake(p)
		})
	}
	p.park()
}

// getWaiter takes a pooled waiter for a cancel-free op, or allocates.
// By the time a cancel-free op returns, its waiter has been removed
// from the queues (popped, deregistered, or dropped by Close), so
// recycling it is safe.
func (c *Chan[T]) getWaiter(p *Proc, cancel *Event) *chanWaiter[T] {
	if cancel == nil {
		if n := len(c.free); n > 0 {
			w := c.free[n-1]
			c.free[n-1] = nil
			c.free = c.free[:n-1]
			*w = chanWaiter[T]{p: p}
			return w
		}
	}
	return &chanWaiter[T]{p: p}
}

func (c *Chan[T]) putWaiter(w *chanWaiter[T], cancel *Event) {
	if cancel == nil {
		c.free = append(c.free, w)
	}
}

func (c *Chan[T]) popRecv() *chanWaiter[T] {
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if !w.woken {
			return w
		}
	}
	return nil
}

func (c *Chan[T]) popSend() *chanWaiter[T] {
	for len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if !w.woken {
			return w
		}
	}
	return nil
}

func (c *Chan[T]) removeSender(w *chanWaiter[T]) {
	for i, x := range c.sendq {
		if x == w {
			c.sendq = append(c.sendq[:i], c.sendq[i+1:]...)
			return
		}
	}
}

func (c *Chan[T]) removeReceiver(w *chanWaiter[T]) {
	for i, x := range c.recvq {
		if x == w {
			c.recvq = append(c.recvq[:i], c.recvq[i+1:]...)
			return
		}
	}
}
