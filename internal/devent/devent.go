// Package devent implements a deterministic, process-oriented
// discrete-event simulation kernel.
//
// An Env owns a virtual clock and an event queue. Simulated activities
// are either plain scheduled callbacks (Schedule) or Procs: goroutines
// that run one at a time under the scheduler's control and advance
// virtual time by blocking on Sleep, Events, Chans, or Resources.
//
// The kernel is logically single-threaded: at any instant either the
// scheduler loop or exactly one Proc is executing. All devent objects
// must therefore only be touched from "sim context" — from inside a
// Proc body or a scheduled callback. No locks are needed and runs are
// fully deterministic: simultaneous events execute in the order they
// were scheduled.
package devent

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"
)

// ErrTimeout is returned by the *Timeout blocking variants when the
// deadline elapses before the awaited condition becomes true.
var ErrTimeout = errors.New("devent: timeout")

// ErrDeadlock is returned by Run when no events remain but one or more
// Procs are still blocked.
var ErrDeadlock = errors.New("devent: deadlock")

// ErrClosed is returned for operations on closed channels or destroyed
// resources where panicking would be unhelpful.
var ErrClosed = errors.New("devent: closed")

// compactThreshold is the minimum queue length before cancelled-item
// compaction is considered; below it the lazy pop-time cleanup is
// cheaper than rebuilding the heap.
const compactThreshold = 64

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create one with NewEnv.
type Env struct {
	now     time.Duration
	seq     int64
	queue   eventHeap
	ack     chan struct{}
	procs   map[int64]*Proc
	nextPID int64
	running bool
	failure error
	// free is a free list of recycled queueItems; cancelled counts
	// dead items still sitting in the heap (compacted when they
	// exceed half the queue).
	free      *queueItem
	cancelled int
	// freeWaiter recycles eventWaiters (see event.go); freeBatches
	// recycles the proc buffers used to batch multi-waiter fanouts.
	freeWaiter  *eventWaiter
	freeBatches [][]*Proc
	// dispatched counts executed events; always on (a single
	// increment) so throughput scenarios can report events/sec without
	// attaching an observer.
	dispatched int64
	obs        Observer
}

// EventsDispatched reports how many events the scheduler has executed
// since the environment was created — the denominator of the scale
// scenario's events/sec metric.
func (e *Env) EventsDispatched() int64 { return e.dispatched }

// Observer receives scheduler lifecycle callbacks (the obs package's
// Collector implements it). All methods run in sim context. Dispatched
// fires once per executed event, so implementations must keep it
// allocation-free; with no observer installed the hooks cost a single
// nil check.
type Observer interface {
	// ProcSpawned fires when Spawn registers a new proc.
	ProcSpawned(name string, at time.Duration)
	// ProcExited fires when a proc's body returns.
	ProcExited(name string, at time.Duration)
	// Dispatched fires for every event popped from the queue.
	Dispatched(at time.Duration)
}

// SetObserver installs (or, with nil, removes) the scheduler observer.
func (e *Env) SetObserver(o Observer) { e.obs = o }

// NewEnv returns a fresh simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		ack:   make(chan struct{}),
		procs: make(map[int64]*Proc),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Fail aborts the simulation: Run returns err after the current
// callback or proc yields. Only the first failure is retained.
func (e *Env) Fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
}

// Timer is a handle to a scheduled callback. Cancelling an already
// fired or cancelled timer is a no-op. Queue items are pooled, so the
// handle carries the item's generation: a stale handle (whose item has
// since fired and been recycled) is recognised and ignored.
type Timer struct {
	env  *Env
	item *queueItem
	gen  uint64
	at   time.Duration
}

// Cancel prevents the timer's callback from running. It reports whether
// the timer was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.item == nil || t.gen != t.item.gen || t.item.fn == nil {
		return false
	}
	t.item.fn = nil
	t.item = nil
	e := t.env
	e.cancelled++
	if e.cancelled > len(e.queue)/2 && len(e.queue) >= compactThreshold {
		e.compact()
	}
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.item != nil && t.gen == t.item.gen && t.item.fn != nil
}

// When reports the virtual time at which the timer fires (or fired).
// A nil or zero Timer reports 0.
func (t *Timer) When() time.Duration {
	if t == nil {
		return 0
	}
	return t.at
}

// Schedule runs fn at Now()+delay. A negative delay is treated as zero.
// It returns a cancellable handle.
func (e *Env) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Times in the past are
// clamped to Now().
func (e *Env) ScheduleAt(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	it := e.newItem(t, fn, nil)
	heap.Push(&e.queue, it)
	return &Timer{env: e, item: it, gen: it.gen, at: t}
}

// scheduleFn is ScheduleAt without the Timer handle, for internal
// callers that never cancel.
func (e *Env) scheduleFn(delay time.Duration, fn func()) {
	it := e.newItem(e.now+delay, fn, nil)
	heap.Push(&e.queue, it)
}

// scheduleProc queues a handoff to p at Now()+delay without allocating
// a closure or a Timer — the hot path behind Sleep and every wakeup.
func (e *Env) scheduleProc(delay time.Duration, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	it := e.newItem(e.now+delay, nil, p)
	heap.Push(&e.queue, it)
}

// newItem takes a queueItem from the free list (or allocates one) and
// initialises it.
func (e *Env) newItem(at time.Duration, fn func(), p *Proc) *queueItem {
	it := e.free
	if it != nil {
		e.free = it.next
		it.next = nil
	} else {
		it = &queueItem{}
	}
	e.seq++
	it.at = at
	it.seq = e.seq
	it.fn = fn
	it.proc = p
	return it
}

// release returns an item to the free list, bumping its generation so
// stale Timer handles no longer match.
func (e *Env) release(it *queueItem) {
	it.fn = nil
	it.proc = nil
	it.gen++
	it.next = e.free
	e.free = it
}

// compact rebuilds the heap without its cancelled items, releasing
// them to the pool. Long-lived open-loop runs cancel far more timers
// than they fire (e.g. per-kernel completion timers rescheduled on
// every share change); without compaction those dead items accumulate
// until their deadline is popped.
func (e *Env) compact() {
	live := e.queue[:0]
	for _, it := range e.queue {
		if it.fn == nil && it.proc == nil {
			e.release(it)
		} else {
			live = append(live, it)
		}
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	heap.Init(&e.queue)
	e.cancelled = 0
}

// peek returns the head live item, lazily dropping cancelled items so
// horizon checks see the true next event.
func (e *Env) peek() *queueItem {
	for len(e.queue) > 0 {
		it := e.queue[0]
		if it.fn != nil || it.proc != nil {
			return it
		}
		heap.Pop(&e.queue)
		e.cancelled--
		e.release(it)
	}
	return nil
}

// Run drains the event queue, advancing virtual time, until no events
// remain or a failure is recorded. It returns ErrDeadlock (wrapped with
// the blocked proc names) if procs are still parked when the queue
// empties.
func (e *Env) Run() error { return e.run(-1) }

// RunUntil behaves like Run but stops once the next event would occur
// after t; the clock is then advanced to t. Procs still blocked at the
// horizon are not a deadlock.
func (e *Env) RunUntil(t time.Duration) error { return e.run(t) }

func (e *Env) run(horizon time.Duration) error {
	if e.running {
		return errors.New("devent: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for e.failure == nil {
		it := e.peek()
		if it == nil {
			break
		}
		if horizon >= 0 && it.at > horizon {
			e.now = horizon
			return nil
		}
		heap.Pop(&e.queue)
		if it.at > e.now {
			e.now = it.at
		}
		fn, p := it.fn, it.proc
		e.release(it)
		e.dispatched++
		if e.obs != nil {
			e.obs.Dispatched(e.now)
		}
		if fn != nil {
			fn()
		} else {
			e.handoff(p)
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if horizon >= 0 {
		e.now = horizon
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 {
		return fmt.Errorf("%w: %d proc(s) blocked forever: %v", ErrDeadlock, len(blocked), blocked)
	}
	return nil
}

func (e *Env) blockedProcs() []string {
	var names []string
	for _, p := range e.procs {
		if p.parked && !p.daemon {
			names = append(names, p.Name())
		}
	}
	sort.Strings(names)
	return names
}

// queueItem is a pending scheduled callback (fn) or proc handoff
// (proc). Items are pooled via Env.free; gen distinguishes a live item
// from a recycled one holding the same address.
type queueItem struct {
	at   time.Duration
	seq  int64
	gen  uint64
	fn   func()
	proc *Proc
	next *queueItem
}

type eventHeap []*queueItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*queueItem)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Proc is a simulated process: a goroutine that runs under scheduler
// control and may block in virtual time.
type Proc struct {
	env    *Env
	id     int64
	base   string
	name   string // formatted lazily from base+id
	resume chan struct{}
	parked bool
	dead   bool
	daemon bool
	done   *Event
}

// SetDaemon marks the proc as a daemon: a parked daemon (e.g. an idle
// worker waiting for tasks) does not count as a deadlock when the
// event queue drains, mirroring daemon-thread semantics.
func (p *Proc) SetDaemon(d bool) { p.daemon = d }

// Spawn starts a new process executing fn. The process begins running
// at the current virtual time (after the caller yields control). The
// returned Proc's Done event fires when fn returns.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		env:    e,
		id:     e.nextPID,
		base:   name,
		resume: make(chan struct{}),
		done:   e.NewEvent(),
	}
	e.procs[p.id] = p
	if e.obs != nil {
		e.obs.ProcSpawned(p.Name(), e.now)
	}
	go p.body(fn)
	e.scheduleProc(0, p)
	return p
}

func (p *Proc) body(fn func(p *Proc)) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.env.Fail(fmt.Errorf("devent: proc %s panicked: %v\n%s", p.Name(), r, debug.Stack()))
		}
		p.dead = true
		delete(p.env.procs, p.id)
		if p.env.obs != nil {
			p.env.obs.ProcExited(p.Name(), p.env.now)
		}
		if !p.done.Fired() {
			p.done.Fire(nil)
		}
		p.env.ack <- struct{}{}
	}()
	fn(p)
}

// handoff transfers control to p and waits until it parks or exits.
func (e *Env) handoff(p *Proc) {
	if p.dead {
		return
	}
	p.parked = false
	p.resume <- struct{}{}
	<-e.ack
}

// park yields control back to the scheduler until somebody resumes p.
func (p *Proc) park() {
	p.parked = true
	p.env.ack <- struct{}{}
	<-p.resume
}

// wake schedules p to resume at the current virtual time.
func (e *Env) wake(p *Proc) {
	e.scheduleProc(0, p)
}

// Env returns the environment the proc runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the proc's unique name ("base#id").
func (p *Proc) Name() string {
	if p.name == "" {
		p.name = fmt.Sprintf("%s#%d", p.base, p.id)
	}
	return p.name
}

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Done returns the event fired when the proc's body returns.
func (p *Proc) Done() *Event { return p.done }

// Sleep blocks the proc for d of virtual time. Non-positive durations
// yield (the proc re-queues at the current time).
func (p *Proc) Sleep(d time.Duration) {
	p.env.scheduleProc(d, p)
	p.park()
}

// Yield re-queues the proc at the current time, letting other pending
// events at this timestamp run first.
func (p *Proc) Yield() { p.Sleep(0) }
