package devent

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var got []int
	env.Schedule(3*time.Second, func() { got = append(got, 3) })
	env.Schedule(1*time.Second, func() { got = append(got, 1) })
	env.Schedule(2*time.Second, func() { got = append(got, 2) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("order = %v", got)
	}
	if env.Now() != 3*time.Second {
		t.Fatalf("Now = %v", env.Now())
	}
}

func TestScheduleTieBreaksBySeq(t *testing.T) {
	env := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	env := NewEnv()
	fired := false
	tm := env.Schedule(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	env := NewEnv()
	env.Schedule(5*time.Second, func() {
		env.Schedule(-time.Second, func() {
			if env.Now() != 5*time.Second {
				t.Errorf("Now = %v", env.Now())
			}
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	env := NewEnv()
	var wake time.Duration
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(7 * time.Second)
		wake = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 7*time.Second {
		t.Fatalf("woke at %v", wake)
	}
}

func TestProcDoneEvent(t *testing.T) {
	env := NewEnv()
	p := env.Spawn("worker", func(p *Proc) { p.Sleep(time.Second) })
	var doneAt time.Duration = -1
	env.Spawn("watcher", func(w *Proc) {
		w.Wait(p.Done())
		doneAt = w.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != time.Second {
		t.Fatalf("done observed at %v", doneAt)
	}
}

func TestEventFireValueAndWaiters(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	results := make([]any, 0, 3)
	for i := 0; i < 3; i++ {
		env.Spawn("waiter", func(p *Proc) {
			v, err := p.Wait(ev)
			if err != nil {
				t.Errorf("unexpected err: %v", err)
			}
			results = append(results, v)
		})
	}
	env.Schedule(2*time.Second, func() { ev.Fire(42) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("value = %v", v)
		}
	}
}

func TestEventFail(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	boom := errors.New("boom")
	var got error
	env.Spawn("waiter", func(p *Proc) { _, got = p.Wait(ev) })
	env.Schedule(time.Second, func() { ev.Fail(boom) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, boom) {
		t.Fatalf("err = %v", got)
	}
}

func TestEventFireTwicePanics(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	ev.Fire(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.Fire(2)
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	ev.Fire("x")
	var at time.Duration = -1
	env.Spawn("w", func(p *Proc) {
		v, _ := p.Wait(ev)
		if v != "x" {
			t.Errorf("v = %v", v)
		}
		at = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("waited until %v", at)
	}
}

func TestWaitTimeout(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	var err1, err2 error
	env.Spawn("timesout", func(p *Proc) { _, err1 = p.WaitTimeout(ev, time.Second) })
	env.Spawn("succeeds", func(p *Proc) { _, err2 = p.WaitTimeout(ev, 10*time.Second) })
	env.Schedule(5*time.Second, func() { ev.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err1, ErrTimeout) {
		t.Fatalf("err1 = %v", err1)
	}
	if err2 != nil {
		t.Fatalf("err2 = %v", err2)
	}
}

func TestOnFireAfterFired(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	ev.Fire(7)
	ran := false
	ev.OnFire(func(e *Event) { ran = e.Value() == 7 })
	if !ran {
		t.Fatal("callback should run immediately on fired event")
	}
}

func TestAnyOf(t *testing.T) {
	env := NewEnv()
	a, b := env.NewNamedEvent("a"), env.NewNamedEvent("b")
	any := AnyOf(env, a, b)
	var winner *Event
	env.Spawn("w", func(p *Proc) {
		v, _ := p.Wait(any)
		winner = v.(*Event)
	})
	env.Schedule(2*time.Second, func() { b.Fire("bee") })
	env.Schedule(3*time.Second, func() { a.Fire("ay") })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if winner != b || winner.Value() != "bee" {
		t.Fatalf("winner = %v", winner)
	}
}

func TestAllOf(t *testing.T) {
	env := NewEnv()
	a, b, c := env.NewEvent(), env.NewEvent(), env.NewEvent()
	all := AllOf(env, a, b, c)
	var doneAt time.Duration = -1
	env.Spawn("w", func(p *Proc) {
		_, err := p.Wait(all)
		if err != nil {
			t.Errorf("err = %v", err)
		}
		doneAt = p.Now()
	})
	env.Schedule(1*time.Second, func() { a.Fire(nil) })
	env.Schedule(3*time.Second, func() { c.Fire(nil) })
	env.Schedule(2*time.Second, func() { b.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Second {
		t.Fatalf("all fired at %v", doneAt)
	}
}

func TestAllOfPropagatesError(t *testing.T) {
	env := NewEnv()
	a, b := env.NewEvent(), env.NewEvent()
	all := AllOf(env, a, b)
	boom := errors.New("boom")
	var got error
	env.Spawn("w", func(p *Proc) { _, got = p.Wait(all) })
	env.Schedule(1*time.Second, func() { a.Fail(boom) })
	env.Schedule(2*time.Second, func() { b.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, boom) {
		t.Fatalf("got = %v", got)
	}
}

func TestAllOfEmptyFiresImmediately(t *testing.T) {
	env := NewEnv()
	all := AllOf(env)
	if !all.Fired() {
		t.Fatal("empty AllOf should fire immediately")
	}
}

func TestChanUnbufferedRendezvous(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0)
	var recvAt, sendDoneAt time.Duration
	var got int
	env.Spawn("sender", func(p *Proc) {
		p.Sleep(time.Second)
		c.Send(p, 99)
		sendDoneAt = p.Now()
	})
	env.Spawn("receiver", func(p *Proc) {
		p.Sleep(5 * time.Second)
		got, _ = c.Recv(p)
		recvAt = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 || recvAt != 5*time.Second || sendDoneAt != 5*time.Second {
		t.Fatalf("got=%d recvAt=%v sendDoneAt=%v", got, recvAt, sendDoneAt)
	}
}

func TestChanBufferedFIFO(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 3)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 6; i++ {
			c.Send(p, i)
		}
		c.Close()
	})
	env.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Sleep(time.Millisecond)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4 5]" {
		t.Fatalf("got = %v", got)
	}
}

func TestChanSendBlocksWhenFull(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 1)
	var sendDone time.Duration = -1
	env.Spawn("sender", func(p *Proc) {
		c.Send(p, 1) // fills buffer
		c.Send(p, 2) // blocks until receiver drains
		sendDone = p.Now()
	})
	env.Spawn("receiver", func(p *Proc) {
		p.Sleep(4 * time.Second)
		c.Recv(p)
	})
	if err := env.Run(); err == nil || !errors.Is(err, ErrDeadlock) {
		// value 2 is still in buffer with no receiver left: the sender
		// completed, so no deadlock is expected.
		if err != nil {
			t.Fatal(err)
		}
	}
	if sendDone != 4*time.Second {
		t.Fatalf("second send completed at %v", sendDone)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	env := NewEnv()
	c := NewChan[string](env, 0)
	var ok = true
	env.Spawn("receiver", func(p *Proc) { _, ok = c.Recv(p) })
	env.Schedule(time.Second, func() { c.Close() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("recv on closed chan should report !ok")
	}
}

func TestChanRecvDrainsBufferAfterClose(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 2)
	c.TrySend(1)
	c.TrySend(2)
	c.Close()
	var got []int
	env.Spawn("r", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("got = %v", got)
	}
}

func TestChanRecvOrCancel(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0)
	cancel := env.NewEvent()
	var cancelled bool
	env.Spawn("r", func(p *Proc) { _, _, cancelled = c.RecvOr(p, cancel) })
	env.Schedule(time.Second, func() { cancel.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !cancelled {
		t.Fatal("expected cancellation")
	}
}

func TestChanRecvOrAlreadyCancelled(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0)
	cancel := env.NewEvent()
	cancel.Fire(nil)
	var cancelled bool
	env.Spawn("r", func(p *Proc) { _, _, cancelled = c.RecvOr(p, cancel) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !cancelled {
		t.Fatal("expected immediate cancellation")
	}
}

func TestChanTryOps(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 1)
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan succeeded")
	}
	if !c.TrySend(5) {
		t.Fatal("TrySend into empty buffer failed")
	}
	if c.TrySend(6) {
		t.Fatal("TrySend into full buffer succeeded")
	}
	if v, ok := c.TryRecv(); !ok || v != 5 {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
}

func TestResourceFIFOAndBlocking(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var order []string
	env.Spawn("a", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(10 * time.Second)
		r.Release(2)
	})
	env.Spawn("big", func(p *Proc) {
		p.Sleep(time.Second)
		r.Acquire(p, 2) // queues first
		order = append(order, "big")
		r.Release(2)
	})
	env.Spawn("small", func(p *Proc) {
		p.Sleep(2 * time.Second)
		r.Acquire(p, 1) // must NOT jump the queue
		order = append(order, "small")
		r.Release(1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[big small]" {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 3)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) of 3 failed")
	}
	if r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) with 1 free succeeded")
	}
	if r.Available() != 1 || r.InUse() != 2 {
		t.Fatalf("avail=%d inuse=%d", r.Available(), r.InUse())
	}
	r.Release(2)
	if r.Available() != 3 {
		t.Fatalf("avail=%d", r.Available())
	}
}

func TestResourceOverRelease(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	r.Release(1)
}

func TestResourceAcquireBeyondCapacityPanics(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var panicked bool
	env.Spawn("p", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		r.Acquire(p, 2)
	})
	_ = env.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestResourceAcquireOrCancel(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	cancel := env.NewEvent()
	var got bool = true
	env.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Second)
		r.Release(1)
	})
	env.Spawn("waiter", func(p *Proc) {
		p.Sleep(time.Second)
		got = r.AcquireOr(p, 1, cancel)
	})
	env.Schedule(2*time.Second, func() { cancel.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("expected AcquireOr to be cancelled")
	}
	if r.Queued() != 0 {
		t.Fatalf("queued = %d", r.Queued())
	}
}

func TestResourceCancelUnblocksLaterWaiter(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	cancel := env.NewEvent()
	var smallGotAt time.Duration = -1
	env.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Second)
		r.Release(1)
	})
	env.Spawn("big", func(p *Proc) {
		p.Sleep(time.Second)
		r.AcquireOr(p, 2, cancel) // blocks, then cancelled at t=2
	})
	env.Spawn("small", func(p *Proc) {
		p.Sleep(1500 * time.Millisecond)
		r.Acquire(p, 1) // blocked behind big until cancel
		smallGotAt = p.Now()
		r.Release(1)
	})
	env.Schedule(2*time.Second, func() { cancel.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if smallGotAt != 2*time.Second {
		t.Fatalf("small acquired at %v", smallGotAt)
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	env.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	err := env.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	fired := false
	env.Schedule(10*time.Second, func() { fired = true })
	if err := env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("future event fired early")
	}
	if env.Now() != 5*time.Second {
		t.Fatalf("Now = %v", env.Now())
	}
	if err := env.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired || env.Now() != 20*time.Second {
		t.Fatalf("fired=%v now=%v", fired, env.Now())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	env := NewEnv()
	env.Spawn("bomb", func(p *Proc) {
		p.Sleep(time.Second)
		panic("kaboom")
	})
	err := env.Run()
	if err == nil {
		t.Fatal("expected error from panicking proc")
	}
}

func TestEnvFailAborts(t *testing.T) {
	env := NewEnv()
	boom := errors.New("stop")
	ran := false
	env.Schedule(time.Second, func() { env.Fail(boom) })
	env.Schedule(2*time.Second, func() { ran = true })
	err := env.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("event after failure ran")
	}
}

func TestSpawnFromProc(t *testing.T) {
	env := NewEnv()
	var childAt time.Duration = -1
	env.Spawn("parent", func(p *Proc) {
		p.Sleep(3 * time.Second)
		child := p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childAt = c.Now()
		})
		p.Wait(child.Done())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 4*time.Second {
		t.Fatalf("childAt = %v", childAt)
	}
}

// TestDeterminism runs an identical randomized workload twice and
// requires bit-identical observable traces.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []string {
		env := NewEnv()
		rng := rand.New(rand.NewSource(seed))
		var out []string
		c := NewChan[int](env, 2)
		r := NewResource(env, 3)
		for i := 0; i < 8; i++ {
			i := i
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			env.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				r.Acquire(p, 1+i%2)
				c.Send(p, i)
				p.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
				v, _ := c.Recv(p)
				out = append(out, fmt.Sprintf("%d@%v got %d", i, p.Now(), v))
				r.Release(1 + i%2)
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic:\n%v\n%v", a, b)
	}
}

// Property: for any set of delays, callbacks execute in nondecreasing
// time order and the clock ends at the max delay.
func TestQuickScheduleMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		env := NewEnv()
		var times []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			env.Schedule(d, func() { times = append(times, env.Now()) })
		}
		if err := env.Run(); err != nil {
			return false
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		var max time.Duration
		for _, r := range raw {
			if d := time.Duration(r) * time.Millisecond; d > max {
				max = d
			}
		}
		return env.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: resource never exceeds capacity and all acquirers finish.
func TestQuickResourceInvariant(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		n := int(nRaw%20) + 1
		env := NewEnv()
		rng := rand.New(rand.NewSource(seed))
		r := NewResource(env, capacity)
		violated := false
		finished := 0
		for i := 0; i < n; i++ {
			want := rng.Intn(capacity) + 1
			hold := time.Duration(rng.Intn(50)) * time.Millisecond
			start := time.Duration(rng.Intn(50)) * time.Millisecond
			env.Spawn("u", func(p *Proc) {
				p.Sleep(start)
				r.Acquire(p, want)
				if r.InUse() > r.Cap() {
					violated = true
				}
				p.Sleep(hold)
				r.Release(want)
				finished++
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		return !violated && finished == n && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonProcsAreNotDeadlocks(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0)
	worker := env.Spawn("daemon-worker", func(p *Proc) {
		for {
			if _, ok := c.Recv(p); !ok {
				return
			}
		}
	})
	worker.SetDaemon(true)
	env.Spawn("client", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	// A non-daemon in the same situation still trips detection.
	env2 := NewEnv()
	c2 := NewChan[int](env2, 0)
	env2.Spawn("worker", func(p *Proc) { c2.Recv(p) })
	if err := env2.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
}
