package devent

import (
	"fmt"
	"time"
)

// Event is a one-shot occurrence carrying a value or an error. Procs
// block on it with Wait; callbacks attach with OnFire. Events fire at
// most once: firing twice panics (use Fired to guard).
type Event struct {
	env     *Env
	name    string
	fired   bool
	value   any
	err     error
	waiters []*eventWaiter
	cbs     []func(*Event)
}

type eventWaiter struct {
	p     *Proc
	woken bool
}

// NewEvent returns an unfired event bound to the environment.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// NewNamedEvent returns an unfired event with a diagnostic name.
func (e *Env) NewNamedEvent(name string) *Event { return &Event{env: e, name: name} }

// Fired reports whether the event has fired (successfully or not).
func (ev *Event) Fired() bool { return ev.fired }

// Value returns the value the event fired with (nil before firing or
// after Fail).
func (ev *Event) Value() any { return ev.value }

// Err returns the error the event failed with, or nil.
func (ev *Event) Err() error { return ev.err }

// Fire completes the event successfully with value v, waking all
// waiters and running callbacks. Firing a fired event panics.
func (ev *Event) Fire(v any) { ev.fire(v, nil) }

// Fail completes the event with an error, waking all waiters and
// running callbacks. Failing a fired event panics.
func (ev *Event) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("devent: event %q failed with nil error", ev.name)
	}
	ev.fire(nil, err)
}

func (ev *Event) fire(v any, err error) {
	if ev.fired {
		panic(fmt.Sprintf("devent: event %q fired twice", ev.name))
	}
	ev.fired = true
	ev.value = v
	ev.err = err
	// Batch the fanout: waking N waiters individually costs N queue
	// items; instead collect the procs and hand off to each in order
	// from a single scheduled callback. Each waiter was queued before
	// any of them runs, so the relative order — waiters in
	// registration order, ahead of anything they schedule — is the
	// same as with per-waiter wakeups.
	switch len(ev.waiters) {
	case 0:
	case 1:
		if w := ev.waiters[0]; !w.woken {
			w.woken = true
			ev.env.wake(w.p)
		}
	default:
		procs := make([]*Proc, 0, len(ev.waiters))
		for _, w := range ev.waiters {
			if !w.woken {
				w.woken = true
				procs = append(procs, w.p)
			}
		}
		switch len(procs) {
		case 0:
		case 1:
			ev.env.wake(procs[0])
		default:
			env := ev.env
			env.scheduleFn(0, func() {
				for _, p := range procs {
					env.handoff(p)
				}
			})
		}
	}
	ev.waiters = nil
	cbs := ev.cbs
	ev.cbs = nil
	for _, cb := range cbs {
		cb(ev)
	}
}

// OnFire registers a callback invoked in sim context when the event
// fires. If the event already fired, the callback runs immediately.
func (ev *Event) OnFire(cb func(*Event)) {
	if ev.fired {
		cb(ev)
		return
	}
	ev.cbs = append(ev.cbs, cb)
}

func (ev *Event) addWaiter(w *eventWaiter) { ev.waiters = append(ev.waiters, w) }

func (ev *Event) removeWaiter(w *eventWaiter) {
	for i, x := range ev.waiters {
		if x == w {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return
		}
	}
}

// Wait blocks the proc until the event fires and returns its value and
// error. If the event already fired it returns immediately.
func (p *Proc) Wait(ev *Event) (any, error) {
	if ev.fired {
		return ev.value, ev.err
	}
	w := &eventWaiter{p: p}
	ev.addWaiter(w)
	p.park()
	return ev.value, ev.err
}

// WaitTimeout blocks until the event fires or d elapses. On timeout it
// returns (nil, ErrTimeout) and the proc is no longer waiting.
func (p *Proc) WaitTimeout(ev *Event, d time.Duration) (any, error) {
	if ev.fired {
		return ev.value, ev.err
	}
	w := &eventWaiter{p: p}
	ev.addWaiter(w)
	timedOut := false
	t := p.env.Schedule(d, func() {
		if w.woken {
			return
		}
		w.woken = true
		timedOut = true
		ev.removeWaiter(w)
		p.env.wake(p)
	})
	p.park()
	if timedOut {
		return nil, ErrTimeout
	}
	t.Cancel()
	return ev.value, ev.err
}

// AnyOf returns an event that fires as soon as any input event fires;
// its value is the first firing *Event (inspect its Value/Err). With no
// inputs the result never fires.
func AnyOf(e *Env, evs ...*Event) *Event {
	out := e.NewNamedEvent("anyOf")
	for _, ev := range evs {
		ev := ev
		ev.OnFire(func(src *Event) {
			if !out.fired {
				out.Fire(src)
			}
		})
		if out.fired {
			break
		}
	}
	return out
}

// AllOf returns an event that fires once every input event has fired;
// its value is a []*Event of the inputs in argument order. If any input
// fails, the output fails with the first such error (but still only
// after all inputs complete). With no inputs it fires immediately.
func AllOf(e *Env, evs ...*Event) *Event {
	out := e.NewNamedEvent("allOf")
	remaining := len(evs)
	if remaining == 0 {
		out.Fire([]*Event{})
		return out
	}
	for _, ev := range evs {
		ev.OnFire(func(*Event) {
			remaining--
			if remaining == 0 {
				for _, in := range evs {
					if in.err != nil {
						out.Fail(in.err)
						return
					}
				}
				out.Fire(append([]*Event(nil), evs...))
			}
		})
	}
	return out
}
