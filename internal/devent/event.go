package devent

import (
	"fmt"
	"time"
)

// Event is a one-shot occurrence carrying a value or an error. Procs
// block on it with Wait; callbacks attach with OnFire. Events fire at
// most once: firing twice panics (use Fired to guard).
type Event struct {
	env   *Env
	name  string
	fired bool
	value any
	err   error
	// w0 is the inline slot for the common single-waiter case (a proc
	// awaiting one future); the slice only materialises on fanout.
	w0      *eventWaiter
	waiters []*eventWaiter
	cbs     []func(*Event)
}

// eventWaiter links one parked proc to the event it awaits. Waiters
// are pooled on the Env (getWaiter/putWaiter): gen distinguishes a
// live waiter from a recycled one a stale timeout closure still
// references, and timed marks waiters owned by WaitTimeout, which
// releases them itself after the proc resumes.
type eventWaiter struct {
	p     *Proc
	woken bool
	timed bool
	gen   uint64
	next  *eventWaiter
}

func (e *Env) getWaiter(p *Proc) *eventWaiter {
	w := e.freeWaiter
	if w != nil {
		e.freeWaiter = w.next
		w.next = nil
	} else {
		w = &eventWaiter{}
	}
	w.p = p
	w.woken = false
	w.timed = false
	return w
}

func (e *Env) putWaiter(w *eventWaiter) {
	w.gen++
	w.p = nil
	w.next = e.freeWaiter
	e.freeWaiter = w
}

// getBatch pops a pooled proc buffer for fanout wakeups.
func (e *Env) getBatch() []*Proc {
	if n := len(e.freeBatches); n > 0 {
		b := e.freeBatches[n-1]
		e.freeBatches = e.freeBatches[:n-1]
		return b
	}
	return make([]*Proc, 0, 8)
}

func (e *Env) putBatch(b []*Proc) {
	for i := range b {
		b[i] = nil
	}
	e.freeBatches = append(e.freeBatches, b[:0])
}

// NewEvent returns an unfired event bound to the environment.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// NewNamedEvent returns an unfired event with a diagnostic name.
func (e *Env) NewNamedEvent(name string) *Event { return &Event{env: e, name: name} }

// Fired reports whether the event has fired (successfully or not).
func (ev *Event) Fired() bool { return ev.fired }

// Value returns the value the event fired with (nil before firing or
// after Fail).
func (ev *Event) Value() any { return ev.value }

// Err returns the error the event failed with, or nil.
func (ev *Event) Err() error { return ev.err }

// Fire completes the event successfully with value v, waking all
// waiters and running callbacks. Firing a fired event panics.
func (ev *Event) Fire(v any) { ev.fire(v, nil) }

// Fail completes the event with an error, waking all waiters and
// running callbacks. Failing a fired event panics.
func (ev *Event) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("devent: event %q failed with nil error", ev.name)
	}
	ev.fire(nil, err)
}

func (ev *Event) fire(v any, err error) {
	if ev.fired {
		panic(fmt.Sprintf("devent: event %q fired twice", ev.name))
	}
	ev.fired = true
	ev.value = v
	ev.err = err
	env := ev.env
	// Collect live waiters in registration order into a pooled batch.
	// Plain Wait waiters return to the pool here (their proc never
	// touches them after parking); timed waiters are released by
	// WaitTimeout once the proc resumes.
	batch := env.getBatch()
	if w := ev.w0; w != nil {
		ev.w0 = nil
		if !w.woken {
			w.woken = true
			batch = append(batch, w.p)
			if !w.timed {
				env.putWaiter(w)
			}
		}
	}
	for _, w := range ev.waiters {
		if !w.woken {
			w.woken = true
			batch = append(batch, w.p)
			if !w.timed {
				env.putWaiter(w)
			}
		}
	}
	ev.waiters = nil
	// Batch the fanout: waking N waiters individually costs N queue
	// items; instead hand off to each in order from a single scheduled
	// callback. Each waiter was queued before any of them runs, so the
	// relative order — waiters in registration order, ahead of anything
	// they schedule — is the same as with per-waiter wakeups.
	switch len(batch) {
	case 0:
		env.putBatch(batch)
	case 1:
		p := batch[0]
		env.putBatch(batch)
		env.wake(p)
	default:
		env.scheduleFn(0, func() {
			for _, p := range batch {
				env.handoff(p)
			}
			env.putBatch(batch)
		})
	}
	cbs := ev.cbs
	ev.cbs = nil
	for _, cb := range cbs {
		cb(ev)
	}
}

// OnFire registers a callback invoked in sim context when the event
// fires. If the event already fired, the callback runs immediately.
func (ev *Event) OnFire(cb func(*Event)) {
	if ev.fired {
		cb(ev)
		return
	}
	ev.cbs = append(ev.cbs, cb)
}

func (ev *Event) addWaiter(w *eventWaiter) {
	if ev.w0 == nil && len(ev.waiters) == 0 {
		ev.w0 = w
		return
	}
	ev.waiters = append(ev.waiters, w)
}

func (ev *Event) removeWaiter(w *eventWaiter) {
	if ev.w0 == w {
		ev.w0 = nil
		return
	}
	for i, x := range ev.waiters {
		if x == w {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return
		}
	}
}

// Wait blocks the proc until the event fires and returns its value and
// error. If the event already fired it returns immediately.
func (p *Proc) Wait(ev *Event) (any, error) {
	if ev.fired {
		return ev.value, ev.err
	}
	w := p.env.getWaiter(p)
	ev.addWaiter(w)
	p.park()
	return ev.value, ev.err
}

// WaitTimeout blocks until the event fires or d elapses. On timeout it
// returns (nil, ErrTimeout) and the proc is no longer waiting.
func (p *Proc) WaitTimeout(ev *Event, d time.Duration) (any, error) {
	if ev.fired {
		return ev.value, ev.err
	}
	w := p.env.getWaiter(p)
	w.timed = true
	wgen := w.gen
	ev.addWaiter(w)
	timedOut := false
	t := p.env.Schedule(d, func() {
		// gen guards against the waiter being recycled before a stale
		// (uncancellable-in-time) timer pops.
		if w.gen != wgen || w.woken {
			return
		}
		w.woken = true
		timedOut = true
		ev.removeWaiter(w)
		p.env.wake(p)
	})
	p.park()
	p.env.putWaiter(w)
	if timedOut {
		return nil, ErrTimeout
	}
	t.Cancel()
	return ev.value, ev.err
}

// AnyOf returns an event that fires as soon as any input event fires;
// its value is the first firing *Event (inspect its Value/Err). With no
// inputs the result never fires.
func AnyOf(e *Env, evs ...*Event) *Event {
	out := e.NewNamedEvent("anyOf")
	for _, ev := range evs {
		ev := ev
		ev.OnFire(func(src *Event) {
			if !out.fired {
				out.Fire(src)
			}
		})
		if out.fired {
			break
		}
	}
	return out
}

// AllOf returns an event that fires once every input event has fired;
// its value is a []*Event of the inputs in argument order. If any input
// fails, the output fails with the first such error (but still only
// after all inputs complete). With no inputs it fires immediately.
func AllOf(e *Env, evs ...*Event) *Event {
	out := e.NewNamedEvent("allOf")
	remaining := len(evs)
	if remaining == 0 {
		out.Fire([]*Event{})
		return out
	}
	for _, ev := range evs {
		ev.OnFire(func(*Event) {
			remaining--
			if remaining == 0 {
				for _, in := range evs {
					if in.err != nil {
						out.Fail(in.err)
						return
					}
				}
				out.Fire(append([]*Event(nil), evs...))
			}
		})
	}
	return out
}
