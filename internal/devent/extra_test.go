package devent

import (
	"errors"
	"testing"
	"time"
)

func TestWaitTimeoutOnFiredEvent(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	ev.Fire("v")
	env.Spawn("w", func(p *Proc) {
		v, err := p.WaitTimeout(ev, time.Second)
		if err != nil || v != "v" {
			t.Errorf("v=%v err=%v", v, err)
		}
		if p.Now() != 0 {
			t.Errorf("waited: %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAnyOfWithPreFiredInput(t *testing.T) {
	env := NewEnv()
	a := env.NewEvent()
	a.Fire(1)
	b := env.NewEvent()
	out := AnyOf(env, a, b)
	if !out.Fired() || out.Value() != a {
		t.Fatalf("out = %+v", out)
	}
}

func TestChanSendOrCancel(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0) // no receiver ever
	cancel := env.NewEvent()
	var delivered = true
	env.Spawn("s", func(p *Proc) {
		delivered = c.SendOr(p, 7, cancel)
	})
	env.Schedule(time.Second, func() { cancel.Fire(nil) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("send should have been cancelled")
	}
}

func TestChanSendOrClosed(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0)
	c.Close()
	env.Spawn("s", func(p *Proc) {
		if c.SendOr(p, 1, nil) {
			t.Error("send on closed chan succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanCloseTwicePanics(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 0)
	c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Close()
}

func TestRunUntilThenContinue(t *testing.T) {
	env := NewEnv()
	var done bool
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Second)
		done = true
	})
	if err := env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("woke early")
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || env.Now() != 10*time.Second {
		t.Fatalf("done=%v now=%v", done, env.Now())
	}
}

func TestScheduleFromCallback(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Schedule(time.Second, func() {
		order = append(order, 1)
		env.Schedule(time.Second, func() { order = append(order, 2) })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || env.Now() != 2*time.Second {
		t.Fatalf("order=%v now=%v", order, env.Now())
	}
}

func TestTimerWhen(t *testing.T) {
	env := NewEnv()
	tm := env.Schedule(3*time.Second, func() {})
	if tm.When() != 3*time.Second {
		t.Fatalf("when = %v", tm.When())
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerWhenNilSafety(t *testing.T) {
	var nilT *Timer
	if nilT.When() != 0 {
		t.Fatalf("nil timer When = %v", nilT.When())
	}
	if nilT.Active() || nilT.Cancel() {
		t.Fatal("nil timer reported active/cancellable")
	}
	var zero Timer
	if zero.When() != 0 {
		t.Fatalf("zero timer When = %v", zero.When())
	}
	env := NewEnv()
	tm := env.Schedule(5*time.Second, func() {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// A fired timer must still report its deadline, not crash.
	if tm.When() != 5*time.Second {
		t.Fatalf("fired timer When = %v", tm.When())
	}
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
}

func TestStaleTimerHandleAfterReuse(t *testing.T) {
	env := NewEnv()
	t1 := env.Schedule(time.Second, func() {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// t1's queue item is now recycled; the next Schedule reuses it.
	var fired bool
	t2 := env.Schedule(time.Second, func() { fired = true })
	if t1.Cancel() {
		t.Fatal("stale handle cancelled a recycled item")
	}
	if !t2.Active() {
		t.Fatal("t2 inactive after stale cancel")
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("t2 did not fire")
	}
}

func TestCancelledTimerCompaction(t *testing.T) {
	env := NewEnv()
	const n = 4096
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = env.Schedule(time.Duration(i+1)*time.Hour, func() {})
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	// Compaction triggers once cancelled items exceed half the queue;
	// after cancelling everything the heap must be (near) empty, not
	// retaining n dead items until their far-future deadlines pop.
	if got := len(env.queue); got > compactThreshold {
		t.Fatalf("queue retains %d cancelled items (want <= %d)", got, compactThreshold)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 0 {
		t.Fatalf("cancelled timers advanced the clock to %v", env.Now())
	}
}

func TestEventFailNilError(t *testing.T) {
	env := NewEnv()
	ev := env.NewNamedEvent("x")
	ev.Fail(nil) // must synthesize an error rather than store nil
	if ev.Err() == nil {
		t.Fatal("nil error stored")
	}
}

func TestProcNameAndEnvAccessors(t *testing.T) {
	env := NewEnv()
	p := env.Spawn("worker", func(p *Proc) {
		if p.Env() != env {
			t.Error("Env mismatch")
		}
	})
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceQueuedCount(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	env.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(2 * time.Second)
		r.Release(1)
	})
	for i := 0; i < 3; i++ {
		env.Spawn("waiter", func(p *Proc) {
			p.Sleep(time.Second)
			r.Acquire(p, 1)
			r.Release(1)
		})
	}
	env.Schedule(1500*time.Millisecond, func() {
		if r.Queued() != 3 {
			t.Errorf("queued = %d", r.Queued())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReentrantRunErrors(t *testing.T) {
	env := NewEnv()
	var innerErr error
	env.Schedule(0, func() { innerErr = env.Run() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Fatal("re-entrant Run accepted")
	}
}

func TestChanLenCapClosed(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, 2)
	if c.Cap() != 2 || c.Len() != 0 || c.Closed() {
		t.Fatal("fresh chan state")
	}
	c.TrySend(1)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Close()
	if !c.Closed() {
		t.Fatal("not closed")
	}
	// Drain still works.
	if v, ok := c.TryRecv(); !ok || v != 1 {
		t.Fatalf("drain: %v %v", v, ok)
	}
}

func TestNegativeChanCapacity(t *testing.T) {
	env := NewEnv()
	c := NewChan[int](env, -5)
	if c.Cap() != 0 {
		t.Fatalf("cap = %d", c.Cap())
	}
}

func TestDeadlockErrorListsProcs(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	env.Spawn("alpha", func(p *Proc) { p.Wait(ev) })
	env.Spawn("beta", func(p *Proc) { p.Wait(ev) })
	err := env.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	msg := err.Error()
	if !contains(msg, "alpha") || !contains(msg, "beta") {
		t.Fatalf("message lacks proc names: %s", msg)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
