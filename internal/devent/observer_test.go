package devent

import (
	"testing"
	"time"
)

// countingObserver records hook invocations.
type countingObserver struct {
	spawned, exited, dispatched int
	lastAt                      time.Duration
}

func (o *countingObserver) ProcSpawned(name string, at time.Duration) { o.spawned++; o.lastAt = at }
func (o *countingObserver) ProcExited(name string, at time.Duration)  { o.exited++; o.lastAt = at }
func (o *countingObserver) Dispatched(at time.Duration)               { o.dispatched++; o.lastAt = at }

func TestObserverHooks(t *testing.T) {
	env := NewEnv()
	var o countingObserver
	env.SetObserver(&o)
	env.Spawn("a", func(p *Proc) {
		p.Sleep(time.Second)
		env.Spawn("b", func(p *Proc) { p.Sleep(time.Second) })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if o.spawned != 2 || o.exited != 2 {
		t.Errorf("spawned=%d exited=%d", o.spawned, o.exited)
	}
	if o.dispatched == 0 {
		t.Error("no dispatch events observed")
	}
	if o.lastAt != 2*time.Second {
		t.Errorf("last hook at %v", o.lastAt)
	}
}

func TestObserverNilIsDefault(t *testing.T) {
	// No observer installed: the env runs exactly as before.
	env := NewEnv()
	ran := false
	env.Spawn("p", func(p *Proc) { p.Sleep(time.Millisecond); ran = true })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("proc did not run")
	}
}
