package devent

// Resource is a counting resource (semaphore) with FIFO granting:
// requests are satisfied strictly in arrival order, so a large request
// at the head blocks later small ones (no starvation).
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waitq    []*resWaiter
}

type resWaiter struct {
	p         *Proc
	n         int
	woken     bool
	granted   bool
	cancelled bool
}

// NewResource returns a resource with the given capacity (units).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 0 {
		capacity = 0
	}
	return &Resource{env: env, capacity: capacity}
}

// Cap reports the total capacity.
func (r *Resource) Cap() int { return r.capacity }

// InUse reports currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Available reports free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// Queued reports the number of waiting acquirers.
func (r *Resource) Queued() int {
	n := 0
	for _, w := range r.waitq {
		if !w.woken {
			n++
		}
	}
	return n
}

// Acquire blocks the proc until n units are available and takes them.
// Requesting more than the capacity panics (it could never succeed).
func (r *Resource) Acquire(p *Proc, n int) {
	if !r.AcquireOr(p, n, nil) {
		panic("devent: Acquire failed without cancel event")
	}
}

// AcquireOr is Acquire with an optional cancel event; it reports
// whether the units were acquired (false means cancel fired first).
func (r *Resource) AcquireOr(p *Proc, n int, cancel *Event) bool {
	if n <= 0 {
		return true
	}
	if n > r.capacity {
		panic("devent: Acquire request exceeds resource capacity")
	}
	if len(r.waitq) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	w := &resWaiter{p: p, n: n}
	r.waitq = append(r.waitq, w)
	if cancel != nil {
		cancel.OnFire(func(*Event) {
			if w.woken {
				return
			}
			w.woken = true
			w.cancelled = true
			r.remove(w)
			r.env.wake(p)
		})
	}
	p.park()
	return w.granted
}

// TryAcquire takes n units if immediately available (and no earlier
// waiter is queued), reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if len(r.waitq) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and grants queued requests in FIFO order.
// Releasing more than is in use panics: it indicates a bookkeeping bug.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	if n > r.inUse {
		panic("devent: Release of units not acquired")
	}
	r.inUse -= n
	r.grant()
}

func (r *Resource) grant() {
	for len(r.waitq) > 0 {
		w := r.waitq[0]
		if w.woken {
			r.waitq = r.waitq[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			return // FIFO: head must be granted first
		}
		r.waitq = r.waitq[1:]
		r.inUse += w.n
		w.woken = true
		w.granted = true
		r.env.wake(w.p)
	}
}

func (r *Resource) remove(w *resWaiter) {
	for i, x := range r.waitq {
		if x == w {
			r.waitq = append(r.waitq[:i], r.waitq[i+1:]...)
			// The head may have changed; try granting.
			r.grant()
			return
		}
	}
}
