// Package deviceplugin ports the Kubernetes device-plugin resource
// model onto the simulated node — the other common home for GPU
// partitioning that the paper contrasts with Parsl ("many FaaS
// platforms ... run on Kubernetes which only has limited GPU sharing
// support", §1).
//
// Mirroring the NVIDIA k8s device plugin:
//
//   - whole GPUs advertise as "nvidia.com/gpu";
//   - with MIGStrategy "mixed", MIG instances advertise as
//     "nvidia.com/mig-<profile>" (e.g. nvidia.com/mig-3g.40gb);
//   - with MIGStrategy "single", a uniform MIG layout advertises its
//     instances as plain "nvidia.com/gpu";
//   - a Sharing config replicates each whole GPU N ways, either by
//     time-slicing (no isolation) or MPS (each replica gets an equal
//     GPU percentage).
//
// Allocate returns the container environment — the same variables the
// Parsl executor exports (gpuctl.Binding) — so both control planes
// share one binding mechanism.
package deviceplugin

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gpuctl"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// Resource name constants.
const (
	ResourceGPU       = "nvidia.com/gpu"
	resourceMIGPrefix = "nvidia.com/mig-"
)

// MIG strategies, as in the NVIDIA device plugin.
const (
	MIGStrategyNone   = "none"
	MIGStrategySingle = "single"
	MIGStrategyMixed  = "mixed"
)

// Sharing strategies.
const (
	SharingTimeSlicing = "time-slicing"
	SharingMPS         = "mps"
)

// ErrExhausted is returned when no device of the requested resource is
// free.
var ErrExhausted = errors.New("deviceplugin: resource exhausted")

// ErrNotAllocated is returned when freeing a device that is not held.
var ErrNotAllocated = errors.New("deviceplugin: device not allocated")

// SharingConfig replicates whole GPUs for co-tenancy.
type SharingConfig struct {
	// Strategy is SharingTimeSlicing or SharingMPS.
	Strategy string
	// Replicas is how many containers may share one GPU.
	Replicas int
}

// Config selects the advertisement policy.
type Config struct {
	// MIGStrategy is none, single, or mixed.
	MIGStrategy string
	// Sharing, when non-nil, replicates non-MIG GPUs.
	Sharing *SharingConfig
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.MIGStrategy {
	case "", MIGStrategyNone, MIGStrategySingle, MIGStrategyMixed:
	default:
		return fmt.Errorf("deviceplugin: unknown MIG strategy %q", c.MIGStrategy)
	}
	if c.Sharing != nil {
		if c.Sharing.Strategy != SharingTimeSlicing && c.Sharing.Strategy != SharingMPS {
			return fmt.Errorf("deviceplugin: unknown sharing strategy %q", c.Sharing.Strategy)
		}
		if c.Sharing.Replicas < 2 {
			return fmt.Errorf("deviceplugin: sharing needs >=2 replicas, got %d", c.Sharing.Replicas)
		}
	}
	return nil
}

// Device is one advertised allocatable unit.
type Device struct {
	// ID is unique on the node, e.g. "gpu0", "gpu0::2" (replica), or
	// a MIG UUID.
	ID string
	// Resource is the extended-resource name it counts against.
	Resource string
	// Healthy mirrors the device-plugin health bit.
	Healthy bool
}

// AllocateResponse carries the container environment for a granted
// device set.
type AllocateResponse struct {
	// Envs are the variables to inject into the container.
	Envs map[string]string
}

// Plugin advertises and allocates the node's accelerators.
type Plugin struct {
	node      *gpuctl.Node
	cfg       Config
	allocated map[string]bool
}

// New creates a plugin over the node.
func New(node *gpuctl.Node, cfg Config) (*Plugin, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MIGStrategy == "" {
		cfg.MIGStrategy = MIGStrategyNone
	}
	return &Plugin{node: node, cfg: cfg, allocated: make(map[string]bool)}, nil
}

// ListDevices enumerates the advertised devices (the ListAndWatch
// payload), sorted by ID for determinism.
func (p *Plugin) ListDevices() []Device {
	var out []Device
	for i, dev := range p.node.Devices() {
		if dev.MIGEnabled() {
			out = append(out, p.migDevices(dev)...)
			continue
		}
		out = append(out, p.wholeDevices(i, dev)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

func (p *Plugin) wholeDevices(idx int, dev *simgpu.Device) []Device {
	if p.cfg.Sharing == nil {
		return []Device{{ID: strconv.Itoa(idx), Resource: ResourceGPU, Healthy: true}}
	}
	out := make([]Device, p.cfg.Sharing.Replicas)
	for r := range out {
		out[r] = Device{
			ID:       fmt.Sprintf("%d::%d", idx, r),
			Resource: ResourceGPU,
			Healthy:  true,
		}
	}
	return out
}

func (p *Plugin) migDevices(dev *simgpu.Device) []Device {
	var out []Device
	switch p.cfg.MIGStrategy {
	case MIGStrategyNone:
		// MIG-enabled GPUs disappear from the inventory (and would be
		// marked unhealthy by the real plugin).
		return nil
	case MIGStrategySingle:
		// Uniform layouts advertise as plain GPUs; mixed layouts are a
		// misconfiguration and advertise nothing.
		profiles := map[string]bool{}
		for _, in := range dev.Instances() {
			profiles[in.Profile().Name] = true
		}
		if len(profiles) != 1 {
			return nil
		}
		for _, in := range dev.Instances() {
			out = append(out, Device{ID: in.UUID(), Resource: ResourceGPU, Healthy: true})
		}
	case MIGStrategyMixed:
		for _, in := range dev.Instances() {
			out = append(out, Device{
				ID:       in.UUID(),
				Resource: resourceMIGPrefix + in.Profile().Name,
				Healthy:  true,
			})
		}
	}
	return out
}

// Capacity returns the advertised count per resource name.
func (p *Plugin) Capacity() map[string]int {
	caps := map[string]int{}
	for _, d := range p.ListDevices() {
		caps[d.Resource]++
	}
	return caps
}

// Available returns unallocated counts per resource name.
func (p *Plugin) Available() map[string]int {
	avail := map[string]int{}
	for _, d := range p.ListDevices() {
		if !p.allocated[d.ID] {
			avail[d.Resource]++
		}
	}
	return avail
}

// AllocateAny grants n devices of the named resource, choosing the
// lowest free IDs, and returns their container environment.
func (p *Plugin) AllocateAny(resource string, n int) ([]string, *AllocateResponse, error) {
	var ids []string
	for _, d := range p.ListDevices() {
		if d.Resource == resource && !p.allocated[d.ID] {
			ids = append(ids, d.ID)
			if len(ids) == n {
				break
			}
		}
	}
	if len(ids) < n {
		return nil, nil, fmt.Errorf("%w: %s (want %d, free %d)", ErrExhausted, resource, n, len(ids))
	}
	resp, err := p.Allocate(ids)
	if err != nil {
		return nil, nil, err
	}
	return ids, resp, nil
}

// Allocate grants the specific device IDs (the kubelet flow) and
// builds the container environment.
func (p *Plugin) Allocate(ids []string) (*AllocateResponse, error) {
	known := map[string]Device{}
	for _, d := range p.ListDevices() {
		known[d.ID] = d
	}
	for _, id := range ids {
		d, ok := known[id]
		if !ok {
			return nil, fmt.Errorf("deviceplugin: unknown device %q", id)
		}
		if p.allocated[id] {
			return nil, fmt.Errorf("%w: %s already allocated", ErrExhausted, id)
		}
		_ = d
	}
	var visible []string
	pct := 0
	for _, id := range ids {
		accel, replica, hasReplica := splitReplica(id)
		visible = append(visible, accel)
		if hasReplica && p.cfg.Sharing != nil && p.cfg.Sharing.Strategy == SharingMPS {
			share, err := p.replicaShare(accel, replica)
			if err != nil {
				return nil, err
			}
			// A container holding several replicas gets their combined
			// percentage.
			pct += share
		}
		p.allocated[id] = true
	}
	env := map[string]string{gpuctl.EnvVisibleDevices: strings.Join(visible, ",")}
	if pct > 0 {
		env[gpuctl.EnvMPSThreadPct] = strconv.Itoa(pct)
	}
	return &AllocateResponse{Envs: env}, nil
}

// Free releases previously allocated device IDs.
func (p *Plugin) Free(ids []string) error {
	for _, id := range ids {
		if !p.allocated[id] {
			return fmt.Errorf("%w: %s", ErrNotAllocated, id)
		}
	}
	for _, id := range ids {
		delete(p.allocated, id)
	}
	return nil
}

// replicaShare is replica r's GPU percentage under MPS sharing:
// the device's SMs are apportioned across Replicas by largest
// remainder (rightsize.EqualShares), so the shares sum to exactly 100
// — naive 100/Replicas truncation stranded up to Replicas-1 percent
// (3 replicas got 33+33+33 = 99%).
func (p *Plugin) replicaShare(accel string, r int) (int, error) {
	idx, err := strconv.Atoi(accel)
	if err != nil {
		return 0, fmt.Errorf("deviceplugin: replica on non-GPU id %q: %v", accel, err)
	}
	devs := p.node.Devices()
	if idx < 0 || idx >= len(devs) {
		return 0, fmt.Errorf("deviceplugin: device index %d out of range", idx)
	}
	shares, err := rightsize.EqualShares(devs[idx].Spec(), p.cfg.Sharing.Replicas)
	if err != nil {
		return 0, err
	}
	if r < 0 || r >= len(shares) {
		return 0, fmt.Errorf("deviceplugin: replica index %d out of range", r)
	}
	return shares[r], nil
}

// splitReplica strips a "::n" replica suffix, returning the replica
// index and whether one was present.
func splitReplica(id string) (string, int, bool) {
	if i := strings.Index(id, "::"); i >= 0 {
		r, err := strconv.Atoi(id[i+2:])
		if err != nil {
			return id[:i], 0, false
		}
		return id[:i], r, true
	}
	return id, 0, false
}
