package deviceplugin

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/devent"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

func newNode(t *testing.T, nDev int) (*devent.Env, *gpuctl.Node, []*simgpu.Device) {
	t.Helper()
	env := devent.NewEnv()
	devs := make([]*simgpu.Device, nDev)
	for i := range devs {
		d, err := simgpu.NewDevice(env, "gpu"+string(rune('0'+i)), simgpu.A100SXM480GB())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	return env, gpuctl.NewNode(env, devs...), devs
}

func TestWholeGPUAdvertisement(t *testing.T) {
	_, node, _ := newNode(t, 2)
	p, err := New(node, Config{})
	if err != nil {
		t.Fatal(err)
	}
	devs := p.ListDevices()
	if len(devs) != 2 {
		t.Fatalf("devices = %v", devs)
	}
	if p.Capacity()[ResourceGPU] != 2 {
		t.Fatalf("capacity = %v", p.Capacity())
	}
}

func TestTimeSlicingReplicas(t *testing.T) {
	_, node, _ := newNode(t, 1)
	p, _ := New(node, Config{Sharing: &SharingConfig{Strategy: SharingTimeSlicing, Replicas: 4}})
	if got := p.Capacity()[ResourceGPU]; got != 4 {
		t.Fatalf("capacity = %d", got)
	}
	ids, resp, err := p.AllocateAny(ResourceGPU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Envs[gpuctl.EnvVisibleDevices] != "0" {
		t.Fatalf("env = %v", resp.Envs)
	}
	if _, ok := resp.Envs[gpuctl.EnvMPSThreadPct]; ok {
		t.Fatal("time-slicing should not export an MPS percentage")
	}
	if p.Available()[ResourceGPU] != 3 {
		t.Fatalf("available = %v", p.Available())
	}
	if err := p.Free(ids); err != nil {
		t.Fatal(err)
	}
	if p.Available()[ResourceGPU] != 4 {
		t.Fatalf("available after free = %v", p.Available())
	}
}

func TestMPSReplicasExportPercentage(t *testing.T) {
	_, node, _ := newNode(t, 1)
	p, _ := New(node, Config{Sharing: &SharingConfig{Strategy: SharingMPS, Replicas: 4}})
	_, resp, err := p.AllocateAny(ResourceGPU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Envs[gpuctl.EnvMPSThreadPct] != "25" {
		t.Fatalf("env = %v", resp.Envs)
	}
}

// MPS replica shares across one GPU must sum to exactly 100: naive
// 100/Replicas truncation gave 3 replicas 33+33+33 = 99%, stranding
// SMs. Shares are apportioned per replica index by largest remainder.
func TestMPSReplicaSharesSumToExactly100(t *testing.T) {
	for _, replicas := range []int{2, 3, 4, 5, 7} {
		_, node, _ := newNode(t, 1)
		p, _ := New(node, Config{Sharing: &SharingConfig{Strategy: SharingMPS, Replicas: replicas}})
		sum := 0
		for r := 0; r < replicas; r++ {
			id := "0::" + strconv.Itoa(r)
			resp, err := p.Allocate([]string{id})
			if err != nil {
				t.Fatalf("replicas=%d: allocate %s: %v", replicas, id, err)
			}
			pct, err := strconv.Atoi(resp.Envs[gpuctl.EnvMPSThreadPct])
			if err != nil {
				t.Fatalf("replicas=%d: bad pct %q", replicas, resp.Envs[gpuctl.EnvMPSThreadPct])
			}
			sum += pct
		}
		if sum != 100 {
			t.Fatalf("replicas=%d: shares sum to %d, want exactly 100", replicas, sum)
		}
	}
}

// One container holding several MPS replicas gets their combined
// percentage.
func TestMPSMultiReplicaAllocationCombinesShares(t *testing.T) {
	_, node, _ := newNode(t, 1)
	p, _ := New(node, Config{Sharing: &SharingConfig{Strategy: SharingMPS, Replicas: 3}})
	resp, err := p.Allocate([]string{"0::0", "0::1", "0::2"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Envs[gpuctl.EnvMPSThreadPct] != "100" {
		t.Fatalf("env = %v, want combined pct 100", resp.Envs)
	}
}

func TestMIGMixedStrategy(t *testing.T) {
	env, node, devs := newNode(t, 1)
	env.Spawn("admin", func(pr *devent.Proc) {
		devs[0].EnableMIG(pr)
		devs[0].CreateInstance("3g.40gb")
		devs[0].CreateInstance("2g.20gb")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	p, _ := New(node, Config{MIGStrategy: MIGStrategyMixed})
	caps := p.Capacity()
	if caps["nvidia.com/mig-3g.40gb"] != 1 || caps["nvidia.com/mig-2g.20gb"] != 1 {
		t.Fatalf("capacity = %v", caps)
	}
	ids, resp, err := p.AllocateAny("nvidia.com/mig-3g.40gb", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Envs[gpuctl.EnvVisibleDevices]; got != ids[0] || got == "" {
		t.Fatalf("env = %v ids = %v", resp.Envs, ids)
	}
	// The returned UUID resolves through the normal client bring-up.
	var opened bool
	env.Spawn("container", func(pr *devent.Proc) {
		ctx, err := node.OpenContext(pr, "pod", resp.Envs)
		if err != nil {
			t.Error(err)
			return
		}
		opened = ctx != nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !opened {
		t.Fatal("context not opened from allocation env")
	}
}

func TestMIGSingleStrategyUniform(t *testing.T) {
	env, node, devs := newNode(t, 1)
	env.Spawn("admin", func(pr *devent.Proc) {
		devs[0].EnableMIG(pr)
		devs[0].CreateInstance("3g.40gb")
		devs[0].CreateInstance("3g.40gb")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	p, _ := New(node, Config{MIGStrategy: MIGStrategySingle})
	if got := p.Capacity()[ResourceGPU]; got != 2 {
		t.Fatalf("capacity = %v", p.Capacity())
	}
}

func TestMIGSingleStrategyMixedLayoutAdvertisesNothing(t *testing.T) {
	env, node, devs := newNode(t, 1)
	env.Spawn("admin", func(pr *devent.Proc) {
		devs[0].EnableMIG(pr)
		devs[0].CreateInstance("3g.40gb")
		devs[0].CreateInstance("2g.20gb")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	p, _ := New(node, Config{MIGStrategy: MIGStrategySingle})
	if len(p.ListDevices()) != 0 {
		t.Fatalf("devices = %v", p.ListDevices())
	}
}

func TestMIGNoneHidesMIGGPUs(t *testing.T) {
	env, node, devs := newNode(t, 2)
	env.Spawn("admin", func(pr *devent.Proc) {
		devs[1].EnableMIG(pr)
		devs[1].CreateInstance("7g.80gb")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	p, _ := New(node, Config{MIGStrategy: MIGStrategyNone})
	devsAd := p.ListDevices()
	if len(devsAd) != 1 || devsAd[0].ID != "0" {
		t.Fatalf("devices = %v", devsAd)
	}
}

func TestExhaustionAndDoubleAllocate(t *testing.T) {
	_, node, _ := newNode(t, 1)
	p, _ := New(node, Config{})
	ids, _, err := p.AllocateAny(ResourceGPU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.AllocateAny(ResourceGPU, 1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Allocate(ids); !errors.Is(err, ErrExhausted) {
		t.Fatalf("double allocate: %v", err)
	}
	if _, err := p.Allocate([]string{"phantom"}); err == nil {
		t.Fatal("phantom device allocated")
	}
	if err := p.Free([]string{"phantom"}); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("free phantom: %v", err)
	}
}

func TestMultiDeviceAllocation(t *testing.T) {
	_, node, _ := newNode(t, 2)
	p, _ := New(node, Config{})
	_, resp, err := p.AllocateAny(ResourceGPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Envs[gpuctl.EnvVisibleDevices] != "0,1" {
		t.Fatalf("env = %v", resp.Envs)
	}
}

func TestConfigValidation(t *testing.T) {
	_, node, _ := newNode(t, 1)
	if _, err := New(node, Config{MIGStrategy: "bogus"}); err == nil {
		t.Error("bogus MIG strategy accepted")
	}
	if _, err := New(node, Config{Sharing: &SharingConfig{Strategy: "bogus", Replicas: 2}}); err == nil {
		t.Error("bogus sharing strategy accepted")
	}
	if _, err := New(node, Config{Sharing: &SharingConfig{Strategy: SharingMPS, Replicas: 1}}); err == nil {
		t.Error("1 replica accepted")
	}
}
