// Package devstate persists simulated GPU administrative state (MIG
// mode, instance layout, MPS daemon status) to a JSON file, so the
// cmd/migctl and cmd/mpsctl tools behave like their NVIDIA
// counterparts across invocations. Every mutation is validated by
// materializing the state on a fresh simgpu device, so the placement
// and mode rules are identical to the simulator's.
package devstate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

// ErrUnknownSpec is returned for unrecognized device spec names.
var ErrUnknownSpec = errors.New("devstate: unknown device spec")

// DeviceState is one GPU's persisted administrative state.
type DeviceState struct {
	Name          string   `json:"name"`
	Spec          string   `json:"spec"`
	MIGEnabled    bool     `json:"mig_enabled"`
	Instances     []string `json:"instances"` // profiles in creation order
	MPSRunning    bool     `json:"mps_running"`
	MPSDefaultPct int      `json:"mps_default_pct"`
}

// State is the node's device inventory.
type State struct {
	Devices []DeviceState `json:"devices"`
}

// SpecByName maps CLI spec names to device specs.
func SpecByName(name string) (simgpu.DeviceSpec, error) {
	switch strings.ToLower(name) {
	case "a100-40gb", "a100-sxm4-40gb":
		return simgpu.A100SXM440GB(), nil
	case "a100-80gb", "a100-sxm4-80gb":
		return simgpu.A100SXM480GB(), nil
	case "mi210":
		return simgpu.MI210(), nil
	}
	return simgpu.DeviceSpec{}, fmt.Errorf("%w: %q (want a100-40gb, a100-80gb, or mi210)", ErrUnknownSpec, name)
}

// Default returns a testbed-like state: two 80 GB A100s.
func Default() *State {
	return &State{Devices: []DeviceState{
		{Name: "gpu0", Spec: "a100-80gb"},
		{Name: "gpu1", Spec: "a100-80gb"},
	}}
}

// Load reads the state file; a missing file yields the default state.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Default(), nil
	}
	if err != nil {
		return nil, err
	}
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("devstate: parsing %s: %w", path, err)
	}
	return &s, nil
}

// Save writes the state file.
func (s *State) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Device returns device i, or an error.
func (s *State) Device(i int) (*DeviceState, error) {
	if i < 0 || i >= len(s.Devices) {
		return nil, fmt.Errorf("devstate: device index %d out of range (%d devices)", i, len(s.Devices))
	}
	return &s.Devices[i], nil
}

// Materialize rebuilds the device on a fresh environment, replaying
// MIG mode and instance creation in order. Because instance UUIDs are
// derived from a per-device creation counter, they are stable across
// invocations.
func (d *DeviceState) Materialize() (*simgpu.Device, []*simgpu.Instance, error) {
	spec, err := SpecByName(d.Spec)
	if err != nil {
		return nil, nil, err
	}
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, d.Name, spec)
	if err != nil {
		return nil, nil, err
	}
	var instances []*simgpu.Instance
	if d.MIGEnabled {
		if err := dev.EnableMIG(nil); err != nil {
			return nil, nil, err
		}
		for _, prof := range d.Instances {
			in, err := dev.CreateInstance(prof)
			if err != nil {
				return nil, nil, fmt.Errorf("devstate: replaying instance %q: %w", prof, err)
			}
			instances = append(instances, in)
		}
	} else if d.MPSRunning {
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			return nil, nil, err
		}
	}
	return dev, instances, nil
}

// EnableMIG validates and records MIG mode.
func (d *DeviceState) EnableMIG() error {
	if d.MPSRunning {
		return errors.New("devstate: stop the MPS daemon before enabling MIG")
	}
	d.MIGEnabled = true
	if _, _, err := d.Materialize(); err != nil {
		d.MIGEnabled = false
		return err
	}
	return nil
}

// DisableMIG requires an empty layout.
func (d *DeviceState) DisableMIG() error {
	if len(d.Instances) > 0 {
		return fmt.Errorf("devstate: destroy %d instance(s) first", len(d.Instances))
	}
	d.MIGEnabled = false
	return nil
}

// CreateInstance validates placement and appends the profile,
// returning the new instance's UUID.
func (d *DeviceState) CreateInstance(profile string) (string, error) {
	if !d.MIGEnabled {
		return "", simgpu.ErrMIGMode
	}
	d.Instances = append(d.Instances, profile)
	_, ins, err := d.Materialize()
	if err != nil {
		d.Instances = d.Instances[:len(d.Instances)-1]
		return "", err
	}
	return ins[len(ins)-1].UUID(), nil
}

// DestroyInstance removes the instance with the given UUID.
func (d *DeviceState) DestroyInstance(uuid string) error {
	_, ins, err := d.Materialize()
	if err != nil {
		return err
	}
	for i, in := range ins {
		if in.UUID() == uuid {
			d.Instances = append(d.Instances[:i], d.Instances[i+1:]...)
			// Re-validate: remaining layout replays from scratch (it
			// always will, since removing an instance frees slices).
			if _, _, err := d.Materialize(); err != nil {
				return err
			}
			return nil
		}
	}
	return fmt.Errorf("devstate: no instance %q on %s", uuid, d.Name)
}

// StartMPS records a running daemon (exclusive with MIG mode).
func (d *DeviceState) StartMPS() error {
	if d.MIGEnabled {
		return simgpu.ErrMIGMode
	}
	d.MPSRunning = true
	return nil
}

// QuitMPS stops the daemon and clears the default percentage.
func (d *DeviceState) QuitMPS() {
	d.MPSRunning = false
	d.MPSDefaultPct = 0
}

// SetMPSDefault records the daemon-wide default percentage.
func (d *DeviceState) SetMPSDefault(pct int) error {
	if !d.MPSRunning {
		return errors.New("devstate: MPS daemon not running")
	}
	if pct < 0 || pct > 100 {
		return fmt.Errorf("devstate: percentage %d out of range", pct)
	}
	d.MPSDefaultPct = pct
	return nil
}
