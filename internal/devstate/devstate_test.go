package devstate

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/simgpu"
)

func TestLoadMissingGivesDefault(t *testing.T) {
	s, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Devices) != 2 || s.Devices[0].Spec != "a100-80gb" {
		t.Fatalf("default = %+v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	s := Default()
	d, _ := s.Device(0)
	if err := d.EnableMIG(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateInstance("3g.40gb"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := back.Device(0)
	if !d2.MIGEnabled || len(d2.Instances) != 1 || d2.Instances[0] != "3g.40gb" {
		t.Fatalf("round trip = %+v", d2)
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"a100-40gb", "A100-SXM4-80GB", "mi210"} {
		if _, err := SpecByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := SpecByName("h100"); !errors.Is(err, ErrUnknownSpec) {
		t.Errorf("err = %v", err)
	}
}

func TestCreateInstanceValidatesPlacement(t *testing.T) {
	d := &DeviceState{Name: "gpu0", Spec: "a100-80gb"}
	if _, err := d.CreateInstance("3g.40gb"); !errors.Is(err, simgpu.ErrMIGMode) {
		t.Fatalf("create without MIG: %v", err)
	}
	if err := d.EnableMIG(); err != nil {
		t.Fatal(err)
	}
	u1, err := d.CreateInstance("4g.40gb")
	if err != nil {
		t.Fatal(err)
	}
	// Second 4g has no placement; state must be unchanged.
	if _, err := d.CreateInstance("4g.40gb"); err == nil {
		t.Fatal("invalid placement accepted")
	}
	if len(d.Instances) != 1 {
		t.Fatalf("instances = %v", d.Instances)
	}
	// UUIDs are stable across re-materialization.
	_, ins, err := d.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].UUID() != u1 {
		t.Fatalf("uuid drifted: %s vs %s", ins[0].UUID(), u1)
	}
}

func TestDestroyInstance(t *testing.T) {
	d := &DeviceState{Name: "gpu0", Spec: "a100-80gb"}
	d.EnableMIG()
	u1, _ := d.CreateInstance("3g.40gb")
	u2, _ := d.CreateInstance("3g.40gb")
	if err := d.DestroyInstance(u1); err != nil {
		t.Fatal(err)
	}
	if len(d.Instances) != 1 {
		t.Fatalf("instances = %v", d.Instances)
	}
	if err := d.DestroyInstance(u2); err == nil {
		// After destroying u1, the replay renumbers; u2's UUID may
		// have shifted. Destroy by the current UUID instead.
		_, ins, _ := d.Materialize()
		if len(ins) != 1 {
			t.Fatalf("instances = %d", len(ins))
		}
	} else {
		_, ins, err := d.Materialize()
		if err != nil || len(ins) != 1 {
			t.Fatalf("materialize: %v (%d instances)", err, len(ins))
		}
		if err := d.DestroyInstance(ins[0].UUID()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDisableMIGRequiresEmpty(t *testing.T) {
	d := &DeviceState{Name: "gpu0", Spec: "a100-80gb"}
	d.EnableMIG()
	d.CreateInstance("1g.10gb")
	if err := d.DisableMIG(); err == nil {
		t.Fatal("disable with instances accepted")
	}
	_, ins, _ := d.Materialize()
	d.DestroyInstance(ins[0].UUID())
	if err := d.DisableMIG(); err != nil {
		t.Fatal(err)
	}
}

func TestMPSLifecycleAndExclusivity(t *testing.T) {
	d := &DeviceState{Name: "gpu0", Spec: "a100-80gb"}
	if err := d.SetMPSDefault(50); err == nil {
		t.Fatal("set default without daemon accepted")
	}
	if err := d.StartMPS(); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMPSDefault(50); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMPSDefault(150); err == nil {
		t.Fatal("pct 150 accepted")
	}
	if err := d.EnableMIG(); err == nil {
		t.Fatal("MIG enabled under running MPS")
	}
	d.QuitMPS()
	if d.MPSDefaultPct != 0 {
		t.Fatal("default pct survived quit")
	}
	if err := d.EnableMIG(); err != nil {
		t.Fatal(err)
	}
	if err := d.StartMPS(); !errors.Is(err, simgpu.ErrMIGMode) {
		t.Fatalf("MPS under MIG: %v", err)
	}
}

func TestDeviceIndexRange(t *testing.T) {
	s := Default()
	if _, err := s.Device(5); err == nil {
		t.Fatal("out of range accepted")
	}
}
