// Package endpoint models Globus Compute (formerly funcX), the
// federated FaaS layer the paper builds on (§2.2): users register
// functions with a cloud service, which dispatches them over the WAN
// to user-deployed computing endpoints (a workstation, a cluster, a
// supercomputer), each running the Parsl execution stack locally.
//
// All endpoints share one simulation environment; cross-site latency
// is modelled per endpoint and charged in both directions.
package endpoint

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
)

// ErrNoEndpoint is returned when routing finds no endpoint satisfying
// a function's requirements.
var ErrNoEndpoint = errors.New("endpoint: no endpoint satisfies requirements")

// ErrDisconnected is returned when a submission names an endpoint
// whose WAN connection is down. Routed submissions never see it:
// Route skips disconnected endpoints.
var ErrDisconnected = errors.New("endpoint: endpoint disconnected")

// Endpoint is one registered computing site.
type Endpoint struct {
	// Name is the registry key (endpoint UUID in Globus Compute).
	Name string
	// DFK is the site-local Parsl DataFlowKernel.
	DFK *faas.DFK
	// WANLatency is the one-way cloud↔endpoint delay.
	WANLatency time.Duration
	// Tags describe capabilities for routing, e.g. {"gpu": "a100",
	// "site": "anl"}.
	Tags map[string]string

	outstanding  int
	completed    int
	disconnected bool
}

// Outstanding reports tasks dispatched but not yet completed.
func (e *Endpoint) Outstanding() int { return e.outstanding }

// Completed reports finished tasks.
func (e *Endpoint) Completed() int { return e.completed }

// Disconnected reports whether the endpoint's WAN link is down.
func (e *Endpoint) Disconnected() bool { return e.disconnected }

// Function is a cloud-registered function: a body, the executor label
// it needs on the endpoint, and capability requirements for routing.
type Function struct {
	Name string
	// Executor is the endpoint-local executor label ("cpu", "gpu").
	Executor string
	// Requirements must be a subset of the chosen endpoint's Tags.
	Requirements map[string]string
	// Fn is the function body.
	Fn faas.AppFunc
}

// Service is the cloud routing layer.
type Service struct {
	env       *devent.Env
	endpoints map[string]*Endpoint
	functions map[string]Function
}

// NewService creates an empty cloud service.
func NewService(env *devent.Env) *Service {
	return &Service{
		env:       env,
		endpoints: make(map[string]*Endpoint),
		functions: make(map[string]Function),
	}
}

// RegisterEndpoint adds a site; duplicate names error.
func (s *Service) RegisterEndpoint(ep *Endpoint) error {
	if ep.Name == "" || ep.DFK == nil {
		return errors.New("endpoint: endpoint needs a name and a DFK")
	}
	if _, dup := s.endpoints[ep.Name]; dup {
		return fmt.Errorf("endpoint: duplicate endpoint %q", ep.Name)
	}
	s.endpoints[ep.Name] = ep
	return nil
}

// Endpoints returns registered endpoint names, sorted.
func (s *Service) Endpoints() []string {
	names := make([]string, 0, len(s.endpoints))
	for n := range s.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Disconnect takes an endpoint's WAN link down: routing skips it and
// named submissions fail with ErrDisconnected, while work already
// dispatched to its DFK runs to completion (the endpoint buffers
// results; the simulator delivers them when they are ready, modelling
// a reconnect before the result path). Reports whether a connected
// endpoint with that name existed.
func (s *Service) Disconnect(name string) bool {
	ep, ok := s.endpoints[name]
	if !ok || ep.disconnected {
		return false
	}
	ep.disconnected = true
	return true
}

// Reconnect restores a disconnected endpoint's WAN link. Reports
// whether a disconnected endpoint with that name existed.
func (s *Service) Reconnect(name string) bool {
	ep, ok := s.endpoints[name]
	if !ok || !ep.disconnected {
		return false
	}
	ep.disconnected = false
	return true
}

// RegisterFunction records a function in the cloud registry and
// registers its app on every endpoint DFK (Globus Compute ships the
// serialized function to the endpoint at dispatch; registering
// everywhere up front models the same reachability).
func (s *Service) RegisterFunction(fn Function) error {
	if fn.Name == "" || fn.Fn == nil {
		return errors.New("endpoint: function needs a name and a body")
	}
	s.functions[fn.Name] = fn
	for _, ep := range s.endpoints {
		ep.DFK.Register(faas.App{Name: fn.Name, Executor: fn.Executor, Fn: fn.Fn})
	}
	return nil
}

// Route picks the endpoint for a function: among those whose tags
// satisfy the requirements, the one with the fewest outstanding tasks
// (name order breaks ties).
func (s *Service) Route(fnName string) (*Endpoint, error) {
	fn, ok := s.functions[fnName]
	if !ok {
		return nil, fmt.Errorf("endpoint: unknown function %q", fnName)
	}
	var best *Endpoint
	for _, name := range s.Endpoints() {
		ep := s.endpoints[name]
		if ep.disconnected || !satisfies(ep.Tags, fn.Requirements) {
			continue
		}
		if best == nil || ep.outstanding < best.outstanding {
			best = ep
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: function %q wants %v", ErrNoEndpoint, fnName, fn.Requirements)
	}
	return best, nil
}

func satisfies(tags, reqs map[string]string) bool {
	for k, v := range reqs {
		if tags[k] != v {
			return false
		}
	}
	return true
}

// Submit routes the function (to the named endpoint, or by Route when
// endpointName is empty), charging WAN latency on dispatch and on the
// result path. The returned event fires with the function's return
// value in cloud time.
func (s *Service) Submit(endpointName, fnName string, args ...any) *devent.Event {
	done := s.env.NewNamedEvent("cloud:" + fnName)
	var ep *Endpoint
	var err error
	if endpointName != "" {
		var ok bool
		ep, ok = s.endpoints[endpointName]
		if !ok {
			err = fmt.Errorf("endpoint: unknown endpoint %q", endpointName)
		} else if ep.disconnected {
			err = fmt.Errorf("%w: %q", ErrDisconnected, endpointName)
		}
	} else {
		ep, err = s.Route(fnName)
	}
	if err != nil {
		done.Fail(err)
		return done
	}
	if _, ok := s.functions[fnName]; !ok {
		done.Fail(fmt.Errorf("endpoint: unknown function %q", fnName))
		return done
	}
	ep.outstanding++
	s.env.Schedule(ep.WANLatency, func() {
		fut := ep.DFK.Submit(fnName, args...)
		fut.Event().OnFire(func(ev *devent.Event) {
			s.env.Schedule(ep.WANLatency, func() {
				ep.outstanding--
				ep.completed++
				if ev.Err() != nil {
					done.Fail(ev.Err())
					return
				}
				done.Fire(ev.Value())
			})
		})
	})
	return done
}
