package endpoint

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

// site builds one endpoint: a node with optional GPU, cpu (+gpu)
// executors, a started DFK.
func site(t *testing.T, env *devent.Env, name string, wan time.Duration, gpu bool, tags map[string]string) *Endpoint {
	t.Helper()
	var devs []*simgpu.Device
	if gpu {
		d, err := simgpu.NewDevice(env, name+"-gpu0", simgpu.A100SXM480GB())
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
	}
	node := gpuctl.NewNode(env, devs...)
	local := provider.NewLocal(env, node)
	execs := []faas.Executor{}
	cpu, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 4, Provider: local})
	if err != nil {
		t.Fatal(err)
	}
	execs = append(execs, cpu)
	if gpu {
		g, err := htex.New(env, htex.Config{Label: "gpu", AvailableAccelerators: []string{"0"}, Provider: local})
		if err != nil {
			t.Fatal(err)
		}
		execs = append(execs, g)
	}
	dfk := faas.NewDFK(env, faas.Config{}, execs...)
	if err := dfk.Start(); err != nil {
		t.Fatal(err)
	}
	return &Endpoint{Name: name, DFK: dfk, WANLatency: wan, Tags: tags}
}

func TestDispatchWithWANLatency(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	ep := site(t, env, "laptop", 100*time.Millisecond, false, nil)
	if err := svc.RegisterEndpoint(ep); err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterFunction(Function{Name: "add", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return inv.Arg(0).(int) + inv.Arg(1).(int), nil
	}}); err != nil {
		t.Fatal(err)
	}
	var got any
	var at time.Duration
	env.Spawn("client", func(p *devent.Proc) {
		v, err := p.Wait(svc.Submit("laptop", "add", 2, 3))
		if err != nil {
			t.Error(err)
			return
		}
		got, at = v, p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("got %v", got)
	}
	// 100 ms out + 1 s compute + 100 ms back.
	if at != 1200*time.Millisecond {
		t.Fatalf("completed at %v", at)
	}
	if ep.Completed() != 1 || ep.Outstanding() != 0 {
		t.Fatalf("accounting: %d/%d", ep.Completed(), ep.Outstanding())
	}
}

func TestRoutingByRequirements(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	svc.RegisterEndpoint(site(t, env, "laptop", 0, false, map[string]string{"kind": "laptop"}))
	svc.RegisterEndpoint(site(t, env, "cluster", 0, true, map[string]string{"kind": "cluster", "gpu": "a100"}))
	svc.RegisterFunction(Function{
		Name: "train", Executor: "gpu",
		Requirements: map[string]string{"gpu": "a100"},
		Fn: func(inv *faas.Invocation) (any, error) {
			if _, err := inv.GPU(); err != nil {
				return nil, err
			}
			return "trained", nil
		},
	})
	var worker string
	env.Spawn("client", func(p *devent.Proc) {
		ep, err := svc.Route("train")
		if err != nil {
			t.Error(err)
			return
		}
		worker = ep.Name
		if v, err := p.Wait(svc.Submit("", "train")); err != nil || v != "trained" {
			t.Errorf("v=%v err=%v", v, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if worker != "cluster" {
		t.Fatalf("routed to %s", worker)
	}
}

func TestRoutingNoMatch(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	svc.RegisterEndpoint(site(t, env, "laptop", 0, false, nil))
	svc.RegisterFunction(Function{Name: "gpu-fn", Executor: "gpu",
		Requirements: map[string]string{"gpu": "a100"},
		Fn:           func(*faas.Invocation) (any, error) { return nil, nil }})
	if _, err := svc.Route("gpu-fn"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
	// Submit with empty endpoint fails the future the same way.
	var got error
	env.Spawn("client", func(p *devent.Proc) {
		_, got = p.Wait(svc.Submit("", "gpu-fn"))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrNoEndpoint) {
		t.Fatalf("got = %v", got)
	}
}

func TestLeastLoadedBalancing(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	a := site(t, env, "a", 0, false, map[string]string{"pool": "x"})
	b := site(t, env, "b", 0, false, map[string]string{"pool": "x"})
	svc.RegisterEndpoint(a)
	svc.RegisterEndpoint(b)
	svc.RegisterFunction(Function{Name: "work", Executor: "cpu",
		Requirements: map[string]string{"pool": "x"},
		Fn: func(inv *faas.Invocation) (any, error) {
			inv.Compute(time.Second)
			return nil, nil
		}})
	env.Spawn("client", func(p *devent.Proc) {
		evs := make([]*devent.Event, 8)
		for i := range evs {
			evs[i] = svc.Submit("", "work")
		}
		p.Wait(devent.AllOf(env, evs...))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Completed() != 4 || b.Completed() != 4 {
		t.Fatalf("balance: a=%d b=%d", a.Completed(), b.Completed())
	}
}

func TestErrorsPropagateAcrossWAN(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	svc.RegisterEndpoint(site(t, env, "laptop", 50*time.Millisecond, false, nil))
	boom := errors.New("remote boom")
	svc.RegisterFunction(Function{Name: "bad", Executor: "cpu",
		Fn: func(*faas.Invocation) (any, error) { return nil, boom }})
	var got error
	env.Spawn("client", func(p *devent.Proc) {
		_, got = p.Wait(svc.Submit("laptop", "bad"))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, boom) {
		t.Fatalf("got = %v", got)
	}
}

func TestRegistryValidation(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	if err := svc.RegisterEndpoint(&Endpoint{}); err == nil {
		t.Error("empty endpoint accepted")
	}
	ep := site(t, env, "x", 0, false, nil)
	svc.RegisterEndpoint(ep)
	if err := svc.RegisterEndpoint(ep); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if err := svc.RegisterFunction(Function{}); err == nil {
		t.Error("empty function accepted")
	}
	var unknownFn, unknownEp error
	env.Spawn("client", func(p *devent.Proc) {
		_, unknownFn = p.Wait(svc.Submit("x", "ghost"))
		_, unknownEp = p.Wait(svc.Submit("ghost-ep", "ghost"))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if unknownFn == nil || unknownEp == nil {
		t.Error("unknown function/endpoint not rejected")
	}
}

// Functions registered after endpoints still reach every endpoint.
func TestLateFunctionRegistration(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	svc.RegisterEndpoint(site(t, env, "a", 0, false, nil))
	svc.RegisterEndpoint(site(t, env, "b", 0, false, nil))
	svc.RegisterFunction(Function{Name: "hello", Executor: "cpu",
		Fn: func(*faas.Invocation) (any, error) { return "hi", nil }})
	for _, epName := range []string{"a", "b"} {
		epName := epName
		env.Spawn("client", func(p *devent.Proc) {
			if v, err := p.Wait(svc.Submit(epName, "hello")); err != nil || v != "hi" {
				t.Errorf("%s: v=%v err=%v", epName, v, err)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
