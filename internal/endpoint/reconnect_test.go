package endpoint

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
)

// A disconnected endpoint rejects named submissions with
// ErrDisconnected, is skipped by routing, and serves again after
// Reconnect.
func TestDisconnectReconnect(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	a := site(t, env, "site-a", 10*time.Millisecond, false, nil)
	b := site(t, env, "site-b", 10*time.Millisecond, false, nil)
	for _, ep := range []*Endpoint{a, b} {
		if err := svc.RegisterEndpoint(ep); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.RegisterFunction(Function{Name: "who", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		return inv.WorkerName(), nil
	}}); err != nil {
		t.Fatal(err)
	}

	if !svc.Disconnect("site-a") {
		t.Fatal("Disconnect failed")
	}
	if svc.Disconnect("site-a") {
		t.Fatal("double Disconnect reported success")
	}
	if !a.Disconnected() {
		t.Fatal("endpoint not marked disconnected")
	}

	env.Spawn("main", func(p *devent.Proc) {
		// Named submission to the downed endpoint fails fast.
		if _, err := p.Wait(svc.Submit("site-a", "who")); !errors.Is(err, ErrDisconnected) {
			t.Errorf("named submit err = %v, want ErrDisconnected", err)
		}
		// Routing skips it: every routed call lands on site-b.
		for i := 0; i < 3; i++ {
			v, err := p.Wait(svc.Submit("", "who"))
			if err != nil {
				t.Errorf("routed submit failed: %v", err)
				return
			}
			if w := v.(string); w[:len("cpu/")] != "cpu/" {
				t.Errorf("unexpected worker %q", w)
			}
		}
		if b.Completed() != 3 || a.Completed() != 0 {
			t.Errorf("completed a=%d b=%d", a.Completed(), b.Completed())
		}
		// Reconnect restores named submissions.
		if !svc.Reconnect("site-a") {
			t.Error("Reconnect failed")
		}
		if svc.Reconnect("site-a") {
			t.Error("double Reconnect reported success")
		}
		if _, err := p.Wait(svc.Submit("site-a", "who")); err != nil {
			t.Errorf("submit after reconnect failed: %v", err)
		}
		if a.Completed() != 1 {
			t.Errorf("site-a completed = %d after reconnect", a.Completed())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Disconnecting every eligible endpoint makes routing fail with
// ErrNoEndpoint; work dispatched before the disconnect still
// completes.
func TestDisconnectAllAndInflight(t *testing.T) {
	env := devent.NewEnv()
	svc := NewService(env)
	ep := site(t, env, "solo", 10*time.Millisecond, false, nil)
	if err := svc.RegisterEndpoint(ep); err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterFunction(Function{Name: "slow", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return "ok", nil
	}}); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", func(p *devent.Proc) {
		inflight := svc.Submit("", "slow")
		p.Sleep(100 * time.Millisecond) // dispatched, now running
		svc.Disconnect("solo")
		if _, err := p.Wait(svc.Submit("", "slow")); !errors.Is(err, ErrNoEndpoint) {
			t.Errorf("routed submit err = %v, want ErrNoEndpoint", err)
		}
		if v, err := p.Wait(inflight); err != nil || v != "ok" {
			t.Errorf("in-flight v=%v err=%v", v, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ep.Completed() != 1 {
		t.Fatalf("completed = %d", ep.Completed())
	}
}

// Disconnect/Reconnect on unknown endpoints report false.
func TestDisconnectUnknown(t *testing.T) {
	svc := NewService(devent.NewEnv())
	if svc.Disconnect("ghost") || svc.Reconnect("ghost") {
		t.Fatal("ghost endpoint toggled")
	}
}
