package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// A shed decision fails the task fast with a ShedError carrying the
// retry-after hint, never dispatches it, and counts it per app.
func TestAdmissionShedsBeforeDispatch(t *testing.T) {
	env := devent.NewEnv()
	d, ex := newTestDFK(t, env, 3)
	d.Register(App{Name: "work", Executor: "stub", Fn: func(inv *Invocation) (any, error) {
		return "ok", nil
	}})
	shedding := true
	d.SetAdmission(func(task *Task) (bool, time.Duration) {
		return shedding, 30 * time.Second
	})
	env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("work")
		_, err := fut.Result(p)
		if !errors.Is(err, ErrShed) {
			t.Errorf("err = %v, want ErrShed", err)
		}
		var shed *ShedError
		if !errors.As(err, &shed) || shed.RetryAfter != 30*time.Second || shed.App != "work" {
			t.Errorf("shed error = %+v", shed)
		}
		if fut.Task().Status != TaskShed || !fut.Task().Status.Terminal() || fut.Task().Tries != 0 {
			t.Errorf("task = %+v; shed tasks must end TaskShed with zero dispatch tries", fut.Task())
		}
		// Admission lifts: the same app runs normally.
		shedding = false
		if _, err := d.Submit("work").Result(p); err != nil {
			t.Errorf("post-shed submit: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ex.n != 1 {
		t.Errorf("executor saw %d submissions, want 1 (shed task must not dispatch)", ex.n)
	}
	m := d.Collector().Metrics()
	if got := m.Counter("faas_tasks_shed_total", obs.L("app", "work")).Value(); got != 1 {
		t.Errorf("faas_tasks_shed_total = %v", got)
	}
}

// Removing the hook restores unconditional admission.
func TestAdmissionHookRemoval(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	d.Register(App{Name: "work", Executor: "stub", Fn: func(inv *Invocation) (any, error) {
		return "ok", nil
	}})
	d.SetAdmission(func(task *Task) (bool, time.Duration) { return true, 0 })
	d.SetAdmission(nil)
	env.Spawn("main", func(p *devent.Proc) {
		if _, err := d.Submit("work").Result(p); err != nil {
			t.Errorf("submit after hook removal: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
