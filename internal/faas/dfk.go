package faas

import (
	"fmt"

	"repro/internal/devent"
	"repro/internal/obs"
)

// DFK is the DataFlowKernel: it owns the app registry and executors,
// resolves future-valued arguments, dispatches tasks, retries
// failures, and emits task spans and metrics to its collector.
type DFK struct {
	env       *devent.Env
	cfg       Config
	obs       *obs.Collector
	executors map[string]Executor
	apps      map[string]App
	tasks     []*Task
	hooks     []func(TaskEvent)
	nextID    int
	started   bool
}

// NewDFK creates a DataFlowKernel over the given executors. If the
// config carries no collector, a fresh one is created over env.
func NewDFK(env *devent.Env, cfg Config, executors ...Executor) *DFK {
	if cfg.Collector == nil {
		cfg.Collector = obs.New(env)
	}
	d := &DFK{
		env:       env,
		cfg:       cfg,
		obs:       cfg.Collector,
		executors: make(map[string]Executor),
		apps:      make(map[string]App),
	}
	for _, ex := range executors {
		d.executors[ex.Label()] = ex
		if o, ok := ex.(observed); ok {
			o.SetCollector(d.obs)
		}
	}
	return d
}

// observed is implemented by executors that emit queue/run/worker
// spans and metrics into the DFK's collector.
type observed interface{ SetCollector(*obs.Collector) }

// Env returns the simulation environment.
func (d *DFK) Env() *devent.Env { return d.env }

// Collector returns the DFK's collector (never nil).
func (d *DFK) Collector() *obs.Collector { return d.obs }

// AddExecutor registers (or replaces) an executor after construction;
// if the DFK is already started, the executor is started too. Used by
// reconfiguration flows that rebuild the GPU executor with a new
// partitioning.
func (d *DFK) AddExecutor(ex Executor) error {
	d.executors[ex.Label()] = ex
	if o, ok := ex.(observed); ok {
		o.SetCollector(d.obs)
	}
	if d.started {
		return ex.Start()
	}
	return nil
}

// Executor returns the executor with the given label (nil if absent).
func (d *DFK) Executor(label string) Executor { return d.executors[label] }

// Register adds an app to the registry; re-registering a name
// replaces it.
func (d *DFK) Register(app App) {
	d.apps[app.Name] = app
}

// OnTaskEvent installs a monitoring hook invoked at each DFK-side task
// status change (submit, launch, terminal). Worker-side pickup is
// observable through the collector's span stream instead.
func (d *DFK) OnTaskEvent(fn func(TaskEvent)) {
	d.hooks = append(d.hooks, fn)
}

func (d *DFK) emit(t *Task) {
	ev := TaskEvent{Task: t, Status: t.Status, At: d.env.Now()}
	for _, h := range d.hooks {
		h(ev)
	}
}

// finish records a terminal status: hooks, span end (carrying the
// fields monitoring needs to rebuild the record), and counters.
func (d *DFK) finish(t *Task) {
	d.emit(t)
	errStr := ""
	if t.Err != nil {
		errStr = t.Err.Error()
	}
	d.obs.EndSpan(t.Span,
		obs.String("executor", t.Executor),
		obs.String("worker", t.Worker),
		obs.String("status", t.Status.String()),
		obs.Int("tries", t.Tries),
		obs.Dur("start_ns", t.StartTime),
		obs.String("error", errStr),
	)
	m := d.obs.Metrics()
	m.Counter("faas_tasks_completed_total", obs.L("app", t.App), obs.L("status", t.Status.String())).Inc()
	if t.Status == TaskDone {
		m.Histogram("faas_task_queue_delay_seconds", nil, obs.L("app", t.App)).ObserveDuration(t.QueueDelay())
		m.Histogram("faas_task_run_seconds", nil, obs.L("app", t.App)).ObserveDuration(t.RunTime())
	}
}

// Start launches all executors (provider blocks, workers).
func (d *DFK) Start() error {
	if d.started {
		return nil
	}
	for _, ex := range d.executors {
		if err := ex.Start(); err != nil {
			return err
		}
	}
	d.started = true
	return nil
}

// Shutdown stops all executors.
func (d *DFK) Shutdown() {
	for _, ex := range d.executors {
		ex.Shutdown()
	}
	d.started = false
}

// Tasks returns all task records in submission order.
func (d *DFK) Tasks() []*Task { return append([]*Task(nil), d.tasks...) }

// Submit schedules an app invocation. Arguments that are *Future
// values are awaited and replaced by their results before dispatch; if
// any fails, the task fails with ErrDependency without dispatching.
// Failed tasks are retried up to Config.Retries times.
func (d *DFK) Submit(appName string, args ...any) *Future {
	d.nextID++
	task := &Task{
		ID:         d.nextID,
		App:        appName,
		Status:     TaskPending,
		SubmitTime: d.env.Now(),
	}
	task.Span = d.obs.StartSpan("dfk", "task", TaskTrack(task.ID), 0,
		obs.Int("task", task.ID),
		obs.String("app", appName),
	)
	d.obs.Metrics().Counter("faas_tasks_submitted_total", obs.L("app", appName)).Inc()
	d.tasks = append(d.tasks, task)
	done := d.env.NewNamedEvent(fmt.Sprintf("task-%d", task.ID))
	fut := NewFuture(task, done)

	app, ok := d.apps[appName]
	if !ok {
		task.Status = TaskFailed
		task.Err = fmt.Errorf("faas: unknown app %q", appName)
		task.EndTime = d.env.Now()
		d.finish(task)
		done.Fail(task.Err)
		return fut
	}
	task.Executor = app.Executor
	ex, ok := d.executors[app.Executor]
	if !ok {
		task.Status = TaskFailed
		task.Err = fmt.Errorf("%w: %q (app %q)", ErrNoExecutor, app.Executor, appName)
		task.EndTime = d.env.Now()
		d.finish(task)
		done.Fail(task.Err)
		return fut
	}
	d.emit(task)

	d.env.Spawn("dfk-launch", func(p *devent.Proc) {
		resolved, err := d.resolveArgs(p, args)
		if err != nil {
			task.Status = TaskFailed
			task.Err = fmt.Errorf("%w: %v", ErrDependency, err)
			task.EndTime = d.env.Now()
			d.finish(task)
			done.Fail(task.Err)
			return
		}
		var result any
		for try := 0; ; try++ {
			task.Tries = try + 1
			task.Status = TaskLaunched
			task.DispatchTime = d.env.Now()
			d.emit(task)
			if try > 0 {
				d.obs.Metrics().Counter("faas_task_retries_total", obs.L("app", task.App)).Inc()
			}
			result, err = func() (any, error) {
				ev := ex.Submit(task, app, resolved)
				return p.Wait(ev)
			}()
			if err == nil || try >= d.cfg.Retries {
				break
			}
		}
		if err != nil {
			task.Status = TaskFailed
			task.Err = err
			if task.EndTime < task.SubmitTime {
				task.EndTime = d.env.Now()
			}
			d.finish(task)
			done.Fail(err)
			return
		}
		task.Status = TaskDone
		d.finish(task)
		done.Fire(result)
	})
	return fut
}

// resolveArgs waits for future-valued arguments and substitutes their
// results.
func (d *DFK) resolveArgs(p *devent.Proc, args []any) ([]any, error) {
	resolved := make([]any, len(args))
	for i, a := range args {
		if fut, ok := a.(*Future); ok {
			v, err := fut.Result(p)
			if err != nil {
				return nil, err
			}
			resolved[i] = v
			continue
		}
		resolved[i] = a
	}
	return resolved, nil
}
