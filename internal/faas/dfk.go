package faas

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// DFK is the DataFlowKernel: it owns the app registry and executors,
// resolves future-valued arguments, dispatches tasks with deadline
// enforcement, retries failures with exponential backoff, and emits
// task spans and metrics to its collector.
type DFK struct {
	env       *devent.Env
	cfg       Config
	obs       *obs.Collector
	executors map[string]Executor
	apps      map[string]App
	tasks     []*Task
	hooks     []func(TaskEvent)
	nextID    int
	started   bool
	draining  bool
	rng       *rand.Rand
	// dispatchFault, when set, is consulted before every dispatch
	// attempt; a non-nil error fails that attempt (retriable). Fault
	// injectors use it to model transient submit failures.
	dispatchFault func(*Task) error
	// admission, when set, is consulted once per Submit before the
	// task spawns its launch proc; a shed decision fails the task fast
	// with a ShedError (terminal, never dispatched). Autoscalers use it
	// for burn-driven load shedding.
	admission func(*Task) (shed bool, retryAfter time.Duration)
}

// NewDFK creates a DataFlowKernel over the given executors. If the
// config carries no collector, a fresh one is created over env.
func NewDFK(env *devent.Env, cfg Config, executors ...Executor) *DFK {
	if cfg.Collector == nil {
		cfg.Collector = obs.New(env)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	d := &DFK{
		env:       env,
		cfg:       cfg,
		obs:       cfg.Collector,
		executors: make(map[string]Executor),
		apps:      make(map[string]App),
		rng:       rand.New(rand.NewSource(seed)),
	}
	for _, ex := range executors {
		d.executors[ex.Label()] = ex
		if o, ok := ex.(observed); ok {
			o.SetCollector(d.obs)
		}
	}
	return d
}

// observed is implemented by executors that emit queue/run/worker
// spans and metrics into the DFK's collector.
type observed interface{ SetCollector(*obs.Collector) }

// Env returns the simulation environment.
func (d *DFK) Env() *devent.Env { return d.env }

// Collector returns the DFK's collector (never nil).
func (d *DFK) Collector() *obs.Collector { return d.obs }

// AddExecutor registers (or replaces) an executor after construction;
// if the DFK is already started, the executor is started too. Used by
// reconfiguration flows that rebuild the GPU executor with a new
// partitioning.
func (d *DFK) AddExecutor(ex Executor) error {
	d.executors[ex.Label()] = ex
	if o, ok := ex.(observed); ok {
		o.SetCollector(d.obs)
	}
	if d.started {
		return ex.Start()
	}
	return nil
}

// Executor returns the executor with the given label (nil if absent).
func (d *DFK) Executor(label string) Executor { return d.executors[label] }

// Register adds an app to the registry; re-registering a name
// replaces it.
func (d *DFK) Register(app App) {
	d.apps[app.Name] = app
}

// OnTaskEvent installs a monitoring hook invoked at each DFK-side task
// status change (submit, launch, terminal). Worker-side pickup is
// observable through the collector's span stream instead.
func (d *DFK) OnTaskEvent(fn func(TaskEvent)) {
	d.hooks = append(d.hooks, fn)
}

func (d *DFK) emit(t *Task) {
	ev := TaskEvent{Task: t, Status: t.Status, At: d.env.Now()}
	for _, h := range d.hooks {
		h(ev)
	}
}

// finish records a terminal status: hooks, span end (carrying the
// fields monitoring needs to rebuild the record), and counters.
func (d *DFK) finish(t *Task) {
	d.emit(t)
	errStr := ""
	if t.Err != nil {
		errStr = t.Err.Error()
	}
	d.obs.EndSpan(t.Span,
		obs.String("executor", t.Executor),
		obs.String("worker", t.Worker),
		obs.String("status", t.Status.String()),
		obs.Int("tries", t.Tries),
		obs.Dur("start_ns", t.StartTime),
		obs.String("error", errStr),
	)
	m := d.obs.Metrics()
	m.Counter("faas_tasks_completed_total", obs.L("app", t.App), obs.L("status", t.Status.String())).Inc()
	if t.Status == TaskDone {
		m.Histogram("faas_task_queue_delay_seconds", nil, obs.L("app", t.App)).ObserveDuration(t.QueueDelay())
		m.Histogram("faas_task_run_seconds", nil, obs.L("app", t.App)).ObserveDuration(t.RunTime())
	}
}

// Start launches all executors (provider blocks, workers).
func (d *DFK) Start() error {
	if d.started {
		return nil
	}
	for _, ex := range d.executors {
		if err := ex.Start(); err != nil {
			return err
		}
	}
	d.started = true
	return nil
}

// SetDispatchFault installs (or, with nil, removes) a hook consulted
// before every dispatch attempt; returning an error fails that attempt
// as a transient submit failure, exercising the retry/backoff path.
func (d *DFK) SetDispatchFault(fn func(*Task) error) { d.dispatchFault = fn }

// SetAdmission installs (or, with nil, removes) the admission-control
// hook consulted once per Submit. Returning shed=true fails the task
// immediately with a ShedError carrying the retryAfter hint; it is
// never dispatched and the DFK's retry policy does not apply — load
// shedding pushes the retry decision back to the client. Shed tasks
// count in faas_tasks_shed_total (per app) and, like every terminal
// state, in faas_tasks_completed_total.
func (d *DFK) SetAdmission(fn func(*Task) (shed bool, retryAfter time.Duration)) { d.admission = fn }

// Drain stops accepting new submissions — subsequent Submits fail fast
// with ErrShutdown — while work already in flight runs to completion.
// Executors that support draining are drained too.
func (d *DFK) Drain() {
	d.draining = true
	for _, ex := range d.executors {
		if dr, ok := ex.(Drainer); ok {
			dr.Drain()
		}
	}
}

// Drainer is optionally implemented by executors that can stop
// accepting new submissions without killing in-flight work.
type Drainer interface{ Drain() }

// Shutdown stops all executors.
func (d *DFK) Shutdown() {
	for _, ex := range d.executors {
		ex.Shutdown()
	}
	d.started = false
}

// Tasks returns all task records in submission order.
func (d *DFK) Tasks() []*Task { return append([]*Task(nil), d.tasks...) }

// Submit schedules an app invocation. Arguments that are *Future
// values are awaited and replaced by their results before dispatch; if
// any fails, the task fails with ErrDependency without dispatching.
// Failed tasks are retried up to Config.Retries times, sleeping the
// configured exponential backoff (with jitter) between attempts; a
// task that exceeds Config.Timeout fails terminally with
// ErrTaskTimeout regardless of retries left.
func (d *DFK) Submit(appName string, args ...any) *Future {
	d.nextID++
	task := &Task{
		ID:         d.nextID,
		App:        appName,
		Status:     TaskPending,
		SubmitTime: d.env.Now(),
	}
	task.Span = d.obs.StartSpan("dfk", "task", TaskTrack(task.ID), 0,
		obs.Int("task", task.ID),
		obs.String("app", appName),
	)
	d.obs.Metrics().Counter("faas_tasks_submitted_total", obs.L("app", appName)).Inc()
	if !d.cfg.DropCompleted {
		d.tasks = append(d.tasks, task)
	}
	done := d.env.NewNamedEvent(fmt.Sprintf("task-%d", task.ID))
	fut := NewFuture(task, done)

	if d.draining {
		task.Status = TaskFailed
		task.Err = fmt.Errorf("%w: DFK draining", ErrShutdown)
		task.EndTime = d.env.Now()
		d.finish(task)
		done.Fail(task.Err)
		return fut
	}
	app, ok := d.apps[appName]
	if !ok {
		task.Status = TaskFailed
		task.Err = fmt.Errorf("faas: unknown app %q", appName)
		task.EndTime = d.env.Now()
		d.finish(task)
		done.Fail(task.Err)
		return fut
	}
	task.Executor = app.Executor
	ex, ok := d.executors[app.Executor]
	if !ok {
		task.Status = TaskFailed
		task.Err = fmt.Errorf("%w: %q (app %q)", ErrNoExecutor, app.Executor, appName)
		task.EndTime = d.env.Now()
		d.finish(task)
		done.Fail(task.Err)
		return fut
	}
	if d.admission != nil {
		if shed, retryAfter := d.admission(task); shed {
			task.Status = TaskShed
			task.Err = &ShedError{App: appName, RetryAfter: retryAfter}
			task.EndTime = d.env.Now()
			d.obs.Metrics().Counter("faas_tasks_shed_total", obs.L("app", appName)).Inc()
			d.finish(task)
			done.Fail(task.Err)
			return fut
		}
	}
	d.emit(task)

	d.env.Spawn("dfk-launch", func(p *devent.Proc) {
		resolved, err := d.resolveArgs(p, args)
		if err != nil {
			task.Status = TaskFailed
			task.Err = fmt.Errorf("%w: %v", ErrDependency, err)
			task.EndTime = d.env.Now()
			d.finish(task)
			done.Fail(task.Err)
			return
		}
		deadline := time.Duration(-1)
		if d.cfg.Timeout > 0 {
			deadline = task.SubmitTime + d.cfg.Timeout
		}
		var result any
		timedOut := false
		for try := 0; ; try++ {
			task.Tries = try + 1
			task.Status = TaskLaunched
			task.DispatchTime = d.env.Now()
			d.emit(task)
			if try > 0 {
				d.obs.Metrics().Counter("faas_task_retries_total", obs.L("app", task.App)).Inc()
			}
			result, err = d.attempt(p, ex, task, app, resolved, deadline)
			if errors.Is(err, devent.ErrTimeout) {
				timedOut = true
				break
			}
			if err == nil || try >= d.cfg.Retries {
				break
			}
			if delay := d.backoff(try + 1); delay > 0 {
				if deadline >= 0 && d.env.Now()+delay >= deadline {
					// Sleeping out the backoff would blow the deadline;
					// fail now rather than waste a dispatch.
					timedOut = true
					break
				}
				p.Sleep(delay)
			}
		}
		if timedOut {
			task.Status = TaskTimedOut
			task.Err = fmt.Errorf("%w: %v elapsed after %d tries", ErrTaskTimeout, d.cfg.Timeout, task.Tries)
			task.EndTime = d.env.Now()
			d.obs.Metrics().Counter("faas_tasks_timed_out_total", obs.L("app", task.App)).Inc()
			d.finish(task)
			done.Fail(task.Err)
			return
		}
		if err != nil {
			task.Status = TaskFailed
			task.Err = err
			if task.EndTime < task.SubmitTime {
				task.EndTime = d.env.Now()
			}
			d.finish(task)
			done.Fail(err)
			return
		}
		task.Status = TaskDone
		d.finish(task)
		done.Fire(result)
	})
	return fut
}

// attempt makes one dispatch attempt, enforcing the deadline (negative
// = none). A deadline expiry surfaces as devent.ErrTimeout; the
// executor-side completion, if it arrives later, finds no waiter and
// the orphaned attempt is abandoned.
func (d *DFK) attempt(p *devent.Proc, ex Executor, task *Task, app App, args []any, deadline time.Duration) (any, error) {
	if d.dispatchFault != nil {
		if err := d.dispatchFault(task); err != nil {
			return nil, err
		}
	}
	ev := ex.Submit(task, app, args)
	if deadline < 0 {
		return p.Wait(ev)
	}
	return p.WaitTimeout(ev, deadline-d.env.Now())
}

// backoff returns the delay before retry number attempt (1-based):
// RetryBackoff doubled per attempt, capped at RetryBackoffMax, spread
// by the seeded jitter factor. Draw order is the deterministic event
// order of the simulation, so identical seeds give identical delays.
func (d *DFK) backoff(attempt int) time.Duration {
	base := d.cfg.RetryBackoff
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20 // past ~1M× the base the cap always applies
	}
	delay := base << uint(shift)
	if max := d.cfg.RetryBackoffMax; max > 0 && delay > max {
		delay = max
	}
	if j := d.cfg.RetryJitter; j > 0 {
		u := d.rng.Float64()
		delay = time.Duration(float64(delay) * (1 + j*(2*u-1)))
		if delay < 0 {
			delay = 0
		}
	}
	return delay
}

// resolveArgs waits for future-valued arguments and substitutes their
// results.
func (d *DFK) resolveArgs(p *devent.Proc, args []any) ([]any, error) {
	resolved := make([]any, len(args))
	for i, a := range args {
		if fut, ok := a.(*Future); ok {
			v, err := fut.Result(p)
			if err != nil {
				return nil, err
			}
			resolved[i] = v
			continue
		}
		resolved[i] = a
	}
	return resolved, nil
}
