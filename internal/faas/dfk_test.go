package faas

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/devent"
)

// stubExecutor runs tasks inline on a spawned proc after a fixed
// delay; good enough to exercise the DFK.
type stubExecutor struct {
	env     *devent.Env
	label   string
	delay   time.Duration
	started bool
	n       int
}

func (s *stubExecutor) Label() string { return s.label }
func (s *stubExecutor) Start() error  { s.started = true; return nil }
func (s *stubExecutor) Shutdown()     { s.started = false }
func (s *stubExecutor) Workers() int  { return 1 }

func (s *stubExecutor) Submit(task *Task, app App, args []any) *devent.Event {
	done := s.env.NewEvent()
	s.n++
	s.env.Spawn("stub-run", func(p *devent.Proc) {
		task.Status = TaskRunning
		task.StartTime = p.Now()
		task.Worker = "stub"
		p.Sleep(s.delay)
		res, err := app.Fn(NewInvocation(p, task, args, nil, nil))
		task.EndTime = p.Now()
		if err != nil {
			done.Fail(err)
		} else {
			done.Fire(res)
		}
	})
	return done
}

func newTestDFK(t *testing.T, env *devent.Env, retries int) (*DFK, *stubExecutor) {
	t.Helper()
	ex := &stubExecutor{env: env, label: "stub", delay: time.Second}
	d := NewDFK(env, Config{RunDir: "test", Retries: retries}, ex)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return d, ex
}

func TestSubmitResultRoundTrip(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	d.Register(App{Name: "double", Executor: "stub", Fn: func(inv *Invocation) (any, error) {
		return inv.Arg(0).(int) * 2, nil
	}})
	var got any
	env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("double", 21)
		v, err := fut.Result(p)
		if err != nil {
			t.Error(err)
			return
		}
		got = v
		if fut.Task().Status != TaskDone {
			t.Errorf("status = %v", fut.Task().Status)
		}
		if fut.Task().RunTime() != time.Second {
			t.Errorf("runtime = %v", fut.Task().RunTime())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestUnknownAppFailsFuture(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	env.Spawn("main", func(p *devent.Proc) {
		_, err := d.Submit("nope").Result(p)
		if err == nil {
			t.Error("expected error")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExecutorFailsFuture(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	d.Register(App{Name: "fn", Executor: "ghost", Fn: func(*Invocation) (any, error) { return nil, nil }})
	env.Spawn("main", func(p *devent.Proc) {
		_, err := d.Submit("fn").Result(p)
		if !errors.Is(err, ErrNoExecutor) {
			t.Errorf("err = %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureArgumentsResolve(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	d.Register(App{Name: "const", Executor: "stub", Fn: func(*Invocation) (any, error) { return 10, nil }})
	d.Register(App{Name: "addOne", Executor: "stub", Fn: func(inv *Invocation) (any, error) {
		return inv.Arg(0).(int) + 1, nil
	}})
	env.Spawn("main", func(p *devent.Proc) {
		a := d.Submit("const")
		b := d.Submit("addOne", a) // depends on a
		v, err := b.Result(p)
		if err != nil {
			t.Error(err)
			return
		}
		if v != 11 {
			t.Errorf("v = %v", v)
		}
		// The dependent task started only after its dependency ended.
		if b.Task().StartTime < a.Task().EndTime {
			t.Errorf("dependency violated: %v < %v", b.Task().StartTime, a.Task().EndTime)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	boom := errors.New("boom")
	d.Register(App{Name: "bad", Executor: "stub", Fn: func(*Invocation) (any, error) { return nil, boom }})
	d.Register(App{Name: "dependent", Executor: "stub", Fn: func(inv *Invocation) (any, error) { return 1, nil }})
	env.Spawn("main", func(p *devent.Proc) {
		a := d.Submit("bad")
		b := d.Submit("dependent", a)
		_, err := b.Result(p)
		if !errors.Is(err, ErrDependency) {
			t.Errorf("err = %v", err)
		}
		if b.Task().Status != TaskFailed {
			t.Errorf("status = %v", b.Task().Status)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRetriesRecoverTransientFailure(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 1) // retries=1, as in the paper's config
	calls := 0
	d.Register(App{Name: "flaky", Executor: "stub", Fn: func(*Invocation) (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}})
	env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("flaky")
		v, err := fut.Result(p)
		if err != nil || v != "ok" {
			t.Errorf("v=%v err=%v", v, err)
		}
		if fut.Task().Tries != 2 {
			t.Errorf("tries = %d", fut.Task().Tries)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestRetriesExhaust(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 2)
	calls := 0
	boom := errors.New("always")
	d.Register(App{Name: "hopeless", Executor: "stub", Fn: func(*Invocation) (any, error) {
		calls++
		return nil, boom
	}})
	env.Spawn("main", func(p *devent.Proc) {
		_, err := d.Submit("hopeless").Result(p)
		if !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 3 { // initial + 2 retries
		t.Fatalf("calls = %d", calls)
	}
}

func TestTaskEventHooks(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	d.Register(App{Name: "fn", Executor: "stub", Fn: func(*Invocation) (any, error) { return nil, nil }})
	var seq []TaskStatus
	d.OnTaskEvent(func(ev TaskEvent) { seq = append(seq, ev.Status) })
	env.Spawn("main", func(p *devent.Proc) {
		d.Submit("fn").Result(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Worker-side pickup (TaskRunning) is observable through the
	// collector's span stream, not DFK hooks.
	want := fmt.Sprint([]TaskStatus{TaskPending, TaskLaunched, TaskDone})
	if fmt.Sprint(seq) != want {
		t.Fatalf("seq = %v", seq)
	}
}

func TestTasksAccounting(t *testing.T) {
	env := devent.NewEnv()
	d, _ := newTestDFK(t, env, 0)
	d.Register(App{Name: "fn", Executor: "stub", Fn: func(*Invocation) (any, error) { return nil, nil }})
	env.Spawn("main", func(p *devent.Proc) {
		f1 := d.Submit("fn")
		f2 := d.Submit("fn")
		p.Wait(devent.AllOf(env, f1.Event(), f2.Event()))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	tasks := d.Tasks()
	if len(tasks) != 2 || tasks[0].ID == tasks[1].ID {
		t.Fatalf("tasks = %+v", tasks)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[TaskStatus]string{
		TaskPending: "pending", TaskLaunched: "launched", TaskRunning: "running",
		TaskDone: "done", TaskFailed: "failed", TaskStatus(99): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d -> %s", s, s.String())
		}
	}
}

func TestConfigString(t *testing.T) {
	s := Config{RunDir: "runs", Retries: 2}.String()
	if !strings.Contains(s, "runs") || !strings.Contains(s, "2") {
		t.Fatalf("s = %q", s)
	}
}

func TestTaskTimingAccessors(t *testing.T) {
	task := &Task{SubmitTime: time.Second, StartTime: 3 * time.Second, EndTime: 10 * time.Second}
	if task.QueueDelay() != 2*time.Second {
		t.Fatalf("queue = %v", task.QueueDelay())
	}
	if task.RunTime() != 7*time.Second {
		t.Fatalf("run = %v", task.RunTime())
	}
}

func TestInvocationWithoutWorker(t *testing.T) {
	env := NewEnvForTest()
	env.Spawn("p", func(p *devent.Proc) {
		inv := NewInvocation(p, &Task{}, []any{1, 2}, nil, nil)
		if _, err := inv.GPU(); err == nil {
			t.Error("GPU without worker succeeded")
		}
		if inv.WorkerName() != "" {
			t.Error("worker name without worker")
		}
		// State returns a throwaway map rather than nil.
		inv.State()["k"] = "v"
		if inv.Arg(5) != nil || inv.Arg(-1) != nil {
			t.Error("out-of-range Arg not nil")
		}
		if inv.Arg(1) != 2 {
			t.Error("Arg(1) wrong")
		}
		if len(inv.Args()) != 2 {
			t.Error("Args length")
		}
		if inv.Proc() != p || inv.Task() == nil || inv.Env() != nil {
			t.Error("accessors wrong")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureAccessors(t *testing.T) {
	env := NewEnvForTest()
	task := &Task{ID: 7}
	done := env.NewEvent()
	fut := NewFuture(task, done)
	if fut.Done() || fut.Task() != task || fut.Event() != done {
		t.Fatal("future accessors")
	}
	done.Fire("x")
	if !fut.Done() {
		t.Fatal("not done after fire")
	}
}

// NewEnvForTest keeps the devent import local to these tests.
func NewEnvForTest() *devent.Env { return devent.NewEnv() }
