// Package faas is a Parsl-like function-as-a-service runtime running
// on the devent simulation kernel.
//
// The shape mirrors Parsl (§2.2 of the paper): users register apps
// (functions), submit them through a DataFlowKernel that resolves
// future-valued arguments and retries failures, and execution happens
// on pluggable executors — a pilot-job HighThroughputExecutor with
// per-worker accelerator pinning (package htex) or a thread-pool
// executor. The paper's contribution, fine-grained GPU partitioning,
// enters through the executor configuration: the accelerator list may
// repeat devices and carry per-entry GPU percentages or name MIG
// instances by UUID (Listings 2 and 3).
package faas

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
	"repro/internal/simgpu"
)

// ErrNoExecutor is returned when a submitted app names an unknown
// executor label.
var ErrNoExecutor = errors.New("faas: no such executor")

// ErrDependency is returned for tasks whose future-valued arguments
// failed.
var ErrDependency = errors.New("faas: dependency failed")

// ErrShutdown is returned for tasks aborted by executor shutdown.
var ErrShutdown = errors.New("faas: executor shut down")

// ErrTaskTimeout is returned for tasks that exceed Config.Timeout
// between submission and completion; the deadline covers every retry,
// so a timed-out task is terminal and never re-dispatched.
var ErrTaskTimeout = errors.New("faas: task deadline exceeded")

// ErrShed is returned for tasks rejected by admission control at
// Submit: the platform is over its SLO burn budget and sheds load
// before it queues, instead of letting every request blow the latency
// target. Shed tasks fail fast — they are never dispatched and never
// retried by the DFK; the client owns the retry, guided by the
// ShedError's RetryAfter hint.
var ErrShed = errors.New("faas: shed by admission control")

// ShedError is the concrete error a shed task fails with: it wraps
// ErrShed (errors.Is works) and carries retry-after semantics, the
// FaaS analogue of HTTP 429 + Retry-After.
type ShedError struct {
	// App is the submitted app name.
	App string
	// RetryAfter is the controller's hint for when pressure should
	// have eased (0 = no hint).
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("faas: shed by admission control: app %q, retry after %v", e.App, e.RetryAfter)
	}
	return fmt.Sprintf("faas: shed by admission control: app %q", e.App)
}

// Unwrap lets errors.Is(err, ErrShed) identify shed failures.
func (e *ShedError) Unwrap() error { return ErrShed }

// AppFunc is the body of an app. It runs inside a worker and receives
// the invocation context.
type AppFunc func(inv *Invocation) (any, error)

// App is a registered function (a Parsl "app").
type App struct {
	// Name is the registry key.
	Name string
	// Executor is the label of the executor that runs this app.
	Executor string
	// Fn is the function body.
	Fn AppFunc
}

// TaskStatus tracks a task through its lifecycle.
type TaskStatus int

// Task lifecycle states.
const (
	TaskPending TaskStatus = iota
	TaskLaunched
	TaskRunning
	TaskDone
	TaskFailed
	TaskTimedOut
	// TaskShed marks tasks rejected by admission control: terminal,
	// never dispatched. Distinct from TaskFailed so SLO monitors can
	// keep shed load out of the latency signal — shedding is how the
	// platform protects that signal, so counting sheds as latency
	// violations would lock the shed loop on permanently.
	TaskShed
)

// String implements fmt.Stringer.
func (s TaskStatus) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskLaunched:
		return "launched"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	case TaskTimedOut:
		return "timedout"
	case TaskShed:
		return "shed"
	}
	return "unknown"
}

// Terminal reports whether the status is final: a task reaches exactly
// one of TaskDone, TaskFailed, TaskTimedOut, or TaskShed, exactly once
// — the invariant the chaos suite asserts under fault injection.
func (s TaskStatus) Terminal() bool {
	return s == TaskDone || s == TaskFailed || s == TaskTimedOut || s == TaskShed
}

// TerminalStatuses lists every terminal state, in declaration order.
// Controllers that derive backlog from the submitted/completed counter
// families must range over all of them, or tasks ending in an omitted
// state count as in-flight forever.
var TerminalStatuses = []TaskStatus{TaskDone, TaskFailed, TaskTimedOut, TaskShed}

// Task is the record of one app invocation.
type Task struct {
	ID       int
	App      string
	Executor string
	Status   TaskStatus
	Tries    int
	Err      error

	SubmitTime   time.Duration
	DispatchTime time.Duration
	StartTime    time.Duration
	EndTime      time.Duration
	Worker       string

	// Span is the task's root span in the DFK's collector: executors
	// parent their queue/run spans under it, so the whole causal chain
	// submit -> queue -> pickup -> kernels hangs off one ID.
	Span obs.SpanID
}

// TaskTrack names the trace lane a task's spans render on; the DFK
// and executors must agree on it so queue spans nest under the task.
func TaskTrack(id int) string { return fmt.Sprintf("task-%d", id) }

// QueueDelay is the time from submission to execution start.
func (t *Task) QueueDelay() time.Duration { return t.StartTime - t.SubmitTime }

// RunTime is the execution duration.
func (t *Task) RunTime() time.Duration { return t.EndTime - t.StartTime }

// Invocation is the context an app body receives: the simulated
// process, resolved arguments, the worker's accelerator binding, and
// per-worker state that persists across invocations (the warm
// container).
type Invocation struct {
	proc   *devent.Proc
	task   *Task
	args   []any
	env    map[string]string
	worker WorkerHandle
}

// NewInvocation assembles an invocation context; it is exported for
// executor implementations.
func NewInvocation(p *devent.Proc, task *Task, args []any, env map[string]string, w WorkerHandle) *Invocation {
	return &Invocation{proc: p, task: task, args: args, env: env, worker: w}
}

// Proc returns the simulated process running the invocation.
func (inv *Invocation) Proc() *devent.Proc { return inv.proc }

// Task returns the task record.
func (inv *Invocation) Task() *Task { return inv.task }

// Args returns the resolved positional arguments.
func (inv *Invocation) Args() []any { return inv.args }

// Arg returns argument i (nil when out of range).
func (inv *Invocation) Arg(i int) any {
	if i < 0 || i >= len(inv.args) {
		return nil
	}
	return inv.args[i]
}

// Env returns the worker's environment (CUDA_VISIBLE_DEVICES etc.).
func (inv *Invocation) Env() map[string]string { return inv.env }

// Compute blocks for d of simulated CPU work.
func (inv *Invocation) Compute(d time.Duration) { inv.proc.Sleep(d) }

// GPU returns the worker's GPU context, creating it on first use (the
// cold-start component "GPU context initialization", §6). Apps on
// workers without an accelerator binding get an error.
func (inv *Invocation) GPU() (*simgpu.Context, error) {
	if inv.worker == nil {
		return nil, errors.New("faas: invocation has no worker GPU binding")
	}
	return inv.worker.GPUContext(inv.proc)
}

// State returns the worker-local cache that survives across
// invocations on the same worker (model weights, engines, ...).
func (inv *Invocation) State() map[string]any {
	if inv.worker == nil {
		return map[string]any{}
	}
	return inv.worker.State()
}

// WorkerName identifies the executing worker (for traces).
func (inv *Invocation) WorkerName() string {
	if inv.worker == nil {
		return ""
	}
	return inv.worker.Name()
}

// WorkerHandle is what executors expose to invocations: lazy GPU
// context creation and warm per-worker state.
type WorkerHandle interface {
	Name() string
	GPUContext(p *devent.Proc) (*simgpu.Context, error)
	State() map[string]any
}

// Future is the handle returned by Submit; it fires when the task
// completes (with its return value) or fails.
type Future struct {
	task *Task
	done *devent.Event
}

// NewFuture pairs a task with its completion event (used by the DFK).
func NewFuture(task *Task, done *devent.Event) *Future {
	return &Future{task: task, done: done}
}

// Task returns the underlying task record.
func (f *Future) Task() *Task { return f.task }

// Event returns the completion event (for AnyOf/AllOf composition).
func (f *Future) Event() *devent.Event { return f.done }

// Done reports whether the task has completed.
func (f *Future) Done() bool { return f.done.Fired() }

// Result blocks until completion and returns the app's return value.
func (f *Future) Result(p *devent.Proc) (any, error) {
	return p.Wait(f.done)
}

// Executor runs tasks. Implementations live in subpackages.
type Executor interface {
	// Label is the registry key used by App.Executor.
	Label() string
	// Start launches the executor's infrastructure (blocks, workers).
	Start() error
	// Submit queues a task; the returned event fires with the app's
	// return value or fails with its error.
	Submit(task *Task, app App, args []any) *devent.Event
	// Shutdown stops workers; queued tasks fail with ErrShutdown.
	Shutdown()
	// Workers reports the current worker count (for tests/monitoring).
	Workers() int
}

// TaskEvent is emitted to monitoring hooks at each status change.
type TaskEvent struct {
	Task   *Task
	Status TaskStatus
	At     time.Duration
}

// Config carries DFK-wide settings (mirrors Parsl's Config object,
// Listing 1).
type Config struct {
	// RunDir is a label for the run (kept for config parity; the
	// simulator does not write logs to disk).
	RunDir string
	// Retries is how many times a failed task is retried before its
	// future fails (Parsl's retries=1 in Listing 1).
	Retries int
	// Timeout is the per-task deadline measured from submission across
	// all retries; when it elapses the task fails terminally with
	// ErrTaskTimeout. 0 disables deadlines.
	Timeout time.Duration
	// RetryBackoff is the delay before retry n: it doubles with each
	// attempt (RetryBackoff << (n-1)) up to RetryBackoffMax. 0 keeps
	// the seed behavior of immediate re-dispatch.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff (0 = uncapped).
	RetryBackoffMax time.Duration
	// RetryJitter spreads backoff delays by a uniform factor in
	// [1-RetryJitter, 1+RetryJitter], drawn from the DFK's seeded RNG
	// so runs stay deterministic. 0 disables jitter.
	RetryJitter float64
	// Seed seeds the DFK's RNG (retry jitter); 0 means seed 1.
	Seed int64
	// DropCompleted stops the DFK from retaining task records: Tasks()
	// returns nil and memory stays bounded by in-flight work instead of
	// run length. Futures still hold their own *Task, and monitoring
	// hooks still see every event, so only whole-run retrospection is
	// lost. Million-task scenarios set this.
	DropCompleted bool
	// Collector receives task spans and metrics. Leave nil to have
	// NewDFK create one — the DFK always has a collector, so
	// monitoring (which derives its records from span events) works
	// without further configuration.
	Collector *obs.Collector
}

// String renders the config compactly.
func (c Config) String() string {
	return fmt.Sprintf("Config{RunDir:%q Retries:%d}", c.RunDir, c.Retries)
}
