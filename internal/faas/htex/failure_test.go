package htex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
)

// A worker crash mid-task fails the task with ErrWorkerLost; with
// Retries=1 the DFK re-dispatches it to the surviving worker and the
// future still succeeds.
func TestWorkerCrashRetriesOnSurvivor(t *testing.T) {
	r := newRig(t, 1)
	ex, err := New(r.env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0", "0"},
		Provider:              r.local(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{Retries: 1}, ex)
	var runs []string
	d.Register(faas.App{Name: "slow", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		if _, err := inv.GPU(); err != nil {
			return nil, err
		}
		runs = append(runs, inv.WorkerName())
		inv.Compute(10 * time.Second)
		return "done", nil
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("slow")
		p.Sleep(2 * time.Second) // task is running on some worker
		victim := fut.Task().Worker
		if victim == "" {
			t.Error("task not started")
			return
		}
		if !ex.KillWorker(victim) {
			t.Errorf("kill %q failed", victim)
			return
		}
		v, err := fut.Result(p)
		if err != nil || v != "done" {
			t.Errorf("v=%v err=%v", v, err)
			return
		}
		if fut.Task().Tries != 2 {
			t.Errorf("tries = %d", fut.Task().Tries)
		}
		if fut.Task().Worker == victim {
			t.Errorf("retry landed on the dead worker %q", victim)
		}
	})
	r.run(t)
	if len(runs) != 2 || runs[0] == runs[1] {
		t.Fatalf("runs = %v", runs)
	}
	if ex.Workers() != 1 {
		t.Fatalf("workers after crash = %d", ex.Workers())
	}
	// The dead worker's GPU context is gone; the survivor's remains.
	if got := r.devs[0].Contexts(); got != 1 {
		t.Fatalf("device contexts = %d", got)
	}
}

// Without retries the crash surfaces as ErrWorkerLost.
func TestWorkerCrashWithoutRetries(t *testing.T) {
	r := newRig(t, 0)
	ex, _ := New(r.env, Config{Label: "cpu", MaxWorkers: 1, Provider: r.local()})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(faas.App{Name: "slow", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(10 * time.Second)
		return nil, nil
	}})
	d.Start()
	var got error
	r.env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("slow")
		p.Sleep(time.Second)
		ex.KillWorker(fut.Task().Worker)
		_, got = fut.Result(p)
	})
	r.run(t)
	if !errors.Is(got, ErrWorkerLost) {
		t.Fatalf("got = %v", got)
	}
}

// Killing an idle worker shrinks the pool without affecting tasks.
func TestKillIdleWorker(t *testing.T) {
	r := newRig(t, 0)
	ex, _ := New(r.env, Config{Label: "cpu", MaxWorkers: 2, Provider: r.local()})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(faas.App{Name: "fn", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return "ok", nil
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Second) // let workers start
		names := ex.WorkerNames()
		if len(names) != 2 {
			t.Errorf("names = %v", names)
			return
		}
		if !ex.KillWorker(names[0]) {
			t.Error("kill failed")
			return
		}
		p.Sleep(time.Second)
		if ex.Workers() != 1 {
			t.Errorf("workers = %d", ex.Workers())
		}
		if v, err := d.Submit("fn").Result(p); err != nil || v != "ok" {
			t.Errorf("v=%v err=%v", v, err)
		}
	})
	r.run(t)
}

// Killing an unknown worker reports false; double-kill reports false.
func TestKillWorkerBookkeeping(t *testing.T) {
	r := newRig(t, 0)
	ex, _ := New(r.env, Config{Label: "cpu", MaxWorkers: 1, Provider: r.local()})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Second)
		if ex.KillWorker("ghost") {
			t.Error("killed a ghost")
		}
		name := ex.WorkerNames()[0]
		if !ex.KillWorker(name) {
			t.Error("first kill failed")
		}
		p.Sleep(time.Second)
		if ex.KillWorker(name) {
			t.Error("double kill succeeded")
		}
	})
	r.run(t)
}
