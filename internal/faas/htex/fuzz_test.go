package htex

import (
	"testing"
	"time"
)

// FuzzConfigValidate checks that Validate never panics and that every
// config it accepts satisfies the invariants the executor relies on:
// a label, a worker source, aligned percentage lists with in-range
// values, and non-negative recovery knobs.
func FuzzConfigValidate(f *testing.F) {
	f.Add("gpu", 0, 3, 3, 50, int64(0), int64(0), 0)
	f.Add("cpu", 4, 0, 0, 0, int64(0), int64(0), 0)
	f.Add("gpu", 0, 2, 3, 120, int64(-1), int64(5), -2)
	f.Add("", 0, 0, 0, 0, int64(1e9), int64(5e8), 3)
	f.Fuzz(func(t *testing.T, label string, maxWorkers, nAcc, nPct, pct int, backoff, backoffMax int64, blacklist int) {
		if nAcc < 0 || nAcc > 64 || nPct < 0 || nPct > 64 {
			t.Skip()
		}
		cfg := Config{
			Label:             label,
			MaxWorkers:        maxWorkers,
			Provider:          stubProvider{},
			RestartBackoff:    time.Duration(backoff),
			RestartBackoffMax: time.Duration(backoffMax),
			BlacklistAfter:    blacklist,
		}
		for i := 0; i < nAcc; i++ {
			cfg.AvailableAccelerators = append(cfg.AvailableAccelerators, "0")
		}
		for i := 0; i < nPct; i++ {
			cfg.GPUPercentages = append(cfg.GPUPercentages, pct)
		}
		if err := cfg.Validate(); err != nil {
			return
		}
		if cfg.Label == "" {
			t.Fatal("accepted empty label")
		}
		if len(cfg.AvailableAccelerators) == 0 && cfg.MaxWorkers <= 0 {
			t.Fatal("accepted config with no workers")
		}
		if n := len(cfg.GPUPercentages); n > 0 && n != len(cfg.AvailableAccelerators) {
			t.Fatalf("accepted misaligned percentages: %d for %d accelerators",
				n, len(cfg.AvailableAccelerators))
		}
		for _, p := range cfg.GPUPercentages {
			if p < 0 || p > 100 {
				t.Fatalf("accepted out-of-range percentage %d", p)
			}
		}
		if cfg.RestartBackoff < 0 || cfg.RestartBackoffMax < 0 || cfg.BlacklistAfter < 0 {
			t.Fatal("accepted negative recovery knob")
		}
		if cfg.RestartBackoffMax > 0 && cfg.RestartBackoffMax < cfg.RestartBackoff {
			t.Fatal("accepted backoff cap below base")
		}
		// Bindings on a valid config must not panic and must align.
		if b := cfg.Bindings(); len(b) != len(cfg.AvailableAccelerators) {
			t.Fatalf("Bindings() = %d entries for %d accelerators",
				len(b), len(cfg.AvailableAccelerators))
		}
	})
}
