// Package htex implements the HighThroughputExecutor: Parsl's
// pilot-job executor, extended per the paper's §4 with fine-grained
// GPU partitioning. Workers are pinned one-to-one to entries of
// AvailableAccelerators; listing a GPU more than once multiplexes it,
// and each entry may carry a GPU percentage (MPS) or be a MIG UUID.
// The binding is applied as environment variables before the worker
// starts, exactly the mechanism the paper adds to Parsl (Listing 2).
package htex

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/obs"
	"repro/internal/simgpu"
)

// Config mirrors the paper's extended HighThroughputExecutor
// configuration (Listings 1–3).
type Config struct {
	// Label names the executor ("cpu", "gpu").
	Label string
	// MaxWorkers is the per-node worker count when no accelerators are
	// configured (CPU executor).
	MaxWorkers int
	// AvailableAccelerators lists accelerator references, one worker
	// per entry: device indices ("0"), repeated indices to multiplex,
	// or MIG UUIDs. (Listing 2: ['1','2','4']; Listing 3 uses MIG
	// UUIDs.)
	AvailableAccelerators []string
	// GPUPercentages is the paper's extension: a per-entry MPS GPU
	// percentage aligned with AvailableAccelerators (Listing 2:
	// [50, 25, 30]). Empty means no caps; otherwise the lengths must
	// match.
	GPUPercentages []int
	// WorkerInit is the function-initialization cold-start component
	// (§6: download, decompression, interpreter start).
	WorkerInit time.Duration
	// Provider supplies nodes; Blocks is how many to request
	// (default 1).
	Provider provider.Provider
	Blocks   int
	// RestartBackoff, when positive, restarts a crashed worker after an
	// exponential delay (RestartBackoff doubled per crash of that slot,
	// capped at RestartBackoffMax). 0 keeps the seed behavior: crashed
	// workers stay dead.
	RestartBackoff time.Duration
	// RestartBackoffMax caps the restart backoff (0 = uncapped).
	RestartBackoffMax time.Duration
	// BlacklistAfter blacklists a worker slot after that many crashes:
	// the slot is never restarted again. 0 disables blacklisting.
	BlacklistAfter int
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.Label == "" {
		return fmt.Errorf("htex: empty label")
	}
	if c.Provider == nil {
		return fmt.Errorf("htex: executor %q needs a provider", c.Label)
	}
	if len(c.GPUPercentages) > 0 && len(c.GPUPercentages) != len(c.AvailableAccelerators) {
		return fmt.Errorf("htex: executor %q: %d GPU percentages for %d accelerators",
			c.Label, len(c.GPUPercentages), len(c.AvailableAccelerators))
	}
	for _, pct := range c.GPUPercentages {
		if pct < 0 || pct > 100 {
			return fmt.Errorf("htex: GPU percentage %d out of range", pct)
		}
	}
	if len(c.AvailableAccelerators) == 0 && c.MaxWorkers <= 0 {
		return fmt.Errorf("htex: executor %q has no workers", c.Label)
	}
	if c.RestartBackoff < 0 {
		return fmt.Errorf("htex: negative RestartBackoff %v", c.RestartBackoff)
	}
	if c.RestartBackoffMax < 0 {
		return fmt.Errorf("htex: negative RestartBackoffMax %v", c.RestartBackoffMax)
	}
	if c.RestartBackoffMax > 0 && c.RestartBackoffMax < c.RestartBackoff {
		return fmt.Errorf("htex: RestartBackoffMax %v below RestartBackoff %v",
			c.RestartBackoffMax, c.RestartBackoff)
	}
	if c.BlacklistAfter < 0 {
		return fmt.Errorf("htex: negative BlacklistAfter %d", c.BlacklistAfter)
	}
	return nil
}

// Bindings derives the per-worker accelerator bindings — the env-var
// assembly the paper adds to Parsl's executor.
func (c Config) Bindings() []gpuctl.Binding {
	out := make([]gpuctl.Binding, len(c.AvailableAccelerators))
	for i, acc := range c.AvailableAccelerators {
		b := gpuctl.Binding{Accelerator: acc}
		if len(c.GPUPercentages) > 0 {
			b.GPUPercent = c.GPUPercentages[i]
		}
		out[i] = b
	}
	return out
}

// ErrWorkerLost fails a task whose worker crashed mid-execution; the
// DFK's retry policy re-dispatches it to a surviving worker.
var ErrWorkerLost = errors.New("htex: worker lost")

// ErrNoWorkers fails queued and new submissions when every worker has
// crashed (or been blacklisted) and no restart is pending — without it
// the queue would strand tasks forever.
var ErrNoWorkers = errors.New("htex: no live workers")

// submission is one queued task.
type submission struct {
	task  *faas.Task
	app   faas.App
	args  []any
	done  *devent.Event
	qspan obs.SpanID
}

// blockInfo tracks one provisioned block: the node it runs on and its
// worker pool, so scale-in can retire the block as a unit and return
// the node to the provider.
type blockInfo struct {
	id      int
	node    *gpuctl.Node
	workers []*worker
	procs   []*devent.Proc
}

// HTEX is the executor. Create with New, register with a DFK, Start
// to provision workers.
type HTEX struct {
	env      *devent.Env
	cfg      Config
	queue    *devent.Chan[*submission]
	shutdown *devent.Event
	workers  []*worker
	procs    []*devent.Proc
	started  bool
	gen      int

	draining    bool
	provisioned bool
	// pendingRestarts counts crashed workers whose respawn timer is
	// running; while it is non-zero the queue is not stranded.
	pendingRestarts int
	crashes         map[string]int
	blacklisted     map[string]bool

	// blocks tracks live provisioned blocks for the scale-out/in path;
	// nextBlock numbers them (reset on Start so a fresh worker set gets
	// block0.. again, as before the scaling API existed).
	blocks    []*blockInfo
	nextBlock int
	// scaledToZero marks a deliberate ScaleIn to zero workers: unlike a
	// crash of the last worker, submissions keep queueing, waiting for
	// the next ScaleOut — the scale-to-zero economics the autoscaler
	// depends on.
	scaledToZero bool

	obs        *obs.Collector
	gWorkers   *obs.Gauge
	gBlocks    *obs.Gauge
	gBlacklist *obs.Gauge
	cCold      *obs.Counter
	cKilled    *obs.Counter
	cRestarts  *obs.Counter
	cWRestarts *obs.Counter
	cPicked    *obs.Counter
	cScaleOut  *obs.Counter
	cScaleIn   *obs.Counter
}

// New creates the executor; Validate errors surface here.
func New(env *devent.Env, cfg Config) (*HTEX, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 1
	}
	return &HTEX{
		env:         env,
		cfg:         cfg,
		queue:       devent.NewChan[*submission](env, 1<<20),
		crashes:     make(map[string]int),
		blacklisted: make(map[string]bool),
	}, nil
}

// Label implements faas.Executor.
func (h *HTEX) Label() string { return h.cfg.Label }

// Config returns the executor configuration.
func (h *HTEX) Config() Config { return h.cfg }

// SetCollector wires the DFK's collector: worker-lifecycle and task
// spans plus executor metrics flow into it. Instruments are resolved
// once here so the hot paths pay only nil-safe method calls.
func (h *HTEX) SetCollector(c *obs.Collector) {
	h.obs = c
	m := c.Metrics()
	l := obs.L("executor", h.cfg.Label)
	h.gWorkers = m.Gauge("htex_workers_live", l)
	h.gBlocks = m.Gauge("htex_blocks_live", l)
	h.gBlacklist = m.Gauge("htex_blacklist_size", l)
	h.cCold = m.Counter("htex_cold_starts_total", l)
	h.cKilled = m.Counter("htex_workers_killed_total", l)
	h.cRestarts = m.Counter("htex_restarts_total", l)
	h.cWRestarts = m.Counter("htex_worker_restarts_total", l)
	h.cPicked = m.Counter("htex_tasks_picked_total", l)
	h.cScaleOut = m.Counter("htex_scale_out_total", l)
	h.cScaleIn = m.Counter("htex_scale_in_total", l)
}

// Workers implements faas.Executor.
func (h *HTEX) Workers() int { return len(h.workers) }

// Start implements faas.Executor: provision blocks from the provider
// and launch one worker proc per accelerator entry (or MaxWorkers CPU
// workers) per block.
func (h *HTEX) Start() error {
	if h.started {
		return nil
	}
	h.started = true
	h.shutdown = h.env.NewNamedEvent("htex-shutdown:" + h.cfg.Label)
	h.gen++
	gen := h.gen
	// A fresh start (including a repartition Restart) wipes crash
	// history: the new worker set gets a clean slate.
	if len(h.blacklisted) > 0 {
		h.gBlacklist.Set(0)
	}
	h.crashes = make(map[string]int)
	h.blacklisted = make(map[string]bool)
	h.blocks = nil
	h.nextBlock = 0
	h.scaledToZero = false
	h.env.Spawn("htex-start:"+h.cfg.Label, func(p *devent.Proc) {
		v, err := p.Wait(h.cfg.Provider.Provision(h.cfg.Blocks))
		if err != nil {
			h.env.Fail(fmt.Errorf("htex %q: provision: %w", h.cfg.Label, err))
			return
		}
		nodes := v.([]*gpuctl.Node)
		if h.gen != gen || !h.started {
			// Shut down while provisioning: hand the grant straight
			// back so the pool does not leak.
			h.cfg.Provider.Release(nodes)
			return
		}
		for _, node := range nodes {
			h.spawnBlock(node)
		}
		h.provisioned = true
	})
	return nil
}

// spawnBlock launches one block's worker pool on a provisioned node:
// one worker per accelerator binding (or MaxWorkers CPU workers).
func (h *HTEX) spawnBlock(node *gpuctl.Node) *blockInfo {
	b := &blockInfo{id: h.nextBlock, node: node}
	h.nextBlock++
	bindings := h.cfg.Bindings()
	n := len(bindings)
	if n == 0 {
		n = h.cfg.MaxWorkers
	}
	for wi := 0; wi < n; wi++ {
		w := &worker{
			name:  fmt.Sprintf("%s/block%d/worker%d", h.cfg.Label, b.id, wi),
			node:  node,
			obsC:  h.obs,
			state: make(map[string]any),
			env:   map[string]string{},
		}
		if len(bindings) > 0 {
			w.binding = bindings[wi]
			w.env = bindings[wi].Environ()
		}
		// Lifecycle events exist before the loop runs, so KillWorker
		// and ScaleIn work on workers that have not been scheduled yet.
		w.kill = h.env.NewNamedEvent("kill:" + w.name)
		w.retire = h.env.NewNamedEvent("retire:" + w.name)
		h.workers = append(h.workers, w)
		b.workers = append(b.workers, w)
		wp := h.env.Spawn(w.name, func(wp *devent.Proc) {
			h.workerLoop(wp, w)
		})
		wp.SetDaemon(true) // idle workers are not deadlocks
		h.procs = append(h.procs, wp)
		b.procs = append(b.procs, wp)
	}
	h.blocks = append(h.blocks, b)
	h.gBlocks.Set(float64(len(h.blocks)))
	h.scaledToZero = false
	return b
}

// Blocks reports how many provisioned blocks are live.
func (h *HTEX) Blocks() int { return len(h.blocks) }

// ScaleOut provisions n additional blocks from the provider and
// launches their worker pools. It blocks through the provider's grant
// delay; a failed grant (pool exhausted) returns the error without
// touching the running pool.
func (h *HTEX) ScaleOut(p *devent.Proc, n int) error {
	if n <= 0 {
		return fmt.Errorf("htex %q: scale-out of %d blocks", h.cfg.Label, n)
	}
	if !h.started {
		return fmt.Errorf("htex %q: scale-out before Start: %w", h.cfg.Label, faas.ErrShutdown)
	}
	gen := h.gen
	v, err := p.Wait(h.cfg.Provider.Provision(n))
	if err != nil {
		return fmt.Errorf("htex %q: scale-out: %w", h.cfg.Label, err)
	}
	nodes := v.([]*gpuctl.Node)
	if h.gen != gen || !h.started {
		h.cfg.Provider.Release(nodes)
		return fmt.Errorf("htex %q: restarted during scale-out: %w", h.cfg.Label, faas.ErrShutdown)
	}
	for _, node := range nodes {
		h.spawnBlock(node)
	}
	h.cScaleOut.Add(float64(n))
	return nil
}

// ScaleIn gracefully retires the n most recently added blocks (LIFO):
// each block's workers finish their in-flight task, exit cleanly —
// no crash accounting, no restart timers — and the block's node goes
// back to the provider, immediately grantable by the next ScaleOut.
// Retiring every block is allowed (scale-to-zero): submissions keep
// queueing until a later ScaleOut, they are not failed. Returns how
// many blocks were actually retired (capped at the live count).
func (h *HTEX) ScaleIn(p *devent.Proc, n int) (int, error) {
	if !h.started {
		return 0, fmt.Errorf("htex %q: scale-in before Start: %w", h.cfg.Label, faas.ErrShutdown)
	}
	if n > len(h.blocks) {
		n = len(h.blocks)
	}
	if n <= 0 {
		return 0, nil
	}
	gen := h.gen
	retire := h.blocks[len(h.blocks)-n:]
	h.blocks = h.blocks[:len(h.blocks)-n]
	if len(h.blocks) == 0 {
		h.scaledToZero = true
	}
	h.gBlocks.Set(float64(len(h.blocks)))
	for _, b := range retire {
		for _, w := range b.workers {
			if w.retire != nil && !w.retire.Fired() {
				w.retire.Fire(nil)
			}
		}
	}
	// Wait for every retired worker to drain its in-flight task and
	// exit (destroying its GPU context) before returning the nodes.
	for _, b := range retire {
		for _, wp := range b.procs {
			p.Wait(wp.Done())
		}
	}
	if h.gen != gen || !h.started {
		return 0, fmt.Errorf("htex %q: restarted during scale-in: %w", h.cfg.Label, faas.ErrShutdown)
	}
	nodes := make([]*gpuctl.Node, 0, n)
	for _, b := range retire {
		nodes = append(nodes, b.node)
	}
	if err := h.cfg.Provider.Release(nodes); err != nil {
		return n, fmt.Errorf("htex %q: scale-in release: %w", h.cfg.Label, err)
	}
	h.cScaleIn.Add(float64(n))
	return n, nil
}

func (h *HTEX) workerLoop(p *devent.Proc, w *worker) {
	cleanup := func() {
		if w.gpu != nil && !w.gpu.Destroyed() {
			w.gpu.Destroy()
			w.gpu = nil
		}
	}
	defer cleanup()
	// The worker's lifecycle is one span on its own track; init and
	// run spans nest under it. Each loop entry is a cold start.
	wspan := h.obs.StartSpan("htex", "worker", w.name, 0,
		obs.String("executor", h.cfg.Label),
		obs.String("accelerator", w.binding.Accelerator),
		obs.Int("gpu_pct", w.binding.GPUPercent))
	// Daemon lifecycle: stays open until drain, so pin it out of the
	// streaming flush frontier (it would otherwise block every span
	// recorded after it for the whole run).
	h.obs.PinSpan(wspan)
	h.gWorkers.Add(1)
	h.cCold.Inc()
	defer func() {
		h.gWorkers.Add(-1)
		h.obs.EndSpan(wspan)
	}()
	if h.cfg.WorkerInit > 0 {
		t0 := p.Now()
		p.Sleep(h.cfg.WorkerInit) // function initialization (§6)
		h.obs.AddSpan("htex", "init", w.name, wspan, t0, p.Now())
	}
	w.ready = true
	for {
		// Retirement is checked before the queue: RecvOr drains buffered
		// work first, so a retired worker would otherwise keep picking
		// tasks as long as a backlog exists.
		if w.retire.Fired() {
			h.workerRetired(w)
			return
		}
		sub, ok, cancelled := h.queue.RecvOr(p, devent.AnyOf(h.env, h.shutdown, w.kill, w.retire))
		if cancelled || !ok {
			if w.kill.Fired() {
				h.workerCrashed(w)
			} else if w.retire.Fired() {
				h.workerRetired(w)
			}
			return
		}
		t := sub.task
		t.Status = faas.TaskRunning
		t.StartTime = p.Now()
		t.Worker = w.name
		h.obs.EndSpan(sub.qspan, obs.String("worker", w.name))
		rspan := h.obs.StartSpan("htex", "run", w.name, t.Span,
			obs.Int("task", t.ID), obs.String("app", t.App),
			obs.String("accelerator", w.binding.Accelerator),
			obs.Int("gpu_pct", w.binding.GPUPercent))
		w.runSpan = rspan
		if w.gpu != nil && !w.gpu.Destroyed() {
			w.gpu.SetTraceParent(rspan)
		}
		h.cPicked.Inc()
		// Run the task body in its own proc so a worker crash
		// (KillWorker) can abandon it: the orphaned body keeps no
		// resources once the GPU context is destroyed.
		taskDone := h.env.NewNamedEvent("task:" + w.name)
		body := h.env.Spawn(w.name+"/task", func(tp *devent.Proc) {
			result, err := sub.app.Fn(faas.NewInvocation(tp, t, sub.args, w.env, w))
			if taskDone.Fired() {
				return // worker already declared lost
			}
			if err != nil {
				taskDone.Fail(err)
			} else {
				taskDone.Fire(result)
			}
		})
		body.SetDaemon(true)
		v, err := p.Wait(devent.AnyOf(h.env, taskDone, w.kill))
		if err == nil && v.(*devent.Event) == w.kill {
			// Crash: abandon the body, abort its kernels, fail the
			// task so the DFK can retry elsewhere.
			t.EndTime = p.Now()
			h.obs.EndSpan(rspan, obs.String("status", "lost"))
			cleanup()
			if !taskDone.Fired() {
				taskDone.Fail(ErrWorkerLost)
			}
			sub.done.Fail(fmt.Errorf("%w: %s", ErrWorkerLost, w.name))
			h.workerCrashed(w)
			return
		}
		t.EndTime = p.Now()
		if taskDone.Err() != nil {
			h.obs.EndSpan(rspan,
				obs.String("status", "failed"),
				obs.String("error", taskDone.Err().Error()))
			sub.done.Fail(taskDone.Err())
		} else {
			h.obs.EndSpan(rspan, obs.String("status", "done"))
			sub.done.Fire(taskDone.Value())
		}
	}
}

// KillWorker simulates a worker-process crash (OOM kill, node fault):
// its in-flight task fails with ErrWorkerLost (retriable), its GPU
// context is destroyed, and the worker leaves the pool. It reports
// whether a worker with that name existed.
func (h *HTEX) KillWorker(name string) bool {
	for _, w := range h.workers {
		if w.name == name && w.kill != nil && !w.kill.Fired() {
			w.kill.Fire(nil)
			return true
		}
	}
	return false
}

// WorkerNames lists the live workers.
func (h *HTEX) WorkerNames() []string {
	names := make([]string, 0, len(h.workers))
	for _, w := range h.workers {
		names = append(names, w.name)
	}
	return names
}

func (h *HTEX) removeWorker(w *worker) {
	for i, x := range h.workers {
		if x == w {
			h.workers = append(h.workers[:i], h.workers[i+1:]...)
			return
		}
	}
}

// workerRetired is the clean exit path for scale-in: the worker
// leaves the pool with no crash accounting and no restart timer.
func (h *HTEX) workerRetired(w *worker) {
	h.removeWorker(w)
}

// workerCrashed is the single exit path for killed workers (idle or
// mid-task): it counts the crash against the worker's slot, blacklists
// the slot after BlacklistAfter crashes, schedules an exponential-
// backoff restart when enabled, and otherwise checks the queue for
// stranding.
func (h *HTEX) workerCrashed(w *worker) {
	h.removeWorker(w)
	h.cKilled.Inc()
	if !h.started {
		return
	}
	h.crashes[w.name]++
	n := h.crashes[w.name]
	if b := h.cfg.BlacklistAfter; b > 0 && n >= b {
		if !h.blacklisted[w.name] {
			h.blacklisted[w.name] = true
			h.gBlacklist.Add(1)
		}
		h.failIfStranded()
		return
	}
	if h.cfg.RestartBackoff <= 0 {
		h.failIfStranded()
		return
	}
	shift := n - 1
	if shift > 20 {
		shift = 20
	}
	delay := h.cfg.RestartBackoff << uint(shift)
	if max := h.cfg.RestartBackoffMax; max > 0 && delay > max {
		delay = max
	}
	h.pendingRestarts++
	gen := h.gen
	h.env.Schedule(delay, func() {
		h.pendingRestarts--
		if h.gen != gen || !h.started || h.blacklisted[w.name] {
			h.failIfStranded()
			return
		}
		h.respawn(w)
	})
}

// respawn replaces a crashed worker: same slot name, node, and
// accelerator binding, but fresh warm state — the restarted process
// re-pays every cold-start component, exactly as a real pilot-job
// restart would.
func (h *HTEX) respawn(old *worker) {
	// The slot's block must still be live: when ScaleIn retired it
	// while the restart timer ran, the node is back with the provider
	// and the slot must stay dead.
	var blk *blockInfo
	slot := -1
	for _, b := range h.blocks {
		for i, x := range b.workers {
			if x == old {
				blk, slot = b, i
				break
			}
		}
	}
	if blk == nil {
		h.failIfStranded()
		return
	}
	w := &worker{
		name:    old.name,
		node:    old.node,
		binding: old.binding,
		env:     old.env,
		state:   make(map[string]any),
	}
	w.kill = h.env.NewNamedEvent("kill:" + w.name)
	w.retire = h.env.NewNamedEvent("retire:" + w.name)
	h.workers = append(h.workers, w)
	blk.workers[slot] = w
	h.cWRestarts.Inc()
	wp := h.env.Spawn(w.name, func(p *devent.Proc) {
		h.workerLoop(p, w)
	})
	wp.SetDaemon(true)
	h.procs = append(h.procs, wp)
	blk.procs = append(blk.procs, wp)
}

// failIfStranded drains the queue with ErrNoWorkers when no worker is
// alive and none is coming back — queued submissions would otherwise
// never complete, violating the exactly-one-terminal-state invariant.
func (h *HTEX) failIfStranded() {
	if !h.started || !h.provisioned || len(h.workers) > 0 || h.pendingRestarts > 0 {
		return
	}
	// Scale-to-zero is not stranding: the queue waits for the next
	// ScaleOut.
	if h.scaledToZero {
		return
	}
	for {
		sub, ok := h.queue.TryRecv()
		if !ok {
			return
		}
		h.obs.EndSpan(sub.qspan, obs.String("status", "no-workers"))
		sub.done.Fail(fmt.Errorf("%w: executor %q", ErrNoWorkers, h.cfg.Label))
	}
}

// Submit implements faas.Executor.
func (h *HTEX) Submit(task *faas.Task, app faas.App, args []any) *devent.Event {
	done := h.env.NewNamedEvent(fmt.Sprintf("htex-%s-task-%d", h.cfg.Label, task.ID))
	sub := &submission{task: task, app: app, args: args, done: done}
	if !h.started {
		done.Fail(faas.ErrShutdown)
		return done
	}
	if h.draining {
		done.Fail(fmt.Errorf("%w: executor %q draining", faas.ErrShutdown, h.cfg.Label))
		return done
	}
	if h.provisioned && len(h.workers) == 0 && h.pendingRestarts == 0 && !h.scaledToZero {
		done.Fail(fmt.Errorf("%w: executor %q", ErrNoWorkers, h.cfg.Label))
		return done
	}
	// The queue span shares the task's track, nesting under its root
	// span; the picking worker ends it.
	sub.qspan = h.obs.StartSpan("htex", "queue", faas.TaskTrack(task.ID), task.Span,
		obs.String("executor", h.cfg.Label))
	if !h.queue.TrySend(sub) {
		h.obs.EndSpan(sub.qspan, obs.String("status", "overflow"))
		done.Fail(fmt.Errorf("htex %q: queue full", h.cfg.Label))
	}
	return done
}

// Drain stops accepting new submissions — they fail fast with an
// ErrShutdown-wrapped error — while queued and running tasks finish
// normally. Part of graceful shutdown: drain, wait for in-flight work,
// then Shutdown.
func (h *HTEX) Drain() { h.draining = true }

// Shutdown implements faas.Executor: running tasks finish, idle
// workers exit and destroy their GPU contexts, queued submissions
// fail with ErrShutdown.
func (h *HTEX) Shutdown() {
	if !h.started {
		return
	}
	h.started = false
	h.draining = false
	h.provisioned = false
	h.shutdown.Fire(nil)
	for {
		sub, ok := h.queue.TryRecv()
		if !ok {
			break
		}
		h.obs.EndSpan(sub.qspan, obs.String("status", "shutdown"))
		sub.done.Fail(faas.ErrShutdown)
	}
	h.workers = nil
	// Hand every live block's node back so restart/scale cycles cannot
	// exhaust a finite provider pool (best-effort: the pilot job is
	// going away regardless).
	if len(h.blocks) > 0 {
		nodes := make([]*gpuctl.Node, 0, len(h.blocks))
		for _, b := range h.blocks {
			nodes = append(nodes, b.node)
		}
		h.cfg.Provider.Release(nodes)
		h.blocks = nil
		h.gBlocks.Set(0)
	}
}

// ShutdownAndWait shuts down and blocks until every worker proc has
// exited (and thus destroyed its GPU context) — required before
// repartitioning a GPU, since MPS percentages and MIG layouts can only
// change once client processes are gone (§6).
func (h *HTEX) ShutdownAndWait(p *devent.Proc) {
	procs := h.procs
	h.procs = nil
	h.Shutdown()
	for _, wp := range procs {
		p.Wait(wp.Done())
	}
}

// Restart reconfigures the accelerator partitioning and starts fresh
// workers: the paper's MPS/MIG re-partition path, which requires full
// process restart and re-pays every cold-start component.
func (h *HTEX) Restart(p *devent.Proc, accelerators []string, percentages []int) error {
	// Opened live (not recorded retroactively) so streaming analyzers
	// see the restart window while it is in progress: tasks completing
	// during the drain must not be attributed before the overlapping
	// restart span exists.
	rspan := h.obs.StartSpan("htex", "restart", h.cfg.Label, 0,
		obs.String("executor", h.cfg.Label))
	h.ShutdownAndWait(p)
	cfg := h.cfg
	cfg.AvailableAccelerators = accelerators
	cfg.GPUPercentages = percentages
	if err := cfg.Validate(); err != nil {
		h.obs.EndSpan(rspan)
		return err
	}
	h.cfg = cfg
	h.queue = devent.NewChan[*submission](h.env, 1<<20)
	err := h.Start()
	h.obs.EndSpan(rspan)
	h.cRestarts.Inc()
	return err
}

// worker is one pilot-job worker process.
type worker struct {
	name    string
	node    *gpuctl.Node
	binding gpuctl.Binding
	env     map[string]string
	gpu     *simgpu.Context
	state   map[string]any
	kill    *devent.Event
	retire  *devent.Event
	ready   bool
	runSpan obs.SpanID
	obsC    *obs.Collector
}

// Name implements faas.WorkerHandle.
func (w *worker) Name() string { return w.name }

// State implements faas.WorkerHandle.
func (w *worker) State() map[string]any { return w.state }

// GPUContext implements faas.WorkerHandle: the context is created on
// first use via the node's CUDA bring-up path (paying context init)
// and stays warm for subsequent invocations on this worker.
func (w *worker) GPUContext(p *devent.Proc) (*simgpu.Context, error) {
	if w.gpu != nil && !w.gpu.Destroyed() {
		return w.gpu, nil
	}
	t0 := p.Now()
	ctx, err := w.node.OpenContext(p, w.name, w.env)
	if err != nil {
		return nil, err
	}
	// Lazy context bring-up charged to the invocation that paid it: a
	// cold-start phase boundary for the attribution engine.
	if now := p.Now(); now > t0 {
		w.obsC.AddSpan("htex", "ctxinit", w.name, w.runSpan, t0, now)
	}
	ctx.SetTraceParent(w.runSpan)
	w.gpu = ctx
	return ctx, nil
}

var _ faas.Executor = (*HTEX)(nil)
var _ faas.WorkerHandle = (*worker)(nil)
