package htex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

// Multiple blocks from a Slurm pool: workers appear on every granted
// node.
func TestMultiBlockSlurm(t *testing.T) {
	env := devent.NewEnv()
	var nodes []*gpuctl.Node
	for i := 0; i < 2; i++ {
		d, err := simgpu.NewDevice(env, "n"+string(rune('0'+i))+"-gpu", simgpu.A100SXM480GB())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, gpuctl.NewNode(env, d))
	}
	slurm := provider.NewSlurm(env, 10*time.Second, nodes...)
	ex, err := New(env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"},
		Provider:              slurm,
		Blocks:                2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{}, ex)
	var workers []string
	d.Register(faas.App{Name: "whoami", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		if _, err := inv.GPU(); err != nil {
			return nil, err
		}
		workers = append(workers, inv.WorkerName())
		inv.Compute(time.Second)
		return nil, nil
	}})
	d.Start()
	env.Spawn("main", func(p *devent.Proc) {
		f1, f2 := d.Submit("whoami"), d.Submit("whoami")
		p.Wait(devent.AllOf(env, f1.Event(), f2.Event()))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 || workers[0] == workers[1] {
		t.Fatalf("workers = %v", workers)
	}
	if ex.Workers() != 2 {
		t.Fatalf("worker count = %d", ex.Workers())
	}
}

// Tasks queued before workers exist run once provisioning completes.
func TestQueueDrainsAfterProvisioning(t *testing.T) {
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	slurm := provider.NewSlurm(env, time.Minute, node)
	ex, _ := New(env, Config{Label: "cpu", MaxWorkers: 1, Provider: slurm})
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Register(faas.App{Name: "fn", Executor: "cpu", Fn: func(*faas.Invocation) (any, error) { return "ok", nil }})
	d.Start()
	var at time.Duration
	env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("fn")
		if v, err := fut.Result(p); err != nil || v != "ok" {
			t.Errorf("v=%v err=%v", v, err)
		}
		at = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Minute {
		t.Fatalf("completed at %v", at)
	}
}

// A GPU worker whose accelerator disappears (MIG instance destroyed
// under it) surfaces the error to the task rather than wedging.
func TestWorkerSurvivesMissingAccelerator(t *testing.T) {
	env := devent.NewEnv()
	node := gpuctl.NewNode(env) // no devices at all
	ex, _ := New(env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"}, // dangling reference
		Provider:              provider.NewLocal(env, node),
	})
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Register(faas.App{Name: "gpufn", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		_, err := inv.GPU()
		return nil, err
	}})
	d.Start()
	var got error
	env.Spawn("main", func(p *devent.Proc) {
		_, got = d.Submit("gpufn").Result(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, gpuctl.ErrNoDevice) {
		t.Fatalf("got = %v", got)
	}
}

// Submissions after Shutdown fail fast.
func TestSubmitAfterShutdown(t *testing.T) {
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	ex, _ := New(env, Config{Label: "cpu", MaxWorkers: 1, Provider: provider.NewLocal(env, node)})
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Register(faas.App{Name: "fn", Executor: "cpu", Fn: func(*faas.Invocation) (any, error) { return nil, nil }})
	d.Start()
	var got error
	env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Second)
		ex.Shutdown()
		_, got = d.Submit("fn").Result(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, faas.ErrShutdown) {
		t.Fatalf("got = %v", got)
	}
}

// Restart with invalid config reports the error and leaves the old
// executor stopped rather than half-configured.
func TestRestartValidation(t *testing.T) {
	env := devent.NewEnv()
	dev, _ := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	node := gpuctl.NewNode(env, dev)
	ex, _ := New(env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"},
		Provider:              provider.NewLocal(env, node),
	})
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Start()
	env.Spawn("main", func(p *devent.Proc) {
		if err := ex.Restart(p, []string{"0", "0"}, []int{50}); err == nil {
			t.Error("mismatched restart accepted")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Config.Bindings assembles Listing-2 bindings faithfully.
func TestConfigBindings(t *testing.T) {
	cfg := Config{
		AvailableAccelerators: []string{"1", "2", "4"},
		GPUPercentages:        []int{50, 25, 30},
	}
	b := cfg.Bindings()
	if len(b) != 3 {
		t.Fatalf("bindings = %v", b)
	}
	if b[0].Accelerator != "1" || b[0].GPUPercent != 50 {
		t.Fatalf("b0 = %+v", b[0])
	}
	if b[2].Accelerator != "4" || b[2].GPUPercent != 30 {
		t.Fatalf("b2 = %+v", b[2])
	}
	env := b[1].Environ()
	if env[gpuctl.EnvVisibleDevices] != "2" || env[gpuctl.EnvMPSThreadPct] != "25" {
		t.Fatalf("env = %v", env)
	}
}

// ThreadPool submissions after shutdown fail; workers report zero.
func TestThreadPoolShutdown(t *testing.T) {
	env := devent.NewEnv()
	tp, _ := NewThreadPool(env, "t", 2)
	d := faas.NewDFK(env, faas.Config{}, tp)
	d.Register(faas.App{Name: "fn", Executor: "t", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return nil, nil
	}})
	d.Start()
	var queued error
	env.Spawn("main", func(p *devent.Proc) {
		running := d.Submit("fn")
		p.Sleep(100 * time.Millisecond)
		tp.Shutdown()
		_, queued = d.Submit("fn").Result(p)
		running.Result(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(queued, faas.ErrShutdown) {
		t.Fatalf("queued = %v", queued)
	}
	if tp.Workers() != 0 {
		t.Fatalf("workers = %d", tp.Workers())
	}
}
