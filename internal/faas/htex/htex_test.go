package htex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
)

// rig is a one-node test fixture: env, devices, node, local provider.
type rig struct {
	env  *devent.Env
	node *gpuctl.Node
	devs []*simgpu.Device
}

func newRig(t *testing.T, nDev int) *rig {
	t.Helper()
	env := devent.NewEnv()
	devs := make([]*simgpu.Device, nDev)
	for i := range devs {
		d, err := simgpu.NewDevice(env, "gpu"+string(rune('0'+i)), simgpu.A100SXM480GB())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	return &rig{env: env, node: gpuctl.NewNode(env, devs...), devs: devs}
}

func (r *rig) local() provider.Provider { return provider.NewLocal(r.env, r.node) }

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func sleepApp(label string, d time.Duration) faas.App {
	return faas.App{Name: "sleep", Executor: label, Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(d)
		return inv.WorkerName(), nil
	}}
}

func TestCPUWorkersRunConcurrently(t *testing.T) {
	r := newRig(t, 0)
	ex, err := New(r.env, Config{Label: "cpu", MaxWorkers: 4, Provider: r.local()})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(sleepApp("cpu", time.Second))
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var makespan time.Duration
	r.env.Spawn("main", func(p *devent.Proc) {
		evs := make([]*devent.Event, 8)
		for i := range evs {
			evs[i] = d.Submit("sleep").Event()
		}
		p.Wait(devent.AllOf(r.env, evs...))
		makespan = p.Now()
	})
	r.run(t)
	// 8 × 1 s tasks on 4 workers ⇒ 2 s.
	if makespan != 2*time.Second {
		t.Fatalf("makespan = %v", makespan)
	}
}

func TestWorkerInitColdStart(t *testing.T) {
	r := newRig(t, 0)
	ex, _ := New(r.env, Config{Label: "cpu", MaxWorkers: 1, WorkerInit: 3 * time.Second, Provider: r.local()})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(sleepApp("cpu", time.Second))
	d.Start()
	var start time.Duration
	r.env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("sleep")
		fut.Result(p)
		start = fut.Task().StartTime
	})
	r.run(t)
	if start != 3*time.Second {
		t.Fatalf("first task started at %v", start)
	}
}

func TestAcceleratorPinningWithPercentages(t *testing.T) {
	r := newRig(t, 1)
	// Listing 2 style: the same GPU listed twice with 50/25 caps.
	ex, err := New(r.env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0", "0"},
		GPUPercentages:        []int{50, 25},
		Provider:              r.local(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	var pcts []int
	d.Register(faas.App{Name: "probe", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		pcts = append(pcts, ctx.SMPercent())
		inv.Compute(time.Second) // keep the worker busy so both run
		return nil, nil
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		if _, err := r.node.StartMPS(p, 0); err != nil {
			t.Error(err)
			return
		}
		f1, f2 := d.Submit("probe"), d.Submit("probe")
		p.Wait(devent.AllOf(r.env, f1.Event(), f2.Event()))
	})
	r.run(t)
	if len(pcts) != 2 {
		t.Fatalf("pcts = %v", pcts)
	}
	got := map[int]bool{pcts[0]: true, pcts[1]: true}
	if !got[50] || !got[25] {
		t.Fatalf("pcts = %v", pcts)
	}
	if ex.Workers() != 2 {
		t.Fatalf("workers = %d", ex.Workers())
	}
}

func TestWarmWorkerStateAndContextReuse(t *testing.T) {
	r := newRig(t, 1)
	ex, _ := New(r.env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"},
		Provider:              r.local(),
	})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	var created []time.Duration
	d.Register(faas.App{Name: "warm", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		created = append(created, ctx.CreatedAt())
		n, _ := inv.State()["count"].(int)
		inv.State()["count"] = n + 1
		return n + 1, nil
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		if v, err := d.Submit("warm").Result(p); err != nil || v != 1 {
			t.Errorf("first: %v %v", v, err)
		}
		if v, err := d.Submit("warm").Result(p); err != nil || v != 2 {
			t.Errorf("second: %v %v", v, err)
		}
	})
	r.run(t)
	if len(created) != 2 || created[0] != created[1] {
		t.Fatalf("context recreated: %v", created)
	}
}

func TestShutdownFailsQueuedAndDestroysContexts(t *testing.T) {
	r := newRig(t, 1)
	ex, _ := New(r.env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"},
		Provider:              r.local(),
	})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(faas.App{Name: "gpuwork", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		if _, err := inv.GPU(); err != nil {
			return nil, err
		}
		inv.Compute(10 * time.Second)
		return nil, nil
	}})
	d.Start()
	var queuedErr error
	r.env.Spawn("main", func(p *devent.Proc) {
		running := d.Submit("gpuwork")
		queued := d.Submit("gpuwork") // sits behind the single worker
		p.Sleep(time.Second)
		ex.ShutdownAndWait(p)
		_, queuedErr = queued.Result(p)
		running.Result(p)
		if got := r.devs[0].Contexts(); got != 0 {
			t.Errorf("contexts after shutdown = %d", got)
		}
	})
	r.run(t)
	if !errors.Is(queuedErr, faas.ErrShutdown) {
		t.Fatalf("queued err = %v", queuedErr)
	}
}

func TestRestartAppliesNewPartitioning(t *testing.T) {
	r := newRig(t, 1)
	ex, _ := New(r.env, Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0", "0"},
		GPUPercentages:        []int{50, 50},
		WorkerInit:            time.Second,
		Provider:              r.local(),
	})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	var pct int
	d.Register(faas.App{Name: "probe", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
		ctx, err := inv.GPU()
		if err != nil {
			return nil, err
		}
		pct = ctx.SMPercent()
		return nil, nil
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		r.node.StartMPS(p, 0)
		d.Submit("probe").Result(p)
		if pct != 50 {
			t.Errorf("initial pct = %d", pct)
		}
		before := p.Now()
		if err := ex.Restart(p, []string{"0"}, []int{90}); err != nil {
			t.Error(err)
			return
		}
		d.Submit("probe").Result(p)
		if pct != 90 {
			t.Errorf("pct after restart = %d", pct)
		}
		// The restart repaid worker init (≥1 s passed).
		if p.Now()-before < time.Second {
			t.Errorf("restart too fast: %v", p.Now()-before)
		}
	})
	r.run(t)
}

func TestMIGUUIDBinding(t *testing.T) {
	r := newRig(t, 1)
	env := r.env
	var uuids []string
	env.Spawn("setup", func(p *devent.Proc) {
		dev := r.devs[0]
		if err := dev.EnableMIG(p); err != nil {
			t.Error(err)
			return
		}
		in1, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		in2, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		// Listing 3: accelerators are MIG UUIDs.
		ex, err := New(env, Config{
			Label:                 "gpu",
			AvailableAccelerators: []string{in1.UUID(), in2.UUID()},
			Provider:              r.local(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		d := faas.NewDFK(env, faas.Config{}, ex)
		d.Register(faas.App{Name: "where", Executor: "gpu", Fn: func(inv *faas.Invocation) (any, error) {
			if _, err := inv.GPU(); err != nil {
				return nil, err
			}
			uuids = append(uuids, inv.Env()[gpuctl.EnvVisibleDevices])
			inv.Compute(time.Second)
			return nil, nil
		}})
		d.Start()
		f1, f2 := d.Submit("where"), d.Submit("where")
		p.Wait(devent.AllOf(env, f1.Event(), f2.Event()))
		if in1.Contexts()+in2.Contexts() != 2 {
			t.Errorf("instance contexts = %d + %d", in1.Contexts(), in2.Contexts())
		}
	})
	r.run(t)
	if len(uuids) != 2 || uuids[0] == uuids[1] {
		t.Fatalf("uuids = %v", uuids)
	}
}

func TestSlurmProviderQueueDelay(t *testing.T) {
	r := newRig(t, 0)
	slurm := provider.NewSlurm(r.env, 30*time.Second, r.node)
	ex, _ := New(r.env, Config{Label: "cpu", MaxWorkers: 2, Provider: slurm})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(sleepApp("cpu", time.Second))
	d.Start()
	var start time.Duration
	r.env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("sleep")
		fut.Result(p)
		start = fut.Task().StartTime
	})
	r.run(t)
	if start != 30*time.Second {
		t.Fatalf("start = %v", start)
	}
	if slurm.Granted() != 1 {
		t.Fatalf("granted = %d", slurm.Granted())
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, 0)
	if _, err := New(r.env, Config{Label: "x", Provider: r.local()}); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := New(r.env, Config{Label: "x", MaxWorkers: 1}); err == nil {
		t.Error("missing provider accepted")
	}
	if _, err := New(r.env, Config{
		Label: "x", Provider: r.local(),
		AvailableAccelerators: []string{"0", "0"},
		GPUPercentages:        []int{50},
	}); err == nil {
		t.Error("mismatched percentages accepted")
	}
	if _, err := New(r.env, Config{
		Label: "x", Provider: r.local(),
		AvailableAccelerators: []string{"0"},
		GPUPercentages:        []int{150},
	}); err == nil {
		t.Error("out-of-range percentage accepted")
	}
	if _, err := New(r.env, Config{Label: "", MaxWorkers: 1, Provider: r.local()}); err == nil {
		t.Error("empty label accepted")
	}
}

func TestThreadPoolExecutor(t *testing.T) {
	r := newRig(t, 0)
	tp, err := NewThreadPool(r.env, "threads", 3)
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, tp)
	d.Register(sleepApp("threads", time.Second))
	d.Start()
	var makespan time.Duration
	r.env.Spawn("main", func(p *devent.Proc) {
		evs := make([]*devent.Event, 6)
		for i := range evs {
			evs[i] = d.Submit("sleep").Event()
		}
		p.Wait(devent.AllOf(r.env, evs...))
		makespan = p.Now()
	})
	r.run(t)
	if makespan != 2*time.Second { // 6 tasks / 3 threads × 1 s
		t.Fatalf("makespan = %v", makespan)
	}
	if tp.Workers() != 3 {
		t.Fatalf("workers = %d", tp.Workers())
	}
}

func TestThreadPoolRejectsZeroSize(t *testing.T) {
	r := newRig(t, 0)
	if _, err := NewThreadPool(r.env, "x", 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestGPUOnCPUWorkerFails(t *testing.T) {
	r := newRig(t, 1)
	ex, _ := New(r.env, Config{Label: "cpu", MaxWorkers: 1, Provider: r.local()})
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(faas.App{Name: "wantsgpu", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		_, err := inv.GPU()
		return nil, err
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		if _, err := d.Submit("wantsgpu").Result(p); err == nil {
			t.Error("CPU worker handed out a GPU")
		}
	})
	r.run(t)
}
