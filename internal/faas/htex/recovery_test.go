package htex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/gpuctl"
	"repro/internal/obs"
)

// With RestartBackoff set, a crashed worker slot comes back after the
// backoff with fresh state, and subsequent work runs on it.
func TestWorkerAutoRestart(t *testing.T) {
	r := newRig(t, 0)
	ex, err := New(r.env, Config{
		Label:          "cpu",
		MaxWorkers:     1,
		Provider:       r.local(),
		RestartBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(faas.App{Name: "fn", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return "ok", nil
	}})
	d.Start()
	r.env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Second) // let the worker start
		name := ex.WorkerNames()[0]
		if !ex.KillWorker(name) {
			t.Error("kill failed")
			return
		}
		p.Sleep(100 * time.Millisecond) // let the crash process
		if ex.Workers() != 0 {
			t.Errorf("workers after kill = %d", ex.Workers())
		}
		p.Sleep(1400 * time.Millisecond) // past the 1s restart backoff
		if ex.Workers() != 1 {
			t.Errorf("workers after backoff = %d", ex.Workers())
			return
		}
		if got := ex.WorkerNames()[0]; got != name {
			t.Errorf("restarted worker = %q, want slot %q", got, name)
		}
		if v, err := d.Submit("fn").Result(p); err != nil || v != "ok" {
			t.Errorf("v=%v err=%v", v, err)
		}
	})
	r.run(t)
	c := d.Collector().Metrics().Counter("htex_worker_restarts_total", obs.L("executor", "cpu"))
	if c.Value() != 1 {
		t.Fatalf("worker_restarts_total = %v", c.Value())
	}
}

// Restart delays double per crash of the same slot, capped at
// RestartBackoffMax; after BlacklistAfter crashes the slot is
// blacklisted and never restarted.
func TestRestartBackoffAndBlacklist(t *testing.T) {
	r := newRig(t, 0)
	ex, err := New(r.env, Config{
		Label:             "cpu",
		MaxWorkers:        1,
		Provider:          r.local(),
		RestartBackoff:    time.Second,
		RestartBackoffMax: 2 * time.Second,
		BlacklistAfter:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Start()
	var restartDelays []time.Duration
	r.env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Second)
		name := ex.WorkerNames()[0]
		for crash := 1; crash <= 3; crash++ {
			if !ex.KillWorker(name) {
				t.Errorf("kill %d failed", crash)
				return
			}
			killedAt := p.Now()
			if crash == 3 {
				break // blacklisted: no restart to wait for
			}
			p.Sleep(100 * time.Millisecond) // let the crash process
			for ex.Workers() == 0 {
				p.Sleep(100 * time.Millisecond)
			}
			restartDelays = append(restartDelays, p.Now()-killedAt)
			p.Sleep(100 * time.Millisecond) // let the new worker proc boot
		}
		p.Sleep(10 * time.Second)
		if ex.Workers() != 0 {
			t.Errorf("blacklisted slot restarted: workers = %d", ex.Workers())
		}
	})
	r.run(t)
	// Crash 1 → 1s backoff; crash 2 → 2s (doubled, at the cap). The
	// poll loop rounds up to the next 100ms tick.
	want := []time.Duration{time.Second, 2 * time.Second}
	if len(restartDelays) != len(want) {
		t.Fatalf("restart delays = %v", restartDelays)
	}
	for i := range want {
		if restartDelays[i] < want[i] || restartDelays[i] > want[i]+100*time.Millisecond {
			t.Fatalf("restart %d after %v, want ~%v", i+1, restartDelays[i], want[i])
		}
	}
	g := d.Collector().Metrics().Gauge("htex_blacklist_size", obs.L("executor", "cpu"))
	if g.Value() != 1 {
		t.Fatalf("blacklist_size = %v", g.Value())
	}
}

// When every worker is dead and none is coming back, queued
// submissions fail with ErrNoWorkers instead of stranding, and new
// submissions fail fast.
func TestQueueFailsWhenAllWorkersDead(t *testing.T) {
	r := newRig(t, 0)
	ex, err := New(r.env, Config{Label: "cpu", MaxWorkers: 1, Provider: r.local()})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(faas.App{Name: "slow", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(10 * time.Second)
		return nil, nil
	}})
	d.Start()
	var inflight, queued, late error
	r.env.Spawn("main", func(p *devent.Proc) {
		running := d.Submit("slow")
		waiting := d.Submit("slow") // queued behind the only worker
		p.Sleep(time.Second)
		if !ex.KillWorker(running.Task().Worker) {
			t.Error("kill failed")
			return
		}
		_, inflight = running.Result(p)
		_, queued = waiting.Result(p)
		_, late = d.Submit("slow").Result(p)
	})
	r.run(t)
	if !errors.Is(inflight, ErrWorkerLost) {
		t.Fatalf("in-flight err = %v, want ErrWorkerLost", inflight)
	}
	if !errors.Is(queued, ErrNoWorkers) {
		t.Fatalf("queued err = %v, want ErrNoWorkers", queued)
	}
	if !errors.Is(late, ErrNoWorkers) {
		t.Fatalf("late submit err = %v, want ErrNoWorkers", late)
	}
}

// Drain lets queued and running work finish while rejecting new
// submissions with ErrShutdown.
func TestDrainRejectsNewWork(t *testing.T) {
	r := newRig(t, 0)
	ex, err := New(r.env, Config{Label: "cpu", MaxWorkers: 1, Provider: r.local()})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(r.env, faas.Config{}, ex)
	d.Register(sleepApp("cpu", time.Second))
	d.Start()
	var inflight, rejected error
	r.env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("sleep")
		p.Sleep(100 * time.Millisecond) // task is running on the worker
		ex.Drain()
		_, rejected = d.Submit("sleep").Result(p)
		_, inflight = fut.Result(p)
	})
	r.run(t)
	if !errors.Is(rejected, faas.ErrShutdown) {
		t.Fatalf("rejected err = %v, want ErrShutdown", rejected)
	}
	if inflight != nil {
		t.Fatalf("in-flight task failed during drain: %v", inflight)
	}
}

// Config.Validate rejects the new recovery knobs' invalid values.
func TestValidateRecoveryKnobs(t *testing.T) {
	base := Config{Label: "x", MaxWorkers: 1, Provider: stubProvider{}}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative RestartBackoff", func(c *Config) { c.RestartBackoff = -1 }},
		{"negative RestartBackoffMax", func(c *Config) { c.RestartBackoffMax = -1 }},
		{"max below base", func(c *Config) { c.RestartBackoff = 2; c.RestartBackoffMax = 1 }},
		{"negative BlacklistAfter", func(c *Config) { c.BlacklistAfter = -1 }},
	} {
		cfg := base
		tc.mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}

// stubProvider satisfies provider.Provider for Validate-only tests.
type stubProvider struct{}

func (stubProvider) Name() string                        { return "stub" }
func (stubProvider) Provision(n int) *devent.Event       { return nil }
func (stubProvider) Release(nodes []*gpuctl.Node) error  { return nil }
