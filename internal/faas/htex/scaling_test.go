package htex

import (
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
)

// slurmRig builds a pool of n CPU-only nodes behind a SlurmProvider
// with the given grant delay.
func slurmRig(t *testing.T, n int, delay time.Duration) (*devent.Env, *provider.SlurmProvider) {
	t.Helper()
	env := devent.NewEnv()
	nodes := make([]*gpuctl.Node, n)
	for i := range nodes {
		nodes[i] = gpuctl.NewNode(env)
	}
	return env, provider.NewSlurm(env, delay, nodes...)
}

// ScaleOut adds blocks (and their workers) to a running executor, and
// the added capacity picks up queued work.
func TestScaleOutAddsCapacity(t *testing.T) {
	env, slurm := slurmRig(t, 2, 0)
	ex, err := New(env, Config{Label: "cpu", MaxWorkers: 2, Provider: slurm, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Register(faas.App{Name: "sleep", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return nil, nil
	}})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var makespan time.Duration
	env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Millisecond) // let the initial block provision
		if got := ex.Blocks(); got != 1 {
			t.Errorf("blocks = %d before scale-out", got)
		}
		if err := ex.ScaleOut(p, 1); err != nil {
			t.Error(err)
			return
		}
		if got := ex.Blocks(); got != 2 {
			t.Errorf("blocks = %d after scale-out", got)
		}
		if got := ex.Workers(); got != 4 {
			t.Errorf("workers = %d after scale-out", got)
		}
		start := p.Now()
		evs := make([]*devent.Event, 8)
		for i := range evs {
			evs[i] = d.Submit("sleep").Event()
		}
		if _, err := p.Wait(devent.AllOf(env, evs...)); err != nil {
			t.Error(err)
		}
		makespan = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 × 1 s tasks on 4 workers ⇒ 2 s; on the original 2 it would be 4 s.
	if makespan != 2*time.Second {
		t.Fatalf("makespan = %v", makespan)
	}
}

// ScaleIn drains in-flight work, retires the newest block cleanly (no
// crash accounting), and returns its node to the provider so a later
// ScaleOut can re-grant it.
func TestScaleInGracefulAndReprovision(t *testing.T) {
	env, slurm := slurmRig(t, 2, 0)
	ex, err := New(env, Config{Label: "cpu", MaxWorkers: 1, Provider: slurm, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Register(faas.App{Name: "sleep", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return nil, nil
	}})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Millisecond)
		// Occupy both workers so scale-in has in-flight work to drain.
		futs := []*faas.Future{d.Submit("sleep"), d.Submit("sleep")}
		p.Sleep(100 * time.Millisecond)
		t0 := p.Now()
		n, err := ex.ScaleIn(p, 1)
		if err != nil || n != 1 {
			t.Errorf("ScaleIn = %d, %v", n, err)
			return
		}
		// The retired worker finished its 1 s task first.
		if waited := p.Now() - t0; waited != 900*time.Millisecond {
			t.Errorf("scale-in drained for %v", waited)
		}
		for _, f := range futs {
			if _, err := f.Result(p); err != nil {
				t.Errorf("in-flight task failed across scale-in: %v", err)
			}
		}
		if got := ex.Blocks(); got != 1 {
			t.Errorf("blocks = %d after scale-in", got)
		}
		if got := slurm.Granted(); got != 1 {
			t.Errorf("provider outstanding = %d after scale-in", got)
		}
		// The released node is immediately re-grantable.
		if err := ex.ScaleOut(p, 1); err != nil {
			t.Errorf("scale-out after scale-in: %v", err)
		}
		if got := ex.Blocks(); got != 2 {
			t.Errorf("blocks = %d after re-provision", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Scaling to zero keeps submissions queued — they complete after the
// next ScaleOut instead of failing with ErrNoWorkers.
func TestScaleToZeroQueuesUntilScaleOut(t *testing.T) {
	env, slurm := slurmRig(t, 1, 0)
	ex, err := New(env, Config{Label: "cpu", MaxWorkers: 1, Provider: slurm, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{}, ex)
	d.Register(faas.App{Name: "sleep", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return nil, nil
	}})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Millisecond)
		if n, err := ex.ScaleIn(p, 1); err != nil || n != 1 {
			t.Errorf("ScaleIn = %d, %v", n, err)
			return
		}
		if got := ex.Workers(); got != 0 {
			t.Errorf("workers = %d at zero", got)
		}
		fut := d.Submit("sleep")
		p.Sleep(10 * time.Second) // idle at zero; the task must still be queued
		if fut.Event().Fired() {
			t.Error("task resolved while scaled to zero")
		}
		if err := ex.ScaleOut(p, 1); err != nil {
			t.Error(err)
			return
		}
		if _, err := fut.Result(p); err != nil {
			t.Errorf("queued task failed after scale-out: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// A scale-out that over-subscribes the provider pool fails with the
// provider's error and leaves the running pool untouched.
func TestScaleOutPoolExhausted(t *testing.T) {
	env, slurm := slurmRig(t, 1, 0)
	ex, err := New(env, Config{Label: "cpu", MaxWorkers: 1, Provider: slurm, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{}, ex)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Millisecond)
		if err := ex.ScaleOut(p, 1); err == nil {
			t.Error("scale-out beyond the pool succeeded")
		}
		if got := ex.Blocks(); got != 1 {
			t.Errorf("blocks = %d after failed scale-out", got)
		}
		if got := ex.Workers(); got != 1 {
			t.Errorf("workers = %d after failed scale-out", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// A worker crash inside a block that has since been retired must not
// respawn: the node is back with the provider.
func TestRetiredBlockDoesNotRespawn(t *testing.T) {
	env, slurm := slurmRig(t, 2, 0)
	ex, err := New(env, Config{
		Label:          "cpu",
		MaxWorkers:     1,
		Provider:       slurm,
		Blocks:         2,
		RestartBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{}, ex)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", func(p *devent.Proc) {
		p.Sleep(time.Millisecond)
		// Crash the newest block's worker, then retire that block while
		// its restart timer is still pending.
		if !ex.KillWorker("cpu/block1/worker0") {
			t.Error("kill failed")
			return
		}
		if n, err := ex.ScaleIn(p, 1); err != nil || n != 1 {
			t.Errorf("ScaleIn = %d, %v", n, err)
			return
		}
		p.Sleep(5 * time.Second) // past the restart backoff
		if got := ex.Workers(); got != 1 {
			t.Errorf("workers = %d; retired block respawned", got)
		}
		if got := ex.Blocks(); got != 1 {
			t.Errorf("blocks = %d", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
