package htex

import (
	"fmt"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/obs"
)

// ThreadPool is the analogue of Python's ThreadPoolExecutor, which
// Parsl also supports for CPU-only scaling (§2.2.1): N workers in the
// main process, no worker-init cost, no accelerator bindings.
type ThreadPool struct {
	env      *devent.Env
	label    string
	size     int
	queue    *devent.Chan[*submission]
	shutdown *devent.Event
	obs      *obs.Collector
	cPicked  *obs.Counter
	started  bool
	nworkers int
}

// NewThreadPool creates a pool with the given worker count.
func NewThreadPool(env *devent.Env, label string, size int) (*ThreadPool, error) {
	if size <= 0 {
		return nil, fmt.Errorf("htex: thread pool %q needs positive size", label)
	}
	return &ThreadPool{
		env:   env,
		label: label,
		size:  size,
		queue: devent.NewChan[*submission](env, 1<<20),
	}, nil
}

// Label implements faas.Executor.
func (tp *ThreadPool) Label() string { return tp.label }

// SetCollector wires the DFK's collector for queue/run spans and
// pickup counts.
func (tp *ThreadPool) SetCollector(c *obs.Collector) {
	tp.obs = c
	tp.cPicked = c.Metrics().Counter("htex_tasks_picked_total", obs.L("executor", tp.label))
}

// Workers implements faas.Executor.
func (tp *ThreadPool) Workers() int { return tp.nworkers }

// Start implements faas.Executor.
func (tp *ThreadPool) Start() error {
	if tp.started {
		return nil
	}
	tp.started = true
	tp.shutdown = tp.env.NewNamedEvent("threadpool-shutdown:" + tp.label)
	for i := 0; i < tp.size; i++ {
		name := fmt.Sprintf("%s/thread%d", tp.label, i)
		tp.nworkers++
		tp.env.Spawn(name, func(p *devent.Proc) {
			p.SetDaemon(true) // idle threads are not deadlocks
			for {
				sub, ok, cancelled := tp.queue.RecvOr(p, tp.shutdown)
				if cancelled || !ok {
					return
				}
				t := sub.task
				t.Status = faas.TaskRunning
				t.StartTime = p.Now()
				t.Worker = name
				tp.obs.EndSpan(sub.qspan, obs.String("worker", name))
				rspan := tp.obs.StartSpan("htex", "run", name, t.Span,
					obs.Int("task", t.ID), obs.String("app", t.App))
				tp.cPicked.Inc()
				result, err := sub.app.Fn(faas.NewInvocation(p, t, sub.args, nil, nil))
				t.EndTime = p.Now()
				if err != nil {
					tp.obs.EndSpan(rspan,
						obs.String("status", "failed"),
						obs.String("error", err.Error()))
					sub.done.Fail(err)
				} else {
					tp.obs.EndSpan(rspan, obs.String("status", "done"))
					sub.done.Fire(result)
				}
			}
		})
	}
	return nil
}

// Submit implements faas.Executor.
func (tp *ThreadPool) Submit(task *faas.Task, app faas.App, args []any) *devent.Event {
	done := tp.env.NewNamedEvent(fmt.Sprintf("tp-%s-task-%d", tp.label, task.ID))
	if !tp.started {
		done.Fail(faas.ErrShutdown)
		return done
	}
	sub := &submission{task: task, app: app, args: args, done: done}
	sub.qspan = tp.obs.StartSpan("htex", "queue", faas.TaskTrack(task.ID), task.Span,
		obs.String("executor", tp.label))
	if !tp.queue.TrySend(sub) {
		tp.obs.EndSpan(sub.qspan, obs.String("status", "overflow"))
		done.Fail(fmt.Errorf("htex: thread pool %q queue full", tp.label))
	}
	return done
}

// Shutdown implements faas.Executor.
func (tp *ThreadPool) Shutdown() {
	if !tp.started {
		return
	}
	tp.started = false
	tp.shutdown.Fire(nil)
	for {
		sub, ok := tp.queue.TryRecv()
		if !ok {
			break
		}
		tp.obs.EndSpan(sub.qspan, obs.String("status", "shutdown"))
		sub.done.Fail(faas.ErrShutdown)
	}
	tp.nworkers = 0
}

var _ faas.Executor = (*ThreadPool)(nil)
