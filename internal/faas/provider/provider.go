// Package provider supplies compute blocks (nodes) to executors,
// mirroring Parsl's execution providers (§2.2.1): the LocalProvider
// hands out the local machine immediately, while the SlurmProvider
// models a batch queue that grants nodes after a queue delay.
package provider

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/gpuctl"
)

// Provider grants compute nodes to an executor.
type Provider interface {
	// Name identifies the provider ("local", "slurm").
	Name() string
	// Provision requests n nodes. The returned event fires with
	// []*gpuctl.Node once granted, or fails if the request cannot be
	// satisfied.
	Provision(n int) *devent.Event
}

// LocalProvider provisions the local node, as the paper's testbed
// configuration does (Listing 1 uses Parsl's LocalProvider).
type LocalProvider struct {
	env  *devent.Env
	node *gpuctl.Node
}

// NewLocal wraps the local node.
func NewLocal(env *devent.Env, node *gpuctl.Node) *LocalProvider {
	return &LocalProvider{env: env, node: node}
}

// Name implements Provider.
func (l *LocalProvider) Name() string { return "local" }

// Provision implements Provider: any request is satisfied immediately
// with n references to the single local node (Parsl local blocks are
// worker pools on the same machine).
func (l *LocalProvider) Provision(n int) *devent.Event {
	ev := l.env.NewNamedEvent("local-provision")
	nodes := make([]*gpuctl.Node, n)
	for i := range nodes {
		nodes[i] = l.node
	}
	ev.Fire(nodes)
	return ev
}

// SlurmProvider models an HPC batch system: a fixed pool of nodes
// granted after a queue delay, the dominant latency when Parsl runs
// against a supercomputer.
type SlurmProvider struct {
	env        *devent.Env
	nodes      []*gpuctl.Node
	queueDelay time.Duration
	granted    int
}

// NewSlurm creates a provider over a node pool with a fixed queue
// delay per allocation.
func NewSlurm(env *devent.Env, queueDelay time.Duration, nodes ...*gpuctl.Node) *SlurmProvider {
	return &SlurmProvider{env: env, nodes: nodes, queueDelay: queueDelay}
}

// Name implements Provider.
func (s *SlurmProvider) Name() string { return "slurm" }

// Provision implements Provider: after the queue delay, n distinct
// nodes are granted from the pool; over-subscription fails the event.
func (s *SlurmProvider) Provision(n int) *devent.Event {
	ev := s.env.NewNamedEvent("slurm-provision")
	s.env.Schedule(s.queueDelay, func() {
		if s.granted+n > len(s.nodes) {
			ev.Fail(fmt.Errorf("provider: slurm pool exhausted (%d of %d granted, want %d)",
				s.granted, len(s.nodes), n))
			return
		}
		out := s.nodes[s.granted : s.granted+n]
		s.granted += n
		ev.Fire(append([]*gpuctl.Node(nil), out...))
	})
	return ev
}

// Granted reports how many nodes have been handed out.
func (s *SlurmProvider) Granted() int { return s.granted }
