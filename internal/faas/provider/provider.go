// Package provider supplies compute blocks (nodes) to executors,
// mirroring Parsl's execution providers (§2.2.1): the LocalProvider
// hands out the local machine immediately, while the SlurmProvider
// models a batch queue that grants nodes after a queue delay.
package provider

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/gpuctl"
)

// Provider grants compute nodes to an executor.
type Provider interface {
	// Name identifies the provider ("local", "slurm").
	Name() string
	// Provision requests n nodes. The returned event fires with
	// []*gpuctl.Node once granted, or fails if the request cannot be
	// satisfied.
	Provision(n int) *devent.Event
	// Release returns previously granted nodes to the pool so a later
	// Provision can grant them again. Releasing a node the provider
	// never granted (or releasing it twice) is an error.
	Release(nodes []*gpuctl.Node) error
}

// LocalProvider provisions the local node, as the paper's testbed
// configuration does (Listing 1 uses Parsl's LocalProvider).
type LocalProvider struct {
	env  *devent.Env
	node *gpuctl.Node
}

// NewLocal wraps the local node.
func NewLocal(env *devent.Env, node *gpuctl.Node) *LocalProvider {
	return &LocalProvider{env: env, node: node}
}

// Name implements Provider.
func (l *LocalProvider) Name() string { return "local" }

// Provision implements Provider: any request is satisfied immediately
// with n references to the single local node (Parsl local blocks are
// worker pools on the same machine).
func (l *LocalProvider) Provision(n int) *devent.Event {
	ev := l.env.NewNamedEvent("local-provision")
	nodes := make([]*gpuctl.Node, n)
	for i := range nodes {
		nodes[i] = l.node
	}
	ev.Fire(nodes)
	return ev
}

// Release implements Provider: local blocks are references to the one
// machine, so there is nothing to return — any reference to the local
// node releases successfully, anything else is an error.
func (l *LocalProvider) Release(nodes []*gpuctl.Node) error {
	for _, n := range nodes {
		if n != l.node {
			return errors.New("provider: local release of foreign node")
		}
	}
	return nil
}

// SlurmProvider models an HPC batch system: a fixed pool of nodes
// granted after a queue delay, the dominant latency when Parsl runs
// against a supercomputer. Grants come from a free-list so released
// nodes can be granted again: an earlier revision kept a monotone
// cursor into the pool, which made any scale-down→scale-up cycle
// exhaust it permanently.
type SlurmProvider struct {
	env        *devent.Env
	queueDelay time.Duration
	// free is the grantable pool in deterministic order: initial order
	// at construction, released nodes appended at the back.
	free []*gpuctl.Node
	// outstanding tracks granted-but-unreleased nodes (and how many
	// grants each has, to reject double releases).
	outstanding map[*gpuctl.Node]int
	granted     int
	capacity    int
}

// NewSlurm creates a provider over a node pool with a fixed queue
// delay per allocation.
func NewSlurm(env *devent.Env, queueDelay time.Duration, nodes ...*gpuctl.Node) *SlurmProvider {
	return &SlurmProvider{
		env:         env,
		queueDelay:  queueDelay,
		free:        append([]*gpuctl.Node(nil), nodes...),
		outstanding: make(map[*gpuctl.Node]int),
		capacity:    len(nodes),
	}
}

// Name implements Provider.
func (s *SlurmProvider) Name() string { return "slurm" }

// Provision implements Provider: after the queue delay, n distinct
// nodes are granted from the front of the free-list;
// over-subscription fails the event.
func (s *SlurmProvider) Provision(n int) *devent.Event {
	ev := s.env.NewNamedEvent("slurm-provision")
	s.env.Schedule(s.queueDelay, func() {
		if n > len(s.free) {
			ev.Fail(fmt.Errorf("provider: slurm pool exhausted (%d of %d granted, want %d)",
				s.granted, s.capacity, n))
			return
		}
		out := append([]*gpuctl.Node(nil), s.free[:n]...)
		s.free = s.free[n:]
		for _, node := range out {
			s.outstanding[node]++
		}
		s.granted += n
		ev.Fire(out)
	})
	return ev
}

// Release implements Provider: the nodes return to the back of the
// free-list, immediately grantable by the next Provision (releasing
// carries no queue delay — giving nodes back to the batch system is
// instant; re-acquiring them pays the delay again).
func (s *SlurmProvider) Release(nodes []*gpuctl.Node) error {
	for _, node := range nodes {
		if s.outstanding[node] == 0 {
			return errors.New("provider: slurm release of a node that was not granted")
		}
	}
	for _, node := range nodes {
		s.outstanding[node]--
		if s.outstanding[node] == 0 {
			delete(s.outstanding, node)
		}
		s.free = append(s.free, node)
		s.granted--
	}
	return nil
}

// Granted reports how many granted nodes are currently outstanding
// (grants minus releases).
func (s *SlurmProvider) Granted() int { return s.granted }
