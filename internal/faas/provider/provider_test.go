package provider

import (
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/gpuctl"
)

func TestLocalProviderImmediate(t *testing.T) {
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	p := NewLocal(env, node)
	if p.Name() != "local" {
		t.Fatalf("name = %s", p.Name())
	}
	ev := p.Provision(3)
	if !ev.Fired() {
		t.Fatal("local provision should be immediate")
	}
	nodes := ev.Value().([]*gpuctl.Node)
	if len(nodes) != 3 || nodes[0] != node {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestSlurmProviderDelayAndExhaustion(t *testing.T) {
	env := devent.NewEnv()
	n1, n2 := gpuctl.NewNode(env), gpuctl.NewNode(env)
	s := NewSlurm(env, time.Minute, n1, n2)
	if s.Name() != "slurm" {
		t.Fatalf("name = %s", s.Name())
	}
	var gotAt time.Duration
	var count int
	var exhausted error
	env.Spawn("main", func(p *devent.Proc) {
		v, err := p.Wait(s.Provision(2))
		if err != nil {
			t.Error(err)
			return
		}
		gotAt = p.Now()
		count = len(v.([]*gpuctl.Node))
		_, exhausted = p.Wait(s.Provision(1))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != time.Minute || count != 2 {
		t.Fatalf("gotAt=%v count=%d", gotAt, count)
	}
	if exhausted == nil {
		t.Fatal("expected exhaustion error")
	}
	if s.Granted() != 2 {
		t.Fatalf("granted = %d", s.Granted())
	}
}

// Scale-down must return nodes to the pool: provision→release→
// provision succeeds, and over-subscription still fails
// deterministically once the pool is genuinely empty. The monotone
// cursor this replaces exhausted the pool permanently after one
// scale-down→scale-up cycle.
func TestSlurmProvisionReleaseProvision(t *testing.T) {
	env := devent.NewEnv()
	n1, n2 := gpuctl.NewNode(env), gpuctl.NewNode(env)
	s := NewSlurm(env, 0, n1, n2)
	env.Spawn("main", func(p *devent.Proc) {
		v, err := p.Wait(s.Provision(2))
		if err != nil {
			t.Error(err)
			return
		}
		first := v.([]*gpuctl.Node)
		if s.Granted() != 2 {
			t.Errorf("granted = %d after provision", s.Granted())
		}
		if err := s.Release(first); err != nil {
			t.Error(err)
			return
		}
		if s.Granted() != 0 {
			t.Errorf("granted = %d after release", s.Granted())
		}
		v, err = p.Wait(s.Provision(2))
		if err != nil {
			t.Errorf("re-provision after release failed: %v", err)
			return
		}
		second := v.([]*gpuctl.Node)
		if len(second) != 2 || second[0] == second[1] {
			t.Errorf("re-provision nodes = %v", second)
		}
		// The pool is fully granted again: one more must fail.
		if _, err := p.Wait(s.Provision(1)); err == nil {
			t.Error("over-subscription succeeded after release cycle")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSlurmReleaseValidation(t *testing.T) {
	env := devent.NewEnv()
	n1, n2 := gpuctl.NewNode(env), gpuctl.NewNode(env)
	s := NewSlurm(env, 0, n1, n2)
	env.Spawn("main", func(p *devent.Proc) {
		// Releasing a node that was never granted fails.
		if err := s.Release([]*gpuctl.Node{n1}); err == nil {
			t.Error("release of ungranted node accepted")
		}
		v, err := p.Wait(s.Provision(1))
		if err != nil {
			t.Error(err)
			return
		}
		got := v.([]*gpuctl.Node)
		if err := s.Release(got); err != nil {
			t.Error(err)
		}
		// Double release fails.
		if err := s.Release(got); err == nil {
			t.Error("double release accepted")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalProviderRelease(t *testing.T) {
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	other := gpuctl.NewNode(env)
	p := NewLocal(env, node)
	nodes := p.Provision(2).Value().([]*gpuctl.Node)
	if err := p.Release(nodes); err != nil {
		t.Fatal(err)
	}
	if err := p.Release([]*gpuctl.Node{other}); err == nil {
		t.Fatal("release of foreign node accepted")
	}
}

func TestSlurmDistinctNodes(t *testing.T) {
	env := devent.NewEnv()
	n1, n2 := gpuctl.NewNode(env), gpuctl.NewNode(env)
	s := NewSlurm(env, 0, n1, n2)
	env.Spawn("main", func(p *devent.Proc) {
		a, _ := p.Wait(s.Provision(1))
		b, _ := p.Wait(s.Provision(1))
		if a.([]*gpuctl.Node)[0] == b.([]*gpuctl.Node)[0] {
			t.Error("same node granted twice")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
