package provider

import (
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/gpuctl"
)

func TestLocalProviderImmediate(t *testing.T) {
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	p := NewLocal(env, node)
	if p.Name() != "local" {
		t.Fatalf("name = %s", p.Name())
	}
	ev := p.Provision(3)
	if !ev.Fired() {
		t.Fatal("local provision should be immediate")
	}
	nodes := ev.Value().([]*gpuctl.Node)
	if len(nodes) != 3 || nodes[0] != node {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestSlurmProviderDelayAndExhaustion(t *testing.T) {
	env := devent.NewEnv()
	n1, n2 := gpuctl.NewNode(env), gpuctl.NewNode(env)
	s := NewSlurm(env, time.Minute, n1, n2)
	if s.Name() != "slurm" {
		t.Fatalf("name = %s", s.Name())
	}
	var gotAt time.Duration
	var count int
	var exhausted error
	env.Spawn("main", func(p *devent.Proc) {
		v, err := p.Wait(s.Provision(2))
		if err != nil {
			t.Error(err)
			return
		}
		gotAt = p.Now()
		count = len(v.([]*gpuctl.Node))
		_, exhausted = p.Wait(s.Provision(1))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != time.Minute || count != 2 {
		t.Fatalf("gotAt=%v count=%d", gotAt, count)
	}
	if exhausted == nil {
		t.Fatal("expected exhaustion error")
	}
	if s.Granted() != 2 {
		t.Fatalf("granted = %d", s.Granted())
	}
}

func TestSlurmDistinctNodes(t *testing.T) {
	env := devent.NewEnv()
	n1, n2 := gpuctl.NewNode(env), gpuctl.NewNode(env)
	s := NewSlurm(env, 0, n1, n2)
	env.Spawn("main", func(p *devent.Proc) {
		a, _ := p.Wait(s.Provision(1))
		b, _ := p.Wait(s.Provision(1))
		if a.([]*gpuctl.Node)[0] == b.([]*gpuctl.Node)[0] {
			t.Error("same node granted twice")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
