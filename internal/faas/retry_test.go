package faas

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// retryExecutor runs every submission through fn after delay, entirely
// in virtual time.
type retryExecutor struct {
	env   *devent.Env
	label string
	delay time.Duration
	fn    func(try int) (any, error)
	calls int
}

func (s *retryExecutor) Label() string { return s.label }
func (s *retryExecutor) Start() error  { return nil }
func (s *retryExecutor) Shutdown()     {}
func (s *retryExecutor) Workers() int  { return 1 }
func (s *retryExecutor) Submit(task *Task, app App, args []any) *devent.Event {
	s.calls++
	call := s.calls
	ev := s.env.NewNamedEvent(fmt.Sprintf("retry-%d", call))
	s.env.Schedule(s.delay, func() {
		v, err := s.fn(call)
		if err != nil {
			ev.Fail(err)
			return
		}
		ev.Fire(v)
	})
	return ev
}

func runDFK(t *testing.T, cfg Config, ex *retryExecutor, body func(p *devent.Proc, d *DFK)) *DFK {
	t.Helper()
	d := NewDFK(ex.env, cfg, ex)
	d.Register(App{Name: "fn", Executor: ex.label, Fn: nil})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	ex.env.Spawn("main", func(p *devent.Proc) { body(p, d) })
	if err := ex.env.Run(); err != nil {
		t.Fatal(err)
	}
	return d
}

// A task that outlives Config.Timeout fails terminally with
// ErrTaskTimeout and status TaskTimedOut, even with retries left.
func TestTaskTimeout(t *testing.T) {
	env := devent.NewEnv()
	ex := &retryExecutor{env: env, label: "x", delay: 10 * time.Second,
		fn: func(int) (any, error) { return "late", nil }}
	var got error
	d := runDFK(t, Config{Retries: 3, Timeout: 2 * time.Second}, ex, func(p *devent.Proc, d *DFK) {
		fut := d.Submit("fn")
		_, got = fut.Result(p)
		if now := p.Now(); now != 2*time.Second {
			t.Errorf("timed out at %v, want 2s", now)
		}
	})
	if !errors.Is(got, ErrTaskTimeout) {
		t.Fatalf("err = %v, want ErrTaskTimeout", got)
	}
	task := d.Tasks()[0]
	if task.Status != TaskTimedOut || !task.Status.Terminal() {
		t.Fatalf("status = %v", task.Status)
	}
	if task.Tries != 1 {
		t.Fatalf("tries = %d, want 1 (no retry after deadline)", task.Tries)
	}
	if got := d.Collector().Metrics().Counter("faas_tasks_timed_out_total", obs.L("app", "fn")).Value(); got != 1 {
		t.Fatalf("tasks_timed_out_total = %v", got)
	}
}

// Retries wait out the exponential backoff: with base 1s and three
// attempts the dispatches land at 0s, 1s (+1s backoff), 3s (+2s).
func TestRetryExponentialBackoff(t *testing.T) {
	env := devent.NewEnv()
	var dispatches []time.Duration
	boom := errors.New("boom")
	ex := &retryExecutor{env: env, label: "x"}
	ex.fn = func(call int) (any, error) {
		if call < 3 {
			return nil, boom
		}
		return "ok", nil
	}
	d := NewDFK(env, Config{Retries: 2, RetryBackoff: time.Second}, ex)
	d.Register(App{Name: "fn", Executor: "x"})
	d.OnTaskEvent(func(ev TaskEvent) {
		if ev.Status == TaskLaunched {
			dispatches = append(dispatches, ev.At)
		}
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var v any
	var err error
	env.Spawn("main", func(p *devent.Proc) {
		v, err = d.Submit("fn").Result(p)
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil || v != "ok" {
		t.Fatalf("v=%v err=%v", v, err)
	}
	want := []time.Duration{0, time.Second, 3 * time.Second}
	if len(dispatches) != len(want) {
		t.Fatalf("dispatches = %v", dispatches)
	}
	for i := range want {
		if dispatches[i] != want[i] {
			t.Fatalf("dispatch %d at %v, want %v (all: %v)", i, dispatches[i], want[i], dispatches)
		}
	}
}

// Jittered backoff is deterministic per seed and bounded by the
// configured fraction.
func TestRetryJitterDeterministic(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		env := devent.NewEnv()
		d := NewDFK(env, Config{
			RetryBackoff:    time.Second,
			RetryBackoffMax: 4 * time.Second,
			RetryJitter:     0.5,
			Seed:            seed,
		})
		var out []time.Duration
		for i := 1; i <= 6; i++ {
			out = append(out, d.backoff(i))
		}
		return out
	}
	a, b := delays(7), delays(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := delays(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
	// Bounds: attempt 1 base 1s, jitter 0.5 → [0.5s, 1.5s]; attempts
	// ≥3 capped at 4s → [2s, 6s].
	if a[0] < 500*time.Millisecond || a[0] > 1500*time.Millisecond {
		t.Fatalf("attempt 1 delay %v out of bounds", a[0])
	}
	for i := 2; i < len(a); i++ {
		if a[i] < 2*time.Second || a[i] > 6*time.Second {
			t.Fatalf("attempt %d delay %v out of bounds", i+1, a[i])
		}
	}
}

// A dispatch-fault hook fails attempts transiently; the retry loop
// recovers and the hook sees every attempt.
func TestDispatchFaultHookRetried(t *testing.T) {
	env := devent.NewEnv()
	ex := &retryExecutor{env: env, label: "x", fn: func(int) (any, error) { return "ok", nil }}
	d := NewDFK(env, Config{Retries: 2}, ex)
	d.Register(App{Name: "fn", Executor: "x"})
	injected := errors.New("fault: injected transient submit failure")
	attempts := 0
	d.SetDispatchFault(func(task *Task) error {
		attempts++
		if attempts <= 2 {
			return injected
		}
		return nil
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var v any
	var err error
	env.Spawn("main", func(p *devent.Proc) {
		v, err = d.Submit("fn").Result(p)
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil || v != "ok" {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if attempts != 3 || ex.calls != 1 {
		t.Fatalf("attempts=%d executor calls=%d", attempts, ex.calls)
	}
}

// Draining DFKs fail new submissions fast with ErrShutdown while
// in-flight work completes.
func TestDFKDrain(t *testing.T) {
	env := devent.NewEnv()
	ex := &retryExecutor{env: env, label: "x", delay: time.Second,
		fn: func(int) (any, error) { return "ok", nil }}
	d := NewDFK(env, Config{}, ex)
	d.Register(App{Name: "fn", Executor: "x"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var inflight, rejected error
	env.Spawn("main", func(p *devent.Proc) {
		fut := d.Submit("fn")
		d.Drain()
		_, rejected = d.Submit("fn").Result(p)
		_, inflight = fut.Result(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rejected, ErrShutdown) {
		t.Fatalf("rejected = %v, want ErrShutdown", rejected)
	}
	if inflight != nil {
		t.Fatalf("in-flight task failed: %v", inflight)
	}
}
