package fault

import (
	"fmt"
	"sort"

	"repro/internal/faas"
)

// Checker asserts the chaos suite's core invariant: every submitted
// task reaches exactly one terminal state (done, failed, or timed
// out) exactly once — no task is lost, none completes twice. Attach
// it to a DFK before submitting work and call Err after the run.
type Checker struct {
	order      []int
	terminal   map[int]int
	last       map[int]faas.TaskStatus
	violations []string
}

// NewChecker creates an empty checker.
func NewChecker() *Checker {
	return &Checker{terminal: make(map[int]int), last: make(map[int]faas.TaskStatus)}
}

// Attach subscribes the checker to a DFK's task events.
func (c *Checker) Attach(d *faas.DFK) { d.OnTaskEvent(c.Hook()) }

// Hook returns the task-event callback (for executors or DFKs that
// take raw hooks).
func (c *Checker) Hook() func(faas.TaskEvent) {
	return func(ev faas.TaskEvent) {
		id := ev.Task.ID
		if _, seen := c.last[id]; !seen {
			c.order = append(c.order, id)
		}
		c.last[id] = ev.Status
		if ev.Status.Terminal() {
			c.terminal[id]++
			if n := c.terminal[id]; n > 1 {
				c.violations = append(c.violations,
					fmt.Sprintf("task %d reached a terminal state %d times (now %v)", id, n, ev.Status))
			}
		}
	}
}

// Seen reports how many distinct tasks the checker observed.
func (c *Checker) Seen() int { return len(c.order) }

// Terminal reports how many tasks reached a terminal state.
func (c *Checker) Terminal() int {
	n := 0
	for _, k := range c.terminal {
		if k > 0 {
			n++
		}
	}
	return n
}

// Outcomes tallies final statuses by name ("done", "failed",
// "timedout", and — for the invariant violation case — whatever
// non-terminal status a lost task was stranded in).
func (c *Checker) Outcomes() map[string]int {
	out := make(map[string]int)
	for _, id := range c.order {
		out[c.last[id].String()]++
	}
	return out
}

// Err returns nil when the invariant held: every observed task
// terminal exactly once. Otherwise it describes every violation,
// lost tasks first in submission order.
func (c *Checker) Err() error {
	var msgs []string
	for _, id := range c.order {
		if c.terminal[id] == 0 {
			msgs = append(msgs, fmt.Sprintf("task %d never reached a terminal state (last %v)", id, c.last[id]))
		}
	}
	msgs = append(msgs, c.violations...)
	if len(msgs) == 0 {
		return nil
	}
	sort.Strings(msgs)
	return fmt.Errorf("fault: invariant violated:\n  %s", joinLines(msgs))
}

func joinLines(msgs []string) string {
	s := msgs[0]
	for _, m := range msgs[1:] {
		s += "\n  " + m
	}
	return s
}
