package fault

import (
	"strings"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
)

// failNthExecutor fails the first n submissions, then succeeds.
type failNthExecutor struct {
	env   *devent.Env
	n     int
	calls int
}

func (e *failNthExecutor) Label() string { return "x" }
func (e *failNthExecutor) Start() error  { return nil }
func (e *failNthExecutor) Shutdown()     {}
func (e *failNthExecutor) Workers() int  { return 1 }
func (e *failNthExecutor) Submit(task *faas.Task, app faas.App, args []any) *devent.Event {
	e.calls++
	call := e.calls
	ev := e.env.NewNamedEvent("x")
	e.env.Schedule(time.Millisecond, func() {
		if call <= e.n {
			ev.Fail(ErrInjected)
		} else {
			ev.Fire("ok")
		}
	})
	return ev
}

// The checker passes a clean run — including tasks that fail or time
// out, as long as each terminates exactly once — and reports correct
// tallies.
func TestCheckerCleanRun(t *testing.T) {
	env := devent.NewEnv()
	ex := &failNthExecutor{env: env, n: 1}
	d := faas.NewDFK(env, faas.Config{Retries: 2, Timeout: time.Hour}, ex)
	d.Register(faas.App{Name: "fn", Executor: "x"})
	ck := NewChecker()
	ck.Attach(d)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", func(p *devent.Proc) {
		futs := []*faas.Future{d.Submit("fn"), d.Submit("fn"), d.Submit("fn")}
		for _, f := range futs {
			f.Result(p)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if ck.Seen() != 3 || ck.Terminal() != 3 {
		t.Fatalf("seen=%d terminal=%d", ck.Seen(), ck.Terminal())
	}
	if got := ck.Outcomes(); got["done"] != 3 {
		t.Fatalf("outcomes = %v", got)
	}
}

// A task that never terminates (a stranded future) is reported as
// lost.
func TestCheckerCatchesLostTask(t *testing.T) {
	ck := NewChecker()
	hook := ck.Hook()
	task := &faas.Task{ID: 1, App: "fn", Status: faas.TaskLaunched}
	hook(faas.TaskEvent{Task: task, Status: faas.TaskPending})
	hook(faas.TaskEvent{Task: task, Status: faas.TaskLaunched})
	err := ck.Err()
	if err == nil || !strings.Contains(err.Error(), "task 1 never reached a terminal state") {
		t.Fatalf("err = %v", err)
	}
}

// A double terminal transition (a double-completed future) is
// reported.
func TestCheckerCatchesDoubleTerminal(t *testing.T) {
	ck := NewChecker()
	hook := ck.Hook()
	task := &faas.Task{ID: 2, App: "fn"}
	hook(faas.TaskEvent{Task: task, Status: faas.TaskDone})
	hook(faas.TaskEvent{Task: task, Status: faas.TaskFailed})
	err := ck.Err()
	if err == nil || !strings.Contains(err.Error(), "terminal state 2 times") {
		t.Fatalf("err = %v", err)
	}
}
