// Package fault is a seeded, deterministic fault injector for the
// simulated FaaS platform. It runs entirely on virtual time: fault
// arrivals are drawn from a seeded exponential process (plus
// explicitly scheduled faults), targets are picked in a deterministic
// listing order, and every draw happens in simulation-event order —
// so a chaos run is a pure function of its Spec, reproducible
// byte-for-byte at any host parallelism.
//
// Fault kinds map to the platform's real failure modes: worker-process
// crashes (OOM kills), GPU context loss (uncorrectable ECC errors),
// reconfiguration kills (a MIG/MPS repartition destroying every worker
// of an executor), endpoint WAN disconnects, and transient submit
// failures.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one fault class.
type Kind string

// Fault kinds. KindSubmit is probability-driven (Spec.SubmitFailProb)
// rather than arrival-driven.
const (
	// KindWorker kills one worker process (its in-flight task fails
	// with a retriable error).
	KindWorker Kind = "worker"
	// KindGPU destroys one GPU context as an uncorrectable ECC error
	// would: kernels fail, memory is freed.
	KindGPU Kind = "gpu"
	// KindReconfig kills every worker of one executor at once — the
	// blast radius of a MIG/MPS repartition racing live work.
	KindReconfig Kind = "reconfig"
	// KindEndpoint takes one endpoint's WAN link down for
	// Spec.ReconnectAfter, then restores it.
	KindEndpoint Kind = "endpoint"
	// KindSubmit fails a task dispatch attempt with ErrInjected
	// (retriable), with probability Spec.SubmitFailProb per attempt.
	KindSubmit Kind = "submit"
)

// kindOrder fixes the deterministic candidate-listing order.
var kindOrder = []Kind{KindWorker, KindGPU, KindReconfig, KindEndpoint}

// validKinds is the parse/validate whitelist.
var validKinds = map[Kind]bool{
	KindWorker: true, KindGPU: true, KindReconfig: true,
	KindEndpoint: true, KindSubmit: true,
}

// Spec configures a chaos run. The zero Spec injects nothing.
type Spec struct {
	// Seed seeds both the arrival process and the submit-failure
	// draws; 0 means seed 1.
	Seed int64
	// Rate is the mean random-fault arrival rate in faults per
	// simulated second (a Poisson process). 0 disables random
	// arrivals (scheduled faults via Injector.At still fire).
	Rate float64
	// SubmitFailProb fails each dispatch attempt with this
	// probability (transient, retriable). 0 disables.
	SubmitFailProb float64
	// Kinds restricts injection to the listed kinds; empty enables
	// all.
	Kinds []Kind
	// After delays the first random fault to this virtual time.
	After time.Duration
	// Until stops random arrivals after this virtual time (0 = no
	// bound; pair with MaxFaults or Injector.Stop to end the run).
	Until time.Duration
	// MaxFaults caps the number of injected faults (0 = uncapped).
	MaxFaults int
	// ReconnectAfter is how long an endpoint disconnect window lasts
	// (default 2s).
	ReconnectAfter time.Duration
}

// Validate checks the spec's ranges.
func (s Spec) Validate() error {
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) || s.Rate < 0 {
		return fmt.Errorf("fault: rate %v out of range", s.Rate)
	}
	if math.IsNaN(s.SubmitFailProb) || s.SubmitFailProb < 0 || s.SubmitFailProb > 1 {
		return fmt.Errorf("fault: pfail %v outside [0,1]", s.SubmitFailProb)
	}
	if s.After < 0 || s.Until < 0 || s.ReconnectAfter < 0 {
		return errors.New("fault: negative time bound")
	}
	if s.Until > 0 && s.Until < s.After {
		return fmt.Errorf("fault: until %v before after %v", s.Until, s.After)
	}
	if s.MaxFaults < 0 {
		return fmt.Errorf("fault: negative max %d", s.MaxFaults)
	}
	seen := map[Kind]bool{}
	for _, k := range s.Kinds {
		if !validKinds[k] {
			return fmt.Errorf("fault: unknown kind %q", k)
		}
		if seen[k] {
			return fmt.Errorf("fault: duplicate kind %q", k)
		}
		seen[k] = true
	}
	return nil
}

// enabled reports whether a kind participates (empty Kinds = all).
func (s Spec) enabled(k Kind) bool {
	if len(s.Kinds) == 0 {
		return true
	}
	for _, have := range s.Kinds {
		if have == k {
			return true
		}
	}
	return false
}

// String renders the spec in the canonical -chaos flag syntax;
// ParseSpec(s.String()) reproduces s (with Kinds sorted).
func (s Spec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if s.Seed != 0 {
		add("seed", strconv.FormatInt(s.Seed, 10))
	}
	if s.Rate != 0 {
		add("rate", strconv.FormatFloat(s.Rate, 'g', -1, 64))
	}
	if s.SubmitFailProb != 0 {
		add("pfail", strconv.FormatFloat(s.SubmitFailProb, 'g', -1, 64))
	}
	if len(s.Kinds) > 0 {
		ks := make([]string, len(s.Kinds))
		for i, k := range s.Kinds {
			ks[i] = string(k)
		}
		sort.Strings(ks)
		add("kinds", strings.Join(ks, "+"))
	}
	if s.After != 0 {
		add("after", s.After.String())
	}
	if s.Until != 0 {
		add("until", s.Until.String())
	}
	if s.MaxFaults != 0 {
		add("max", strconv.Itoa(s.MaxFaults))
	}
	if s.ReconnectAfter != 0 {
		add("reconnect", s.ReconnectAfter.String())
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g. "seed=3,rate=0.5,pfail=0.05,kinds=worker+gpu,until=60s".
// Keys: seed, rate, pfail, kinds ('+'-separated), after, until, max,
// reconnect. An empty string yields the zero Spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("fault: malformed pair %q (want key=value)", pair)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			spec.Rate, err = strconv.ParseFloat(val, 64)
		case "pfail":
			spec.SubmitFailProb, err = strconv.ParseFloat(val, 64)
		case "kinds":
			for _, k := range strings.Split(val, "+") {
				spec.Kinds = append(spec.Kinds, Kind(k))
			}
			sort.Slice(spec.Kinds, func(i, j int) bool { return spec.Kinds[i] < spec.Kinds[j] })
		case "after":
			spec.After, err = time.ParseDuration(val)
		case "until":
			spec.Until, err = time.ParseDuration(val)
		case "max":
			spec.MaxFaults, err = strconv.Atoi(val)
		case "reconnect":
			spec.ReconnectAfter, err = time.ParseDuration(val)
		default:
			return Spec{}, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad value for %q: %v", key, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
