package fault

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/devent"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=3,rate=0.5,pfail=0.05,kinds=worker+gpu,after=1s,until=30s,max=10,reconnect=2s")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 3, Rate: 0.5, SubmitFailProb: 0.05,
		Kinds: []Kind{KindGPU, KindWorker}, // sorted
		After: time.Second, Until: 30 * time.Second,
		MaxFaults: 10, ReconnectAfter: 2 * time.Second,
	}
	if spec.Seed != want.Seed || spec.Rate != want.Rate || spec.SubmitFailProb != want.SubmitFailProb ||
		spec.After != want.After || spec.Until != want.Until ||
		spec.MaxFaults != want.MaxFaults || spec.ReconnectAfter != want.ReconnectAfter {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if len(spec.Kinds) != 2 || spec.Kinds[0] != KindGPU || spec.Kinds[1] != KindWorker {
		t.Fatalf("kinds = %v", spec.Kinds)
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"rate",              // no value
		"rate=",             // empty value
		"rate=fast",         // not a float
		"rate=-1",           // negative
		"pfail=1.5",         // above 1
		"pfail=NaN",         // NaN
		"kinds=worker+disk", // unknown kind
		"kinds=gpu+gpu",     // duplicate kind
		"after=2s,until=1s", // until before after
		"max=-3",            // negative cap
		"flavor=spicy",      // unknown key
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in := "seed=42,rate=1.25,pfail=0.1,kinds=endpoint+worker,after=500ms,until=1m0s,max=7,reconnect=3s"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != spec.String() {
		t.Fatalf("round trip diverged: %q vs %q", again.String(), spec.String())
	}
}

// fakePool implements WorkerPool over a plain name list.
type fakePool struct {
	label  string
	alive  []string
	killed []string
}

func (f *fakePool) Label() string         { return f.label }
func (f *fakePool) WorkerNames() []string { return append([]string(nil), f.alive...) }
func (f *fakePool) KillWorker(name string) bool {
	for i, n := range f.alive {
		if n == name {
			f.alive = append(f.alive[:i], f.alive[i+1:]...)
			f.killed = append(f.killed, name)
			return true
		}
	}
	return false
}

// fakeFabric implements Fabric over a name set.
type fakeFabric struct {
	names []string
	down  map[string]bool
	log   []string
}

func (f *fakeFabric) Endpoints() []string { return f.names }
func (f *fakeFabric) Disconnect(n string) bool {
	if f.down[n] {
		return false
	}
	f.down[n] = true
	f.log = append(f.log, "down:"+n)
	return true
}
func (f *fakeFabric) Reconnect(n string) bool {
	if !f.down[n] {
		return false
	}
	f.down[n] = false
	f.log = append(f.log, "up:"+n)
	return true
}

// chaosTrace runs a seeded injector against fresh fake targets and
// returns the fault log.
func chaosTrace(t *testing.T, seed int64) []Fault {
	t.Helper()
	env := devent.NewEnv()
	inj := New(env, Spec{Seed: seed, Rate: 2, Until: 20 * time.Second, ReconnectAfter: time.Second}, nil)
	inj.AttachPool(&fakePool{label: "cpu", alive: []string{"w0", "w1", "w2", "w3"}})
	inj.AttachFabric(&fakeFabric{names: []string{"ep0", "ep1"}, down: map[string]bool{}})
	var log []Fault
	inj.OnFault(func(f Fault) { log = append(log, f) })
	inj.Start()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if inj.Injected() != len(log) {
		t.Fatalf("Injected() = %d, log has %d", inj.Injected(), len(log))
	}
	return log
}

// The same seed replays the identical fault schedule; a different
// seed diverges.
func TestInjectorDeterministic(t *testing.T) {
	a, b := chaosTrace(t, 7), chaosTrace(t, 7)
	if len(a) == 0 {
		t.Fatal("seed 7 injected nothing in 20s at rate 2")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := chaosTrace(t, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Scheduled faults fire at their exact virtual time against the named
// target; MaxFaults caps the total.
func TestScheduledFaultsAndCap(t *testing.T) {
	env := devent.NewEnv()
	pool := &fakePool{label: "cpu", alive: []string{"w0", "w1", "w2"}}
	inj := New(env, Spec{Seed: 1, MaxFaults: 2}, nil)
	inj.AttachPool(pool)
	var log []Fault
	inj.OnFault(func(f Fault) { log = append(log, f) })
	inj.At(3*time.Second, KindWorker, "w1")
	inj.At(5*time.Second, KindWorker, "") // first candidate: w0
	inj.At(7*time.Second, KindWorker, "") // capped by MaxFaults=2
	inj.Start()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("log = %+v", log)
	}
	if log[0] != (Fault{3 * time.Second, KindWorker, "w1"}) {
		t.Fatalf("first fault = %+v", log[0])
	}
	if log[1] != (Fault{5 * time.Second, KindWorker, "w0"}) {
		t.Fatalf("second fault = %+v", log[1])
	}
	if len(pool.alive) != 1 || pool.alive[0] != "w2" {
		t.Fatalf("alive = %v", pool.alive)
	}
}

// A reconfig fault kills every worker of the pool at once.
func TestReconfigKillsWholePool(t *testing.T) {
	env := devent.NewEnv()
	pool := &fakePool{label: "gpu", alive: []string{"w0", "w1"}}
	inj := New(env, Spec{Seed: 1}, nil)
	inj.AttachPool(pool)
	inj.At(time.Second, KindReconfig, "gpu")
	inj.Start()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pool.alive) != 0 || len(pool.killed) != 2 {
		t.Fatalf("alive=%v killed=%v", pool.alive, pool.killed)
	}
}

// Endpoint faults open a disconnect window that closes after
// ReconnectAfter.
func TestEndpointDisconnectWindow(t *testing.T) {
	env := devent.NewEnv()
	fab := &fakeFabric{names: []string{"ep0"}, down: map[string]bool{}}
	inj := New(env, Spec{Seed: 1, ReconnectAfter: 4 * time.Second}, nil)
	inj.AttachFabric(fab)
	inj.At(time.Second, KindEndpoint, "ep0")
	inj.Start()
	env.Schedule(3*time.Second, func() {
		if !fab.down["ep0"] {
			t.Error("endpoint not down inside the window")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fab.down["ep0"] {
		t.Fatal("endpoint still down after the window")
	}
	if strings.Join(fab.log, " ") != "down:ep0 up:ep0" {
		t.Fatalf("log = %v", fab.log)
	}
}

// SubmitFault fails dispatches at the configured probability,
// deterministically per seed, and respects the After window.
func TestSubmitFaultDeterministic(t *testing.T) {
	draws := func(seed int64) []bool {
		env := devent.NewEnv()
		inj := New(env, Spec{Seed: seed, SubmitFailProb: 0.3}, nil)
		var out []bool
		for n := 0; n < 64; n++ {
			out = append(out, errors.Is(inj.SubmitFault(), ErrInjected))
		}
		return out
	}
	a, b, c := draws(5), draws(5), draws(6)
	hits := 0
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("hits = %d/%d at p=0.3", hits, len(a))
	}
	if !diff {
		t.Fatal("different seeds produced identical draws")
	}

	env := devent.NewEnv()
	inj := New(env, Spec{Seed: 5, SubmitFailProb: 1, After: time.Hour}, nil)
	if err := inj.SubmitFault(); err != nil {
		t.Fatalf("fault before After window: %v", err)
	}
}

// Stop cancels pending arrivals so the env drains.
func TestStopCancelsArrivals(t *testing.T) {
	env := devent.NewEnv()
	pool := &fakePool{label: "cpu", alive: []string{"w0"}}
	inj := New(env, Spec{Seed: 1, Rate: 100}, nil) // no Until: would run forever
	inj.AttachPool(pool)
	inj.Start()
	env.Schedule(50*time.Millisecond, inj.Stop)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() > time.Second {
		t.Fatalf("env ran to %v after Stop", env.Now())
	}
}
