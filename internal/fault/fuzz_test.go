package fault

import "testing"

// FuzzParseSpec checks the -chaos flag parser never panics, only
// accepts specs that validate, and is idempotent through String():
// parse → render → parse must converge.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=3,rate=0.5")
	f.Add("seed=3,rate=0.5,pfail=0.05,kinds=worker+gpu,after=1s,until=30s,max=10,reconnect=2s")
	f.Add("kinds=submit")
	f.Add("rate=1e309")
	f.Add("pfail=NaN")
	f.Add("rate==,,=")
	f.Add("until=-5s")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid spec %+v: %v", s, spec, verr)
		}
		rendered := spec.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) → String() = %q does not reparse: %v", s, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("String() not a fixed point: %q → %q", rendered, again.String())
		}
	})
}
