package fault

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// ErrInjected fails dispatch attempts hit by KindSubmit faults; it is
// transient, so the DFK's retry policy recovers from it.
var ErrInjected = errors.New("fault: injected transient submit failure")

// WorkerPool is the executor surface the injector kills workers
// through (implemented by htex.HTEX).
type WorkerPool interface {
	Label() string
	WorkerNames() []string
	KillWorker(name string) bool
}

// Device is the GPU surface for ECC-style context loss (implemented
// by simgpu.Device).
type Device interface {
	Name() string
	ContextNames() []string
	InjectContextLoss(name string) bool
}

// Fabric is the WAN surface for endpoint disconnect windows
// (implemented by endpoint.Service).
type Fabric interface {
	Endpoints() []string
	Disconnect(name string) bool
	Reconnect(name string) bool
}

// Fault records one injected fault (for hooks and tests).
type Fault struct {
	At     time.Duration
	Kind   Kind
	Target string
}

// Injector drives a chaos run: attach targets, Start, and faults
// arrive on virtual time per the Spec until Until/MaxFaults/Stop.
type Injector struct {
	env  *devent.Env
	spec Spec
	obs  *obs.Collector
	// arrivalRng drives fault timing and target picks; submitRng
	// drives per-dispatch failure draws. Separate streams keep the
	// schedule independent of how many tasks a workload submits.
	arrivalRng *rand.Rand
	submitRng  *rand.Rand

	pools  []WorkerPool
	devs   []Device
	fabric Fabric

	injected int
	started  bool
	stopped  bool
	timer    *devent.Timer
	onFault  func(Fault)
}

// New creates an injector over env; a nil collector gets a private
// one.
func New(env *devent.Env, spec Spec, c *obs.Collector) *Injector {
	if c == nil {
		c = obs.New(env)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		env:        env,
		spec:       spec,
		obs:        c,
		arrivalRng: rand.New(rand.NewSource(seed)),
		submitRng:  rand.New(rand.NewSource(seed + 1)),
	}
}

// Spec returns the injector's configuration.
func (i *Injector) Spec() Spec { return i.spec }

// Injected reports how many faults have fired so far.
func (i *Injector) Injected() int { return i.injected }

// OnFault installs a hook receiving every injected fault (tests use
// it to assert determinism).
func (i *Injector) OnFault(fn func(Fault)) { i.onFault = fn }

// AttachPool adds a worker pool as a KindWorker/KindReconfig target.
func (i *Injector) AttachPool(p WorkerPool) { i.pools = append(i.pools, p) }

// AttachDevice adds a GPU as a KindGPU target.
func (i *Injector) AttachDevice(d Device) { i.devs = append(i.devs, d) }

// AttachFabric sets the endpoint service for KindEndpoint targets.
func (i *Injector) AttachFabric(f Fabric) { i.fabric = f }

// SubmitFault implements the DFK dispatch-fault hook: with
// SubmitFailProb it fails the attempt with ErrInjected. Draws happen
// in simulation-event order, so they are deterministic per seed.
func (i *Injector) SubmitFault() error {
	if i.stopped || i.spec.SubmitFailProb <= 0 || !i.spec.enabled(KindSubmit) {
		return nil
	}
	if !i.inWindow(i.env.Now()) {
		return nil
	}
	if i.submitRng.Float64() < i.spec.SubmitFailProb {
		i.record(Fault{At: i.env.Now(), Kind: KindSubmit, Target: "dispatch"})
		return ErrInjected
	}
	return nil
}

// At schedules one specific fault at virtual time t (absolute). An
// empty target picks the first candidate in listing order at fire
// time. Scheduled faults ignore After/Until but count against
// MaxFaults.
func (i *Injector) At(t time.Duration, kind Kind, target string) {
	i.env.ScheduleAt(t, func() {
		if i.stopped || i.capped() {
			return
		}
		i.fire(kind, target)
	})
}

// Start begins the random arrival process (no-op when Rate is 0).
func (i *Injector) Start() {
	if i.started {
		return
	}
	i.started = true
	if i.spec.Rate <= 0 {
		return
	}
	base := i.env.Now()
	if i.spec.After > base {
		base = i.spec.After
	}
	i.arm(base + i.interarrival())
}

// Stop cancels future arrivals; faults already firing and pending
// endpoint reconnects complete. Idempotent.
func (i *Injector) Stop() {
	i.stopped = true
	i.timer.Cancel()
	i.timer = nil
}

func (i *Injector) interarrival() time.Duration {
	return time.Duration(i.arrivalRng.ExpFloat64() / i.spec.Rate * float64(time.Second))
}

func (i *Injector) capped() bool {
	return i.spec.MaxFaults > 0 && i.injected >= i.spec.MaxFaults
}

func (i *Injector) inWindow(t time.Duration) bool {
	if t < i.spec.After {
		return false
	}
	return i.spec.Until == 0 || t <= i.spec.Until
}

func (i *Injector) arm(at time.Duration) {
	if i.stopped || i.capped() {
		return
	}
	if i.spec.Until > 0 && at > i.spec.Until {
		return
	}
	i.timer = i.env.Schedule(at-i.env.Now(), func() {
		if i.stopped {
			return
		}
		i.injectRandom()
		i.arm(i.env.Now() + i.interarrival())
	})
}

// candidate is one injectable fault target.
type candidate struct {
	kind   Kind
	target string
	fire   func() bool
}

// candidates lists every currently injectable fault in a fixed,
// deterministic order: kinds in kindOrder, then targets in attach /
// listing order. Never iterates a map.
func (i *Injector) candidates(only Kind, target string) []candidate {
	var out []candidate
	add := func(c candidate) {
		if only != "" && c.kind != only {
			return
		}
		if target != "" && c.target != target {
			return
		}
		out = append(out, c)
	}
	for _, kind := range kindOrder {
		if !i.spec.enabled(kind) && only == "" {
			continue
		}
		switch kind {
		case KindWorker:
			for _, p := range i.pools {
				pool := p
				for _, name := range pool.WorkerNames() {
					n := name
					add(candidate{kind, n, func() bool { return pool.KillWorker(n) }})
				}
			}
		case KindGPU:
			for _, d := range i.devs {
				dev := d
				for _, name := range dev.ContextNames() {
					n := name
					add(candidate{kind, n, func() bool { return dev.InjectContextLoss(n) }})
				}
			}
		case KindReconfig:
			for _, p := range i.pools {
				pool := p
				add(candidate{kind, pool.Label(), func() bool {
					names := pool.WorkerNames()
					killed := false
					for _, n := range names {
						if pool.KillWorker(n) {
							killed = true
						}
					}
					return killed
				}})
			}
		case KindEndpoint:
			if i.fabric == nil {
				continue
			}
			for _, name := range i.fabric.Endpoints() {
				n := name
				add(candidate{kind, n, func() bool {
					if !i.fabric.Disconnect(n) {
						return false
					}
					window := i.spec.ReconnectAfter
					if window <= 0 {
						window = 2 * time.Second
					}
					i.env.Schedule(window, func() { i.fabric.Reconnect(n) })
					return true
				}})
			}
		}
	}
	return out
}

// injectRandom fires one fault at a uniformly drawn candidate; when
// nothing is currently injectable the arrival passes harmlessly.
func (i *Injector) injectRandom() {
	cands := i.candidates("", "")
	if len(cands) == 0 {
		return
	}
	c := cands[i.arrivalRng.Intn(len(cands))]
	i.fireCandidate(c)
}

// fire injects a specific kind (first matching candidate).
func (i *Injector) fire(kind Kind, target string) bool {
	cands := i.candidates(kind, target)
	if len(cands) == 0 {
		return false
	}
	return i.fireCandidate(cands[0])
}

func (i *Injector) fireCandidate(c candidate) bool {
	if !c.fire() {
		return false
	}
	i.record(Fault{At: i.env.Now(), Kind: c.kind, Target: c.target})
	return true
}

func (i *Injector) record(f Fault) {
	i.injected++
	i.obs.Metrics().Counter("fault_injected_total", obs.L("kind", string(f.Kind))).Inc()
	i.obs.AddSpan("fault", string(f.Kind), "faults", 0, f.At, f.At,
		obs.String("target", f.Target))
	if i.onFault != nil {
		i.onFault(f)
	}
}
