package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchDemands is the tracked benchmark's workload: 50 app demands
// drawn from the scenario's demand classes with a fixed seed.
func benchDemands(n int) []Demand {
	rng := rand.New(rand.NewSource(42))
	ds := make([]Demand, n)
	for i := range ds {
		ds[i] = randomDemand(rng, fmt.Sprintf("app%d", i))
	}
	return ds
}

// BenchmarkPack100x50 is the tracked fleet record (BENCH_fleet.json):
// a from-scratch greedy solve of 50 app demands over a 100-GPU mixed
// inventory, the shape `paperbench fleet` runs at.
func BenchmarkPack100x50(b *testing.B) {
	inv := mixedInventory(50, 50)
	ds := benchDemands(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(Config{Inventory: inv})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range ds {
			if _, err := c.Place(d); err != nil {
				b.Fatalf("demand %+v: %v", d, err)
			}
		}
	}
}

// BenchmarkChurn100GPUs measures steady-state incremental churn: one
// eviction plus one placement against a loaded 100-GPU fleet.
func BenchmarkChurn100GPUs(b *testing.B) {
	inv := mixedInventory(50, 50)
	c, err := New(Config{Inventory: inv})
	if err != nil {
		b.Fatal(err)
	}
	ds := benchDemands(200)
	placed := make([]Demand, 0, len(ds))
	for _, d := range ds {
		if _, err := c.Place(d); err == nil {
			placed = append(placed, d)
		}
	}
	if len(placed) < 50 {
		b.Fatalf("only %d demands placed", len(placed))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := placed[i%len(placed)]
		if err := c.Evict(d.Tenant); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Place(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentation100GPUs measures the metric the sampler and
// the rebalance comparison both lean on.
func BenchmarkFragmentation100GPUs(b *testing.B) {
	inv := mixedInventory(50, 50)
	c, err := New(Config{Inventory: inv})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range benchDemands(200) {
		_, _ = c.Place(d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Fragmentation().Fleet
	}
}
