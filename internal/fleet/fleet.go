// Package fleet places N tenant demands onto M heterogeneous GPUs —
// the cluster layer above simgpu.Device that the ROADMAP's first
// fleet-scale item calls for.
//
// The model follows ParvaGPU's combined MIG+MPS "segments": every GPU
// is exclusively in one sharing mode at a time (as on real hardware),
// either carved into MIG instances or running whole-GPU MPS. A tenant's
// segment is then one of
//
//   - an MPS percentage share *inside* a MIG instance (MPS is available
//     within an instance on real A100s), so small tenants can co-occupy
//     one slice; a dedicated instance is simply a share whose
//     percentage grant covers the whole instance; or
//   - a percentage share of a whole GPU under plain MPS — the fallback
//     for demands no MIG profile covers (more SMs than the 7-slice
//     lattice exposes, more memory than the largest profile grants) or
//     when every lattice is full. Batch (from-scratch) solves apportion
//     these shares with rightsize.PackMPS's largest-remainder method;
//     incremental placements take the minimal granting percentage.
//
// The packer is greedy and fragmentation-aware: each demand goes to the
// feasible segment whose placement increases its GPU's fragmentation
// the least (see Fragmentation for the metric). Churn is incremental —
// arrivals and departures mutate the cluster in place — and Rebalance
// compares the churned state against a from-scratch solve of the
// surviving tenants, adopting the scratch solution when it is strictly
// less fragmented and reporting the gap either way.
//
// Everything is deterministic: identical inventories and identical
// operation sequences yield byte-identical placements, which the
// property suite in fleet_test.go and the FuzzPlace target check
// against the package's own Validate invariants.
package fleet

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/simgpu"
)

// Typed errors. Callers branch on these with errors.Is.
var (
	// ErrUnplaceable is returned when no GPU in the inventory has a
	// feasible segment for the demand.
	ErrUnplaceable = errors.New("fleet: demand cannot be placed")
	// ErrDuplicateTenant is returned when a tenant of the same name is
	// already placed.
	ErrDuplicateTenant = errors.New("fleet: tenant already placed")
	// ErrUnknownTenant is returned by Evict/Migrate for tenants that are
	// not placed.
	ErrUnknownTenant = errors.New("fleet: unknown tenant")
	// ErrBadDemand is returned for malformed demands (empty tenant name,
	// non-positive SMs, negative memory).
	ErrBadDemand = errors.New("fleet: invalid demand")
)

// GPU is one inventory entry: a stable identifier plus the hardware
// spec. IDs key segments, so they must be unique within an inventory.
type GPU struct {
	ID   string
	Spec simgpu.DeviceSpec
}

// Inventory is the fleet's hardware, in a fixed order that placement
// tie-breaks respect (lower index wins).
type Inventory []GPU

// NewInventory builds an inventory with generated gpuN IDs, one per
// spec, in order.
func NewInventory(specs ...simgpu.DeviceSpec) Inventory {
	inv := make(Inventory, len(specs))
	for i, s := range specs {
		inv[i] = GPU{ID: fmt.Sprintf("gpu%d", i), Spec: s}
	}
	return inv
}

// Validate checks the inventory is non-empty with unique IDs and
// internally consistent specs.
func (inv Inventory) Validate() error {
	if len(inv) == 0 {
		return errors.New("fleet: empty inventory")
	}
	seen := make(map[string]bool, len(inv))
	for i, g := range inv {
		if g.ID == "" {
			return fmt.Errorf("fleet: inventory[%d] has no ID", i)
		}
		if seen[g.ID] {
			return fmt.Errorf("fleet: duplicate GPU ID %q", g.ID)
		}
		seen[g.ID] = true
		if err := g.Spec.Validate(); err != nil {
			return fmt.Errorf("fleet: inventory[%d] (%s): %w", i, g.ID, err)
		}
	}
	return nil
}

// Demand is one tenant's right-sized requirement: the SMs at its
// latency knee (rightsize.Recommend) plus its memory footprint.
type Demand struct {
	Tenant   string
	SMs      int
	MemBytes int64
}

func (d Demand) validate() error {
	switch {
	case d.Tenant == "":
		return fmt.Errorf("%w: empty tenant name", ErrBadDemand)
	case d.SMs <= 0:
		return fmt.Errorf("%w: tenant %q wants %d SMs", ErrBadDemand, d.Tenant, d.SMs)
	case d.MemBytes < 0:
		return fmt.Errorf("%w: tenant %q wants negative memory", ErrBadDemand, d.Tenant)
	}
	return nil
}

// SegmentKind distinguishes the two segment shapes.
type SegmentKind uint8

const (
	// SegMIG is an MPS share inside a MIG instance (Percent of the
	// instance's SMs; 100 = the tenant owns the instance).
	SegMIG SegmentKind = iota
	// SegMPS is a percentage share of a whole GPU under plain MPS.
	SegMPS
)

func (k SegmentKind) String() string {
	if k == SegMIG {
		return "mig"
	}
	return "mps"
}

// Segment is the resource grant backing one placement.
type Segment struct {
	// GPU is the inventory ID of the device holding the segment.
	GPU string
	// Kind says whether the segment lives in a MIG instance or on a
	// whole-GPU MPS domain.
	Kind SegmentKind
	// Profile and Start identify the MIG instance (SegMIG only): the
	// profile name and the first compute slice it occupies.
	Profile string
	Start   int
	// Percent is the MPS share of the segment's domain — the instance
	// for SegMIG, the whole device for SegMPS.
	Percent int
	// SMs is the compute grant: ceil(Percent · domainSMs / 100). Always
	// at least the demand's SMs (the demand-met invariant).
	SMs int
	// MemBytes is the memory reservation. Shares reserve exactly the
	// demand (MPS has no memory isolation; capacity is still physical).
	MemBytes int64
}

// Placement pairs a demand with the segment granted to it.
type Placement struct {
	Demand  Demand
	Segment Segment
}

// Config assembles a Cluster.
type Config struct {
	Inventory Inventory
	// Obs, when set, registers fleet metrics (placements, rejections,
	// evictions, fragmentation, per-mode GPU counts) and emits a span
	// per mutating operation on the "fleet" track. Nil keeps the
	// cluster observation-free.
	Obs *obs.Collector
}

// gpuMode is a device's current sharing mode. A GPU leaves modeEmpty on
// its first placement and returns to it when its last tenant departs.
type gpuMode uint8

const (
	modeEmpty gpuMode = iota
	modeMIG
	modeMPS
)

func (m gpuMode) String() string {
	switch m {
	case modeMIG:
		return "mig"
	case modeMPS:
		return "mps"
	}
	return "empty"
}

// share is one tenant's MPS percentage inside a domain (a MIG instance
// or a whole GPU).
type share struct {
	tenant string
	pct    int
	sms    int
	mem    int64
}

// instance is one placed MIG instance and the shares inside it.
type instance struct {
	prof   simgpu.MIGProfile
	start  int
	shares []*share
}

func (in *instance) sms(spec simgpu.DeviceSpec) int {
	return in.prof.Slices * spec.SMsPerSlice
}

func (in *instance) usedPct() int {
	p := 0
	for _, s := range in.shares {
		p += s.pct
	}
	return p
}

func (in *instance) usedMem() int64 {
	var m int64
	for _, s := range in.shares {
		m += s.mem
	}
	return m
}

// gpuState is one device's occupancy.
type gpuState struct {
	idx      int
	gpu      GPU
	mode     gpuMode
	profiles []simgpu.MIGProfile // cached MIGProfilesFor(spec), small→large
	insts    []*instance         // modeMIG, kept sorted by start
	shares   []*share            // modeMPS whole-GPU shares
}

func (g *gpuState) usedPct() int {
	p := 0
	for _, s := range g.shares {
		p += s.pct
	}
	return p
}

func (g *gpuState) usedMem() int64 {
	var m int64
	for _, s := range g.shares {
		m += s.mem
	}
	return m
}

// occupancy returns the compute-slice bitmap and used memory slices of
// a MIG-mode GPU.
func (g *gpuState) occupancy() (occupied []bool, memSlices int) {
	occupied = make([]bool, g.gpu.Spec.MIGSlices)
	for _, in := range g.insts {
		for s := in.start; s < in.start+in.prof.Slices; s++ {
			occupied[s] = true
		}
		memSlices += in.prof.MemSlices
	}
	return occupied, memSlices
}

// Cluster is the fleet's placement state. Not safe for concurrent use:
// like every simulated subsystem here it lives on one Env's virtual
// clock.
type Cluster struct {
	inv      Inventory
	gpus     []*gpuState
	byTenant map[string]*Placement
	// order is the arrival order of live tenants — the demand sequence
	// a from-scratch solve replays.
	order []string

	obsC *obs.Collector
	// metrics (nil without a collector)
	cPlaced, cRejected, cEvicted, cMigrated, cRebalances, cMoved *obs.Counter
	gTenants, gFrag, gMIG, gMPS, gEmpty                          *obs.Gauge
}

// New builds an empty cluster over the inventory.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Inventory.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		inv:      cfg.Inventory,
		byTenant: make(map[string]*Placement),
		obsC:     cfg.Obs,
	}
	for i, g := range cfg.Inventory {
		c.gpus = append(c.gpus, &gpuState{
			idx:      i,
			gpu:      g,
			profiles: simgpu.MIGProfilesFor(g.Spec),
		})
	}
	if cfg.Obs != nil {
		m := cfg.Obs.Metrics()
		c.cPlaced = m.Counter("fleet_place_total", obs.L("status", "placed"))
		c.cRejected = m.Counter("fleet_place_total", obs.L("status", "rejected"))
		c.cEvicted = m.Counter("fleet_evict_total")
		c.cMigrated = m.Counter("fleet_migrate_total")
		c.cRebalances = m.Counter("fleet_rebalance_total")
		c.cMoved = m.Counter("fleet_rebalance_moved_total")
		c.gTenants = m.Gauge("fleet_tenants")
		c.gFrag = m.Gauge("fleet_fragmentation")
		c.gMIG = m.Gauge("fleet_gpus", obs.L("mode", "mig"))
		c.gMPS = m.Gauge("fleet_gpus", obs.L("mode", "mps"))
		c.gEmpty = m.Gauge("fleet_gpus", obs.L("mode", "empty"))
		c.gEmpty.Set(float64(len(c.gpus)))
	}
	return c, nil
}

// Inventory returns the cluster's hardware list.
func (c *Cluster) Inventory() Inventory { return c.inv }

// Tenants returns the number of live placements.
func (c *Cluster) Tenants() int { return len(c.order) }

// Lookup returns the live placement for a tenant.
func (c *Cluster) Lookup(tenant string) (Placement, bool) {
	p, ok := c.byTenant[tenant]
	if !ok {
		return Placement{}, false
	}
	return *p, true
}

// Placements lists the live placements in tenant-arrival order.
func (c *Cluster) Placements() []Placement {
	out := make([]Placement, 0, len(c.order))
	for _, t := range c.order {
		out = append(out, *c.byTenant[t])
	}
	return out
}

// Demands lists the live demands in tenant-arrival order — the input a
// from-scratch solve replays.
func (c *Cluster) Demands() []Demand {
	out := make([]Demand, 0, len(c.order))
	for _, t := range c.order {
		out = append(out, c.byTenant[t].Demand)
	}
	return out
}

// updateGauges refreshes the fleet-level gauges after a mutation.
func (c *Cluster) updateGauges() {
	if c.obsC == nil {
		return
	}
	var nMIG, nMPS, nEmpty int
	for _, g := range c.gpus {
		switch g.mode {
		case modeMIG:
			nMIG++
		case modeMPS:
			nMPS++
		default:
			nEmpty++
		}
	}
	c.gTenants.Set(float64(len(c.order)))
	c.gFrag.Set(c.Fragmentation().Fleet)
	c.gMIG.Set(float64(nMIG))
	c.gMPS.Set(float64(nMPS))
	c.gEmpty.Set(float64(nEmpty))
}

// event records a zero-duration marker span for one mutating operation.
func (c *Cluster) event(name string, attrs ...obs.Attr) {
	if c.obsC == nil {
		return
	}
	now := c.obsC.Now()
	c.obsC.AddSpan("fleet", name, "fleet", 0, now, now, attrs...)
}
