package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/devent"
	"repro/internal/obs"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// mixedInventory is the property suite's fleet: an A100-80GB/40GB mix.
func mixedInventory(n80, n40 int) Inventory {
	specs := make([]simgpu.DeviceSpec, 0, n80+n40)
	for i := 0; i < n80; i++ {
		specs = append(specs, simgpu.A100SXM480GB())
	}
	for i := 0; i < n40; i++ {
		specs = append(specs, simgpu.A100SXM440GB())
	}
	return NewInventory(specs...)
}

// randomDemand draws from the scenario's demand classes: mostly
// MIG-coverable tenants plus the occasional oversize demand that only
// whole-GPU MPS can serve.
func randomDemand(rng *rand.Rand, name string) Demand {
	switch rng.Intn(10) {
	case 0, 1, 2, 3: // small: fits a 1g/2g slice
		return Demand{Tenant: name, SMs: 1 + rng.Intn(28), MemBytes: int64(1+rng.Intn(10)) * simgpu.GB}
	case 4, 5, 6: // medium: 2g–4g
		return Demand{Tenant: name, SMs: 20 + rng.Intn(36), MemBytes: int64(5+rng.Intn(30)) * simgpu.GB}
	case 7, 8: // large: 4g–7g
		return Demand{Tenant: name, SMs: 50 + rng.Intn(48), MemBytes: int64(10+rng.Intn(60)) * simgpu.GB}
	default: // oversize: more SMs than the 98 the MIG lattice exposes
		return Demand{Tenant: name, SMs: 99 + rng.Intn(10), MemBytes: int64(1+rng.Intn(40)) * simgpu.GB}
	}
}

// TestPropertyPlaceInvariants drives seeded random demand streams into
// mixed fleets and checks, after every operation, the full structural
// invariant set: valid MIG lattice with no overlap, per-domain MPS
// shares ≤100%, demand-met for every placed tenant, and consistent
// bookkeeping. Rejections must be typed ErrUnplaceable.
func TestPropertyPlaceInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := New(Config{Inventory: mixedInventory(3, 2)})
			if err != nil {
				t.Fatal(err)
			}
			placed := 0
			for i := 0; i < 120; i++ {
				d := randomDemand(rng, fmt.Sprintf("t%d", i))
				_, err := c.Place(d)
				switch {
				case err == nil:
					placed++
				case errors.Is(err, ErrUnplaceable):
					// full fleet: acceptable, but state must be untouched
				default:
					t.Fatalf("op %d: unexpected error class: %v", i, err)
				}
				if verr := c.Validate(); verr != nil {
					t.Fatalf("op %d (place %s): invariants violated: %v", i, d.Tenant, verr)
				}
			}
			if placed == 0 {
				t.Fatal("property run placed nothing; demand generator is broken")
			}
			// Segment grants really cover the demands (belt to Validate's
			// suspenders, via the public accessor).
			for _, pl := range c.Placements() {
				if pl.Segment.SMs < pl.Demand.SMs || pl.Segment.MemBytes < pl.Demand.MemBytes {
					t.Fatalf("tenant %q under-granted: %+v", pl.Demand.Tenant, pl)
				}
			}
		})
	}
}

// TestPropertyChurn alternates seeded arrivals and departures and
// checks the churn-consistency invariant: the incremental state either
// equals a from-scratch solve of the survivors, or is explicitly
// flagged — as fragmented-worse with a gap within FragGapBound, or as
// ScratchInfeasible (the greedy replay can dead-end where the
// incremental path, shaped by since-departed tenants, did not; the
// incremental state must then stand and stay valid).
func TestPropertyChurn(t *testing.T) {
	feasible := 0
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{Inventory: mixedInventory(2, 2)})
		if err != nil {
			t.Fatal(err)
		}
		var live []string
		next := 0
		for op := 0; op < 200; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				name := fmt.Sprintf("t%d", next)
				next++
				if _, err := c.Place(randomDemand(rng, name)); err == nil {
					live = append(live, name)
				} else if !errors.Is(err, ErrUnplaceable) {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			} else {
				i := rng.Intn(len(live))
				if err := c.Evict(live[i]); err != nil {
					t.Fatalf("seed %d op %d: evict: %v", seed, op, err)
				}
				live = append(live[:i], live[i+1:]...)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
		rep := c.Drift()
		if rep.ScratchInfeasible {
			// Explicitly flagged; the incremental state must survive a
			// rebalance attempt untouched.
			got := c.Rebalance()
			if got.Applied {
				t.Fatalf("seed %d: applied a rebalance with no feasible scratch solve", seed)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d: after no-op rebalance: %v", seed, err)
			}
			continue
		}
		feasible++
		if rep.Equal && rep.Gap != 0 {
			t.Fatalf("seed %d: equal placements but gap %v", seed, rep.Gap)
		}
		if math.Abs(rep.Gap) > FragGapBound {
			t.Fatalf("seed %d: churn gap %v exceeds bound %v (before %v, scratch %v)",
				seed, rep.Gap, FragGapBound, rep.Before, rep.Scratch)
		}
		// Rebalance must leave a valid cluster whose fragmentation is
		// min(incremental, scratch).
		want := math.Min(rep.Before, rep.Scratch)
		got := c.Rebalance()
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: after rebalance: %v", seed, err)
		}
		if f := c.Fragmentation().Fleet; math.Abs(f-want) > 1e-9 {
			t.Fatalf("seed %d: rebalanced fragmentation %v, want %v (applied=%v)", seed, f, want, got.Applied)
		}
	}
	if feasible == 0 {
		t.Fatal("every seed hit ScratchInfeasible; the gap property was never exercised")
	}
}

// TestPropertyDeterministic re-runs the same seeded operation sequence
// on two independent clusters and requires identical placements — the
// packer has no hidden iteration-order or map dependence.
func TestPropertyDeterministic(t *testing.T) {
	run := func(seed int64) []Placement {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{Inventory: mixedInventory(2, 1)})
		if err != nil {
			t.Fatal(err)
		}
		var live []string
		for i := 0; i < 150; i++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				j := rng.Intn(len(live))
				if err := c.Evict(live[j]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:j], live[j+1:]...)
				continue
			}
			name := fmt.Sprintf("t%d", i)
			if _, err := c.Place(randomDemand(rng, name)); err == nil {
				live = append(live, name)
			}
		}
		return c.Placements()
	}
	for seed := int64(1); seed <= 4; seed++ {
		a, b := run(seed), run(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: placements differ between identical runs", seed)
		}
	}
}

// TestHardShapes is the table of known-hard placement shapes.
func TestHardShapes(t *testing.T) {
	gb := simgpu.GB
	t.Run("seven-slice-lattice", func(t *testing.T) {
		// Seven 1-slice tenants fill the whole A100 lattice.
		c, _ := New(Config{Inventory: mixedInventory(1, 0)})
		for i := 0; i < 7; i++ {
			pl, err := c.Place(Demand{Tenant: fmt.Sprintf("t%d", i), SMs: 10, MemBytes: 5 * gb})
			if err != nil {
				t.Fatalf("tenant %d: %v", i, err)
			}
			if pl.Segment.Kind != SegMIG {
				t.Fatalf("tenant %d got %s, want mig", i, pl.Segment.Kind)
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("memory-slice-pressure", func(t *testing.T) {
		// Two 3g.40gb instances eat 8 memory slices; slice 3 is free but
		// a new 1g instance has no memory slice left — the packer must
		// co-locate the third tenant inside an existing instance instead.
		c, _ := New(Config{Inventory: mixedInventory(1, 0)})
		for i := 0; i < 2; i++ {
			if _, err := c.Place(Demand{Tenant: fmt.Sprintf("big%d", i), SMs: 30, MemBytes: 35 * gb}); err != nil {
				t.Fatal(err)
			}
		}
		pl, err := c.Place(Demand{Tenant: "small", SMs: 5, MemBytes: 2 * gb})
		if err != nil {
			t.Fatal(err)
		}
		if pl.Segment.Kind != SegMIG || pl.Segment.Profile != "3g.40gb" {
			t.Fatalf("small tenant should share a 3g instance, got %+v", pl.Segment)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("mixed-inventory-tight-fit", func(t *testing.T) {
		// 30 GB fits a 3g.40gb on the 80 GB part but needs the whole
		// 7g.40gb on the 40 GB part; the tighter fit must win.
		c, _ := New(Config{Inventory: mixedInventory(1, 1)})
		pl, err := c.Place(Demand{Tenant: "t", SMs: 30, MemBytes: 30 * gb})
		if err != nil {
			t.Fatal(err)
		}
		if pl.Segment.Profile != "3g.40gb" {
			t.Fatalf("want 3g.40gb on the 80GB part, got %+v", pl.Segment)
		}
	})
	t.Run("oversize-falls-back-to-mps", func(t *testing.T) {
		// 99 SMs exceeds the 98 the MIG lattice exposes; only whole-GPU
		// MPS can serve it.
		c, _ := New(Config{Inventory: mixedInventory(1, 0)})
		pl, err := c.Place(Demand{Tenant: "t", SMs: 99})
		if err != nil {
			t.Fatal(err)
		}
		if pl.Segment.Kind != SegMPS || pl.Segment.SMs < 99 {
			t.Fatalf("want whole-GPU MPS granting ≥99 SMs, got %+v", pl.Segment)
		}
	})
	t.Run("unplaceable-typed-error", func(t *testing.T) {
		c, _ := New(Config{Inventory: mixedInventory(1, 1)})
		_, err := c.Place(Demand{Tenant: "t", SMs: 10, MemBytes: 100 * gb})
		if !errors.Is(err, ErrUnplaceable) {
			t.Fatalf("want ErrUnplaceable, got %v", err)
		}
		_, err = c.Place(Demand{Tenant: "t", SMs: 500})
		if !errors.Is(err, ErrUnplaceable) {
			t.Fatalf("want ErrUnplaceable for oversize SMs, got %v", err)
		}
	})
	t.Run("duplicate-and-bad-demands", func(t *testing.T) {
		c, _ := New(Config{Inventory: mixedInventory(1, 0)})
		if _, err := c.Place(Demand{Tenant: "t", SMs: 10}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Place(Demand{Tenant: "t", SMs: 10}); !errors.Is(err, ErrDuplicateTenant) {
			t.Fatalf("want ErrDuplicateTenant, got %v", err)
		}
		for _, bad := range []Demand{{Tenant: "", SMs: 1}, {Tenant: "x", SMs: 0}, {Tenant: "x", SMs: 1, MemBytes: -1}} {
			if _, err := c.Place(bad); !errors.Is(err, ErrBadDemand) {
				t.Fatalf("demand %+v: want ErrBadDemand, got %v", bad, err)
			}
		}
	})
}

// TestEvictAndMigrate pins the lifecycle semantics: evicting the last
// tenant empties the GPU, unknown tenants are typed errors, and
// migration re-places onto the least-fragmenting segment.
func TestEvictAndMigrate(t *testing.T) {
	c, _ := New(Config{Inventory: mixedInventory(1, 0)})
	if err := c.Evict("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
	if _, err := c.Migrate("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
	if _, err := c.Place(Demand{Tenant: "a", SMs: 10, MemBytes: simgpu.GB}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(Demand{Tenant: "b", SMs: 10, MemBytes: simgpu.GB}); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict("b"); err != nil {
		t.Fatal(err)
	}
	if c.Tenants() != 0 {
		t.Fatalf("tenants after full eviction: %d", c.Tenants())
	}
	if f := c.Fragmentation().Fleet; f != 0 {
		t.Fatalf("empty fleet fragmentation %v, want 0", f)
	}
	// Migrate: a survivor sharing a large instance moves to a tight one
	// once the fleet has room.
	if _, err := c.Place(Demand{Tenant: "big", SMs: 90, MemBytes: 60 * simgpu.GB}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(Demand{Tenant: "small", SMs: 5, MemBytes: simgpu.GB}); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict("big"); err != nil {
		t.Fatal(err)
	}
	pl, err := c.Migrate("small")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Segment.Profile != "1g.10gb" {
		t.Fatalf("migrated small tenant should own a 1g slice, got %+v", pl.Segment)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerMatchesRightsize pins the repart bridge: planning through
// the fleet API is exactly the rightsize packers.
func TestPlannerMatchesRightsize(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	p := NewPlanner(spec)
	demands := []rightsize.TenantDemand{
		{Name: "a", SMs: 26, MemBytes: 10 * simgpu.GB},
		{Name: "b", SMs: 52, MemBytes: 20 * simgpu.GB},
		{Name: "c", SMs: 9, MemBytes: 4 * simgpu.GB},
	}
	gotMPS, err := p.PlanMPS(demands)
	if err != nil {
		t.Fatal(err)
	}
	wantMPS, err := rightsize.PackMPS(spec, demands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMPS, wantMPS) {
		t.Fatalf("PlanMPS diverged: %+v vs %+v", gotMPS, wantMPS)
	}
	gotMIG, err := p.PlanMIG(demands)
	if err != nil {
		t.Fatal(err)
	}
	wantMIG, err := rightsize.PackMIG(spec, demands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMIG, wantMIG) {
		t.Fatalf("PlanMIG diverged: %+v vs %+v", gotMIG, wantMIG)
	}
}

// TestMetricsRegistered checks the obs wiring: mutations move the
// fleet counters and gauges.
func TestMetricsRegistered(t *testing.T) {
	col := obs.New(devent.NewEnv())
	c, err := New(Config{Inventory: mixedInventory(1, 1), Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(Demand{Tenant: "a", SMs: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(Demand{Tenant: "b", SMs: 2000}); !errors.Is(err, ErrUnplaceable) {
		t.Fatal("oversize demand should be rejected")
	}
	if err := c.Evict("a"); err != nil {
		t.Fatal(err)
	}
	m := col.Metrics()
	if v := m.Counter("fleet_place_total", obs.L("status", "placed")).Value(); v != 1 {
		t.Fatalf("placed counter %v", v)
	}
	if v := m.Counter("fleet_place_total", obs.L("status", "rejected")).Value(); v != 1 {
		t.Fatalf("rejected counter %v", v)
	}
	if v := m.Counter("fleet_evict_total").Value(); v != 1 {
		t.Fatalf("evict counter %v", v)
	}
	if v := m.Gauge("fleet_gpus", obs.L("mode", "empty")).Value(); v != 2 {
		t.Fatalf("empty-mode gauge %v, want 2", v)
	}
}

// TestParseDemandsRoundTrip covers the spec parser both ways.
func TestParseDemandsRoundTrip(t *testing.T) {
	ds, err := ParseDemands("a:10:5;b:99;c:3:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Demand{
		{Tenant: "a", SMs: 10, MemBytes: 5e9},
		{Tenant: "b", SMs: 99},
		{Tenant: "c", SMs: 3, MemBytes: 5e8},
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatalf("parsed %+v", ds)
	}
	back, err := ParseDemands(FormatDemands(ds))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ds) {
		t.Fatalf("round trip diverged: %+v", back)
	}
	for _, bad := range []string{"", ";", "a", "a:x", "a:0", "a:5:x", "a:5;a:6", ":5", "a:5:-1", "a:5:2e9"} {
		if _, err := ParseDemands(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
}

// TestInventoryValidate covers inventory error paths.
func TestInventoryValidate(t *testing.T) {
	if err := (Inventory{}).Validate(); err == nil {
		t.Fatal("empty inventory should fail")
	}
	dup := Inventory{{ID: "g", Spec: simgpu.A100SXM480GB()}, {ID: "g", Spec: simgpu.A100SXM440GB()}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate IDs should fail")
	}
	if _, err := New(Config{Inventory: Inventory{{ID: "", Spec: simgpu.A100SXM480GB()}}}); err == nil {
		t.Fatal("missing ID should fail")
	}
}
