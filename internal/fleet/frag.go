package fleet

import (
	"math"

	"repro/internal/simgpu"
)

// Fragmentation quantifies stranded capacity: resources that are free
// on paper but unusable by any further placement given the remaining
// MIG profile lattice and the MPS percentage/memory coupling.
//
// Per GPU the metric is a [0,1] fraction:
//
//   - empty → 0 (a fully free GPU can host anything its spec allows);
//   - whole-GPU MPS → the imbalance between the free percentage
//     fraction and the free memory fraction — whichever of compute or
//     memory runs out first strands the surplus of the other;
//   - MIG → the max of the compute-side and memory-side stranding. The
//     compute side covers the free slices greedily with the largest
//     profiles that still fit (the best case for a future arrival);
//     slices no profile can reach — wrong start position in the
//     placement lattice, or no memory slices left to pair with them —
//     are stranded, as is the percentage/memory imbalance inside each
//     partially-shared instance. The memory side counts free memory
//     slices no coverable profile can claim.
//
// The constant MIG-mode tax (the A100's 108 SMs expose only 98 under
// MIG) is deliberately excluded: it is a cost of the mode, not of any
// packing decision, and including it would let the metric punish MIG
// even when packed perfectly.
//
// Fleet fragmentation is the unweighted mean over the inventory, so a
// fully idle fleet scores 0 and gauges stay comparable as GPUs churn
// between modes.

// GPUFrag is one device's fragmentation sample.
type GPUFrag struct {
	ID   string
	Mode string
	Frag float64
}

// FragReport is a point-in-time fragmentation snapshot.
type FragReport struct {
	PerGPU []GPUFrag
	Fleet  float64
}

// Fragmentation computes the current snapshot.
func (c *Cluster) Fragmentation() FragReport {
	rep := FragReport{PerGPU: make([]GPUFrag, 0, len(c.gpus))}
	sum := 0.0
	for _, g := range c.gpus {
		f := gpuFrag(g)
		rep.PerGPU = append(rep.PerGPU, GPUFrag{ID: g.gpu.ID, Mode: g.mode.String(), Frag: f})
		sum += f
	}
	if len(c.gpus) > 0 {
		rep.Fleet = sum / float64(len(c.gpus))
	}
	return rep
}

// gpuFrag scores one device.
func gpuFrag(g *gpuState) float64 {
	switch g.mode {
	case modeMPS:
		return mpsFrag(g)
	case modeMIG:
		return migFrag(g)
	}
	return 0
}

// mpsFrag is the whole-GPU MPS imbalance: the smaller of the free
// percentage fraction and the free memory fraction is what the next
// arrival can actually have; the difference is stranded.
func mpsFrag(g *gpuState) float64 {
	spec := g.gpu.Spec
	freePct := float64(100-g.usedPct()) / 100
	freeMem := 1.0
	if spec.MemBytes > 0 {
		freeMem = float64(spec.MemBytes-g.usedMem()) / float64(spec.MemBytes)
	}
	return math.Abs(freePct - freeMem)
}

// migFrag scores a MIG-mode device: stranded compute slices (free but
// not coverable by any profile placement), stranded memory slices, and
// intra-instance percentage/memory imbalance.
func migFrag(g *gpuState) float64 {
	spec := g.gpu.Spec
	occupied, memUsed := g.occupancy()
	freeMemSl := spec.MemSlices - memUsed
	freeSl := 0
	for _, o := range occupied {
		if !o {
			freeSl++
		}
	}

	// Greedy largest-first cover of the free slices: the most capacity
	// any sequence of future instances could reclaim.
	usableSl, usableMemSl := coverFree(g, occupied, freeMemSl)

	strandedSMFrac := 0.0
	totalSMSl := float64(spec.MIGSlices)
	strandedSMFrac += float64(freeSl-usableSl) / totalSMSl

	// Inside each instance, an MPS share that exhausts percentage before
	// memory (or vice versa) strands the surplus, weighted by the
	// instance's share of the device.
	for _, in := range g.insts {
		used := in.usedPct()
		if used == 0 {
			continue // dedicated-capacity accounting handled by the cover
		}
		freePct := float64(100-used) / 100
		freeMem := 1.0
		if in.prof.MemBytes > 0 {
			freeMem = float64(in.prof.MemBytes-in.usedMem()) / float64(in.prof.MemBytes)
		}
		strandedSMFrac += math.Abs(freePct-freeMem) * float64(in.prof.Slices) / totalSMSl
	}

	strandedMemFrac := 0.0
	if spec.MemSlices > 0 {
		strandedMemFrac = float64(freeMemSl-usableMemSl) / float64(spec.MemSlices)
	}
	return math.Max(strandedSMFrac, strandedMemFrac)
}

// coverFree greedily lays the largest fitting profiles over the free
// slices (respecting the placement lattice and the free memory-slice
// budget) and reports how many compute and memory slices the cover
// reaches. Free slices outside the cover are stranded.
func coverFree(g *gpuState, occupied []bool, freeMemSl int) (usableSl, usableMemSl int) {
	covered := make([]bool, len(occupied))
	copy(covered, occupied)
	memLeft := freeMemSl
	// profiles are small→large; walk large→small.
	for i := len(g.profiles) - 1; i >= 0; i-- {
		p := g.profiles[i]
		for {
			placed := false
			for _, start := range simgpu.MIGStarts(p.Slices) {
				if start+p.Slices > len(covered) || p.MemSlices > memLeft {
					continue
				}
				free := true
				for s := start; s < start+p.Slices; s++ {
					if covered[s] {
						free = false
						break
					}
				}
				if !free {
					continue
				}
				for s := start; s < start+p.Slices; s++ {
					covered[s] = true
				}
				memLeft -= p.MemSlices
				usableSl += p.Slices
				usableMemSl += p.MemSlices
				placed = true
				break
			}
			if !placed {
				break
			}
		}
	}
	return usableSl, usableMemSl
}
