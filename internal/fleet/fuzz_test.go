package fleet

import (
	"errors"
	"testing"
)

// FuzzPlace drives arbitrary demand-spec strings through the parser
// and the packer entry, with Validate as the oracle: any input the
// parser accepts must place (or reject with a typed error) while
// preserving every structural invariant, then survive evicting every
// other tenant, and the whole run must be deterministic.
func FuzzPlace(f *testing.F) {
	f.Add("a:10:5;b:99;c:3:0.5")
	f.Add("t0:1")
	f.Add("big:108:80;small:1:1")
	f.Add("x:98:40;y:98:40;z:98:40")
	f.Add("m:14:10;n:28:20;o:42:40;p:56:40;q:98:80")
	f.Add("a:5;a:5")
	f.Add(";;")
	f.Add("a:-1:1e309")
	f.Fuzz(func(t *testing.T, spec string) {
		demands, err := ParseDemands(spec)
		if err != nil {
			if len(demands) != 0 {
				t.Fatalf("parse error %v but returned %d demands", err, len(demands))
			}
			return
		}
		run := func() *Cluster {
			c, err := New(Config{Inventory: mixedInventory(2, 1)})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range demands {
				if _, err := c.Place(d); err != nil && !errors.Is(err, ErrUnplaceable) {
					t.Fatalf("demand %+v: unexpected error class: %v", d, err)
				}
				if err := c.Validate(); err != nil {
					t.Fatalf("after placing %+v: %v", d, err)
				}
			}
			return c
		}
		a := run()
		b := run()
		if !placementsEqual(a, b) {
			t.Fatal("identical demand streams produced different placements")
		}
		for i, tn := range a.Demands() {
			if i%2 != 0 {
				continue
			}
			if err := a.Evict(tn.Tenant); err != nil {
				t.Fatalf("evicting %q: %v", tn.Tenant, err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("after evicting %q: %v", tn.Tenant, err)
			}
		}
	})
}
