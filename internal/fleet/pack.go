package fleet

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// pctGrant is the SM grant of an MPS percentage of a domain:
// ceil(pct·domSMs/100), the CUDA_MPS_ACTIVE_THREAD_PERCENTAGE
// semantics simgpu implements.
func pctGrant(domSMs, pct int) int {
	if pct >= 100 {
		return domSMs
	}
	return (pct*domSMs + 99) / 100
}

// candidate is one feasible segment for a demand, scored for the
// greedy choice.
type candidate struct {
	g     *gpuState
	kind  SegmentKind
	inst  *instance         // existing instance to share (nil → new instance or whole-GPU)
	prof  simgpu.MIGProfile // new-instance profile (SegMIG with inst == nil)
	start int
	pct   int
	sms   int
	// delta is the candidate GPU's fragmentation change if chosen — the
	// greedy objective ("lowest-fragmentation feasible segment").
	delta float64
	// waste is the SM overshoot of the grant over the demand.
	waste int
	// memWaste is the memory overshoot of a dedicated new instance
	// (shares reserve exactly the demand, so theirs is 0).
	memWaste int64
	// wasEmpty marks candidates that would claim an untouched GPU;
	// ties prefer consolidating onto GPUs already in use.
	wasEmpty bool
}

// better is the deterministic total order of the greedy choice:
// smallest fragmentation increase, then tightest SM fit, then tightest
// memory fit, then already-used GPUs over empty ones, then inventory
// order, then sharing an existing instance over cutting a new one,
// then the lowest start slice.
func (a candidate) better(b candidate) bool {
	if a.delta != b.delta {
		return a.delta < b.delta
	}
	if a.waste != b.waste {
		return a.waste < b.waste
	}
	if a.memWaste != b.memWaste {
		return a.memWaste < b.memWaste
	}
	if a.wasEmpty != b.wasEmpty {
		return !a.wasEmpty
	}
	if a.g.idx != b.g.idx {
		return a.g.idx < b.g.idx
	}
	aShare, bShare := a.inst != nil, b.inst != nil
	if aShare != bShare {
		return aShare
	}
	return a.start < b.start
}

// Place finds the lowest-fragmentation feasible segment for the demand
// and installs the tenant there. MIG segments are tried first across
// the whole fleet (shares of existing instances and new instances of
// the smallest covering profile); only when no profile can host the
// demand anywhere does the packer fall back to a whole-GPU MPS share.
// Returns ErrUnplaceable when neither path has room, ErrDuplicateTenant
// when the tenant is already placed.
func (c *Cluster) Place(d Demand) (Placement, error) {
	if err := d.validate(); err != nil {
		return Placement{}, err
	}
	if _, ok := c.byTenant[d.Tenant]; ok {
		return Placement{}, fmt.Errorf("%w: %q", ErrDuplicateTenant, d.Tenant)
	}
	best, ok := c.bestCandidate(d)
	if !ok {
		if c.cRejected != nil {
			c.cRejected.Inc()
		}
		c.event("reject", obs.String("tenant", d.Tenant), obs.Int("sms", d.SMs))
		return Placement{}, fmt.Errorf("%w: tenant %q (%d SMs, %d bytes) on %d GPUs",
			ErrUnplaceable, d.Tenant, d.SMs, d.MemBytes, len(c.gpus))
	}
	pl := c.apply(d, best)
	if c.cPlaced != nil {
		c.cPlaced.Inc()
	}
	c.event("place", obs.String("tenant", d.Tenant),
		obs.String("gpu", pl.Segment.GPU),
		obs.String("kind", pl.Segment.Kind.String()),
		obs.String("profile", pl.Segment.Profile),
		obs.Int("percent", pl.Segment.Percent))
	c.updateGauges()
	return pl, nil
}

// bestCandidate runs the greedy search: the MIG candidate set first,
// the whole-GPU MPS set only when that is empty.
func (c *Cluster) bestCandidate(d Demand) (candidate, bool) {
	var best candidate
	found := false
	consider := func(cand candidate) {
		if !found || cand.better(best) {
			best, found = cand, true
		}
	}
	for _, g := range c.gpus {
		migCandidates(g, d, consider)
	}
	if found {
		return best, true
	}
	for _, g := range c.gpus {
		mpsCandidate(g, d, consider)
	}
	return best, found
}

// migCandidates emits every feasible MIG segment on one GPU: shares of
// existing instances and new instances of the smallest covering
// profile at every free valid start. The candidate's fragmentation
// delta is probed by applying the tentative segment and reverting.
func migCandidates(g *gpuState, d Demand, consider func(candidate)) {
	spec := g.gpu.Spec
	if spec.MIGSlices == 0 || g.mode == modeMPS {
		return
	}
	before := gpuFrag(g)
	// Shares of existing instances.
	for _, in := range g.insts {
		instSMs := in.sms(spec)
		if d.SMs > instSMs {
			continue
		}
		pct := rightsize.MinGrantingPercent(instSMs, d.SMs)
		if pct > 100-in.usedPct() {
			continue
		}
		if d.MemBytes > in.prof.MemBytes-in.usedMem() {
			continue
		}
		sh := &share{tenant: d.Tenant, pct: pct, sms: pctGrant(instSMs, pct), mem: d.MemBytes}
		in.shares = append(in.shares, sh)
		delta := gpuFrag(g) - before
		in.shares = in.shares[:len(in.shares)-1]
		consider(candidate{
			g: g, kind: SegMIG, inst: in, prof: in.prof, start: in.start,
			pct: pct, sms: sh.sms,
			delta: delta, waste: sh.sms - d.SMs,
			wasEmpty: g.mode == modeEmpty,
		})
	}
	// New instance of the smallest covering profile.
	prof, ok := coveringProfile(spec, g.profiles, d)
	if !ok {
		return
	}
	occupied, memUsed := g.occupancy()
	if memUsed+prof.MemSlices > spec.MemSlices {
		return
	}
	instSMs := prof.Slices * spec.SMsPerSlice
	pct := rightsize.MinGrantingPercent(instSMs, d.SMs)
	for _, start := range simgpu.MIGStarts(prof.Slices) {
		if start+prof.Slices > spec.MIGSlices {
			continue
		}
		free := true
		for s := start; s < start+prof.Slices; s++ {
			if occupied[s] {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		in := &instance{prof: prof, start: start,
			shares: []*share{{tenant: d.Tenant, pct: pct, sms: pctGrant(instSMs, pct), mem: d.MemBytes}}}
		g.insts = append(g.insts, in)
		wasMode := g.mode
		g.mode = modeMIG
		delta := gpuFrag(g) - before
		g.mode = wasMode
		g.insts = g.insts[:len(g.insts)-1]
		consider(candidate{
			g: g, kind: SegMIG, prof: prof, start: start,
			pct: pct, sms: in.shares[0].sms,
			delta: delta, waste: in.shares[0].sms - d.SMs,
			memWaste: prof.MemBytes - d.MemBytes,
			wasEmpty: wasMode == modeEmpty,
		})
	}
}

// mpsCandidate emits the whole-GPU MPS fallback segment on one GPU,
// when it has percentage and memory room.
func mpsCandidate(g *gpuState, d Demand, consider func(candidate)) {
	spec := g.gpu.Spec
	if g.mode == modeMIG {
		return
	}
	if d.SMs > spec.SMs || d.MemBytes > spec.MemBytes {
		return
	}
	pct := rightsize.MinGrantingPercent(spec.SMs, d.SMs)
	if pct > 100-g.usedPct() {
		return
	}
	if d.MemBytes > spec.MemBytes-g.usedMem() {
		return
	}
	before := gpuFrag(g)
	sh := &share{tenant: d.Tenant, pct: pct, sms: pctGrant(spec.SMs, pct), mem: d.MemBytes}
	g.shares = append(g.shares, sh)
	wasMode := g.mode
	g.mode = modeMPS
	delta := gpuFrag(g) - before
	g.mode = wasMode
	g.shares = g.shares[:len(g.shares)-1]
	consider(candidate{
		g: g, kind: SegMPS,
		pct: pct, sms: sh.sms,
		delta: delta, waste: sh.sms - d.SMs,
		wasEmpty: wasMode == modeEmpty,
	})
}

// coveringProfile returns the smallest profile covering the demand's
// SMs and memory (profiles are ordered small → large).
func coveringProfile(spec simgpu.DeviceSpec, profiles []simgpu.MIGProfile, d Demand) (simgpu.MIGProfile, bool) {
	for _, p := range profiles {
		if p.Slices*spec.SMsPerSlice >= d.SMs && p.MemBytes >= d.MemBytes {
			return p, true
		}
	}
	return simgpu.MIGProfile{}, false
}

// apply installs the chosen candidate and records the placement.
func (c *Cluster) apply(d Demand, cand candidate) Placement {
	g := cand.g
	seg := Segment{
		GPU:      g.gpu.ID,
		Kind:     cand.kind,
		Percent:  cand.pct,
		SMs:      cand.sms,
		MemBytes: d.MemBytes,
	}
	sh := &share{tenant: d.Tenant, pct: cand.pct, sms: cand.sms, mem: d.MemBytes}
	switch cand.kind {
	case SegMIG:
		seg.Profile = cand.prof.Name
		seg.Start = cand.start
		g.mode = modeMIG
		if cand.inst != nil {
			cand.inst.shares = append(cand.inst.shares, sh)
		} else {
			g.insts = append(g.insts, &instance{prof: cand.prof, start: cand.start, shares: []*share{sh}})
			sort.Slice(g.insts, func(i, j int) bool { return g.insts[i].start < g.insts[j].start })
		}
	case SegMPS:
		g.mode = modeMPS
		g.shares = append(g.shares, sh)
	}
	pl := &Placement{Demand: d, Segment: seg}
	c.byTenant[d.Tenant] = pl
	c.order = append(c.order, d.Tenant)
	return *pl
}

// Evict removes a tenant, destroying its instance when it held the last
// share and returning the GPU to the empty mode when nothing remains.
func (c *Cluster) Evict(tenant string) error {
	pl, ok := c.byTenant[tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	g := c.gpuByID(pl.Segment.GPU)
	switch pl.Segment.Kind {
	case SegMIG:
		for i, in := range g.insts {
			if in.start != pl.Segment.Start {
				continue
			}
			in.shares = removeShare(in.shares, tenant)
			if len(in.shares) == 0 {
				g.insts = append(g.insts[:i], g.insts[i+1:]...)
			}
			break
		}
		if len(g.insts) == 0 {
			g.mode = modeEmpty
		}
	case SegMPS:
		g.shares = removeShare(g.shares, tenant)
		if len(g.shares) == 0 {
			g.mode = modeEmpty
		}
	}
	delete(c.byTenant, tenant)
	for i, t := range c.order {
		if t == tenant {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	if c.cEvicted != nil {
		c.cEvicted.Inc()
	}
	c.event("evict", obs.String("tenant", tenant), obs.String("gpu", pl.Segment.GPU))
	c.updateGauges()
	return nil
}

func removeShare(shares []*share, tenant string) []*share {
	for i, s := range shares {
		if s.tenant == tenant {
			return append(shares[:i], shares[i+1:]...)
		}
	}
	return shares
}

func (c *Cluster) gpuByID(id string) *gpuState {
	for _, g := range c.gpus {
		if g.gpu.ID == id {
			return g
		}
	}
	return nil
}

// Migrate evicts and re-places one tenant — the packer may choose a
// better segment now that the fleet has churned since its arrival. On
// failure the tenant is restored to some feasible segment (its old one
// was just freed, so one exists) and the placement error is returned.
func (c *Cluster) Migrate(tenant string) (Placement, error) {
	old, ok := c.byTenant[tenant]
	if !ok {
		return Placement{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	d := old.Demand
	if err := c.Evict(tenant); err != nil {
		return Placement{}, err
	}
	pl, err := c.Place(d)
	if err != nil {
		if _, rerr := c.Place(d); rerr != nil {
			return Placement{}, fmt.Errorf("fleet: migrate lost tenant %q: %v (restore: %w)", tenant, err, rerr)
		}
		return Placement{}, err
	}
	if c.cMigrated != nil {
		c.cMigrated.Inc()
	}
	return pl, nil
}

// RebalanceReport compares the churned incremental state with a
// from-scratch solve of the surviving tenants.
type RebalanceReport struct {
	// Equal is true when every surviving tenant occupies exactly the
	// segment a from-scratch solve would give it.
	Equal bool
	// Before and Scratch are the fleet fragmentation of the incremental
	// state and of the from-scratch solve; Gap = Before − Scratch is
	// positive when churn left the fleet more fragmented than necessary.
	Before, Scratch, Gap float64
	// ScratchInfeasible marks the greedy-order corner where the
	// from-scratch solve cannot place every survivor; the incremental
	// state is kept.
	ScratchInfeasible bool
	// Applied is true when Rebalance adopted the scratch solution;
	// Moved counts the tenants whose segment changed.
	Applied bool
	Moved   int
}

// FragGapBound bounds how much worse (in fleet-fragmentation terms) the
// incremental churned state may be than a from-scratch solve of the
// same survivors — the packer's churn-consistency invariant, asserted
// by the property suite. Fragmentation is a [0,1] per-GPU mean, so the
// bound says churn never strands more than half the fleet's resources
// beyond what the demand set itself forces.
const FragGapBound = 0.5

// Drift computes the rebalance comparison without applying anything.
func (c *Cluster) Drift() RebalanceReport {
	rep := RebalanceReport{Before: c.Fragmentation().Fleet}
	scratch, err := c.scratchSolve()
	if err != nil {
		rep.ScratchInfeasible = true
		return rep
	}
	rep.Scratch = scratch.Fragmentation().Fleet
	rep.Gap = rep.Before - rep.Scratch
	rep.Equal = placementsEqual(c, scratch)
	return rep
}

// Rebalance adopts the from-scratch solve when it is strictly less
// fragmented than the churned state; otherwise the incremental state
// stands. Either way the report carries the comparison.
func (c *Cluster) Rebalance() RebalanceReport {
	rep := c.Drift()
	if c.cRebalances != nil {
		c.cRebalances.Inc()
	}
	if rep.ScratchInfeasible || rep.Equal || rep.Gap <= fragEps {
		c.event("rebalance", obs.String("applied", "false"), obs.Float("gap", rep.Gap))
		return rep
	}
	scratch, err := c.scratchSolve()
	if err != nil {
		rep.ScratchInfeasible = true
		return rep
	}
	for _, t := range c.order {
		if c.byTenant[t].Segment != scratch.byTenant[t].Segment {
			rep.Moved++
		}
	}
	c.gpus = scratch.gpus
	for i, g := range c.gpus {
		g.idx = i
	}
	for t, pl := range scratch.byTenant {
		*c.byTenant[t] = *pl
	}
	rep.Applied = true
	if c.cMoved != nil {
		c.cMoved.Add(float64(rep.Moved))
	}
	c.event("rebalance", obs.String("applied", "true"),
		obs.Float("gap", rep.Gap), obs.Int("moved", rep.Moved))
	c.updateGauges()
	return rep
}

// scratchSolve replays the surviving demands, in arrival order, onto a
// fresh observation-free cluster over the same inventory.
func (c *Cluster) scratchSolve() (*Cluster, error) {
	fresh, err := New(Config{Inventory: c.inv})
	if err != nil {
		return nil, err
	}
	for _, t := range c.order {
		if _, err := fresh.Place(c.byTenant[t].Demand); err != nil {
			return nil, err
		}
	}
	return fresh, nil
}

// Solve is the batch entry: a from-scratch placement of a whole demand
// set on a fresh cluster over the same inventory. The receiver is not
// modified.
func (c *Cluster) Solve(demands []Demand) ([]Placement, error) {
	fresh, err := New(Config{Inventory: c.inv})
	if err != nil {
		return nil, err
	}
	for _, d := range demands {
		if _, err := fresh.Place(d); err != nil {
			return nil, err
		}
	}
	return fresh.Placements(), nil
}

func placementsEqual(a, b *Cluster) bool {
	if len(a.order) != len(b.order) {
		return false
	}
	for _, t := range a.order {
		pb, ok := b.byTenant[t]
		if !ok || a.byTenant[t].Segment != pb.Segment {
			return false
		}
	}
	return true
}

// fragEps guards float comparisons on fragmentation values.
const fragEps = 1e-9
