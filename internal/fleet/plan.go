package fleet

import (
	"repro/internal/rightsize"
	"repro/internal/simgpu"
)

// Planner is the single-device planning facade of the fleet API — the
// surface the repart controller targets. For one GPU the optimal-plan
// problem is what rightsize already solves (largest-remainder MPS
// apportionment, smallest-covering-profile MIG layouts), so the
// planner delegates to those packers verbatim: routing the controller
// through the fleet layer must stay bit-identical on the single-pair
// phase-shift scenario, which the repart acceptance tests pin. Fleet-
// wide placement (many GPUs, incremental churn) is Cluster.Place and
// friends; Planner is the degenerate M=1 case kept exact.
type Planner struct {
	spec simgpu.DeviceSpec
}

// NewPlanner builds a planner for one device spec.
func NewPlanner(spec simgpu.DeviceSpec) Planner {
	return Planner{spec: spec}
}

// Spec returns the device spec the planner plans against.
func (p Planner) Spec() simgpu.DeviceSpec { return p.spec }

// PlanMPS apportions GPU percentages across the demands —
// rightsize.PackMPS through the fleet API.
func (p Planner) PlanMPS(demands []rightsize.TenantDemand) (*rightsize.MPSPlan, error) {
	return rightsize.PackMPS(p.spec, demands)
}

// PlanMIG picks a placement-validated instance layout —
// rightsize.PackMIG through the fleet API.
func (p Planner) PlanMIG(demands []rightsize.TenantDemand) (*rightsize.MIGPlan, error) {
	return rightsize.PackMIG(p.spec, demands)
}
