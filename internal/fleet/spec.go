package fleet

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDemands parses a compact demand-set spec:
//
//	name:SMs[:memGB][;name:SMs[:memGB]...]
//
// memGB is a decimal GB count (1 GB = 1e9 bytes, matching the gpufaas
// pack subcommand); omitted means no memory requirement. Tenant names
// must be unique. Empty entries (trailing or doubled semicolons) are
// rejected so every accepted spec round-trips through FormatDemands.
func ParseDemands(spec string) ([]Demand, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty demand spec", ErrBadDemand)
	}
	parts := strings.Split(spec, ";")
	out := make([]Demand, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: empty entry at position %d", ErrBadDemand, i)
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("%w: %q (want name:SMs[:memGB])", ErrBadDemand, part)
		}
		name := strings.TrimSpace(fields[0])
		if name == "" {
			return nil, fmt.Errorf("%w: entry %q has no tenant name", ErrBadDemand, part)
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateTenant, name)
		}
		seen[name] = true
		sms, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil || sms <= 0 {
			return nil, fmt.Errorf("%w: entry %q: bad SM count %q", ErrBadDemand, part, fields[1])
		}
		d := Demand{Tenant: name, SMs: sms}
		if len(fields) == 3 {
			gb, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil || gb < 0 || gb > 1e6 {
				return nil, fmt.Errorf("%w: entry %q: bad memory %q", ErrBadDemand, part, fields[2])
			}
			d.MemBytes = int64(gb * 1e9)
		}
		if err := d.validate(); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// FormatDemands renders a demand set back into the ParseDemands spec
// form. ParseDemands(FormatDemands(ds)) reproduces ds for any demand
// set whose memory sizes are whole GB multiples.
func FormatDemands(ds []Demand) string {
	var b strings.Builder
	for i, d := range ds {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s:%d", d.Tenant, d.SMs)
		if d.MemBytes > 0 {
			fmt.Fprintf(&b, ":%s", strconv.FormatFloat(float64(d.MemBytes)/1e9, 'f', -1, 64))
		}
	}
	return b.String()
}
