package fleet

import (
	"fmt"

	"repro/internal/simgpu"
)

// Validate checks every structural invariant of the cluster state and
// returns the first violation found. It is the oracle behind the
// property suite and the FuzzPlace target:
//
//   - mode exclusivity: a GPU holds MIG instances or whole-GPU MPS
//     shares, never both, and an empty GPU holds neither;
//   - lattice validity: every MIG instance starts at an allowed slice
//     for its size, fits on the device, overlaps no sibling, and the
//     instances' memory slices fit the device total;
//   - share validity: MPS percentages inside one domain (instance or
//     whole GPU) sum to ≤100 and reserved memory fits the domain;
//   - demand-met: every placed tenant's segment grants at least the
//     demanded SMs and memory;
//   - bookkeeping: byTenant, the arrival order, and the per-GPU share
//     lists describe exactly the same tenant set.
func (c *Cluster) Validate() error {
	if err := c.inv.Validate(); err != nil {
		return err
	}
	seen := make(map[string]Segment, len(c.byTenant))
	for _, g := range c.gpus {
		if err := c.validateGPU(g, seen); err != nil {
			return err
		}
	}
	if len(seen) != len(c.byTenant) {
		return fmt.Errorf("fleet: %d tenants on GPUs but %d placements recorded", len(seen), len(c.byTenant))
	}
	if len(c.order) != len(c.byTenant) {
		return fmt.Errorf("fleet: arrival order has %d tenants, placements %d", len(c.order), len(c.byTenant))
	}
	for _, t := range c.order {
		pl, ok := c.byTenant[t]
		if !ok {
			return fmt.Errorf("fleet: ordered tenant %q has no placement", t)
		}
		got, ok := seen[t]
		if !ok {
			return fmt.Errorf("fleet: tenant %q placed but absent from every GPU", t)
		}
		if got != pl.Segment {
			return fmt.Errorf("fleet: tenant %q segment mismatch: state %+v vs recorded %+v", t, got, pl.Segment)
		}
		d := pl.Demand
		if pl.Segment.SMs < d.SMs {
			return fmt.Errorf("fleet: tenant %q granted %d SMs < demanded %d", t, pl.Segment.SMs, d.SMs)
		}
		if pl.Segment.MemBytes < d.MemBytes {
			return fmt.Errorf("fleet: tenant %q granted %d bytes < demanded %d", t, pl.Segment.MemBytes, d.MemBytes)
		}
	}
	return nil
}

func (c *Cluster) validateGPU(g *gpuState, seen map[string]Segment) error {
	spec := g.gpu.Spec
	id := g.gpu.ID
	switch g.mode {
	case modeEmpty:
		if len(g.insts) != 0 || len(g.shares) != 0 {
			return fmt.Errorf("fleet: %s empty but holds %d instances, %d shares", id, len(g.insts), len(g.shares))
		}
		return nil
	case modeMIG:
		if len(g.shares) != 0 {
			return fmt.Errorf("fleet: %s in MIG mode but holds whole-GPU shares", id)
		}
		if len(g.insts) == 0 {
			return fmt.Errorf("fleet: %s in MIG mode with no instances", id)
		}
		return c.validateMIG(g, spec, id, seen)
	case modeMPS:
		if len(g.insts) != 0 {
			return fmt.Errorf("fleet: %s in MPS mode but holds MIG instances", id)
		}
		if len(g.shares) == 0 {
			return fmt.Errorf("fleet: %s in MPS mode with no shares", id)
		}
		return validateDomain(id, "gpu", g.shares, spec.SMs, spec.MemBytes, seen, func(sh *share) Segment {
			return Segment{GPU: id, Kind: SegMPS, Percent: sh.pct, SMs: sh.sms, MemBytes: sh.mem}
		})
	}
	return fmt.Errorf("fleet: %s has unknown mode %d", id, g.mode)
}

func (c *Cluster) validateMIG(g *gpuState, spec simgpu.DeviceSpec, id string, seen map[string]Segment) error {
	occupied := make([]bool, spec.MIGSlices)
	memSl := 0
	for _, in := range g.insts {
		validStart := false
		for _, s := range simgpu.MIGStarts(in.prof.Slices) {
			if s == in.start {
				validStart = true
				break
			}
		}
		if !validStart {
			return fmt.Errorf("fleet: %s instance %s starts at slice %d, not in the placement lattice", id, in.prof.Name, in.start)
		}
		if in.start+in.prof.Slices > spec.MIGSlices {
			return fmt.Errorf("fleet: %s instance %s at %d overruns the %d-slice device", id, in.prof.Name, in.start, spec.MIGSlices)
		}
		for s := in.start; s < in.start+in.prof.Slices; s++ {
			if occupied[s] {
				return fmt.Errorf("fleet: %s slice %d claimed by two instances", id, s)
			}
			occupied[s] = true
		}
		memSl += in.prof.MemSlices
		if len(in.shares) == 0 {
			return fmt.Errorf("fleet: %s instance %s has no shares (should be destroyed)", id, in.prof.Name)
		}
		in := in
		err := validateDomain(id, in.prof.Name, in.shares, in.sms(spec), in.prof.MemBytes, seen, func(sh *share) Segment {
			return Segment{GPU: id, Kind: SegMIG, Profile: in.prof.Name, Start: in.start,
				Percent: sh.pct, SMs: sh.sms, MemBytes: sh.mem}
		})
		if err != nil {
			return err
		}
	}
	if memSl > spec.MemSlices {
		return fmt.Errorf("fleet: %s uses %d memory slices of %d", id, memSl, spec.MemSlices)
	}
	return nil
}

// validateDomain checks the MPS shares inside one domain (a MIG
// instance or a whole GPU) and records each share's reconstructed
// segment into seen.
func validateDomain(gpuID, dom string, shares []*share, domSMs int, domMem int64, seen map[string]Segment, segOf func(*share) Segment) error {
	pct, mem := 0, int64(0)
	for _, sh := range shares {
		if sh.tenant == "" {
			return fmt.Errorf("fleet: %s/%s holds a share with no tenant", gpuID, dom)
		}
		if _, dup := seen[sh.tenant]; dup {
			return fmt.Errorf("fleet: tenant %q holds two segments", sh.tenant)
		}
		if sh.pct < 1 || sh.pct > 100 {
			return fmt.Errorf("fleet: %s/%s tenant %q has share percentage %d", gpuID, dom, sh.tenant, sh.pct)
		}
		if sh.sms != pctGrant(domSMs, sh.pct) {
			return fmt.Errorf("fleet: %s/%s tenant %q grant %d SMs ≠ ceil(%d%% of %d)", gpuID, dom, sh.tenant, sh.sms, sh.pct, domSMs)
		}
		pct += sh.pct
		mem += sh.mem
		seen[sh.tenant] = segOf(sh)
	}
	if pct > 100 {
		return fmt.Errorf("fleet: %s/%s shares sum to %d%%", gpuID, dom, pct)
	}
	if mem > domMem {
		return fmt.Errorf("fleet: %s/%s reserves %d bytes of %d", gpuID, dom, mem, domMem)
	}
	return nil
}
