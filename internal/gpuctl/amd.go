package gpuctl

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

// AMD environment variables (Table 1's "AMD equivalent" column):
// ROCm selects devices with ROCR_VISIBLE_DEVICES, runs concurrent
// kernels from different processes by default (the MPS-default
// analogue), and caps a process's compute units with an HSA CU mask
// (the GPU-percentage analogue).
const (
	EnvROCRVisibleDevices = "ROCR_VISIBLE_DEVICES"
	EnvHSACUMask          = "HSA_CU_MASK"
)

// AMDBinding is the ROCm counterpart of Binding.
type AMDBinding struct {
	// Accelerator is the device index as a string.
	Accelerator string
	// CUs caps the compute units this process may use; 0 = all.
	CUs int
}

// Environ renders the binding as ROCm environment variables. The CU
// mask uses the queue-0 range syntax ("0:0-31").
func (b AMDBinding) Environ() map[string]string {
	env := map[string]string{EnvROCRVisibleDevices: b.Accelerator}
	if b.CUs > 0 {
		env[EnvHSACUMask] = fmt.Sprintf("0:0-%d", b.CUs-1)
	}
	return env
}

// CUsFromEnv parses an HSA_CU_MASK value back into a CU count
// (0 = no mask / unlimited). Only the simple "queue:lo-hi" range form
// is understood; malformed values mean no cap, as the runtime would
// silently ignore them.
func CUsFromEnv(env map[string]string) int {
	mask, ok := env[EnvHSACUMask]
	if !ok {
		return 0
	}
	parts := strings.SplitN(mask, ":", 2)
	if len(parts) != 2 {
		return 0
	}
	bounds := strings.SplitN(parts[1], "-", 2)
	if len(bounds) != 2 {
		return 0
	}
	lo, err1 := strconv.Atoi(bounds[0])
	hi, err2 := strconv.Atoi(bounds[1])
	if err1 != nil || err2 != nil || hi < lo {
		return 0
	}
	return hi - lo + 1
}

// AMDPercentToCUs converts a GPU percentage to a CU count for the
// spec (rounding up, like CUDA MPS).
func AMDPercentToCUs(spec simgpu.DeviceSpec, pct int) int {
	if pct <= 0 || pct >= 100 {
		return 0
	}
	return int(math.Ceil(float64(pct) / 100 * float64(spec.SMs)))
}

// OpenAMDContext is the ROCm client bring-up: resolve
// ROCR_VISIBLE_DEVICES, apply the CU mask as an SM percentage, and
// create the context. ROCm multiplexes spatially by default, so the
// caller should have put the device in PolicySpatial (see
// ConfigureAMD).
func (n *Node) OpenAMDContext(p *devent.Proc, name string, env map[string]string) (*simgpu.Context, error) {
	refs := ParseVisibleDevices(env[EnvROCRVisibleDevices])
	if len(refs) == 0 || refs[0].Kind != RefIndex {
		return nil, ErrNoDevice
	}
	dev := n.Device(refs[0].Index)
	if dev == nil {
		return nil, fmt.Errorf("%w: index %d", ErrNoDevice, refs[0].Index)
	}
	opts := simgpu.ContextOpts{Name: name}
	if cus := CUsFromEnv(env); cus > 0 {
		pct := int(math.Ceil(float64(cus) / float64(dev.Spec().SMs) * 100))
		if pct > 100 {
			pct = 100
		}
		opts.SMPercent = pct
	}
	return dev.NewContext(p, opts)
}

// ConfigureAMD puts an AMD device into its default concurrent
// (spatial) sharing mode — Table 1: concurrent execution is "the
// default multiplexing method in AMD ROCm", no daemon required.
func ConfigureAMD(dev *simgpu.Device) error {
	return dev.SetPolicy(simgpu.PolicySpatial)
}
