// Package gpuctl models the NVIDIA control plane the paper's Parsl
// extension drives: CUDA_VISIBLE_DEVICES device selection (including
// MIG UUIDs), the nvidia-cuda-mps-control daemon with active-thread
// percentages, and nvidia-smi-style MIG administration.
//
// The environment-variable assembly here is real, reusable logic — a
// worker launched on actual hardware could export exactly these
// variables. In this repository the variables are consumed by
// Node.OpenContext, which performs what the CUDA runtime would do at
// client-process start: pick the first visible device, resolve MIG
// UUIDs, apply the MPS percentage, and create a simgpu context.
package gpuctl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Environment variable names. The paper's prose uses both
// CUDA_MPS_ACTIVE_GPU_PERCENTAGE (§4.1) and
// CUDA_MPS_ACTIVE_THREAD_PERCENTAGE (§4.1); the real variable is the
// latter, and we accept both with THREAD taking precedence.
const (
	EnvVisibleDevices = "CUDA_VISIBLE_DEVICES"
	EnvMPSThreadPct   = "CUDA_MPS_ACTIVE_THREAD_PERCENTAGE"
	EnvMPSGPUPct      = "CUDA_MPS_ACTIVE_GPU_PERCENTAGE"
)

// ErrNoDevice is returned when no usable device is visible to a
// client.
var ErrNoDevice = errors.New("gpuctl: no visible CUDA device")

// ErrMPSNotRunning is returned for control operations against a
// stopped MPS daemon.
var ErrMPSNotRunning = errors.New("gpuctl: MPS control daemon not running")

// RefKind distinguishes accelerator reference syntaxes.
type RefKind int

const (
	// RefIndex is a plain device ordinal, e.g. "0".
	RefIndex RefKind = iota
	// RefGPUUUID is a full-device UUID, e.g. "GPU-abc".
	RefGPUUUID
	// RefMIGUUID is a MIG instance UUID, e.g. "MIG-gpu0-1-3g.40gb".
	RefMIGUUID
)

// Ref is one parsed accelerator reference.
type Ref struct {
	Kind  RefKind
	Index int    // RefIndex
	UUID  string // RefGPUUUID / RefMIGUUID
}

// String formats the reference in CUDA_VISIBLE_DEVICES syntax.
func (r Ref) String() string {
	if r.Kind == RefIndex {
		return strconv.Itoa(r.Index)
	}
	return r.UUID
}

// ParseRef parses a single accelerator reference.
func ParseRef(s string) (Ref, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Ref{}, errors.New("gpuctl: empty accelerator reference")
	case strings.HasPrefix(s, "MIG-"):
		return Ref{Kind: RefMIGUUID, UUID: s}, nil
	case strings.HasPrefix(s, "GPU-"):
		return Ref{Kind: RefGPUUUID, UUID: s}, nil
	default:
		i, err := strconv.Atoi(s)
		if err != nil || i < 0 {
			return Ref{}, fmt.Errorf("gpuctl: invalid accelerator reference %q", s)
		}
		return Ref{Kind: RefIndex, Index: i}, nil
	}
}

// ParseVisibleDevices parses a CUDA_VISIBLE_DEVICES value. Mirroring
// CUDA's behaviour, an invalid entry silently truncates the list at
// that point rather than erroring.
func ParseVisibleDevices(s string) []Ref {
	var refs []Ref
	for _, part := range strings.Split(s, ",") {
		r, err := ParseRef(part)
		if err != nil {
			break
		}
		refs = append(refs, r)
	}
	return refs
}

// FormatVisibleDevices renders refs as a CUDA_VISIBLE_DEVICES value.
func FormatVisibleDevices(refs []Ref) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Binding is the per-worker accelerator assignment the extended Parsl
// executor computes before starting a worker process (paper §4.1): an
// accelerator reference plus an optional GPU percentage.
type Binding struct {
	// Accelerator is a device index, GPU UUID, or MIG UUID, exactly as
	// listed in the executor's available_accelerators.
	Accelerator string
	// GPUPercent caps the worker's SM share under MPS; 0 means
	// unlimited (variable not exported).
	GPUPercent int
}

// Environ returns the environment variables to export before the
// worker process starts. This is the paper's core mechanism: the MPS
// percentage must be in the environment before process start and
// cannot change for the life of the process.
func (b Binding) Environ() map[string]string {
	env := map[string]string{EnvVisibleDevices: b.Accelerator}
	if b.GPUPercent > 0 && b.GPUPercent < 100 {
		env[EnvMPSThreadPct] = strconv.Itoa(b.GPUPercent)
	}
	return env
}

// PercentFromEnv resolves the MPS active-thread percentage from a
// client environment: THREAD takes precedence over the GPU alias;
// absent or invalid values mean "no cap" (0). Values are clamped to
// [1, 100].
func PercentFromEnv(env map[string]string) int {
	for _, key := range []string{EnvMPSThreadPct, EnvMPSGPUPct} {
		if v, ok := env[key]; ok {
			pct, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				continue
			}
			if pct < 1 {
				pct = 1
			}
			if pct > 100 {
				pct = 100
			}
			return pct
		}
	}
	return 0
}
