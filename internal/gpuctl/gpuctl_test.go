package gpuctl

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

func TestParseRef(t *testing.T) {
	cases := []struct {
		in   string
		kind RefKind
		ok   bool
	}{
		{"0", RefIndex, true},
		{" 3 ", RefIndex, true},
		{"GPU-abc", RefGPUUUID, true},
		{"MIG-gpu0-1-3g.40gb", RefMIGUUID, true},
		{"", 0, false},
		{"-1", 0, false},
		{"banana", 0, false},
	}
	for _, c := range cases {
		r, err := ParseRef(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseRef(%q) err = %v", c.in, err)
		}
		if c.ok && r.Kind != c.kind {
			t.Fatalf("ParseRef(%q) kind = %v", c.in, r.Kind)
		}
	}
}

func TestParseVisibleDevicesTruncatesAtInvalid(t *testing.T) {
	refs := ParseVisibleDevices("0,MIG-x,junk,2")
	if len(refs) != 2 {
		t.Fatalf("refs = %v", refs)
	}
	if refs[0].Index != 0 || refs[1].UUID != "MIG-x" {
		t.Fatalf("refs = %v", refs)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	s := "1,MIG-gpu0-2-1g.10gb,GPU-gpu1"
	refs := ParseVisibleDevices(s)
	if got := FormatVisibleDevices(refs); got != s {
		t.Fatalf("round trip: %q", got)
	}
}

func TestBindingEnviron(t *testing.T) {
	env := Binding{Accelerator: "0", GPUPercent: 25}.Environ()
	if env[EnvVisibleDevices] != "0" || env[EnvMPSThreadPct] != "25" {
		t.Fatalf("env = %v", env)
	}
	env = Binding{Accelerator: "MIG-a"}.Environ()
	if _, ok := env[EnvMPSThreadPct]; ok {
		t.Fatal("percentage exported for unrestricted binding")
	}
	env = Binding{Accelerator: "0", GPUPercent: 100}.Environ()
	if _, ok := env[EnvMPSThreadPct]; ok {
		t.Fatal("100% should not export a cap")
	}
}

func TestPercentFromEnv(t *testing.T) {
	if got := PercentFromEnv(map[string]string{EnvMPSThreadPct: "40"}); got != 40 {
		t.Fatalf("got %d", got)
	}
	// Paper's alias works too.
	if got := PercentFromEnv(map[string]string{EnvMPSGPUPct: "30"}); got != 30 {
		t.Fatalf("alias: got %d", got)
	}
	// THREAD wins over GPU alias.
	if got := PercentFromEnv(map[string]string{EnvMPSThreadPct: "40", EnvMPSGPUPct: "30"}); got != 40 {
		t.Fatalf("precedence: got %d", got)
	}
	if got := PercentFromEnv(map[string]string{EnvMPSThreadPct: "250"}); got != 100 {
		t.Fatalf("clamp high: got %d", got)
	}
	if got := PercentFromEnv(map[string]string{EnvMPSThreadPct: "0"}); got != 1 {
		t.Fatalf("clamp low: got %d", got)
	}
	if got := PercentFromEnv(map[string]string{EnvMPSThreadPct: "nope"}); got != 0 {
		t.Fatalf("invalid: got %d", got)
	}
	if got := PercentFromEnv(nil); got != 0 {
		t.Fatalf("empty: got %d", got)
	}
}

func TestQuickParseFormatRoundTrip(t *testing.T) {
	f := func(idx []uint8) bool {
		refs := make([]Ref, len(idx))
		for i, v := range idx {
			refs[i] = Ref{Kind: RefIndex, Index: int(v)}
		}
		back := ParseVisibleDevices(FormatVisibleDevices(refs))
		if len(refs) == 0 {
			return len(back) == 0
		}
		if len(back) != len(refs) {
			return false
		}
		for i := range refs {
			if back[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestNode(t *testing.T, env *devent.Env, nDev int) *Node {
	t.Helper()
	devs := make([]*simgpu.Device, nDev)
	for i := range devs {
		d, err := simgpu.NewDevice(env, "gpu"+string(rune('0'+i)), simgpu.A100SXM480GB())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	return NewNode(env, devs...)
}

func TestMPSDaemonLifecycle(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 1)
	env.Spawn("admin", func(p *devent.Proc) {
		d, err := n.StartMPS(p, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if n.Device(0).Policy() != simgpu.PolicySpatial {
			t.Error("policy not spatial after MPS start")
		}
		// Idempotent.
		d2, err := n.StartMPS(p, 0)
		if err != nil || d2 != d {
			t.Errorf("second start: %v %v", d2, err)
		}
		if err := d.SetDefaultActiveThreadPercentage(50); err != nil {
			t.Error(err)
		}
		if got := d.ClientPercent(nil); got != 50 {
			t.Errorf("default pct = %d", got)
		}
		if got := d.ClientPercent(map[string]string{EnvMPSThreadPct: "20"}); got != 20 {
			t.Errorf("env pct = %d", got)
		}
		if err := d.Quit(); err != nil {
			t.Error(err)
		}
		if n.Device(0).Policy() != simgpu.PolicyTimeShare {
			t.Error("policy not restored")
		}
		if err := d.Quit(); !errors.Is(err, ErrMPSNotRunning) {
			t.Errorf("double quit: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMPSRefusesMIGMode(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 1)
	env.Spawn("admin", func(p *devent.Proc) {
		if err := n.Device(0).EnableMIG(p); err != nil {
			t.Error(err)
			return
		}
		if _, err := n.StartMPS(p, 0); !errors.Is(err, simgpu.ErrMIGMode) {
			t.Errorf("StartMPS in MIG mode: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenContextWholeDeviceWithMPSPercent(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 2)
	env.Spawn("worker", func(p *devent.Proc) {
		if _, err := n.StartMPS(p, 1); err != nil {
			t.Error(err)
			return
		}
		b := Binding{Accelerator: "1", GPUPercent: 30}
		ctx, err := n.OpenContext(p, "fn", b.Environ())
		if err != nil {
			t.Error(err)
			return
		}
		if ctx.SMPercent() != 30 {
			t.Errorf("SMPercent = %d", ctx.SMPercent())
		}
		// Context init cost was paid.
		if p.Now() < n.Device(1).Spec().ContextInit {
			t.Errorf("no init cost: now = %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenContextPercentIgnoredWithoutMPS(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 1)
	env.Spawn("worker", func(p *devent.Proc) {
		b := Binding{Accelerator: "0", GPUPercent: 30}
		ctx, err := n.OpenContext(p, "fn", b.Environ())
		if err != nil {
			t.Error(err)
			return
		}
		if ctx.SMPercent() != 0 {
			t.Errorf("percentage applied without MPS: %d", ctx.SMPercent())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenContextMIGUUID(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 2)
	env.Spawn("worker", func(p *devent.Proc) {
		dev := n.Device(1)
		if err := dev.EnableMIG(p); err != nil {
			t.Error(err)
			return
		}
		in, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		ctx, err := n.OpenContext(p, "fn", map[string]string{EnvVisibleDevices: in.UUID()})
		if err != nil {
			t.Error(err)
			return
		}
		// Context allocates from the instance pool, not device pool.
		if _, err := ctx.Alloc("w", 20*simgpu.GB); err != nil {
			t.Error(err)
		}
		if in.Mem().Used() == 0 {
			t.Error("allocation did not land in instance pool")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenContextErrors(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 1)
	env.Spawn("worker", func(p *devent.Proc) {
		if _, err := n.OpenContext(p, "fn", nil); !errors.Is(err, ErrNoDevice) {
			t.Errorf("empty env: %v", err)
		}
		if _, err := n.OpenContext(p, "fn", map[string]string{EnvVisibleDevices: "7"}); !errors.Is(err, ErrNoDevice) {
			t.Errorf("bad index: %v", err)
		}
		if _, err := n.OpenContext(p, "fn", map[string]string{EnvVisibleDevices: "MIG-phantom"}); !errors.Is(err, ErrNoDevice) {
			t.Errorf("phantom MIG: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResolveGPUUUID(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 2)
	_, dev, err := n.Resolve(Ref{Kind: RefGPUUUID, UUID: "GPU-gpu1"})
	if err != nil || dev != n.Device(1) {
		t.Fatalf("resolve: %v %v", dev, err)
	}
}

func TestMPSDefaultPercentAppliesAtOpen(t *testing.T) {
	env := devent.NewEnv()
	n := newTestNode(t, env, 1)
	env.Spawn("worker", func(p *devent.Proc) {
		d, _ := n.StartMPS(p, 0)
		d.SetDefaultActiveThreadPercentage(25)
		ctx, err := n.OpenContext(p, "fn", map[string]string{EnvVisibleDevices: "0"})
		if err != nil {
			t.Error(err)
			return
		}
		if ctx.SMPercent() != 25 {
			t.Errorf("SMPercent = %d", ctx.SMPercent())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAMDBindingEnviron(t *testing.T) {
	env := AMDBinding{Accelerator: "0", CUs: 26}.Environ()
	if env[EnvROCRVisibleDevices] != "0" || env[EnvHSACUMask] != "0:0-25" {
		t.Fatalf("env = %v", env)
	}
	env = AMDBinding{Accelerator: "1"}.Environ()
	if _, ok := env[EnvHSACUMask]; ok {
		t.Fatal("unmasked binding exported a CU mask")
	}
}

func TestCUsFromEnv(t *testing.T) {
	cases := map[string]int{
		"0:0-25":  26,
		"0:0-0":   1,
		"garbage": 0,
		"0:5-2":   0,
		"0:a-b":   0,
		"":        0,
	}
	for mask, want := range cases {
		env := map[string]string{}
		if mask != "" {
			env[EnvHSACUMask] = mask
		}
		if got := CUsFromEnv(env); got != want {
			t.Errorf("CUsFromEnv(%q) = %d, want %d", mask, got, want)
		}
	}
}

func TestAMDPercentToCUs(t *testing.T) {
	spec := simgpu.MI210()
	if got := AMDPercentToCUs(spec, 25); got != 26 { // ceil(0.25×104)
		t.Fatalf("25%% = %d CUs", got)
	}
	if AMDPercentToCUs(spec, 0) != 0 || AMDPercentToCUs(spec, 100) != 0 {
		t.Fatal("unbounded percentages should yield no mask")
	}
}

func TestOpenAMDContext(t *testing.T) {
	env := devent.NewEnv()
	mi, err := simgpu.NewDevice(env, "mi0", simgpu.MI210())
	if err != nil {
		t.Fatal(err)
	}
	if err := ConfigureAMD(mi); err != nil {
		t.Fatal(err)
	}
	if mi.Policy() != simgpu.PolicySpatial {
		t.Fatal("AMD default should be spatial")
	}
	n := NewNode(env, mi)
	env.Spawn("worker", func(p *devent.Proc) {
		cus := AMDPercentToCUs(mi.Spec(), 25)
		b := AMDBinding{Accelerator: "0", CUs: cus}
		ctx, err := n.OpenAMDContext(p, "fn", b.Environ())
		if err != nil {
			t.Error(err)
			return
		}
		if ctx.SMPercent() != 25 {
			t.Errorf("SMPercent = %d", ctx.SMPercent())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAMDContextErrors(t *testing.T) {
	env := devent.NewEnv()
	n := NewNode(env)
	env.Spawn("worker", func(p *devent.Proc) {
		if _, err := n.OpenAMDContext(p, "fn", nil); !errors.Is(err, ErrNoDevice) {
			t.Errorf("empty env: %v", err)
		}
		if _, err := n.OpenAMDContext(p, "fn", map[string]string{EnvROCRVisibleDevices: "3"}); !errors.Is(err, ErrNoDevice) {
			t.Errorf("bad index: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
