package gpuctl

import (
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

// MPSDaemon models nvidia-cuda-mps-control for one device. While the
// daemon runs, client kernels from different processes execute
// concurrently (spatial sharing); without it the device time-shares.
// The paper's executor must ensure the daemon is "launched in the
// compute node before any function with GPU code runs" (§4.1).
type MPSDaemon struct {
	dev        *simgpu.Device
	running    bool
	defaultPct int
}

// StartMPS starts the control daemon on dev, switching it to spatial
// sharing. It fails with simgpu.ErrBusy if client contexts already
// exist (the daemon must precede its clients) and with ErrMIGMode if
// the device is in MIG mode (MPS-in-MIG is not modelled; the paper
// uses them as alternatives).
func StartMPS(p *devent.Proc, dev *simgpu.Device) (*MPSDaemon, error) {
	if dev.MIGEnabled() {
		return nil, simgpu.ErrMIGMode
	}
	if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
		return nil, err
	}
	if p != nil {
		p.Sleep(100 * time.Millisecond) // daemon startup
	}
	return &MPSDaemon{dev: dev, running: true}, nil
}

// Running reports whether the daemon is active.
func (m *MPSDaemon) Running() bool { return m.running }

// Device returns the device the daemon controls.
func (m *MPSDaemon) Device() *simgpu.Device { return m.dev }

// DefaultActiveThreadPercentage returns the daemon-wide default cap
// (0 = none).
func (m *MPSDaemon) DefaultActiveThreadPercentage() int { return m.defaultPct }

// SetDefaultActiveThreadPercentage sets the daemon-wide default cap
// applied to clients whose environment specifies none (the
// set_default_active_thread_percentage control command). It affects
// only clients created afterwards, as on real hardware.
func (m *MPSDaemon) SetDefaultActiveThreadPercentage(pct int) error {
	if !m.running {
		return ErrMPSNotRunning
	}
	if pct < 0 || pct > 100 {
		return fmt.Errorf("gpuctl: percentage %d out of range", pct)
	}
	m.defaultPct = pct
	return nil
}

// ClientPercent resolves the effective SM cap for a client with the
// given environment: explicit env beats the daemon default.
func (m *MPSDaemon) ClientPercent(env map[string]string) int {
	if pct := PercentFromEnv(env); pct > 0 {
		return pct
	}
	return m.defaultPct
}

// Quit stops the daemon, returning the device to time-sharing. All
// client contexts must be gone first (echo quit refuses while clients
// hold the GPU in a way that matters here).
func (m *MPSDaemon) Quit() error {
	if !m.running {
		return ErrMPSNotRunning
	}
	if err := m.dev.SetPolicy(simgpu.PolicyTimeShare); err != nil {
		return err
	}
	m.running = false
	return nil
}
