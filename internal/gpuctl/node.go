package gpuctl

import (
	"errors"
	"fmt"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

// Node is one compute node's accelerator inventory: the devices, their
// MPS daemons, and the client-process bring-up path that turns an
// environment (CUDA_VISIBLE_DEVICES + MPS percentage) into a live GPU
// context.
type Node struct {
	env     *devent.Env
	devices []*simgpu.Device
	mps     map[*simgpu.Device]*MPSDaemon
}

// NewNode creates a node owning the given devices.
func NewNode(env *devent.Env, devices ...*simgpu.Device) *Node {
	return &Node{env: env, devices: devices, mps: make(map[*simgpu.Device]*MPSDaemon)}
}

// Env returns the simulation environment.
func (n *Node) Env() *devent.Env { return n.env }

// Devices returns the node's devices in index order.
func (n *Node) Devices() []*simgpu.Device {
	return append([]*simgpu.Device(nil), n.devices...)
}

// Device returns device i, or nil when out of range.
func (n *Node) Device(i int) *simgpu.Device {
	if i < 0 || i >= len(n.devices) {
		return nil
	}
	return n.devices[i]
}

// StartMPS starts the MPS control daemon on device i (idempotent).
func (n *Node) StartMPS(p *devent.Proc, i int) (*MPSDaemon, error) {
	dev := n.Device(i)
	if dev == nil {
		return nil, fmt.Errorf("%w: index %d", ErrNoDevice, i)
	}
	if d, ok := n.mps[dev]; ok && d.Running() {
		return d, nil
	}
	d, err := StartMPS(p, dev)
	if err != nil {
		return nil, err
	}
	n.mps[dev] = d
	return d, nil
}

// MPS returns the daemon for device i (nil if never started).
func (n *Node) MPS(i int) *MPSDaemon {
	dev := n.Device(i)
	if dev == nil {
		return nil
	}
	return n.mps[dev]
}

// Target is anything a context can be created on: a whole device or a
// MIG instance.
type Target interface {
	// NewContext creates a client context, paying initialization cost.
	NewContext(p *devent.Proc, opts simgpu.ContextOpts) (*simgpu.Context, error)
}

// Resolve maps one accelerator reference to its target. MIG UUIDs are
// searched across all devices; plain indices and GPU UUIDs resolve to
// whole devices.
func (n *Node) Resolve(ref Ref) (Target, *simgpu.Device, error) {
	switch ref.Kind {
	case RefIndex:
		dev := n.Device(ref.Index)
		if dev == nil {
			return nil, nil, fmt.Errorf("%w: index %d", ErrNoDevice, ref.Index)
		}
		return dev, dev, nil
	case RefGPUUUID:
		for _, dev := range n.devices {
			if "GPU-"+dev.Name() == ref.UUID {
				return dev, dev, nil
			}
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDevice, ref.UUID)
	case RefMIGUUID:
		for _, dev := range n.devices {
			if in := dev.InstanceByUUID(ref.UUID); in != nil {
				return in, dev, nil
			}
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDevice, ref.UUID)
	}
	return nil, nil, errors.New("gpuctl: unknown reference kind")
}

// OpenContext performs client-process GPU bring-up from an
// environment, exactly as the CUDA runtime would inside a freshly
// started worker: take the first entry of CUDA_VISIBLE_DEVICES,
// resolve it (device or MIG instance), determine the MPS percentage
// (environment first, then daemon default, only when a daemon runs on
// a whole device), and create the context, paying initialization time.
func (n *Node) OpenContext(p *devent.Proc, name string, env map[string]string) (*simgpu.Context, error) {
	refs := ParseVisibleDevices(env[EnvVisibleDevices])
	if len(refs) == 0 {
		return nil, ErrNoDevice
	}
	target, dev, err := n.Resolve(refs[0])
	if err != nil {
		return nil, err
	}
	opts := simgpu.ContextOpts{Name: name}
	if _, isWholeDevice := target.(*simgpu.Device); isWholeDevice {
		if daemon := n.mps[dev]; daemon != nil && daemon.Running() {
			opts.SMPercent = daemon.ClientPercent(env)
		}
		// Without MPS the percentage env var is inert, as on real
		// hardware: time-sharing ignores it.
	}
	return target.NewContext(p, opts)
}
