// Package harness fans independent simulation scenarios out across
// CPU cores while keeping results deterministic.
//
// Every devent.Env is logically single-threaded and fully
// deterministic, but scenarios — one Env each — are independent, so a
// figure grid or a right-sizing sweep can run its cells concurrently.
// The harness preserves determinism by construction: parallelism is
// strictly across Envs, never within one, and results are always
// delivered in input order. A report produced at any parallelism level
// is byte-identical to the sequential one.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the process-wide worker cap used when a call does not
// specify its own. Guarded by an atomic so tests and the CLI flag can
// set it while runs are in flight elsewhere.
var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.NumCPU())) }

// SetParallelism caps the number of concurrently running scenarios per
// Map/Render call. n < 1 resets to runtime.NumCPU(). It returns the
// previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism reports the current worker cap.
func Parallelism() int { return int(parallelism.Load()) }

// Map runs fn(0..n-1) across at most Parallelism() workers and returns
// the results in index order. All tasks run to completion even when
// one fails, so the reported error is deterministic: the lowest-index
// failure, exactly what a sequential loop would surface. A panicking
// task is converted to an error rather than tearing down the process
// from a worker goroutine.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = call(fn, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = call(fn, i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func call[T any](fn func(i int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Section is one independently renderable piece of a report.
type Section struct {
	// Name labels the section in error messages.
	Name string
	// Render writes the section. It must not touch w outside its own
	// buffer — the harness hands it a private one.
	Render func(w io.Writer) error
}

// Render renders the sections concurrently, each into its own buffer,
// then writes the buffers to w in argument order. Output is therefore
// byte-identical to calling each Render sequentially against w.
func Render(w io.Writer, sections ...Section) error {
	bufs, err := Map(len(sections), func(i int) (*bytes.Buffer, error) {
		var b bytes.Buffer
		if err := sections[i].Render(&b); err != nil {
			return nil, fmt.Errorf("%s: %w", sections[i].Name, err)
		}
		return &b, nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
