package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func withParallelism(t *testing.T, n int) {
	t.Helper()
	prev := SetParallelism(n)
	t.Cleanup(func() { SetParallelism(prev) })
}

func TestMapPreservesOrder(t *testing.T) {
	withParallelism(t, 8)
	out, err := Map(100, func(i int) (int, error) {
		// Finish out of order on purpose.
		time.Sleep(time.Duration(100-i) * 10 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmptyAndSequential(t *testing.T) {
	if out, err := Map(0, func(int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("empty map: %v %v", out, err)
	}
	withParallelism(t, 1)
	out, err := Map(3, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("sequential map: %v %v", out, err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	withParallelism(t, 4)
	e2 := errors.New("task 2")
	e7 := errors.New("task 7")
	_, err := Map(10, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, e2
		case 7:
			return 0, e7
		}
		return i, nil
	})
	if !errors.Is(err, e2) {
		t.Fatalf("err = %v, want task 2's error", err)
	}
}

func TestMapRecoversPanics(t *testing.T) {
	withParallelism(t, 4)
	_, err := Map(4, func(i int) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestSetParallelismFloorsAtNumCPU(t *testing.T) {
	prev := SetParallelism(-3)
	defer SetParallelism(prev)
	if Parallelism() < 1 {
		t.Fatalf("parallelism = %d", Parallelism())
	}
}

func TestRenderIsOrderedAndByteIdentical(t *testing.T) {
	sections := make([]Section, 16)
	for i := range sections {
		i := i
		sections[i] = Section{
			Name: fmt.Sprintf("s%d", i),
			Render: func(w io.Writer) error {
				time.Sleep(time.Duration(16-i) * 10 * time.Microsecond)
				_, err := fmt.Fprintf(w, "section %d\n", i)
				return err
			},
		}
	}
	render := func(n int) string {
		withParallelism(t, n)
		var b bytes.Buffer
		if err := Render(&b, sections...); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	for _, n := range []int{2, 8} {
		if par := render(n); par != seq {
			t.Fatalf("parallel(%d) output differs:\n%q\nvs\n%q", n, par, seq)
		}
	}
}

func TestRenderWrapsErrorWithSectionName(t *testing.T) {
	withParallelism(t, 2)
	boom := errors.New("bad section")
	err := Render(io.Discard,
		Section{Name: "good", Render: func(w io.Writer) error { return nil }},
		Section{Name: "fig99", Render: func(w io.Writer) error { return boom }},
	)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("err = %v", err)
	}
}

// TestNestedMapDoesNotDeadlock exercises the report.All shape: an
// outer Render whose sections each run their own inner Map.
func TestNestedMapDoesNotDeadlock(t *testing.T) {
	withParallelism(t, 2)
	var b bytes.Buffer
	sections := make([]Section, 4)
	for i := range sections {
		i := i
		sections[i] = Section{Name: fmt.Sprintf("outer%d", i), Render: func(w io.Writer) error {
			inner, err := Map(4, func(j int) (int, error) { return i*10 + j, nil })
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, inner)
			return err
		}}
	}
	done := make(chan error, 1)
	go func() { done <- Render(&b, sections...) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}
