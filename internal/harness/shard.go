package harness

// Range is a half-open contiguous index interval [Start, End).
type Range struct {
	Start, End int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Start }

// Chunks partitions [0, n) into at most k contiguous near-equal
// ranges. The first n%k ranges hold one extra index, so sizes differ
// by at most one and the partition depends only on (n, k) — never on
// scheduling — which is what keeps sharded runs deterministic. Fewer
// than k ranges are returned when n < k (no empty shards), and n <= 0
// yields nil.
func Chunks(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]Range, k)
	size, extra := n/k, n%k
	start := 0
	for i := range out {
		end := start + size
		if i < extra {
			end++
		}
		out[i] = Range{Start: start, End: end}
		start = end
	}
	return out
}

// ShardMap partitions n items into at most `shards` contiguous ranges
// with Chunks and runs fn once per shard through Map, so shards
// execute under the global Parallelism cap while results come back in
// shard order. Like Map, every shard runs to completion and the
// lowest-shard error wins. Each shard owns a disjoint index range, so
// shard functions can build fully independent state (a platform
// instance per shard) without coordination.
func ShardMap[T any](n, shards int, fn func(shard int, r Range) (T, error)) ([]T, error) {
	ranges := Chunks(n, shards)
	return Map(len(ranges), func(i int) (T, error) {
		return fn(i, ranges[i])
	})
}
