package harness

import (
	"fmt"
	"reflect"
	"testing"
)

func TestChunksCoverAndBalance(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 4}, {-3, 2}, {1, 1}, {1, 8}, {7, 3}, {10, 3}, {16, 4},
		{100, 7}, {1000000, 13}, {5, 0},
	} {
		got := Chunks(tc.n, tc.k)
		if tc.n <= 0 {
			if got != nil {
				t.Fatalf("Chunks(%d,%d) = %v, want nil", tc.n, tc.k, got)
			}
			continue
		}
		wantLen := tc.k
		if wantLen < 1 {
			wantLen = 1
		}
		if wantLen > tc.n {
			wantLen = tc.n
		}
		if len(got) != wantLen {
			t.Fatalf("Chunks(%d,%d): %d ranges, want %d", tc.n, tc.k, len(got), wantLen)
		}
		next, min, max := 0, tc.n, 0
		for _, r := range got {
			if r.Start != next {
				t.Fatalf("Chunks(%d,%d): gap at %d (range %+v)", tc.n, tc.k, next, r)
			}
			if r.Len() <= 0 {
				t.Fatalf("Chunks(%d,%d): empty range %+v", tc.n, tc.k, r)
			}
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
			next = r.End
		}
		if next != tc.n {
			t.Fatalf("Chunks(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.k, next, tc.n)
		}
		if max-min > 1 {
			t.Fatalf("Chunks(%d,%d): unbalanced sizes (min %d, max %d)", tc.n, tc.k, min, max)
		}
	}
}

func TestChunksDeterministic(t *testing.T) {
	a := Chunks(12345, 11)
	b := Chunks(12345, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Chunks not deterministic for identical inputs")
	}
}

// TestShardMapParallelismInvariant locks the tentpole contract: the
// same sharded computation yields identical shard results at any
// worker count.
func TestShardMapParallelismInvariant(t *testing.T) {
	const n, shards = 1000, 8
	run := func() []string {
		out, err := ShardMap(n, shards, func(shard int, r Range) (string, error) {
			sum := 0
			for i := r.Start; i < r.End; i++ {
				sum += i * i
			}
			return fmt.Sprintf("shard%d[%d:%d]=%d", shard, r.Start, r.End, sum), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	defer SetParallelism(SetParallelism(1))
	seq := run()
	SetParallelism(4)
	par := run()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("shard results differ across parallelism:\nseq: %v\npar: %v", seq, par)
	}
	if len(seq) != shards {
		t.Fatalf("want %d shards, got %d", shards, len(seq))
	}
}

func TestShardMapLowestShardErrorWins(t *testing.T) {
	_, err := ShardMap(100, 10, func(shard int, r Range) (int, error) {
		if shard >= 3 {
			return 0, fmt.Errorf("shard %d failed", shard)
		}
		return r.Len(), nil
	})
	if err == nil || err.Error() != "shard 3 failed" {
		t.Fatalf("want lowest-shard error, got %v", err)
	}
}
