// Package llm simulates large-language-model inference services (the
// paper's LLaMa-2 workload, §3.2) on simgpu devices.
//
// # Calibration
//
// The engine reduces a transformer decode step to one macro-kernel per
// model shard with three calibrated properties, chosen to reproduce
// the paper's measurements (see EXPERIMENTS.md for the trace back to
// each figure):
//
//   - TokenComputeTime: kernel compute duration once the decode's
//     limited parallelism is saturated. Fig. 2 reports ~4.5 s for a
//     20-token completion of LLaMa-2-7B (fp32, PyTorch eager) on a
//     full A100 — 225 ms per token, of which we attribute 180 ms to
//     GPU compute and 45 ms to the host-side gap below.
//   - SaturationSMs: the decode kernels' parallelism bound; Fig. 2
//     shows latency flat beyond ≈20 SMs, so batch-1 decode can use
//     only ~20 SMs (MaxSMs = 20).
//   - TokenMemFraction: the fraction of TokenComputeTime the kernel's
//     memory traffic takes at full-device bandwidth (weight streaming
//     plus cache pressure). This term produces the bandwidth
//     *quantization* that separates MPS from MIG at 3 and 4 processes:
//     MIG instances hold 2/8 or 1/8 of device bandwidth while MPS
//     clients share the full pool (1/3, 1/4 each) — exactly the
//     orderings in Figs. 4–5.
//   - HostGapPerToken: CPU-side sampling/tokenization time between
//     token kernels, during which the GPU is idle. This is why even
//     plain time-sharing beats a single process in Fig. 4.
package llm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// ErrNotLoaded is returned when inference is attempted before Load.
var ErrNotLoaded = errors.New("llm: model not loaded")

// Config describes one LLM service instance.
type Config struct {
	// Spec is the transformer architecture.
	Spec models.TransformerSpec
	// BytesPerParam is weight precision (2 = fp16, 4 = fp32).
	BytesPerParam int
	// WeightBytesOverride, when non-zero, replaces the computed weight
	// footprint (e.g. int8 deployments squeezed into 1g.10gb MIG
	// instances).
	WeightBytesOverride int64
	// WorkspaceBytes is the per-instance activation/KV workspace.
	WorkspaceBytes int64
	// TokenComputeTime is decode compute time per token at saturation
	// for the whole model (summed across shards).
	TokenComputeTime time.Duration
	// SaturationSMs is the decode parallelism bound per shard.
	SaturationSMs int
	// TokenMemFraction sets per-token memory traffic: the kernel's
	// Bytes take TokenMemFraction × TokenComputeTime at full device
	// bandwidth.
	TokenMemFraction float64
	// HostGapPerToken is CPU time between token kernels.
	HostGapPerToken time.Duration
	// PrefillPerTokenFLOPsFrac scales prompt processing: prefill
	// parallelizes across tokens, so its per-token compute is cheap
	// relative to decode. Expressed as a fraction of decode per-token
	// compute with unbounded parallelism.
	PrefillPerTokenFLOPsFrac float64
	// CPUTokenTime is the CPU-only baseline per generated token.
	CPUTokenTime time.Duration
	// BatchSize is the number of sequences decoded together per step
	// (0 or 1 = unbatched). Batching multiplies per-step compute and
	// parallelism while streaming the weights once — the classic
	// in-process alternative to multiplexing, used by the
	// batching-vs-multiplexing ablation.
	BatchSize int
}

// Batch returns the effective batch size (≥1).
func (c Config) Batch() int {
	if c.BatchSize < 1 {
		return 1
	}
	return c.BatchSize
}

// LLaMa27B returns the calibrated 7-billion-parameter service config:
// 225 ms/token (4.5 s per 20-token completion) on a full A100, 180 s
// on CPU (the paper's 40× gap), saturating at 20 SMs.
func LLaMa27B() Config {
	return Config{
		Spec:                     models.LLaMa27B(),
		BytesPerParam:            2,
		WorkspaceBytes:           4 * simgpu.GB,
		TokenComputeTime:         180 * time.Millisecond,
		SaturationSMs:            20,
		TokenMemFraction:         0.4,
		HostGapPerToken:          45 * time.Millisecond,
		PrefillPerTokenFLOPsFrac: 0.05,
		CPUTokenTime:             9 * time.Second,
	}
}

// LLaMa213B returns the calibrated 13-billion-parameter config: twice
// the 7B cost (paper: 360 s CPU, ~9 s GPU per completion), usually
// sharded across two A100s.
func LLaMa213B() Config {
	c := LLaMa27B()
	c.Spec = models.LLaMa213B()
	c.TokenComputeTime = 360 * time.Millisecond
	c.HostGapPerToken = 90 * time.Millisecond
	c.CPUTokenTime = 18 * time.Second
	return c
}

// WeightBytes returns the model's weight footprint.
func (c Config) WeightBytes() int64 {
	if c.WeightBytesOverride > 0 {
		return c.WeightBytesOverride
	}
	bpp := c.BytesPerParam
	if bpp <= 0 {
		bpp = 2
	}
	return c.Spec.WeightBytes(bpp)
}

// FootprintBytes returns the per-instance device memory requirement.
func (c Config) FootprintBytes() int64 { return c.WeightBytes() + c.WorkspaceBytes }

// Engine is one loaded model service (one "function process" in FaaS
// terms). Weights may be sharded across several contexts for
// multi-GPU models (13B over two A100s in Fig. 2).
type Engine struct {
	cfg      Config
	shards   []*simgpu.Context
	weights  []*simgpu.Segment
	work     []*simgpu.Segment
	loaded   bool
	loadTime time.Duration
}

// New creates an unloaded engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Loaded reports whether weights are resident.
func (e *Engine) Loaded() bool { return e.loaded }

// Resident reports whether the engine is loaded AND every weight
// shard still lives on a healthy context. A GPU context loss (ECC
// error) destroys shards out from under a warm engine; callers
// keeping engines in worker state should treat a non-resident engine
// as cold and reload it.
func (e *Engine) Resident() bool {
	if !e.loaded {
		return false
	}
	for _, s := range e.shards {
		if s.Destroyed() {
			return false
		}
	}
	return true
}

// LoadTime reports how long the last Load took.
func (e *Engine) LoadTime() time.Duration { return e.loadTime }

// Load allocates and transfers model weights and workspace onto the
// given contexts (one shard per context), blocking the proc for the
// end-to-end load (storage → host → device, DeviceSpec.HostLoadBW).
// This is the dominant cold-start component the paper measures at up
// to 10 s for LLaMa-2-13B (§6).
func (e *Engine) Load(p *devent.Proc, shards []*simgpu.Context, hostLoadBW float64) error {
	if len(shards) == 0 {
		return errors.New("llm: no shards")
	}
	start := p.Now()
	n := int64(len(shards))
	wBytes := e.cfg.WeightBytes() / n
	wkBytes := e.cfg.WorkspaceBytes / n
	var segs, work []*simgpu.Segment
	rollback := func() {
		for _, s := range append(segs, work...) {
			s.Release()
		}
	}
	for i, ctx := range shards {
		seg, err := ctx.Alloc(fmt.Sprintf("%s-weights-%d", e.cfg.Spec.Name, i), wBytes)
		if err != nil {
			rollback()
			return err
		}
		segs = append(segs, seg)
		wk, err := ctx.Alloc(fmt.Sprintf("%s-workspace-%d", e.cfg.Spec.Name, i), wkBytes)
		if err != nil {
			rollback()
			return err
		}
		work = append(work, wk)
		// Weight shards stream sequentially through host storage.
		ctx.TransferTagged(p, wBytes, hostLoadBW, "weights")
	}
	e.shards = shards
	e.weights = segs
	e.work = work
	e.loaded = true
	e.loadTime = p.Now() - start
	return nil
}

// AttachCached marks the engine loaded using pre-resident shared
// weight segments (the future-work weight cache, §7): only workspace
// is allocated and no transfer happens.
func (e *Engine) AttachCached(p *devent.Proc, shards []*simgpu.Context, cached []*simgpu.Segment) error {
	if len(shards) == 0 || len(cached) != len(shards) {
		return errors.New("llm: shard/cache mismatch")
	}
	start := p.Now()
	var work []*simgpu.Segment
	for i, ctx := range shards {
		wk, err := ctx.Alloc(fmt.Sprintf("%s-workspace-%d", e.cfg.Spec.Name, i), e.cfg.WorkspaceBytes/int64(len(shards)))
		if err != nil {
			for _, s := range work {
				s.Release()
			}
			return err
		}
		work = append(work, wk)
		ctx.Attach(cached[i])
	}
	e.shards = shards
	e.weights = nil // not owned
	e.work = work
	e.loaded = true
	e.loadTime = p.Now() - start
	return nil
}

// tokenKernel builds the per-shard decode macro-kernel. With batching
// the step's compute and usable parallelism scale with the batch while
// the weight traffic does not — one weight stream serves B sequences.
func (e *Engine) tokenKernel(shard int) simgpu.Kernel {
	dev := shardSpec(e.shards[shard])
	n := float64(len(e.shards))
	b := e.cfg.Batch()
	computeSec := e.cfg.TokenComputeTime.Seconds() / n * float64(b)
	sat := e.cfg.SaturationSMs
	if sat <= 0 {
		sat = 20
	}
	maxSMs := sat * b
	flops := computeSec / float64(b) * float64(sat) * dev.PerSMFLOPS * float64(b)
	memSec := e.cfg.TokenMemFraction * e.cfg.TokenComputeTime.Seconds() / n
	bytes := memSec * dev.MemBW
	return simgpu.Kernel{
		Name:   fmt.Sprintf("%s/decode-%d", e.cfg.Spec.Name, shard),
		FLOPs:  flops,
		Bytes:  bytes,
		MaxSMs: maxSMs,
		Tag:    "decode",
	}
}

// prefillKernel builds the per-shard prompt-processing kernel.
func (e *Engine) prefillKernel(shard, promptTokens int) simgpu.Kernel {
	dev := shardSpec(e.shards[shard])
	n := float64(len(e.shards))
	perTok := e.cfg.TokenComputeTime.Seconds() / n * e.cfg.PrefillPerTokenFLOPsFrac
	sat := e.cfg.SaturationSMs
	if sat <= 0 {
		sat = 20
	}
	flops := float64(promptTokens) * perTok * float64(sat) * dev.PerSMFLOPS
	return simgpu.Kernel{
		Name:   fmt.Sprintf("%s/prefill-%d", e.cfg.Spec.Name, shard),
		FLOPs:  flops,
		MaxSMs: 0, // prompt tokens parallelize across the device
		Tag:    "prefill",
	}
}

// Completion is the result of one text completion.
type Completion struct {
	PromptTokens int
	OutputTokens int
	Latency      time.Duration
	Start        time.Duration
	End          time.Duration
}

// Complete runs one text completion: prefill, then OutputTokens decode
// steps, each a GPU kernel per shard (pipelined shard-by-shard)
// followed by the host gap. With BatchSize > 1 each step still costs a
// full batched step (empty slots are not free); use CompleteBatch to
// fill all slots.
func (e *Engine) Complete(p *devent.Proc, promptTokens, outputTokens int) (Completion, error) {
	if !e.loaded {
		return Completion{}, ErrNotLoaded
	}
	start := p.Now()
	for s := range e.shards {
		if _, err := e.shards[s].Run(p, e.prefillKernel(s, promptTokens)); err != nil {
			return Completion{}, err
		}
	}
	for t := 0; t < outputTokens; t++ {
		for s := range e.shards {
			if _, err := e.shards[s].Run(p, e.tokenKernel(s)); err != nil {
				return Completion{}, err
			}
		}
		p.Sleep(e.cfg.HostGapPerToken)
	}
	end := p.Now()
	return Completion{
		PromptTokens: promptTokens,
		OutputTokens: outputTokens,
		Latency:      end - start,
		Start:        start,
		End:          end,
	}, nil
}

// CompleteBatch decodes Config.BatchSize sequences together: one
// prefill per sequence slot, then OutputTokens batched decode steps.
// All batch members share start and end times (continuous batching is
// out of scope). It returns one Completion per sequence.
func (e *Engine) CompleteBatch(p *devent.Proc, promptTokens, outputTokens int) ([]Completion, error) {
	if !e.loaded {
		return nil, ErrNotLoaded
	}
	b := e.cfg.Batch()
	start := p.Now()
	for s := range e.shards {
		if _, err := e.shards[s].Run(p, e.prefillKernel(s, promptTokens*b)); err != nil {
			return nil, err
		}
	}
	for t := 0; t < outputTokens; t++ {
		for s := range e.shards {
			if _, err := e.shards[s].Run(p, e.tokenKernel(s)); err != nil {
				return nil, err
			}
		}
		p.Sleep(e.cfg.HostGapPerToken)
	}
	end := p.Now()
	out := make([]Completion, b)
	for i := range out {
		out[i] = Completion{
			PromptTokens: promptTokens,
			OutputTokens: outputTokens,
			Latency:      end - start,
			Start:        start,
			End:          end,
		}
	}
	return out, nil
}

// ServeResult summarizes a batch of completions by one engine.
type ServeResult struct {
	Completions int
	Latencies   metrics.Durations
	Makespan    time.Duration
}

// Serve runs n completions back to back, as the paper's "complete a
// paragraph of text 100 times" workload does per process.
func (e *Engine) Serve(p *devent.Proc, n, promptTokens, outputTokens int) (*ServeResult, error) {
	res := &ServeResult{Completions: n}
	start := p.Now()
	for i := 0; i < n; i++ {
		c, err := e.Complete(p, promptTokens, outputTokens)
		if err != nil {
			return nil, err
		}
		res.Latencies.Add(c.Latency)
	}
	res.Makespan = p.Now() - start
	return res, nil
}

// Unload releases weights and workspace (process shutdown without
// context destruction).
func (e *Engine) Unload() {
	for _, s := range append(e.weights, e.work...) {
		s.Release()
	}
	e.weights, e.work = nil, nil
	e.loaded = false
}

// CPUCompletionTime returns the CPU-only baseline latency for a
// completion (paper: 180 s for 7B, 360 s for 13B at 20 tokens).
func (c Config) CPUCompletionTime(outputTokens int) time.Duration {
	return time.Duration(outputTokens) * c.CPUTokenTime
}

// shardSpec digs the device spec out of a context. Contexts do not
// expose their device directly, so the engine carries what it needs:
// we reconstruct bandwidth and per-SM throughput from the context's
// domain at kernel build time.
func shardSpec(ctx *simgpu.Context) specView { return ctx.SpecView() }

// specView is the subset of DeviceSpec the engine needs per shard.
type specView = simgpu.SpecView
