package llm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

func a100(t *testing.T, env *devent.Env, name string) *simgpu.Device {
	t.Helper()
	d, err := simgpu.NewDevice(env, name, simgpu.A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runEnv(t *testing.T, env *devent.Env) {
	t.Helper()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func between(t *testing.T, name string, got, lo, hi time.Duration) {
	t.Helper()
	if got < lo || got > hi {
		t.Fatalf("%s = %v, want in [%v, %v]", name, got, lo, hi)
	}
}

func TestSoloCompletionMatchesPaperLatency(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(LLaMa27B())
		if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		c, err := e.Complete(p, 20, 20)
		if err != nil {
			t.Error(err)
			return
		}
		// Paper Fig. 2: ≈4.5 s for a 20-token completion on a full
		// A100 (plus our small prefill).
		between(t, "completion latency", c.Latency, 4400*time.Millisecond, 4800*time.Millisecond)
	})
	runEnv(t, env)
}

func TestCPUBaselineIs40xSlower(t *testing.T) {
	cfg := LLaMa27B()
	cpu := cfg.CPUCompletionTime(20)
	if cpu != 180*time.Second {
		t.Fatalf("7B CPU = %v", cpu)
	}
	if got := LLaMa213B().CPUCompletionTime(20); got != 360*time.Second {
		t.Fatalf("13B CPU = %v", got)
	}
	// GPU ≈ 4.5 s → ratio ≈ 40×.
	ratio := cpu.Seconds() / 4.5
	if ratio < 35 || ratio > 45 {
		t.Fatalf("CPU/GPU ratio = %.1f", ratio)
	}
}

// Fig. 2's shape: latency falls steeply up to ~20 SMs, then is flat.
func TestSMSweepSaturatesAtTwenty(t *testing.T) {
	latency := func(pct int) time.Duration {
		env := devent.NewEnv()
		dev := a100(t, env, "gpu0")
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			t.Fatal(err)
		}
		var lat time.Duration
		env.Spawn("svc", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: pct})
			e := New(LLaMa27B())
			if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
				t.Error(err)
				return
			}
			c, err := e.Complete(p, 20, 20)
			if err != nil {
				t.Error(err)
				return
			}
			lat = c.Latency
		})
		runEnv(t, env)
		return lat
	}
	l6 := latency(6)   // ≈7 SMs
	l13 := latency(13) // ≈15 SMs
	l19 := latency(19) // ≈21 SMs
	l50 := latency(50) // 54 SMs
	l100 := latency(0) // whole device
	if !(l6 > l13 && l13 > l19) {
		t.Fatalf("no speedup below knee: %v %v %v", l6, l13, l19)
	}
	if l6 < 2*l100 {
		t.Fatalf("starved latency %v should be ≥2× full %v", l6, l100)
	}
	// Flat after the knee: within 5%.
	if diff := float64(l19-l50) / float64(l50); diff > 0.05 || diff < -0.05 {
		t.Fatalf("l19=%v l50=%v not flat", l19, l50)
	}
	if diff := float64(l50-l100) / float64(l100); diff > 0.05 || diff < -0.05 {
		t.Fatalf("l50=%v l100=%v not flat", l50, l100)
	}
}

// Fig. 4's memory constraint: four 7B instances fit an 80 GB A100,
// a fifth does not.
func TestOnlyFourInstancesFit(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	dev.SetPolicy(simgpu.PolicySpatial)
	env.Spawn("loader", func(p *devent.Proc) {
		for i := 0; i < 4; i++ {
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
			e := New(LLaMa27B())
			if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
				t.Errorf("instance %d: %v", i, err)
				return
			}
		}
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(LLaMa27B())
		if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); !errors.Is(err, simgpu.ErrOOM) {
			t.Errorf("fifth instance: %v", err)
		}
	})
	runEnv(t, env)
}

func TestLoadTimeMatchesColdStartClaims(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		// 13B at fp32 (the paper's Fig. 2 precision): 52 GB at 5 GB/s
		// ≈ 10.4 s — the paper's "up to 10 seconds" (§6).
		cfg := LLaMa213B()
		cfg.BytesPerParam = 4
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(cfg)
		if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			// 52 GB does not fit one 80 GB device alongside workspace?
			// It does: 52+4 = 56 < 80.
			t.Error(err)
			return
		}
		between(t, "13B fp32 load", e.LoadTime(), 10*time.Second, 11*time.Second)
	})
	runEnv(t, env)
}

func TestThirteenBTwoGPUSharding(t *testing.T) {
	env := devent.NewEnv()
	dev0 := a100(t, env, "gpu0")
	dev1 := a100(t, env, "gpu1")
	env.Spawn("svc", func(p *devent.Proc) {
		c0, _ := dev0.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		c1, _ := dev1.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(LLaMa213B())
		if err := e.Load(p, []*simgpu.Context{c0, c1}, dev0.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		// Weights split across both devices.
		if dev0.Mem().Used() == 0 || dev1.Mem().Used() == 0 {
			t.Error("weights not sharded")
		}
		c, err := e.Complete(p, 20, 20)
		if err != nil {
			t.Error(err)
			return
		}
		// 13B ≈ 2× the 7B latency: (360+90) ms × 20 ≈ 9 s.
		between(t, "13B completion", c.Latency, 8800*time.Millisecond, 9600*time.Millisecond)
	})
	runEnv(t, env)
}

// The MPS multi-tenant slowdown comes from bandwidth contention, not
// SM starvation: four 25% clients each still exceed the 20-SM knee.
func TestFourWayMPSContention(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	dev.SetPolicy(simgpu.PolicySpatial)
	results := make([]*ServeResult, 4)
	for i := 0; i < 4; i++ {
		i := i
		env.Spawn("svc", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: 25})
			e := New(LLaMa27B())
			if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
				t.Error(err)
				return
			}
			r, err := e.Serve(p, 5, 20, 20)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		})
	}
	runEnv(t, env)
	for i, r := range results {
		if r == nil {
			t.Fatalf("service %d missing", i)
		}
		// Per-token ≈ max(180 compute, 288 contended mem) + 45 gap ≈
		// 333 ms ⇒ completion ≈ 6.7 s (some loads are staggered, so
		// allow early completions to run faster).
		mean := r.Latencies.Mean()
		between(t, "contended completion", mean, 5500*time.Millisecond, 7300*time.Millisecond)
	}
}

func TestAttachCachedSkipsLoad(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		cfg := LLaMa27B()
		seg, err := dev.Mem().AllocShared("cached-weights", cfg.WeightBytes())
		if err != nil {
			t.Error(err)
			return
		}
		seg.Pin()
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(cfg)
		before := p.Now()
		if err := e.AttachCached(p, []*simgpu.Context{ctx}, []*simgpu.Segment{seg}); err != nil {
			t.Error(err)
			return
		}
		if got := p.Now() - before; got != 0 {
			t.Errorf("cached attach took %v", got)
		}
		if !e.Loaded() {
			t.Error("engine not loaded after attach")
		}
		if _, err := e.Complete(p, 4, 4); err != nil {
			t.Error(err)
		}
	})
	runEnv(t, env)
}

func TestCompleteBeforeLoadFails(t *testing.T) {
	env := devent.NewEnv()
	a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		e := New(LLaMa27B())
		if _, err := e.Complete(p, 4, 4); !errors.Is(err, ErrNotLoaded) {
			t.Errorf("err = %v", err)
		}
	})
	runEnv(t, env)
}

func TestUnloadFreesMemory(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(LLaMa27B())
		if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		if dev.Mem().Used() == 0 {
			t.Error("nothing allocated")
		}
		e.Unload()
		if dev.Mem().Used() != 0 {
			t.Errorf("leak: %d bytes", dev.Mem().Used())
		}
		if e.Loaded() {
			t.Error("still loaded")
		}
	})
	runEnv(t, env)
}

func TestLoadRollsBackOnOOM(t *testing.T) {
	env := devent.NewEnv()
	dev := a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		cfg := LLaMa27B()
		cfg.WeightBytesOverride = 79 * simgpu.GB // weights fit, workspace won't
		e := New(cfg)
		if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); !errors.Is(err, simgpu.ErrOOM) {
			t.Errorf("err = %v", err)
			return
		}
		if dev.Mem().Used() != 0 {
			t.Errorf("partial allocation leaked: %d", dev.Mem().Used())
		}
	})
	runEnv(t, env)
}

func TestWeightOverrideAndFootprint(t *testing.T) {
	cfg := LLaMa27B()
	// fp16 7B ≈ 13.5 GB.
	if w := cfg.WeightBytes(); w < 13*simgpu.GB || w > 14*simgpu.GB {
		t.Fatalf("weights = %d", w)
	}
	cfg.WeightBytesOverride = 7 * simgpu.GB
	if cfg.WeightBytes() != 7*simgpu.GB {
		t.Fatal("override ignored")
	}
	if cfg.FootprintBytes() != 7*simgpu.GB+cfg.WorkspaceBytes {
		t.Fatal("footprint math")
	}
}

func TestBatchedDecodeAmortizesWeights(t *testing.T) {
	throughput := func(batch int) float64 {
		env := devent.NewEnv()
		dev := a100(t, env, "gpu0")
		var tput float64
		env.Spawn("svc", func(p *devent.Proc) {
			cfg := LLaMa27B()
			cfg.BatchSize = batch
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
			e := New(cfg)
			if err := e.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
				t.Error(err)
				return
			}
			start := p.Now()
			done := 0
			for done < 8 {
				cs, err := e.CompleteBatch(p, 20, 20)
				if err != nil {
					t.Error(err)
					return
				}
				done += len(cs)
			}
			tput = 8 / (p.Now() - start).Seconds()
		})
		runEnv(t, env)
		return tput
	}
	t1 := throughput(1)
	t4 := throughput(4)
	// One weight stream serves the whole batch: near-linear scaling.
	if t4 < 3*t1 {
		t.Fatalf("batch-4 throughput %.3f not ≥3× batch-1 %.3f", t4, t1)
	}
}

func TestCompleteBatchRequiresLoad(t *testing.T) {
	env := devent.NewEnv()
	a100(t, env, "gpu0")
	env.Spawn("svc", func(p *devent.Proc) {
		cfg := LLaMa27B()
		cfg.BatchSize = 2
		if _, err := New(cfg).CompleteBatch(p, 4, 4); !errors.Is(err, ErrNotLoaded) {
			t.Errorf("err = %v", err)
		}
	})
	runEnv(t, env)
}

func TestConfigBatchDefault(t *testing.T) {
	if (Config{}).Batch() != 1 || (Config{BatchSize: 3}).Batch() != 3 {
		t.Fatal("Batch() defaults wrong")
	}
}
