// Package metrics provides small statistics helpers used across the
// simulator: online summary statistics, duration samples with
// percentiles, fixed-bucket histograms, throughput computation, and
// step time-series for utilization accounting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates online count/mean/variance (Welford) plus min
// and max. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records a new observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 for no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for none).
func (s *Summary) Max() float64 { return s.max }

// Sum returns n*mean.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance returns the sample variance (n-1 denominator).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// CoV returns the coefficient of variation (stddev/mean), or 0 when
// the mean is 0. Used as the paper-style isolation metric: low CoV
// under a noisy neighbour means good performance isolation.
func (s *Summary) CoV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Stddev() / s.mean
}

// Durations collects time.Duration samples and answers percentile
// queries. The zero value is ready to use.
type Durations struct {
	samples []time.Duration
	sorted  bool
}

// Add records a sample.
func (d *Durations) Add(v time.Duration) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the sample count.
func (d *Durations) N() int { return len(d.samples) }

// Mean returns the mean duration (0 for no samples).
func (d *Durations) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	return sum / time.Duration(len(d.samples))
}

// Min returns the smallest sample (0 for none).
func (d *Durations) Min() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample (0 for none).
func (d *Durations) Max() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted samples.
func (d *Durations) Percentile(p float64) time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	return d.samples[rank-1]
}

// Summary converts the samples to a float64 Summary in seconds.
func (d *Durations) Summary() *Summary {
	s := &Summary{}
	for _, v := range d.samples {
		s.Add(v.Seconds())
	}
	return s
}

// Samples returns a copy of the recorded samples in insertion order is
// not preserved once percentile queries have run; callers needing
// order should keep their own slice.
func (d *Durations) Samples() []time.Duration {
	return append([]time.Duration(nil), d.samples...)
}

func (d *Durations) ensureSorted() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Throughput returns completed items per second over a makespan; 0 for
// a non-positive makespan.
func Throughput(items int, makespan time.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(items) / makespan.Seconds()
}

// Histogram is a fixed-width bucket histogram over [lo, hi); samples
// outside the range land in under/overflow buckets.
type Histogram struct {
	lo, hi    float64
	buckets   []int
	under     int
	over      int
	n         int
	bucketW   float64
	totalOnly bool
}

// NewHistogram creates a histogram with n equal buckets spanning
// [lo, hi). It panics on invalid arguments: histograms are always
// constructed from code, not input.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n), bucketW: (hi - lo) / float64(n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.bucketW)
		if i >= len(h.buckets) { // float edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// N returns the total sample count.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int { return h.under }

// Overflow returns the count of samples >= hi.
func (h *Histogram) Overflow() int { return h.over }

// String renders a compact ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	max := 1
	for _, c := range h.buckets {
		if c > max {
			max = c
		}
	}
	for i, c := range h.buckets {
		lo := h.lo + float64(i)*h.bucketW
		bar := strings.Repeat("#", c*40/max)
		fmt.Fprintf(&b, "[%10.3f, %10.3f) %6d %s\n", lo, lo+h.bucketW, c, bar)
	}
	return b.String()
}

// StepSeries is a piecewise-constant time series: value v holds from
// each sample's time until the next. Used for GPU busy-SM accounting.
type StepSeries struct {
	times  []time.Duration
	values []float64
}

// Set records that the series takes value v from time t onward.
// Times must be nondecreasing; a sample at an existing last time
// overwrites it.
func (s *StepSeries) Set(t time.Duration, v float64) {
	if n := len(s.times); n > 0 {
		if t < s.times[n-1] {
			panic("metrics: StepSeries times must be nondecreasing")
		}
		if t == s.times[n-1] {
			s.values[n-1] = v
			return
		}
		if s.values[n-1] == v {
			return // no change; keep series minimal
		}
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// At returns the series value at time t (0 before the first sample).
func (s *StepSeries) At(t time.Duration) float64 {
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t })
	if i == 0 {
		return 0
	}
	return s.values[i-1]
}

// Integral returns the time integral of the series over [from, to] in
// value·seconds.
func (s *StepSeries) Integral(from, to time.Duration) float64 {
	if to <= from || len(s.times) == 0 {
		return 0
	}
	var total float64
	for i := range s.times {
		segStart := s.times[i]
		segEnd := to
		if i+1 < len(s.times) {
			segEnd = s.times[i+1]
		}
		a, b := segStart, segEnd
		if a < from {
			a = from
		}
		if b > to {
			b = to
		}
		if b > a {
			total += s.values[i] * (b - a).Seconds()
		}
	}
	return total
}

// Mean returns the time-weighted mean over [from, to].
func (s *StepSeries) Mean(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return s.Integral(from, to) / (to - from).Seconds()
}

// Len returns the number of recorded steps.
func (s *StepSeries) Len() int { return len(s.times) }

// Step returns the i-th (time, value) step.
func (s *StepSeries) Step(i int) (time.Duration, float64) { return s.times[i], s.values[i] }
