package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-9) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-9) {
		t.Fatalf("var = %v", s.Variance())
	}
	if !almostEq(s.Sum(), 40, 1e-9) {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.CoV() != 0 {
		t.Fatal("empty summary should be all zero")
	}
	s.Add(3)
	if s.Variance() != 0 || s.Stddev() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single sample min/max")
	}
}

func TestSummaryCoV(t *testing.T) {
	var s Summary
	s.Add(10)
	s.Add(10)
	if s.CoV() != 0 {
		t.Fatalf("CoV of constant = %v", s.CoV())
	}
	var z Summary
	z.Add(-1)
	z.Add(1)
	if z.CoV() != 0 { // mean 0 guard
		t.Fatalf("CoV with zero mean = %v", z.CoV())
	}
}

func TestDurationsPercentiles(t *testing.T) {
	var d Durations
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if got := d.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(95); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v", got)
	}
	if got := d.Percentile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := d.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if d.Min() != time.Millisecond || d.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
}

func TestDurationsEmpty(t *testing.T) {
	var d Durations
	if d.Mean() != 0 || d.Percentile(50) != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty durations should be all zero")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, 50*time.Second); got != 2 {
		t.Fatalf("throughput = %v", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Fatalf("throughput with zero makespan = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 25} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 2
		t.Fatalf("bucket1 = %d", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 9.9
		t.Fatalf("bucket4 = %d", h.Bucket(4))
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestStepSeries(t *testing.T) {
	var s StepSeries
	s.Set(0, 0)
	s.Set(2*time.Second, 10)
	s.Set(4*time.Second, 5)
	if got := s.At(1 * time.Second); got != 0 {
		t.Fatalf("At(1s) = %v", got)
	}
	if got := s.At(2 * time.Second); got != 10 {
		t.Fatalf("At(2s) = %v", got)
	}
	if got := s.At(3 * time.Second); got != 10 {
		t.Fatalf("At(3s) = %v", got)
	}
	if got := s.At(100 * time.Second); got != 5 {
		t.Fatalf("At(100s) = %v", got)
	}
	// Integral over [0,6]: 0*2 + 10*2 + 5*2 = 30
	if got := s.Integral(0, 6*time.Second); !almostEq(got, 30, 1e-9) {
		t.Fatalf("integral = %v", got)
	}
	if got := s.Mean(0, 6*time.Second); !almostEq(got, 5, 1e-9) {
		t.Fatalf("mean = %v", got)
	}
	// Partial window [1,3]: 0*1 + 10*1 = 10
	if got := s.Integral(time.Second, 3*time.Second); !almostEq(got, 10, 1e-9) {
		t.Fatalf("partial integral = %v", got)
	}
}

func TestStepSeriesOverwriteAndDedup(t *testing.T) {
	var s StepSeries
	s.Set(time.Second, 1)
	s.Set(time.Second, 2) // overwrite same timestamp
	if s.Len() != 1 || s.At(time.Second) != 2 {
		t.Fatalf("overwrite failed: len=%d", s.Len())
	}
	s.Set(2*time.Second, 2) // same value: no new step
	if s.Len() != 1 {
		t.Fatalf("dedup failed: len=%d", s.Len())
	}
}

func TestStepSeriesBackwardsPanics(t *testing.T) {
	var s StepSeries
	s.Set(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Set(time.Second, 2)
}

// Property: Welford mean matches naive mean; min/max bound all samples.
func TestQuickSummaryMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		naive := sum / float64(len(xs))
		scale := math.Max(1, math.Abs(naive))
		if !almostEq(s.Mean(), naive, 1e-6*scale) {
			return false
		}
		for _, x := range xs {
			if x < s.Min() || x > s.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var d Durations
		for _, r := range raw {
			d.Add(time.Duration(r))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := d.Percentile(p)
			if v < prev || v < d.Min() || v > d.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples across buckets and overflow.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 13)
		for _, r := range raw {
			h.Add(float64(r))
		}
		total := h.Underflow() + h.Overflow()
		for i := 0; i < h.NumBuckets(); i++ {
			total += h.Bucket(i)
		}
		return total == h.N() && h.N() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
