package models

import "testing"

// BenchmarkBuildResNet50 measures model construction + shape
// inference.
func BenchmarkBuildResNet50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ResNet50().TotalParams() == 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkLowerResNet50 measures kernel-stream lowering.
func BenchmarkLowerResNet50(b *testing.B) {
	m := ResNet50()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Lower(m, LowerOpts{Batch: 8, FuseElementwise: true})) == 0 {
			b.Fatal("empty stream")
		}
	}
}

// BenchmarkConvProfile measures the Fig.-1 profile extraction.
func BenchmarkConvProfile(b *testing.B) {
	m := ResNet101()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.ConvProfile()) != 104 {
			b.Fatal("wrong profile")
		}
	}
}
