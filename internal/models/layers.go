// Package models provides analytic descriptions of the paper's
// workloads: ImageNet CNNs (per-layer FLOP profiles behind Fig. 1),
// LLaMa-2 transformer specs (§3.2), and the small MLP emulator used by
// the molecular-design campaign (§3.1). Models lower to simgpu kernel
// streams for execution on the simulated GPU.
//
// FLOP counts follow the common convention of 2 FLOPs per
// multiply-accumulate; parameter counts match the torchvision /
// Meta-published numbers and are asserted in tests.
package models

import "fmt"

// Tensor is a CHW activation shape.
type Tensor struct {
	C, H, W int
}

// Elems returns C*H*W.
func (t Tensor) Elems() int64 { return int64(t.C) * int64(t.H) * int64(t.W) }

// String formats the shape as CxHxW.
func (t Tensor) String() string { return fmt.Sprintf("%dx%dx%d", t.C, t.H, t.W) }

// Layer is one network layer with analytically computable cost.
type Layer interface {
	// Name returns the layer's unique name within its model.
	Name() string
	// Kind returns the layer type ("conv", "linear", ...).
	Kind() string
	// OutShape infers the output shape from the input shape.
	OutShape(in Tensor) Tensor
	// FLOPs returns forward-pass floating-point operations for one
	// sample with the given input shape (2 FLOPs per MAC).
	FLOPs(in Tensor) float64
	// Params returns the number of learnable parameters.
	Params(in Tensor) int64
}

func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Conv2D is a (possibly grouped) 2-D convolution.
type Conv2D struct {
	LayerName string
	OutC      int
	K         int // kernel size (square)
	Stride    int
	Pad       int
	Groups    int
	Bias      bool
}

// Name implements Layer.
func (c Conv2D) Name() string { return c.LayerName }

// Kind implements Layer.
func (c Conv2D) Kind() string { return "conv" }

// OutShape implements Layer.
func (c Conv2D) OutShape(in Tensor) Tensor {
	return Tensor{C: c.OutC, H: convOut(in.H, c.K, c.Stride, c.Pad), W: convOut(in.W, c.K, c.Stride, c.Pad)}
}

// FLOPs implements Layer: 2 × K² × Cin/groups × Cout × Hout × Wout,
// plus the bias add.
func (c Conv2D) FLOPs(in Tensor) float64 {
	out := c.OutShape(in)
	g := c.groups()
	macs := float64(c.K*c.K) * float64(in.C/g) * float64(out.Elems())
	fl := 2 * macs
	if c.Bias {
		fl += float64(out.Elems())
	}
	return fl
}

// Params implements Layer.
func (c Conv2D) Params(in Tensor) int64 {
	g := c.groups()
	p := int64(c.K*c.K) * int64(in.C/g) * int64(c.OutC)
	if c.Bias {
		p += int64(c.OutC)
	}
	return p
}

func (c Conv2D) groups() int {
	if c.Groups <= 0 {
		return 1
	}
	return c.Groups
}

// Linear is a fully connected layer; the input is flattened.
type Linear struct {
	LayerName string
	Out       int
	Bias      bool
}

// Name implements Layer.
func (l Linear) Name() string { return l.LayerName }

// Kind implements Layer.
func (l Linear) Kind() string { return "linear" }

// OutShape implements Layer.
func (l Linear) OutShape(in Tensor) Tensor { return Tensor{C: l.Out, H: 1, W: 1} }

// FLOPs implements Layer.
func (l Linear) FLOPs(in Tensor) float64 {
	fl := 2 * float64(in.Elems()) * float64(l.Out)
	if l.Bias {
		fl += float64(l.Out)
	}
	return fl
}

// Params implements Layer.
func (l Linear) Params(in Tensor) int64 {
	p := in.Elems() * int64(l.Out)
	if l.Bias {
		p += int64(l.Out)
	}
	return p
}

// Pool is max or average pooling.
type Pool struct {
	LayerName string
	K         int
	Stride    int
	Pad       int
}

// Name implements Layer.
func (p Pool) Name() string { return p.LayerName }

// Kind implements Layer.
func (p Pool) Kind() string { return "pool" }

// OutShape implements Layer.
func (p Pool) OutShape(in Tensor) Tensor {
	return Tensor{C: in.C, H: convOut(in.H, p.K, p.Stride, p.Pad), W: convOut(in.W, p.K, p.Stride, p.Pad)}
}

// FLOPs implements Layer: one op per window element per output.
func (p Pool) FLOPs(in Tensor) float64 {
	return float64(p.OutShape(in).Elems()) * float64(p.K*p.K)
}

// Params implements Layer.
func (p Pool) Params(Tensor) int64 { return 0 }

// AdaptivePool pools to a fixed output spatial size.
type AdaptivePool struct {
	LayerName string
	OutH      int
	OutW      int
}

// Name implements Layer.
func (p AdaptivePool) Name() string { return p.LayerName }

// Kind implements Layer.
func (p AdaptivePool) Kind() string { return "pool" }

// OutShape implements Layer.
func (p AdaptivePool) OutShape(in Tensor) Tensor { return Tensor{C: in.C, H: p.OutH, W: p.OutW} }

// FLOPs implements Layer: roughly one op per input element.
func (p AdaptivePool) FLOPs(in Tensor) float64 { return float64(in.Elems()) }

// Params implements Layer.
func (p AdaptivePool) Params(Tensor) int64 { return 0 }

// BatchNorm is 2-D batch normalization (inference form).
type BatchNorm struct {
	LayerName string
}

// Name implements Layer.
func (b BatchNorm) Name() string { return b.LayerName }

// Kind implements Layer.
func (b BatchNorm) Kind() string { return "bn" }

// OutShape implements Layer.
func (b BatchNorm) OutShape(in Tensor) Tensor { return in }

// FLOPs implements Layer: scale and shift per element.
func (b BatchNorm) FLOPs(in Tensor) float64 { return 2 * float64(in.Elems()) }

// Params implements Layer: weight and bias per channel.
func (b BatchNorm) Params(in Tensor) int64 { return 2 * int64(in.C) }

// Activation is an elementwise nonlinearity.
type Activation struct {
	LayerName string
}

// Name implements Layer.
func (a Activation) Name() string { return a.LayerName }

// Kind implements Layer.
func (a Activation) Kind() string { return "act" }

// OutShape implements Layer.
func (a Activation) OutShape(in Tensor) Tensor { return in }

// FLOPs implements Layer.
func (a Activation) FLOPs(in Tensor) float64 { return float64(in.Elems()) }

// Params implements Layer.
func (a Activation) Params(Tensor) int64 { return 0 }

// Add is an elementwise residual addition.
type Add struct {
	LayerName string
}

// Name implements Layer.
func (a Add) Name() string { return a.LayerName }

// Kind implements Layer.
func (a Add) Kind() string { return "add" }

// OutShape implements Layer.
func (a Add) OutShape(in Tensor) Tensor { return in }

// FLOPs implements Layer.
func (a Add) FLOPs(in Tensor) float64 { return float64(in.Elems()) }

// Params implements Layer.
func (a Add) Params(Tensor) int64 { return 0 }
