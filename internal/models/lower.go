package models

import (
	"math"
	"time"

	"repro/internal/simgpu"
)

// LowerOpts controls how a Model becomes a simgpu kernel stream.
type LowerOpts struct {
	// Batch is the number of samples processed together.
	Batch int
	// BytesPerElt is activation/weight element size (4 for fp32).
	BytesPerElt int
	// LaunchOverhead is the fixed per-kernel cost (framework + driver);
	// defaults to 10 µs, the right order for PyTorch eager mode.
	LaunchOverhead time.Duration
	// ThreadsPerSM approximates how much parallel work keeps one SM
	// busy, used to derive each kernel's MaxSMs from its output size;
	// defaults to 2048.
	ThreadsPerSM int
	// Tag labels the kernels (e.g. "infer", "train").
	Tag string
	// TrainScale multiplies FLOPs/bytes (3 for a training step); 0
	// means 1 (inference).
	TrainScale float64
	// FuseElementwise folds activation/bn/add layers into the
	// preceding compute kernel instead of emitting separate kernels.
	FuseElementwise bool
}

func (o LowerOpts) withDefaults() LowerOpts {
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.BytesPerElt <= 0 {
		o.BytesPerElt = 4
	}
	if o.LaunchOverhead == 0 {
		o.LaunchOverhead = 10 * time.Microsecond
	}
	if o.ThreadsPerSM <= 0 {
		o.ThreadsPerSM = 2048
	}
	if o.TrainScale <= 0 {
		o.TrainScale = 1
	}
	return o
}

// Lower converts the model's layers into an in-order kernel stream for
// one forward pass (or training step when TrainScale > 1). Each
// layer's parallelism bound comes from its output volume: a layer
// with few output elements cannot fill the device — the mechanism
// behind Fig. 1's "compute requirement changes rapidly" observation
// mattering for partitioning.
func Lower(m *Model, opts LowerOpts) []simgpu.Kernel {
	o := opts.withDefaults()
	var ks []simgpu.Kernel
	for _, p := range m.Layers {
		elementwise := p.Layer.Kind() == "act" || p.Layer.Kind() == "bn" || p.Layer.Kind() == "add"
		flops := p.Layer.FLOPs(p.In) * float64(o.Batch) * o.TrainScale
		bytes := layerBytes(p, o)
		if elementwise && o.FuseElementwise && len(ks) > 0 {
			ks[len(ks)-1].FLOPs += flops
			continue
		}
		work := float64(o.Batch) * float64(p.Out.Elems())
		maxSMs := int(math.Ceil(work / float64(o.ThreadsPerSM)))
		if maxSMs < 1 {
			maxSMs = 1
		}
		ks = append(ks, simgpu.Kernel{
			Name:     m.Name + "/" + p.Layer.Name(),
			FLOPs:    flops,
			Bytes:    bytes,
			MaxSMs:   maxSMs,
			Overhead: o.LaunchOverhead,
			Tag:      o.Tag,
		})
	}
	return ks
}

// layerBytes estimates memory traffic: read input and weights, write
// output, scaled by batch (weights read once per kernel).
func layerBytes(p Placed, o LowerOpts) float64 {
	acts := float64(p.In.Elems()+p.Out.Elems()) * float64(o.Batch)
	weights := float64(p.Layer.Params(p.In))
	return (acts + weights) * float64(o.BytesPerElt) * o.TrainScale
}

// TotalFLOPs sums the stream's FLOPs (sanity checks and tests).
func TotalFLOPs(ks []simgpu.Kernel) float64 {
	var t float64
	for _, k := range ks {
		t += k.FLOPs
	}
	return t
}
