package models

import "fmt"

// MLP describes the small fully connected emulator network the
// molecular-design campaign trains to predict ionization potentials.
type MLP struct {
	Name   string
	In     int
	Hidden []int
	Out    int
}

// MolDesignEmulator returns the campaign's default emulator: a
// fingerprint-input regression MLP.
func MolDesignEmulator() MLP {
	return MLP{Name: "ip-emulator", In: 512, Hidden: []int{1024, 512, 256}, Out: 1}
}

// Model lowers the MLP to a Model (linear + activation stack).
func (m MLP) Model() *Model {
	b := NewBuilder(m.Name, Tensor{C: m.In, H: 1, W: 1})
	for i, h := range m.Hidden {
		b.Add(Linear{LayerName: fmt.Sprintf("fc%d", i), Out: h, Bias: true})
		b.Add(Activation{LayerName: fmt.Sprintf("relu%d", i)})
	}
	b.Add(Linear{LayerName: "head", Out: m.Out, Bias: true})
	return b.Build()
}

// Params returns the learnable parameter count.
func (m MLP) Params() int64 { return m.Model().TotalParams() }

// ForwardFLOPsPerSample returns inference FLOPs for one sample.
func (m MLP) ForwardFLOPsPerSample() float64 { return m.Model().PerSampleFLOPs() }

// TrainFLOPsPerSample returns training FLOPs for one sample using the
// standard ≈3× forward rule (forward + input grads + weight grads).
func (m MLP) TrainFLOPsPerSample() float64 { return 3 * m.ForwardFLOPsPerSample() }
