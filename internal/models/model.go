package models

// Placed is a layer with its inferred input and output shapes.
type Placed struct {
	Layer Layer
	In    Tensor
	Out   Tensor
}

// Model is a network as an ordered list of placed layers. Residual
// side branches are placed with explicit input shapes, so the list is
// a faithful per-layer cost profile even for non-sequential graphs.
type Model struct {
	Name   string
	Input  Tensor
	Layers []Placed
}

// PerSampleFLOPs returns forward FLOPs for one input sample.
func (m *Model) PerSampleFLOPs() float64 {
	var total float64
	for _, p := range m.Layers {
		total += p.Layer.FLOPs(p.In)
	}
	return total
}

// TotalParams returns the learnable parameter count.
func (m *Model) TotalParams() int64 {
	var total int64
	for _, p := range m.Layers {
		total += p.Layer.Params(p.In)
	}
	return total
}

// WeightBytes returns parameter memory at the given element size.
func (m *Model) WeightBytes(bytesPerParam int) int64 {
	return m.TotalParams() * int64(bytesPerParam)
}

// LayersOfKind returns the placed layers whose Kind matches.
func (m *Model) LayersOfKind(kind string) []Placed {
	var out []Placed
	for _, p := range m.Layers {
		if p.Layer.Kind() == kind {
			out = append(out, p)
		}
	}
	return out
}

// LayerFLOPs is one point of a per-layer cost profile (Fig. 1).
type LayerFLOPs struct {
	Index  int
	Name   string
	GFLOPs float64
}

// ConvProfile returns per-convolution-layer GFLOPs for one sample —
// the series plotted in the paper's Fig. 1.
func (m *Model) ConvProfile() []LayerFLOPs {
	var out []LayerFLOPs
	for _, p := range m.LayersOfKind("conv") {
		out = append(out, LayerFLOPs{
			Index:  len(out) + 1,
			Name:   p.Layer.Name(),
			GFLOPs: p.Layer.FLOPs(p.In) / 1e9,
		})
	}
	return out
}

// Builder assembles a Model by shape inference.
type Builder struct {
	m   *Model
	cur Tensor
}

// NewBuilder starts a model with the given input shape.
func NewBuilder(name string, input Tensor) *Builder {
	return &Builder{m: &Model{Name: name, Input: input}, cur: input}
}

// Add places a layer on the main trunk and advances the current shape.
func (b *Builder) Add(l Layer) *Builder {
	out := l.OutShape(b.cur)
	b.m.Layers = append(b.m.Layers, Placed{Layer: l, In: b.cur, Out: out})
	b.cur = out
	return b
}

// AddAt places a layer with an explicit input shape (side branches);
// the trunk's current shape is unchanged. It returns the branch
// output shape.
func (b *Builder) AddAt(l Layer, in Tensor) Tensor {
	out := l.OutShape(in)
	b.m.Layers = append(b.m.Layers, Placed{Layer: l, In: in, Out: out})
	return out
}

// Shape returns the current trunk shape.
func (b *Builder) Shape() Tensor { return b.cur }

// Build finalizes and returns the model.
func (b *Builder) Build() *Model { return b.m }
