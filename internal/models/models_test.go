package models

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Published parameter counts (torchvision, Meta) — exact matches
// validate the architecture definitions.
func TestParameterCountsMatchPublished(t *testing.T) {
	cases := []struct {
		model *Model
		want  int64
	}{
		{AlexNet(), 61_100_840},
		{VGG16(), 138_357_544},
		{ResNet50(), 25_557_032},
		{ResNet101(), 44_549_160},
		{ResNet152(), 60_192_808},
		{SqueezeNet(), 1_235_496},
	}
	for _, c := range cases {
		if got := c.model.TotalParams(); got != c.want {
			t.Errorf("%s params = %d, want %d", c.model.Name, got, c.want)
		}
	}
}

// Published forward GFLOPs at 224×224 (2 FLOPs per MAC): widely
// reported values with a few-percent tolerance (elementwise ops are
// counted slightly differently across tools).
func TestForwardGFLOPsMatchPublished(t *testing.T) {
	cases := []struct {
		model *Model
		want  float64 // GFLOPs
		tol   float64
	}{
		{AlexNet(), 1.43, 0.05},
		{VGG16(), 30.96, 0.03},
		{ResNet50(), 8.21, 0.05},
		{ResNet101(), 15.65, 0.05},
		{SqueezeNet(), 0.70, 0.10},
	}
	for _, c := range cases {
		got := c.model.PerSampleFLOPs() / 1e9
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s GFLOPs = %.3f, want %.3f ± %.0f%%", c.model.Name, got, c.want, c.tol*100)
		}
	}
}

func TestConvShapeInference(t *testing.T) {
	c := Conv2D{LayerName: "c", OutC: 64, K: 7, Stride: 2, Pad: 3}
	out := c.OutShape(Tensor{C: 3, H: 224, W: 224})
	if out != (Tensor{C: 64, H: 112, W: 112}) {
		t.Fatalf("out = %v", out)
	}
}

func TestResNetShapesEndAtOneByOne(t *testing.T) {
	m := ResNet50()
	last := m.Layers[len(m.Layers)-1]
	if last.Layer.Kind() != "linear" || last.In != (Tensor{C: 2048, H: 1, W: 1}) {
		t.Fatalf("final layer in-shape = %v", last.In)
	}
}

// Fig. 1's point: per-layer compute varies rapidly. Check the profile
// has large dynamic range and non-monotone structure.
func TestConvProfileVariability(t *testing.T) {
	for _, m := range []*Model{ResNet50(), ResNet101(), VGG16()} {
		prof := m.ConvProfile()
		if len(prof) < 10 {
			t.Fatalf("%s: only %d conv layers", m.Name, len(prof))
		}
		min, max := prof[0].GFLOPs, prof[0].GFLOPs
		changes := 0
		for i := 1; i < len(prof); i++ {
			if prof[i].GFLOPs < min {
				min = prof[i].GFLOPs
			}
			if prof[i].GFLOPs > max {
				max = prof[i].GFLOPs
			}
			if prof[i].GFLOPs != prof[i-1].GFLOPs {
				changes++
			}
		}
		if max/min < 3 {
			t.Errorf("%s: dynamic range %.1fx too flat", m.Name, max/min)
		}
		if changes < len(prof)/3 {
			t.Errorf("%s: profile too constant (%d changes over %d layers)", m.Name, changes, len(prof))
		}
	}
}

func TestResNetConvLayerCounts(t *testing.T) {
	// ResNet-50 has 53 convolutions (1 stem + 3×16 bottleneck convs +
	// 4 downsample); ResNet-101 has 104.
	if got := len(ResNet50().ConvProfile()); got != 53 {
		t.Errorf("resnet50 convs = %d", got)
	}
	if got := len(ResNet101().ConvProfile()); got != 104 {
		t.Errorf("resnet101 convs = %d", got)
	}
}

func TestTransformerParams(t *testing.T) {
	cases := []struct {
		spec TransformerSpec
		want float64 // billions, published
		tol  float64
	}{
		{LLaMa27B(), 6.74, 0.01},
		{LLaMa213B(), 13.02, 0.01},
		{LLaMa270B(), 68.98, 0.01},
	}
	for _, c := range cases {
		got := float64(c.spec.Params()) / 1e9
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s params = %.3fB, want %.2fB", c.spec.Name, got, c.want)
		}
	}
}

func TestTransformerMemoryFigures(t *testing.T) {
	s := LLaMa27B()
	// fp16 weights ≈ 13.5 GB; fp32 ≈ 27 GB.
	fp16 := float64(s.WeightBytes(2)) / 1e9
	if fp16 < 13 || fp16 > 14.5 {
		t.Errorf("7B fp16 weights = %.1f GB", fp16)
	}
	// KV cache per token: 32 layers × 2 × 4096 × 2 bytes = 512 KiB.
	if got := s.KVCacheBytesPerToken(2); got != 32*2*4096*2 {
		t.Errorf("KV bytes/token = %d", got)
	}
	// GQA shrinks the 70B KV cache.
	if LLaMa270B().KVCacheBytesPerToken(2) >= LLaMa213B().KVCacheBytesPerToken(2)*4 {
		t.Error("GQA should bound the 70B KV cache")
	}
}

func TestDecodeFLOPsDominatedByWeights(t *testing.T) {
	s := LLaMa27B()
	perTok := s.DecodeFLOPsPerToken(512)
	if perTok < 2*float64(s.Params()) {
		t.Fatalf("decode FLOPs %.3e below 2·params", perTok)
	}
	if perTok > 2.2*float64(s.Params()) {
		t.Fatalf("attention term too large: %.3e", perTok)
	}
	// Prefill scales with prompt length.
	if s.PrefillFLOPs(100) != 100*2*float64(s.Params()) {
		t.Fatal("prefill scaling")
	}
}

func TestMLPCosts(t *testing.T) {
	m := MLP{Name: "toy", In: 10, Hidden: []int{20}, Out: 1}
	// Params: 10*20+20 + 20*1+1 = 241.
	if got := m.Params(); got != 241 {
		t.Fatalf("params = %d", got)
	}
	fwd := m.ForwardFLOPsPerSample()
	// 2*10*20+20 + 2*20*1+1 + relu 20 = 420+41+20 = 481.
	if math.Abs(fwd-481) > 0.5 {
		t.Fatalf("fwd FLOPs = %v", fwd)
	}
	if m.TrainFLOPsPerSample() != 3*fwd {
		t.Fatal("train rule")
	}
	if MolDesignEmulator().Params() < 100_000 {
		t.Fatal("emulator suspiciously small")
	}
}

func TestLowerProducesKernelPerComputeLayer(t *testing.T) {
	m := ResNet50()
	ks := Lower(m, LowerOpts{Batch: 1, Tag: "infer", FuseElementwise: true})
	// With fusion, kernels = conv + pool + linear layers.
	want := len(m.LayersOfKind("conv")) + len(m.LayersOfKind("pool")) + len(m.LayersOfKind("linear"))
	if len(ks) != want {
		t.Fatalf("kernels = %d, want %d", len(ks), want)
	}
	for _, k := range ks {
		if k.MaxSMs < 1 {
			t.Fatalf("kernel %s MaxSMs = %d", k.Name, k.MaxSMs)
		}
		if k.Tag != "infer" {
			t.Fatalf("kernel %s tag = %q", k.Name, k.Tag)
		}
	}
}

func TestLowerFLOPsConserved(t *testing.T) {
	m := ResNet50()
	want := m.PerSampleFLOPs()
	got := TotalFLOPs(Lower(m, LowerOpts{Batch: 1, FuseElementwise: true}))
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("lowered FLOPs %.6e != model FLOPs %.6e", got, want)
	}
	// Batch scales linearly.
	got8 := TotalFLOPs(Lower(m, LowerOpts{Batch: 8, FuseElementwise: true}))
	if math.Abs(got8-8*want)/want > 1e-9 {
		t.Fatalf("batch-8 FLOPs %.6e", got8)
	}
}

func TestLowerTrainScale(t *testing.T) {
	m := MolDesignEmulator().Model()
	inf := TotalFLOPs(Lower(m, LowerOpts{Batch: 4}))
	trn := TotalFLOPs(Lower(m, LowerOpts{Batch: 4, TrainScale: 3}))
	if math.Abs(trn-3*inf)/inf > 1e-9 {
		t.Fatalf("train = %.3e, want 3×%.3e", trn, inf)
	}
}

func TestLowerMaxSMsGrowsWithBatch(t *testing.T) {
	m := MolDesignEmulator().Model()
	k1 := Lower(m, LowerOpts{Batch: 1})[0]
	k64 := Lower(m, LowerOpts{Batch: 64})[0]
	if k64.MaxSMs <= k1.MaxSMs {
		t.Fatalf("MaxSMs batch1=%d batch64=%d", k1.MaxSMs, k64.MaxSMs)
	}
}

// Property: conv FLOPs scale exactly with output channels and
// quadratically with kernel size.
func TestQuickConvFLOPsScaling(t *testing.T) {
	f := func(outCRaw, kRaw uint8) bool {
		outC := int(outCRaw%64) + 1
		k := int(kRaw%5) + 1
		in := Tensor{C: 16, H: 32, W: 32}
		base := Conv2D{LayerName: "c", OutC: outC, K: k, Stride: 1, Pad: k / 2}
		doubled := Conv2D{LayerName: "c2", OutC: 2 * outC, K: k, Stride: 1, Pad: k / 2}
		if doubled.FLOPs(in) != 2*base.FLOPs(in) {
			return false
		}
		return base.FLOPs(in) > 0 && base.Params(in) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shape inference keeps spatial dims positive for valid
// stride/pad combos, and FLOPs are monotone in input size.
func TestQuickShapeSanity(t *testing.T) {
	f := func(hRaw, sRaw uint8) bool {
		h := int(hRaw%200) + 8
		s := int(sRaw%3) + 1
		c := Conv2D{LayerName: "c", OutC: 8, K: 3, Stride: s, Pad: 1}
		small := Tensor{C: 4, H: h, W: h}
		big := Tensor{C: 4, H: h + 8, W: h + 8}
		outS := c.OutShape(small)
		if outS.H < 1 || outS.W < 1 {
			return false
		}
		return c.FLOPs(big) >= c.FLOPs(small)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The transformer decode profile is flat across depth — the contrast
// with Fig. 1's CNN variability that makes LLM right-sizing stable.
func TestDecodeLayerProfileUniform(t *testing.T) {
	s := LLaMa27B()
	prof := s.DecodeLayerProfile(2)
	// embed + 32×7 + head.
	if len(prof) != 2+32*7 {
		t.Fatalf("sublayers = %d", len(prof))
	}
	// Every attn.q across layers has identical cost.
	var qCosts []float64
	var total float64
	for _, p := range prof {
		total += p.GFLOPs
		if strings.HasSuffix(p.Name, "attn.q") {
			qCosts = append(qCosts, p.GFLOPs)
		}
	}
	for _, c := range qCosts {
		if c != qCosts[0] {
			t.Fatal("per-layer decode cost not uniform")
		}
	}
	// The profile sums to ≈2×(params − embedding table): decoding
	// gathers one embedding row rather than multiplying the table.
	want := 2 * float64(s.Params()-int64(s.Vocab)*int64(s.DModel)) / 1e9
	if math.Abs(total-want)/want > 0.01 {
		t.Fatalf("profile total %.2f vs expected %.2f", total, want)
	}
}
