package models

import "fmt"

// TransformerSpec describes a decoder-only LLaMa-style transformer.
type TransformerSpec struct {
	// Name identifies the model, e.g. "llama2-7b".
	Name string
	// Layers is the number of transformer blocks.
	Layers int
	// DModel is the hidden dimension.
	DModel int
	// Heads is the number of attention heads.
	Heads int
	// KVHeads is the number of key/value heads (grouped-query
	// attention); equals Heads for classic multi-head attention.
	KVHeads int
	// FFNDim is the SwiGLU feed-forward inner dimension.
	FFNDim int
	// Vocab is the vocabulary size.
	Vocab int
	// MaxContext is the maximum context length.
	MaxContext int
}

// LLaMa27B returns the 7-billion-parameter LLaMa-2 spec.
func LLaMa27B() TransformerSpec {
	return TransformerSpec{
		Name: "llama2-7b", Layers: 32, DModel: 4096, Heads: 32, KVHeads: 32,
		FFNDim: 11008, Vocab: 32000, MaxContext: 4096,
	}
}

// LLaMa213B returns the 13-billion-parameter LLaMa-2 spec.
func LLaMa213B() TransformerSpec {
	return TransformerSpec{
		Name: "llama2-13b", Layers: 40, DModel: 5120, Heads: 40, KVHeads: 40,
		FFNDim: 13824, Vocab: 32000, MaxContext: 4096,
	}
}

// LLaMa270B returns the 70-billion-parameter LLaMa-2 spec (grouped
// query attention with 8 KV heads).
func LLaMa270B() TransformerSpec {
	return TransformerSpec{
		Name: "llama2-70b", Layers: 80, DModel: 8192, Heads: 64, KVHeads: 8,
		FFNDim: 28672, Vocab: 32000, MaxContext: 4096,
	}
}

// headDim returns the per-head dimension.
func (s TransformerSpec) headDim() int { return s.DModel / s.Heads }

// kvDim returns the total key/value projection width.
func (s TransformerSpec) kvDim() int { return s.KVHeads * s.headDim() }

// Params returns the learnable parameter count: token embedding, LM
// head, per-layer attention (Q, K, V, O) and SwiGLU FFN (gate, up,
// down), plus RMSNorm weights.
func (s TransformerSpec) Params() int64 {
	d := int64(s.DModel)
	embed := int64(s.Vocab) * d // token embedding
	head := int64(s.Vocab) * d  // untied LM head
	attn := d*d + 2*d*int64(s.kvDim()) + d*d
	ffn := 3 * d * int64(s.FFNDim)
	norms := 2 * d
	perLayer := attn + ffn + norms
	return embed + head + int64(s.Layers)*perLayer + d /* final norm */
}

// WeightBytes returns parameter memory at the given element size
// (2 for fp16, 4 for fp32).
func (s TransformerSpec) WeightBytes(bytesPerParam int) int64 {
	return s.Params() * int64(bytesPerParam)
}

// KVCacheBytesPerToken returns key+value cache growth per generated
// token at the given element size.
func (s TransformerSpec) KVCacheBytesPerToken(bytesPerParam int) int64 {
	return int64(s.Layers) * 2 * int64(s.kvDim()) * int64(bytesPerParam)
}

// DecodeFLOPsPerToken returns forward FLOPs to generate one token at
// the given context length: ≈ 2·params for the weight matmuls plus the
// attention over the KV cache.
func (s TransformerSpec) DecodeFLOPsPerToken(ctxLen int) float64 {
	weightFLOPs := 2 * float64(s.Params())
	// Attention scores + value gather: 2 matmuls of d×ctx per layer.
	attnFLOPs := float64(s.Layers) * 2 * 2 * float64(s.DModel) * float64(ctxLen)
	return weightFLOPs + attnFLOPs
}

// DecodeBytesPerToken returns memory traffic to generate one token:
// batch-1 decoding streams every weight once plus the KV cache.
func (s TransformerSpec) DecodeBytesPerToken(ctxLen, bytesPerParam int) float64 {
	weights := float64(s.WeightBytes(bytesPerParam))
	kv := float64(s.KVCacheBytesPerToken(bytesPerParam)) * float64(ctxLen)
	return weights + kv
}

// PrefillFLOPs returns forward FLOPs to process a prompt of the given
// length (token-parallel, so ≈ promptLen × per-token weight FLOPs).
func (s TransformerSpec) PrefillFLOPs(promptLen int) float64 {
	return 2 * float64(s.Params()) * float64(promptLen)
}

// KernelsPerToken estimates how many kernels one decode step launches
// (per layer: 4 attention projections, attention itself, 3 FFN
// matmuls, 2 norms ≈ 10; plus embedding and head).
func (s TransformerSpec) KernelsPerToken() int { return s.Layers*10 + 2 }

// LayerCost is one transformer sublayer's per-token decode cost.
type LayerCost struct {
	Name   string
	GFLOPs float64
	// Bytes is the weight traffic the sublayer streams per token.
	Bytes int64
}

// DecodeLayerProfile returns per-sublayer decode FLOPs for one token —
// the transformer counterpart of the CNN profile behind Fig. 1. Unlike
// CNNs, the per-layer cost is uniform across depth: the partitioning
// consequence is that an LLM's SM demand is flat over time, making a
// fixed partition size (Fig. 2's knee) well-defined.
func (s TransformerSpec) DecodeLayerProfile(bytesPerParam int) []LayerCost {
	d := int64(s.DModel)
	kv := int64(s.kvDim())
	var out []LayerCost
	add := func(name string, params int64) {
		out = append(out, LayerCost{
			Name:   name,
			GFLOPs: 2 * float64(params) / 1e9,
			Bytes:  params * int64(bytesPerParam),
		})
	}
	add("embed", d) // one row gather per token
	for l := 0; l < s.Layers; l++ {
		prefix := fmt.Sprintf("layer%d.", l)
		add(prefix+"attn.q", d*d)
		add(prefix+"attn.k", d*kv)
		add(prefix+"attn.v", d*kv)
		add(prefix+"attn.o", d*d)
		add(prefix+"ffn.gate", d*int64(s.FFNDim))
		add(prefix+"ffn.up", d*int64(s.FFNDim))
		add(prefix+"ffn.down", d*int64(s.FFNDim))
	}
	add("lm_head", int64(s.Vocab)*d)
	return out
}
