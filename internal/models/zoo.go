package models

import "fmt"

// ImageNetInput is the standard 3×224×224 classification input.
var ImageNetInput = Tensor{C: 3, H: 224, W: 224}

// AlexNet builds the torchvision AlexNet (61,100,840 parameters).
func AlexNet() *Model {
	b := NewBuilder("alexnet", ImageNetInput)
	conv := func(i, outC, k, stride, pad int) {
		b.Add(Conv2D{LayerName: fmt.Sprintf("features.%d", i), OutC: outC, K: k, Stride: stride, Pad: pad, Bias: true})
		b.Add(Activation{LayerName: fmt.Sprintf("features.%d.relu", i)})
	}
	conv(0, 64, 11, 4, 2)
	b.Add(Pool{LayerName: "features.2.maxpool", K: 3, Stride: 2})
	conv(3, 192, 5, 1, 2)
	b.Add(Pool{LayerName: "features.5.maxpool", K: 3, Stride: 2})
	conv(6, 384, 3, 1, 1)
	conv(8, 256, 3, 1, 1)
	conv(10, 256, 3, 1, 1)
	b.Add(Pool{LayerName: "features.12.maxpool", K: 3, Stride: 2})
	b.Add(AdaptivePool{LayerName: "avgpool", OutH: 6, OutW: 6})
	b.Add(Linear{LayerName: "classifier.1", Out: 4096, Bias: true})
	b.Add(Activation{LayerName: "classifier.2.relu"})
	b.Add(Linear{LayerName: "classifier.4", Out: 4096, Bias: true})
	b.Add(Activation{LayerName: "classifier.5.relu"})
	b.Add(Linear{LayerName: "classifier.6", Out: 1000, Bias: true})
	return b.Build()
}

// VGG16 builds torchvision VGG-16 (138,357,544 parameters).
func VGG16() *Model {
	b := NewBuilder("vgg16", ImageNetInput)
	cfg := []int{64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1}
	for i, c := range cfg {
		if c == -1 {
			b.Add(Pool{LayerName: fmt.Sprintf("features.%d.maxpool", i), K: 2, Stride: 2})
			continue
		}
		b.Add(Conv2D{LayerName: fmt.Sprintf("features.%d", i), OutC: c, K: 3, Stride: 1, Pad: 1, Bias: true})
		b.Add(Activation{LayerName: fmt.Sprintf("features.%d.relu", i)})
	}
	b.Add(AdaptivePool{LayerName: "avgpool", OutH: 7, OutW: 7})
	b.Add(Linear{LayerName: "classifier.0", Out: 4096, Bias: true})
	b.Add(Activation{LayerName: "classifier.1.relu"})
	b.Add(Linear{LayerName: "classifier.3", Out: 4096, Bias: true})
	b.Add(Activation{LayerName: "classifier.4.relu"})
	b.Add(Linear{LayerName: "classifier.6", Out: 1000, Bias: true})
	return b.Build()
}

// ResNet50 builds torchvision ResNet-50 (25,557,032 parameters).
func ResNet50() *Model { return resnet("resnet50", []int{3, 4, 6, 3}) }

// ResNet101 builds torchvision ResNet-101 (44,549,160 parameters).
func ResNet101() *Model { return resnet("resnet101", []int{3, 4, 23, 3}) }

// ResNet152 builds torchvision ResNet-152 (60,192,808 parameters).
func ResNet152() *Model { return resnet("resnet152", []int{3, 8, 36, 3}) }

func resnet(name string, blocks []int) *Model {
	b := NewBuilder(name, ImageNetInput)
	b.Add(Conv2D{LayerName: "conv1", OutC: 64, K: 7, Stride: 2, Pad: 3})
	b.Add(BatchNorm{LayerName: "bn1"})
	b.Add(Activation{LayerName: "relu1"})
	b.Add(Pool{LayerName: "maxpool", K: 3, Stride: 2, Pad: 1})
	planes := 64
	for stage, n := range blocks {
		stride := 2
		if stage == 0 {
			stride = 1
		}
		for i := 0; i < n; i++ {
			s := 1
			if i == 0 {
				s = stride
			}
			bottleneck(b, fmt.Sprintf("layer%d.%d", stage+1, i), planes, s, i == 0)
		}
		planes *= 2
	}
	b.Add(AdaptivePool{LayerName: "avgpool", OutH: 1, OutW: 1})
	b.Add(Linear{LayerName: "fc", Out: 1000, Bias: true})
	return b.Build()
}

// bottleneck appends one ResNet bottleneck block: 1×1 reduce, 3×3,
// 1×1 expand (×4), with a projection shortcut on the first block of
// each stage.
func bottleneck(b *Builder, name string, planes, stride int, downsample bool) {
	blockIn := b.Shape()
	b.Add(Conv2D{LayerName: name + ".conv1", OutC: planes, K: 1, Stride: 1})
	b.Add(BatchNorm{LayerName: name + ".bn1"})
	b.Add(Activation{LayerName: name + ".relu1"})
	b.Add(Conv2D{LayerName: name + ".conv2", OutC: planes, K: 3, Stride: stride, Pad: 1})
	b.Add(BatchNorm{LayerName: name + ".bn2"})
	b.Add(Activation{LayerName: name + ".relu2"})
	b.Add(Conv2D{LayerName: name + ".conv3", OutC: planes * 4, K: 1, Stride: 1})
	b.Add(BatchNorm{LayerName: name + ".bn3"})
	if downsample {
		dsOut := b.AddAt(Conv2D{LayerName: name + ".downsample.0", OutC: planes * 4, K: 1, Stride: stride}, blockIn)
		b.AddAt(BatchNorm{LayerName: name + ".downsample.1"}, dsOut)
	}
	b.Add(Add{LayerName: name + ".add"})
	b.Add(Activation{LayerName: name + ".relu3"})
}

// SqueezeNet builds torchvision SqueezeNet 1.1 (1,235,496 parameters)
// — a low-FLOP contrast point for Fig. 1.
func SqueezeNet() *Model {
	b := NewBuilder("squeezenet1_1", ImageNetInput)
	b.Add(Conv2D{LayerName: "features.0", OutC: 64, K: 3, Stride: 2, Bias: true})
	b.Add(Activation{LayerName: "features.1.relu"})
	b.Add(Pool{LayerName: "features.2.maxpool", K: 3, Stride: 2})
	fire := func(name string, squeeze, expand int) {
		b.Add(Conv2D{LayerName: name + ".squeeze", OutC: squeeze, K: 1, Stride: 1, Bias: true})
		b.Add(Activation{LayerName: name + ".squeeze.relu"})
		sqOut := b.Shape()
		b.Add(Conv2D{LayerName: name + ".expand1x1", OutC: expand, K: 1, Stride: 1, Bias: true})
		b.AddAt(Conv2D{LayerName: name + ".expand3x3", OutC: expand, K: 3, Stride: 1, Pad: 1, Bias: true}, sqOut)
		// The two expand branches concatenate: the trunk continues
		// with doubled channels.
		cur := b.Shape()
		cur.C = 2 * expand
		b.cur = cur
	}
	fire("features.3", 16, 64)
	fire("features.4", 16, 64)
	b.Add(Pool{LayerName: "features.5.maxpool", K: 3, Stride: 2})
	fire("features.6", 32, 128)
	fire("features.7", 32, 128)
	b.Add(Pool{LayerName: "features.8.maxpool", K: 3, Stride: 2})
	fire("features.9", 48, 192)
	fire("features.10", 48, 192)
	fire("features.11", 64, 256)
	fire("features.12", 64, 256)
	b.Add(Conv2D{LayerName: "classifier.1", OutC: 1000, K: 1, Stride: 1, Bias: true})
	b.Add(Activation{LayerName: "classifier.2.relu"})
	b.Add(AdaptivePool{LayerName: "classifier.3.avgpool", OutH: 1, OutW: 1})
	return b.Build()
}

// Zoo returns the CNNs profiled for Fig. 1.
func Zoo() []*Model {
	return []*Model{AlexNet(), VGG16(), ResNet50(), ResNet101(), SqueezeNet()}
}
