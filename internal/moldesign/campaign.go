package moldesign

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/colmena"
	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/models"
	"repro/internal/simgpu"
	"repro/internal/trace"
)

// Config parameterizes the active-learning campaign (§3.1's seven-step
// loop).
type Config struct {
	// Seed makes the campaign fully reproducible.
	Seed int64
	// InitialPool is step (1): molecules simulated up front.
	InitialPool int
	// CandidatePool is the per-round pool scored by the emulator
	// (step 4).
	CandidatePool int
	// BatchSize is step (5): top-scored molecules simulated per round.
	BatchSize int
	// Rounds is the number of train→infer→simulate iterations.
	Rounds int
	// SimBase and SimSpread set the CPU cost of one simulation.
	SimBase   time.Duration
	SimSpread time.Duration
	// TrainEpochs sets emulator training cost (one kernel per epoch).
	TrainEpochs int
	// InferChunk is the scoring batch size (one kernel per chunk).
	InferChunk int
	// Lambda is the ridge regularizer.
	Lambda float64
	// RandomSelection replaces the greedy top-K pick with a uniform
	// random pick — the scientific control for the active learner.
	RandomSelection bool
}

// DefaultConfig returns a campaign sized like the paper's testbed run:
// enough work to show the Fig. 3 phase structure in minutes of
// virtual time.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		InitialPool:   32,
		CandidatePool: 4000,
		BatchSize:     16,
		Rounds:        4,
		SimBase:       4 * time.Second,
		SimSpread:     12 * time.Second,
		TrainEpochs:   64,
		InferChunk:    500,
		Lambda:        0.1,
	}
}

// Report is the campaign outcome.
type Report struct {
	// BestIP is the highest simulated IP found.
	BestIP float64
	// BestMolecule is its molecule.
	BestMolecule Molecule
	// InitialBestIP is the best from the random initial pool.
	InitialBestIP float64
	// RoundBatchMeanIP is the mean simulated IP of each round's
	// selected batch — rising values show the active learner working.
	RoundBatchMeanIP []float64
	// PoolMeanIP is the mean true IP over the candidate pool
	// (baseline for selection quality).
	PoolMeanIP float64
	// Dataset is the final training set size.
	Dataset int
	// FinalRMSE is the emulator error on the training set.
	FinalRMSE float64
	// Makespan is total campaign wall time.
	Makespan time.Duration
}

// Campaign wires the methods onto a task server and runs the loop.
type Campaign struct {
	cfg    Config
	server *colmena.TaskServer
	trace  *trace.Log
	mlp    models.MLP

	// pipelineScored buffers inference results between chunks of the
	// pipelined campaign (RunPipelined).
	pipelineScored []Scored
}

// New registers the campaign's methods ("simulate" on the CPU
// executor, "train" and "infer" on the GPU executor) with the task
// server.
func New(cfg Config, server *colmena.TaskServer, cpuExecutor, gpuExecutor string, log *trace.Log) *Campaign {
	c := &Campaign{cfg: cfg, server: server, trace: log, mlp: models.MolDesignEmulator()}
	server.RegisterMethod("simulate", cpuExecutor, c.simulateMethod)
	server.RegisterMethod("train", gpuExecutor, c.trainMethod)
	server.RegisterMethod("infer", gpuExecutor, c.inferMethod)
	return c
}

// simulateMethod is the CPU-only quantum-chemistry stand-in.
func (c *Campaign) simulateMethod(inv *faas.Invocation) (any, error) {
	m := inv.Arg(0).(Molecule)
	inv.Compute(SimCost(c.cfg.Seed, m, c.cfg.SimBase, c.cfg.SimSpread))
	return SimResult{Molecule: m, IP: SimulatedIP(c.cfg.Seed, m)}, nil
}

// trainMethod fits the emulator; its GPU cost is one kernel per epoch
// over the dataset (TensorFlow-style step overhead dominates at this
// model size).
func (c *Campaign) trainMethod(inv *faas.Invocation) (any, error) {
	data := inv.Arg(0).([]SimResult)
	ctx, err := inv.GPU()
	if err != nil {
		return nil, err
	}
	perSample := c.mlp.TrainFLOPsPerSample()
	kernels := make([]simgpu.Kernel, c.cfg.TrainEpochs)
	for i := range kernels {
		kernels[i] = simgpu.Kernel{
			Name:     fmt.Sprintf("train-epoch-%d", i),
			FLOPs:    perSample * float64(len(data)),
			Bytes:    float64(c.mlp.Params() * 4 * 3),
			MaxSMs:   40,
			Overhead: 10 * time.Millisecond,
			Tag:      "training",
		}
	}
	if err := ctx.RunAll(inv.Proc(), kernels); err != nil {
		return nil, err
	}
	return FitRidge(data, c.cfg.Lambda)
}

// inferMethod scores a candidate chunk on the GPU.
func (c *Campaign) inferMethod(inv *faas.Invocation) (any, error) {
	em := inv.Arg(0).(*Emulator)
	chunk := inv.Arg(1).([]Molecule)
	ctx, err := inv.GPU()
	if err != nil {
		return nil, err
	}
	k := simgpu.Kernel{
		Name:     "infer-chunk",
		FLOPs:    c.mlp.ForwardFLOPsPerSample() * float64(len(chunk)),
		Bytes:    float64(c.mlp.Params() * 4),
		MaxSMs:   60,
		Overhead: 25 * time.Millisecond,
		Tag:      "inference",
	}
	if _, err := ctx.Run(inv.Proc(), k); err != nil {
		return nil, err
	}
	scored := make([]Scored, len(chunk))
	for i, m := range chunk {
		scored[i] = Scored{Molecule: m, Pred: em.Predict(m)}
	}
	return scored, nil
}

// Scored is a candidate with its emulator prediction.
type Scored struct {
	Molecule Molecule
	Pred     float64
}

// Run executes the batch-synchronous active-learning loop from the
// calling proc (the thinker's main agent).
func (c *Campaign) Run(p *devent.Proc) (*Report, error) {
	cfg := c.cfg
	q := c.server.Queues()
	start := p.Now()
	rep := &Report{}

	// Step 1: initial random pool, simulated in parallel.
	next := 0
	pool := Pool(cfg.Seed, next, cfg.InitialPool)
	next += cfg.InitialPool
	for _, m := range pool {
		c.server.Submit("sim", "simulate", m)
	}
	var dataset []SimResult
	for _, r := range colmena.CollectN(p, q, "sim", cfg.InitialPool) {
		if r.Err != nil {
			return nil, r.Err
		}
		res := r.Value.(SimResult)
		dataset = append(dataset, res)
		c.span(r, "simulation")
		if res.IP > rep.InitialBestIP {
			rep.InitialBestIP = res.IP
			rep.BestIP, rep.BestMolecule = res.IP, res.Molecule
		}
	}

	// Steps 3–7: train, score candidates, simulate the most promising.
	var emulator *Emulator
	for round := 0; round < cfg.Rounds; round++ {
		c.server.Submit("train", "train", append([]SimResult(nil), dataset...))
		tr := q.Recv(p, "train")
		if tr.Err != nil {
			return nil, tr.Err
		}
		emulator = tr.Value.(*Emulator)
		c.span(tr, "training")

		candidates := Pool(cfg.Seed, next, cfg.CandidatePool)
		next += cfg.CandidatePool
		chunks := 0
		for lo := 0; lo < len(candidates); lo += cfg.InferChunk {
			hi := lo + cfg.InferChunk
			if hi > len(candidates) {
				hi = len(candidates)
			}
			c.server.Submit("infer", "infer", emulator, candidates[lo:hi])
			chunks++
		}
		var scored []Scored
		for _, r := range colmena.CollectN(p, q, "infer", chunks) {
			if r.Err != nil {
				return nil, r.Err
			}
			scored = append(scored, r.Value.([]Scored)...)
			c.span(r, "inference")
		}
		if cfg.RandomSelection {
			// Control arm: deterministic pseudo-random shuffle keyed
			// on the seed and round.
			for i := range scored {
				j := int(splitmix64(uint64(cfg.Seed)*1_000_003+uint64(round)*31+uint64(i)) % uint64(i+1))
				scored[i], scored[j] = scored[j], scored[i]
			}
		} else {
			sort.Slice(scored, func(i, j int) bool { return scored[i].Pred > scored[j].Pred })
		}

		batch := scored[:cfg.BatchSize]
		for _, s := range batch {
			c.server.Submit("sim", "simulate", s.Molecule)
		}
		var batchSum float64
		for _, r := range colmena.CollectN(p, q, "sim", cfg.BatchSize) {
			if r.Err != nil {
				return nil, r.Err
			}
			res := r.Value.(SimResult)
			dataset = append(dataset, res)
			batchSum += res.IP
			c.span(r, "simulation")
			if res.IP > rep.BestIP {
				rep.BestIP, rep.BestMolecule = res.IP, res.Molecule
			}
		}
		rep.RoundBatchMeanIP = append(rep.RoundBatchMeanIP, batchSum/float64(cfg.BatchSize))
	}

	// Baseline: mean true IP over a fresh pool of the same size.
	var sum float64
	base := Pool(cfg.Seed+7, 1_000_000, cfg.CandidatePool)
	for _, m := range base {
		sum += TrueIP(m)
	}
	rep.PoolMeanIP = sum / float64(len(base))
	rep.Dataset = len(dataset)
	if emulator != nil {
		rep.FinalRMSE = RMSE(emulator, dataset)
	}
	rep.Makespan = p.Now() - start
	return rep, nil
}

func (c *Campaign) span(r colmena.Result, kind string) {
	if c.trace == nil || r.Task == nil {
		return
	}
	c.trace.Add(trace.Span{
		Track: r.Task.Worker,
		Label: r.Method,
		Kind:  kind,
		Start: r.Task.StartTime,
		End:   r.Task.EndTime,
	})
}
