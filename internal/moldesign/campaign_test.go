package moldesign

import (
	"testing"
	"time"

	"repro/internal/colmena"
	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
	"repro/internal/simgpu"
	"repro/internal/trace"
)

// campaignRig is the paper's testbed in miniature: a 24-core node with
// GPUs, a cpu executor with 16 workers, and a gpu executor.
func campaignRig(t *testing.T, cfg Config) (*devent.Env, *Campaign, *trace.Log, *simgpu.Device) {
	t.Helper()
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM440GB())
	if err != nil {
		t.Fatal(err)
	}
	node := gpuctl.NewNode(env, dev)
	local := provider.NewLocal(env, node)
	cpu, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 16, Provider: local})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := htex.New(env, htex.Config{
		Label:                 "gpu",
		AvailableAccelerators: []string{"0"},
		Provider:              local,
	})
	if err != nil {
		t.Fatal(err)
	}
	dfk := faas.NewDFK(env, faas.Config{Retries: 1}, cpu, gpu)
	if err := dfk.Start(); err != nil {
		t.Fatal(err)
	}
	ts := colmena.NewTaskServer(dfk, colmena.NewQueues(env))
	log := &trace.Log{}
	return env, New(cfg, ts, "cpu", "gpu", log), log, dev
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.InitialPool = 16
	cfg.CandidatePool = 1000
	cfg.BatchSize = 8
	cfg.Rounds = 3
	return cfg
}

func TestCampaignActiveLearningBeatsRandom(t *testing.T) {
	env, c, _, _ := campaignRig(t, smallConfig())
	var rep *Report
	env.Spawn("thinker", func(p *devent.Proc) {
		r, err := c.Run(p)
		if err != nil {
			t.Error(err)
			return
		}
		rep = r
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Dataset != 16+3*8 {
		t.Fatalf("dataset = %d", rep.Dataset)
	}
	// Selection quality: every round's selected batch should have a
	// much higher mean IP than the pool average.
	for i, mean := range rep.RoundBatchMeanIP {
		if mean <= rep.PoolMeanIP+0.3 {
			t.Errorf("round %d batch mean %.3f not above pool mean %.3f", i, mean, rep.PoolMeanIP)
		}
	}
	if rep.BestIP < rep.InitialBestIP {
		t.Errorf("best %.3f below initial %.3f", rep.BestIP, rep.InitialBestIP)
	}
	if rep.FinalRMSE > 0.25 {
		t.Errorf("emulator RMSE = %.3f", rep.FinalRMSE)
	}
	if rep.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

// Fig. 3's observation: the trace shows all three phases, and the GPU
// has substantial idle time while simulations run.
func TestCampaignTraceShowsPhasesAndGPUIdle(t *testing.T) {
	env, c, log, dev := campaignRig(t, smallConfig())
	var makespan time.Duration
	env.Spawn("thinker", func(p *devent.Proc) {
		if _, err := c.Run(p); err != nil {
			t.Error(err)
			return
		}
		makespan = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, k := range log.Kinds() {
		kinds[k] = true
	}
	for _, k := range []string{"simulation", "training", "inference"} {
		if !kinds[k] {
			t.Errorf("missing %s spans", k)
		}
	}
	gpuSpans := append(log.OfKind("training"), log.OfKind("inference")...)
	busy := trace.BusyFraction(gpuSpans, 0, makespan)
	if busy > 0.5 {
		t.Errorf("GPU busy fraction %.2f — expected large idle gaps", busy)
	}
	if busy <= 0 {
		t.Error("GPU never busy")
	}
	// Device-level accounting agrees that the GPU is mostly idle.
	if u := dev.Utilization(0, makespan); u > 0.5 {
		t.Errorf("device utilization %.2f", u)
	}
	// There are real gaps between GPU bursts (the "white lines" of
	// Fig. 3).
	gaps := trace.Gaps(gpuSpans, 0, makespan)
	if len(gaps) < 3 {
		t.Errorf("only %d GPU idle gaps", len(gaps))
	}
}

func TestCampaignDeterminism(t *testing.T) {
	runOnce := func() (float64, time.Duration) {
		env, c, _, _ := campaignRig(t, smallConfig())
		var best float64
		var mk time.Duration
		env.Spawn("thinker", func(p *devent.Proc) {
			rep, err := c.Run(p)
			if err != nil {
				t.Error(err)
				return
			}
			best, mk = rep.BestIP, rep.Makespan
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return best, mk
	}
	b1, m1 := runOnce()
	b2, m2 := runOnce()
	if b1 != b2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", b1, m1, b2, m2)
	}
}

func TestCampaignSimulationsRunInParallel(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 1
	env, c, log, _ := campaignRig(t, cfg)
	env.Spawn("thinker", func(p *devent.Proc) {
		if _, err := c.Run(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	sims := log.OfKind("simulation")
	// 16 initial sims over 16 workers: the union coverage must be far
	// less than the summed durations (i.e., they overlapped).
	var sum time.Duration
	for _, s := range sims {
		sum += s.Duration()
	}
	var busy time.Duration
	for _, iv := range trace.Union(sims) {
		busy += iv.Duration()
	}
	if busy >= sum/2 {
		t.Fatalf("simulations barely overlapped: busy=%v sum=%v", busy, sum)
	}
}

// The paper's Fig.-3 remark: pipelining the campaign raises
// accelerator utilization and shortens the makespan, at the same
// simulation budget.
func TestPipelinedCampaignOverlapsAndSpeedsUp(t *testing.T) {
	cfg := smallConfig()

	runMode := func(pipelined bool) (*Report, *trace.Log) {
		env, c, log, _ := campaignRig(t, cfg)
		var rep *Report
		env.Spawn("thinker", func(p *devent.Proc) {
			var err error
			if pipelined {
				rep, err = c.RunPipelined(p)
			} else {
				rep, err = c.Run(p)
			}
			if err != nil {
				t.Error(err)
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return rep, log
	}

	sync, _ := runMode(false)
	async, asyncLog := runMode(true)

	if async.Dataset != sync.Dataset {
		t.Fatalf("budgets differ: sync=%d async=%d", sync.Dataset, async.Dataset)
	}
	if async.Makespan >= sync.Makespan {
		t.Errorf("pipelined %v not faster than synchronous %v", async.Makespan, sync.Makespan)
	}
	// GPU work overlaps simulations: some instant has both kinds
	// active.
	gpu := trace.Union(append(asyncLog.OfKind("training"), asyncLog.OfKind("inference")...))
	sims := trace.Union(asyncLog.OfKind("simulation"))
	overlap := false
	for _, g := range gpu {
		for _, s := range sims {
			if g.Start < s.End && s.Start < g.End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Error("no GPU/simulation overlap in the pipelined campaign")
	}
	// Selection quality is retained.
	for i, m := range async.RoundBatchMeanIP {
		if m <= async.PoolMeanIP {
			t.Errorf("pipelined batch %d mean %.3f not above pool mean %.3f", i, m, async.PoolMeanIP)
		}
	}
}

func TestPipelinedDeterminism(t *testing.T) {
	cfg := smallConfig()
	run := func() (float64, time.Duration) {
		env, c, _, _ := campaignRig(t, cfg)
		var best float64
		var mk time.Duration
		env.Spawn("thinker", func(p *devent.Proc) {
			rep, err := c.RunPipelined(p)
			if err != nil {
				t.Error(err)
				return
			}
			best, mk = rep.BestIP, rep.Makespan
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return best, mk
	}
	b1, m1 := run()
	b2, m2 := run()
	if b1 != b2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", b1, m1, b2, m2)
	}
}

// The control arm: greedy emulator-guided selection finds much better
// molecules than random selection at the same simulation budget.
func TestGreedySelectionBeatsRandomControl(t *testing.T) {
	run := func(random bool) float64 {
		cfg := smallConfig()
		cfg.RandomSelection = random
		env, c, _, _ := campaignRig(t, cfg)
		var mean float64
		env.Spawn("thinker", func(p *devent.Proc) {
			rep, err := c.Run(p)
			if err != nil {
				t.Error(err)
				return
			}
			var sum float64
			for _, m := range rep.RoundBatchMeanIP {
				sum += m
			}
			mean = sum / float64(len(rep.RoundBatchMeanIP))
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return mean
	}
	greedy := run(false)
	random := run(true)
	if greedy < random+0.5 {
		t.Fatalf("greedy %.3f not clearly above random %.3f", greedy, random)
	}
}
