package moldesign

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMoleculeDeterminism(t *testing.T) {
	a := NewMolecule(42, 7)
	b := NewMolecule(42, 7)
	if a != b {
		t.Fatal("molecule generation not deterministic")
	}
	c := NewMolecule(43, 7)
	if a == c {
		t.Fatal("seed has no effect")
	}
}

func TestPoolRangesAndFeatures(t *testing.T) {
	pool := Pool(1, 100, 50)
	if len(pool) != 50 || pool[0].ID != 100 || pool[49].ID != 149 {
		t.Fatalf("pool = %d items, ids %d..%d", len(pool), pool[0].ID, pool[49].ID)
	}
	for _, m := range pool {
		for _, f := range m.Features {
			if f < -1 || f >= 1 {
				t.Fatalf("feature %v out of range", f)
			}
		}
	}
}

func TestTrueIPVariesAndIsCentered(t *testing.T) {
	pool := Pool(1, 0, 2000)
	var sum, min, max float64
	min, max = math.Inf(1), math.Inf(-1)
	for _, m := range pool {
		ip := TrueIP(m)
		sum += ip
		if ip < min {
			min = ip
		}
		if ip > max {
			max = ip
		}
	}
	mean := sum / float64(len(pool))
	if mean < 8.5 || mean > 9.5 {
		t.Fatalf("mean IP = %v", mean)
	}
	if max-min < 1 {
		t.Fatalf("landscape too flat: [%v, %v]", min, max)
	}
}

func TestSimulatedIPNoiseIsSmall(t *testing.T) {
	for i := 0; i < 100; i++ {
		m := NewMolecule(5, i)
		d := math.Abs(SimulatedIP(5, m) - TrueIP(m))
		if d > 0.05 {
			t.Fatalf("noise %v too large", d)
		}
	}
	// Deterministic.
	m := NewMolecule(5, 3)
	if SimulatedIP(5, m) != SimulatedIP(5, m) {
		t.Fatal("noise not deterministic")
	}
}

func TestSimCostBounds(t *testing.T) {
	base, spread := 4*time.Second, 12*time.Second
	for i := 0; i < 200; i++ {
		c := SimCost(1, NewMolecule(1, i), base, spread)
		if c < base || c > base+spread {
			t.Fatalf("cost %v out of bounds", c)
		}
	}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	// Generate data from a known linear model and check recovery.
	var truth Emulator
	for i := range truth.Weights {
		truth.Weights[i] = float64(i%5) - 2
	}
	truth.Bias = 3
	var data []SimResult
	for i := 0; i < 400; i++ {
		m := NewMolecule(9, i)
		data = append(data, SimResult{Molecule: m, IP: truth.Predict(m)})
	}
	em, err := FitRidge(data, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Weights {
		if math.Abs(em.Weights[i]-truth.Weights[i]) > 0.01 {
			t.Fatalf("weight %d = %v, want %v", i, em.Weights[i], truth.Weights[i])
		}
	}
	if math.Abs(em.Bias-truth.Bias) > 0.01 {
		t.Fatalf("bias = %v", em.Bias)
	}
	if rmse := RMSE(em, data); rmse > 0.01 {
		t.Fatalf("rmse = %v", rmse)
	}
}

func TestRidgeOnCampaignLandscape(t *testing.T) {
	var data []SimResult
	for i := 0; i < 500; i++ {
		m := NewMolecule(2, i)
		data = append(data, SimResult{Molecule: m, IP: SimulatedIP(2, m)})
	}
	em, err := FitRidge(data, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// The landscape is mostly linear: the fit should be tight enough
	// to rank molecules usefully.
	if rmse := RMSE(em, data); rmse > 0.2 {
		t.Fatalf("rmse = %v", rmse)
	}
}

func TestRidgeEmptyData(t *testing.T) {
	if _, err := FitRidge(nil, 0.1); err == nil {
		t.Fatal("empty fit accepted")
	}
}

// Property: ridge prediction is exact on duplicated constant data.
func TestQuickRidgeConstantData(t *testing.T) {
	f := func(valRaw uint8, nRaw uint8) bool {
		val := float64(valRaw)/10 + 1
		n := int(nRaw%50) + 30
		var data []SimResult
		for i := 0; i < n; i++ {
			data = append(data, SimResult{Molecule: NewMolecule(3, i), IP: val})
		}
		em, err := FitRidge(data, 0.01)
		if err != nil {
			return false
		}
		return RMSE(em, data) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
