// Package moldesign reproduces the paper's molecular-design
// application (§3.1): an active-learning campaign that alternates
// CPU-bound quantum-chemistry "simulations", GPU emulator training,
// and GPU inference over large candidate pools, steered by a Colmena
// thinker over the FaaS runtime.
//
// The chemistry is replaced by a synthetic landscape: each molecule is
// a deterministic feature vector with a hidden ionization-potential
// function. This preserves everything the paper measures — the phase
// structure, task durations, and GPU idle gaps of Fig. 3 — while
// keeping the campaign self-contained and reproducible.
package moldesign

import (
	"math"
	"time"
)

// FeatureDim is the synthetic fingerprint length.
const FeatureDim = 12

// Molecule is one candidate: an ID plus its deterministic features.
type Molecule struct {
	ID       int
	Features [FeatureDim]float64
}

// splitmix64 is a tiny, high-quality hash for deterministic synthetic
// data.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to [-1, 1).
func unit(h uint64) float64 {
	return float64(h>>11)/float64(1<<53)*2 - 1
}

// NewMolecule derives molecule id's features from the campaign seed.
func NewMolecule(seed int64, id int) Molecule {
	m := Molecule{ID: id}
	for i := range m.Features {
		m.Features[i] = unit(splitmix64(uint64(seed)*0x100000001b3 + uint64(id)*31 + uint64(i)))
	}
	return m
}

// Pool generates molecules [from, from+n).
func Pool(seed int64, from, n int) []Molecule {
	out := make([]Molecule, n)
	for i := range out {
		out[i] = NewMolecule(seed, from+i)
	}
	return out
}

// ipWeights is the hidden linear component of the IP landscape.
var ipWeights = [FeatureDim]float64{
	1.8, -1.2, 0.9, 0.5, -0.7, 1.1, 0.3, -0.4, 0.6, -0.9, 0.2, 0.8,
}

// TrueIP is the hidden ground-truth ionization potential: a linear
// trend plus mild nonlinearity, in "eV" around 9.
func TrueIP(m Molecule) float64 {
	v := 9.0
	for i, x := range m.Features {
		v += 0.25 * ipWeights[i] * x
	}
	v += 0.2 * math.Sin(3*m.Features[0])
	v += 0.15 * m.Features[1] * m.Features[2]
	return v
}

// SimResult is one quantum-chemistry simulation outcome.
type SimResult struct {
	Molecule Molecule
	IP       float64
}

// SimulatedIP is the "measured" IP: ground truth plus deterministic
// per-molecule noise (the simulation is deterministic but imperfect).
func SimulatedIP(seed int64, m Molecule) float64 {
	noise := 0.05 * unit(splitmix64(uint64(seed)^uint64(m.ID)*0x9E3779B9))
	return TrueIP(m) + noise
}

// SimCost is the deterministic CPU cost of simulating molecule m:
// base plus a per-molecule spread, matching the heavy-tailed wall
// times of real quantum chemistry.
func SimCost(seed int64, m Molecule, base, spread time.Duration) time.Duration {
	u := (unit(splitmix64(uint64(seed)*7919+uint64(m.ID))) + 1) / 2 // [0,1)
	// Square the uniform draw for a right-skewed distribution.
	return base + time.Duration(u*u*float64(spread))
}
