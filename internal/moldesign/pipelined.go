package moldesign

import (
	"sort"

	"repro/internal/devent"
)

// RunPipelined executes the campaign asynchronously — the paper's own
// suggestion under Fig. 3: "Pipe-lining this application will yield
// higher accelerator utilization." Instead of the batch-synchronous
// simulate→train→infer→simulate lockstep, simulations stream
// continuously while the GPU retrains and rescores in the background:
//
//   - every completed simulation joins the dataset immediately;
//   - whenever BatchSize new results have arrived and no training is
//     in flight, a retrain starts;
//   - each new emulator immediately scores a fresh candidate pool and
//     the top picks are submitted as simulations, up to the same total
//     simulation budget as the synchronous campaign.
//
// Total simulated molecules equal Run's (InitialPool + Rounds×Batch),
// so makespan and GPU-utilization comparisons are like for like.
func (c *Campaign) RunPipelined(p *devent.Proc) (*Report, error) {
	cfg := c.cfg
	q := c.server.Queues()
	start := p.Now()
	rep := &Report{}
	budget := cfg.InitialPool + cfg.Rounds*cfg.BatchSize

	const topic = "stream"
	var (
		dataset       []SimResult
		simsSubmitted int
		simsDone      int
		trainInFlight bool
		lastTrainSize int
		chunksLeft    int
		emulator      *Emulator
		nextID        int
		simulated     = map[int]bool{}
		batchAccum    float64
		batchCount    int
	)

	submitSim := func(m Molecule) {
		if simsSubmitted >= budget || simulated[m.ID] {
			return
		}
		simulated[m.ID] = true
		simsSubmitted++
		c.server.Submit(topic, "simulate", m)
	}
	maybeTrain := func() {
		if trainInFlight || simsSubmitted >= budget {
			return
		}
		if len(dataset)-lastTrainSize < cfg.BatchSize && lastTrainSize > 0 {
			return
		}
		if len(dataset) == 0 {
			return
		}
		trainInFlight = true
		lastTrainSize = len(dataset)
		c.server.Submit(topic, "train", append([]SimResult(nil), dataset...))
	}

	for _, m := range Pool(cfg.Seed, nextID, cfg.InitialPool) {
		submitSim(m)
	}
	nextID += cfg.InitialPool

	for simsDone < budget {
		r := q.Recv(p, topic)
		if r.Err != nil {
			return nil, r.Err
		}
		switch r.Method {
		case "simulate":
			res := r.Value.(SimResult)
			dataset = append(dataset, res)
			simsDone++
			c.span(r, "simulation")
			if res.IP > rep.BestIP {
				rep.BestIP, rep.BestMolecule = res.IP, res.Molecule
			}
			if simsDone <= cfg.InitialPool && res.IP > rep.InitialBestIP {
				rep.InitialBestIP = res.IP
			}
			if simsDone > cfg.InitialPool {
				batchAccum += res.IP
				batchCount++
				if batchCount == cfg.BatchSize {
					rep.RoundBatchMeanIP = append(rep.RoundBatchMeanIP, batchAccum/float64(batchCount))
					batchAccum, batchCount = 0, 0
				}
			}
			maybeTrain()
		case "train":
			emulator = r.Value.(*Emulator)
			trainInFlight = false
			c.span(r, "training")
			// Score a fresh pool with the new emulator, overlapping
			// with the in-flight simulations.
			candidates := Pool(cfg.Seed, nextID, cfg.CandidatePool)
			nextID += cfg.CandidatePool
			for lo := 0; lo < len(candidates); lo += cfg.InferChunk {
				hi := lo + cfg.InferChunk
				if hi > len(candidates) {
					hi = len(candidates)
				}
				c.server.Submit(topic, "infer", emulator, candidates[lo:hi])
				chunksLeft++
			}
			c.pipelineScored = c.pipelineScored[:0]
		case "infer":
			c.pipelineScored = append(c.pipelineScored, r.Value.([]Scored)...)
			c.span(r, "inference")
			chunksLeft--
			if chunksLeft == 0 {
				sort.Slice(c.pipelineScored, func(i, j int) bool {
					return c.pipelineScored[i].Pred > c.pipelineScored[j].Pred
				})
				picked := 0
				for _, s := range c.pipelineScored {
					if picked == cfg.BatchSize || simsSubmitted >= budget {
						break
					}
					if !simulated[s.Molecule.ID] {
						submitSim(s.Molecule)
						picked++
					}
				}
				maybeTrain()
			}
		}
	}

	var sum float64
	base := Pool(cfg.Seed+7, 1_000_000, cfg.CandidatePool)
	for _, m := range base {
		sum += TrueIP(m)
	}
	rep.PoolMeanIP = sum / float64(len(base))
	rep.Dataset = len(dataset)
	if emulator != nil {
		rep.FinalRMSE = RMSE(emulator, dataset)
	}
	rep.Makespan = p.Now() - start
	return rep, nil
}
