package moldesign

import (
	"errors"
	"math"
)

// ErrSingular is returned when the ridge normal equations cannot be
// solved (should not happen for lambda > 0).
var ErrSingular = errors.New("moldesign: singular system")

// Emulator is the trained IP predictor: linear weights plus bias over
// the molecule features (the simulator stand-in for the campaign's
// neural network; its *cost* is modelled separately via the MLP spec).
type Emulator struct {
	Weights [FeatureDim]float64
	Bias    float64
}

// Predict returns the emulator's IP estimate.
func (e *Emulator) Predict(m Molecule) float64 {
	v := e.Bias
	for i, w := range e.Weights {
		v += w * m.Features[i]
	}
	return v
}

// FitRidge solves ridge regression (X'X + λI)w = X'y with a bias
// column (the bias is not regularized).
func FitRidge(data []SimResult, lambda float64) (*Emulator, error) {
	if len(data) == 0 {
		return nil, errors.New("moldesign: empty training set")
	}
	if lambda <= 0 {
		lambda = 1e-6
	}
	const d = FeatureDim + 1 // +bias
	var a [d][d]float64
	var b [d]float64
	for _, s := range data {
		var x [d]float64
		copy(x[:FeatureDim], s.Molecule.Features[:])
		x[FeatureDim] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * s.IP
		}
	}
	for i := 0; i < FeatureDim; i++ {
		a[i][i] += lambda
	}
	w, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	var e Emulator
	copy(e.Weights[:], w[:FeatureDim])
	e.Bias = w[FeatureDim]
	return &e, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// small dense system.
func solve(a [FeatureDim + 1][FeatureDim + 1]float64, b [FeatureDim + 1]float64) ([FeatureDim + 1]float64, error) {
	const d = FeatureDim + 1
	for col := 0; col < d; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return b, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < d; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < d; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	var x [d]float64
	for r := d - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < d; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// RMSE evaluates the emulator against simulated results.
func RMSE(e *Emulator, data []SimResult) float64 {
	if len(data) == 0 {
		return 0
	}
	var sse float64
	for _, s := range data {
		d := e.Predict(s.Molecule) - s.IP
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(data)))
}
