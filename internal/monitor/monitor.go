// Package monitor is the analogue of Parsl's monitoring database
// (the paper's Listing 1 configures a log_dir "to store monitoring DB
// and parsl logs"): it records every task status transition from the
// DFK and answers the queries the paper's analysis needed — per-app
// latency statistics, per-worker busy time, queue delays, and
// time-binned throughput.
package monitor

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/faas"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Record is one completed (or failed) task's history.
type Record struct {
	TaskID   int
	App      string
	Executor string
	Worker   string
	Status   faas.TaskStatus
	Submit   time.Duration
	Start    time.Duration
	End      time.Duration
	Tries    int
	Err      error
}

// QueueDelay is time from submission to execution start.
func (r Record) QueueDelay() time.Duration { return r.Start - r.Submit }

// RunTime is execution duration.
func (r Record) RunTime() time.Duration { return r.End - r.Start }

// DB accumulates task records. Attach to a DFK with Attach.
type DB struct {
	records []Record
}

// New creates an empty monitoring DB.
func New() *DB { return &DB{} }

// Attach subscribes the DB to a DFK's collector; terminal task spans
// (done, failed) produce records.
func (db *DB) Attach(d *faas.DFK) { db.AttachCollector(d.Collector()) }

// AttachCollector derives records from the span stream: every ended
// "dfk"/"task" span carries the fields a Record needs as attributes.
func (db *DB) AttachCollector(c *obs.Collector) {
	c.OnSpanEnd(func(s obs.Span) {
		if s.Cat != "dfk" || s.Name != "task" {
			return
		}
		db.records = append(db.records, recordFromSpan(s))
	})
}

// recordFromSpan rebuilds a task record from its root span. The span
// interval is submit→end; the start time travels as the integer
// nanosecond attribute start_ns so queue delay and run time are exact.
func recordFromSpan(s obs.Span) Record {
	r := Record{
		App:      s.Attr("app"),
		Executor: s.Attr("executor"),
		Worker:   s.Attr("worker"),
		Status:   faas.TaskFailed,
		Submit:   s.Start,
		End:      s.End,
	}
	r.TaskID, _ = strconv.Atoi(s.Attr("task"))
	r.Tries, _ = strconv.Atoi(s.Attr("tries"))
	if s.Attr("status") == faas.TaskDone.String() {
		r.Status = faas.TaskDone
	}
	if ns, err := strconv.ParseInt(s.Attr("start_ns"), 10, 64); err == nil {
		r.Start = time.Duration(ns)
	}
	if msg := s.Attr("error"); msg != "" {
		r.Err = errors.New(msg)
	}
	return r
}

// Add inserts a record directly (tests, external sources).
func (db *DB) Add(r Record) { db.records = append(db.records, r) }

// Len returns the record count.
func (db *DB) Len() int { return len(db.records) }

// Records returns a copy of all records.
func (db *DB) Records() []Record { return append([]Record(nil), db.records...) }

// ByApp returns records for one app.
func (db *DB) ByApp(app string) []Record {
	var out []Record
	for _, r := range db.records {
		if r.App == app {
			out = append(out, r)
		}
	}
	return out
}

// Failed returns the failed-task records.
func (db *DB) Failed() []Record {
	var out []Record
	for _, r := range db.records {
		if r.Status == faas.TaskFailed {
			out = append(out, r)
		}
	}
	return out
}

// AppStats summarizes one app's executions.
type AppStats struct {
	App        string
	Count      int
	Failures   int
	RunTime    metrics.Durations
	QueueDelay metrics.Durations
}

// Apps returns per-app statistics, sorted by app name.
func (db *DB) Apps() []AppStats {
	byApp := map[string]*AppStats{}
	for _, r := range db.records {
		s, ok := byApp[r.App]
		if !ok {
			s = &AppStats{App: r.App}
			byApp[r.App] = s
		}
		s.Count++
		if r.Status == faas.TaskFailed {
			s.Failures++
			continue
		}
		s.RunTime.Add(r.RunTime())
		s.QueueDelay.Add(r.QueueDelay())
	}
	names := make([]string, 0, len(byApp))
	for n := range byApp {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]AppStats, 0, len(names))
	for _, n := range names {
		out = append(out, *byApp[n])
	}
	return out
}

// WorkerBusy returns each worker's busy time (sum of run times),
// sorted by worker name.
type WorkerBusy struct {
	Worker string
	Tasks  int
	Busy   time.Duration
}

// Workers aggregates per-worker busy time.
func (db *DB) Workers() []WorkerBusy {
	byW := map[string]*WorkerBusy{}
	for _, r := range db.records {
		if r.Worker == "" {
			continue
		}
		w, ok := byW[r.Worker]
		if !ok {
			w = &WorkerBusy{Worker: r.Worker}
			byW[r.Worker] = w
		}
		w.Tasks++
		w.Busy += r.RunTime()
	}
	names := make([]string, 0, len(byW))
	for n := range byW {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]WorkerBusy, 0, len(names))
	for _, n := range names {
		out = append(out, *byW[n])
	}
	return out
}

// Throughput bins completions into fixed windows and returns
// completions per second per bin (a utilization-over-time series).
func (db *DB) Throughput(bin time.Duration) []float64 {
	if bin <= 0 || len(db.records) == 0 {
		return nil
	}
	var end time.Duration
	for _, r := range db.records {
		if r.End > end {
			end = r.End
		}
	}
	n := int(end/bin) + 1
	out := make([]float64, n)
	for _, r := range db.records {
		if r.Status != faas.TaskDone {
			continue
		}
		out[int(r.End/bin)] += 1
	}
	for i := range out {
		out[i] /= bin.Seconds()
	}
	return out
}

// Spans exports the records as a trace.Log for Gantt rendering —
// exactly the view the paper's Fig. 3 is drawn from.
func (db *DB) Spans() *trace.Log {
	var log trace.Log
	for _, r := range db.records {
		log.Add(trace.Span{
			Track: r.Worker,
			Label: fmt.Sprintf("task-%d", r.TaskID),
			Kind:  r.App,
			Start: r.Start,
			End:   r.End,
		})
	}
	return &log
}

// Report renders the summary tables.
func (db *DB) Report(w io.Writer) error {
	fmt.Fprintf(w, "monitoring: %d task records\n\napps:\n", db.Len())
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tcount\tfailures\tmean run (s)\tp95 run (s)\tmean queue (s)")
	for _, a := range db.Apps() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%.3f\n",
			a.App, a.Count, a.Failures,
			a.RunTime.Mean().Seconds(), a.RunTime.Percentile(95).Seconds(),
			a.QueueDelay.Mean().Seconds())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nworkers:")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "worker\ttasks\tbusy (s)")
	for _, wk := range db.Workers() {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\n", wk.Worker, wk.Tasks, wk.Busy.Seconds())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	failed := db.Failed()
	if len(failed) == 0 {
		return nil
	}
	fmt.Fprintln(w, "\nfailures:")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tapp\tworker\ttries\terror")
	for _, r := range failed {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%s\n", r.TaskID, r.App, r.Worker, r.Tries, errStr)
	}
	return tw.Flush()
}

// WriteCSV dumps the records as CSV.
func (db *DB) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task_id,app,executor,worker,status,submit_s,start_s,end_s,tries,error"); err != nil {
		return err
	}
	for _, r := range db.records {
		errStr := ""
		if r.Err != nil {
			errStr = strings.ReplaceAll(r.Err.Error(), ",", ";")
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%s,%.6f,%.6f,%.6f,%d,%s\n",
			r.TaskID, r.App, r.Executor, r.Worker, r.Status,
			r.Submit.Seconds(), r.Start.Seconds(), r.End.Seconds(), r.Tries, errStr); err != nil {
			return err
		}
	}
	return nil
}
