package monitor

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/faas/provider"
	"repro/internal/gpuctl"
)

func rigWithDB(t *testing.T) (*devent.Env, *faas.DFK, *DB) {
	t.Helper()
	env := devent.NewEnv()
	node := gpuctl.NewNode(env)
	ex, err := htex.New(env, htex.Config{Label: "cpu", MaxWorkers: 2, Provider: provider.NewLocal(env, node)})
	if err != nil {
		t.Fatal(err)
	}
	d := faas.NewDFK(env, faas.Config{Retries: 1}, ex)
	db := New()
	db.Attach(d)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return env, d, db
}

func TestAttachRecordsTerminalStates(t *testing.T) {
	env, d, db := rigWithDB(t)
	d.Register(faas.App{Name: "ok", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(time.Second)
		return nil, nil
	}})
	boom := errors.New("boom")
	d.Register(faas.App{Name: "bad", Executor: "cpu", Fn: func(*faas.Invocation) (any, error) {
		return nil, boom
	}})
	env.Spawn("main", func(p *devent.Proc) {
		f1 := d.Submit("ok")
		f2 := d.Submit("bad")
		f1.Result(p)
		f2.Result(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("records = %d", db.Len())
	}
	if len(db.Failed()) != 1 {
		t.Fatalf("failed = %d", len(db.Failed()))
	}
	okRecs := db.ByApp("ok")
	if len(okRecs) != 1 || okRecs[0].RunTime() != time.Second || okRecs[0].Worker == "" {
		t.Fatalf("ok record = %+v", okRecs)
	}
}

func TestAppStatsAndWorkers(t *testing.T) {
	env, d, db := rigWithDB(t)
	d.Register(faas.App{Name: "work", Executor: "cpu", Fn: func(inv *faas.Invocation) (any, error) {
		inv.Compute(2 * time.Second)
		return nil, nil
	}})
	env.Spawn("main", func(p *devent.Proc) {
		evs := make([]*devent.Event, 4)
		for i := range evs {
			evs[i] = d.Submit("work").Event()
		}
		p.Wait(devent.AllOf(env, evs...))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	apps := db.Apps()
	if len(apps) != 1 || apps[0].Count != 4 || apps[0].Failures != 0 {
		t.Fatalf("apps = %+v", apps)
	}
	if apps[0].RunTime.Mean() != 2*time.Second {
		t.Fatalf("mean run = %v", apps[0].RunTime.Mean())
	}
	// Two tasks per worker on the 2-worker pool: queue delay for the
	// second pair is 2 s.
	if apps[0].QueueDelay.Max() != 2*time.Second {
		t.Fatalf("max queue = %v", apps[0].QueueDelay.Max())
	}
	workers := db.Workers()
	if len(workers) != 2 {
		t.Fatalf("workers = %+v", workers)
	}
	for _, w := range workers {
		if w.Tasks != 2 || w.Busy != 4*time.Second {
			t.Fatalf("worker = %+v", w)
		}
	}
}

func TestThroughputBins(t *testing.T) {
	db := New()
	for i, end := range []time.Duration{500 * time.Millisecond, 800 * time.Millisecond, 1500 * time.Millisecond} {
		db.Add(Record{TaskID: i, App: "a", Status: faas.TaskDone, End: end})
	}
	bins := db.Throughput(time.Second)
	if len(bins) != 2 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != 2 || bins[1] != 1 {
		t.Fatalf("bins = %v", bins)
	}
	if db.Throughput(0) != nil {
		t.Fatal("zero bin accepted")
	}
}

func TestSpansExport(t *testing.T) {
	db := New()
	db.Add(Record{TaskID: 1, App: "train", Worker: "w0", Status: faas.TaskDone,
		Start: time.Second, End: 3 * time.Second})
	log := db.Spans()
	if log.Len() != 1 {
		t.Fatalf("spans = %d", log.Len())
	}
	sp := log.Spans()[0]
	if sp.Kind != "train" || sp.Track != "w0" || sp.Duration() != 2*time.Second {
		t.Fatalf("span = %+v", sp)
	}
}

func TestReportAndCSV(t *testing.T) {
	db := New()
	db.Add(Record{TaskID: 1, App: "infer", Worker: "w0", Status: faas.TaskDone,
		Submit: 0, Start: time.Second, End: 2 * time.Second, Tries: 1})
	db.Add(Record{TaskID: 2, App: "infer", Worker: "w0", Status: faas.TaskFailed,
		Err: errors.New("oom, badly")})
	var rep strings.Builder
	if err := db.Report(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "infer") || !strings.Contains(rep.String(), "w0") {
		t.Fatalf("report:\n%s", rep.String())
	}
	var csv strings.Builder
	if err := db.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "task_id,app,") {
		t.Fatalf("csv header: %q", out)
	}
	// Error commas are sanitized to keep the CSV rectangular.
	if !strings.Contains(out, "oom; badly") {
		t.Fatalf("csv error field: %q", out)
	}
}
