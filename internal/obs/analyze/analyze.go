// Package analyze is the deterministic post-run analysis engine over
// the obs span stream: critical-path latency attribution (every task's
// end-to-end time decomposed into named, non-overlapping phases that
// sum exactly to the span duration), folded-stack flamegraph export,
// SLO burn-rate monitoring on the virtual clock, and run-to-run trace
// diffing.
//
// Attribution is a priority sweep line. Each span kind that can
// explain a slice of a task's wall time contributes an interval with a
// fixed phase and priority; intervals are clipped to the task span,
// elementary segments between interval boundaries take the phase of
// the highest-priority covering interval, and uncovered segments are
// classified positionally (before the first evidence: submit; between
// evidence: retry/backoff; after the last: other). Executor queue time
// is critical-path-reattributed: while a task waits for a busy worker,
// the blocking run's own phases (kernel queueing, compute, transfers)
// claim that wait, so device-level contention surfaces in end-to-end
// blame instead of hiding behind a generic "queue" bucket. All
// arithmetic is integer virtual nanoseconds, so the per-task phase
// vector sums to the task duration exactly — the invariant the
// acceptance tests lock.
package analyze

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Phase names one slice of a task's end-to-end latency. The order is
// the canonical presentation order in every artifact.
type Phase int

const (
	// PhaseSubmit is time between task submission and the first
	// evidence of executor-side work (normally zero: the DFK hands the
	// task to the executor in the same virtual instant).
	PhaseSubmit Phase = iota
	// PhaseQueue is time spent in the executor submit queue that no
	// blocking activity explains (the scheduler simply had not placed
	// the task yet). Queue time spent waiting for a busy worker is
	// critical-path-reattributed to the blocking run's phases instead.
	PhaseQueue
	// PhaseColdStart is worker/context initialization the task had to
	// wait for: the executor init window overlapping the task's queue
	// wait, plus lazy GPU-context creation inside the invocation.
	PhaseColdStart
	// PhaseWeightLoad is host-to-device weight shard transfer time.
	PhaseWeightLoad
	// PhaseKernelQueue is device-side dispatch delay: kernels enqueued
	// but not yet running (time-share serialization, SM contention).
	PhaseKernelQueue
	// PhaseCompute is kernel execution on the SMs.
	PhaseCompute
	// PhasePCIe is non-weight host/device transfer time.
	PhasePCIe
	// PhaseHost is on-worker time not explained by the device: host
	// gaps between token launches, sampling, framework overhead.
	PhaseHost
	// PhaseRetryBackoff is time between attempts: backoff sleeps and
	// any other uncovered gap in the middle of the task.
	PhaseRetryBackoff
	// PhaseRestartStall is queue/backoff time that overlaps an
	// executor drain/restart window (e.g. a repartitioning
	// transition).
	PhaseRestartStall
	// PhaseOther is trailing unattributed time; zero in default runs.
	PhaseOther

	// NumPhases is the number of phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"submit", "queue", "cold_start", "weight_load", "kernel_queue",
	"compute", "pcie", "host", "retry_backoff", "restart_stall", "other",
}

// String returns the canonical snake_case phase name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// PhaseByName resolves a canonical phase name; ok is false for an
// unknown name.
func PhaseByName(name string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), true
		}
	}
	return 0, false
}

// Breakdown is a per-phase duration vector in virtual time. The sum
// of all entries equals the task span duration exactly.
type Breakdown [NumPhases]time.Duration

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, v := range b {
		t += v
	}
	return t
}

// add accumulates another breakdown into b.
func (b *Breakdown) add(o *Breakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// TaskAttribution is one task's decomposed end-to-end latency.
type TaskAttribution struct {
	Scope    string    `json:"scope"`
	Task     int       `json:"task"`
	App      string    `json:"app"`
	Executor string    `json:"executor,omitempty"`
	GPUPct   string    `json:"gpu_pct,omitempty"`
	Status   string    `json:"status"`
	StartNS  int64     `json:"start_ns"`
	EndNS    int64     `json:"end_ns"`
	Phases   Breakdown `json:"phases"`
}

// Duration returns the task's end-to-end virtual latency.
func (t *TaskAttribution) Duration() time.Duration {
	return time.Duration(t.EndNS - t.StartNS)
}

// Group is a blame profile: every task sharing a (scope, executor,
// app, SM-budget) key, with summed phase time and latency percentiles.
type Group struct {
	Scope    string    `json:"scope"`
	Executor string    `json:"executor,omitempty"`
	App      string    `json:"app"`
	GPUPct   string    `json:"gpu_pct,omitempty"`
	Tasks    int       `json:"tasks"`
	MeanNS   int64     `json:"mean_ns"`
	P50NS    int64     `json:"p50_ns"`
	P95NS    int64     `json:"p95_ns"`
	P99NS    int64     `json:"p99_ns"`
	Phases   Breakdown `json:"phases"` // summed over the group's tasks
}

// Report is the full attribution result for one (multi-collector) run.
type Report struct {
	Tasks  []TaskAttribution `json:"tasks"`
	Groups []Group           `json:"groups"`
}

// interval is one piece of phase evidence on the sweep line.
type interval struct {
	start, end time.Duration
	phase      Phase
	prio       int
}

// Interval priorities: when evidence overlaps, the most specific
// explanation wins. Compute beats its own queue delay, device
// activity beats the enclosing run span, context init beats the
// enclosing queue wait, and restart windows only claim time nothing
// else explains. The values are spaced by 10 so blocking-run
// reattribution (see blockedPrio) can slot between plain queue wait
// and the task's own evidence.
const (
	prioRestart   = 10 // executor drain/restart window
	prioQueue     = 20 // htex queue span
	prioInitWait  = 30 // worker init ∩ queue wait
	prioRun       = 40 // htex run span remainder -> host
	prioCtxInit   = 50 // lazy GPU-context creation in the invocation
	prioPCIe      = 60 // non-weight transfer
	prioWeights   = 70 // weight shard transfer
	prioKernQueue = 80 // kernel dispatch delay
	prioCompute   = 90 // kernel execution
)

// blockedPrio maps a blocking run's interval priority into the band
// (prioQueue, prioInitWait): a neighbour's phases outrank the bare
// queue span but never the waiting task's own evidence, and their
// relative order (compute over kernel queue over transfers over host)
// is preserved.
func blockedPrio(orig int) int { return prioQueue + orig/10 }

// Analyze decomposes every dfk task span found in the collectors and
// aggregates blame profiles. Collector order is preserved, so output
// is deterministic for a deterministic run.
func Analyze(collectors ...*obs.Collector) *Report {
	rep := &Report{}
	for _, c := range collectors {
		if c == nil {
			continue
		}
		analyzeCollector(rep, c)
	}
	rep.buildGroups()
	return rep
}

// analyzer holds one collector's span indexes during attribution.
type analyzer struct {
	children    map[obs.SpanID][]*obs.Span
	restarts    []*obs.Span
	inits       []*obs.Span
	runsByTrack map[string][]*obs.Span // htex run spans per worker track
	runIvs      map[obs.SpanID][]interval
}

func analyzeCollector(rep *Report, c *obs.Collector) {
	spans := c.Spans()
	a := newAnalyzer()
	var tasks []*obs.Span
	for i := range spans {
		if a.addEvidence(&spans[i]) {
			tasks = append(tasks, &spans[i])
		}
	}
	scope := c.Scope()
	for _, t := range tasks {
		ta := a.attributeTask(t)
		ta.Scope = scope
		rep.Tasks = append(rep.Tasks, ta)
	}
}

func newAnalyzer() *analyzer {
	return &analyzer{
		children:    make(map[obs.SpanID][]*obs.Span),
		runsByTrack: make(map[string][]*obs.Span),
		runIvs:      make(map[obs.SpanID][]interval),
	}
}

// addEvidence indexes one span into the analyzer's evidence structures
// and reports whether it is a dfk task span (the attribution unit).
// Shared by the snapshot path (which feeds a full Spans() snapshot in
// ID order) and the Streamer (which feeds spans as they end, then
// re-sorts the touched index lists by ID before attributing, so both
// paths attribute over identically ordered evidence).
func (a *analyzer) addEvidence(s *obs.Span) bool {
	if s.Parent != 0 {
		a.children[s.Parent] = append(a.children[s.Parent], s)
	}
	switch {
	case s.Cat == "dfk" && s.Name == "task":
		return true
	case s.Cat == "htex" && s.Name == "restart":
		a.restarts = append(a.restarts, s)
	case s.Cat == "htex" && s.Name == "init":
		a.inits = append(a.inits, s)
	case s.Cat == "htex" && s.Name == "run":
		a.runsByTrack[s.Track] = append(a.runsByTrack[s.Track], s)
	}
	return false
}

// runIntervals returns (memoized) the full evidence set of one run
// span: the run itself as host time plus its device-side children.
func (a *analyzer) runIntervals(run *obs.Span) []interval {
	if ivs, ok := a.runIvs[run.ID]; ok {
		return ivs
	}
	ivs := appendDeviceIntervals(
		[]interval{{run.Start, run.End, PhaseHost, prioRun}},
		a.children[run.ID])
	a.runIvs[run.ID] = ivs
	return ivs
}

func (a *analyzer) attributeTask(t *obs.Span) TaskAttribution {
	ta := TaskAttribution{
		App:      t.Attr("app"),
		Executor: t.Attr("executor"),
		Status:   t.Attr("status"),
		StartNS:  int64(t.Start),
		EndNS:    int64(t.End),
	}
	if id, err := strconv.Atoi(t.Attr("task")); err == nil {
		ta.Task = id
	}
	var ivs []interval

	// Executor drain/restart windows are the weakest evidence: they
	// only claim time no task-specific span explains (fail-fast retry
	// churn while the executor reconfigures).
	for _, r := range a.restarts {
		if ex := r.Attr("executor"); ex == "" || ta.Executor == "" || ex == ta.Executor {
			ivs = append(ivs, interval{r.Start, r.End, PhaseRestartStall, prioRestart})
		}
	}

	for _, ch := range a.children[t.ID] {
		switch {
		case ch.Cat == "htex" && ch.Name == "queue":
			ivs = append(ivs, interval{ch.Start, ch.End, PhaseQueue, prioQueue})
			w := ch.Attr("worker")
			if w == "" {
				continue
			}
			// Queue wait that overlaps the picked worker's init window
			// is a cold start, not scheduling delay.
			for _, in := range a.inits {
				if in.Track != w {
					continue
				}
				lo, hi := maxDur(ch.Start, in.Start), minDur(ch.End, in.End)
				if hi > lo {
					ivs = append(ivs, interval{lo, hi, PhaseColdStart, prioInitWait})
				}
			}
			// Critical-path reattribution: while the task waited for
			// worker w, w was serving other runs. That wait is caused
			// by — and decomposed along — the blocking runs' phases
			// (their kernel queueing, compute, transfers, host time).
			for _, run := range a.runsByTrack[w] {
				if run.Parent == t.ID || run.End <= ch.Start || run.Start >= ch.End {
					continue
				}
				for _, riv := range a.runIntervals(run) {
					lo, hi := maxDur(riv.start, ch.Start), minDur(riv.end, ch.End)
					if hi > lo {
						ivs = append(ivs, interval{lo, hi, riv.phase, blockedPrio(riv.prio)})
					}
				}
			}
		case ch.Cat == "htex" && ch.Name == "run":
			if ta.GPUPct == "" {
				ta.GPUPct = ch.Attr("gpu_pct")
			}
			ivs = append(ivs, a.runIntervals(ch)...)
		}
	}
	ta.Phases = decompose(t.Start, t.End, ivs)
	return ta
}

// appendDeviceIntervals adds the device-side evidence parented to one
// run span: GPU-context creation, transfers, and kernels.
func appendDeviceIntervals(ivs []interval, kids []*obs.Span) []interval {
	for _, k := range kids {
		switch {
		case k.Cat == "htex" && k.Name == "ctxinit":
			ivs = append(ivs, interval{k.Start, k.End, PhaseColdStart, prioCtxInit})
		case k.Cat == "simgpu" && k.Name == "xfer":
			ph, pr := PhasePCIe, prioPCIe
			if k.Attr("tag") == "weights" {
				ph, pr = PhaseWeightLoad, prioWeights
			}
			ivs = append(ivs, interval{k.Start, k.End, ph, pr})
		case k.Cat == "simgpu":
			// A kernel span: [start,end] is execution; the queue_ns
			// attribute recovers the dispatch delay before it.
			ivs = append(ivs, interval{k.Start, k.End, PhaseCompute, prioCompute})
			if q, err := strconv.ParseInt(k.Attr("queue_ns"), 10, 64); err == nil && q > 0 {
				ivs = append(ivs, interval{k.Start - time.Duration(q), k.Start, PhaseKernelQueue, prioKernQueue})
			}
		}
	}
	return ivs
}

// decompose runs the priority sweep line over [start, end].
func decompose(start, end time.Duration, ivs []interval) Breakdown {
	var b Breakdown
	if end <= start {
		return b
	}
	// Clip to the task window and drop empty intervals.
	clipped := ivs[:0]
	covLo, covHi := end, start
	for _, iv := range ivs {
		if iv.start < start {
			iv.start = start
		}
		if iv.end > end {
			iv.end = end
		}
		if iv.end <= iv.start {
			continue
		}
		if iv.start < covLo {
			covLo = iv.start
		}
		if iv.end > covHi {
			covHi = iv.end
		}
		clipped = append(clipped, iv)
	}
	if len(clipped) == 0 {
		b[PhaseSubmit] = end - start
		return b
	}
	// Elementary segments between sorted unique boundaries.
	bounds := make([]time.Duration, 0, 2*len(clipped)+2)
	bounds = append(bounds, start, end)
	for _, iv := range clipped {
		bounds = append(bounds, iv.start, iv.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, t := range bounds[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	for i := 0; i+1 < len(uniq); i++ {
		a, z := uniq[i], uniq[i+1]
		best := -1
		var ph Phase
		for _, iv := range clipped {
			if iv.start <= a && a < iv.end && iv.prio > best {
				best, ph = iv.prio, iv.phase
			}
		}
		if best < 0 {
			// Uncovered gap: classify by position relative to the
			// evidence envelope.
			switch {
			case z <= covLo:
				ph = PhaseSubmit
			case a >= covHi:
				ph = PhaseOther
			default:
				ph = PhaseRetryBackoff
			}
		}
		b[ph] += z - a
	}
	return b
}

// buildGroups aggregates tasks into sorted blame profiles.
func (r *Report) buildGroups() {
	type key struct{ scope, executor, app, pct string }
	agg := make(map[key]*Group)
	samples := make(map[key]*metrics.Durations)
	var order []key
	for i := range r.Tasks {
		t := &r.Tasks[i]
		k := key{t.Scope, t.Executor, t.App, t.GPUPct}
		g, ok := agg[k]
		if !ok {
			g = &Group{Scope: k.scope, Executor: k.executor, App: k.app, GPUPct: k.pct}
			agg[k] = g
			samples[k] = &metrics.Durations{}
			order = append(order, k)
		}
		g.Tasks++
		g.Phases.add(&t.Phases)
		samples[k].Add(t.Duration())
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.scope != b.scope {
			return a.scope < b.scope
		}
		if a.executor != b.executor {
			return a.executor < b.executor
		}
		if a.app != b.app {
			return a.app < b.app
		}
		return a.pct < b.pct
	})
	r.Groups = make([]Group, 0, len(order))
	for _, k := range order {
		g := agg[k]
		d := samples[k]
		g.MeanNS = int64(d.Mean())
		g.P50NS = int64(d.Percentile(50))
		g.P95NS = int64(d.Percentile(95))
		g.P99NS = int64(d.Percentile(99))
		r.Groups = append(r.Groups, *g)
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
