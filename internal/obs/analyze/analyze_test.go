package analyze

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// tickClock is a settable obs.Clock for building synthetic collectors.
type tickClock struct{ now time.Duration }

func (c *tickClock) Now() time.Duration { return c.now }

const ms = time.Millisecond

// addTask records a synthetic dfk task span with the attrs Analyze
// keys on and returns its ID for parenting child spans.
func addTask(c *obs.Collector, id int, app, executor, status string, start, end time.Duration) obs.SpanID {
	return c.AddSpan("dfk", "task", "task", 0, start, end,
		obs.Int("task", id),
		obs.String("app", app),
		obs.String("executor", executor),
		obs.String("status", status),
	)
}

func taskByID(t *testing.T, rep *Report, id int) *TaskAttribution {
	t.Helper()
	for i := range rep.Tasks {
		if rep.Tasks[i].Task == id {
			return &rep.Tasks[i]
		}
	}
	t.Fatalf("task %d not in report", id)
	return nil
}

// checkSum asserts the exact-sum invariant for every task.
func checkSum(t *testing.T, rep *Report) {
	t.Helper()
	for i := range rep.Tasks {
		ta := &rep.Tasks[i]
		if got, want := ta.Phases.Total(), ta.Duration(); got != want {
			t.Errorf("task %d: phases sum %v != duration %v", ta.Task, got, want)
		}
	}
}

// TestAttributionFullPipeline exercises one task with every evidence
// kind: queue wait overlapping worker init, a run span enclosing a
// weight transfer, a plain transfer, and a kernel with dispatch delay.
func TestAttributionFullPipeline(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)
	c.SetScope("unit")

	// Worker init window [0, 40ms) on worker w0.
	c.AddSpan("htex", "init", "w0", 0, 0, 40*ms)

	task := addTask(c, 7, "llama", "htex-gpu", "done", 10*ms, 200*ms)
	// Queue [10, 60): the slice up to 40ms overlaps w0's init window.
	q := c.AddSpan("htex", "queue", "task", task, 10*ms, 60*ms, obs.String("worker", "w0"))
	_ = q
	// Run [60, 200) on w0.
	run := c.AddSpan("htex", "run", "w0", task, 60*ms, 200*ms,
		obs.Int("task", 7), obs.String("app", "llama"), obs.Int("gpu_pct", 40))
	// Lazy context init [60, 70).
	c.AddSpan("htex", "ctxinit", "w0", run, 60*ms, 70*ms)
	// Weight transfer [70, 100).
	c.AddSpan("simgpu", "xfer", "ctx", run, 70*ms, 100*ms, obs.String("tag", "weights"))
	// Plain transfer [100, 110).
	c.AddSpan("simgpu", "xfer", "ctx", run, 100*ms, 110*ms)
	// Kernel executed [140, 190) after 30ms of dispatch delay.
	c.AddSpan("simgpu", "decode", "ctx", run, 140*ms, 190*ms, obs.Dur("queue_ns", 30*ms))

	rep := Analyze(c)
	checkSum(t, rep)
	ta := taskByID(t, rep, 7)

	want := map[Phase]time.Duration{
		PhaseQueue:       20 * ms, // [40,60): queue not covered by init
		PhaseColdStart:   40 * ms, // [10,40) queue∩init + [60,70) ctxinit
		PhaseWeightLoad:  30 * ms, // [70,100)
		PhasePCIe:        10 * ms, // [100,110)
		PhaseHost:        40 * ms, // [110,140) gap + [190,200) tail of run
		PhaseKernelQueue: 30 * ms, // [110,140)... wait, overlaps host
		PhaseCompute:     50 * ms, // [140,190)
	}
	// Kernel queue [110,140) outranks the run span, so host is only
	// the trailing [190,200).
	want[PhaseHost] = 10 * ms
	for p, w := range want {
		if ta.Phases[p] != w {
			t.Errorf("phase %s = %v, want %v", p, ta.Phases[p], w)
		}
	}
	if ta.Phases[PhaseOther] != 0 || ta.Phases[PhaseSubmit] != 0 || ta.Phases[PhaseRetryBackoff] != 0 {
		t.Errorf("unexpected residual phases: submit=%v retry=%v other=%v",
			ta.Phases[PhaseSubmit], ta.Phases[PhaseRetryBackoff], ta.Phases[PhaseOther])
	}
	if ta.GPUPct != "40" {
		t.Errorf("GPUPct = %q, want 40", ta.GPUPct)
	}

	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(rep.Groups))
	}
	g := rep.Groups[0]
	if g.Scope != "unit" || g.App != "llama" || g.Tasks != 1 || g.MeanNS != int64(190*ms) {
		t.Errorf("group = %+v", g)
	}
}

// TestAttributionGapClasses checks positional classification of
// uncovered time: leading gap -> submit, interior gap -> retry_backoff,
// trailing gap -> other, and no evidence at all -> submit.
func TestAttributionGapClasses(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)

	task := addTask(c, 1, "a", "x", "done", 0, 100*ms)
	// Evidence only in the middle: runs [20,40) and [60,80).
	c.AddSpan("htex", "run", "w", task, 20*ms, 40*ms)
	c.AddSpan("htex", "run", "w", task, 60*ms, 80*ms)

	bare := addTask(c, 2, "a", "x", "done", 0, 50*ms)
	_ = bare

	rep := Analyze(c)
	checkSum(t, rep)

	ta := taskByID(t, rep, 1)
	if ta.Phases[PhaseSubmit] != 20*ms {
		t.Errorf("leading gap: submit = %v, want 20ms", ta.Phases[PhaseSubmit])
	}
	if ta.Phases[PhaseRetryBackoff] != 20*ms {
		t.Errorf("interior gap: retry_backoff = %v, want 20ms", ta.Phases[PhaseRetryBackoff])
	}
	if ta.Phases[PhaseOther] != 20*ms {
		t.Errorf("trailing gap: other = %v, want 20ms", ta.Phases[PhaseOther])
	}
	if ta.Phases[PhaseHost] != 40*ms {
		t.Errorf("host = %v, want 40ms", ta.Phases[PhaseHost])
	}

	tb := taskByID(t, rep, 2)
	if tb.Phases[PhaseSubmit] != 50*ms {
		t.Errorf("no evidence: submit = %v, want full 50ms", tb.Phases[PhaseSubmit])
	}
}

// TestAttributionBlockedQueue checks critical-path reattribution of
// queue time: waiting for a busy worker is decomposed along the
// blocking run's phases, while wait with no blocker stays queue.
func TestAttributionBlockedQueue(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)

	// Blocker: another task's run on w0 over [0, 60ms), split into
	// 20ms kernel-queue, 30ms compute, 10ms host remainder.
	blocker := addTask(c, 1, "a", "ex", "done", 0, 60*ms)
	brun := c.AddSpan("htex", "run", "w0", blocker, 0, 60*ms)
	c.AddSpan("simgpu", "k", "ctx", brun, 20*ms, 50*ms, obs.Dur("queue_ns", 20*ms))

	// Waiter: queued [0, 80ms) for w0, runs [80, 100ms).
	waiter := addTask(c, 2, "a", "ex", "done", 0, 100*ms)
	c.AddSpan("htex", "queue", "task", waiter, 0, 80*ms, obs.String("worker", "w0"))
	c.AddSpan("htex", "run", "w0", waiter, 80*ms, 100*ms)

	rep := Analyze(c)
	checkSum(t, rep)
	ta := taskByID(t, rep, 2)
	want := map[Phase]time.Duration{
		PhaseKernelQueue: 20 * ms, // blocker's dispatch delay [0,20)
		PhaseCompute:     30 * ms, // blocker's kernel [20,50)
		PhaseQueue:       20 * ms, // [60,80): worker free of runs
		PhaseHost:        30 * ms, // blocker's remainder [50,60) + own run
	}
	for p, w := range want {
		if ta.Phases[p] != w {
			t.Errorf("phase %s = %v, want %v", p, ta.Phases[p], w)
		}
	}
	// The blocker's own attribution is untouched by the waiter.
	tb := taskByID(t, rep, 1)
	if tb.Phases[PhaseCompute] != 30*ms || tb.Phases[PhaseKernelQueue] != 20*ms || tb.Phases[PhaseHost] != 10*ms {
		t.Errorf("blocker phases = %+v", tb.Phases)
	}
}

// TestAttributionRestartWindow checks that an executor restart window
// claims otherwise-uncovered queue-adjacent time, but only for tasks on
// that executor, and never outranks real evidence.
func TestAttributionRestartWindow(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)

	// Restart window [20, 60) on executor ex1.
	c.AddSpan("htex", "restart", "ex1", 0, 20*ms, 60*ms, obs.String("executor", "ex1"))

	t1 := addTask(c, 1, "a", "ex1", "done", 0, 100*ms)
	c.AddSpan("htex", "run", "w", t1, 60*ms, 100*ms)

	t2 := addTask(c, 2, "a", "ex2", "done", 0, 100*ms)
	c.AddSpan("htex", "run", "w", t2, 60*ms, 100*ms)

	// Task fully covered by a queue span: restart must not outrank it.
	t3 := addTask(c, 3, "a", "ex1", "done", 0, 100*ms)
	c.AddSpan("htex", "queue", "task", t3, 0, 100*ms)

	rep := Analyze(c)
	checkSum(t, rep)

	if ta := taskByID(t, rep, 1); ta.Phases[PhaseRestartStall] != 40*ms {
		t.Errorf("same executor: restart_stall = %v, want 40ms", ta.Phases[PhaseRestartStall])
	}
	if ta := taskByID(t, rep, 2); ta.Phases[PhaseRestartStall] != 0 {
		t.Errorf("other executor: restart_stall = %v, want 0", ta.Phases[PhaseRestartStall])
	}
	if ta := taskByID(t, rep, 3); ta.Phases[PhaseQueue] != 100*ms || ta.Phases[PhaseRestartStall] != 0 {
		t.Errorf("queue outranks restart: queue=%v restart=%v", ta.Phases[PhaseQueue], ta.Phases[PhaseRestartStall])
	}
}

// TestBreakdownJSONRoundTrip locks the canonical phase-object encoding
// and rejects unknown phase names on the way back in.
func TestBreakdownJSONRoundTrip(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)
	c.SetScope("rt")
	task := addTask(c, 1, "a", "x", "done", 0, 10*ms)
	c.AddSpan("htex", "run", "w", task, 0, 10*ms)
	rep := Analyze(c)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"host": 10000000`) {
		t.Fatalf("missing host entry in %s", buf.String())
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != 1 || back.Tasks[0].Phases != rep.Tasks[0].Phases {
		t.Fatalf("round trip mismatch: %+v vs %+v", back.Tasks, rep.Tasks)
	}

	var b Breakdown
	if err := b.UnmarshalJSON([]byte(`{"no_such_phase":1}`)); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

// TestWriteFolded locks the folded-stack line format and ordering.
func TestWriteFolded(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)
	c.SetScope("s")
	task := addTask(c, 1, "app", "ex", "done", 0, 30*ms)
	run := c.AddSpan("htex", "run", "w", task, 10*ms, 30*ms, obs.Int("gpu_pct", 25))
	c.AddSpan("simgpu", "k", "ctx", run, 10*ms, 30*ms)
	rep := Analyze(c)

	var buf bytes.Buffer
	if err := WriteFolded(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := "s;ex;app@25;compute 20000000\ns;ex;app@25;submit 10000000\n"
	if buf.String() != want {
		t.Fatalf("folded:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestParseSLOSpec(t *testing.T) {
	rules, err := ParseSLOSpec("llama:12s:0.9,load:30s:0.99:120s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	if rules[0].App != "llama" || rules[0].Latency != 12*time.Second ||
		rules[0].Target != 0.9 || rules[0].Window != DefaultSLOWindow {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Window != 120*time.Second {
		t.Errorf("rule 1 window = %v", rules[1].Window)
	}
	for _, bad := range []string{
		"", "x", "a:12s", "a:nope:0.9", "a:12s:1.5", "a:12s:0",
		"a:12s:0.9,a:5s:0.5", ":12s:0.9", "a:12s:0.9:zz",
	} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestMonitorAlertLifecycle drives task spans through a monitor and
// checks the alert window, counters, and the rendered alert stream.
func TestMonitorAlertLifecycle(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)
	c.SetScope("mon")
	rules := []Rule{{App: "a", Latency: 10 * ms, Target: 0.5, Window: time.Second}}
	m := NewMonitor(c, clk, rules)
	if m == nil {
		t.Fatal("nil monitor")
	}

	end := func(at time.Duration, dur time.Duration, status string) {
		clk.now = at
		addTask(c, int(at/ms), "a", "ex", status, at-dur, at)
	}
	end(100*ms, 5*ms, "done")  // good: burn 0
	end(200*ms, 50*ms, "done") // slow -> bad: (1/2)/0.5 = 1 -> alert
	end(300*ms, 60*ms, "failed")
	end(400*ms, 5*ms, "done") // 2/4 -> burn 1, still burning
	end(500*ms, 5*ms, "done") // 2/5 -> burn 0.8 < 1 -> clears

	// An app without a rule is ignored.
	clk.now = 700 * ms
	addTask(c, 99, "other", "ex", "failed", 600*ms, 700*ms)

	m.Close()
	if got := c.Metrics().Counter("slo_alerts_total", obs.L("app", "a")).Value(); got != 1 {
		t.Errorf("slo_alerts_total = %v, want 1", got)
	}
	if got := c.Metrics().Counter("slo_events_total", obs.L("app", "a"), obs.L("verdict", "bad")).Value(); got != 2 {
		t.Errorf("bad events = %v, want 2", got)
	}

	var alerts []obs.Span
	for _, s := range c.Spans() {
		if s.Cat == "slo" && s.Name == "burn" {
			alerts = append(alerts, s)
		}
	}
	if len(alerts) != 1 {
		t.Fatalf("alert spans = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Start != 200*ms || a.End != 500*ms || a.Attr("app") != "a" {
		t.Errorf("alert = [%v,%v] app=%q", a.Start, a.End, a.Attr("app"))
	}
	if leaked := c.CheckClosed(); len(leaked) != 0 {
		t.Errorf("monitor leaked open spans: %v", leaked)
	}

	var buf bytes.Buffer
	if err := WriteAlerts(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "mon app=a start=200ms end=500ms") {
		t.Errorf("alert stream: %q", buf.String())
	}
}

// TestMonitorCloseFlushesActiveAlert checks a still-burning alert is
// clamped to the clock at Close.
func TestMonitorCloseFlushesActiveAlert(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)
	m := NewMonitor(c, clk, []Rule{{App: "a", Latency: ms, Target: 0.5}})
	clk.now = 50 * ms
	addTask(c, 1, "a", "ex", "failed", 0, 50*ms)
	clk.now = 80 * ms
	m.Close()
	var got *obs.Span
	for _, s := range c.Spans() {
		if s.Cat == "slo" {
			s := s
			got = &s
		}
	}
	if got == nil || got.Start != 50*ms || got.End != 80*ms {
		t.Fatalf("flushed alert = %+v", got)
	}
}

func TestNewMonitorNil(t *testing.T) {
	if NewMonitor(nil, &tickClock{}, []Rule{{App: "a"}}) != nil {
		t.Error("nil collector should yield nil monitor")
	}
	var m *Monitor
	m.Close() // must not panic
}

// TestDiff locks the dominant-phase computation and JSON shape.
func TestDiff(t *testing.T) {
	mk := func(compute, kq time.Duration) *Report {
		r := &Report{}
		var b Breakdown
		b[PhaseCompute] = compute
		b[PhaseKernelQueue] = kq
		r.Tasks = append(r.Tasks, TaskAttribution{
			Task: 1, App: "a", StartNS: 0, EndNS: int64(compute + kq), Phases: b,
		})
		return r
	}
	a := mk(100*ms, 300*ms)
	b := mk(110*ms, 20*ms)
	d := Diff(a, b, "A", "B")
	if d.Dominant != "kernel_queue" {
		t.Errorf("dominant = %q, want kernel_queue", d.Dominant)
	}
	if d.DeltaNS != int64(130*ms-400*ms) {
		t.Errorf("delta = %d", d.DeltaNS)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dominant": "kernel_queue"`) {
		t.Errorf("json: %s", buf.String())
	}
	buf.Reset()
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<- dominant") {
		t.Errorf("text: %s", buf.String())
	}
}

// TestDiffEmpty: diffing empty reports must not divide by zero.
func TestDiffEmpty(t *testing.T) {
	d := Diff(&Report{}, &Report{}, "A", "B")
	if d.TasksA != 0 || d.TasksB != 0 || d.DeltaNS != 0 {
		t.Errorf("empty diff = %+v", d)
	}
}

func TestPhaseByName(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := PhaseByName(p.String())
		if !ok || got != p {
			t.Errorf("PhaseByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PhaseByName("nope"); ok {
		t.Error("unknown name resolved")
	}
	if Phase(-1).String() != "invalid" || NumPhases.String() != "invalid" {
		t.Error("out-of-range String")
	}
}
