package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// PhaseDelta compares one phase's mean per-task time between two runs.
type PhaseDelta struct {
	Phase   string `json:"phase"`
	ANS     int64  `json:"a_ns"`     // mean per-task ns in run A
	BNS     int64  `json:"b_ns"`     // mean per-task ns in run B
	DeltaNS int64  `json:"delta_ns"` // B - A
}

// DiffReport is the machine-readable result of comparing two
// attribution reports: per-phase deltas of mean per-task time, plus
// the dominant phase — the one explaining the largest share of the
// end-to-end latency gap.
type DiffReport struct {
	LabelA  string       `json:"label_a"`
	LabelB  string       `json:"label_b"`
	TasksA  int          `json:"tasks_a"`
	TasksB  int          `json:"tasks_b"`
	MeanANS int64        `json:"mean_a_ns"`
	MeanBNS int64        `json:"mean_b_ns"`
	DeltaNS int64        `json:"delta_ns"` // mean latency B - A
	Phases  []PhaseDelta `json:"phases"`
	// Dominant is the phase with the largest absolute delta.
	Dominant string `json:"dominant"`
}

// meanBreakdown returns the mean per-task phase vector and mean
// latency over all tasks in the report.
func meanBreakdown(r *Report) (phases [NumPhases]int64, mean int64, n int) {
	n = len(r.Tasks)
	if n == 0 {
		return
	}
	var sum [NumPhases]int64
	var total int64
	for i := range r.Tasks {
		t := &r.Tasks[i]
		for p, v := range t.Phases {
			sum[p] += int64(v)
		}
		total += t.EndNS - t.StartNS
	}
	for p := range sum {
		phases[p] = sum[p] / int64(n)
	}
	mean = total / int64(n)
	return
}

// Diff compares two attribution reports (B relative to A).
func Diff(a, b *Report, labelA, labelB string) *DiffReport {
	pa, ma, na := meanBreakdown(a)
	pb, mb, nb := meanBreakdown(b)
	d := &DiffReport{
		LabelA: labelA, LabelB: labelB,
		TasksA: na, TasksB: nb,
		MeanANS: ma, MeanBNS: mb, DeltaNS: mb - ma,
	}
	var domAbs int64 = -1
	for p := Phase(0); p < NumPhases; p++ {
		pd := PhaseDelta{Phase: p.String(), ANS: pa[p], BNS: pb[p], DeltaNS: pb[p] - pa[p]}
		d.Phases = append(d.Phases, pd)
		abs := pd.DeltaNS
		if abs < 0 {
			abs = -abs
		}
		// Strictly-greater keeps the earliest phase on ties, which is
		// deterministic because the phase order is fixed.
		if abs > domAbs {
			domAbs, d.Dominant = abs, pd.Phase
		}
	}
	return d
}

// WriteJSON writes the diff as indented JSON.
func (d *DiffReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText renders the diff as a table of per-phase mean milliseconds
// with the dominant phase called out.
func (d *DiffReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace diff: %s (A, %d tasks) vs %s (B, %d tasks)\n",
		d.LabelA, d.TasksA, d.LabelB, d.TasksB)
	fmt.Fprintf(bw, "mean latency: A %.1f ms, B %.1f ms, delta %+.1f ms\n\n",
		float64(d.MeanANS)/1e6, float64(d.MeanBNS)/1e6, float64(d.DeltaNS)/1e6)
	fmt.Fprintf(bw, "%-14s %12s %12s %12s\n", "phase", "A_ms", "B_ms", "delta_ms")
	for _, p := range d.Phases {
		marker := ""
		if p.Phase == d.Dominant {
			marker = "  <- dominant"
		}
		fmt.Fprintf(bw, "%-14s %12.1f %12.1f %+12.1f%s\n",
			p.Phase, float64(p.ANS)/1e6, float64(p.BNS)/1e6, float64(p.DeltaNS)/1e6, marker)
	}
	return bw.Flush()
}
