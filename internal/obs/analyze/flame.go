package analyze

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteFolded emits the report as pprof-style folded stacks, one line
// per stack with a virtual-nanosecond weight:
//
//	scope;executor;app;phase <ns>
//
// The format is what flamegraph.pl, speedscope, and `pprof -http`
// (via conversion) consume. Frames with an SM budget annotate the app
// frame (app@40). Zero-weight stacks are omitted; lines are sorted
// lexicographically so the artifact is byte-stable.
func WriteFolded(w io.Writer, r *Report) error {
	weights := make(map[string]int64)
	for i := range r.Tasks {
		t := &r.Tasks[i]
		app := t.App
		if t.GPUPct != "" {
			app += "@" + t.GPUPct
		}
		executor := t.Executor
		if executor == "" {
			executor = "-"
		}
		prefix := t.Scope + ";" + executor + ";" + app + ";"
		for p, v := range t.Phases {
			if v > 0 {
				weights[prefix+Phase(p).String()] += int64(v)
			}
		}
	}
	stacks := make([]string, 0, len(weights))
	for s := range weights {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	bw := bufio.NewWriter(w)
	for _, s := range stacks {
		fmt.Fprintf(bw, "%s %d\n", s, weights[s])
	}
	return bw.Flush()
}
