package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// MarshalJSON renders the breakdown as an object with one integer
// nanosecond entry per phase, in canonical phase order. The encoding
// is hand-built (no map iteration) so artifacts are byte-stable.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, v := range b {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:%d", Phase(i).String(), int64(v))
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON reads the object form written by MarshalJSON. Unknown
// phase names are rejected so version skew between two diffed
// artifacts is an error, not silent data loss.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*b = Breakdown{}
	for name, ns := range m {
		p, ok := PhaseByName(name)
		if !ok {
			return fmt.Errorf("analyze: unknown phase %q", name)
		}
		b[p] = time.Duration(ns)
	}
	return nil
}

// WriteJSON writes the report as indented JSON, the machine-readable
// attribution artifact consumed by tracediff.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport parses an attribution artifact written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// WriteText renders the blame profiles as a human-readable table: one
// row per group, one column per phase, values in milliseconds of mean
// per-task time.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-28s %-16s %5s %9s %9s %9s", "scope", "app", "tasks", "mean_ms", "p95_ms", "p99_ms")
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(bw, " %12s", p.String())
	}
	fmt.Fprintln(bw)
	for i := range r.Groups {
		g := &r.Groups[i]
		app := g.App
		if g.GPUPct != "" {
			app += "@" + g.GPUPct
		}
		fmt.Fprintf(bw, "%-28s %-16s %5d %9.1f %9.1f %9.1f",
			g.Scope, app, g.Tasks,
			float64(g.MeanNS)/1e6, float64(g.P95NS)/1e6, float64(g.P99NS)/1e6)
		for _, v := range g.Phases {
			mean := 0.0
			if g.Tasks > 0 {
				mean = float64(v) / float64(g.Tasks) / 1e6
			}
			fmt.Fprintf(bw, " %12.1f", mean)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
