package analyze

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// Rule is one latency objective: at least Target fraction of an app's
// tasks inside any sliding Window must complete successfully within
// Latency (all on the virtual clock).
type Rule struct {
	App     string
	Latency time.Duration
	Target  float64       // e.g. 0.95
	Window  time.Duration // sliding window; DefaultSLOWindow if zero
}

// DefaultSLOWindow is the sliding window used when a rule omits one.
const DefaultSLOWindow = 60 * time.Second

// ParseSLOSpec parses a comma-separated list of rules, each
// "<app>:<latency>:<target>[:<window>]", e.g.
// "llama-complete:12s:0.9,llama-load:30s:0.99:120s".
func ParseSLOSpec(spec string) ([]Rule, error) {
	var rules []Rule
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("slo: %q: want app:latency:target[:window]", part)
		}
		r := Rule{App: fields[0], Window: DefaultSLOWindow}
		if r.App == "" {
			return nil, fmt.Errorf("slo: %q: empty app", part)
		}
		if seen[r.App] {
			return nil, fmt.Errorf("slo: duplicate rule for app %q", r.App)
		}
		seen[r.App] = true
		var err error
		if r.Latency, err = time.ParseDuration(fields[1]); err != nil || r.Latency <= 0 {
			return nil, fmt.Errorf("slo: %q: bad latency %q", part, fields[1])
		}
		if _, err = fmt.Sscanf(fields[2], "%g", &r.Target); err != nil || r.Target <= 0 || r.Target >= 1 {
			return nil, fmt.Errorf("slo: %q: target must be in (0,1)", part)
		}
		if len(fields) == 4 {
			if r.Window, err = time.ParseDuration(fields[3]); err != nil || r.Window <= 0 {
				return nil, fmt.Errorf("slo: %q: bad window %q", part, fields[3])
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("slo: empty spec")
	}
	return rules, nil
}

// sloEvent is one terminal task outcome inside the sliding window.
type sloEvent struct {
	at  time.Duration
	bad bool
}

// sloSeriesCap bounds the per-app tsdb event series backing a
// db-based sliding window. A window holding more events than this is
// clipped (and counted in slo_window_clipped_total); size it above the
// densest window the scenario produces.
var sloSeriesCap = 1 << 16

// appState tracks one rule's sliding window and active alert. The
// window lives either in the in-memory events list (classic mode) or
// in a tsdb event series (when the monitor is db-backed); the alert
// state machine is identical in both.
type appState struct {
	rule   Rule
	events []sloEvent
	head   int // index of the oldest live event
	bad    int

	evSeries   *tsdb.Series // per-task outcomes (0 good / 1 bad)
	burnSeries *tsdb.Series // burn rate after each event
	alert      *tsdb.Alert  // db mode: the engine-backed "slo-burn" rule

	// Classic (list-backed) mode keeps the inline state machine; db
	// mode delegates it to the tsdb alert engine.
	alertActive bool
	alertStart  time.Duration
	alertEvents int
	peakBurn    float64
}

// Monitor evaluates SLO burn rates live over the span stream. It is
// read-only with respect to the simulation: it never schedules events
// and does not steer the repartitioning controller. Alert windows are
// recorded retroactively (AddSpan at clear time) so the monitor never
// leaves spans open; burn events and alert counts flow through the
// collector's metrics registry.
type Monitor struct {
	c     *obs.Collector
	clk   obs.Clock
	apps  map[string]*appState
	order []string
}

// NewMonitor attaches a monitor for the given rules to the collector's
// span stream. A nil collector yields a nil (no-op) monitor.
func NewMonitor(c *obs.Collector, clk obs.Clock, rules []Rule) *Monitor {
	if c == nil || len(rules) == 0 {
		return nil
	}
	m := &Monitor{c: c, clk: clk, apps: make(map[string]*appState)}
	for _, r := range rules {
		if r.Window <= 0 {
			r.Window = DefaultSLOWindow
		}
		m.apps[r.App] = &appState{rule: r}
		m.order = append(m.order, r.App)
	}
	c.OnSpanEnd(m.onSpan)
	return m
}

// NewMonitorTSDB attaches a monitor whose sliding windows live in db
// event series instead of in-memory lists: per app, "slo:events"
// records each terminal task outcome (0 good, 1 bad) at its end time
// and "slo:burn" the burn rate after it. Alert semantics are identical
// to NewMonitor — the burn fraction is just computed from windowed
// series queries — but the signal becomes queryable while the run is
// live (db.Latest("slo:burn", ...) is the reusable control input for
// autoscalers and the HTTP plane). A nil db yields a classic monitor.
func NewMonitorTSDB(c *obs.Collector, clk obs.Clock, rules []Rule, db *tsdb.DB) *Monitor {
	m := NewMonitor(c, clk, rules)
	if m == nil || db == nil {
		return m
	}
	for _, app := range m.order {
		app := app
		st := m.apps[app]
		st.evSeries = db.EventSeries("slo:events", sloSeriesCap, obs.L("app", app))
		st.burnSeries = db.EventSeries("slo:burn", sloSeriesCap, obs.L("app", app))
		// The alert state machine is the engine's: an event-driven rule
		// (no Series, no For — fire on the first burn >= 1, resolve on
		// the first burn < 1) fed each per-task burn value at its event
		// time. The OnEvent hook reproduces the classic monitor's side
		// effects — slo_alerts_total on firing, the retroactive slo/burn
		// span on resolution — so the alert stream stays byte-equal
		// while the pending/firing state, alert:state series, and
		// incident history become queryable live.
		st.alert = db.AddAlert(tsdb.AlertRule{
			Name:      "slo-burn",
			Labels:    []obs.Label{obs.L("app", app)},
			Threshold: 1,
			OnEvent: func(ev tsdb.AlertEvent) {
				switch {
				case ev.State == tsdb.AlertFiring:
					m.c.Metrics().Counter("slo_alerts_total", obs.L("app", app)).Inc()
				case ev.Incident != nil:
					m.c.AddSpan("slo", "burn", "slo:"+app, 0, ev.Incident.Start, ev.Incident.End,
						obs.String("app", app),
						obs.Float("peak_burn", ev.Incident.Peak),
						obs.Int("events", ev.Incident.Evals),
					)
				}
			},
		})
	}
	return m
}

// burn returns the current burn rate: the fraction of the error
// budget (1-target) consumed by the window's bad fraction. burn >= 1
// means the objective is being violated.
func (st *appState) burn() float64 {
	n := len(st.events) - st.head
	if n == 0 {
		return 0
	}
	badFrac := float64(st.bad) / float64(n)
	return badFrac / (1 - st.rule.Target)
}

// record adds one terminal outcome at its event time, evicting
// anything that fell out of the sliding window, and reports whether
// the window is still complete (a clipped tsdb ring degrades burn to
// an estimate over what's retained).
func (st *appState) record(at time.Duration, bad bool) (complete bool) {
	if st.evSeries != nil {
		v := 0.0
		if bad {
			v = 1
		}
		st.evSeries.Append(at, v)
		_, complete = st.evSeries.CountSince(at - st.rule.Window)
		return complete
	}
	st.events = append(st.events, sloEvent{at: at, bad: bad})
	if bad {
		st.bad++
	}
	cutoff := at - st.rule.Window
	for st.head < len(st.events) && st.events[st.head].at < cutoff {
		if st.events[st.head].bad {
			st.bad--
		}
		st.head++
	}
	if st.head > 0 && st.head == len(st.events) {
		st.events = st.events[:0]
		st.head = 0
	}
	return true
}

// burnAt returns the burn rate over the window ending at the given
// event time. In db-backed mode the bad count is a windowed sum of
// 0/1 samples — exact integers, so the quotient is bit-identical to
// the list computation over the same events.
func (st *appState) burnAt(at time.Duration) float64 {
	if st.evSeries == nil {
		return st.burn()
	}
	n, _ := st.evSeries.CountSince(at - st.rule.Window)
	if n == 0 {
		return 0
	}
	badFrac := st.evSeries.SumSince(at-st.rule.Window) / float64(n)
	return badFrac / (1 - st.rule.Target)
}

func (m *Monitor) onSpan(s obs.Span) {
	if s.Cat != "dfk" || s.Name != "task" {
		return
	}
	st, ok := m.apps[s.Attr("app")]
	if !ok {
		return
	}
	// Shed tasks are admission-control availability loss, counted in
	// faas_tasks_shed_total; they are not latency-SLO events. Folding
	// them into the burn signal would make shedding self-sustaining:
	// sheds raise burn, burn sustains shedding.
	if s.Attr("status") == "shed" {
		return
	}
	good := s.Attr("status") == "done" && s.Duration() <= st.rule.Latency
	verdict := "good"
	if !good {
		verdict = "bad"
	}
	m.c.Metrics().Counter("slo_events_total", obs.L("app", st.rule.App), obs.L("verdict", verdict)).Inc()
	if complete := st.record(s.End, !good); !complete {
		m.c.Metrics().Counter("slo_window_clipped_total", obs.L("app", st.rule.App)).Inc()
	}
	burn := st.burnAt(s.End)
	st.burnSeries.Append(s.End, burn)
	if st.alert != nil {
		st.alert.Observe(s.End, burn)
		return
	}
	switch {
	case burn >= 1 && !st.alertActive:
		st.alertActive = true
		st.alertStart = s.End
		st.alertEvents = 1
		st.peakBurn = burn
		m.c.Metrics().Counter("slo_alerts_total", obs.L("app", st.rule.App)).Inc()
	case st.alertActive && burn >= 1:
		st.alertEvents++
		if burn > st.peakBurn {
			st.peakBurn = burn
		}
	case st.alertActive && burn < 1:
		m.emitAlert(st, s.End)
	}
}

// emitAlert records the completed alert window as a retroactive span.
func (m *Monitor) emitAlert(st *appState, end time.Duration) {
	m.c.AddSpan("slo", "burn", "slo:"+st.rule.App, 0, st.alertStart, end,
		obs.String("app", st.rule.App),
		obs.Float("peak_burn", st.peakBurn),
		obs.Int("events", st.alertEvents),
	)
	st.alertActive = false
	st.alertEvents = 0
	st.peakBurn = 0
}

// Close flushes alert windows still burning at run end, clamped to the
// current virtual time. Safe on a nil monitor.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	now := m.clk.Now()
	for _, app := range m.order {
		st := m.apps[app]
		if st.alert != nil {
			st.alert.Resolve(now)
			continue
		}
		if st.alertActive {
			m.emitAlert(st, now)
		}
	}
}

// WriteAlerts renders every recorded SLO alert window as one text line
// per alert, in collector order then emission order — the
// deterministic "alert stream" artifact.
func WriteAlerts(w io.Writer, collectors ...*obs.Collector) error {
	bw := bufio.NewWriter(w)
	for _, c := range collectors {
		if c == nil {
			continue
		}
		scope := c.Scope()
		for _, s := range c.Spans() {
			if s.Cat != "slo" || s.Name != "burn" {
				continue
			}
			fmt.Fprintf(bw, "%s app=%s start=%s end=%s peak_burn=%s events=%s\n",
				scope, s.Attr("app"), s.Start, s.End, s.Attr("peak_burn"), s.Attr("events"))
		}
	}
	return bw.Flush()
}
