package analyze

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// TestMonitorTSDBMatchesClassic replays one deterministic task-outcome
// stream — two apps, latency-violation bursts that raise and clear
// alerts several times, a pseudo-random sprinkle of failures — through
// the classic list-backed monitor and the tsdb-backed one, and
// requires byte-identical alert streams. The burn fraction in db mode
// is a windowed sum of 0/1 samples over the same events, so the floats
// (and therefore every alert boundary and peak) must match exactly.
func TestMonitorTSDBMatchesClassic(t *testing.T) {
	rules := []Rule{
		{App: "llama", Latency: 10 * ms, Target: 0.9, Window: time.Second},
		{App: "resnet", Latency: 20 * ms, Target: 0.8, Window: 2 * time.Second},
	}

	clk1, clk2 := &tickClock{}, &tickClock{}
	c1, c2 := obs.New(clk1), obs.New(clk2)
	c1.SetScope("unit")
	c2.SetScope("unit")
	m1 := NewMonitor(c1, clk1, rules)
	db := tsdb.New(c2.Metrics(), clk2, tsdb.Config{})
	m2 := NewMonitorTSDB(c2, clk2, rules, db)

	// xorshift-ish LCG for a reproducible failure sprinkle.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	emit := func(id int, app string, start, end time.Duration, status string) {
		for _, c := range []*obs.Collector{c1, c2} {
			c.AddSpan("dfk", "task", "task", 0, start, end,
				obs.Int("task", id),
				obs.String("app", app),
				obs.String("executor", "htex-gpu"),
				obs.String("status", status),
			)
		}
	}
	id := 0
	for i := 0; i < 1200; i++ {
		at := time.Duration(i) * 10 * ms // one task per app every 10ms
		// llama: latency bursts in [2s,3s) and [6s,7s).
		d := 5 * ms
		if (at >= 2*time.Second && at < 3*time.Second) || (at >= 6*time.Second && at < 7*time.Second) {
			d = 50 * ms
		}
		status := "done"
		if next()%97 == 0 {
			status = "failed"
		}
		emit(id, "llama", at, at+d, status)
		id++
		// resnet: a single long failure plateau in [4s,5.5s).
		d = 10 * ms
		if at >= 4*time.Second && at < 5500*ms {
			d = 80 * ms
		}
		emit(id, "resnet", at, at+d, "done")
		id++
	}
	endAt := 1200 * 10 * ms
	clk1.now, clk2.now = endAt, endAt
	m1.Close()
	m2.Close()

	var a1, a2 bytes.Buffer
	if err := WriteAlerts(&a1, c1); err != nil {
		t.Fatalf("WriteAlerts classic: %v", err)
	}
	if err := WriteAlerts(&a2, c2); err != nil {
		t.Fatalf("WriteAlerts tsdb: %v", err)
	}
	if a1.Len() == 0 {
		t.Fatal("no alerts in the classic stream — the scenario must exercise the state machine")
	}
	if n := bytes.Count(a1.Bytes(), []byte("\n")); n < 3 {
		t.Fatalf("want >= 3 alert windows across apps, got %d:\n%s", n, a1.Bytes())
	}
	if !bytes.Equal(a1.Bytes(), a2.Bytes()) {
		t.Fatalf("alert streams differ:\nclassic:\n%s\ntsdb:\n%s", a1.Bytes(), a2.Bytes())
	}

	// The db-backed monitor leaves a queryable control signal behind.
	if s, ok := db.Latest("slo:burn", obs.L("app", "llama")); !ok {
		t.Fatal("slo:burn series not recorded")
	} else if s.T <= 0 {
		t.Fatalf("slo:burn latest at %v", s.T)
	}
	if n, _ := db.EventSeries("slo:events", 0, obs.L("app", "llama")).CountSince(0); n != 1200 {
		t.Fatalf("slo:events retained %d samples, want 1200", n)
	}
}

// TestMonitorTSDBWindowClipping shrinks the event-series capacity so
// the sliding window outgrows the ring, and checks the degradation is
// surfaced on the clip counter rather than silent.
func TestMonitorTSDBWindowClipping(t *testing.T) {
	prev := sloSeriesCap
	sloSeriesCap = 8
	defer func() { sloSeriesCap = prev }()

	clk := &tickClock{}
	c := obs.New(clk)
	db := tsdb.New(c.Metrics(), clk, tsdb.Config{})
	rules := []Rule{{App: "llama", Latency: 10 * ms, Target: 0.9, Window: time.Second}}
	if m := NewMonitorTSDB(c, clk, rules, db); m == nil {
		t.Fatal("nil monitor")
	}
	for i := 0; i < 32; i++ {
		at := time.Duration(i) * ms // all 32 events inside one window, ring holds 8
		c.AddSpan("dfk", "task", "task", 0, at, at+5*ms,
			obs.Int("task", i), obs.String("app", "llama"),
			obs.String("executor", "htex-gpu"), obs.String("status", "done"))
	}
	clipped := c.Metrics().Counter("slo_window_clipped_total", obs.L("app", "llama")).Value()
	if clipped == 0 {
		t.Fatal("ring overflow inside the window did not count as clipped")
	}
}
