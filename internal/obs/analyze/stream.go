package analyze

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// sweepEvery is how many arrived spans separate evidence-eviction
// sweeps. Sweeps are O(retained evidence), so amortized cost per span
// is constant.
const sweepEvery = 4096

// Streamer is the incremental counterpart of Analyze for one
// collector: it consumes the span stream through OnSpanStart/OnSpanEnd
// hooks and attributes each task as soon as its evidence is complete,
// evicting evidence that can no longer overlap any open task window.
// Memory is bounded by concurrently open tasks plus the eviction
// window instead of by run length, while the resulting Report is
// byte-identical to the snapshot path:
//
//   - evidence lists are re-sorted by span ID before each attribution,
//     reproducing the snapshot's ID-ordered interval assembly;
//   - tasks ending inside an open executor restart window are deferred
//     until the restart span is recorded, so retroactive restart
//     evidence is never missed;
//   - attributed tasks are sorted by task-span ID in Finish, restoring
//     the snapshot's emission-order output regardless of completion
//     order.
//
// Build one Streamer per collector before the run, then merge them in
// collector order with BuildReport. Tasks still open when Finish runs
// are not attributed (the snapshot path clamps them instead); real
// runs complete every task before export. SLO alert spans are cached
// (they are not evicted — alert streams are tiny) for
// WriteAlertsStreamed.
type Streamer struct {
	c  *obs.Collector
	a  *analyzer
	id int // collector position, for deterministic merge order

	tasks    []TaskAttribution
	taskIDs  []obs.SpanID // parallel to tasks: sort key for Finish
	deferred []*obs.Span  // ended tasks waiting for an open restart

	openTasks    map[obs.SpanID]time.Duration // open task span -> start
	openSpans    map[obs.SpanID]struct{}      // all open spans (children-index guard)
	openRestarts map[obs.SpanID]obs.Span      // open restart spans, as started

	alerts []obs.Span

	added    int
	lastEnd  time.Duration
	finished bool
}

// NewStreamer attaches a streamer to the collector's span hooks. A nil
// collector yields a nil (no-op) streamer. Attach before the run
// starts; evidence already flushed by a sink cannot be recovered.
func NewStreamer(c *obs.Collector) *Streamer {
	if c == nil {
		return nil
	}
	st := &Streamer{
		c:            c,
		a:            newAnalyzer(),
		openTasks:    make(map[obs.SpanID]time.Duration),
		openSpans:    make(map[obs.SpanID]struct{}),
		openRestarts: make(map[obs.SpanID]obs.Span),
	}
	c.OnSpanStart(st.onStart)
	c.OnSpanEnd(st.onEnd)
	return st
}

func (st *Streamer) onStart(s obs.Span) {
	if st.finished {
		return
	}
	st.openSpans[s.ID] = struct{}{}
	switch {
	case s.Cat == "dfk" && s.Name == "task":
		st.openTasks[s.ID] = s.Start
	case s.Cat == "htex" && s.Name == "restart":
		st.openRestarts[s.ID] = s
	}
}

func (st *Streamer) onEnd(s obs.Span) {
	if st.finished {
		return
	}
	delete(st.openSpans, s.ID)
	if s.End > st.lastEnd {
		st.lastEnd = s.End
	}
	if s.Cat == "slo" && s.Name == "burn" {
		st.alerts = append(st.alerts, s)
		return
	}
	// Only spans that can be attribution evidence are copied to the
	// heap; everything else (fault injections, repart decisions, daemon
	// lifecycles) passes through untouched — mirroring what the
	// snapshot analyzer ignores.
	if !evidenceSpan(&s) {
		return
	}
	cp := new(obs.Span)
	*cp = s
	isTask := st.a.addEvidence(cp)
	switch {
	case isTask:
		delete(st.openTasks, s.ID)
		if st.restartOpenFor(cp.Attr("executor")) {
			st.deferred = append(st.deferred, cp)
		} else {
			st.attribute(cp)
		}
	case s.Cat == "htex" && s.Name == "restart":
		delete(st.openRestarts, s.ID)
		st.drainDeferred()
	}
	st.added++
	if st.added >= sweepEvery {
		st.sweep()
	}
}

// evidenceSpan reports whether the snapshot analyzer would index this
// span: a task, restart, init, or run span, or any child span (device
// activity under runs, queue waits under tasks).
func evidenceSpan(s *obs.Span) bool {
	if s.Parent != 0 {
		return true
	}
	if s.Cat == "dfk" && s.Name == "task" {
		return true
	}
	return s.Cat == "htex" && (s.Name == "restart" || s.Name == "init" || s.Name == "run")
}

// restartOpenFor reports whether any open restart window matches the
// executor filter attributeTask applies to restart evidence.
func (st *Streamer) restartOpenFor(executor string) bool {
	for _, r := range st.openRestarts {
		if ex := r.Attr("executor"); ex == "" || executor == "" || ex == executor {
			return true
		}
	}
	return false
}

// drainDeferred attributes deferred tasks whose matching restart
// windows have all closed (their restart spans are now evidence).
func (st *Streamer) drainDeferred() {
	kept := st.deferred[:0]
	for _, t := range st.deferred {
		if st.restartOpenFor(t.Attr("executor")) {
			kept = append(kept, t)
		} else {
			st.attribute(t)
		}
	}
	st.deferred = kept
}

func (st *Streamer) attribute(t *obs.Span) {
	st.sortEvidence(t)
	ta := st.a.attributeTask(t)
	st.tasks = append(st.tasks, ta)
	st.taskIDs = append(st.taskIDs, t.ID)
	delete(st.a.children, t.ID)
}

// sortEvidence restores snapshot (span-ID) order on every index list
// this task's attribution will read. Streaming arrival order is
// end-time order; the snapshot path assembles intervals in ID order,
// and interval order decides equal-priority ties, so the lists must
// match before attributeTask runs. Run-interval memos are computed on
// first use, so a run's child list is sorted before it is memoized.
func (st *Streamer) sortEvidence(t *obs.Span) {
	a := st.a
	sortSpansByID(a.restarts)
	sortSpansByID(a.inits)
	kids := a.children[t.ID]
	sortSpansByID(kids)
	for _, ch := range kids {
		switch {
		case ch.Cat == "htex" && ch.Name == "queue":
			w := ch.Attr("worker")
			if w == "" {
				continue
			}
			runs := a.runsByTrack[w]
			sortSpansByID(runs)
			for _, run := range runs {
				if _, done := a.runIvs[run.ID]; !done {
					sortSpansByID(a.children[run.ID])
				}
			}
		case ch.Cat == "htex" && ch.Name == "run":
			if _, done := a.runIvs[ch.ID]; !done {
				sortSpansByID(a.children[ch.ID])
			}
		}
	}
}

func sortSpansByID(spans []*obs.Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
}

// threshold is the eviction horizon: evidence ending before it cannot
// overlap any open or deferred task window (queue waits and blocking
// runs relevant to a task all end at or after the task starts), nor
// any future task (whose window starts later still).
func (st *Streamer) threshold() time.Duration {
	thr := st.lastEnd
	for _, start := range st.openTasks {
		if start < thr {
			thr = start
		}
	}
	for _, t := range st.deferred {
		if t.Start < thr {
			thr = t.Start
		}
	}
	return thr
}

// sweep evicts evidence older than the threshold: restart/init/run
// spans whose windows ended before any live task started, the interval
// memos of evicted runs, and children lists whose parent is neither a
// live (open or deferred) span nor a retained run.
func (st *Streamer) sweep() {
	st.added = 0
	thr := st.threshold()
	st.a.restarts = filterSpans(st.a.restarts, thr)
	st.a.inits = filterSpans(st.a.inits, thr)
	retained := make(map[obs.SpanID]struct{})
	for track, runs := range st.a.runsByTrack {
		kept := filterSpans(runs, thr)
		if len(kept) == 0 {
			delete(st.a.runsByTrack, track)
		} else {
			st.a.runsByTrack[track] = kept
		}
		for _, r := range kept {
			retained[r.ID] = struct{}{}
		}
	}
	for id := range st.a.runIvs {
		if _, ok := retained[id]; !ok {
			delete(st.a.runIvs, id)
		}
	}
	deferredSet := make(map[obs.SpanID]struct{}, len(st.deferred))
	for _, t := range st.deferred {
		deferredSet[t.ID] = struct{}{}
	}
	for pid := range st.a.children {
		if _, ok := st.openSpans[pid]; ok {
			continue
		}
		if _, ok := deferredSet[pid]; ok {
			continue
		}
		if _, ok := retained[pid]; ok {
			continue
		}
		delete(st.a.children, pid)
	}
}

func filterSpans(spans []*obs.Span, thr time.Duration) []*obs.Span {
	kept := spans[:0]
	for _, s := range spans {
		if s.End >= thr {
			kept = append(kept, s)
		}
	}
	return kept
}

// Finish completes the stream: still-open restart windows are clamped
// to the current virtual time and added as evidence (exactly what a
// Spans() snapshot would contain), remaining deferred tasks are
// attributed, every task gets the collector's (possibly just-assigned)
// scope, and the output is sorted back into span-ID order. Idempotent;
// BuildReport calls it automatically.
func (st *Streamer) Finish() {
	if st == nil || st.finished {
		return
	}
	st.finished = true
	now := st.c.Now()
	ids := make([]obs.SpanID, 0, len(st.openRestarts))
	for id := range st.openRestarts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := st.openRestarts[id]
		r.End = now
		if r.End < r.Start {
			r.End = r.Start
		}
		cp := new(obs.Span)
		*cp = r
		st.a.addEvidence(cp)
	}
	for _, t := range st.deferred {
		st.attribute(t)
	}
	st.deferred = nil
	scope := st.c.Scope()
	for i := range st.tasks {
		st.tasks[i].Scope = scope
	}
	sort.Sort(byTaskID{st})
}

// byTaskID sorts the attributed tasks (and their parallel ID keys)
// back into span-ID order.
type byTaskID struct{ st *Streamer }

func (b byTaskID) Len() int { return len(b.st.tasks) }
func (b byTaskID) Less(i, j int) bool {
	return b.st.taskIDs[i] < b.st.taskIDs[j]
}
func (b byTaskID) Swap(i, j int) {
	b.st.tasks[i], b.st.tasks[j] = b.st.tasks[j], b.st.tasks[i]
	b.st.taskIDs[i], b.st.taskIDs[j] = b.st.taskIDs[j], b.st.taskIDs[i]
}

// BuildReport finishes the streamers and merges their attributions in
// argument order — the same collector order Analyze takes — yielding a
// Report byte-identical to the snapshot path for the same run.
func BuildReport(streamers ...*Streamer) *Report {
	rep := &Report{}
	for _, st := range streamers {
		if st == nil {
			continue
		}
		st.Finish()
		rep.Tasks = append(rep.Tasks, st.tasks...)
	}
	rep.buildGroups()
	return rep
}

// WriteAlertsStreamed renders the SLO alert stream from streamers (the
// alert spans a streaming collector has already flushed to its sink),
// in the same format and order as WriteAlerts over snapshots.
func WriteAlertsStreamed(w io.Writer, streamers ...*Streamer) error {
	bw := bufio.NewWriter(w)
	for _, st := range streamers {
		if st == nil {
			continue
		}
		scope := st.c.Scope()
		for _, s := range st.alerts {
			fmt.Fprintf(bw, "%s app=%s start=%s end=%s peak_burn=%s events=%s\n",
				scope, s.Attr("app"), s.Start, s.End, s.Attr("peak_burn"), s.Attr("events"))
		}
	}
	return bw.Flush()
}
