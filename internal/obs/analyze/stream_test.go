package analyze

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

// liveRun drives one synthetic "live" instrumentation sequence against
// the collector: spans are opened and closed in the order a real
// platform run produces them (children complete before their task
// ends, device activity is recorded retroactively while the run span
// is open). Calling it twice with fresh collectors yields identical
// streams, so snapshot and streaming analysis can be compared across
// two runs.
func liveRun(c *obs.Collector, clk *tickClock) {
	// Two workers with init windows; worker spans stay open (daemons).
	w0 := c.StartSpan("htex", "worker", "w0", 0, obs.String("executor", "ex"))
	c.PinSpan(w0)
	w1 := c.StartSpan("htex", "worker", "w1", 0, obs.String("executor", "ex"))
	c.PinSpan(w1)
	c.AddSpan("htex", "init", "w0", w0, 0, 40*ms)

	// Task 1 on w0: queue overlapping init, run with device activity.
	clk.now = 10 * ms
	t1 := c.StartSpan("dfk", "task", "task/1", 0,
		obs.Int("task", 1), obs.String("app", "llama"),
		obs.String("executor", "ex"))
	q1 := c.StartSpan("htex", "queue", "task/1", t1)
	clk.now = 60 * ms
	c.EndSpan(q1, obs.String("worker", "w0"))
	r1 := c.StartSpan("htex", "run", "w0", t1, obs.Int("gpu_pct", 40))
	c.AddSpan("htex", "ctxinit", "w0", r1, 60*ms, 70*ms)
	c.AddSpan("simgpu", "xfer", "ctx", r1, 70*ms, 100*ms, obs.String("tag", "weights"))
	clk.now = 190 * ms
	c.AddSpan("simgpu", "decode", "ctx", r1, 140*ms, 190*ms, obs.Dur("queue_ns", 30*ms))
	clk.now = 200 * ms
	c.EndSpan(r1)
	c.EndSpan(t1, obs.String("status", "done"))

	// Task 2 queued on w0 while task 1's run blocked it: queue time is
	// critical-path-reattributed along task 1's run phases.
	clk.now = 220 * ms
	t2 := c.StartSpan("dfk", "task", "task/2", 0,
		obs.Int("task", 2), obs.String("app", "llama"),
		obs.String("executor", "ex"))
	q2 := c.StartSpan("htex", "queue", "task/2", t2)
	clk.now = 240 * ms
	c.EndSpan(q2, obs.String("worker", "w0"))
	r2 := c.StartSpan("htex", "run", "w0", t2)
	clk.now = 300 * ms
	c.EndSpan(r2)
	c.EndSpan(t2, obs.String("status", "done"))

	// An executor restart window overlapping task 3's completion: the
	// task ends mid-restart, so streaming attribution must defer it
	// until the restart span exists.
	clk.now = 310 * ms
	t3 := c.StartSpan("dfk", "task", "task/3", 0,
		obs.Int("task", 3), obs.String("app", "bert"),
		obs.String("executor", "ex"))
	rs := c.StartSpan("htex", "restart", "ex", 0, obs.String("executor", "ex"))
	clk.now = 330 * ms
	c.EndSpan(t3, obs.String("status", "failed"))
	clk.now = 350 * ms
	c.EndSpan(rs)

	// Task 4 ends while a restart window is still open at Finish time.
	clk.now = 360 * ms
	t4 := c.StartSpan("dfk", "task", "task/4", 0,
		obs.Int("task", 4), obs.String("app", "bert"),
		obs.String("executor", "ex"))
	rs2 := c.StartSpan("htex", "restart", "ex", 0, obs.String("executor", "ex"))
	clk.now = 380 * ms
	c.EndSpan(t4, obs.String("status", "failed"))
	clk.now = 400 * ms
	_ = rs2 // left open: Finish must clamp it, like a snapshot would
}

// TestStreamerMatchesSnapshot locks the core streaming contract: the
// incremental Report is byte-identical to the snapshot path for the
// same span stream, including deferred-restart and clamped-open-
// restart tasks.
func TestStreamerMatchesSnapshot(t *testing.T) {
	snapClk := &tickClock{}
	snap := obs.New(snapClk)
	snap.SetScope("cell")
	liveRun(snap, snapClk)
	want := Analyze(snap)

	strClk := &tickClock{}
	c := obs.New(strClk)
	st := NewStreamer(c)
	liveRun(c, strClk)
	c.SetScope("cell") // scopes are assigned after the run, like report does
	got := BuildReport(st)

	var wb, gb bytes.Buffer
	if err := want.WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("streamed report differs from snapshot report:\nsnapshot: %s\nstreamed: %s", wb.String(), gb.String())
	}
	if len(got.Tasks) != 4 {
		t.Fatalf("want 4 tasks, got %d", len(got.Tasks))
	}
}

// TestStreamerEviction drives enough short tasks through a streamer to
// trigger several eviction sweeps and checks that evidence retention
// stays bounded while attributions remain exact.
func TestStreamerEviction(t *testing.T) {
	clk := &tickClock{}
	c := obs.New(clk)
	c.SetScope("evict")
	st := NewStreamer(c)

	const n = 3 * sweepEvery
	for i := 0; i < n; i++ {
		base := time.Duration(i) * ms
		clk.now = base
		tid := c.StartSpan("dfk", "task", "task", 0,
			obs.Int("task", i), obs.String("app", "micro"),
			obs.String("executor", "cpu"))
		q := c.StartSpan("htex", "queue", "task", tid)
		clk.now = base + 100*time.Microsecond
		c.EndSpan(q, obs.String("worker", "w0"))
		r := c.StartSpan("htex", "run", "w0", tid)
		clk.now = base + 900*time.Microsecond
		c.EndSpan(r)
		c.EndSpan(tid, obs.String("status", "done"))
	}
	rep := BuildReport(st)
	if len(rep.Tasks) != n {
		t.Fatalf("want %d tasks, got %d", n, len(rep.Tasks))
	}
	for i := range rep.Tasks {
		if got, want := rep.Tasks[i].Phases.Total(), rep.Tasks[i].Duration(); got != want {
			t.Fatalf("task %d: phases sum %v != duration %v", i, got, want)
		}
	}
	// After the final sweep-sized batch, retained run evidence must be
	// a small fraction of the total: eviction works.
	if got := len(st.a.runsByTrack["w0"]); got > sweepEvery+8 {
		t.Fatalf("run evidence not evicted: %d retained", got)
	}
}
