package obs_test

import (
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// BenchmarkProcSleepLoopObserved is devent's BenchmarkProcSleepLoop
// with a collector installed as the Env observer: the per-event cost of
// live scheduler counters. Compare against the devent package baseline
// to bound the observer overhead.
func BenchmarkProcSleepLoopObserved(b *testing.B) {
	env := devent.NewEnv()
	env.SetObserver(obs.New(env))
	env.Spawn("sleeper", func(p *devent.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanPingPongObserved mirrors devent's BenchmarkChanPingPong
// under an installed observer.
func BenchmarkChanPingPongObserved(b *testing.B) {
	env := devent.NewEnv()
	env.SetObserver(obs.New(env))
	ping := devent.NewChan[int](env, 0)
	pong := devent.NewChan[int](env, 0)
	env.Spawn("a", func(p *devent.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	env.Spawn("b", func(p *devent.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNilCollectorSpan measures the disabled-instrumentation fast
// path: all span calls on a nil collector must be a nil check and no
// allocations.
func BenchmarkNilCollectorSpan(b *testing.B) {
	var c *obs.Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := c.StartSpan("cat", "name", "track", 0)
		c.EndSpan(id)
	}
}

// BenchmarkNilInstruments measures pre-resolved nil instruments (the
// pattern hot paths use when no collector is attached).
func BenchmarkNilInstruments(b *testing.B) {
	var cnt *obs.Counter
	var g *obs.Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cnt.Inc()
		g.Set(float64(i))
	}
}

// BenchmarkSpanLifecycle measures the enabled span path.
func BenchmarkSpanLifecycle(b *testing.B) {
	env := devent.NewEnv()
	c := obs.New(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.StartSpan("htex", "run", "w0", 0)
		c.EndSpan(id)
	}
}
