package obs_test

import (
	"io"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// BenchmarkProcSleepLoopObserved is devent's BenchmarkProcSleepLoop
// with a collector installed as the Env observer: the per-event cost of
// live scheduler counters. Compare against the devent package baseline
// to bound the observer overhead.
func BenchmarkProcSleepLoopObserved(b *testing.B) {
	env := devent.NewEnv()
	env.SetObserver(obs.New(env))
	env.Spawn("sleeper", func(p *devent.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanPingPongObserved mirrors devent's BenchmarkChanPingPong
// under an installed observer.
func BenchmarkChanPingPongObserved(b *testing.B) {
	env := devent.NewEnv()
	env.SetObserver(obs.New(env))
	ping := devent.NewChan[int](env, 0)
	pong := devent.NewChan[int](env, 0)
	env.Spawn("a", func(p *devent.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	env.Spawn("b", func(p *devent.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNilCollectorSpan measures the disabled-instrumentation fast
// path: all span calls on a nil collector must be a nil check and no
// allocations.
func BenchmarkNilCollectorSpan(b *testing.B) {
	var c *obs.Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := c.StartSpan("cat", "name", "track", 0)
		c.EndSpan(id)
	}
}

// BenchmarkNilInstruments measures pre-resolved nil instruments (the
// pattern hot paths use when no collector is attached).
func BenchmarkNilInstruments(b *testing.B) {
	var cnt *obs.Counter
	var g *obs.Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cnt.Inc()
		g.Set(float64(i))
	}
}

// BenchmarkSpanLifecycle measures the enabled snapshot span path:
// StartSpan + EndSpan with no exporter attached. Target: 0 allocs/op
// amortized but ~500 B/op of retained-slice growth — snapshot
// collection memory scales with span count (see retained-spans).
func BenchmarkSpanLifecycle(b *testing.B) {
	env := devent.NewEnv()
	c := obs.New(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.StartSpan("htex", "run", "w0", 0)
		c.EndSpan(id)
	}
	b.ReportMetric(float64(c.MaxRetained()), "retained-spans")
}

// BenchmarkSpanLifecycleStreamed measures the streaming span path:
// StartSpan + EndSpan with a TraceSection exporter attached, each span
// rendered and released as its flush frontier passes. Target:
// 0 allocs/op steady state — the retained window and the section's
// render buffer are both recycled, so collection memory stays flat no
// matter how many spans the run records.
func BenchmarkSpanLifecycleStreamed(b *testing.B) {
	env := devent.NewEnv()
	c := obs.New(env)
	c.SetSink(obs.NewTraceSection(io.Discard, 1, "bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.StartSpan("htex", "run", "w0", 0)
		c.EndSpan(id)
	}
	b.ReportMetric(float64(c.MaxRetained()), "retained-spans")
}

// BenchmarkSpanLifecycleSampledOut measures the streaming path when
// sampling drops the span: the cheapest instrumented configuration
// (span recorded for listeners and leak checks, never rendered).
// Target: 0 allocs/op steady state.
func BenchmarkSpanLifecycleSampledOut(b *testing.B) {
	env := devent.NewEnv()
	c := obs.New(env)
	c.SetSink(obs.NewTraceSection(io.Discard, 1, "bench"))
	// "w1" hashes to a nonzero residue mod 1<<20, so every span drops.
	c.SetSampleMod(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.StartSpan("htex", "run", "w1", 0)
		c.EndSpan(id)
	}
}

// BenchmarkCounterInc measures a pre-resolved live counter increment —
// the steady-state cost instrumented hot paths pay per event. Target:
// 0 allocs/op (the registry lookup happens once, outside the loop).
func BenchmarkCounterInc(b *testing.B) {
	env := devent.NewEnv()
	c := obs.New(env)
	cnt := c.Metrics().Counter("bench_events_total", obs.L("src", "bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Inc()
	}
	if cnt.Value() != float64(b.N) {
		b.Fatal("count mismatch")
	}
}
