package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// The Chrome trace-event JSON envelope. Every event in the stream is
// written preceded by ",\n"; a commaDropper strips the very first
// comma so the first event follows the opening bracket with a bare
// newline. Rendering every event through the same TraceSection code in
// both snapshot and streaming mode makes the two byte-identical by
// construction.
const traceHeader = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
const traceTrailer = "\n]}\n"

// TraceHeader is the artifact envelope prefix, exported so the live
// /spans endpoint can serve a raw stream whose bytes prefix-match the
// snapshot export.
const TraceHeader = traceHeader

// commaDropper strips the leading comma from the first non-empty write
// it sees, turning a concatenation of ",\n"-prefixed events into a
// valid JSON array body.
type commaDropper struct {
	w       io.Writer
	dropped bool
}

func (d *commaDropper) Write(p []byte) (int, error) {
	if !d.dropped && len(p) > 0 {
		d.dropped = true
		if p[0] == ',' {
			n, err := d.w.Write(p[1:])
			return n + 1, err
		}
	}
	return d.w.Write(p)
}

// TraceSection renders one collector's spans as the trace events of a
// single process (pid). It implements SpanSink, so it can be attached
// directly to a streaming collector, and it is also the rendering core
// of the snapshot WriteChromeTrace. Events are written to w as they
// are emitted, each preceded by ",\n"; tracks become tids in
// first-seen order. Section output composed through a TraceStream (or
// WriteChromeTrace's internal commaDropper) forms the full artifact.
type TraceSection struct {
	w    io.Writer
	pid  int
	tids map[string]int
	buf  []byte
	err  error
}

// NewTraceSection starts a section for pid, immediately emitting its
// process_name metadata ("env<pid>" when scope is empty).
func NewTraceSection(w io.Writer, pid int, scope string) *TraceSection {
	ts := &TraceSection{w: w, pid: pid, tids: make(map[string]int)}
	if scope == "" {
		scope = "env" + strconv.Itoa(pid)
	}
	ts.appendMeta(0, "process_name", scope)
	ts.flush()
	return ts
}

// Err returns the first write error encountered, if any.
func (ts *TraceSection) Err() error { return ts.err }

// EmitSpan renders one complete event (plus thread metadata for
// first-seen tracks and flow events for cross-track parent links).
// Implements SpanSink; also safe to call with snapshot copies.
func (ts *TraceSection) EmitSpan(s *Span) {
	tid := ts.tid(s.Track)
	ts.appendComplete(tid, s)
	// Cross-track causal link: flow from the parent's slice to this
	// span's start. The parent's track was captured at span creation,
	// so this needs no lookup into (possibly already flushed) spans.
	if s.Parent != 0 && s.ptrack != "" && s.ptrack != s.Track {
		ptid := ts.tid(s.ptrack)
		ts.appendFlow("s", ptid, s.Start, int64(s.ID), false)
		ts.appendFlow("f", tid, s.Start, int64(s.ID), true)
	}
	ts.flush()
}

func (ts *TraceSection) flush() {
	if len(ts.buf) == 0 {
		return
	}
	if _, err := ts.w.Write(ts.buf); err != nil && ts.err == nil {
		ts.err = err
	}
	ts.buf = ts.buf[:0]
}

// tid resolves a track to its thread id, appending the thread_name
// metadata event on first sight.
func (ts *TraceSection) tid(track string) int {
	if id, ok := ts.tids[track]; ok {
		return id
	}
	id := len(ts.tids) + 1
	ts.tids[track] = id
	ts.appendMeta(id, "thread_name", track)
	return id
}

func (ts *TraceSection) appendMeta(tid int, name, value string) {
	ts.buf = append(ts.buf, ",\n{\"ph\":\"M\",\"pid\":"...)
	ts.buf = strconv.AppendInt(ts.buf, int64(ts.pid), 10)
	if tid > 0 {
		ts.buf = append(ts.buf, ",\"tid\":"...)
		ts.buf = strconv.AppendInt(ts.buf, int64(tid), 10)
	}
	ts.buf = append(ts.buf, ",\"name\":\""...)
	ts.buf = append(ts.buf, name...)
	ts.buf = append(ts.buf, "\",\"args\":{\"name\":"...)
	ts.buf = strconv.AppendQuote(ts.buf, value)
	ts.buf = append(ts.buf, "}}"...)
}

func (ts *TraceSection) appendComplete(tid int, s *Span) {
	ts.buf = append(ts.buf, ",\n{\"ph\":\"X\",\"pid\":"...)
	ts.buf = strconv.AppendInt(ts.buf, int64(ts.pid), 10)
	ts.buf = append(ts.buf, ",\"tid\":"...)
	ts.buf = strconv.AppendInt(ts.buf, int64(tid), 10)
	ts.buf = append(ts.buf, ",\"ts\":"...)
	ts.buf = appendUsec(ts.buf, s.Start)
	ts.buf = append(ts.buf, ",\"dur\":"...)
	ts.buf = appendUsec(ts.buf, s.End-s.Start)
	ts.buf = append(ts.buf, ",\"cat\":"...)
	ts.buf = strconv.AppendQuote(ts.buf, s.Cat)
	ts.buf = append(ts.buf, ",\"name\":"...)
	ts.buf = strconv.AppendQuote(ts.buf, s.Name)
	ts.buf = append(ts.buf, ",\"args\":{\"id\":"...)
	ts.buf = strconv.AppendInt(ts.buf, int64(s.ID), 10)
	if s.Parent != 0 {
		ts.buf = append(ts.buf, ",\"parent\":"...)
		ts.buf = strconv.AppendInt(ts.buf, int64(s.Parent), 10)
	}
	for _, a := range s.Attrs {
		ts.buf = append(ts.buf, ',')
		ts.buf = strconv.AppendQuote(ts.buf, a.Key)
		ts.buf = append(ts.buf, ':')
		ts.buf = strconv.AppendQuote(ts.buf, a.Value)
	}
	ts.buf = append(ts.buf, "}}"...)
}

func (ts *TraceSection) appendFlow(ph string, tid int, at time.Duration, id int64, bindEnclosing bool) {
	ts.buf = append(ts.buf, ",\n{\"ph\":\""...)
	ts.buf = append(ts.buf, ph...)
	ts.buf = append(ts.buf, "\",\"pid\":"...)
	ts.buf = strconv.AppendInt(ts.buf, int64(ts.pid), 10)
	ts.buf = append(ts.buf, ",\"tid\":"...)
	ts.buf = strconv.AppendInt(ts.buf, int64(tid), 10)
	ts.buf = append(ts.buf, ",\"ts\":"...)
	ts.buf = appendUsec(ts.buf, at)
	ts.buf = append(ts.buf, ",\"id\":"...)
	ts.buf = strconv.AppendInt(ts.buf, id, 10)
	ts.buf = append(ts.buf, ",\"cat\":\"link\",\"name\":\"link\""...)
	if bindEnclosing {
		ts.buf = append(ts.buf, ",\"bp\":\"e\""...)
	}
	ts.buf = append(ts.buf, '}')
}

// appendUsec renders a virtual time as fractional microseconds, the
// unit of the trace-event format, keeping nanosecond precision.
func appendUsec(b []byte, d time.Duration) []byte {
	return strconv.AppendFloat(b, float64(d)/1e3, 'f', 3, 64)
}

// TraceStream writes a complete Chrome trace artifact incrementally:
// the envelope once, then any number of sections — rendered live via
// Section, or spliced from pre-rendered section bytes via Append (the
// sharded-run merge path). Close writes the trailer and flushes.
type TraceStream struct {
	bw   *bufio.Writer
	d    *commaDropper
	npid int
}

// NewTraceStream writes the envelope header to w and returns a stream
// ready for sections.
func NewTraceStream(w io.Writer) *TraceStream {
	bw := bufio.NewWriter(w)
	bw.WriteString(traceHeader)
	return &TraceStream{bw: bw, d: &commaDropper{w: bw}}
}

// Section starts the next live section (pids are assigned
// sequentially). Sections must be written one at a time, in order;
// concurrent producers should render into buffers with NewTraceSection
// and splice them with Append instead.
func (t *TraceStream) Section(scope string) *TraceSection {
	t.npid++
	return NewTraceSection(t.d, t.npid, scope)
}

// Append splices a pre-rendered section byte stream (the output of a
// TraceSection writing to a buffer or spill file) into the artifact.
func (t *TraceStream) Append(r io.Reader) error {
	_, err := io.Copy(t.d, r)
	return err
}

// Close writes the trailer and flushes. The stream is unusable after.
func (t *TraceStream) Close() error {
	t.bw.WriteString(traceTrailer)
	return t.bw.Flush()
}

// WriteChromeTrace emits the collectors' spans as Chrome trace-event
// JSON ("X" complete events), loadable in Perfetto or chrome://tracing.
//
// Each collector becomes one process (pid = position in the argument
// list, named by its scope); each track becomes a thread in first-seen
// order. Causal links are carried two ways: every event's args hold
// the span's id and parent id, and parent/child pairs on different
// tracks additionally get flow ("s"/"f") events so Perfetto draws the
// arrow, e.g. from a DFK task lane to the worker that ran it.
//
// Within each process, unpinned spans appear in emission (ID) order
// and pinned daemon-lifecycle spans follow at the end — the same
// partition a streaming collector produces (see Collector.Close), so
// snapshot and streaming runs render byte-identical artifacts. The
// JSON is written by hand in a fixed field order — no map iteration —
// so output is byte-identical for identical inputs.
func WriteChromeTrace(w io.Writer, collectors ...*Collector) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(traceHeader)
	d := &commaDropper{w: bw}
	for ci, c := range collectors {
		if c == nil {
			continue
		}
		sec := NewTraceSection(d, ci+1, c.Scope())
		spans := c.Spans()
		for i := range spans {
			if s := &spans[i]; !s.pinned && !s.drop {
				sec.EmitSpan(s)
			}
		}
		for i := range spans {
			if s := &spans[i]; s.pinned && !s.drop {
				sec.EmitSpan(s)
			}
		}
	}
	bw.WriteString(traceTrailer)
	return bw.Flush()
}
