package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// WriteChromeTrace emits the collectors' spans as Chrome trace-event
// JSON ("X" complete events), loadable in Perfetto or chrome://tracing.
//
// Each collector becomes one process (pid = position in the argument
// list, named by its scope); each track becomes a thread in first-seen
// order. Causal links are carried two ways: every event's args hold
// the span's id and parent id, and parent/child pairs on different
// tracks additionally get flow ("s"/"f") events so Perfetto draws the
// arrow, e.g. from a DFK task lane to the worker that ran it.
//
// The JSON is written by hand in a fixed field order — no map
// iteration — so output is byte-identical for identical inputs.
func WriteChromeTrace(w io.Writer, collectors ...*Collector) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
			bw.WriteString("\n")
		} else {
			bw.WriteString(",\n")
		}
	}
	for ci, c := range collectors {
		if c == nil {
			continue
		}
		pid := ci + 1
		scope := c.Scope()
		if scope == "" {
			scope = "env" + itoa(int64(pid))
		}
		sep()
		writeMeta(bw, pid, 0, "process_name", scope)
		spans := c.Spans()
		// Tracks become tids in first-seen order.
		tids := make(map[string]int)
		tidOf := func(track string) int {
			if id, ok := tids[track]; ok {
				return id
			}
			id := len(tids) + 1
			tids[track] = id
			sep()
			writeMeta(bw, pid, id, "thread_name", track)
			return id
		}
		byID := make(map[SpanID]*Span, len(spans))
		for i := range spans {
			byID[spans[i].ID] = &spans[i]
		}
		for i := range spans {
			s := &spans[i]
			tid := tidOf(s.Track)
			sep()
			writeComplete(bw, pid, tid, s)
			// Cross-track causal link: flow from the parent's slice to
			// this span's start.
			if s.Parent != 0 {
				if ps, ok := byID[s.Parent]; ok && ps.Track != s.Track {
					ptid := tidOf(ps.Track)
					sep()
					writeFlow(bw, "s", pid, ptid, s.Start, int64(s.ID), false)
					sep()
					writeFlow(bw, "f", pid, tid, s.Start, int64(s.ID), true)
				}
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders a virtual time as fractional microseconds, the unit of
// the trace-event format, keeping nanosecond precision.
func usec(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/1e3, 'f', 3, 64)
}

func writeQuoted(bw *bufio.Writer, s string) {
	bw.Write(strconv.AppendQuote(nil, s))
}

func writeMeta(bw *bufio.Writer, pid, tid int, name, value string) {
	bw.WriteString("{\"ph\":\"M\",\"pid\":")
	bw.WriteString(itoa(int64(pid)))
	if tid > 0 {
		bw.WriteString(",\"tid\":")
		bw.WriteString(itoa(int64(tid)))
	}
	bw.WriteString(",\"name\":\"")
	bw.WriteString(name)
	bw.WriteString("\",\"args\":{\"name\":")
	writeQuoted(bw, value)
	bw.WriteString("}}")
}

func writeComplete(bw *bufio.Writer, pid, tid int, s *Span) {
	bw.WriteString("{\"ph\":\"X\",\"pid\":")
	bw.WriteString(itoa(int64(pid)))
	bw.WriteString(",\"tid\":")
	bw.WriteString(itoa(int64(tid)))
	bw.WriteString(",\"ts\":")
	bw.WriteString(usec(s.Start))
	bw.WriteString(",\"dur\":")
	bw.WriteString(usec(s.End - s.Start))
	bw.WriteString(",\"cat\":")
	writeQuoted(bw, s.Cat)
	bw.WriteString(",\"name\":")
	writeQuoted(bw, s.Name)
	bw.WriteString(",\"args\":{\"id\":")
	bw.WriteString(itoa(int64(s.ID)))
	if s.Parent != 0 {
		bw.WriteString(",\"parent\":")
		bw.WriteString(itoa(int64(s.Parent)))
	}
	for _, a := range s.Attrs {
		bw.WriteString(",")
		writeQuoted(bw, a.Key)
		bw.WriteString(":")
		writeQuoted(bw, a.Value)
	}
	bw.WriteString("}}")
}

func writeFlow(bw *bufio.Writer, ph string, pid, tid int, ts time.Duration, id int64, bindEnclosing bool) {
	bw.WriteString("{\"ph\":\"")
	bw.WriteString(ph)
	bw.WriteString("\",\"pid\":")
	bw.WriteString(itoa(int64(pid)))
	bw.WriteString(",\"tid\":")
	bw.WriteString(itoa(int64(tid)))
	bw.WriteString(",\"ts\":")
	bw.WriteString(usec(ts))
	bw.WriteString(",\"id\":")
	bw.WriteString(itoa(id))
	bw.WriteString(",\"cat\":\"link\",\"name\":\"link\"")
	if bindEnclosing {
		bw.WriteString(",\"bp\":\"e\"")
	}
	bw.WriteString("}")
}
