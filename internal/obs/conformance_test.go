package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPrometheusCustomInfBucket: registering explicit +Inf (and NaN)
// bounds must not render a duplicate le="+Inf" line — the implicit
// +Inf bucket is always emitted exactly once, counting every sample.
func TestPrometheusCustomInfBucket(t *testing.T) {
	c := New(&fakeClock{})
	c.SetScope("s")
	h := c.Metrics().Histogram("lat", []float64{1, 10, Inf})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, `le="+Inf"`); got != 1 {
		t.Errorf("le=\"+Inf\" rendered %d times:\n%s", got, out)
	}
	for _, want := range []string{
		`lat_bucket{le="1",scope="s"} 1`,
		`lat_bucket{le="10",scope="s"} 2`,
		`lat_bucket{le="+Inf",scope="s"} 3`,
		`lat_sum{scope="s"} 105.5`,
		`lat_count{scope="s"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusBucketNormalization: unsorted and duplicated bounds
// are sorted and deduplicated at registration, so cumulative bucket
// counts are monotonically non-decreasing in le order.
func TestPrometheusBucketNormalization(t *testing.T) {
	c := New(&fakeClock{})
	c.SetScope("s")
	h := c.Metrics().Histogram("x", []float64{10, 1, 10, 5})
	for _, v := range []float64{0.5, 3, 7, 20} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	bucketRe := regexp.MustCompile(`x_bucket\{le="([^"]+)",scope="s"\} (\d+)`)
	var les []string
	var counts []int
	for _, m := range bucketRe.FindAllStringSubmatch(out, -1) {
		les = append(les, m[1])
		n, _ := strconv.Atoi(m[2])
		counts = append(counts, n)
	}
	wantLes := []string{"1", "5", "10", "+Inf"}
	if len(les) != len(wantLes) {
		t.Fatalf("buckets = %v, want %v:\n%s", les, wantLes, out)
	}
	for i := range wantLes {
		if les[i] != wantLes[i] {
			t.Fatalf("bucket order = %v, want %v", les, wantLes)
		}
	}
	wantCounts := []int{1, 2, 3, 4}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Errorf("cumulative counts = %v, want %v", counts, wantCounts)
		}
	}
}

// TestPrometheusHistogramLineOrder: per series the exposition must be
// bucket lines in ascending le, then +Inf, then _sum, then _count.
func TestPrometheusHistogramLineOrder(t *testing.T) {
	c := New(&fakeClock{})
	c.SetScope("s")
	c.Metrics().Histogram("h", []float64{2, 1}).Observe(1.5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		`# TYPE h histogram`,
		`h_bucket{le="1",scope="s"} 0`,
		`h_bucket{le="2",scope="s"} 1`,
		`h_bucket{le="+Inf",scope="s"} 1`,
		`h_sum{scope="s"} 1.5`,
		`h_count{scope="s"} 1`,
	}
	// The collector pre-registers devent metrics; find our family.
	at := -1
	for i, l := range lines {
		if l == want[0] {
			at = i
			break
		}
	}
	if at < 0 || at+len(want) > len(lines) {
		t.Fatalf("family not found:\n%s", buf.String())
	}
	for i := range want {
		if lines[at+i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[at+i], want[i])
		}
	}
}

// TestPrometheusLabelEscaping: backslash, double quote, and newline in
// label values must be escaped per the text exposition format.
func TestPrometheusLabelEscaping(t *testing.T) {
	c := New(&fakeClock{})
	c.SetScope("s")
	c.Metrics().Counter("c", L("k", "a\\b\"c\nd")).Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	want := `c{k="a\\b\"c\nd",scope="s"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("missing %q in:\n%s", want, buf.String())
	}
}

// TestChromeTraceNesting: a child span on its parent's track must be
// fully nested inside the parent's [ts, ts+dur] window, carry the
// parent's id in args, and produce no flow events (same track).
func TestChromeTraceNesting(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	c.SetScope("s")
	parent := c.StartSpan("htex", "run", "w0", 0)
	clk.t = time.Second
	child := c.StartSpan("htex", "step", "w0", parent)
	clk.t = 2 * time.Second
	c.EndSpan(child)
	clk.t = 3 * time.Second
	c.EndSpan(parent)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	var p, ch *traceEvent
	for i := range events {
		e := &events[i]
		if e.Ph != "X" {
			if e.Ph == "s" || e.Ph == "f" {
				t.Errorf("same-track child emitted flow event: %+v", e)
			}
			continue
		}
		switch e.Name {
		case "run":
			p = e
		case "step":
			ch = e
		}
	}
	if p == nil || ch == nil {
		t.Fatalf("missing events in %s", buf.String())
	}
	if p.Tid != ch.Tid {
		t.Errorf("parent tid %d != child tid %d", p.Tid, ch.Tid)
	}
	if ch.Ts < p.Ts || ch.Ts+ch.Dur > p.Ts+p.Dur {
		t.Errorf("child [%v,%v] not nested in parent [%v,%v]",
			ch.Ts, ch.Ts+ch.Dur, p.Ts, p.Ts+p.Dur)
	}
	if ch.arg("parent") != p.arg("id") {
		t.Errorf("child parent arg %q != parent id %q", ch.arg("parent"), p.arg("id"))
	}
}

// TestChromeTraceCrossEnvMerge: merging collectors assigns each a
// distinct pid by argument position, keeps span ids process-local, and
// emits every collector's events contiguously in argument order.
func TestChromeTraceCrossEnvMerge(t *testing.T) {
	mk := func(scope string, start time.Duration) *Collector {
		c := New(&fakeClock{})
		c.SetScope(scope)
		task := c.AddSpan("dfk", "task", "lane", 0, start, start+time.Second)
		c.AddSpan("htex", "run", "w", task, start, start+time.Second)
		return c
	}
	c1 := mk("alpha", 0)
	c2 := mk("beta", 5*time.Second)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c1, c2); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	lastPid := 0
	for _, e := range events {
		if e.Pid < lastPid {
			t.Fatalf("pid %d after pid %d: collectors interleaved", e.Pid, lastPid)
		}
		lastPid = e.Pid
	}
	names := map[int]string{}
	spans := map[int]int{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Pid] = e.arg("name")
		}
		if e.Ph == "X" {
			spans[e.Pid]++
		}
	}
	if names[1] != "alpha" || names[2] != "beta" {
		t.Errorf("process names = %v", names)
	}
	if spans[1] != 2 || spans[2] != 2 {
		t.Errorf("spans per pid = %v", spans)
	}

	// Byte-determinism of the merged artifact.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, mk("alpha", 0), mk("beta", 5*time.Second)); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("merged trace not byte-identical across identical inputs")
	}
}

// TestCheckClosed: open spans are reported in start order; a fully
// drained collector reports none.
func TestCheckClosed(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	a := c.StartSpan("htex", "worker", "w0", 0)
	clk.t = time.Second
	b := c.StartSpan("dfk", "task", "lane", 0)
	if got := c.CheckClosed(); len(got) != 2 || got[0].ID != a || got[1].ID != b {
		t.Fatalf("open spans = %+v", got)
	}
	c.EndSpan(b)
	if got := c.CheckClosed(); len(got) != 1 || got[0].ID != a {
		t.Fatalf("after closing one: %+v", got)
	}
	c.EndSpan(a)
	if got := c.CheckClosed(); got != nil {
		t.Fatalf("after closing all: %+v", got)
	}
	var nilC *Collector
	if nilC.CheckClosed() != nil {
		t.Error("nil collector should report no open spans")
	}
}

// TestPrometheusLint runs the exported exposition lint over a full
// export with counters, gauges, labelled histograms, and
// escape-needing label values — the same checker the live HTTP
// server's /metrics tests use.
func TestPrometheusLint(t *testing.T) {
	c := New(&fakeClock{})
	c.SetScope("lint/scope")
	m := c.Metrics()
	m.Counter("events_total", L("kind", `quo"te`)).Add(3)
	m.Counter("events_total", L("kind", "plain")).Inc()
	m.Gauge("depth", L("q", "a\nb")).Set(2.5)
	h := m.Histogram("lat_seconds", []float64{0.1, 1, 10}, L("app", "x"))
	h.Observe(0.05)
	h.Observe(5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
}

// TestPrometheusLintRejects feeds the lint malformed expositions to
// make sure it is not vacuously green.
func TestPrometheusLintRejects(t *testing.T) {
	for name, text := range map[string]string{
		"sample before header": "x_total{} 1\n",
		"unsorted families":    "# TYPE b counter\nb 1\n# TYPE a counter\na 1\n",
		"duplicate inf": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\n" + `h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
		"descending bounds": "# TYPE h histogram\n" +
			`h_bucket{le="5"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"bad quoting": "# TYPE c counter\n" + `c{k="v} 1` + "\n",
	} {
		if err := LintPrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted malformed exposition:\n%s", name, text)
		}
	}
}
