package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// traceEvent mirrors the Chrome trace-event fields the tests check.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Cat  string         `json:"cat"`
	Name string         `json:"name"`
	Args map[string]any `json:"args"`
}

// arg renders an args value (span ids are numbers, attrs strings).
func (e traceEvent) arg(k string) string {
	switch v := e.Args[k].(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return ""
}

func decodeTrace(t *testing.T, data []byte) []traceEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	out := make([]traceEvent, len(doc.TraceEvents))
	for i, raw := range doc.TraceEvents {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	return out
}

func buildSampleCollector() (*fakeClock, *Collector) {
	clk := &fakeClock{}
	c := New(clk)
	c.SetScope("cell")
	task := c.StartSpan("dfk", "task", "task-1", 0, Int("task", 1), String("app", "a"))
	clk.t = time.Second
	run := c.StartSpan("htex", "run", "w0", task, String("app", "a"))
	c.AddSpan("simgpu", "gemm", "ctx0", run, time.Second, 2*time.Second, Float("sms", 54))
	clk.t = 3 * time.Second
	c.EndSpan(run, String("status", "done"))
	c.EndSpan(task, String("status", "done"))
	return clk, c
}

func TestChromeTraceSchema(t *testing.T) {
	_, c := buildSampleCollector()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	var completes, metas, flows int
	ids := map[string]bool{}
	for _, e := range events {
		switch e.Ph {
		case "X":
			completes++
			if e.Dur < 0 {
				t.Errorf("negative dur: %+v", e)
			}
			if e.arg("id") == "" {
				t.Errorf("complete event without id: %+v", e)
			}
			ids[e.arg("id")] = true
		case "M":
			metas++
		case "s", "f":
			flows++
		}
	}
	if completes != 3 {
		t.Errorf("complete events = %d", completes)
	}
	// process_name + one thread_name per track (task-1, w0, ctx0).
	if metas != 4 {
		t.Errorf("metadata events = %d", metas)
	}
	// run (on w0) links from task-1's track; gemm (on ctx0) links from
	// w0's track: two flow pairs.
	if flows != 4 {
		t.Errorf("flow events = %d", flows)
	}
	// Every parent reference resolves to an emitted span.
	for _, e := range events {
		if e.Ph == "X" {
			if p := e.arg("parent"); p != "" && !ids[p] {
				t.Errorf("dangling parent %s in %+v", p, e)
			}
		}
	}
}

func TestChromeTraceProcessPerCollector(t *testing.T) {
	_, c1 := buildSampleCollector()
	clk2 := &fakeClock{}
	c2 := New(clk2)
	c2.AddSpan("dfk", "task", "task-1", 0, 0, time.Second)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c1, nil, c2); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	names := map[int]string{}
	for _, e := range decodeTrace(t, buf.Bytes()) {
		pids[e.Pid] = true
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Pid] = e.arg("name")
		}
	}
	if !pids[1] || !pids[3] || pids[2] {
		t.Errorf("pids = %v (nil collector should be skipped)", pids)
	}
	if names[1] != "cell" || names[3] != "env3" {
		t.Errorf("process names = %v", names)
	}
}

func TestPrometheusExposition(t *testing.T) {
	_, c := buildSampleCollector()
	m := c.Metrics()
	m.Counter("faas_tasks_completed_total", L("app", "a"), L("status", "done")).Inc()
	m.Gauge("simgpu_domain_busy_sms", L("domain", "gpu0")).Set(54)
	m.Histogram("faas_task_run_seconds", []float64{1, 10}, L("app", "a")).Observe(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE faas_tasks_completed_total counter",
		`faas_tasks_completed_total{app="a",scope="cell",status="done"} 1`,
		"# TYPE simgpu_domain_busy_sms gauge",
		`simgpu_domain_busy_sms{domain="gpu0",scope="cell"} 54`,
		"# TYPE faas_task_run_seconds histogram",
		`faas_task_run_seconds_bucket{app="a",le="1",scope="cell"} 0`,
		`faas_task_run_seconds_bucket{app="a",le="10",scope="cell"} 1`,
		`faas_task_run_seconds_bucket{app="a",le="+Inf",scope="cell"} 1`,
		`faas_task_run_seconds_sum{app="a",scope="cell"} 2`,
		`faas_task_run_seconds_count{app="a",scope="cell"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusMergesCollectorsByScope(t *testing.T) {
	c1 := New(&fakeClock{})
	c1.SetScope("a")
	c1.Metrics().Counter("hits").Add(2)
	c2 := New(&fakeClock{})
	c2.Metrics().Counter("hits").Add(5) // unnamed scope -> env2
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c1, c2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE hits counter") != 1 {
		t.Errorf("family header not merged:\n%s", out)
	}
	if !strings.Contains(out, `hits{scope="a"} 2`) || !strings.Contains(out, `hits{scope="env2"} 5`) {
		t.Errorf("missing per-scope series:\n%s", out)
	}
}

func TestPrometheusKindMismatchErrors(t *testing.T) {
	c1 := New(&fakeClock{})
	c1.Metrics().Counter("x")
	c2 := New(&fakeClock{})
	c2.Metrics().Gauge("x")
	if err := WritePrometheus(&bytes.Buffer{}, c1, c2); err == nil {
		t.Fatal("kind mismatch across collectors not detected")
	}
}

func TestExportersDeterministic(t *testing.T) {
	render := func() (string, string) {
		_, c := buildSampleCollector()
		m := c.Metrics()
		m.Counter("a", L("k", "v")).Inc()
		m.Gauge("b").Set(1)
		var tr, pr bytes.Buffer
		if err := WriteChromeTrace(&tr, c); err != nil {
			t.Fatal(err)
		}
		if err := WritePrometheus(&pr, c); err != nil {
			t.Fatal(err)
		}
		return tr.String(), pr.String()
	}
	t1, p1 := render()
	t2, p2 := render()
	if t1 != t2 || p1 != p2 {
		t.Fatal("exporters are not deterministic across identical inputs")
	}
}
