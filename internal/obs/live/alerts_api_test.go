package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// twoScopeServer builds a server with two attached DBs ("beta" holds
// depth=7, "alpha" holds depth=3) attached in reverse-lexicographic
// order to prove the serving order is sorted, not insertion order.
func twoScopeServer(t *testing.T) (*Server, *tsdb.DB, *tsdb.DB) {
	t.Helper()
	mk := func(v float64) *tsdb.DB {
		clk := &fakeClock{}
		reg := obs.NewRegistry(clk)
		db := tsdb.New(reg, clk, tsdb.Config{Capacity: 16})
		reg.Gauge("depth").Set(v)
		clk.t = time.Second
		db.Scrape()
		return db
	}
	dbB, dbA := mk(7), mk(3)
	srv := NewServer()
	srv.AttachDB("beta", dbB)
	srv.AttachDB("alpha", dbA)
	return srv, dbA, dbB
}

// Satellite: fn=raw must reject malformed from/to instead of silently
// reading them as 0.
func TestSeriesRawRejectsBadFromTo(t *testing.T) {
	srv, _, _ := twoScopeServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/api/series?scope=alpha&name=depth&fn=raw&from=abc",
		"/api/series?scope=alpha&name=depth&fn=raw&to=12parsecs",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400\n%s", path, code, body)
		}
		var resp struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &resp); err != nil || resp.Error == "" {
			t.Fatalf("%s error body = %q err=%v", path, body, err)
		}
	}
	// Well-formed offsets still answer.
	code, body := get(t, ts, "/api/series?scope=alpha&name=depth&fn=raw&from=0s&to=10s")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("valid raw query status=%d body=%s", code, body)
	}
}

// Satellite: with several DBs attached and no scope parameter, the
// server answers from the lexicographically-first scope and names it
// in the response — deterministic no matter the attachment order,
// including concurrent AttachDB from parallel harness workers.
func TestSeriesAmbiguousScopeDeterministic(t *testing.T) {
	srv, _, _ := twoScopeServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/api/series?name=depth")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Scope string   `json:"scope"`
		Value *float64 `json:"value"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scope != "alpha" {
		t.Fatalf("chosen scope = %q, want alpha (sorted first; attached second)", resp.Scope)
	}
	if resp.Value == nil || *resp.Value != 3 {
		t.Fatalf("value = %v, want alpha's 3", resp.Value)
	}

	// Concurrent attachment: whatever the interleaving, the winner of
	// the no-scope query is the lexicographic minimum.
	for trial := 0; trial < 10; trial++ {
		srv2 := NewServer()
		clk := &fakeClock{t: time.Second}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				reg := obs.NewRegistry(clk)
				db := tsdb.New(reg, clk, tsdb.Config{Capacity: 4})
				reg.Gauge("cell").Set(float64(i))
				db.Scrape()
				srv2.AttachDB(fmt.Sprintf("cell/%d", i), db)
			}()
		}
		wg.Wait()
		ts2 := httptest.NewServer(srv2.Handler())
		_, body := get(t, ts2, "/api/series?name=cell")
		ts2.Close()
		var r2 struct {
			Scope string   `json:"scope"`
			Value *float64 `json:"value"`
		}
		if err := json.Unmarshal(body, &r2); err != nil {
			t.Fatal(err)
		}
		if r2.Scope != "cell/0" || r2.Value == nil || *r2.Value != 0 {
			t.Fatalf("trial %d: scope=%q value=%v, want cell/0 value 0", trial, r2.Scope, r2.Value)
		}
	}
}

func TestSeriesFederation(t *testing.T) {
	srv, _, _ := twoScopeServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/api/series?scope=*&name=depth")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		OK      bool `json:"ok"`
		Results []struct {
			Scope string   `json:"scope"`
			OK    bool     `json:"ok"`
			Value *float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Results) != 2 {
		t.Fatalf("federated response = %s", body)
	}
	if resp.Results[0].Scope != "alpha" || resp.Results[1].Scope != "beta" {
		t.Fatalf("scope order = %q,%q, want alpha,beta", resp.Results[0].Scope, resp.Results[1].Scope)
	}
	if *resp.Results[0].Value != 3 || *resp.Results[1].Value != 7 {
		t.Fatalf("values = %v,%v, want 3,7", *resp.Results[0].Value, *resp.Results[1].Value)
	}

	// A series only one scope holds: ok=true overall, per-scope misses
	// are ok=false entries, not errors.
	_, body = get(t, ts, "/api/series?scope=*&name=nope")
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || len(resp.Results) != 2 || resp.Results[0].OK {
		t.Fatalf("federated miss = %s", body)
	}
	// Parameter errors fail the whole federated request.
	code, _ = get(t, ts, "/api/series?scope=*&name=depth&fn=raw&from=zzz")
	if code != http.StatusBadRequest {
		t.Fatalf("federated bad from status = %d, want 400", code)
	}
	// No-name federation lists every scope's series.
	_, body = get(t, ts, "/api/series?scope=*")
	var listResp struct {
		Results []struct {
			Scope  string            `json:"scope"`
			Series []tsdb.SeriesInfo `json:"series"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &listResp); err != nil {
		t.Fatal(err)
	}
	if len(listResp.Results) != 2 || len(listResp.Results[0].Series) == 0 {
		t.Fatalf("federated list = %s", body)
	}
}

func TestScopesEndpoint(t *testing.T) {
	srv, dbA, _ := twoScopeServer(t)
	dbA.AddAlert(tsdb.AlertRule{Name: "hot", Series: "depth", Threshold: 1})
	dbA.Scrape() // evaluates the rule: depth=3 >= 1 → firing
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/api/scopes")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var scopes []scopeInfo
	if err := json.Unmarshal(body, &scopes); err != nil {
		t.Fatal(err)
	}
	if len(scopes) != 2 || scopes[0].Scope != "alpha" || scopes[1].Scope != "beta" {
		t.Fatalf("scopes = %s", body)
	}
	if scopes[0].Series == 0 || scopes[0].LastNS == 0 {
		t.Fatalf("alpha info = %+v", scopes[0])
	}
	if scopes[0].AlertsFiring != 1 || scopes[1].AlertsFiring != 0 {
		t.Fatalf("firing counts = %d,%d, want 1,0", scopes[0].AlertsFiring, scopes[1].AlertsFiring)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	srv, dbA, dbB := twoScopeServer(t)
	a := dbA.AddAlert(tsdb.AlertRule{Name: "hot", Series: "depth", Threshold: 1})
	dbA.Scrape()               // firing
	a.Resolve(2 * time.Second) // one incident in history
	dbB.AddAlert(tsdb.AlertRule{Name: "cold", Series: "depth", Threshold: 1, Below: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var all []scopeAlerts
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Scope != "alpha" || all[1].Scope != "beta" {
		t.Fatalf("alerts scopes = %s", body)
	}
	if len(all[0].Alerts) != 1 || all[0].Alerts[0].Name != "hot" || all[0].Alerts[0].State != "inactive" {
		t.Fatalf("alpha alerts = %+v", all[0].Alerts)
	}
	if len(all[0].Alerts[0].Incidents) != 1 {
		t.Fatalf("alpha incidents = %+v", all[0].Alerts[0].Incidents)
	}
	if len(all[1].Alerts) != 1 || all[1].Alerts[0].Name != "cold" {
		t.Fatalf("beta alerts = %+v", all[1].Alerts)
	}

	// Scope filter and unknown scope.
	_, body = get(t, ts, "/api/alerts?scope=beta")
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Scope != "beta" {
		t.Fatalf("filtered alerts = %s", body)
	}
	code, _ = get(t, ts, "/api/alerts?scope=nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown scope status = %d, want 404", code)
	}
}

func TestDashboardServed(t *testing.T) {
	srv, _, _ := twoScopeServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, dashboardHTML); err != nil {
		t.Fatal(err)
	}
	// The page is self-contained: no external scripts or stylesheets.
	html := sb.String()
	for _, banned := range []string{"src=\"http", "href=\"http", "cdn.", "googleapis"} {
		if strings.Contains(html, banned) {
			t.Fatalf("dashboard references an external asset: %q", banned)
		}
	}
	for _, want := range []string{"/api/scopes", "/api/alerts", "/api/series", "<svg", "polyline"} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}
