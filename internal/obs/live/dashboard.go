package live

import "net/http"

// handleDashboard serves the embedded single-page view over the JSON
// API: per-scope sparkline cards drawn from /api/series?fn=raw and a
// live alerts table from /api/alerts. Zero dependencies — one static
// HTML string, inline CSS/JS, SVG sparklines — so the page works from
// the binary with no assets, no build step, and no network beyond the
// server itself.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML)) //nolint:errcheck
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>paperbench live</title>
<style>
  body { font: 13px/1.4 -apple-system, "Segoe UI", sans-serif; margin: 0; background: #111; color: #ddd; }
  header { padding: 10px 16px; background: #1a1a1a; border-bottom: 1px solid #333; display: flex; gap: 16px; align-items: baseline; }
  header h1 { font-size: 15px; margin: 0; color: #fff; }
  header .meta { color: #888; }
  #alerts { margin: 12px 16px; }
  #alerts table { border-collapse: collapse; width: 100%; }
  #alerts th, #alerts td { text-align: left; padding: 3px 10px 3px 0; border-bottom: 1px solid #2a2a2a; }
  #alerts th { color: #888; font-weight: normal; }
  .state-firing { color: #ff5555; font-weight: bold; }
  .state-pending { color: #ffb86c; }
  .state-inactive { color: #50fa7b; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(280px, 1fr)); gap: 10px; padding: 0 16px 16px; }
  .card { background: #1a1a1a; border: 1px solid #2a2a2a; border-radius: 4px; padding: 8px 10px; }
  .card h3 { margin: 0 0 2px; font-size: 12px; font-weight: normal; color: #8be9fd; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .card .val { font-size: 16px; color: #fff; }
  .card svg { width: 100%; height: 36px; display: block; }
  .card polyline { fill: none; stroke: #8be9fd; stroke-width: 1.2; }
  .err { color: #ff5555; padding: 16px; }
</style>
</head>
<body>
<header>
  <h1>paperbench live</h1>
  <span class="meta" id="phase"></span>
  <span class="meta" id="scopes"></span>
</header>
<div id="alerts"></div>
<div id="grid"></div>
<script>
"use strict";
const fmtNS = ns => {
  if (ns >= 6e10) return (ns / 6e10).toFixed(1) + "m";
  if (ns >= 1e9) return (ns / 1e9).toFixed(1) + "s";
  return (ns / 1e6).toFixed(0) + "ms";
};
const fmtV = v => {
  if (v === null || v === undefined) return "-";
  if (Math.abs(v) >= 1000) return v.toFixed(0);
  return +v.toPrecision(4) + "";
};
const esc = s => String(s).replace(/[&<>"]/g, c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

function spark(samples) {
  if (!samples || samples.length < 2) return "<svg></svg>";
  const xs = samples.map(s => s.T), ys = samples.map(s => s.V);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const y0 = Math.min(...ys), y1 = Math.max(...ys);
  const W = 280, H = 36, sx = x1 > x0 ? W / (x1 - x0) : 0, sy = y1 > y0 ? (H - 4) / (y1 - y0) : 0;
  const pts = samples.map(s => ((s.T - x0) * sx).toFixed(1) + "," + (H - 2 - (s.V - y0) * sy).toFixed(1)).join(" ");
  return '<svg viewBox="0 0 ' + W + " " + H + '" preserveAspectRatio="none"><polyline points="' + pts + '"/></svg>';
}

// Per-scope series worth a card, most-informative first.
const preferred = [/^slo:burn$/, /^autoscale_/, /^fleet_/, /^faas_tasks_/, /^alert:state$/];
function pickSeries(list) {
  const scored = list.filter(s => s.kind !== "histogram").map(s => {
    let rank = preferred.length;
    preferred.forEach((re, i) => { if (re.test(s.name) && i < rank) rank = i; });
    return { s, rank };
  });
  scored.sort((a, b) => a.rank - b.rank);
  return scored.slice(0, 8).map(e => e.s);
}

async function getJSON(url) {
  const r = await fetch(url);
  if (!r.ok) throw new Error(url + " -> " + r.status);
  return r.json();
}

async function refresh() {
  try {
    const [prog, scopes, alerts] = await Promise.all([
      getJSON("/progress"), getJSON("/api/scopes"), getJSON("/api/alerts"),
    ]);
    document.getElementById("phase").textContent = "phase: " + (prog.phase || "?");
    document.getElementById("scopes").textContent = scopes.map(s => s.scope + " (" + s.series + " series)").join("  ·  ");

    let rows = "";
    for (const sa of alerts) {
      for (const a of sa.alerts || []) {
        const labels = (a.labels || []).map(l => l.Key + "=" + l.Value).join(",");
        rows += "<tr><td>" + esc(sa.scope) + "</td><td>" + esc(a.name) + (labels ? "{" + esc(labels) + "}" : "") +
          '</td><td class="state-' + esc(a.state) + '">' + esc(a.state) + "</td><td>" + fmtV(a.value) +
          "</td><td>" + (a.state !== "inactive" ? fmtNS(a.since_ns || 0) : "") +
          "</td><td>" + ((a.incidents || []).length + (a.incidents_dropped || 0)) + "</td></tr>";
      }
    }
    document.getElementById("alerts").innerHTML = rows
      ? "<table><tr><th>scope</th><th>alert</th><th>state</th><th>value</th><th>since</th><th>incidents</th></tr>" + rows + "</table>"
      : '<span style="color:#50fa7b">no alert rules registered or all inactive</span>';

    const cards = [];
    for (const sc of scopes) {
      const idx = await getJSON("/api/series?scope=" + encodeURIComponent(sc.scope));
      for (const si of pickSeries(idx.series || [])) {
        let u = "/api/series?scope=" + encodeURIComponent(sc.scope) + "&name=" + encodeURIComponent(si.name) + "&fn=raw";
        for (const l of si.labels || []) u += "&" + encodeURIComponent(l.Key) + "=" + encodeURIComponent(l.Value);
        cards.push(getJSON(u).then(d => {
          const last = d.samples && d.samples.length ? d.samples[d.samples.length - 1].V : null;
          const lbl = (si.labels || []).map(l => l.Key + "=" + l.Value).join(",");
          return '<div class="card"><h3>' + esc(sc.scope) + " · " + esc(si.name) + (lbl ? "{" + esc(lbl) + "}" : "") +
            '</h3><span class="val">' + fmtV(last) + "</span>" + spark(d.samples) + "</div>";
        }).catch(() => ""));
      }
    }
    document.getElementById("grid").innerHTML = (await Promise.all(cards)).join("");
  } catch (e) {
    document.getElementById("grid").innerHTML = '<div class="err">' + esc(e.message || e) + "</div>";
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
