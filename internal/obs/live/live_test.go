package live

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

const ms = time.Millisecond

// addWork populates a collector with a deterministic span set (no
// pinned spans, so streamed emission order equals the snapshot
// export's) plus some metrics.
func addWork(c *obs.Collector, clk *fakeClock) {
	reg := c.Metrics()
	lat := reg.Histogram("task_latency_seconds", obs.DefLatencyBuckets, obs.L("app", "llama"))
	for i := 0; i < 20; i++ {
		start := time.Duration(i) * 10 * ms
		end := start + 7*ms
		clk.t = end
		c.AddSpan("dfk", "task", "task", 0, start, end,
			obs.Int("task", i), obs.String("app", "llama"), obs.String("status", "done"))
		reg.Counter("tasks_total", obs.L("app", "llama")).Inc()
		lat.ObserveDuration(7 * ms)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestMetricsEndpointConformance(t *testing.T) {
	clk := &fakeClock{}
	c := obs.New(clk)
	c.SetScope("unit")
	addWork(c, clk)
	db := tsdb.New(c.Metrics(), clk, tsdb.Config{})
	db.Scrape()
	db.EventSeries("slo:burn", 16, obs.L("app", "llama")).Append(clk.t, 0.25)

	srv := NewServer()
	srv.AttachDB("unit", db)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := obs.LintPrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails conformance lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		`tasks_total{app="llama",scope="unit"} 20`,
		`slo:burn{app="llama",scope="unit"} 0.25`,
		`task_latency_seconds_count{app="llama",scope="unit"} 20`,
	} {
		if !bytes.Contains(body, []byte(want+"\n")) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSpansTailIsSnapshotPrefix(t *testing.T) {
	srv := NewServer()
	tail := srv.Tail("unit", 0)

	// Streamed collector feeding the tail.
	clk1 := &fakeClock{}
	c1 := obs.New(clk1)
	c1.SetScope("unit")
	c1.SetSink(tail)
	addWork(c1, clk1)
	c1.Close()

	// Snapshot collector with the identical span stream.
	clk2 := &fakeClock{}
	c2 := obs.New(clk2)
	c2.SetScope("unit")
	addWork(c2, clk2)
	var want bytes.Buffer
	if err := obs.WriteChromeTrace(&want, c2); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, raw := get(t, ts, "/spans?format=raw")
	if code != http.StatusOK {
		t.Fatalf("/spans?format=raw status %d", code)
	}
	if len(raw) == 0 || !bytes.HasPrefix(want.Bytes(), raw) {
		t.Fatalf("raw tail (%d bytes) is not a prefix of the snapshot export (%d bytes)\ntail:\n%s",
			len(raw), want.Len(), raw)
	}
	// The tail covers everything up to the trailer: snapshot = tail + "\n]}\n".
	if got, wantLen := len(raw), want.Len()-4; got != wantLen {
		t.Fatalf("tail covers %d bytes, want %d (snapshot minus trailer)", got, wantLen)
	}

	// NDJSON mode: every line is a standalone JSON object.
	code, nd := get(t, ts, "/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans status %d", code)
	}
	lines := bytes.Split(bytes.TrimSpace(nd), []byte("\n"))
	if len(lines) < 20 {
		t.Fatalf("ndjson tail has %d lines, want >= 20", len(lines))
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("ndjson line %d not JSON: %v\n%s", i, err, line)
		}
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("ndjson line %d has no ph field: %s", i, line)
		}
	}
	if n := tail.Spans(); n != 20 {
		t.Fatalf("tail saw %d spans, want 20", n)
	}

	if code, _ := get(t, ts, "/spans?scope=bogus"); code != http.StatusNotFound {
		t.Fatalf("/spans?scope=bogus status %d, want 404", code)
	}
}

func TestSeriesAPI(t *testing.T) {
	clk := &fakeClock{}
	c := obs.New(clk)
	addWork(c, clk) // advances clk per span; counter scraped below
	db := tsdb.New(c.Metrics(), clk, tsdb.Config{})
	db.Scrape()
	clk.t += time.Second
	c.Metrics().Counter("tasks_total", obs.L("app", "llama")).Add(10)
	db.Scrape()

	srv := NewServer()
	srv.AttachDB("unit", db)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp struct {
		OK      bool      `json:"ok"`
		Value   *float64  `json:"value"`
		Samples []any     `json:"samples"`
		Series  []any     `json:"series"`
		Error   string    `json:"error"`
	}
	query := func(path string, wantCode int) {
		t.Helper()
		code, body := get(t, ts, path)
		if code != wantCode {
			t.Fatalf("%s status %d, want %d: %s", path, code, wantCode, body)
		}
		resp = struct {
			OK      bool      `json:"ok"`
			Value   *float64  `json:"value"`
			Samples []any     `json:"samples"`
			Series  []any     `json:"series"`
			Error   string    `json:"error"`
		}{}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s bad JSON: %v\n%s", path, err, body)
		}
	}

	query("/api/series?name=tasks_total&app=llama", http.StatusOK)
	if !resp.OK || resp.Value == nil || *resp.Value != 30 {
		t.Fatalf("latest = %+v, want 30", resp)
	}
	query("/api/series?name=tasks_total&fn=rate&window=5s&app=llama", http.StatusOK)
	if !resp.OK || resp.Value == nil || *resp.Value != 10 {
		t.Fatalf("rate = %+v, want 10/s", resp)
	}
	query("/api/series?name=task_latency_seconds&fn=quantile&q=0.5&window=60s&app=llama", http.StatusOK)
	if !resp.OK || resp.Value == nil || *resp.Value <= 0 {
		t.Fatalf("quantile = %+v, want > 0", resp)
	}
	query("/api/series?name=tasks_total&fn=raw&app=llama", http.StatusOK)
	if !resp.OK || len(resp.Samples) != 2 {
		t.Fatalf("raw = %+v, want 2 samples", resp)
	}
	query("/api/series", http.StatusOK)
	if !resp.OK || len(resp.Series) == 0 {
		t.Fatalf("list = %+v, want series", resp)
	}
	query("/api/series?name=tasks_total&fn=bogus", http.StatusBadRequest)
	if resp.Error == "" {
		t.Fatal("bad fn should carry an error message")
	}
	query("/api/series?scope=unknown&name=x", http.StatusNotFound)
	if resp.Error == "" {
		t.Fatal("unknown scope should carry an error message")
	}
}

func TestProgressAndHealthz(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := srv.Progress()
	p.SetShards(2)
	p.SetPhase("running")
	p.ShardStarted(0)
	p.ShardStarted(1)
	p.TasksDone(64)
	p.ShardFinished(0)

	code, body := get(t, ts, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/progress bad JSON: %v\n%s", err, body)
	}
	if snap.Phase != "running" || snap.ShardsTotal != 2 || snap.ShardsDone != 1 ||
		snap.TasksDone != 64 || len(snap.ShardsRunning) != 1 || snap.ShardsRunning[0] != 1 {
		t.Fatalf("progress = %+v", snap)
	}

	p.ShardFinished(1)
	p.SetPhase("done")
	code, body = get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if !strings.Contains(string(body), `"status":"ok"`) || !strings.Contains(string(body), `"phase":"done"`) {
		t.Fatalf("/healthz = %s", body)
	}

	// pprof is mounted.
	if code, _ = get(t, ts, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServerStartClose(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz on %s: %v", addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
