package live

import (
	"sync"
	"time"
)

// Progress tracks run completion for /progress and /healthz. The sim
// side reports through the mutator methods (which satisfy
// core.ScaleProgress); HTTP handlers read consistent snapshots. Wall
// times here are honest wall clock — this is supervision metadata, not
// simulation state.
type Progress struct {
	mu          sync.Mutex
	phase       string
	shardsTotal int
	shardsDone  int
	running     map[int]bool
	tasksDone   int64
	startWall   time.Time
	updateWall  time.Time
}

// ProgressSnapshot is the /progress JSON document.
type ProgressSnapshot struct {
	Phase         string  `json:"phase"`
	ShardsTotal   int     `json:"shards_total,omitempty"`
	ShardsDone    int     `json:"shards_done"`
	ShardsRunning []int   `json:"shards_running,omitempty"`
	TasksDone     int64   `json:"tasks_done"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// NewProgress starts in phase "idle".
func NewProgress() *Progress {
	return &Progress{phase: "idle", running: make(map[int]bool), startWall: time.Now()}
}

// SetPhase moves the run through its lifecycle ("idle" → "running" →
// "done", or any caller-chosen label).
func (p *Progress) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = phase
	p.updateWall = time.Now()
	p.mu.Unlock()
}

// SetShards declares the total shard count before the run starts.
func (p *Progress) SetShards(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.shardsTotal = n
	p.mu.Unlock()
}

// ShardStarted marks one shard in flight.
func (p *Progress) ShardStarted(shard int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running[shard] = true
	p.updateWall = time.Now()
	p.mu.Unlock()
}

// ShardFinished marks one shard complete.
func (p *Progress) ShardFinished(shard int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.running, shard)
	p.shardsDone++
	p.updateWall = time.Now()
	p.mu.Unlock()
}

// TasksDone adds n completed tasks (batched by the caller — per
// scheduling window, not per task).
func (p *Progress) TasksDone(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.tasksDone += int64(n)
	p.mu.Unlock()
}

// Snapshot returns a consistent copy for serving.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{Phase: "idle"}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := ProgressSnapshot{
		Phase:       p.phase,
		ShardsTotal: p.shardsTotal,
		ShardsDone:  p.shardsDone,
		TasksDone:   p.tasksDone,
		WallSeconds: time.Since(p.startWall).Seconds(),
	}
	for s := range p.running {
		snap.ShardsRunning = append(snap.ShardsRunning, s)
	}
	if len(snap.ShardsRunning) > 1 {
		sortInts(snap.ShardsRunning)
	}
	return snap
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
