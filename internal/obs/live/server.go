package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// Server is the observability endpoint set. Attach tsdb handles and
// span tails as the run is assembled, then Start (real listener) or
// Handler (httptest). All attachments are safe before or during
// serving.
type Server struct {
	mu       sync.Mutex
	dbs      []scopedDB
	tails    []*SpanTail
	progress *Progress
	srv      *http.Server
	ln       net.Listener
}

type scopedDB struct {
	scope string
	db    *tsdb.DB
}

// NewServer returns an empty server with a fresh Progress tracker.
func NewServer() *Server {
	return &Server{progress: NewProgress()}
}

// AttachDB registers a tsdb handle under a scope label; its latest
// samples appear on /metrics with scope="<scope>", its series become
// queryable via /api/series?scope=<scope>, and its alert rules on
// /api/alerts. Scopes are served in lexicographic order no matter the
// attachment order, so concurrently attached cells (parallel harness
// workers) present deterministically.
func (s *Server) AttachDB(scope string, db *tsdb.DB) {
	if s == nil || db == nil {
		return
	}
	s.mu.Lock()
	s.dbs = append(s.dbs, scopedDB{scope, db})
	sort.SliceStable(s.dbs, func(i, j int) bool { return s.dbs[i].scope < s.dbs[j].scope })
	s.mu.Unlock()
}

// Tail creates and registers a span tail for /spans. Pids are assigned
// sequentially in registration order, matching the collectors'
// positions in a snapshot Chrome-trace export of the same run.
func (s *Server) Tail(scope string, maxBytes int) *SpanTail {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	t := NewSpanTail(len(s.tails)+1, scope, maxBytes)
	s.tails = append(s.tails, t)
	s.mu.Unlock()
	return t
}

// Progress returns the server's progress tracker (never nil on a
// non-nil server).
func (s *Server) Progress() *Progress {
	if s == nil {
		return nil
	}
	return s.progress
}

// Handler builds the route set: /metrics, /api/series, /api/scopes,
// /api/alerts, /dashboard, /spans, /progress, /healthz, and
// /debug/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/series", s.handleSeries)
	mux.HandleFunc("/api/scopes", s.handleScopes)
	mux.HandleFunc("/api/alerts", s.handleAlerts)
	mux.HandleFunc("/dashboard", s.handleDashboard)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	srv := s.srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close stops the listener. Safe when never started.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) snapshotDBs() []scopedDB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]scopedDB(nil), s.dbs...)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := obs.NewExposition()
	for _, sd := range s.snapshotDBs() {
		e.Add(sd.db.Exposition(obs.L("scope", sd.scope))...)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := e.WriteText(w); err != nil {
		// Too late for a status code once bytes are out; surface in-band.
		fmt.Fprintf(w, "\n# ERROR %v\n", err)
	}
}

// seriesResponse is the /api/series JSON shape. Scalar functions fill
// Value; fn=raw fills Samples; no name lists every retained series.
// Scope always echoes the scope that answered — when the request
// omitted one, it reports which DB the server chose.
type seriesResponse struct {
	Scope   string            `json:"scope,omitempty"`
	Name    string            `json:"name,omitempty"`
	Fn      string            `json:"fn,omitempty"`
	OK      bool              `json:"ok"`
	Value   *float64          `json:"value,omitempty"`
	Samples []tsdb.Sample     `json:"samples,omitempty"`
	Series  []tsdb.SeriesInfo `json:"series,omitempty"`
	LastNS  time.Duration     `json:"last_ns"`
	Error   string            `json:"error,omitempty"`
}

// federatedResponse is the scope=* shape: the same query evaluated
// against every attached DB, one result per scope in scope order.
type federatedResponse struct {
	Name    string           `json:"name,omitempty"`
	Fn      string           `json:"fn,omitempty"`
	OK      bool             `json:"ok"` // true when any scope answered
	Results []seriesResponse `json:"results"`
}

// reserved /api/series query parameters; everything else is a label
// matcher.
var reservedParams = map[string]bool{
	"scope": true, "name": true, "fn": true, "window": true,
	"q": true, "from": true, "to": true,
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	scope := q.Get("scope")
	dbs := s.snapshotDBs()
	if len(dbs) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, seriesResponse{Scope: scope, Error: "no tsdb attached"})
		return
	}

	// scope=* federates: one query, every attached DB, results in
	// scope order. Parameter errors fail the whole request.
	if scope == "*" {
		fresp := federatedResponse{Name: q.Get("name"), Fn: q.Get("fn")}
		for _, sd := range dbs {
			resp, code := evalSeries(sd.db, sd.scope, q)
			if code != http.StatusOK {
				writeJSON(w, code, resp)
				return
			}
			if resp.OK {
				fresp.OK = true
			}
			fresp.Fn = resp.Fn
			fresp.Results = append(fresp.Results, resp)
		}
		writeJSON(w, http.StatusOK, fresp)
		return
	}

	// No scope: answer from the lexicographically-first scope (the
	// snapshot is sorted) and say so in the response — with several
	// cells attached the choice is deterministic but still a choice.
	db := dbs[0].db
	if scope == "" {
		scope = dbs[0].scope
	} else {
		db = nil
		for _, sd := range dbs {
			if sd.scope == scope {
				db = sd.db
				break
			}
		}
		if db == nil {
			writeJSON(w, http.StatusNotFound, seriesResponse{
				Scope: scope, Error: fmt.Sprintf("unknown scope %q", scope),
			})
			return
		}
	}
	resp, code := evalSeries(db, scope, q)
	writeJSON(w, code, resp)
}

// evalSeries answers one /api/series query against one DB. The
// returned code is StatusOK or StatusBadRequest (malformed
// parameters); "no such series" is OK=false, not an HTTP error.
func evalSeries(db *tsdb.DB, scope string, q url.Values) (seriesResponse, int) {
	resp := seriesResponse{Scope: scope, Name: q.Get("name"), Fn: q.Get("fn"), LastNS: db.LastTime()}
	fail := func(format string, args ...any) (seriesResponse, int) {
		resp.Error = fmt.Sprintf(format, args...)
		return resp, http.StatusBadRequest
	}

	if resp.Name == "" {
		resp.Series = db.List()
		resp.OK = true
		return resp, http.StatusOK
	}

	// Deterministic label set from the remaining query parameters.
	var keys []string
	for k := range q {
		if !reservedParams[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var labels []obs.Label
	for _, k := range keys {
		labels = append(labels, obs.L(k, q.Get(k)))
	}

	window := 60 * time.Second
	if ws := q.Get("window"); ws != "" {
		var err error
		if window, err = time.ParseDuration(ws); err != nil || window <= 0 {
			return fail("bad window %q", ws)
		}
	}

	var v float64
	var ok bool
	switch fn := resp.Fn; fn {
	case "", "latest":
		var smp tsdb.Sample
		if smp, ok = db.Latest(resp.Name, labels...); ok {
			v = smp.V
		}
		resp.Fn = "latest"
	case "rate":
		v, ok = db.Rate(resp.Name, window, labels...)
	case "avg":
		v, ok = db.Avg(resp.Name, window, labels...)
	case "max":
		v, ok = db.Max(resp.Name, window, labels...)
	case "quantile":
		qv := 0.95
		if qs := q.Get("q"); qs != "" {
			if _, err := fmt.Sscanf(qs, "%g", &qv); err != nil || qv < 0 || qv > 1 {
				return fail("bad q %q", qs)
			}
		}
		v, ok = db.Quantile(resp.Name, qv, window, labels...)
	case "raw":
		var from, to time.Duration
		var err error
		if fs := q.Get("from"); fs != "" {
			if from, err = time.ParseDuration(fs); err != nil {
				return fail("bad from %q", fs)
			}
		}
		if ts := q.Get("to"); ts != "" {
			if to, err = time.ParseDuration(ts); err != nil {
				return fail("bad to %q", ts)
			}
		}
		resp.Samples = db.Samples(resp.Name, from, to, labels...)
		ok = len(resp.Samples) > 0
	default:
		return fail("unknown fn %q (want latest|rate|avg|max|quantile|raw)", fn)
	}
	resp.OK = ok
	if ok && resp.Fn != "raw" {
		resp.Value = &v
	}
	return resp, http.StatusOK
}

// scopeInfo is one attached DB's /api/scopes entry.
type scopeInfo struct {
	Scope         string        `json:"scope"`
	Series        int           `json:"series"`
	LastNS        time.Duration `json:"last_ns"`
	Scrapes       int64         `json:"scrapes"`
	AlertsPending int           `json:"alerts_pending"`
	AlertsFiring  int           `json:"alerts_firing"`
}

// handleScopes lists every attached scope in lexicographic order —
// the discovery endpoint clients (and /dashboard) use to find what
// /api/series and /api/alerts can answer.
func (s *Server) handleScopes(w http.ResponseWriter, r *http.Request) {
	dbs := s.snapshotDBs()
	out := make([]scopeInfo, 0, len(dbs))
	for _, sd := range dbs {
		pending, firing := sd.db.AlertCounts()
		out = append(out, scopeInfo{
			Scope:         sd.scope,
			Series:        len(sd.db.List()),
			LastNS:        sd.db.LastTime(),
			Scrapes:       sd.db.Scrapes(),
			AlertsPending: pending,
			AlertsFiring:  firing,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// scopeAlerts is one scope's /api/alerts entry: every registered rule
// with its live state and resolved incident history.
type scopeAlerts struct {
	Scope  string             `json:"scope"`
	Alerts []tsdb.AlertStatus `json:"alerts"`
}

// handleAlerts reports alert state across scopes (or one scope with
// ?scope=). Rules come out in name order inside each scope, scopes in
// lexicographic order.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	scope := r.URL.Query().Get("scope")
	dbs := s.snapshotDBs()
	out := make([]scopeAlerts, 0, len(dbs))
	for _, sd := range dbs {
		if scope != "" && sd.scope != scope {
			continue
		}
		out = append(out, scopeAlerts{Scope: sd.scope, Alerts: sd.db.AlertStatuses()})
	}
	if scope != "" && len(out) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown scope %q", scope)})
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) tailFor(scope string) *SpanTail {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tails) == 0 {
		return nil
	}
	if scope == "" {
		return s.tails[0]
	}
	for _, t := range s.tails {
		if t.scope == scope {
			return t
		}
	}
	return nil
}

// handleSpans serves the retained span tail. format=ndjson (default)
// emits one trace event per line; format=raw emits the same bytes the
// snapshot Chrome-trace export starts with (header + events, no
// trailer) so a client can diff the live stream against the artifact.
// follow=1 keeps the connection open and streams future events (slow
// followers drop events rather than stalling the simulation).
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	tail := s.tailFor(r.URL.Query().Get("scope"))
	if tail == nil {
		http.Error(w, "no span tail attached", http.StatusNotFound)
		return
	}
	raw := r.URL.Query().Get("format") == "raw"
	follow := r.URL.Query().Get("follow") == "1"

	chunks, evicted := tail.Snapshot()
	w.Header().Set("X-Spans-Evicted", fmt.Sprintf("%d", evicted))
	var write func(chunk []byte) error
	if raw {
		w.Header().Set("Content-Type", "application/json")
		// A tail that lost its head can't reproduce the artifact prefix.
		if evicted > 0 {
			http.Error(w, "tail window evicted events; raw prefix unavailable", http.StatusGone)
			return
		}
		if _, err := w.Write([]byte(obs.TraceHeader)); err != nil {
			return
		}
		first := true
		write = func(chunk []byte) error {
			if first && len(chunk) > 0 && chunk[0] == ',' {
				chunk = chunk[1:]
				first = false
			}
			_, err := w.Write(chunk)
			return err
		}
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Events render as ",\n{...}" groups; swapping the separator
		// for a newline yields NDJSON (attr values are quoted, so no
		// raw newlines exist inside events).
		write = func(chunk []byte) error {
			line := strings.ReplaceAll(string(chunk), ",\n{", "\n{")
			_, err := fmt.Fprint(w, strings.TrimPrefix(line, "\n"))
			if err == nil {
				_, err = fmt.Fprint(w, "\n")
			}
			return err
		}
	}
	for _, c := range chunks {
		if write(c) != nil {
			return
		}
	}
	if f, fok := w.(http.Flusher); fok {
		f.Flush()
	}
	if !follow {
		return
	}
	ch, cancel := tail.follow(256)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case chunk := <-ch:
			if write(chunk) != nil {
				return
			}
			if f, fok := w.(http.Flusher); fok {
				f.Flush()
			}
		}
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.progress.Snapshot()) //nolint:errcheck
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.progress.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok", "phase": snap.Phase}) //nolint:errcheck
}
