// Package live is the HTTP observability plane over a running (or
// finished) simulation: Prometheus /metrics and JSON /api/series from
// tsdb snapshots, an NDJSON /spans tail fed by the streaming span
// sinks, /progress and /healthz for supervision, and net/http/pprof.
//
// The simulation writes (span emits, tsdb scrapes) happen on the sim
// goroutine; HTTP handlers run on server goroutines. Every shared
// structure here is lock-protected, and nothing on the serving side
// ever touches the virtual clock — windowed queries use the newest
// written virtual time as "now".
package live

import (
	"sync"

	"repro/internal/obs"
)

// SpanTail is a SpanSink that retains the most recent rendered trace
// events in a bounded byte window for the /spans endpoint, and
// broadcasts each flush to live followers. Events are rendered by the
// same TraceSection code as the artifact exporters, so as long as
// nothing has been evicted the raw tail is a byte-prefix of the
// snapshot Chrome-trace export for the same collector.
type SpanTail struct {
	mu      sync.Mutex
	sec     *obs.TraceSection
	scope   string
	chunks  [][]byte // one entry per EmitSpan flush, ",\n"-prefixed
	bytes   int
	max     int
	evicted int64
	spans   int64
	subs    map[chan []byte]struct{}
}

// DefaultTailBytes bounds a tail's retained window when the caller
// passes maxBytes <= 0.
const DefaultTailBytes = 1 << 20

// NewSpanTail builds a tail rendering as trace process pid (matching
// the collector's position in the snapshot export) named by scope.
func NewSpanTail(pid int, scope string, maxBytes int) *SpanTail {
	if maxBytes <= 0 {
		maxBytes = DefaultTailBytes
	}
	t := &SpanTail{scope: scope, max: maxBytes, subs: make(map[chan []byte]struct{})}
	// The TraceSection writes its process metadata on construction;
	// route it through the same capture path as every event.
	t.sec = obs.NewTraceSection(captureWriter{t}, pid, scope)
	return t
}

// captureWriter receives TraceSection flushes under the tail's lock
// discipline: EmitSpan (sim goroutine) is the only caller.
type captureWriter struct{ t *SpanTail }

func (w captureWriter) Write(p []byte) (int, error) {
	t := w.t
	chunk := append([]byte(nil), p...)
	t.mu.Lock()
	t.chunks = append(t.chunks, chunk)
	t.bytes += len(chunk)
	for t.bytes > t.max && len(t.chunks) > 1 {
		t.bytes -= len(t.chunks[0])
		t.chunks[0] = nil // release the evicted chunk's backing array
		t.chunks = t.chunks[1:]
		t.evicted++
	}
	for ch := range t.subs {
		select {
		case ch <- chunk:
		default: // a slow follower drops events rather than stalling the sim
		}
	}
	t.mu.Unlock()
	return len(p), nil
}

// EmitSpan implements obs.SpanSink.
func (t *SpanTail) EmitSpan(s *obs.Span) {
	t.sec.EmitSpan(s)
	t.mu.Lock()
	t.spans++
	t.mu.Unlock()
}

// Snapshot copies out the retained chunks plus how many older chunks
// were evicted (0 means the tail still starts at the beginning of the
// stream).
func (t *SpanTail) Snapshot() (chunks [][]byte, evicted int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([][]byte(nil), t.chunks...), t.evicted
}

// Spans returns how many spans the tail has seen.
func (t *SpanTail) Spans() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Scope returns the tail's trace-process name.
func (t *SpanTail) Scope() string { return t.scope }

// follow subscribes to future flushes; the returned cancel must be
// called when the follower leaves.
func (t *SpanTail) follow(buf int) (ch chan []byte, cancel func()) {
	ch = make(chan []byte, buf)
	t.mu.Lock()
	t.subs[ch] = struct{}{}
	t.mu.Unlock()
	return ch, func() {
		t.mu.Lock()
		delete(t.subs, ch)
		t.mu.Unlock()
	}
}

// Tee fans one span stream out to several sinks — e.g. a scale shard's
// spill-file TraceSection plus the live tail. Nil sinks are skipped.
func Tee(sinks ...obs.SpanSink) obs.SpanSink {
	var nn []obs.SpanSink
	for _, s := range sinks {
		if s != nil {
			nn = append(nn, s)
		}
	}
	if len(nn) == 1 {
		return nn[0]
	}
	return teeSink(nn)
}

type teeSink []obs.SpanSink

func (t teeSink) EmitSpan(s *obs.Span) {
	for _, sink := range t {
		sink.EmitSpan(s)
	}
}
