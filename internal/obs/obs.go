// Package obs is the unified observability layer: hierarchical spans
// with parent/child causal links plus a typed metrics registry, both
// stamped with virtual time from the simulation clock.
//
// A Collector is per-Env and, like every devent object, must only be
// touched from sim context. Merging across Envs happens at export time
// (WriteChromeTrace, WritePrometheus) in the order collectors are
// passed, so exported output is byte-identical regardless of how the
// Envs were scheduled onto OS threads — the same contract the harness
// package guarantees for report sections.
//
// Every method is nil-receiver safe: a nil *Collector (instrumentation
// disabled) is a no-op. Hot paths should additionally guard with
// `if c != nil` before assembling attributes so the disabled path
// allocates nothing.
package obs

import (
	"sort"
	"time"
)

// Clock supplies virtual timestamps; *devent.Env satisfies it.
type Clock interface {
	Now() time.Duration
}

// SpanID identifies a span within one Collector. 0 means "no span"
// and is valid anywhere a parent is expected.
type SpanID int64

// Attr is one string-valued span attribute.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, itoa(int64(v))} }

// Float builds a float attribute (shortest round-trip formatting).
func Float(k string, v float64) Attr { return Attr{k, ftoa(v)} }

// Dur builds a duration attribute holding integer nanoseconds, so
// consumers can recover the exact virtual time.
func Dur(k string, d time.Duration) Attr { return Attr{k, itoa(int64(d))} }

// Span is one timed activity with a causal parent.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 = root
	Cat    string // subsystem ("dfk", "htex", "simgpu")
	Name   string // activity ("task", "run", kernel name)
	Track  string // rendering row (worker, context, task lane)
	Start  time.Duration
	End    time.Duration // -1 while open
	Attrs  []Attr
}

// Duration returns End-Start (negative while the span is open).
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Attr returns the value of the named attribute ("" if absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Collector accumulates spans and metrics for one Env.
type Collector struct {
	clock  Clock
	scope  string
	spans  []Span
	open   map[SpanID]int // open span ID -> index into spans
	nextID SpanID
	reg    *Registry
	onEnd  []func(Span)

	// Scheduler instruments, resolved once so the per-event Dispatched
	// callback is a single field increment.
	cDispatched *Counter
	cSpawned    *Counter
	gProcs      *Gauge
}

// New creates a collector over the given clock.
func New(clock Clock) *Collector {
	c := &Collector{
		clock: clock,
		open:  make(map[SpanID]int),
		reg:   NewRegistry(clock),
	}
	c.cDispatched = c.reg.Counter("devent_events_dispatched_total")
	c.cSpawned = c.reg.Counter("devent_procs_spawned_total")
	c.gProcs = c.reg.Gauge("devent_procs_live")
	return c
}

// SetScope names the collector's origin (experiment cell); exporters
// use it as the process name / scope label.
func (c *Collector) SetScope(s string) {
	if c != nil {
		c.scope = s
	}
}

// Scope returns the collector's scope name.
func (c *Collector) Scope() string {
	if c == nil {
		return ""
	}
	return c.scope
}

// Metrics returns the collector's registry (nil for a nil collector;
// the nil registry is itself a no-op).
func (c *Collector) Metrics() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// StartSpan opens a span at the current virtual time and returns its
// ID for EndSpan and for parenting children. parent 0 makes a root.
func (c *Collector) StartSpan(cat, name, track string, parent SpanID, attrs ...Attr) SpanID {
	if c == nil {
		return 0
	}
	c.nextID++
	id := c.nextID
	c.spans = append(c.spans, Span{
		ID: id, Parent: parent, Cat: cat, Name: name, Track: track,
		Start: c.clock.Now(), End: -1, Attrs: attrs,
	})
	c.open[id] = len(c.spans) - 1
	return id
}

// EndSpan closes the span at the current virtual time, appending any
// final attributes. Ending an unknown or already-ended span is a
// no-op. OnSpanEnd listeners fire with the completed span.
func (c *Collector) EndSpan(id SpanID, attrs ...Attr) {
	if c == nil || id == 0 {
		return
	}
	i, ok := c.open[id]
	if !ok {
		return
	}
	delete(c.open, id)
	s := &c.spans[i]
	s.End = c.clock.Now()
	if len(attrs) > 0 {
		s.Attrs = append(s.Attrs, attrs...)
	}
	c.fireEnd(*s)
}

// AddSpan records a span retroactively with explicit start/end times
// (e.g. a kernel whose record is only known at completion). Listeners
// fire as for EndSpan.
func (c *Collector) AddSpan(cat, name, track string, parent SpanID, start, end time.Duration, attrs ...Attr) SpanID {
	if c == nil {
		return 0
	}
	if end < start {
		end = start
	}
	c.nextID++
	id := c.nextID
	s := Span{
		ID: id, Parent: parent, Cat: cat, Name: name, Track: track,
		Start: start, End: end, Attrs: attrs,
	}
	c.spans = append(c.spans, s)
	c.fireEnd(s)
	return id
}

func (c *Collector) fireEnd(s Span) {
	for _, fn := range c.onEnd {
		fn(s)
	}
}

// OnSpanEnd registers a listener called with every completed span
// (EndSpan and AddSpan), in registration order, from sim context.
func (c *Collector) OnSpanEnd(fn func(Span)) {
	if c != nil {
		c.onEnd = append(c.onEnd, fn)
	}
}

// Len returns the number of recorded spans.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.spans)
}

// OpenSpans returns how many spans are still open.
func (c *Collector) OpenSpans() int {
	if c == nil {
		return 0
	}
	return len(c.open)
}

// CheckClosed returns the spans still open, in start order: the
// open-span leak check. At run end only daemon lifecycles that the
// drain legitimately interrupts (htex worker spans) should remain;
// anything else is instrumentation that forgot to EndSpan.
func (c *Collector) CheckClosed() []Span {
	if c == nil || len(c.open) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(c.open))
	for _, i := range c.open {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Span, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, c.spans[i])
	}
	return out
}

// Spans returns a snapshot of all spans in emission order. Spans still
// open (e.g. daemon worker lifecycles when the simulation drains) are
// clamped to end at the current virtual time, so every snapshot
// satisfies End >= Start.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	out := append([]Span(nil), c.spans...)
	now := c.clock.Now()
	for i := range out {
		if out[i].End < out[i].Start {
			out[i].End = now
			if out[i].End < out[i].Start {
				out[i].End = out[i].Start
			}
		}
	}
	return out
}

// ProcSpawned implements the devent Observer hook.
func (c *Collector) ProcSpawned(name string, at time.Duration) {
	if c == nil {
		return
	}
	c.cSpawned.Inc()
	c.gProcs.Add(1)
}

// ProcExited implements the devent Observer hook.
func (c *Collector) ProcExited(name string, at time.Duration) {
	if c == nil {
		return
	}
	c.gProcs.Add(-1)
}

// Dispatched implements the devent Observer hook; it fires once per
// executed event and must stay allocation-free.
func (c *Collector) Dispatched(at time.Duration) {
	if c == nil {
		return
	}
	c.cDispatched.Inc()
}
