// Package obs is the unified observability layer: hierarchical spans
// with parent/child causal links plus a typed metrics registry, both
// stamped with virtual time from the simulation clock.
//
// A Collector is per-Env and, like every devent object, must only be
// touched from sim context. Merging across Envs happens at export time
// (WriteChromeTrace, WritePrometheus) in the order collectors are
// passed, so exported output is byte-identical regardless of how the
// Envs were scheduled onto OS threads — the same contract the harness
// package guarantees for report sections.
//
// Collection runs in one of two modes. In the default snapshot mode
// every span is retained until export, exactly as before. Attaching a
// SpanSink (SetSink) switches the collector to streaming mode: ended
// spans are flushed to the sink incrementally, in span-ID order, and
// released from memory, so a run's span footprint is bounded by the
// number of concurrently open spans rather than by run length. Spans
// pinned with PinSpan (long-lived daemon lifecycles such as htex
// workers) are parked aside so they never block the flush frontier;
// they are emitted after all unpinned spans when the collector is
// Closed — the snapshot exporters apply the same pinned-last partition
// so both modes render byte-identical artifacts.
//
// Every method is nil-receiver safe: a nil *Collector (instrumentation
// disabled) is a no-op. Hot paths should additionally guard with
// `if c != nil` before assembling attributes so the disabled path
// allocates nothing.
package obs

import (
	"time"
)

// Clock supplies virtual timestamps; *devent.Env satisfies it.
type Clock interface {
	Now() time.Duration
}

// SpanID identifies a span within one Collector. 0 means "no span"
// and is valid anywhere a parent is expected.
type SpanID int64

// Attr is one string-valued span attribute.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, itoa(int64(v))} }

// Float builds a float attribute (shortest round-trip formatting).
func Float(k string, v float64) Attr { return Attr{k, ftoa(v)} }

// Dur builds a duration attribute holding integer nanoseconds, so
// consumers can recover the exact virtual time.
func Dur(k string, d time.Duration) Attr { return Attr{k, itoa(int64(d))} }

// Span is one timed activity with a causal parent.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 = root
	Cat    string // subsystem ("dfk", "htex", "simgpu")
	Name   string // activity ("task", "run", kernel name)
	Track  string // rendering row (worker, context, task lane)
	Start  time.Duration
	End    time.Duration // -1 while open
	Attrs  []Attr

	// ptrack is the parent span's track, captured at creation so
	// exporters can draw cross-track flow arrows without holding the
	// parent span in memory (the parent may already be flushed by the
	// time a streaming sink renders the child).
	ptrack string
	// pinned marks a long-lived daemon lifecycle span (PinSpan): it is
	// excluded from the streaming flush frontier and emitted after all
	// unpinned spans, in both streaming and snapshot export.
	pinned bool
	// drop marks a span excluded by deterministic sampling
	// (SetSampleMod); it is retained and visible to listeners and
	// Spans(), but skipped by sinks and trace export.
	drop bool
}

// Duration returns End-Start (negative while the span is open).
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Attr returns the value of the named attribute ("" if absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// SpanSink receives spans released by a streaming collector. EmitSpan
// is called from sim context, in span-ID order for unpinned spans
// (pinned spans arrive last, at Close); the *Span is borrowed and only
// valid for the duration of the call. Spans still open at Close arrive
// clamped to the final virtual time, mirroring Spans() snapshots.
type SpanSink interface {
	EmitSpan(s *Span)
}

// Collector accumulates spans and metrics for one Env.
type Collector struct {
	clock Clock
	scope string

	// spans is the retained window in span-ID order: everything ever
	// recorded in snapshot mode, only the unflushed suffix when a sink
	// is attached. spans[i].ID == winBase + SpanID(i); entries below
	// head have been flushed and are reclaimed by compaction.
	spans   []Span
	head    int
	winBase SpanID

	// parked holds pinned spans the flush frontier has skipped, in ID
	// order; parkedIdx resolves their IDs for EndSpan after the window
	// copy is compacted away.
	parked    []Span
	parkedIdx map[SpanID]int

	nextID        SpanID
	openCount     int
	maxRetained   int
	retainedNoted int

	sink      SpanSink
	closed    bool
	sampleMod uint32

	reg     *Registry
	onStart []func(Span)
	onEnd   []func(Span)

	// Scheduler instruments, resolved once so the per-event Dispatched
	// callback is a single field increment.
	cDispatched *Counter
	cSpawned    *Counter
	gProcs      *Gauge

	// Collector self-telemetry, pre-resolved for the same reason: the
	// observability pipeline observes itself, so the tsdb can chart
	// span volume, flush progress, sampling drops, and the retained
	// window without touching the span path's allocation budget.
	cSpanStarted *Counter
	cSpanEnded   *Counter
	cSpanFlushed *Counter
	cSampledOut  *Counter
	gRetained    *Gauge
}

// New creates a collector over the given clock.
func New(clock Clock) *Collector {
	c := &Collector{
		clock:   clock,
		winBase: 1,
		reg:     NewRegistry(clock),
	}
	c.cDispatched = c.reg.Counter("devent_events_dispatched_total")
	c.cSpawned = c.reg.Counter("devent_procs_spawned_total")
	c.gProcs = c.reg.Gauge("devent_procs_live")
	c.cSpanStarted = c.reg.Counter("obs_spans_started_total")
	c.cSpanEnded = c.reg.Counter("obs_spans_ended_total")
	c.cSpanFlushed = c.reg.Counter("obs_spans_flushed_total")
	c.cSampledOut = c.reg.Counter("obs_spans_sampled_out_total")
	c.gRetained = c.reg.Gauge("obs_spans_retained_peak")
	return c
}

// SetScope names the collector's origin (experiment cell); exporters
// use it as the process name / scope label.
func (c *Collector) SetScope(s string) {
	if c != nil {
		c.scope = s
	}
}

// Scope returns the collector's scope name.
func (c *Collector) Scope() string {
	if c == nil {
		return ""
	}
	return c.scope
}

// Now returns the current virtual time of the collector's clock.
func (c *Collector) Now() time.Duration {
	if c == nil {
		return 0
	}
	return c.clock.Now()
}

// Metrics returns the collector's registry (nil for a nil collector;
// the nil registry is itself a no-op).
func (c *Collector) Metrics() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// SetSink attaches a streaming sink and switches the collector to
// streaming mode: ended unpinned spans are flushed to the sink in
// span-ID order and released from memory. Attach the sink before the
// run starts; call Close at run end to flush the remainder. A nil sink
// returns to snapshot-only retention for spans recorded afterwards.
func (c *Collector) SetSink(sink SpanSink) {
	if c == nil {
		return
	}
	c.sink = sink
	if sink != nil {
		c.advance()
	}
}

// Streaming reports whether a sink is attached.
func (c *Collector) Streaming() bool { return c != nil && c.sink != nil }

// SetSampleMod enables deterministic 1-in-n sampling of sink emission:
// a root span (Parent == 0) is kept iff fnv32a(Track) % n == 0, and
// every descendant inherits its root's verdict, so sampled traces keep
// whole causal trees. Pinned spans are always kept. n <= 1 disables
// sampling. The rule depends only on span content — never on wall
// clock or randomness — so sampled output is byte-deterministic.
// Sampling affects sinks and trace export only; Spans(), listeners,
// and leak checks always see every span.
func (c *Collector) SetSampleMod(n int) {
	if c == nil {
		return
	}
	if n <= 1 {
		c.sampleMod = 0
		return
	}
	c.sampleMod = uint32(n)
}

// span resolves a live span by ID: parked pinned spans first (their
// window copy may be stale or compacted away), then the retained
// window. Returns nil for flushed or unknown IDs.
func (c *Collector) span(id SpanID) *Span {
	if i, ok := c.parkedIdx[id]; ok {
		return &c.parked[i]
	}
	if id >= c.winBase {
		if i := int(id - c.winBase); i < len(c.spans) {
			return &c.spans[i]
		}
	}
	return nil
}

// StartSpan opens a span at the current virtual time and returns its
// ID for EndSpan and for parenting children. parent 0 makes a root.
func (c *Collector) StartSpan(cat, name, track string, parent SpanID, attrs ...Attr) SpanID {
	if c == nil {
		return 0
	}
	c.nextID++
	id := c.nextID
	s := Span{
		ID: id, Parent: parent, Cat: cat, Name: name, Track: track,
		Start: c.clock.Now(), End: -1, Attrs: attrs,
	}
	c.stamp(&s)
	c.spans = append(c.spans, s)
	c.openCount++
	c.cSpanStarted.Inc()
	c.noteRetained()
	for _, fn := range c.onStart {
		fn(s)
	}
	return id
}

// stamp captures creation-time derived fields: the parent's track (for
// cross-track flow rendering after the parent is flushed) and the
// sampling verdict.
func (c *Collector) stamp(s *Span) {
	if s.Parent != 0 {
		if ps := c.span(s.Parent); ps != nil {
			s.ptrack = ps.Track
			s.drop = ps.drop
			return
		}
	}
	if c.sampleMod > 1 {
		s.drop = fnv32a(s.Track)%c.sampleMod != 0
	}
}

// EndSpan closes the span at the current virtual time, appending any
// final attributes. Ending an unknown or already-ended span is a
// no-op. OnSpanEnd listeners fire with the completed span.
func (c *Collector) EndSpan(id SpanID, attrs ...Attr) {
	if c == nil || id == 0 {
		return
	}
	s := c.span(id)
	if s == nil || s.End >= 0 {
		return
	}
	s.End = c.clock.Now()
	if len(attrs) > 0 {
		s.Attrs = append(s.Attrs, attrs...)
	}
	c.openCount--
	c.cSpanEnded.Inc()
	c.fireEnd(*s)
	if c.sink != nil {
		c.advance()
	}
}

// AddSpan records a span retroactively with explicit start/end times
// (e.g. a kernel whose record is only known at completion). Listeners
// fire as for EndSpan.
func (c *Collector) AddSpan(cat, name, track string, parent SpanID, start, end time.Duration, attrs ...Attr) SpanID {
	if c == nil {
		return 0
	}
	if end < start {
		end = start
	}
	c.nextID++
	id := c.nextID
	s := Span{
		ID: id, Parent: parent, Cat: cat, Name: name, Track: track,
		Start: start, End: end, Attrs: attrs,
	}
	c.stamp(&s)
	c.spans = append(c.spans, s)
	c.cSpanStarted.Inc()
	c.cSpanEnded.Inc()
	c.noteRetained()
	c.fireEnd(s)
	if c.sink != nil {
		c.advance()
	}
	return id
}

// PinSpan marks a span as a long-lived daemon lifecycle (e.g. an htex
// worker): the streaming flush frontier parks it aside instead of
// waiting for it to end, and exporters render it after all unpinned
// spans. Pin immediately after StartSpan, before recording children.
// Pinned spans are exempt from sampling.
func (c *Collector) PinSpan(id SpanID) {
	if c == nil || id == 0 {
		return
	}
	if s := c.span(id); s != nil {
		s.pinned = true
		s.drop = false
	}
}

// advance moves the flush frontier: emits ended unpinned spans in ID
// order, parks pinned spans, and stops at the first still-open
// unpinned span. Consumed prefix is reclaimed by compaction.
func (c *Collector) advance() {
	if c.closed {
		return
	}
	for c.head < len(c.spans) {
		s := &c.spans[c.head]
		if s.pinned {
			c.park(*s)
		} else if s.End >= 0 {
			c.emit(s)
		} else {
			break
		}
		c.head++
	}
	if c.head == len(c.spans) {
		c.spans = c.spans[:0]
		c.head = 0
		c.winBase = c.nextID + 1
	} else if c.head >= 1024 && c.head*2 >= len(c.spans) {
		n := copy(c.spans, c.spans[c.head:])
		c.spans = c.spans[:n]
		c.winBase += SpanID(c.head)
		c.head = 0
	}
}

func (c *Collector) park(s Span) {
	if c.parkedIdx == nil {
		c.parkedIdx = make(map[SpanID]int)
	}
	c.parkedIdx[s.ID] = len(c.parked)
	c.parked = append(c.parked, s)
}

func (c *Collector) emit(s *Span) {
	if s.drop {
		c.cSampledOut.Inc()
		return
	}
	c.cSpanFlushed.Inc()
	c.sink.EmitSpan(s)
}

func (c *Collector) noteRetained() {
	if r := len(c.spans) - c.head + len(c.parked); r > c.maxRetained {
		c.maxRetained = r
		// The gauge trails the exact high-water by at most 1/16: a
		// snapshot-mode window grows with every span, and appending a
		// step-history sample each time would make the gauge history
		// itself scale with run length. MaxRetained stays exact.
		if r >= c.retainedNoted+c.retainedNoted/16+1 {
			c.retainedNoted = r
			c.gRetained.Set(float64(r))
		}
	}
}

// MaxRetained returns the high-water mark of spans held in memory at
// once. In snapshot mode this equals Len(); with a sink attached it is
// bounded by concurrently open spans plus pinned daemons — the number
// the scale scenario asserts stays flat as task count grows.
func (c *Collector) MaxRetained() int {
	if c == nil {
		return 0
	}
	return c.maxRetained
}

// Close flushes a streaming collector at run end: remaining unpinned
// spans first (clamped to the final virtual time if still open), then
// every pinned span, all in ID order within each group — the same
// partition the snapshot exporters use. Spans stay retained and
// unclamped in the collector itself, so CheckClosed and Spans() keep
// working after Close. Further spans must not be recorded after Close;
// no-op without a sink, on repeat calls, and on a nil collector.
func (c *Collector) Close() {
	if c == nil || c.sink == nil || c.closed {
		return
	}
	c.advance()
	c.closed = true
	now := c.clock.Now()
	for i := c.head; i < len(c.spans); i++ {
		if s := c.spans[i]; !s.pinned {
			clampSpan(&s, now)
			c.emit(&s)
		}
	}
	for i := range c.parked {
		s := c.parked[i]
		clampSpan(&s, now)
		c.emit(&s)
	}
	for i := c.head; i < len(c.spans); i++ {
		if s := c.spans[i]; s.pinned {
			clampSpan(&s, now)
			c.emit(&s)
		}
	}
}

func clampSpan(s *Span, now time.Duration) {
	if s.End < s.Start {
		s.End = now
		if s.End < s.Start {
			s.End = s.Start
		}
	}
}

func (c *Collector) fireEnd(s Span) {
	for _, fn := range c.onEnd {
		fn(s)
	}
}

// OnSpanEnd registers a listener called with every completed span
// (EndSpan and AddSpan), in registration order, from sim context.
func (c *Collector) OnSpanEnd(fn func(Span)) {
	if c != nil {
		c.onEnd = append(c.onEnd, fn)
	}
}

// OnSpanStart registers a listener called with every span opened by
// StartSpan (not AddSpan, whose spans are already complete when
// recorded), in registration order, from sim context. Streaming
// analyzers use it to track open windows without holding the span.
func (c *Collector) OnSpanStart(fn func(Span)) {
	if c != nil {
		c.onStart = append(c.onStart, fn)
	}
}

// Len returns the number of spans ever recorded, including spans
// already flushed to a sink.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return int(c.nextID)
}

// OpenSpans returns how many spans are still open.
func (c *Collector) OpenSpans() int {
	if c == nil {
		return 0
	}
	return c.openCount
}

// CheckClosed returns the spans still open, in start order: the
// open-span leak check. At run end only daemon lifecycles that the
// drain legitimately interrupts (htex worker spans) should remain;
// anything else is instrumentation that forgot to EndSpan. Works
// identically in streaming mode — open spans are never flushed, and
// Close clamps only the copies it emits — so leak detection keeps full
// fidelity with a sink attached.
func (c *Collector) CheckClosed() []Span {
	if c == nil || c.openCount == 0 {
		return nil
	}
	out := make([]Span, 0, c.openCount)
	for i := range c.parked {
		if c.parked[i].End < 0 {
			out = append(out, c.parked[i])
		}
	}
	for i := c.head; i < len(c.spans); i++ {
		if c.spans[i].End < 0 {
			out = append(out, c.spans[i])
		}
	}
	return out
}

// Spans returns a snapshot of the retained spans in emission (ID)
// order: all spans ever recorded in snapshot mode; only parked pinned
// spans plus the unflushed window in streaming mode (flushed spans
// have left memory — that is the point of streaming). Spans still open
// (e.g. daemon worker lifecycles when the simulation drains) are
// clamped to end at the current virtual time, so every snapshot
// satisfies End >= Start.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	now := c.clock.Now()
	out := make([]Span, 0, len(c.parked)+len(c.spans)-c.head)
	out = append(out, c.parked...)
	out = append(out, c.spans[c.head:]...)
	for i := range out {
		clampSpan(&out[i], now)
	}
	return out
}

// fnv32a is the 32-bit FNV-1a hash, inlined so sampling stays
// allocation-free and dependency-free.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ProcSpawned implements the devent Observer hook.
func (c *Collector) ProcSpawned(name string, at time.Duration) {
	if c == nil {
		return
	}
	c.cSpawned.Inc()
	c.gProcs.Add(1)
}

// ProcExited implements the devent Observer hook.
func (c *Collector) ProcExited(name string, at time.Duration) {
	if c == nil {
		return
	}
	c.gProcs.Add(-1)
}

// Dispatched implements the devent Observer hook; it fires once per
// executed event and must stay allocation-free.
func (c *Collector) Dispatched(at time.Duration) {
	if c == nil {
		return
	}
	c.cDispatched.Inc()
}
