package obs

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func TestSpanLifecycle(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	root := c.StartSpan("dfk", "task", "task-1", 0, Int("task", 1), String("app", "train"))
	if root == 0 {
		t.Fatal("root span id 0")
	}
	clk.t = time.Second
	child := c.StartSpan("htex", "queue", "task-1", root)
	clk.t = 3 * time.Second
	c.EndSpan(child, String("worker", "w0"))
	clk.t = 5 * time.Second
	c.EndSpan(root, String("status", "done"))

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	r, ch := spans[0], spans[1]
	if r.Start != 0 || r.End != 5*time.Second || r.Attr("app") != "train" || r.Attr("status") != "done" {
		t.Errorf("root = %+v", r)
	}
	if ch.Parent != root || ch.Start != time.Second || ch.End != 3*time.Second || ch.Attr("worker") != "w0" {
		t.Errorf("child = %+v", ch)
	}
	if c.OpenSpans() != 0 {
		t.Errorf("open = %d", c.OpenSpans())
	}
	// Ending twice (or ending an unknown ID) is a no-op.
	c.EndSpan(root)
	c.EndSpan(999)
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestOpenSpanClampedInSnapshot(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	clk.t = 2 * time.Second
	id := c.StartSpan("htex", "worker", "w0", 0)
	clk.t = 7 * time.Second
	spans := c.Spans()
	if spans[0].End != 7*time.Second {
		t.Fatalf("open span end = %v", spans[0].End)
	}
	// The stored span stays open: a later snapshot clamps further out.
	clk.t = 9 * time.Second
	if got := c.Spans()[0].End; got != 9*time.Second {
		t.Fatalf("later snapshot end = %v", got)
	}
	c.EndSpan(id)
	if c.OpenSpans() != 0 {
		t.Fatal("still open")
	}
}

func TestAddSpanClampsAndFiresListeners(t *testing.T) {
	c := New(&fakeClock{})
	var got []Span
	c.OnSpanEnd(func(s Span) { got = append(got, s) })
	c.AddSpan("simgpu", "gemm", "ctx0", 0, 4*time.Second, 6*time.Second, String("domain", "gpu0"))
	c.AddSpan("simgpu", "bad", "ctx0", 0, 5*time.Second, time.Second) // end < start
	if len(got) != 2 {
		t.Fatalf("listener calls = %d", len(got))
	}
	if got[0].Name != "gemm" || got[0].Attr("domain") != "gpu0" {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].End != got[1].Start {
		t.Errorf("clamp failed: %+v", got[1])
	}
}

func TestEndSpanListenerSeesFinalAttrs(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	var seen Span
	c.OnSpanEnd(func(s Span) { seen = s })
	id := c.StartSpan("dfk", "task", "task-1", 0, Int("task", 1))
	clk.t = time.Second
	c.EndSpan(id, String("status", "done"))
	if seen.ID != id || seen.Attr("status") != "done" || seen.Attr("task") != "1" || seen.End != time.Second {
		t.Fatalf("seen = %+v", seen)
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	id := c.StartSpan("x", "y", "z", 0)
	if id != 0 {
		t.Fatal("nil StartSpan returned non-zero")
	}
	c.EndSpan(id)
	c.AddSpan("x", "y", "z", 0, 0, 0)
	c.OnSpanEnd(func(Span) {})
	c.SetScope("s")
	c.ProcSpawned("p", 0)
	c.ProcExited("p", 0)
	c.Dispatched(0)
	if c.Len() != 0 || c.OpenSpans() != 0 || c.Spans() != nil || c.Scope() != "" || c.Metrics() != nil {
		t.Fatal("nil collector leaked state")
	}
	// Instruments resolved through the nil registry are no-op too.
	m := c.Metrics()
	m.Counter("a").Inc()
	m.Gauge("b").Set(1)
	m.Histogram("c", nil).Observe(1)
}

func TestAttrConstructors(t *testing.T) {
	for _, tc := range []struct {
		a    Attr
		k, v string
	}{
		{String("s", "x"), "s", "x"},
		{Int("i", -3), "i", "-3"},
		{Float("f", 0.5), "f", "0.5"},
		{Dur("d", 1500*time.Nanosecond), "d", "1500"},
	} {
		if tc.a.Key != tc.k || tc.a.Value != tc.v {
			t.Errorf("%+v != (%s, %s)", tc.a, tc.k, tc.v)
		}
	}
}

func TestObserverHooksCount(t *testing.T) {
	c := New(&fakeClock{})
	c.ProcSpawned("a", 0)
	c.ProcSpawned("b", 0)
	c.ProcExited("a", 0)
	for i := 0; i < 5; i++ {
		c.Dispatched(0)
	}
	m := c.Metrics()
	if v := m.Counter("devent_procs_spawned_total").Value(); v != 2 {
		t.Errorf("spawned = %v", v)
	}
	if v := m.Gauge("devent_procs_live").Value(); v != 1 {
		t.Errorf("live = %v", v)
	}
	if v := m.Counter("devent_events_dispatched_total").Value(); v != 5 {
		t.Errorf("dispatched = %v", v)
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry(&fakeClock{})
	a := r.Counter("hits", L("app", "x"), L("zone", "y"))
	b := r.Counter("hits", L("zone", "y"), L("app", "x")) // label order irrelevant
	if a != b {
		t.Fatal("same series resolved to different counters")
	}
	if r.Counter("hits", L("app", "other")) == a {
		t.Fatal("different labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("hits")
}

func TestGaugeSeriesTracksVirtualTime(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry(clk)
	g := r.Gauge("busy")
	g.Set(10)
	clk.t = 2 * time.Second
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("value = %v", g.Value())
	}
	// Step series: 10 for [0,2s), 6 after — time-weighted mean over
	// [0,4s) is (10*2 + 6*2)/4 = 8.
	if m := g.Series().Mean(0, 4*time.Second); m != 8 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(&fakeClock{})
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 107.7 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.counts[0] != 1 || h.counts[1] != 2 || h.counts[2] != 1 || h.counts[3] != 1 {
		t.Fatalf("counts = %v", h.counts)
	}
	// Same name reuses the first registration's bounds.
	h2 := r.Histogram("lat", []float64{42})
	if len(h2.bounds) != 3 {
		t.Fatalf("bounds = %v", h2.bounds)
	}
	// Default buckets apply when none given.
	hd := r.Histogram("lat2", nil)
	if len(hd.bounds) != len(DefLatencyBuckets) {
		t.Fatalf("default bounds = %d", len(hd.bounds))
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry(&fakeClock{})
	c := r.Counter("n")
	c.Add(3)
	c.Add(-5)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("value = %v", c.Value())
	}
}
