package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus emits the collectors' registries in the Prometheus
// text exposition format. Series from different collectors are merged
// under one # TYPE header per metric and distinguished by a "scope"
// label (the collector's scope, or "envN" by position). Families are
// sorted by name and series by label signature, so output is
// byte-identical for identical inputs.
func WritePrometheus(w io.Writer, collectors ...*Collector) error {
	type entry struct {
		set    []Label // instrument labels plus scope, sorted by key
		labels string  // set rendered as {k="v",...}
		inst   any
	}
	type fam struct {
		kind    Kind
		buckets []float64
		entries []entry
	}
	fams := make(map[string]*fam)
	for ci, c := range collectors {
		if c == nil || c.reg == nil {
			continue
		}
		scope := c.Scope()
		if scope == "" {
			scope = "env" + itoa(int64(ci+1))
		}
		for _, name := range c.reg.familyNames() {
			f := c.reg.families[name]
			mf, ok := fams[name]
			if !ok {
				mf = &fam{kind: f.kind, buckets: f.buckets}
				fams[name] = mf
			} else if mf.kind != f.kind {
				return fmt.Errorf("obs: metric %q is %v in one collector, %v in another", name, mf.kind, f.kind)
			}
			for _, inst := range f.series {
				var labels []Label
				switch v := inst.(type) {
				case *Counter:
					labels = v.labels
				case *Gauge:
					labels = v.labels
				case *Histogram:
					labels = v.labels
				}
				set := sortedLabels(labels, L("scope", scope))
				mf.entries = append(mf.entries, entry{
					set:    set,
					labels: renderLabels(set),
					inst:   inst,
				})
			}
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		mf := fams[name]
		sort.Slice(mf.entries, func(i, j int) bool { return mf.entries[i].labels < mf.entries[j].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, mf.kind)
		for _, e := range mf.entries {
			switch v := e.inst.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", name, e.labels, ftoa(v.v))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", name, e.labels, ftoa(v.v))
			case *Histogram:
				cum := uint64(0)
				for i, b := range v.bounds {
					cum += v.counts[i]
					// Bounds are normalized finite at registration;
					// the guard keeps a hand-built histogram from
					// rendering a duplicate +Inf line.
					if math.IsInf(b, 0) || math.IsNaN(b) {
						continue
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
						renderLabels(sortedLabels(e.set, L("le", ftoa(b)))), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
					renderLabels(sortedLabels(e.set, L("le", "+Inf"))), v.n)
				fmt.Fprintf(bw, "%s_sum%s %s\n", name, e.labels, ftoa(v.sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", name, e.labels, v.n)
			}
		}
	}
	return bw.Flush()
}

// sortedLabels merges label slices into one copy sorted by key.
func sortedLabels(labels []Label, extra ...Label) []Label {
	ls := append(append([]Label(nil), labels...), extra...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// renderLabels formats sorted labels as {k="v",...}.
func renderLabels(ls []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Inf is the +Inf bucket bound for explicit use in custom buckets.
var Inf = math.Inf(1)
