package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PromSeries is one sample line (or histogram line group) of the text
// exposition: the labels must already include any scope dimension the
// producer wants. For counters and gauges only Value is used; for
// histograms Bounds/Cum/Sum/Count describe the cumulative buckets
// (Bounds finite ascending, Cum parallel cumulative counts, Count the
// +Inf cumulative total).
type PromSeries struct {
	Labels []Label
	Value  float64
	Bounds []float64
	Cum    []uint64
	Sum    float64
	Count  uint64
}

// PromFamily is one named metric's series of a fixed kind.
type PromFamily struct {
	Name   string
	Kind   Kind
	Series []PromSeries
}

// Exposition accumulates families from any number of producers (live
// registries, tsdb snapshots) and renders them as Prometheus text
// exposition: one # TYPE header per family, families sorted by name,
// series sorted by rendered label signature — byte-identical output
// for identical inputs. Merging the same family name with conflicting
// kinds is an error, reported by WriteText.
type Exposition struct {
	fams map[string]*expoFam
	err  error
}

type expoEntry struct {
	labels string // rendered sorted label set, the sort key
	s      PromSeries
}

type expoFam struct {
	kind    Kind
	entries []expoEntry
}

// NewExposition returns an empty exposition.
func NewExposition() *Exposition {
	return &Exposition{fams: make(map[string]*expoFam)}
}

// Add merges families into the exposition. Labels are sorted by key at
// this point; series order within a family does not matter.
func (e *Exposition) Add(fams ...PromFamily) {
	for _, f := range fams {
		mf, ok := e.fams[f.Name]
		if !ok {
			mf = &expoFam{kind: f.Kind}
			e.fams[f.Name] = mf
		} else if mf.kind != f.Kind && e.err == nil {
			e.err = fmt.Errorf("obs: metric %q is %v in one collector, %v in another", f.Name, mf.kind, f.Kind)
		}
		for _, s := range f.Series {
			set := sortedLabels(s.Labels)
			s.Labels = set
			mf.entries = append(mf.entries, expoEntry{labels: renderLabels(set), s: s})
		}
	}
}

// WriteText renders the accumulated families, returning the first
// merge error if any occurred.
func (e *Exposition) WriteText(w io.Writer) error {
	if e.err != nil {
		return e.err
	}
	names := make([]string, 0, len(e.fams))
	for n := range e.fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		mf := e.fams[name]
		sort.Slice(mf.entries, func(i, j int) bool { return mf.entries[i].labels < mf.entries[j].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, mf.kind)
		for _, en := range mf.entries {
			s := en.s
			switch mf.kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", name, en.labels, ftoa(s.Value))
			case KindHistogram:
				for i, b := range s.Bounds {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
						renderLabels(sortedLabels(s.Labels, L("le", ftoa(b)))), s.Cum[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
					renderLabels(sortedLabels(s.Labels, L("le", "+Inf"))), s.Count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", name, en.labels, ftoa(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", name, en.labels, s.Count)
			}
		}
	}
	return bw.Flush()
}

// HistogramPromSeries snapshots a live histogram into the exposition
// model: cumulative counts over the finite bounds (non-finite bounds,
// possible only in a hand-built histogram, fold into the next finite
// bucket exactly as the legacy renderer did).
func HistogramPromSeries(h *Histogram, labels []Label) PromSeries {
	s := PromSeries{Labels: labels, Sum: h.Sum(), Count: h.Count()}
	cum := uint64(0)
	counts := h.BucketCounts()
	for i, b := range h.Bounds() {
		cum += counts[i]
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		s.Bounds = append(s.Bounds, b)
		s.Cum = append(s.Cum, cum)
	}
	return s
}

// registryFamilies snapshots every instrument of a registry as
// exposition families, appending extra labels (e.g. the scope) to each
// series.
func registryFamilies(reg *Registry, extra ...Label) []PromFamily {
	var fams []PromFamily
	var cur *PromFamily
	reg.VisitSeries(func(name string, kind Kind, inst any) {
		if cur == nil || cur.Name != name {
			fams = append(fams, PromFamily{Name: name, Kind: kind})
			cur = &fams[len(fams)-1]
		}
		switch v := inst.(type) {
		case *Counter:
			cur.Series = append(cur.Series, PromSeries{Labels: sortedLabels(v.Labels(), extra...), Value: v.Value()})
		case *Gauge:
			cur.Series = append(cur.Series, PromSeries{Labels: sortedLabels(v.Labels(), extra...), Value: v.Value()})
		case *Histogram:
			cur.Series = append(cur.Series, HistogramPromSeries(v, sortedLabels(v.Labels(), extra...)))
		}
	})
	return fams
}

// WritePrometheus emits the collectors' registries in the Prometheus
// text exposition format. Series from different collectors are merged
// under one # TYPE header per metric and distinguished by a "scope"
// label (the collector's scope, or "envN" by position). Families are
// sorted by name and series by label signature, so output is
// byte-identical for identical inputs.
func WritePrometheus(w io.Writer, collectors ...*Collector) error {
	e := NewExposition()
	for ci, c := range collectors {
		if c == nil || c.reg == nil {
			continue
		}
		scope := c.Scope()
		if scope == "" {
			scope = "env" + itoa(int64(ci+1))
		}
		e.Add(registryFamilies(c.reg, L("scope", scope))...)
	}
	return e.WriteText(w)
}

// sortedLabels merges label slices into one copy sorted by key.
func sortedLabels(labels []Label, extra ...Label) []Label {
	ls := append(append([]Label(nil), labels...), extra...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// renderLabels formats sorted labels as {k="v",...}.
func renderLabels(ls []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Inf is the +Inf bucket bound for explicit use in custom buckets.
var Inf = math.Inf(1)
