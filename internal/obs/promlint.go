package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus checks a text exposition against the conformance
// rules the exporters guarantee and Prometheus scrapers require:
//
//   - every line is a "# TYPE <name> <kind>" header or a sample line
//     "<name>{labels} <value>" with parseable labels and value;
//   - each family is declared exactly once, families appear in sorted
//     name order, and every sample belongs to the family most recently
//     declared (histogram samples via the _bucket/_sum/_count suffixes);
//   - per histogram series: le bounds strictly ascending, exactly one
//     +Inf bucket, cumulative bucket counts non-decreasing, and the
//     _count value equal to the +Inf bucket's count.
//
// It is exported (rather than test-local) so the package's conformance
// tests and the live HTTP server's tests lint the same way.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	type histSeries struct {
		les     []float64 // +Inf as math.Inf(1)
		cums    []uint64
		count   uint64
		hasCnt  bool
		hasInf  bool
		infCum  uint64
		lastLoc int
	}
	kinds := make(map[string]string)
	hists := make(map[string]*histSeries) // "fam\x00labels-without-le"
	var famOrder []string
	cur := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var name, kind string
			if _, err := fmt.Sscanf(line, "# TYPE %s %s", &name, &kind); err != nil {
				return fmt.Errorf("line %d: unparseable comment %q", lineNo, line)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				return fmt.Errorf("line %d: unknown kind %q", lineNo, kind)
			}
			if _, dup := kinds[name]; dup {
				return fmt.Errorf("line %d: duplicate # TYPE for %q", lineNo, name)
			}
			kinds[name] = kind
			famOrder = append(famOrder, name)
			cur = name
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == "" {
			return fmt.Errorf("line %d: sample %q before any # TYPE header", lineNo, name)
		}
		fam, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if kinds[cur] == "histogram" && name == cur+sfx {
				fam, suffix = cur, sfx
				break
			}
		}
		if fam != cur {
			return fmt.Errorf("line %d: sample %q outside its family's # TYPE block (current %q)", lineNo, name, cur)
		}
		if kinds[cur] == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: histogram %q has a bare sample line", lineNo, cur)
		}
		if kinds[cur] != "histogram" {
			continue
		}
		// Histogram bookkeeping, keyed on the series identity minus le.
		le := math.NaN()
		rest := make([]string, 0, len(labels))
		for _, l := range labels {
			k, v, _ := strings.Cut(l, "=")
			if suffix == "_bucket" && k == "le" {
				uq, err := strconv.Unquote(v)
				if err != nil {
					return fmt.Errorf("line %d: bad le %s: %v", lineNo, v, err)
				}
				if uq == "+Inf" {
					le = math.Inf(1)
				} else if le, err = strconv.ParseFloat(uq, 64); err != nil {
					return fmt.Errorf("line %d: bad le bound %q", lineNo, uq)
				}
				continue
			}
			rest = append(rest, l)
		}
		sort.Strings(rest)
		key := fam + "\x00" + strings.Join(rest, ",")
		hs, ok := hists[key]
		if !ok {
			hs = &histSeries{}
			hists[key] = hs
		}
		hs.lastLoc = lineNo
		switch suffix {
		case "_bucket":
			if math.IsNaN(le) {
				return fmt.Errorf("line %d: bucket without le label", lineNo)
			}
			if n := len(hs.les); n > 0 && le <= hs.les[n-1] {
				return fmt.Errorf("line %d: le bounds out of order (%g after %g)", lineNo, le, hs.les[n-1])
			}
			if hs.hasInf {
				return fmt.Errorf("line %d: bucket after the +Inf bucket", lineNo)
			}
			cum := uint64(value)
			if n := len(hs.cums); n > 0 && cum < hs.cums[n-1] {
				return fmt.Errorf("line %d: cumulative bucket count decreased", lineNo)
			}
			hs.les = append(hs.les, le)
			hs.cums = append(hs.cums, cum)
			if math.IsInf(le, 1) {
				hs.hasInf = true
				hs.infCum = cum
			}
		case "_count":
			hs.count = uint64(value)
			hs.hasCnt = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sort.StringsAreSorted(famOrder) {
		return fmt.Errorf("families not in sorted order: %v", famOrder)
	}
	for key, hs := range hists {
		fam, _, _ := strings.Cut(key, "\x00")
		if !hs.hasInf {
			return fmt.Errorf("histogram %s (near line %d): no +Inf bucket", fam, hs.lastLoc)
		}
		if !hs.hasCnt {
			return fmt.Errorf("histogram %s (near line %d): no _count sample", fam, hs.lastLoc)
		}
		if hs.count != hs.infCum {
			return fmt.Errorf("histogram %s (near line %d): _count %d != +Inf bucket %d", fam, hs.lastLoc, hs.count, hs.infCum)
		}
	}
	return nil
}

// parseSampleLine splits "<name>{labels} <value>" (labels optional)
// into its parts, validating label quoting. labels come back as raw
// `k="v"` strings.
func parseSampleLine(line string) (name string, labels []string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("no value on sample line %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := labelBlockEnd(rest)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label block in %q", line)
		}
		block := rest[1 : end-1]
		rest = rest[end:]
		for len(block) > 0 {
			eq := strings.Index(block, "=")
			if eq <= 0 || len(block) < eq+2 || block[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("bad label in %q", line)
			}
			vEnd := quotedEnd(block[eq+1:])
			if vEnd < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			vEnd += eq + 1
			if _, err := strconv.Unquote(block[eq+1 : vEnd]); err != nil {
				return "", nil, 0, fmt.Errorf("bad label quoting in %q: %v", line, err)
			}
			labels = append(labels, block[:vEnd])
			block = block[vEnd:]
			if strings.HasPrefix(block, ",") {
				block = block[1:]
			} else if block != "" {
				return "", nil, 0, fmt.Errorf("bad label separator in %q", line)
			}
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, value, nil
}

// labelBlockEnd returns the index just past the '}' closing the label
// block that starts at s[0] == '{', honoring quoted values (-1 if
// unterminated).
func labelBlockEnd(s string) int {
	inQ := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQ && s[i] == '\\':
			i++
		case s[i] == '"':
			inQ = !inQ
		case !inQ && s[i] == '}':
			return i + 1
		}
	}
	return -1
}

// quotedEnd returns the index just past the closing quote of the Go
// quoted string starting at s[0] == '"' (-1 if unterminated).
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}
