package obs

// HistogramQuantile estimates the q-quantile (q in [0,1]) of a
// cumulative le-bucket histogram by linear interpolation inside the
// bucket where the target rank falls — the Prometheus
// histogram_quantile model, shared by the tsdb windowed quantile
// queries and the analyze latency-percentile paths so both compute the
// same answer from the same bucket layout.
//
// bounds are the finite ascending upper bounds; cum[i] is the
// cumulative count of observations <= bounds[i]; total is the count of
// all observations (the implicit +Inf bucket's cumulative value).
// Interpolation assumes a uniform distribution within each bucket and
// a lower edge of 0 for the first. When the rank lands in the +Inf
// overflow bucket the highest finite bound is returned (there is no
// finite upper edge to interpolate toward). An empty histogram yields
// 0. q is clamped to [0,1].
func HistogramQuantile(q float64, bounds []float64, cum []uint64, total uint64) float64 {
	if total == 0 || len(bounds) == 0 || len(cum) < len(bounds) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	// Find the first bucket whose cumulative count reaches the rank.
	for i, b := range bounds {
		c := float64(cum[i])
		if c < rank {
			continue
		}
		lower, prev := 0.0, 0.0
		if i > 0 {
			lower = bounds[i-1]
			prev = float64(cum[i-1])
		}
		inBucket := c - prev
		if inBucket <= 0 {
			return b
		}
		return lower + (b-lower)*(rank-prev)/inBucket
	}
	// Rank falls in the +Inf overflow bucket.
	return bounds[len(bounds)-1]
}
