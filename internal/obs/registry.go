package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{k, v} }

// Kind distinguishes instrument families.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefLatencyBuckets are the default histogram bounds (seconds) for
// queue delays and run times: 1 ms to 4 min in roughly 2.5x steps.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 60, 120, 240,
}

// Counter is a monotonically increasing value. A nil *Counter is a
// no-op, so instrumented sites can hold pre-resolved pointers and skip
// the registry lookup when collection is disabled.
type Counter struct {
	labels []Label
	v      float64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(d float64) {
	if c != nil && d > 0 {
		c.v += d
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Labels returns the counter's canonical (key-sorted) labels. The
// slice is shared with the registry and must not be mutated.
func (c *Counter) Labels() []Label {
	if c == nil {
		return nil
	}
	return c.labels
}

// Gauge is a point-in-time value whose history is kept as a
// piecewise-constant step series in virtual time.
type Gauge struct {
	labels []Label
	clock  Clock
	v      float64
	series metrics.StepSeries
}

// Set records the value at the current virtual time.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if g.clock != nil {
		g.series.Set(g.clock.Now(), v)
	}
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.Set(g.v + d)
	}
}

// Value returns the latest value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Series exposes the gauge's full step history (nil receiver: nil).
func (g *Gauge) Series() *metrics.StepSeries {
	if g == nil {
		return nil
	}
	return &g.series
}

// Labels returns the gauge's canonical (key-sorted) labels. The slice
// is shared with the registry and must not be mutated.
func (g *Gauge) Labels() []Label {
	if g == nil {
		return nil
	}
	return g.labels
}

// Histogram counts observations into cumulative buckets with explicit
// upper bounds, matching the Prometheus exposition model.
type Histogram struct {
	labels []Label
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf overflow
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Labels returns the histogram's canonical (key-sorted) labels. The
// slice is shared with the registry and must not be mutated.
func (h *Histogram) Labels() []Label {
	if h == nil {
		return nil
	}
	return h.labels
}

// Bounds returns the histogram's finite ascending upper bounds (the
// +Inf bucket is implicit). Shared with the registry; read-only.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) counts:
// len(Bounds())+1 entries, the last being the +Inf overflow. The slice
// is the live backing store — callers must only read it, from sim
// context, and copy if they need a stable snapshot.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// family is one named metric with a fixed kind and a series per label
// set.
type family struct {
	name    string
	kind    Kind
	buckets []float64
	series  map[string]any // canonical label key -> instrument
}

// Registry holds one collector's instruments. Lookups are idempotent:
// the same name and label set always return the same instrument. A
// nil *Registry returns nil instruments, which are themselves no-ops.
type Registry struct {
	clock    Clock
	families map[string]*family
	// gen counts structural changes (new family or new series) so
	// scrapers can cache their flattened instrument list and rebuild it
	// only when something was registered since the last pass.
	gen uint64
}

// NewRegistry creates an empty registry stamping gauges with clock.
func NewRegistry(clock Clock) *Registry {
	return &Registry{clock: clock, families: make(map[string]*family)}
}

func (r *Registry) family(name string, kind Kind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// canonical sorts a copy of the labels by key and renders the series
// identity string.
func canonical(labels []Label) ([]Label, string) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return ls, key
}

// Counter returns (creating if needed) the counter with these labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, KindCounter, nil)
	ls, key := canonical(labels)
	if c, ok := f.series[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{labels: ls}
	f.series[key] = c
	r.gen++
	return c
}

// Gauge returns (creating if needed) the gauge with these labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, KindGauge, nil)
	ls, key := canonical(labels)
	if g, ok := f.series[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{labels: ls, clock: r.clock}
	f.series[key] = g
	r.gen++
	return g
}

// normalizeBuckets canonicalizes histogram bounds for the Prometheus
// exposition model: sorted ascending, deduplicated, and with
// non-finite bounds dropped (the +Inf bucket is implicit; a caller
// passing math.Inf(1) would otherwise render a duplicate `le="+Inf"`
// line, and NaN cannot be a bound at all).
func normalizeBuckets(buckets []float64) []float64 {
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		out = append(out, b)
	}
	sort.Float64s(out)
	uniq := out[:0]
	for i, b := range out {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return uniq
}

// Histogram returns (creating if needed) the histogram with these
// labels. The first registration of a name fixes its buckets; bounds
// are normalized (sorted, deduplicated, finite) on registration.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	if _, ok := r.families[name]; !ok {
		buckets = normalizeBuckets(buckets)
	}
	f := r.family(name, KindHistogram, buckets)
	ls, key := canonical(labels)
	if h, ok := f.series[key]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{labels: ls, bounds: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	f.series[key] = h
	r.gen++
	return h
}

// Gen returns the registry's structural generation: it increments
// whenever a new series is registered, never on value updates. A
// scraper that cached its instrument list at generation g sees every
// series exactly when Gen() != g.
func (r *Registry) Gen() uint64 {
	if r == nil {
		return 0
	}
	return r.gen
}

// VisitSeries calls fn for every registered instrument in
// deterministic order: families sorted by name, series sorted by
// canonical label key. inst is a *Counter, *Gauge, or *Histogram.
func (r *Registry) VisitSeries(fn func(name string, kind Kind, inst any)) {
	if r == nil {
		return
	}
	for _, name := range r.familyNames() {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fn(name, f.kind, f.series[k])
		}
	}
}

// familyNames returns the registered metric names, sorted.
func (r *Registry) familyNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
