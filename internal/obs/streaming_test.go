package obs

import (
	"bytes"
	"testing"
	"time"
)

// captureSink records emitted span copies in emission order.
type captureSink struct{ spans []Span }

func (s *captureSink) EmitSpan(sp *Span) { s.spans = append(s.spans, *sp) }

// buildWorkload records a representative span mix on c: a pinned
// daemon lifecycle that never ends (clamped at flush), tasks whose
// children end out of ID order, and a retroactive AddSpan record.
func buildWorkload(clk *fakeClock, c *Collector) {
	worker := c.StartSpan("htex", "worker", "w0", 0)
	c.PinSpan(worker)
	t1 := c.StartSpan("dfk", "task", "task-1", 0, Int("task", 1))
	clk.t = time.Second
	t2 := c.StartSpan("dfk", "task", "task-2", 0, Int("task", 2))
	r1 := c.StartSpan("htex", "run", "w0", t1)
	c.AddSpan("simgpu", "gemm", "ctx0", r1, time.Second, 2*time.Second, Float("sms", 54))
	clk.t = 2 * time.Second
	// task-2 ends before task-1's run: the flush frontier must hold at
	// the open run span, not emit in end order.
	c.EndSpan(t2, String("status", "done"))
	clk.t = 3 * time.Second
	c.EndSpan(r1)
	c.EndSpan(t1, String("status", "done"))
}

// TestStreamingTraceMatchesSnapshot is the byte-identity regression at
// the obs layer: the same workload rendered through the snapshot
// exporter (WriteChromeTrace) and through the streaming path
// (TraceSection sink + Close + TraceStream splice) must produce
// identical artifacts.
func TestStreamingTraceMatchesSnapshot(t *testing.T) {
	snapClk := &fakeClock{}
	snap := New(snapClk)
	snap.SetScope("cell")
	buildWorkload(snapClk, snap)
	var want bytes.Buffer
	if err := WriteChromeTrace(&want, snap); err != nil {
		t.Fatal(err)
	}

	strClk := &fakeClock{}
	str := New(strClk)
	str.SetScope("cell")
	var section bytes.Buffer
	str.SetSink(NewTraceSection(&section, 1, "cell"))
	buildWorkload(strClk, str)
	str.Close()
	var got bytes.Buffer
	ts := NewTraceStream(&got)
	if err := ts.Append(bytes.NewReader(section.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	if want.String() != got.String() {
		t.Errorf("streaming trace differs from snapshot:\nsnapshot:\n%s\nstreaming:\n%s",
			want.String(), got.String())
	}
}

// TestStreamingReleasesFlushedSpans checks the documented Spans() and
// Len() semantics with a sink: flushed spans leave memory, totals and
// retained high-water stay accurate.
func TestStreamingReleasesFlushedSpans(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	sink := &captureSink{}
	c.SetSink(sink)
	buildWorkload(clk, c)

	if c.Len() != 5 {
		t.Errorf("Len() = %d, want 5 (flushed spans still counted)", c.Len())
	}
	// All four unpinned spans have ended and flushed; only the parked
	// pinned worker remains retained.
	if got := c.Spans(); len(got) != 1 || got[0].Name != "worker" {
		t.Errorf("retained spans after flush = %+v, want just the pinned worker", got)
	}
	if len(sink.spans) != 4 {
		t.Errorf("sink received %d spans before Close, want 4", len(sink.spans))
	}
	// The retained snapshot clamps the still-open worker span.
	if s := c.Spans()[0]; s.End != clk.t {
		t.Errorf("open pinned span not clamped in Spans(): End = %v, want %v", s.End, clk.t)
	}
}

// TestStreamingBoundedRetention drives many sequential task spans
// through a streaming collector and checks the retained high-water
// stays flat — the bounded-memory property the scale scenario relies
// on — while a snapshot collector retains everything.
func TestStreamingBoundedRetention(t *testing.T) {
	drive := func(c *Collector, clk *fakeClock) {
		for i := 0; i < 500; i++ {
			root := c.StartSpan("dfk", "task", "task", 0)
			child := c.StartSpan("htex", "run", "w0", root)
			clk.t += time.Millisecond
			c.EndSpan(child)
			c.EndSpan(root)
		}
	}
	strClk := &fakeClock{}
	str := New(strClk)
	str.SetSink(&captureSink{})
	drive(str, strClk)
	if str.Len() != 1000 {
		t.Fatalf("Len() = %d, want 1000", str.Len())
	}
	if str.MaxRetained() > 8 {
		t.Errorf("streaming MaxRetained() = %d, want a small constant (<= 8)", str.MaxRetained())
	}
	snapClk := &fakeClock{}
	snap := New(snapClk)
	drive(snap, snapClk)
	if snap.MaxRetained() != snap.Len() {
		t.Errorf("snapshot MaxRetained() = %d, want Len() = %d", snap.MaxRetained(), snap.Len())
	}
}

// TestCheckClosedStreaming verifies leak detection keeps full fidelity
// with a sink attached: open spans survive flushing and Close, and a
// forgotten EndSpan is still reported.
func TestCheckClosedStreaming(t *testing.T) {
	clk := &fakeClock{}
	c := New(clk)
	c.SetSink(&captureSink{})
	worker := c.StartSpan("htex", "worker", "w0", 0)
	c.PinSpan(worker)
	leak := c.StartSpan("dfk", "task", "task-1", 0)
	done := c.StartSpan("dfk", "task", "task-2", 0)
	clk.t = time.Second
	c.EndSpan(done)
	_ = leak // never ended: this is the leak

	open := c.CheckClosed()
	if len(open) != 2 {
		t.Fatalf("CheckClosed() = %d spans, want 2 (worker + leaked task)", len(open))
	}
	c.Close()
	// Close emits clamped copies; the collector's own spans stay open so
	// the leak check still fires afterwards.
	open = c.CheckClosed()
	if len(open) != 2 {
		t.Errorf("CheckClosed() after Close = %d spans, want 2", len(open))
	}
	for _, s := range open {
		if s.End >= 0 {
			t.Errorf("CheckClosed returned a closed span: %+v", s)
		}
	}
}

// TestSampleModDeterministicSinkOnly checks the sampling contract:
// the kept set depends only on span content (byte-deterministic across
// runs), descendants inherit their root's verdict, pinned spans are
// always kept, and listeners plus Spans() still see every span.
func TestSampleModDeterministicSinkOnly(t *testing.T) {
	run := func() (kept []string, ended int, total int) {
		clk := &fakeClock{}
		c := New(clk)
		sink := &captureSink{}
		c.SetSink(sink)
		c.SetSampleMod(2)
		c.OnSpanEnd(func(Span) { ended++ })
		worker := c.StartSpan("htex", "worker", "w9", 0)
		c.PinSpan(worker)
		for i := 0; i < 8; i++ {
			track := "task-" + string(rune('a'+i))
			root := c.StartSpan("dfk", "task", track, 0)
			child := c.StartSpan("htex", "run", "w0", root)
			clk.t += time.Millisecond
			c.EndSpan(child)
			c.EndSpan(root)
		}
		c.Close()
		for _, s := range sink.spans {
			kept = append(kept, s.Track+"/"+s.Name)
		}
		return kept, ended, c.Len()
	}
	k1, ended, total := run()
	k2, _, _ := run()
	if len(k1) == 0 || len(k1) >= total {
		t.Fatalf("sampling kept %d of %d spans — want a proper nonempty subset", len(k1), total)
	}
	if ended != 16 {
		t.Errorf("listeners saw %d ends, want all 16 (sampling must not affect listeners)", ended)
	}
	if len(k1) != len(k2) {
		t.Fatalf("sampling not deterministic: %d vs %d kept", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("sampling not deterministic at %d: %q vs %q", i, k1[i], k2[i])
		}
	}
	// Whole causal trees: a kept root's child is kept, a dropped root's
	// child is dropped — so kept run spans equal kept task spans, and the
	// pinned worker is always present.
	var tasks, runs, workers int
	for _, k := range k1 {
		switch {
		case k == "w9/worker":
			workers++
		case k[len(k)-4:] == "task":
			tasks++
		default:
			runs++
		}
	}
	if workers != 1 {
		t.Errorf("pinned worker kept %d times, want 1", workers)
	}
	if tasks != runs {
		t.Errorf("kept %d task roots but %d run children — trees must sample atomically", tasks, runs)
	}
}
